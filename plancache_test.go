package gapplydb_test

import (
	"fmt"
	"testing"

	"gapplydb"
)

// The plan-cache battery uses fresh databases: the cache and its metrics
// are per-Database state, and the shared integration instance has an
// unknown compile history.

func cacheDB(t *testing.T) *gapplydb.Database {
	t.Helper()
	db, err := gapplydb.OpenTPCH(0.001)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

const cacheQuery = `select gapply(select p_name from g where p_retailprice > 1500)
	from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g`

// TestPlanCacheHitOnRepeat: the first execution compiles and caches; the
// second is served from the cache — visible per query in Stats and in
// the lifetime metrics, and the optimizer runs only once.
func TestPlanCacheHitOnRepeat(t *testing.T) {
	db := cacheDB(t)
	first, err := db.Query(cacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.PlanCacheHits != 0 {
		t.Errorf("cold query PlanCacheHits = %d, want 0", first.Stats.PlanCacheHits)
	}
	second, err := db.Query(cacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.PlanCacheHits != 1 {
		t.Errorf("warm query PlanCacheHits = %d, want 1", second.Stats.PlanCacheHits)
	}
	if d := firstDiff(ordered(first), ordered(second)); d != "" {
		t.Fatalf("cached plan changed the result: %s", d)
	}
	m := db.Metrics()
	if m.Counters["plan_cache_hits"] != 1 || m.Counters["plan_cache_misses"] != 1 {
		t.Errorf("metrics hits=%d misses=%d, want 1/1",
			m.Counters["plan_cache_hits"], m.Counters["plan_cache_misses"])
	}
	// The cached path skips parse/bind/optimize entirely: exactly one
	// optimize_latency observation across both executions.
	if got := m.Histograms["optimize_latency"].Count; got != 1 {
		t.Errorf("optimize_latency count = %d, want 1 (hit must not re-optimize)", got)
	}
}

// TestPlanCacheBypass: WithoutPlanCache neither consults nor populates
// the cache.
func TestPlanCacheBypass(t *testing.T) {
	db := cacheDB(t)
	for i := 0; i < 2; i++ {
		res, err := db.Query(cacheQuery, gapplydb.WithoutPlanCache())
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.PlanCacheHits != 0 {
			t.Errorf("run %d: WithoutPlanCache reported a hit", i)
		}
	}
	m := db.Metrics()
	if m.Counters["plan_cache_hits"] != 0 || m.Counters["plan_cache_misses"] != 0 {
		t.Errorf("bypass touched the cache counters: %+v", m.Counters)
	}
	// An uncached run also must not have primed the cache for later ones.
	res, err := db.Query(cacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHits != 0 {
		t.Error("WithoutPlanCache populated the cache")
	}
}

// TestPlanCacheOptionsKeyed: the cache key carries the options
// fingerprint, so the same text planned under different rule settings
// compiles separately — a disabled-rule run never reuses the default
// plan.
func TestPlanCacheOptionsKeyed(t *testing.T) {
	db := cacheDB(t)
	if _, err := db.Query(cacheQuery); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(cacheQuery, gapplydb.WithoutRule("selection-before-gapply"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHits != 0 {
		t.Error("different rule options hit the default plan's cache entry")
	}
	// The same options again do hit.
	res, err = db.Query(cacheQuery, gapplydb.WithoutRule("selection-before-gapply"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHits != 1 {
		t.Error("repeated options fingerprint missed the cache")
	}
}

// TestPlanCacheInvalidation covers all three invalidation paths: schema
// change (catalog version), RefreshStats (statistics epoch), and the
// explicit InvalidatePlanCache hook.
func TestPlanCacheInvalidation(t *testing.T) {
	db := cacheDB(t)
	warm := func(label string) {
		t.Helper()
		if _, err := db.Query(cacheQuery); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		res, err := db.Query(cacheQuery)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if res.Stats.PlanCacheHits != 1 {
			t.Fatalf("%s: warm-up did not hit", label)
		}
	}
	expectCold := func(label string) {
		t.Helper()
		res, err := db.Query(cacheQuery)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if res.Stats.PlanCacheHits != 0 {
			t.Errorf("%s did not invalidate the cached plan", label)
		}
	}

	warm("initial")
	if err := db.CreateTable("pc_scratch", []gapplydb.Column{{Name: "x", Type: "int"}}, nil); err != nil {
		t.Fatal(err)
	}
	expectCold("CreateTable")

	warm("pre-refresh")
	db.RefreshStats()
	expectCold("RefreshStats")

	warm("pre-invalidate")
	db.InvalidatePlanCache()
	expectCold("InvalidatePlanCache")
}

// TestPlanCacheEviction: the LRU bound holds — after more distinct
// statements than the capacity, the oldest entry has been evicted and
// recompiles.
func TestPlanCacheEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles several hundred statements")
	}
	db := cacheDB(t)
	stmt := func(i int) string {
		return fmt.Sprintf("select s_name from supplier where s_suppkey = %d", i)
	}
	if _, err := db.Query(stmt(0)); err != nil {
		t.Fatal(err)
	}
	// Push 300 more distinct statements through a 256-entry cache.
	for i := 1; i <= 300; i++ {
		if _, err := db.Query(stmt(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query(stmt(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHits != 0 {
		t.Error("statement 0 survived 300 subsequent distinct compiles in a 256-entry LRU")
	}
	// The most recent statement is still resident.
	res, err = db.Query(stmt(300))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHits != 1 {
		t.Error("most recently used statement was evicted")
	}
}

// TestPlanCacheConcurrent hammers one database from many goroutines
// mixing hits, misses and invalidations; run under -race this is the
// cache's thread-safety proof.
func TestPlanCacheConcurrent(t *testing.T) {
	db := cacheDB(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := 0; i < 20; i++ {
				q := cacheQuery
				if g%2 == 0 {
					q = fmt.Sprintf("select s_name from supplier where s_suppkey = %d", i%5)
				}
				if _, err := db.Query(q); err != nil {
					done <- err
					return
				}
				if g == 0 && i%7 == 0 {
					db.InvalidatePlanCache()
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
