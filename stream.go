package gapplydb

import (
	"context"
	"time"

	"gapplydb/internal/core"
	"gapplydb/internal/exec"
	"gapplydb/internal/sql"
	"gapplydb/internal/trace"
)

// Stream is an incrementally consumed query result: the rows of Query,
// delivered one at a time as execution produces them, without the
// server-side materialization Result implies. The network server
// streams every remote query through one of these, so a large result
// only ever exists in full on the client.
//
// A Stream belongs to a single goroutine. Close must always be called;
// it is idempotent and releases the execution (and the database's
// in-flight registration, which Database.Close waits on). Draining a
// stream to completion yields exactly the rows, errors and statistics
// the materializing path would have produced.
type Stream struct {
	// Columns are the output column names, in order.
	Columns []string

	db       *Database
	cur      *exec.Cursor  // nil for pre-materialized (EXPLAIN) streams
	ectx     *exec.Context // execution context, for counters at finish
	rows     [][]any       // pre-materialized rows (EXPLAIN statements)
	ri       int
	batchBuf [][]any            // NextBatch's reused outer container
	stop     context.CancelFunc // unwinds lifecycle/timeout contexts
	release  func()             // db in-flight registration
	start    time.Time
	stats    ExecStats
	elapsed  time.Duration
	done     bool
	err      error

	// Tracing: the builder spanning this query (nil when untraced), the
	// open execute span it finishes, and the plan operator spans are
	// reconstructed from at finish.
	tb       *trace.Builder
	execSpan int
	plan     core.Node
}

// Stream is StreamContext under context.Background().
func (db *Database) Stream(query string, options ...QueryOption) (*Stream, error) {
	return db.StreamContext(context.Background(), query, options...)
}

// StreamContext parses, binds, optimizes and starts a statement,
// returning a Stream over its output instead of a materialized Result.
// Cancellation, deadlines and budgets behave exactly as in QueryContext;
// the MaxOutputRows budget is charged per delivered row. A statement
// with an EXPLAIN [ANALYZE] prefix is executed through the explain path
// (which materializes) and its report lines are replayed as the stream's
// rows, so remote shells need no special casing.
func (db *Database) StreamContext(ctx context.Context, query string, options ...QueryOption) (*Stream, error) {
	release, err := db.acquire()
	if err != nil {
		return nil, err
	}
	cfg := makeConfig(options)
	tb := db.traceSetup(&cfg, query)
	c, hit, err := db.compile(query, cfg)
	if err != nil {
		db.finishTrace(tb, err)
		release()
		return nil, err
	}
	cfg.planCacheHit = hit
	if c.mode != sql.ExplainNone {
		e, err := db.explainCompiled(ctx, c, cfg, c.mode == sql.ExplainAnalyze)
		if err != nil {
			db.finishTrace(tb, err) // no-op if the analyzed execution finished it
			release()
			return nil, err
		}
		db.finishTrace(tb, nil) // plain EXPLAIN never reaches execute
		res := e.planResult()
		release()
		return &Stream{
			Columns: res.Columns, rows: res.Rows,
			stats: res.Stats, elapsed: res.Elapsed,
			tb: tb,
		}, nil
	}

	ctx, stop := db.lifecycleContext(ctx)
	if cfg.budget.Timeout > 0 {
		inner, cancel := context.WithTimeout(ctx, cfg.budget.Timeout)
		outerStop := stop
		ctx, stop = inner, func() { cancel(); outerStop() }
	}
	ectx := db.execContext(ctx, cfg)
	execSpan := tb.StartSpan("execute", 0)
	cur, err := exec.Start(c.plan, ectx)
	if err != nil {
		stop()
		release()
		db.reg.Counter("queries").Inc()
		err = db.classifyExecError(err)
		tb.EndSpan(execSpan)
		attachOperatorSpans(tb, execSpan, c.plan, ectx.Prof)
		db.finishTrace(tb, err)
		return nil, err
	}
	s := &Stream{
		Columns: make([]string, cur.Schema.Len()),
		db:      db, cur: cur, ectx: ectx,
		stop: stop, release: release, start: time.Now(),
		tb: tb, execSpan: execSpan, plan: c.plan,
	}
	for i, col := range cur.Schema.Cols {
		s.Columns[i] = col.QualifiedName()
	}
	return s, nil
}

// Next returns the next row (values in the same Go representations
// Result.Rows uses). ok=false with a nil error marks exhaustion; errors
// are classified exactly as QueryContext classifies them and are final.
func (s *Stream) Next() ([]any, bool, error) {
	if s.done {
		return nil, false, s.err
	}
	if s.cur == nil { // pre-materialized (EXPLAIN) stream
		if s.ri >= len(s.rows) {
			s.done = true
			return nil, false, nil
		}
		r := s.rows[s.ri]
		s.ri++
		return r, true, nil
	}
	row, ok, err := s.cur.Next()
	if err != nil {
		s.finish(err)
		return nil, false, s.err
	}
	if !ok {
		s.finish(nil)
		return nil, false, nil
	}
	out := make([]any, len(row))
	for i, v := range row {
		out[i] = toGo(v)
	}
	return out, true, nil
}

// NextBatch returns the next rows in bulk — up to one engine batch (256
// rows) per call — in the same Go representations Next uses. ok=false
// with a nil error marks exhaustion. The returned outer slice is reused
// by the following NextBatch call; the per-row slices are freshly
// allocated and may be retained. Mixing Next and NextBatch is allowed:
// no row is delivered twice. The network server frames results through
// this path so the engine's batches flow to the wire without a per-row
// hand-off.
func (s *Stream) NextBatch() ([][]any, bool, error) {
	if s.done {
		return nil, false, s.err
	}
	if s.cur == nil { // pre-materialized (EXPLAIN) stream
		if s.ri >= len(s.rows) {
			s.done = true
			return nil, false, nil
		}
		out := s.rows[s.ri:]
		s.ri = len(s.rows)
		return out, true, nil
	}
	b, err := s.cur.NextBatch()
	if err != nil {
		s.finish(err)
		return nil, false, s.err
	}
	if b == nil {
		s.finish(nil)
		return nil, false, nil
	}
	n := b.Len()
	if cap(s.batchBuf) < n {
		s.batchBuf = make([][]any, n)
	}
	out := s.batchBuf[:n]
	for i := 0; i < n; i++ {
		row := b.Row(i)
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = toGo(v)
		}
		out[i] = vals
	}
	return out, true, nil
}

// finish settles the stream exactly once: metrics, stats, error
// classification, and the lifecycle registrations.
func (s *Stream) finish(err error) {
	if s.done {
		return
	}
	s.done = true
	s.cur.Close()
	s.elapsed = time.Since(s.start)
	s.db.reg.Counter("queries").Inc()
	s.db.reg.Histogram("execute_latency").Observe(s.elapsed)
	if err != nil {
		s.err = s.db.classifyExecError(err)
	} else {
		s.db.recordExecMetrics(s.ectx.Counters)
		s.stats = statsOf(s.ectx.Counters)
	}
	s.tb.EndSpan(s.execSpan)
	attachOperatorSpans(s.tb, s.execSpan, s.plan, s.ectx.Prof)
	s.db.finishTrace(s.tb, s.err)
	s.stop()
	s.release()
}

// Close abandons (or, after exhaustion, finalizes) the stream. Closing
// before exhaustion counts the query as executed and records the work
// done up to that point. Always returns the stream's final error state.
func (s *Stream) Close() error {
	if !s.done && s.cur != nil {
		s.finish(nil)
	}
	s.done = true
	return s.err
}

// Err returns the error the stream ended with, if any.
func (s *Stream) Err() error { return s.err }

// Stats returns the executor's work counters; valid after the stream is
// exhausted (before that it is zero).
func (s *Stream) Stats() ExecStats { return s.stats }

// Elapsed is the wall time from Start to exhaustion (or Close).
func (s *Stream) Elapsed() time.Duration { return s.elapsed }

// TraceID identifies this query's end-to-end trace in the flight
// recorder; zero when the query is not traced. Valid from StreamContext
// return (the ID is assigned before execution starts).
func (s *Stream) TraceID() TraceID { return s.tb.ID() }
