// Package gapplydb is an in-memory relational engine with first-class
// support for groupwise processing: the GApply operator of Chaudhuri,
// Kaushik and Naughton, "On Relational Support for XML Publishing:
// Beyond Sorting and Tagging" (SIGMOD 2003).
//
// The engine accepts a SQL subset extended with the paper's syntax:
//
//	select gapply(<per-group query>) [as (<column list>)]
//	from <relations>
//	where <conditions>
//	group by <grouping columns> : <group variable>
//
// The per-group query runs once per group with the relation-valued
// variable bound to the group's rows; results are returned clustered by
// the grouping columns, ready for a constant-space XML tagger.
//
// A rule-based optimizer implements the paper's §4 transformations
// (selection/projection before GApply, GApply→groupby, group selection,
// invariant grouping) plus classic pushdown and subquery decorrelation;
// individual rules can be disabled or forced per query, which is how the
// benchmark harness regenerates the paper's Table 1.
package gapplydb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gapplydb/internal/bind"
	"gapplydb/internal/core"
	"gapplydb/internal/exec"
	"gapplydb/internal/metrics"
	"gapplydb/internal/opt"
	"gapplydb/internal/schema"
	"gapplydb/internal/sql"
	"gapplydb/internal/stats"
	"gapplydb/internal/storage"
	"gapplydb/internal/tpch"
	"gapplydb/internal/trace"
	"gapplydb/internal/types"
)

// Database is an in-memory database instance. It is safe for concurrent
// readers once loading is complete; loading and querying must not race.
type Database struct {
	cat   *storage.Catalog
	st    *stats.Stats
	opt   *opt.Optimizer
	reg   *metrics.Registry
	plans *planCache
	// traces is the flight recorder completed traced queries land in;
	// sampler drives WithTraceSampling decisions (see tracing.go).
	traces  *trace.Recorder
	sampler *trace.Sampler
	// statsEpoch counts RefreshStats calls: plans compiled under old
	// statistics may no longer be the ones the optimizer would pick, so
	// the plan-cache key includes the epoch.
	statsEpoch atomic.Uint64

	// Lifecycle: closeMu guards the closed flag against racing query
	// admissions; closeCtx is the root every execution's context is
	// derived from, so Close can cancel all in-flight work; inflight
	// counts admitted executions (queries and open streams) that Close
	// must drain.
	closeMu     sync.RWMutex
	closed      bool
	closeCtx    context.Context
	closeCancel context.CancelFunc
	inflight    sync.WaitGroup
}

// newDatabase wires the pieces every constructor shares.
func newDatabase() *Database {
	db := &Database{
		cat: storage.NewCatalog(), reg: metrics.NewRegistry(), plans: newPlanCache(),
		traces:  trace.NewRecorder(defaultTraceRecent, defaultTraceSlowest),
		sampler: trace.NewSampler(time.Now().UnixNano()),
	}
	db.closeCtx, db.closeCancel = context.WithCancel(context.Background())
	return db
}

// Open creates an empty database.
func Open() *Database {
	db := newDatabase()
	db.RefreshStats()
	return db
}

// OpenTPCH creates a database loaded with the TPC-H-style data set at
// the given scale factor (1.0 ≈ the paper's schema at full row counts;
// 0.01 is comfortable for a laptop). Every primary- and foreign-key
// column gets an ordered secondary index, built eagerly so the first
// query does not pay the sort.
func OpenTPCH(scaleFactor float64) (*Database, error) {
	db := newDatabase()
	if err := tpch.Load(db.cat, scaleFactor); err != nil {
		return nil, err
	}
	if err := db.buildTPCHIndexes(); err != nil {
		return nil, err
	}
	db.RefreshStats()
	return db, nil
}

// OpenTPCHShard creates a database holding shard `shard` of a
// totalShards-way hash-partitioned TPC-H load: fact tables (partsupp,
// lineitem, orders) restricted to the rows tpch.ShardOf assigns to the
// shard, dimension tables replicated in full. The shard sees the exact
// global generation order restricted to its rows, which is the invariant
// the distributed coordinator's order-preserving gather relies on.
// OpenTPCHShard(sf, 0, 1) is identical to OpenTPCH(sf).
func OpenTPCHShard(scaleFactor float64, shard, totalShards int) (*Database, error) {
	db := newDatabase()
	if err := tpch.LoadShard(db.cat, scaleFactor, shard, totalShards); err != nil {
		return nil, err
	}
	if err := db.buildTPCHIndexes(); err != nil {
		return nil, err
	}
	db.RefreshStats()
	return db, nil
}

// buildTPCHIndexes creates the single-column ordered indexes on the
// TPC-H key and foreign-key columns — the access paths the planner's
// order pass uses to serve ORDER BY, merge joins and sort-partitioned
// GApply — and forces each run to build now rather than on first use.
func (db *Database) buildTPCHIndexes() error {
	keyCols := map[string][]string{
		"region":   {"r_regionkey"},
		"nation":   {"n_nationkey", "n_regionkey"},
		"supplier": {"s_suppkey", "s_nationkey"},
		"part":     {"p_partkey"},
		"partsupp": {"ps_partkey", "ps_suppkey"},
		"customer": {"c_custkey", "c_nationkey"},
		"orders":   {"o_orderkey", "o_custkey"},
		"lineitem": {"l_orderkey", "l_partkey", "l_suppkey"},
	}
	for table, cols := range keyCols {
		tab, err := db.cat.Lookup(table)
		if err != nil {
			return err
		}
		for _, col := range cols {
			ix, err := db.cat.CreateIndex("idx_"+table+"_"+col, table, col)
			if err != nil {
				return err
			}
			ix.Run(tab)
		}
	}
	return nil
}

// CreateIndex registers an ordered secondary index over the named
// columns of a table. All index orderings are ascending with ties in
// insertion order; the planner uses indexes to serve ORDER BY without
// sorting, to run merge joins, and to feed sort-partitioned GApply —
// never changing a single output byte relative to the index-free plan.
// Creating an index invalidates cached plans implicitly (the cache key
// carries the catalog version).
func (db *Database) CreateIndex(name, table string, columns ...string) error {
	_, err := db.cat.CreateIndex(name, table, columns...)
	return err
}

// DropIndex removes an index by name.
func (db *Database) DropIndex(name string) error { return db.cat.DropIndex(name) }

// IndexInfo describes one ordered secondary index.
type IndexInfo struct {
	Name    string
	Table   string
	Columns []string
}

// Indexes lists the database's secondary indexes sorted by name.
func (db *Database) Indexes() []IndexInfo {
	ixs := db.cat.Indexes()
	out := make([]IndexInfo, len(ixs))
	for i, ix := range ixs {
		out[i] = IndexInfo{Name: ix.Name, Table: ix.Table, Columns: append([]string(nil), ix.Cols...)}
	}
	return out
}

// ErrDatabaseClosed is returned by every query entry point after Close.
var ErrDatabaseClosed = errors.New("gapplydb: database is closed")

// Close shuts the database down: new queries are rejected with
// ErrDatabaseClosed, in-flight queries and open streams are cancelled
// through their execution contexts, and Close blocks until all of them
// have unwound. The statement plan cache is invalidated so a later
// reopening of the same catalog cannot observe stale plans. Close is
// idempotent; concurrent calls all block until teardown completes.
//
// The network server calls this as the last step of its shutdown
// sequence; embedded callers get deterministic teardown for free.
func (db *Database) Close() error {
	db.closeMu.Lock()
	already := db.closed
	db.closed = true
	db.closeMu.Unlock()
	if !already {
		db.closeCancel()
	}
	db.inflight.Wait()
	db.plans.clear()
	return nil
}

// acquire admits one execution against the database lifecycle: it fails
// once Close has begun, and otherwise registers the execution so Close
// drains it. The returned release is idempotent.
func (db *Database) acquire() (release func(), err error) {
	db.closeMu.RLock()
	if db.closed {
		db.closeMu.RUnlock()
		return nil, ErrDatabaseClosed
	}
	db.inflight.Add(1)
	db.closeMu.RUnlock()
	var once sync.Once
	return func() { once.Do(db.inflight.Done) }, nil
}

// lifecycleContext derives the execution context every query runs
// under: the caller's ctx, additionally cancelled when the database
// closes. The returned stop releases the linkage and must always be
// called.
func (db *Database) lifecycleContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	unlink := context.AfterFunc(db.closeCtx, cancel)
	return ctx, func() { unlink(); cancel() }
}

// InvalidatePlanCache drops every cached statement plan. Schema changes
// and RefreshStats already invalidate implicitly (the cache key includes
// the catalog version and the statistics epoch); this hook is for
// callers that mutate data in ways the engine cannot see and want
// freshly costed plans without a statistics refresh.
func (db *Database) InvalidatePlanCache() { db.plans.clear() }

// Metrics returns a point-in-time snapshot of the database's lifetime
// metrics: query and error counts, optimize/execute latency histograms,
// groups formed, the serial/parallel group-execution split, and the
// apply-cache hit tallies. Safe to call concurrently with queries.
func (db *Database) Metrics() metrics.Snapshot { return db.reg.Snapshot() }

// PublishMetrics exposes the database's metrics registry as an expvar
// variable under the given name (JSON, recomputed per read). Publishing
// the same name twice is a no-op, so it is safe to call at every startup.
func (db *Database) PublishMetrics(name string) { metrics.Publish(name, db.reg) }

// Column describes one column of a user-created table. Type is one of
// "int", "float", "string", "bool", "date".
type Column struct {
	Name string
	Type string
}

// ForeignKey declares a foreign key for a user-created table; the
// optimizer's invariant-grouping rule relies on these declarations.
type ForeignKey struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// CreateTable registers a new table.
func (db *Database) CreateTable(name string, cols []Column, primaryKey []string, fks ...ForeignKey) error {
	sc := make([]schema.Column, len(cols))
	for i, c := range cols {
		k, err := kindOf(c.Type)
		if err != nil {
			return err
		}
		sc[i] = schema.Column{Name: c.Name, Type: k}
	}
	def := &schema.TableDef{Name: name, Schema: schema.New(sc...), PrimaryKey: primaryKey}
	for _, fk := range fks {
		def.ForeignKeys = append(def.ForeignKeys, schema.ForeignKey{
			Cols: fk.Columns, RefTable: fk.RefTable, RefCols: fk.RefColumns,
		})
	}
	_, err := db.cat.Create(def)
	return err
}

func kindOf(t string) (types.Kind, error) {
	switch strings.ToLower(t) {
	case "int", "integer", "bigint":
		return types.KindInt, nil
	case "float", "double", "decimal":
		return types.KindFloat, nil
	case "string", "varchar", "text":
		return types.KindString, nil
	case "bool", "boolean":
		return types.KindBool, nil
	case "date":
		return types.KindDate, nil
	default:
		return types.KindNull, fmt.Errorf("gapplydb: unknown column type %q", t)
	}
}

// Insert appends rows to a table. Accepted Go values per cell: nil,
// int, int64, float64, string, bool.
func (db *Database) Insert(table string, rows ...[]any) error {
	tab, err := db.cat.Lookup(table)
	if err != nil {
		return err
	}
	for _, r := range rows {
		row := make(types.Row, len(r))
		for i, v := range r {
			tv, err := toValue(v)
			if err != nil {
				return err
			}
			row[i] = tv
		}
		if err := tab.Append(row); err != nil {
			return err
		}
	}
	return nil
}

func toValue(v any) (types.Value, error) {
	switch x := v.(type) {
	case nil:
		return types.Null, nil
	case int:
		return types.NewInt(int64(x)), nil
	case int64:
		return types.NewInt(x), nil
	case float64:
		return types.NewFloat(x), nil
	case string:
		return types.NewString(x), nil
	case bool:
		return types.NewBool(x), nil
	default:
		return types.Null, fmt.Errorf("gapplydb: unsupported value type %T", v)
	}
}

// Tables lists the table names.
func (db *Database) Tables() []string { return db.cat.Names() }

// RefreshStats recollects optimizer statistics; call it after bulk
// loading so cardinality estimates reflect the data. Cached statement
// plans compiled under the previous statistics are invalidated (the
// cache key carries the statistics epoch).
func (db *Database) RefreshStats() {
	db.st = stats.Collect(db.cat)
	db.opt = opt.New(db.cat, db.st)
	db.statsEpoch.Add(1)
}

// QueryOption tunes a single query's planning and execution.
type QueryOption func(*queryConfig)

type queryConfig struct {
	optOpts      opt.Options
	dop          int
	instrument   bool
	budget       Budget
	noPlanCache  bool
	noSpool      bool
	rowExec      bool
	planCacheHit bool // set after compile; not a user option

	// Tracing (see tracing.go). traceBuilder is either supplied via
	// WithTraceBuilder (the network server, which opens the trace before
	// the engine so admission wait is a span) or created by traceSetup.
	traceID      trace.ID
	forceTrace   bool
	traceProb    float64
	traceBuilder *trace.Builder
}

// Budget caps one query's resource consumption. Every limit defaults to
// unlimited (zero); exceeding a set limit kills the query with a
// *ResourceError, and exceeding the timeout kills it with
// context.DeadlineExceeded. A server fronting untrusted queries should
// set all three.
type Budget struct {
	// MaxOutputRows caps how many rows the query may return.
	MaxOutputRows int64
	// MaxPartitionBytes caps the bytes GApply may materialize into
	// per-group partitions — the engine's dominant memory consumer.
	MaxPartitionBytes int64
	// Timeout is the query's wall-clock deadline, enforced through the
	// execution context (it composes with any deadline already on the
	// caller's context: the earlier one wins).
	Timeout time.Duration
}

// WithBudget applies a resource budget to the query.
func WithBudget(b Budget) QueryOption {
	return func(c *queryConfig) { c.budget = b }
}

// WithTimeout is shorthand for WithBudget(Budget{Timeout: d}) composed
// with any other limits already set: it caps only the wall clock.
func WithTimeout(d time.Duration) QueryOption {
	return func(c *queryConfig) { c.budget.Timeout = d }
}

// ResourceError reports a query killed for exceeding its Budget.
// Inspect it with errors.As:
//
//	var re *gapplydb.ResourceError
//	if errors.As(err, &re) { log.Printf("killed: %s at %s", re.Limit, re.Operator) }
type ResourceError struct {
	// Limit names the exceeded dimension: "max-output-rows" or
	// "max-partition-bytes".
	Limit string
	// Operator is the plan operator that blew the budget, in the compact
	// shape the optimizer trace uses.
	Operator string
	// Max is the configured limit; Used the observed consumption.
	Max, Used int64
}

func (e *ResourceError) Error() string {
	return fmt.Sprintf("gapplydb: resource budget exceeded: %s = %d (limit %d) at %s",
		e.Limit, e.Used, e.Max, e.Operator)
}

// WithInstrumentation turns on per-operator profiling for the query:
// every plan node records its actual row count, loop count (Opens) and
// inclusive wall time, which ExplainAnalyze renders and Result exposes.
// Without this option (and outside EXPLAIN ANALYZE) execution carries no
// probes at all, so the default path pays nothing for the feature.
func WithInstrumentation() QueryOption {
	return func(c *queryConfig) { c.instrument = true }
}

// WithoutPlanCache compiles the statement from scratch, neither reading
// nor populating the statement plan cache. The benchmark harness uses it
// to measure cold compilation; it is also the escape hatch if a cached
// plan is ever suspected stale.
func WithoutPlanCache() QueryOption {
	return func(c *queryConfig) { c.noPlanCache = true }
}

// WithoutSpooling disables GApply's invariant-subtree spooling for the
// query: every per-group execution re-runs the whole inner tree, as the
// engine did before the spool layer. Differential tests and the spool
// benchmark use it; there is no reason to set it in production.
func WithoutSpooling() QueryOption {
	return func(c *queryConfig) { c.noSpool = true }
}

// WithoutIndexes plans the query as if no secondary indexes existed:
// no index scans, no sort elision, no merge joins, no ordered GApply
// partitioning. Output is byte-identical either way — that invariant is
// what the differential tests assert — so the option exists for them
// and for before/after benchmarking, not for production use.
func WithoutIndexes() QueryOption {
	return func(c *queryConfig) { c.optOpts.DisableIndexes = true }
}

// WithRowExecution runs the query on the row-at-a-time (Volcano)
// engine instead of the default vectorized batch engine. The two
// engines produce identical rows, errors, counters and profiles; the
// row engine is kept as the differential-testing oracle and for
// before/after benchmarking. There is no reason to set this in
// production.
func WithRowExecution() QueryOption {
	return func(c *queryConfig) { c.rowExec = true }
}

// WithoutRule disables one optimizer rule (see RuleNames) for the query.
func WithoutRule(name string) QueryOption {
	return func(c *queryConfig) {
		if c.optOpts.DisableRules == nil {
			c.optOpts.DisableRules = map[string]bool{}
		}
		c.optOpts.DisableRules[name] = true
	}
}

// ForceRule makes a cost-based rule fire regardless of estimated cost.
func ForceRule(name string) QueryOption {
	return func(c *queryConfig) {
		if c.optOpts.ForceRules == nil {
			c.optOpts.ForceRules = map[string]bool{}
		}
		c.optOpts.ForceRules[name] = true
	}
}

// WithoutOptimizer executes the bound plan as written, skipping every
// logical rewrite (physical strategies are still assigned).
func WithoutOptimizer() QueryOption {
	return func(c *queryConfig) { c.optOpts.SkipOptimization = true }
}

// WithDOP caps the degree of parallelism of GApply's execution phase:
// how many groups may be evaluated concurrently by the worker pool.
// n = 1 forces the paper's serial execution; n <= 0 restores the
// default, runtime.GOMAXPROCS(0). Output is byte-identical at every
// degree — results stay clustered in partition order — so the knob
// trades only memory (up to ~2×dop buffered groups) for speed.
func WithDOP(n int) QueryOption {
	return func(c *queryConfig) { c.dop = n }
}

// WithPartition selects the GApply partitioning strategy: "hash",
// "sort", or "auto" (cost-based; the default).
func WithPartition(strategy string) QueryOption {
	return func(c *queryConfig) {
		switch strings.ToLower(strategy) {
		case "hash":
			c.optOpts.Partition = core.PartitionHash
		case "sort":
			c.optOpts.Partition = core.PartitionSort
		default:
			c.optOpts.Partition = core.PartitionAuto
		}
	}
}

// Result is a materialized query result.
type Result struct {
	Columns []string
	Rows    [][]any
	// Elapsed is the execution wall time (excluding parse/bind/optimize).
	Elapsed time.Duration
	// Stats tallies work done by the executor.
	Stats ExecStats
	// Trace records every optimizer rule application considered for this
	// query, in order (nil when the optimizer was skipped).
	Trace []RuleApplication
	// TraceID identifies this query's end-to-end trace in the flight
	// recorder (Database.Traces); zero when the query was not traced.
	TraceID TraceID

	inner *exec.Result
	text  string // rendered explanation, for EXPLAIN statements
	prof  *exec.Profile
}

// ExecStats mirrors the executor's work counters.
type ExecStats struct {
	RowsScanned        int64
	Groups             int64
	InnerExecs         int64
	SerialGroupExecs   int64
	ParallelGroupExecs int64
	ApplyExecs         int64
	ApplyCacheHits     int64
	JoinProbes         int64
	// SpoolBuilds/SpoolHits count GApply's invariant-subtree spool
	// activity: materializations performed vs. re-Opens served by replay.
	SpoolBuilds int64
	SpoolHits   int64
	// PlanCacheHits is 1 when this statement's plan came from the
	// statement plan cache, 0 when it was compiled from scratch.
	PlanCacheHits int64
}

// String renders the result as an aligned table (or, for an EXPLAIN
// statement, the rendered plan report).
func (r *Result) String() string {
	if r.inner == nil {
		return r.text
	}
	return r.inner.String()
}

// Query parses, binds, optimizes and executes a statement. It is safe
// for concurrent callers: every execution gets its own context, and the
// loaded catalog is only read.
//
// A statement prefixed with EXPLAIN [ANALYZE] is routed to the
// corresponding explain path: the result has a single "QUERY PLAN"
// column whose rows are the report's lines (ANALYZE executes the query
// to completion but likewise returns the report, not the query's rows).
func (db *Database) Query(query string, options ...QueryOption) (*Result, error) {
	return db.QueryContext(context.Background(), query, options...)
}

// QueryContext is Query under a caller-supplied context: cancelling ctx
// (or passing its deadline) stops the statement — partitioning, sorts,
// joins, aggregation and parallel GApply workers included — within one
// row batch, returning context.Canceled or context.DeadlineExceeded.
// Any Budget timeout set via options composes with ctx's own deadline.
func (db *Database) QueryContext(ctx context.Context, query string, options ...QueryOption) (*Result, error) {
	release, err := db.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	cfg := makeConfig(options)
	tb := db.traceSetup(&cfg, query)
	c, hit, err := db.compile(query, cfg)
	if err != nil {
		db.finishTrace(tb, err)
		return nil, err
	}
	cfg.planCacheHit = hit
	switch c.mode {
	case sql.ExplainAnalyze:
		e, err := db.explainCompiled(ctx, c, cfg, true)
		if err != nil {
			return nil, err
		}
		return e.planResult(), nil
	case sql.ExplainPlan:
		e, err := db.explainCompiled(ctx, c, cfg, false)
		if err != nil {
			db.finishTrace(tb, err)
			return nil, err
		}
		db.finishTrace(tb, nil)
		return e.planResult(), nil
	}
	return db.execute(ctx, c, cfg)
}

func makeConfig(options []QueryOption) queryConfig {
	var cfg queryConfig
	for _, o := range options {
		o(&cfg)
	}
	return cfg
}

// Plan compiles a statement to its optimized logical plan.
func (db *Database) Plan(query string, options ...QueryOption) (core.Node, error) {
	c, _, err := db.compile(query, makeConfig(options))
	if err != nil {
		return nil, err
	}
	return c.plan, nil
}

// PlanTrace compiles a statement and returns the optimized plan together
// with the optimizer's full rule trace and whether the statement carries
// an EXPLAIN prefix. The distributed coordinator uses the trace to pin
// the cost-based decisions it needs every shard to reproduce.
func (db *Database) PlanTrace(query string, options ...QueryOption) (core.Node, []RuleApplication, bool, error) {
	c, _, err := db.compile(query, makeConfig(options))
	if err != nil {
		return nil, nil, false, err
	}
	return c.plan, toTrace(c.trace), c.mode != sql.ExplainNone, nil
}

// compiled is a statement after parse/bind/optimize: the plan, the
// optimizer's rule trace, and the EXPLAIN mode of the statement prefix.
type compiled struct {
	plan  core.Node
	trace []opt.RuleApplication
	mode  sql.ExplainMode
}

// planCacheKey identifies one compilation: the statement text, the
// canonical options fingerprint, and the catalog version + statistics
// epoch the plan was produced under (so schema changes and RefreshStats
// invalidate implicitly).
func (db *Database) planCacheKey(query string, cfg queryConfig) string {
	return fmt.Sprintf("v%d.e%d|%s|%s", db.cat.Version(), db.statsEpoch.Load(), cfg.optOpts.Fingerprint(), query)
}

// compile parses, binds and optimizes a statement, consulting the
// statement plan cache first. The second result reports a cache hit.
// Cached compilations are immutable and shared: executions only read the
// plan tree, so one entry serves concurrent callers.
func (db *Database) compile(query string, cfg queryConfig) (*compiled, bool, error) {
	tb := cfg.traceBuilder // nil for untraced queries; every call below no-ops
	var key string
	if !cfg.noPlanCache {
		key = db.planCacheKey(query, cfg)
		lookup := tb.StartSpan("plan-cache", 0)
		c, ok := db.plans.get(key)
		tb.EndSpan(lookup)
		if ok {
			tb.Annotate(lookup, trace.Attr{Key: "verdict", Value: "hit"})
			tb.SetPlanHash(core.PlanHash(c.plan))
			db.reg.Counter("plan_cache_hits").Inc()
			return c, true, nil
		}
		tb.Annotate(lookup, trace.Attr{Key: "verdict", Value: "miss"})
		db.reg.Counter("plan_cache_misses").Inc()
	}
	start := time.Now()
	parseSpan := tb.StartSpan("parse", 0)
	stmt, mode, err := sql.Parse(query)
	tb.EndSpan(parseSpan)
	if err != nil {
		db.reg.Counter("query_errors").Inc()
		return nil, false, err
	}
	bindSpan := tb.StartSpan("bind", 0)
	bound, err := bind.New(db.cat).Bind(stmt)
	tb.EndSpan(bindSpan)
	if err != nil {
		db.reg.Counter("query_errors").Inc()
		return nil, false, err
	}
	optSpan := tb.StartSpan("optimize", 0)
	plan, ruleTrace := db.opt.OptimizeTraced(bound, cfg.optOpts)
	tb.EndSpan(optSpan)
	if tb != nil {
		accepted := 0
		for _, a := range ruleTrace {
			if a.Accepted {
				accepted++
				tb.Annotate(optSpan, trace.Attr{Key: "rule", Value: a.Rule})
			}
		}
		tb.Annotate(optSpan,
			trace.Attr{Key: "rules_accepted", Value: fmt.Sprint(accepted)},
			trace.Attr{Key: "rules_considered", Value: fmt.Sprint(len(ruleTrace))})
		tb.SetPlanHash(core.PlanHash(plan))
	}
	db.reg.Histogram("optimize_latency").Observe(time.Since(start))
	c := &compiled{plan: plan, trace: ruleTrace, mode: mode}
	if !cfg.noPlanCache {
		db.plans.put(key, c)
	}
	return c, false, nil
}

// execute runs an optimized plan under the caller's context and budget.
func (db *Database) execute(ctx context.Context, c *compiled, cfg queryConfig) (*Result, error) {
	ctx, stop := db.lifecycleContext(ctx)
	defer stop()
	if cfg.budget.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.budget.Timeout)
		defer cancel()
	}
	ectx := db.execContext(ctx, cfg)
	tb := cfg.traceBuilder
	execSpan := tb.StartSpan("execute", 0)
	start := time.Now()
	res, err := exec.Run(c.plan, ectx)
	elapsed := time.Since(start)
	tb.EndSpan(execSpan)
	db.reg.Counter("queries").Inc()
	db.reg.Histogram("execute_latency").Observe(elapsed)
	if err != nil {
		err = db.classifyExecError(err)
		attachOperatorSpans(tb, execSpan, c.plan, ectx.Prof)
		db.finishTrace(tb, err)
		return nil, err
	}
	db.recordExecMetrics(ectx.Counters)
	attachOperatorSpans(tb, execSpan, c.plan, ectx.Prof)
	db.finishTrace(tb, nil)

	out := &Result{
		Columns: make([]string, res.Schema.Len()),
		Rows:    make([][]any, len(res.Rows)),
		Elapsed: elapsed,
		Stats:   statsOf(ectx.Counters),
		Trace:   toTrace(c.trace),
		TraceID: tb.ID(),
		inner:   res,
		prof:    ectx.Prof,
	}
	for i, c := range res.Schema.Cols {
		out.Columns[i] = c.QualifiedName()
	}
	for i, row := range res.Rows {
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = toGo(v)
		}
		out.Rows[i] = vals
	}
	return out, nil
}

// execContext builds the executor context one configured query runs
// under (shared by the materializing and streaming paths).
func (db *Database) execContext(ctx context.Context, cfg queryConfig) *exec.Context {
	ectx := exec.NewContext(db.cat)
	ectx.DOP = cfg.dop
	ectx.Ctx = ctx
	ectx.NoSpool = cfg.noSpool
	ectx.RowExec = cfg.rowExec
	if cfg.planCacheHit {
		ectx.Counters.PlanCacheHits = 1
	}
	if cfg.instrument {
		ectx.Prof = exec.NewProfile()
	}
	if cfg.budget.MaxOutputRows > 0 || cfg.budget.MaxPartitionBytes > 0 {
		ectx.Budget = &exec.Budget{
			MaxOutputRows:     cfg.budget.MaxOutputRows,
			MaxPartitionBytes: cfg.budget.MaxPartitionBytes,
		}
	}
	return ectx
}

// statsOf mirrors the executor's counters into the public ExecStats.
func statsOf(c exec.Counters) ExecStats {
	return ExecStats{
		RowsScanned:        c.RowsScanned,
		Groups:             c.Groups,
		InnerExecs:         c.InnerExecs,
		SerialGroupExecs:   c.SerialGroupExecs,
		ParallelGroupExecs: c.ParallelGroupExecs,
		ApplyExecs:         c.ApplyExecs,
		ApplyCacheHits:     c.ApplyCacheHits,
		JoinProbes:         c.JoinProbes,
		SpoolBuilds:        c.SpoolBuilds,
		SpoolHits:          c.SpoolHits,
		PlanCacheHits:      c.PlanCacheHits,
	}
}

// classifyExecError folds a failed execution into the metrics taxonomy
// — cancelled, timed out, budget-killed, or a plain error — and rewraps
// the internal resource error as the public *ResourceError so callers
// outside the module can errors.As it.
func (db *Database) classifyExecError(err error) error {
	db.reg.Counter("query_errors").Inc()
	var re *exec.ResourceError
	switch {
	case errors.Is(err, context.Canceled):
		db.reg.Counter("queries_cancelled").Inc()
	case errors.Is(err, context.DeadlineExceeded):
		db.reg.Counter("queries_timed_out").Inc()
	case errors.As(err, &re):
		db.reg.Counter("queries_budget_killed").Inc()
		return &ResourceError{Limit: re.Limit, Operator: re.Operator, Max: re.Max, Used: re.Used}
	}
	return err
}

func toGo(v types.Value) any {
	switch v.K {
	case types.KindNull:
		return nil
	case types.KindInt, types.KindDate:
		return v.Int()
	case types.KindFloat:
		return v.Float()
	case types.KindString:
		return v.Str()
	case types.KindBool:
		return v.Bool()
	default:
		return nil
	}
}

// Explain returns a textual report: the optimized plan tree and the
// optimizer's cardinality/cost estimate.
func (db *Database) Explain(query string, options ...QueryOption) (string, error) {
	plan, err := db.Plan(query, options...)
	if err != nil {
		return "", err
	}
	est := db.opt.Estimate(plan)
	var b strings.Builder
	b.WriteString(core.Format(plan))
	fmt.Fprintf(&b, "estimated rows: %.0f  estimated cost: %.0f\n", est.Rows, est.Cost)
	return b.String(), nil
}

// RuleNames returns the optimizer's rule identifiers, usable with
// WithoutRule and ForceRule.
func RuleNames() []string {
	return []string{
		"push-down-selections",
		"decorrelate-scalar-agg",
		"push-select-into-gapply",
		"push-project-into-gapply",
		"selection-before-gapply",
		"projection-before-gapply",
		"gapply-to-groupby",
		"group-selection-exists",
		"group-selection-aggregate",
		"invariant-grouping",
	}
}
