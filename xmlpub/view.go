// Package xmlpub is the XML publishing layer the paper's workload comes
// from: XML views of relational data (Figure 1), an XQuery-FLWR query
// fragment over them (§2's Q1/Q2 and §4.2's group selections), and two
// server translation strategies —
//
//   - SortedOuterUnionSQL: the classic XPeranto-style "sorted outer
//     union" plan: one SQL statement per query, unioning one branch per
//     content section, padded with NULLs, ordered by the element key so
//     a constant-space tagger can assemble elements; and
//   - GApplySQL: the paper's approach, using the extended syntax
//     (select gapply(...) ... group by key : var), whose GApply operator
//     clusters output by construction and avoids the redundant joins the
//     outer union repeats per branch.
//
// Both strategies produce rows in the same (key, branch, slots...)
// layout, so a single Tagger turns either into XML.
package xmlpub

import (
	"fmt"
	"strings"
)

// Field maps a relational column to an XML tag. With Attr set the
// value is published as an attribute of the wrapping child element
// instead of a sub-element — the paper's Figure 1 allows both mappings
// ("relational attributes can be mapped to sub-elements or
// attributes").
type Field struct {
	Col  string
	Tag  string
	Attr bool
}

// View is a two-level XML view of relational data in the style of the
// paper's Figure 1: one element per distinct key value of a join, with
// the joined child rows nested inside it.
type View struct {
	RootTag string // document element, e.g. "suppliers"
	ElemTag string // per-group element, e.g. "supplier"

	// Tables are the base tables joined to flatten the view; the first
	// table owns the key column (translation aliases it for correlated
	// subqueries). JoinCond must use unqualified column names.
	Tables   []string
	JoinCond string

	KeyCol string // grouping column, e.g. "ps_suppkey"
	KeyTag string // its XML tag, e.g. "suppkey"

	ChildTag    string  // nested element tag, e.g. "part"
	ChildFields []Field // its content
}

// TPCHSupplierView is the paper's running example: supplier elements
// over partsupp ⋈ part, with the supplied parts nested inside.
func TPCHSupplierView() *View {
	return &View{
		RootTag:  "suppliers",
		ElemTag:  "supplier",
		Tables:   []string{"partsupp", "part"},
		JoinCond: "ps_partkey = p_partkey",
		KeyCol:   "ps_suppkey",
		KeyTag:   "suppkey",
		ChildTag: "part",
		ChildFields: []Field{
			{Col: "p_name", Tag: "name"},
			{Col: "p_retailprice", Tag: "retailprice"},
		},
	}
}

// AggRef names a subtree aggregate, optionally scaled: avg(col),
// 0.9·max(col), …. Scale 0 means 1.
type AggRef struct {
	Fn    string
	Col   string
	Scale float64
}

func (a AggRef) scaleSQL(sub string) string {
	if a.Scale != 0 && a.Scale != 1 {
		return fmt.Sprintf("%g * %s", a.Scale, sub)
	}
	return sub
}

// ItemKind classifies return-clause items.
type ItemKind int

const (
	// ItemChildList emits the nested child elements, optionally filtered
	// by a comparison of a column with a subtree aggregate (Q1, Q3).
	ItemChildList ItemKind = iota
	// ItemAgg emits one scalar: a subtree aggregate (Q1's avgprice).
	ItemAgg
	// ItemFilteredCount emits one scalar: the count of children whose
	// column compares against a subtree aggregate (Q2's counts).
	ItemFilteredCount
)

// Item is one piece of constructed element content.
type Item struct {
	Kind ItemKind
	Tag  string // output tag: wrapping tag for lists, value tag for scalars

	// For ItemChildList / ItemFilteredCount: the optional filter
	// "FilterCol FilterOp [FilterAgg]".
	FilterCol string
	FilterOp  string
	FilterAgg *AggRef

	// For ItemAgg: the aggregate to emit.
	Agg *AggRef
}

// PredKind classifies subtree predicates (the paper's §4.2 group
// selections).
type PredKind int

const (
	// PredExists keeps elements with some child satisfying Cond.
	PredExists PredKind = iota
	// PredAggregate keeps elements whose subtree aggregate compares
	// against a literal.
	PredAggregate
)

// SubtreePred is the optional FLWR where-clause.
type SubtreePred struct {
	Kind PredKind
	// Cond is a SQL condition over child columns (PredExists).
	Cond string
	// Agg CmpOp Lit (PredAggregate), e.g. avg(p_retailprice) > 10000.
	Agg   AggRef
	CmpOp string
	Lit   float64
}

// FLWR is the supported XQuery fragment: iterate a view's elements,
// optionally filter by a subtree predicate, and return constructed
// content.
type FLWR struct {
	View   *View
	Where  *SubtreePred
	Return []Item
}

// Q1 is the paper's first example: each supplier's parts plus the
// overall average retail price.
func Q1() *FLWR {
	v := TPCHSupplierView()
	return &FLWR{
		View: v,
		Return: []Item{
			{Kind: ItemChildList, Tag: v.ChildTag},
			{Kind: ItemAgg, Tag: "avgprice", Agg: &AggRef{Fn: "avg", Col: "p_retailprice"}},
		},
	}
}

// Q2 counts each supplier's parts priced at/above and below the
// supplier's average.
func Q2() *FLWR {
	v := TPCHSupplierView()
	avg := &AggRef{Fn: "avg", Col: "p_retailprice"}
	return &FLWR{
		View: v,
		Return: []Item{
			{Kind: ItemFilteredCount, Tag: "count_above", FilterCol: "p_retailprice", FilterOp: ">=", FilterAgg: avg},
			{Kind: ItemFilteredCount, Tag: "count_below", FilterCol: "p_retailprice", FilterOp: "<", FilterAgg: avg},
		},
	}
}

// Q3 lists each supplier's high-end and low-end parts: high-end parts
// cost at least hi × the maximum price, low-end at most lo × the
// minimum.
func Q3(hi, lo float64) *FLWR {
	v := TPCHSupplierView()
	return &FLWR{
		View: v,
		Return: []Item{
			{Kind: ItemChildList, Tag: "highend", FilterCol: "p_retailprice", FilterOp: ">=",
				FilterAgg: &AggRef{Fn: "max", Col: "p_retailprice", Scale: hi}},
			{Kind: ItemChildList, Tag: "lowend", FilterCol: "p_retailprice", FilterOp: "<=",
				FilterAgg: &AggRef{Fn: "min", Col: "p_retailprice", Scale: lo}},
		},
	}
}

// Q4 is the paper's fourth example restated over the two-level view:
// for each (supplier, size) element, parts priced above that group's
// average. It uses a composite key; see cmd/bench for the exact SQL the
// harness uses.
//
// ExpensiveSuppliers is §4.2's existential group selection: suppliers
// supplying some part above the threshold, returned whole.
func ExpensiveSuppliers(threshold float64) *FLWR {
	v := TPCHSupplierView()
	return &FLWR{
		View: v,
		Where: &SubtreePred{
			Kind: PredExists,
			Cond: fmt.Sprintf("p_retailprice > %g", threshold),
		},
		Return: []Item{{Kind: ItemChildList, Tag: v.ChildTag}},
	}
}

// RichSuppliers is §4.2's aggregate group selection: suppliers whose
// average part price exceeds the threshold, returned whole.
func RichSuppliers(threshold float64) *FLWR {
	v := TPCHSupplierView()
	return &FLWR{
		View: v,
		Where: &SubtreePred{
			Kind:  PredAggregate,
			Agg:   AggRef{Fn: "avg", Col: "p_retailprice"},
			CmpOp: ">",
			Lit:   threshold,
		},
		Return: []Item{{Kind: ItemChildList, Tag: v.ChildTag}},
	}
}

// fields returns the columns an item emits (lists emit the child
// fields; scalars emit one slot).
func (it Item) fields(v *View) []Field {
	if it.Kind == ItemChildList {
		return v.ChildFields
	}
	return []Field{{Col: "", Tag: it.Tag}}
}

// Validate checks the query is well-formed.
func (q *FLWR) Validate() error {
	if q.View == nil {
		return fmt.Errorf("xmlpub: query has no view")
	}
	if len(q.View.Tables) == 0 || q.View.KeyCol == "" {
		return fmt.Errorf("xmlpub: view needs tables and a key column")
	}
	if len(q.Return) == 0 {
		return fmt.Errorf("xmlpub: query returns nothing")
	}
	for _, it := range q.Return {
		switch it.Kind {
		case ItemAgg:
			if it.Agg == nil {
				return fmt.Errorf("xmlpub: aggregate item %q has no aggregate", it.Tag)
			}
		case ItemFilteredCount:
			if it.FilterCol == "" || it.FilterOp == "" || it.FilterAgg == nil {
				return fmt.Errorf("xmlpub: filtered count %q is incomplete", it.Tag)
			}
		}
	}
	if q.Where != nil && q.Where.Kind == PredExists && strings.TrimSpace(q.Where.Cond) == "" {
		return fmt.Errorf("xmlpub: exists predicate has no condition")
	}
	return nil
}
