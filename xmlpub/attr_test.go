package xmlpub

import (
	"strings"
	"testing"
)

// attrView maps p_name to an attribute on the child element — the
// paper's "relational attributes can be mapped to sub-elements or
// attributes".
func attrView() *View {
	v := TPCHSupplierView()
	v.ChildFields = []Field{
		{Col: "p_name", Tag: "name", Attr: true},
		{Col: "p_retailprice", Tag: "retailprice"},
	}
	return v
}

func TestAttributeMappingBothStrategies(t *testing.T) {
	db := fixtureDB(t)
	q := &FLWR{
		View: attrView(),
		Return: []Item{
			{Kind: ItemChildList, Tag: "part"},
			{Kind: ItemAgg, Tag: "avgprice", Agg: &AggRef{Fn: "avg", Col: "p_retailprice"}},
		},
	}
	ga := publish(t, db, q, GApply)
	sou := publish(t, db, q, SortedOuterUnion)
	if ga != sou {
		t.Errorf("strategies disagree:\n%s\nvs\n%s", ga, sou)
	}
	if !strings.Contains(ga, `<part name="bolt"><retailprice>10</retailprice></part>`) {
		t.Errorf("attribute mapping missing:\n%s", ga)
	}
	if err := checkWellFormed(ga); err != nil {
		t.Errorf("not well-formed: %v\n%s", err, ga)
	}
}

func TestAttributeEscaping(t *testing.T) {
	plan := &TagPlan{RootTag: "r", ElemTag: "e", KeyTag: "k",
		Branches: []BranchPlan{{
			Wrap: "c",
			Fields: []FieldSlot{
				{Ordinal: 2, Tag: "a", Attr: true},
				{Ordinal: 3, Tag: "v"},
			},
		}}}
	var b strings.Builder
	rows := [][]any{{int64(1), int64(0), `x<"&y`, "body"}}
	if err := TagAll(plan, rows, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := checkWellFormed(out); err != nil {
		t.Fatalf("not well-formed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "x&lt;") || strings.Contains(out, `x<"`) {
		t.Errorf("attribute not escaped:\n%s", out)
	}
	// NULL attributes are simply omitted.
	b.Reset()
	if err := TagAll(plan, [][]any{{int64(1), int64(0), nil, "body"}}, &b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "a=") {
		t.Errorf("NULL attribute emitted:\n%s", b.String())
	}
}

func TestAttrOnScalarBranchIgnored(t *testing.T) {
	// Attr only makes sense on wrapped (child list) branches; the plan
	// builder clears it elsewhere.
	q := &FLWR{
		View: attrView(),
		Return: []Item{
			{Kind: ItemAgg, Tag: "avgprice", Agg: &AggRef{Fn: "avg", Col: "p_retailprice"}},
		},
	}
	plan := q.TagPlan()
	for _, bp := range plan.Branches {
		for _, f := range bp.Fields {
			if f.Attr {
				t.Errorf("scalar branch field marked Attr: %+v", f)
			}
		}
	}
}
