package xmlpub

import (
	"encoding/xml"
	"io"
	"strings"
	"testing"
)

// attrPlan is a two-column wrapped branch: ordinal 2 maps to attribute
// a, ordinal 3 to element v.
func attrPlan() *TagPlan {
	return &TagPlan{RootTag: "r", ElemTag: "e", KeyTag: "k",
		Branches: []BranchPlan{{
			Wrap: "c",
			Fields: []FieldSlot{
				{Ordinal: 2, Tag: "a", Attr: true},
				{Ordinal: 3, Tag: "v"},
			},
		}}}
}

// decodeAttrs returns the value of attribute a on every <c> element, as
// the stdlib decoder sees it — i.e. after XML unescaping. Round-tripping
// through this is the correctness bar: whatever value went in must come
// back out.
func decodeAttrs(t *testing.T, doc string) []string {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	var got []string
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return got
		}
		if err != nil {
			t.Fatalf("decode: %v\n%s", err, doc)
		}
		se, ok := tok.(xml.StartElement)
		if !ok || se.Name.Local != "c" {
			continue
		}
		for _, at := range se.Attr {
			if at.Name.Local == "a" {
				got = append(got, at.Value)
			}
		}
	}
}

// Attribute values must survive the round trip for data the XML escaper
// leaves alone but Go-string quoting (%q) would mangle: backslashes
// (doubled by %q), newlines (escaped by xml.EscapeText to &#xA;, but a
// %q pass would have turned a raw one into literal \n), and
// non-printable Unicode (%q emits \uXXXX source escapes).
func TestAttributeValuesRoundTrip(t *testing.T) {
	values := []string{
		`back\slash`,
		`C:\dir\file`,
		"line1\nline2",
		"tab\there",
		"nb\u00a0space", // non-breaking space: not IsPrint, so %q would \u00a0 it
		"caf\u00e9 – naïve",
		`quote"inside`,
	}
	for _, want := range values {
		var b strings.Builder
		rows := [][]any{{int64(1), int64(0), want, "body"}}
		if err := TagAll(attrPlan(), rows, &b); err != nil {
			t.Fatalf("%q: %v", want, err)
		}
		doc := b.String()
		if err := checkWellFormed(doc); err != nil {
			t.Errorf("%q: not well-formed: %v\n%s", want, err, doc)
			continue
		}
		got := decodeAttrs(t, doc)
		if len(got) != 1 || got[0] != want {
			t.Errorf("attribute round trip: got %q, want %q\ndoc: %s", got, want, doc)
		}
	}
}

// A NULL grouping key (a supported single-group engine case) must open
// exactly one element for the whole group and close it. The old
// curKey == "" sentinel treated every NULL-key row as a group change
// and dropped the closing tag entirely.
func TestNullKeyGroupWellFormed(t *testing.T) {
	var b strings.Builder
	rows := [][]any{
		{nil, int64(0), "a1", "b1"},
		{nil, int64(0), "a2", "b2"},
		{nil, int64(0), "a3", "b3"},
	}
	if err := TagAll(attrPlan(), rows, &b); err != nil {
		t.Fatal(err)
	}
	doc := b.String()
	if err := checkWellFormed(doc); err != nil {
		t.Fatalf("not well-formed: %v\n%s", err, doc)
	}
	if n := strings.Count(doc, "<e>"); n != 1 {
		t.Errorf("NULL key opened %d elements, want 1:\n%s", n, doc)
	}
	if n := strings.Count(doc, "</e>"); n != 1 {
		t.Errorf("NULL key closed %d elements, want 1:\n%s", n, doc)
	}
}

// Same for a legitimate empty-string key, which also escapes to "".
func TestEmptyStringKeyWellFormed(t *testing.T) {
	var b strings.Builder
	rows := [][]any{
		{"", int64(0), "a1", "b1"},
		{"", int64(0), "a2", "b2"},
	}
	if err := TagAll(attrPlan(), rows, &b); err != nil {
		t.Fatal(err)
	}
	doc := b.String()
	if err := checkWellFormed(doc); err != nil {
		t.Fatalf("not well-formed: %v\n%s", err, doc)
	}
	if n := strings.Count(doc, "</e>"); n != 1 {
		t.Errorf("empty key closed %d elements, want 1:\n%s", n, doc)
	}
	// And an empty-string group followed by a real key still splits into
	// two elements.
	b.Reset()
	rows = [][]any{
		{"", int64(0), "a1", "b1"},
		{"s1", int64(0), "a2", "b2"},
	}
	if err := TagAll(attrPlan(), rows, &b); err != nil {
		t.Fatal(err)
	}
	doc = b.String()
	if err := checkWellFormed(doc); err != nil {
		t.Fatalf("not well-formed: %v\n%s", err, doc)
	}
	if n := strings.Count(doc, "</e>"); n != 2 {
		t.Errorf("got %d elements, want 2:\n%s", n, doc)
	}
}

// Fractional branch ids are errors, not a silent truncation to the
// wrong branch.
func TestFractionalBranchIDRejected(t *testing.T) {
	for _, id := range []float64{1.7, -0.5, 0.999999} {
		var b strings.Builder
		err := TagAll(attrPlan(), [][]any{{int64(1), id, "x", "y"}}, &b)
		if err == nil || !strings.Contains(err.Error(), "bad branch id") {
			t.Errorf("branch id %v: got err %v, want bad branch id", id, err)
		}
	}
	// Integral floats remain accepted — the wire value codec may deliver
	// a branch id as float64.
	var b strings.Builder
	if err := TagAll(attrPlan(), [][]any{{int64(1), float64(0), "x", "y"}}, &b); err != nil {
		t.Errorf("integral float branch id rejected: %v", err)
	}
}
