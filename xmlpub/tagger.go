package xmlpub

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
)

// Tagger assembles XML from rows in (key, branch, slots...) layout. It
// is the paper's constant-space middleware tagger: it holds only the
// current element's key, which is why both translation strategies must
// deliver rows clustered by key — the sorted outer union via ORDER BY,
// GApply by the semantics of its partition phase.
type Tagger struct {
	plan *TagPlan
	w    io.Writer

	started bool
	// open tracks whether an element is currently open. curKey alone
	// cannot: a NULL or empty-string grouping key also escapes to "",
	// and such a group must still open exactly one element and close it.
	open   bool
	curKey string
	err    error
}

// NewTagger starts a document on w.
func NewTagger(plan *TagPlan, w io.Writer) *Tagger {
	return &Tagger{plan: plan, w: w}
}

func (t *Tagger) printf(format string, args ...any) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

func (t *Tagger) escaped(v any) string {
	var buf []byte
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		var b []byte
		b = append(b, x...)
		out := make([]byte, 0, len(b))
		w := &sliceWriter{&out}
		xml.EscapeText(w, b)
		return string(out)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	default:
		buf = append(buf, fmt.Sprint(x)...)
		out := make([]byte, 0, len(buf))
		xml.EscapeText(&sliceWriter{&out}, buf)
		return string(out)
	}
}

type sliceWriter struct{ b *[]byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	*s.b = append(*s.b, p...)
	return len(p), nil
}

// Row consumes one result row. Rows must arrive clustered by key.
func (t *Tagger) Row(row []any) error {
	if t.err != nil {
		return t.err
	}
	if len(row) < 2 {
		t.err = fmt.Errorf("xmlpub: row needs at least key and branch columns, got %d", len(row))
		return t.err
	}
	if !t.started {
		t.printf("<%s>\n", t.plan.RootTag)
		t.started = true
		t.open = false
		t.curKey = ""
	}
	key := t.escaped(row[0])
	if !t.open || key != t.curKey {
		if t.open {
			t.printf("  </%s>\n", t.plan.ElemTag)
		}
		t.open = true
		t.curKey = key
		t.printf("  <%s>\n", t.plan.ElemTag)
		t.printf("    <%s>%s</%s>\n", t.plan.KeyTag, key, t.plan.KeyTag)
	}
	branch, ok := asInt(row[1])
	if !ok || branch < 0 || int(branch) >= len(t.plan.Branches) {
		t.err = fmt.Errorf("xmlpub: bad branch id %v", row[1])
		return t.err
	}
	bp := t.plan.Branches[branch]
	if bp.Wrap != "" {
		// Attributes go into the opening tag; elements follow as content.
		t.printf("    <%s", bp.Wrap)
		for _, f := range bp.Fields {
			if !f.Attr {
				continue
			}
			if f.Ordinal >= len(row) {
				t.err = fmt.Errorf("xmlpub: field ordinal %d out of range (%d columns)", f.Ordinal, len(row))
				return t.err
			}
			if v := row[f.Ordinal]; v != nil {
				// escaped() already XML-escapes quotes, so plain "name="value""
				// quoting is safe. %q would layer Go-string quoting on top,
				// doubling backslashes and turning non-printable or non-ASCII
				// characters into Go \n/\uXXXX escapes inside the document.
				t.printf(` %s="%s"`, f.Tag, t.escaped(v))
			}
		}
		t.printf(">")
		for _, f := range bp.Fields {
			if f.Attr {
				continue
			}
			t.emitField(f, row, "")
		}
		t.printf("</%s>\n", bp.Wrap)
	} else {
		for _, f := range bp.Fields {
			t.printf("    ")
			t.emitField(f, row, "\n")
		}
	}
	return t.err
}

func (t *Tagger) emitField(f FieldSlot, row []any, suffix string) {
	if f.Ordinal >= len(row) {
		t.err = fmt.Errorf("xmlpub: field ordinal %d out of range (%d columns)", f.Ordinal, len(row))
		return
	}
	v := row[f.Ordinal]
	if v == nil {
		t.printf("<%s/>%s", f.Tag, suffix)
		return
	}
	t.printf("<%s>%s</%s>%s", f.Tag, t.escaped(v), f.Tag, suffix)
}

func asInt(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	case float64:
		// Branch ids must be integral: silently truncating 1.7 to branch 1
		// would route the row's slots into the wrong branch's tags.
		if float64(int64(x)) != x {
			return 0, false
		}
		return int64(x), true
	default:
		return 0, false
	}
}

// Close ends the document.
func (t *Tagger) Close() error {
	if t.err != nil {
		return t.err
	}
	if !t.started {
		t.printf("<%s>\n", t.plan.RootTag)
		t.started = true
	} else if t.open {
		t.printf("  </%s>\n", t.plan.ElemTag)
	}
	t.open = false
	t.printf("</%s>\n", t.plan.RootTag)
	return t.err
}

// TagAll runs a full row set through a fresh tagger.
func TagAll(plan *TagPlan, rows [][]any, w io.Writer) error {
	tg := NewTagger(plan, w)
	for _, r := range rows {
		if err := tg.Row(r); err != nil {
			return err
		}
	}
	return tg.Close()
}
