package xmlpub

import (
	"strings"
	"testing"

	"gapplydb"
)

// fixtureDB builds the canonical tiny catalog through the public API.
func fixtureDB(t *testing.T) *gapplydb.Database {
	t.Helper()
	db := gapplydb.Open()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.CreateTable("supplier",
		[]gapplydb.Column{{Name: "s_suppkey", Type: "int"}, {Name: "s_name", Type: "string"}},
		[]string{"s_suppkey"}))
	must(db.CreateTable("part",
		[]gapplydb.Column{
			{Name: "p_partkey", Type: "int"}, {Name: "p_name", Type: "string"},
			{Name: "p_retailprice", Type: "float"}, {Name: "p_brand", Type: "string"}},
		[]string{"p_partkey"}))
	must(db.CreateTable("partsupp",
		[]gapplydb.Column{{Name: "ps_partkey", Type: "int"}, {Name: "ps_suppkey", Type: "int"}},
		[]string{"ps_partkey", "ps_suppkey"},
		gapplydb.ForeignKey{Columns: []string{"ps_partkey"}, RefTable: "part", RefColumns: []string{"p_partkey"}},
		gapplydb.ForeignKey{Columns: []string{"ps_suppkey"}, RefTable: "supplier", RefColumns: []string{"s_suppkey"}}))
	must(db.Insert("supplier", []any{1, "alpha"}, []any{2, "beta"}))
	must(db.Insert("part",
		[]any{1, "bolt", 10.0, "Brand#A"},
		[]any{2, "nut", 20.0, "Brand#B"},
		[]any{3, "washer", 30.0, "Brand#A"},
		[]any{4, "screw", 40.0, "Brand#B"}))
	must(db.Insert("partsupp",
		[]any{1, 1}, []any{2, 1}, []any{3, 1}, []any{3, 2}, []any{4, 2}))
	db.RefreshStats()
	return db
}

func publish(t *testing.T, db *gapplydb.Database, q *FLWR, s Strategy) string {
	t.Helper()
	var b strings.Builder
	if _, err := Publish(db, q, s, &b); err != nil {
		t.Fatalf("%s: %v\nSQL: %s", s, err, q.SQL(s))
	}
	return b.String()
}

func TestQ1BothStrategiesProduceSameXML(t *testing.T) {
	db := fixtureDB(t)
	q := Q1()
	ga := publish(t, db, q, GApply)
	sou := publish(t, db, q, SortedOuterUnion)
	if ga != sou {
		t.Errorf("strategies disagree:\n--- gapply ---\n%s\n--- sorted outer union ---\n%s", ga, sou)
	}
	for _, want := range []string{
		"<suppliers>", "<supplier>", "<suppkey>1</suppkey>",
		"<part><name>bolt</name><retailprice>10</retailprice></part>",
		"<avgprice>20</avgprice>", "<avgprice>35</avgprice>", "</suppliers>",
	} {
		if !strings.Contains(ga, want) {
			t.Errorf("missing %q in:\n%s", want, ga)
		}
	}
}

func TestQ2BothStrategiesAgree(t *testing.T) {
	db := fixtureDB(t)
	q := Q2()
	ga := publish(t, db, q, GApply)
	sou := publish(t, db, q, SortedOuterUnion)
	if ga != sou {
		t.Errorf("strategies disagree:\n%s\nvs\n%s", ga, sou)
	}
	// Supplier 1: prices 10,20,30, avg 20 → 2 at/above, 1 below.
	if !strings.Contains(ga, "<count_above>2</count_above>") ||
		!strings.Contains(ga, "<count_below>1</count_below>") {
		t.Errorf("Q2 counts wrong:\n%s", ga)
	}
}

func TestQ3FiltersByMaxAndMin(t *testing.T) {
	db := fixtureDB(t)
	q := Q3(0.9, 1.5)
	ga := publish(t, db, q, GApply)
	sou := publish(t, db, q, SortedOuterUnion)
	if ga != sou {
		t.Errorf("strategies disagree:\n%s\nvs\n%s", ga, sou)
	}
	// Supplier 1 (10,20,30): high-end ≥ 27 → washer; low-end ≤ 15 → bolt.
	if !strings.Contains(ga, "<highend><name>washer</name>") {
		t.Errorf("high-end missing:\n%s", ga)
	}
	if !strings.Contains(ga, "<lowend><name>bolt</name>") {
		t.Errorf("low-end missing:\n%s", ga)
	}
}

func TestGroupSelectionExistsPublish(t *testing.T) {
	db := fixtureDB(t)
	q := ExpensiveSuppliers(35)
	ga := publish(t, db, q, GApply)
	sou := publish(t, db, q, SortedOuterUnion)
	if ga != sou {
		t.Errorf("strategies disagree:\n%s\nvs\n%s", ga, sou)
	}
	// Only supplier 2 has a part > 35.
	if strings.Contains(ga, "<suppkey>1</suppkey>") {
		t.Errorf("supplier 1 must be filtered out:\n%s", ga)
	}
	if !strings.Contains(ga, "<suppkey>2</suppkey>") {
		t.Errorf("supplier 2 missing:\n%s", ga)
	}
}

func TestGroupSelectionAggregatePublish(t *testing.T) {
	db := fixtureDB(t)
	q := RichSuppliers(25)
	ga := publish(t, db, q, GApply)
	sou := publish(t, db, q, SortedOuterUnion)
	if ga != sou {
		t.Errorf("strategies disagree:\n%s\nvs\n%s", ga, sou)
	}
	// Supplier 2's avg is 35 > 25; supplier 1's is 20.
	if strings.Contains(ga, "<suppkey>1</suppkey>") || !strings.Contains(ga, "<suppkey>2</suppkey>") {
		t.Errorf("aggregate selection wrong:\n%s", ga)
	}
}

func TestGApplySQLShape(t *testing.T) {
	q := Q2()
	sql := q.GApplySQL()
	for _, want := range []string{"gapply(", "group by ps_suppkey : g", "union all", "count(*)"} {
		if !strings.Contains(sql, want) {
			t.Errorf("GApply SQL missing %q:\n%s", want, sql)
		}
	}
	sou := q.SortedOuterUnionSQL()
	for _, want := range []string{"order by ps_suppkey", "__o.ps_suppkey", "union all"} {
		if !strings.Contains(sou, want) {
			t.Errorf("SOU SQL missing %q:\n%s", want, sou)
		}
	}
	if Strategy(GApply).String() != "gapply" || SortedOuterUnion.String() != "sorted-outer-union" {
		t.Error("strategy names")
	}
}

func TestValidate(t *testing.T) {
	if err := (&FLWR{}).Validate(); err == nil {
		t.Error("empty query must fail")
	}
	v := TPCHSupplierView()
	if err := (&FLWR{View: v}).Validate(); err == nil {
		t.Error("no return items must fail")
	}
	bad := &FLWR{View: v, Return: []Item{{Kind: ItemAgg, Tag: "x"}}}
	if err := bad.Validate(); err == nil {
		t.Error("aggregate item without aggregate must fail")
	}
	bad2 := &FLWR{View: v, Return: []Item{{Kind: ItemFilteredCount, Tag: "x"}}}
	if err := bad2.Validate(); err == nil {
		t.Error("incomplete filtered count must fail")
	}
	bad3 := &FLWR{View: v, Where: &SubtreePred{Kind: PredExists},
		Return: []Item{{Kind: ItemChildList, Tag: "part"}}}
	if err := bad3.Validate(); err == nil {
		t.Error("empty exists predicate must fail")
	}
	if err := Q1().Validate(); err != nil {
		t.Errorf("Q1 must validate: %v", err)
	}
}

func TestTaggerEdgeCases(t *testing.T) {
	plan := &TagPlan{RootTag: "r", ElemTag: "e", KeyTag: "k",
		Branches: []BranchPlan{{Wrap: "", Fields: []FieldSlot{{Ordinal: 2, Tag: "v"}}}}}
	// Empty input still produces a well-formed document.
	var b strings.Builder
	if err := TagAll(plan, nil, &b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "<r>\n</r>\n" {
		t.Errorf("empty document = %q", b.String())
	}
	// NULL fields emit empty elements; strings are escaped.
	b.Reset()
	rows := [][]any{
		{int64(1), int64(0), nil},
		{int64(1), int64(0), "a<b&c"},
	}
	if err := TagAll(plan, rows, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "<v/>") {
		t.Errorf("NULL field: %s", out)
	}
	if !strings.Contains(out, "a&lt;b&amp;c") {
		t.Errorf("escaping: %s", out)
	}
	// Bad branch id errors.
	if err := TagAll(plan, [][]any{{int64(1), int64(9), nil}}, &b); err == nil {
		t.Error("bad branch must error")
	}
	// Short row errors.
	if err := TagAll(plan, [][]any{{int64(1)}}, &b); err == nil {
		t.Error("short row must error")
	}
	// Out-of-range ordinal errors.
	plan2 := &TagPlan{RootTag: "r", ElemTag: "e", KeyTag: "k",
		Branches: []BranchPlan{{Fields: []FieldSlot{{Ordinal: 9, Tag: "v"}}}}}
	if err := TagAll(plan2, [][]any{{int64(1), int64(0)}}, &b); err == nil {
		t.Error("bad ordinal must error")
	}
}

func TestTaggerClustersByKey(t *testing.T) {
	plan := &TagPlan{RootTag: "r", ElemTag: "e", KeyTag: "k",
		Branches: []BranchPlan{{Wrap: "c", Fields: []FieldSlot{{Ordinal: 2, Tag: "v"}}}}}
	var b strings.Builder
	rows := [][]any{
		{int64(1), int64(0), "x"},
		{int64(1), int64(0), "y"},
		{int64(2), int64(0), "z"},
	}
	if err := TagAll(plan, rows, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "<e>") != 2 || strings.Count(out, "</e>") != 2 {
		t.Errorf("element boundaries:\n%s", out)
	}
	if strings.Index(out, "<c><v>y</v></c>") > strings.Index(out, "<k>2</k>") {
		t.Errorf("rows attributed to wrong element:\n%s", out)
	}
}

func TestPublishedXMLIsWellFormed(t *testing.T) {
	db := fixtureDB(t)
	for _, q := range []*FLWR{Q1(), Q2(), Q3(0.9, 1.5), ExpensiveSuppliers(35), RichSuppliers(25)} {
		for _, s := range []Strategy{GApply, SortedOuterUnion} {
			out := publish(t, db, q, s)
			if err := checkWellFormed(out); err != nil {
				t.Errorf("%s/%v: %v\n%s", s, q.Return[0].Tag, err, out)
			}
		}
	}
}
