package xmlpub

import (
	"fmt"
	"strings"
)

// TagPlan tells the tagger how to interpret the (key, branch, slots...)
// row layout both translation strategies emit.
type TagPlan struct {
	RootTag string
	ElemTag string
	KeyTag  string
	// Branches is indexed by the branch id in column 1.
	Branches []BranchPlan
}

// BranchPlan describes one branch's content.
type BranchPlan struct {
	// Wrap is the wrapping element for list branches ("" for scalars).
	Wrap string
	// Fields are (absolute column ordinal, tag) pairs.
	Fields []FieldSlot
}

// FieldSlot locates one emitted field in the row.
type FieldSlot struct {
	Ordinal int
	Tag     string
	// Attr publishes the value as an attribute of the wrapping element.
	Attr bool
}

// layout computes each item's slot offsets (slots start at column 2).
func (q *FLWR) layout() ([]int, int) {
	offsets := make([]int, len(q.Return))
	next := 0
	for i, it := range q.Return {
		offsets[i] = next
		next += len(it.fields(q.View))
	}
	return offsets, next
}

// TagPlan builds the tagging plan shared by both strategies.
func (q *FLWR) TagPlan() *TagPlan {
	offsets, _ := q.layout()
	plan := &TagPlan{RootTag: q.View.RootTag, ElemTag: q.View.ElemTag, KeyTag: q.View.KeyTag}
	for i, it := range q.Return {
		bp := BranchPlan{}
		if it.Kind == ItemChildList {
			bp.Wrap = it.Tag
		}
		for j, f := range it.fields(q.View) {
			bp.Fields = append(bp.Fields, FieldSlot{Ordinal: 2 + offsets[i] + j, Tag: f.Tag, Attr: f.Attr && bp.Wrap != ""})
		}
		plan.Branches = append(plan.Branches, bp)
	}
	return plan
}

// slotExprs renders the slot list for branch i: the item's own columns
// (or aggregate expression) in its slots, NULL everywhere else.
func (q *FLWR) slotExprs(i int, own []string) string {
	offsets, total := q.layout()
	slots := make([]string, total)
	for k := range slots {
		slots[k] = "null"
	}
	for j, e := range own {
		slots[offsets[i]+j] = e
	}
	return strings.Join(slots, ", ")
}

// aggSubquery renders "(select fn(col) from <src>)" with optional scale.
func aggSubquery(a AggRef, src string) string {
	return a.scaleSQL(fmt.Sprintf("(select %s(%s) from %s)", a.Fn, a.Col, src))
}

// GApplySQL translates the query into the paper's extended syntax: one
// join, grouped on the key, with a per-group query holding one union
// branch per return item. Output layout: key, branch, slots.
func (q *FLWR) GApplySQL() string {
	v := q.View
	const gv = "g"
	var branches []string
	for i, it := range q.Return {
		var conds []string
		var own []string
		switch it.Kind {
		case ItemChildList:
			for _, f := range v.ChildFields {
				own = append(own, f.Col)
			}
			if it.FilterCol != "" {
				conds = append(conds, fmt.Sprintf("%s %s %s", it.FilterCol, it.FilterOp, aggSubquery(*it.FilterAgg, gv)))
			}
		case ItemAgg:
			own = []string{fmt.Sprintf("%s(%s)", it.Agg.Fn, it.Agg.Col)}
		case ItemFilteredCount:
			own = []string{"count(*)"}
			conds = append(conds, fmt.Sprintf("%s %s %s", it.FilterCol, it.FilterOp, aggSubquery(*it.FilterAgg, gv)))
		}
		if q.Where != nil {
			conds = append(conds, q.whereCondOverGroup(gv))
		}
		where := ""
		if len(conds) > 0 {
			where = " where " + strings.Join(conds, " and ")
		}
		branches = append(branches, fmt.Sprintf("select %d, %s from %s%s", i, q.slotExprs(i, own), gv, where))
	}
	return fmt.Sprintf("select gapply(%s) from %s where %s group by %s : %s",
		strings.Join(branches, " union all "),
		strings.Join(v.Tables, ", "), v.JoinCond, v.KeyCol, gv)
}

// whereCondOverGroup renders the subtree predicate against the group
// variable.
func (q *FLWR) whereCondOverGroup(gv string) string {
	switch q.Where.Kind {
	case PredExists:
		return fmt.Sprintf("exists (select %s from %s where %s)", q.View.KeyCol, gv, q.Where.Cond)
	default: // PredAggregate
		return fmt.Sprintf("%s %s %g", aggSubquery(q.Where.Agg, gv), q.Where.CmpOp, q.Where.Lit)
	}
}

// SortedOuterUnionSQL translates the query into the classic strategy:
// each return item becomes one select over the full view join (the
// redundancy §2 identifies), subtree aggregates become correlated
// subqueries over another copy of the join, and the union is ordered by
// the key for the constant-space tagger.
func (q *FLWR) SortedOuterUnionSQL() string {
	v := q.View
	// Alias the key-owning table so correlated subqueries can reach it.
	const outerAlias = "__o"
	fromAliased := outerAlias
	{
		parts := make([]string, len(v.Tables))
		for i, t := range v.Tables {
			if i == 0 {
				parts[i] = t + " " + outerAlias
			} else {
				parts[i] = t
			}
		}
		fromAliased = strings.Join(parts, ", ")
	}
	fromPlain := strings.Join(v.Tables, ", ")
	key := outerAlias + "." + v.KeyCol
	corrSrc := func() string {
		return fmt.Sprintf("%s where %s and %s = %s", fromPlain, v.JoinCond, v.KeyCol, key)
	}
	corrAgg := func(a AggRef) string {
		return a.scaleSQL(fmt.Sprintf("(select %s(%s) from %s)", a.Fn, a.Col, corrSrc()))
	}

	var branches []string
	for i, it := range q.Return {
		var conds = []string{v.JoinCond}
		var own []string
		groupBy := ""
		switch it.Kind {
		case ItemChildList:
			for _, f := range v.ChildFields {
				own = append(own, f.Col)
			}
			if it.FilterCol != "" {
				conds = append(conds, fmt.Sprintf("%s %s %s", it.FilterCol, it.FilterOp, corrAgg(*it.FilterAgg)))
			}
		case ItemAgg:
			own = []string{fmt.Sprintf("%s(%s)", it.Agg.Fn, it.Agg.Col)}
			groupBy = fmt.Sprintf(" group by %s", key)
		case ItemFilteredCount:
			own = []string{"count(*)"}
			conds = append(conds, fmt.Sprintf("%s %s %s", it.FilterCol, it.FilterOp, corrAgg(*it.FilterAgg)))
			groupBy = fmt.Sprintf(" group by %s", key)
		}
		if q.Where != nil {
			switch q.Where.Kind {
			case PredExists:
				conds = append(conds, fmt.Sprintf("exists (select %s from %s and %s)", v.KeyCol, corrSrc(), q.Where.Cond))
			default:
				conds = append(conds, fmt.Sprintf("%s %s %g", corrAgg(q.Where.Agg), q.Where.CmpOp, q.Where.Lit))
			}
		}
		branches = append(branches, fmt.Sprintf("select %s, %d, %s from %s where %s%s",
			key, i, q.slotExprs(i, own), fromAliased, strings.Join(conds, " and "), groupBy))
	}
	return fmt.Sprintf("(%s) order by %s", strings.Join(branches, " union all "), v.KeyCol)
}
