package xmlpub

import (
	"encoding/xml"
	"errors"
	"io"
	"strings"
)

// checkWellFormed runs the stdlib XML decoder over the document.
func checkWellFormed(doc string) error {
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}
