package xmlpub

import (
	"fmt"
	"io"

	"gapplydb"
)

// Strategy selects the server translation.
type Strategy int

const (
	// GApply pushes the query as one extended-syntax statement; the
	// GApply operator clusters output by construction.
	GApply Strategy = iota
	// SortedOuterUnion pushes the classic one-union-branch-per-section
	// SQL with a trailing ORDER BY (the "sorting and tagging" baseline
	// of the paper's title).
	SortedOuterUnion
)

// String names the strategy.
func (s Strategy) String() string {
	if s == GApply {
		return "gapply"
	}
	return "sorted-outer-union"
}

// SQL returns the statement the strategy sends to the server.
func (q *FLWR) SQL(s Strategy) string {
	if s == GApply {
		return q.GApplySQL()
	}
	return q.SortedOuterUnionSQL()
}

// Publish runs the query against the database with the chosen strategy
// and streams the published XML to w. It returns the executed result
// (for timing and counters) alongside any error.
func Publish(db *gapplydb.Database, q *FLWR, s Strategy, w io.Writer, opts ...gapplydb.QueryOption) (*gapplydb.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	res, err := db.Query(q.SQL(s), opts...)
	if err != nil {
		return nil, fmt.Errorf("xmlpub: %s strategy failed: %w", s, err)
	}
	if err := TagAll(q.TagPlan(), res.Rows, w); err != nil {
		return res, err
	}
	return res, nil
}
