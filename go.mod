module gapplydb

go 1.22
