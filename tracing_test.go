package gapplydb_test

import (
	"strings"
	"sync"
	"testing"

	"gapplydb"
	"gapplydb/experiments"
)

// traceQuery is a groupwise statement that exercises parse, bind,
// optimize, spooling-eligible joins and GApply execution — every span
// the tracer should emit.
const traceQuery = `select gapply(select count(*) from g) as (cnt)
from partsupp group by ps_suppkey : g`

func TestQueryTraceSpans(t *testing.T) {
	db := integDatabase(t)
	id := gapplydb.NewTraceID()
	// Keep the GApply operator in the plan (the gapply→groupby rule
	// would rewrite this aggregate-only group query) so the span tree
	// exercises the groupwise operator path.
	res, err := db.Query(traceQuery, gapplydb.WithTraceID(id), gapplydb.WithDOP(8),
		gapplydb.WithoutPlanCache(), gapplydb.WithoutRule("gapply-to-groupby"))
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != id {
		t.Fatalf("Result.TraceID = %s, want %s", res.TraceID, id)
	}
	tr := db.Traces().Get(id)
	if tr == nil {
		t.Fatal("trace not in flight recorder")
	}
	if tr.Status != "ok" {
		t.Fatalf("status %q, want ok", tr.Status)
	}
	if tr.PlanHash == "" {
		t.Fatal("trace has no plan hash")
	}
	// Phase spans, all children of the root.
	for _, phase := range []string{"parse", "bind", "optimize", "execute"} {
		idx := tr.Find(phase)
		if len(idx) != 1 {
			t.Fatalf("phase %q: %d spans, want 1\n%s", phase, len(idx), tr)
		}
		if s := tr.Spans[idx[0]]; s.Parent != 0 {
			t.Fatalf("phase %q parented to %d, want root\n%s", phase, s.Parent, tr)
		}
	}
	// Operator spans nest under execute and mirror the plan: GApply with
	// a partsupp scan below it somewhere.
	execIdx := tr.Find("execute")[0]
	gapply := tr.Find("GApply")
	if len(gapply) != 1 || tr.Spans[gapply[0]].Parent != execIdx {
		t.Fatalf("GApply span missing or misparented\n%s", tr)
	}
	scans := tr.Find("Scan partsupp")
	if len(scans) == 0 {
		t.Fatalf("no partsupp scan span\n%s", tr)
	}
	// Operator spans carry the profile actuals.
	var rows string
	for _, a := range tr.Spans[gapply[0]].Attrs {
		if a.Key == "rows" {
			rows = a.Value
		}
	}
	if rows == "" || rows == "0" {
		t.Fatalf("GApply span rows attr = %q, want > 0\n%s", rows, tr)
	}
	// The phase spans partition the root consistently: each child ends
	// no later than the root span does.
	for _, s := range tr.Spans[1:] {
		if s.Parent == 0 && s.Start+s.Dur > tr.Dur+tr.Dur/10 {
			t.Fatalf("phase span %q overruns root: %v+%v > %v", s.Name, s.Start, s.Dur, tr.Dur)
		}
	}
}

// TestTraceDurationsConsistentWithAnalyze pins the acceptance criterion
// that trace spans agree with EXPLAIN ANALYZE actuals: the same
// execution produces both, so the root operator span's duration must
// equal the profile's inclusive root time rendered by ANALYZE.
func TestTraceDurationsConsistentWithAnalyze(t *testing.T) {
	db := integDatabase(t)
	id := gapplydb.NewTraceID()
	e, err := db.ExplainAnalyze(traceQuery, gapplydb.WithTraceID(id), gapplydb.WithoutPlanCache())
	if err != nil {
		t.Fatal(err)
	}
	tr := db.Traces().Get(id)
	if tr == nil {
		t.Fatal("analyzed query not in flight recorder")
	}
	execIdx := tr.Find("execute")
	if len(execIdx) != 1 {
		t.Fatalf("execute spans = %d, want 1", len(execIdx))
	}
	// The execute span wraps exec.Run; the analyzed Result's Elapsed is
	// the same region. They are separate clock reads, so allow slack,
	// but they must be the same order of magnitude region.
	execDur := tr.Spans[execIdx[0]].Dur
	if execDur < e.Result.Elapsed {
		t.Fatalf("execute span %v shorter than analyzed elapsed %v", execDur, e.Result.Elapsed)
	}
	if e.Result.TraceID != id {
		t.Fatalf("analyzed Result.TraceID = %s, want %s", e.Result.TraceID, id)
	}
	if !strings.Contains(e.Plan, "actual rows=") {
		t.Fatal("analyzed plan lost its actuals")
	}
}

func TestTracePlanCacheHitSpan(t *testing.T) {
	db := integDatabase(t)
	// Prime the cache, then trace a repeat of the same statement.
	if _, err := db.Query(traceQuery); err != nil {
		t.Fatal(err)
	}
	id := gapplydb.NewTraceID()
	res, err := db.Query(traceQuery, gapplydb.WithTraceID(id))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHits != 1 {
		t.Fatalf("expected a plan-cache hit, stats: %+v", res.Stats)
	}
	tr := db.Traces().Get(id)
	if tr == nil {
		t.Fatal("trace not recorded")
	}
	lookup := tr.Find("plan-cache")
	if len(lookup) != 1 {
		t.Fatalf("plan-cache spans = %d, want 1\n%s", len(lookup), tr)
	}
	verdict := ""
	for _, a := range tr.Spans[lookup[0]].Attrs {
		if a.Key == "verdict" {
			verdict = a.Value
		}
	}
	if verdict != "hit" {
		t.Fatalf("plan-cache verdict = %q, want hit\n%s", verdict, tr)
	}
	// A cache hit skips parse/bind/optimize — no such spans.
	if n := len(tr.Find("parse")) + len(tr.Find("bind")) + len(tr.Find("optimize")); n != 0 {
		t.Fatalf("cache-hit trace has %d compile spans\n%s", n, tr)
	}
	if tr.PlanHash == "" {
		t.Fatal("cache-hit trace lost the plan hash")
	}
}

func TestTraceErrorRecorded(t *testing.T) {
	db := integDatabase(t)
	id := gapplydb.NewTraceID()
	_, err := db.Query("select bogus syntax here", gapplydb.WithTraceID(id))
	if err == nil {
		t.Fatal("bad statement succeeded")
	}
	tr := db.Traces().Get(id)
	if tr == nil {
		t.Fatal("failed query's trace not recorded")
	}
	if tr.Status != "error" || tr.Error == "" {
		t.Fatalf("error trace status=%q error=%q", tr.Status, tr.Error)
	}
}

func TestStreamTraceRecorded(t *testing.T) {
	db := integDatabase(t)
	id := gapplydb.NewTraceID()
	s, err := db.Stream(traceQuery, gapplydb.WithTraceID(id), gapplydb.WithDOP(8),
		gapplydb.WithoutRule("gapply-to-groupby"))
	if err != nil {
		t.Fatal(err)
	}
	if s.TraceID() != id {
		t.Fatalf("Stream.TraceID = %s, want %s", s.TraceID(), id)
	}
	// The trace is recorded at finish, not at start.
	for {
		_, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	tr := db.Traces().Get(id)
	if tr == nil {
		t.Fatal("stream trace not in flight recorder")
	}
	if len(tr.Find("execute")) != 1 || len(tr.Find("GApply")) != 1 {
		t.Fatalf("stream trace missing execution spans\n%s", tr)
	}
}

// TestTraceNeutrality is the tracing analogue of the instrumentation
// no-Heisenberg guarantee: tracing a query must not change its rows at
// any degree of parallelism.
func TestTraceNeutrality(t *testing.T) {
	db := integDatabase(t)
	for _, sq := range experiments.SuiteQueries()[:4] {
		for _, dop := range []int{1, 8} {
			plain, err := db.Query(sq.SQL, gapplydb.WithDOP(dop))
			if err != nil {
				t.Fatalf("%s dop %d: %v", sq.Name, dop, err)
			}
			traced, err := db.Query(sq.SQL, gapplydb.WithDOP(dop), gapplydb.WithTracing())
			if err != nil {
				t.Fatalf("%s dop %d traced: %v", sq.Name, dop, err)
			}
			if traced.TraceID.IsZero() {
				t.Fatalf("%s: WithTracing produced no trace ID", sq.Name)
			}
			if d := firstDiff(ordered(plain), ordered(traced)); d != "" {
				t.Fatalf("%s dop %d: tracing changed the rows: %s", sq.Name, dop, d)
			}
		}
	}
	if plain, err := db.Query(traceQuery); err != nil {
		t.Fatal(err)
	} else if !plain.TraceID.IsZero() {
		t.Fatal("untraced query carries a trace ID")
	}
}

// TestTraceSamplingDeterministic pins head sampling to the seeded
// decision stream: identical seeds make identical decisions, and the
// sampled fraction tracks p.
func TestTraceSamplingDeterministic(t *testing.T) {
	db := integDatabase(t)
	run := func(seed int64, n int, p float64) []bool {
		db.SeedTraceSampler(seed)
		out := make([]bool, n)
		for i := range out {
			res, err := db.Query("select count(*) from part", gapplydb.WithTraceSampling(p))
			if err != nil {
				t.Fatal(err)
			}
			out[i] = !res.TraceID.IsZero()
		}
		return out
	}
	a := run(42, 64, 0.5)
	b := run(42, 64, 0.5)
	sampled := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged across identical seeds", i)
		}
		if a[i] {
			sampled++
		}
	}
	if sampled == 0 || sampled == len(a) {
		t.Fatalf("sampling at p=0.5 hit %d/%d — not sampling", sampled, len(a))
	}
	// p=0 never traces; p=1 always does.
	for _, r := range run(1, 8, 0) {
		if r {
			t.Fatal("p=0 traced a query")
		}
	}
	for _, r := range run(1, 8, 1) {
		if !r {
			t.Fatal("p=1 skipped a query")
		}
	}
}

// TestTraceConcurrentSampledQueries churns sampled, traced queries at
// dop 8 from many goroutines — the race detector's view of the sampler,
// builder, and flight recorder under real load.
func TestTraceConcurrentSampledQueries(t *testing.T) {
	db := integDatabase(t)
	db.SeedTraceSampler(7)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := db.Query(traceQuery, gapplydb.WithDOP(8), gapplydb.WithTraceSampling(0.5))
				if err != nil {
					errs <- err
					return
				}
				if !res.TraceID.IsZero() {
					if tr := db.Traces().Get(res.TraceID); tr == nil {
						// The recent ring may have churned past it, but the
						// recorder must never corrupt: a miss is acceptable,
						// a wrong trace is not (Get checked ID equality).
						continue
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(db.Traces().Recent()) == 0 {
		t.Fatal("no traces recorded by concurrent sampled queries")
	}
}
