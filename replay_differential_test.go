package gapplydb_test

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gapplydb/client"
	"gapplydb/internal/server"
	"gapplydb/replay"
)

// The replay corpus is the server-scale regression anchor: every query
// in it must produce byte-identical output embedded (Database.Query)
// and over the wire (client → gapplyd), at every matrix degree, and
// both must match the checked-in goldens. This test is what makes the
// goldens trustworthy for the standalone replay driver: any divergence
// between engine, server, client, or corpus shows up here first.

func startCorpusServer(t *testing.T) (*server.Server, *client.Conn) {
	t.Helper()
	srv := server.New(integDatabase(t), server.Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	conn, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return srv, conn
}

func TestReplayCorpusDifferential(t *testing.T) {
	c, err := replay.Load("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	db := integDatabase(t)
	_, conn := startCorpusServer(t)
	ctx := context.Background()

	for _, q := range c.Queries {
		q := q
		for _, dop := range c.Workload.Dops {
			dop := dop
			if q.DOP > 0 && dop != c.Workload.Dops[0] {
				continue // degree-pinned queries run once
			}
			eff := dop
			if q.DOP > 0 {
				eff = q.DOP
			}
			t.Run(fmt.Sprintf("%s/dop%d", q.Name, eff), func(t *testing.T) {
				remote, err := replay.RunRemote(ctx, conn, q, dop)
				if err != nil {
					t.Fatalf("remote: %v", err)
				}
				if q.CancelAfterRows > 0 {
					// Wire-level cancel has no embedded counterpart; the remote
					// outcome alone carries the expectation.
					if remote.Code != q.Expect.Error {
						t.Fatalf("remote code = %q (%v), want %q", remote.Code, remote.Err, q.Expect.Error)
					}
					return
				}
				local, err := replay.RunLocal(ctx, db, q, dop)
				if err != nil {
					t.Fatalf("local: %v", err)
				}
				if local.Code != remote.Code {
					t.Fatalf("divergent outcome: local %q (%v) vs remote %q (%v)",
						local.Code, local.Err, remote.Code, remote.Err)
				}
				if q.Expect.Error != "" {
					if remote.Code != q.Expect.Error {
						t.Fatalf("code = %q, want %q", remote.Code, q.Expect.Error)
					}
					return
				}
				if remote.Code != "" {
					t.Fatalf("failed with %s: %v", remote.Code, remote.Err)
				}
				if err := replay.DiffRendered(remote.Rendered, local.Rendered); err != nil {
					t.Fatalf("remote vs local: %v", err)
				}
				if q.Expect.Golden {
					want, err := c.Golden(q)
					if err != nil {
						t.Fatal(err)
					}
					if err := replay.DiffRendered(local.Rendered, want); err != nil {
						t.Fatalf("local vs golden: %v", err)
					}
				}
			})
		}
	}
}

// TestReplayTracedConformance pins two acceptance criteria at once:
// the corpus goldens stay byte-identical with tracing forced on (at
// every matrix degree — tracing must not perturb results), and the
// full traced driver run echoes every issued trace ID and captures the
// slowest conformance trace's Chrome export through /debug/traces.
func TestReplayTracedConformance(t *testing.T) {
	c, err := replay.Load("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	srv, conn := startCorpusServer(t)
	ctx := context.Background()

	// Byte-identity, traced vs untraced, per query per degree.
	for _, q := range c.Queries {
		if !q.Expect.Golden {
			continue
		}
		for _, dop := range c.Workload.Dops {
			if q.DOP > 0 && dop != c.Workload.Dops[0] {
				continue
			}
			plain, err := replay.RunRemote(ctx, conn, q, dop)
			if err != nil {
				t.Fatal(err)
			}
			id := client.NewTraceID()
			traced, err := replay.RunRemoteTraced(ctx, conn, q, dop, id)
			if err != nil {
				t.Fatal(err)
			}
			if traced.TraceID != id {
				t.Fatalf("%s@dop=%d: echoed trace %s, want %s", q.Name, dop, traced.TraceID, id)
			}
			if err := replay.DiffRendered(traced.Rendered, plain.Rendered); err != nil {
				t.Fatalf("%s@dop=%d: tracing changed the output: %v", q.Name, dop, err)
			}
			want, err := c.Golden(q)
			if err != nil {
				t.Fatal(err)
			}
			if err := replay.DiffRendered(traced.Rendered, want); err != nil {
				t.Fatalf("%s@dop=%d: traced output vs golden: %v", q.Name, dop, err)
			}
		}
	}

	// The full driver with tracing on: every assertion (goldens, error
	// taxonomy, trace echo) holds, and the slowest trace is exported.
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()
	rep, err := replay.Run(ctx, c, replay.DriverConfig{
		Addr:      srv.Addr().String(),
		Trace:     true,
		TracesURL: ts.URL + "/debug/traces",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatal("traced conformance run did not pass")
	}
	for _, cr := range rep.Conformance {
		if cr.TraceID == "" {
			t.Fatalf("conformance run %s@dop=%d run %d has no trace id", cr.Query, cr.DOP, cr.Run)
		}
	}
	st := rep.SlowestTrace
	if st == nil || st.TraceID == "" || len(st.Chrome) == 0 {
		t.Fatalf("slowest trace not captured: %+v", st)
	}
	if !strings.Contains(string(st.Chrome), "traceEvents") {
		t.Fatalf("chrome export malformed: %.120s", st.Chrome)
	}
	path := filepath.Join(t.TempDir(), "TRACE_7.json")
	if err := st.WriteChrome(path); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(path); err != nil || !strings.Contains(string(data), "traceEvents") {
		t.Fatalf("trace artifact: err=%v", err)
	}
}
