package gapplydb_test

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"gapplydb/client"
	"gapplydb/internal/server"
	"gapplydb/replay"
)

// The replay corpus is the server-scale regression anchor: every query
// in it must produce byte-identical output embedded (Database.Query)
// and over the wire (client → gapplyd), at every matrix degree, and
// both must match the checked-in goldens. This test is what makes the
// goldens trustworthy for the standalone replay driver: any divergence
// between engine, server, client, or corpus shows up here first.

func startCorpusServer(t *testing.T) *client.Conn {
	t.Helper()
	srv := server.New(integDatabase(t), server.Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	conn, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestReplayCorpusDifferential(t *testing.T) {
	c, err := replay.Load("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	db := integDatabase(t)
	conn := startCorpusServer(t)
	ctx := context.Background()

	for _, q := range c.Queries {
		q := q
		for _, dop := range c.Workload.Dops {
			dop := dop
			if q.DOP > 0 && dop != c.Workload.Dops[0] {
				continue // degree-pinned queries run once
			}
			eff := dop
			if q.DOP > 0 {
				eff = q.DOP
			}
			t.Run(fmt.Sprintf("%s/dop%d", q.Name, eff), func(t *testing.T) {
				remote, err := replay.RunRemote(ctx, conn, q, dop)
				if err != nil {
					t.Fatalf("remote: %v", err)
				}
				if q.CancelAfterRows > 0 {
					// Wire-level cancel has no embedded counterpart; the remote
					// outcome alone carries the expectation.
					if remote.Code != q.Expect.Error {
						t.Fatalf("remote code = %q (%v), want %q", remote.Code, remote.Err, q.Expect.Error)
					}
					return
				}
				local, err := replay.RunLocal(ctx, db, q, dop)
				if err != nil {
					t.Fatalf("local: %v", err)
				}
				if local.Code != remote.Code {
					t.Fatalf("divergent outcome: local %q (%v) vs remote %q (%v)",
						local.Code, local.Err, remote.Code, remote.Err)
				}
				if q.Expect.Error != "" {
					if remote.Code != q.Expect.Error {
						t.Fatalf("code = %q, want %q", remote.Code, q.Expect.Error)
					}
					return
				}
				if remote.Code != "" {
					t.Fatalf("failed with %s: %v", remote.Code, remote.Err)
				}
				if err := replay.DiffRendered(remote.Rendered, local.Rendered); err != nil {
					t.Fatalf("remote vs local: %v", err)
				}
				if q.Expect.Golden {
					want, err := c.Golden(q)
					if err != nil {
						t.Fatal(err)
					}
					if err := replay.DiffRendered(local.Rendered, want); err != nil {
						t.Fatalf("local vs golden: %v", err)
					}
				}
			})
		}
	}
}
