package main

import (
	"context"
	"fmt"
	"time"

	"gapplydb"
	"gapplydb/replay"
)

// replayFlags carries the -replay mode's knobs from main.
type replayFlags struct {
	corpus     string // corpus directory
	remote     string // gapplyd address; required unless -update
	update     bool   // regenerate goldens locally instead of replaying
	mode       string // open | closed
	rate       float64
	clients    int
	duration   time.Duration
	seed       int64
	metricsURL string
	jsonPath   string
	trace      bool   // trace every conformance execution
	tracesURL  string // server /debug/traces endpoint for the slowest-trace fetch
	traceJSON  string // also write the slowest trace's Chrome JSON here
}

// runReplay is the -replay entrypoint: -update regenerates the corpus
// goldens from an embedded database; otherwise the corpus replays
// against the live server at -remote and the report lands in
// -json (default BENCH_6.json).
func runReplay(f replayFlags) error {
	c, err := replay.Load(f.corpus)
	if err != nil {
		return err
	}
	ctx := context.Background()

	if f.update {
		if f.remote != "" {
			return fmt.Errorf("-update regenerates goldens locally; drop -remote")
		}
		fmt.Printf("loading TPC-H at scale factor %g for golden regeneration...\n", c.ScaleFactor)
		db, err := gapplydb.OpenTPCH(c.ScaleFactor)
		if err != nil {
			return err
		}
		changed, err := replay.UpdateGoldens(ctx, db, c)
		if err != nil {
			return err
		}
		if len(changed) == 0 {
			fmt.Println("goldens up to date")
		} else {
			fmt.Printf("regenerated %d golden(s): %v\n", len(changed), changed)
		}
		return nil
	}

	if f.remote == "" {
		return fmt.Errorf("-replay needs -remote host:port (or -update to regenerate goldens)")
	}
	if f.jsonPath == "" {
		f.jsonPath = "BENCH_6.json"
	}
	rep, runErr := replay.Run(ctx, c, replay.DriverConfig{
		Addr:       f.remote,
		Mode:       f.mode,
		Rate:       f.rate,
		Clients:    f.clients,
		Duration:   f.duration,
		Seed:       f.seed,
		MetricsURL: f.metricsURL,
		Trace:      f.trace,
		TracesURL:  f.tracesURL,
		Logf: func(format string, args ...any) {
			fmt.Printf("replay: "+format+"\n", args...)
		},
	})
	if rep != nil {
		if err := rep.WriteJSON(f.jsonPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", f.jsonPath)
		if f.traceJSON != "" {
			if err := rep.SlowestTrace.WriteChrome(f.traceJSON); err != nil {
				fmt.Printf("trace artifact: %v\n", err)
			} else {
				fmt.Printf("wrote %s (slowest conformance trace, chrome://tracing format)\n", f.traceJSON)
			}
		}
		printReplaySummary(rep)
	}
	return runErr
}

func printReplaySummary(rep *replay.Report) {
	failed := 0
	for _, a := range rep.Asserts {
		if !a.OK {
			failed++
		}
	}
	fmt.Printf("conformance: %d runs, %d assertions, %d failed\n",
		len(rep.Conformance), len(rep.Asserts), failed)
	if l := rep.Load; l != nil {
		fmt.Printf("load: issued=%d completed=%d throughput=%.1f qps busy=%.1f%% plancache=%.1f%%\n",
			l.Issued, l.Completed, l.ThroughputQPS, 100*l.BusyRatio, 100*l.PlanCacheHitRatio)
		fmt.Printf("latency overall: p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
			l.Overall.P50MS, l.Overall.P95MS, l.Overall.P99MS, l.Overall.MaxMS)
		for _, q := range l.PerQuery {
			fmt.Printf("  %-16s n=%-5d p50=%8.2fms p95=%8.2fms p99=%8.2fms errs=%v\n",
				q.Query, q.Count, q.Latency.P50MS, q.Latency.P95MS, q.Latency.P99MS, q.Errors)
		}
		if l.Admission != nil {
			fmt.Printf("admission deltas: queued=%d rejected=%d\n", l.Admission.Queued, l.Admission.Rejected)
		}
	}
}
