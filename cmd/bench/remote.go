package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"gapplydb"
	"gapplydb/client"
	"gapplydb/experiments"
	"gapplydb/xmlpub"
)

// runRemote is the -remote mode: a differential smoke test of a running
// gapplyd server. It loads the same deterministic TPC-H data the server
// holds, executes the full evaluation workload (every Figure 8 /
// Table 1 / spooling statement) both in-process and over the wire at
// each requested dop, and fails on the first byte-level divergence in
// rows or published XML. The comparison is exact — the wire codec
// carries the same Go representations Result.Rows uses, so any
// difference is a protocol bug, not formatting noise.
func runRemote(addr string, sf float64, dops []int, soak int) error {
	fmt.Printf("loading local TPC-H reference at scale factor %g...\n", sf)
	start := time.Now()
	db, err := gapplydb.OpenTPCH(sf)
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Printf("loaded in %v\n", time.Since(start).Round(time.Millisecond))

	conn, err := client.Dial(addr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	fmt.Printf("connected to %s (%s)\n\n", addr, conn.Banner())

	ctx := context.Background()
	suite := experiments.SuiteQueries()
	for _, dop := range dops {
		fmt.Printf("== remote differential, dop %d: %d statements ==\n", dop, len(suite))
		var localTotal, remoteTotal time.Duration
		for _, q := range suite {
			local, err := db.QueryContext(ctx, q.SQL, gapplydb.WithDOP(dop))
			if err != nil {
				return fmt.Errorf("%s: local: %w", q.Name, err)
			}
			rstart := time.Now()
			rows, err := conn.Query(ctx, q.SQL, client.WithDOP(dop))
			if err != nil {
				return fmt.Errorf("%s: remote: %w", q.Name, err)
			}
			var remote [][]any
			for {
				row, ok, err := rows.Next()
				if err != nil {
					return fmt.Errorf("%s: remote stream: %w", q.Name, err)
				}
				if !ok {
					break
				}
				remote = append(remote, row)
			}
			remoteElapsed := time.Since(rstart)
			if err := diffRows(local.Columns, local.Rows, rows.Columns, remote); err != nil {
				return fmt.Errorf("%s (dop %d): %w", q.Name, dop, err)
			}
			localTotal += local.Elapsed
			remoteTotal += remoteElapsed
		}
		fmt.Printf("rows: all %d statements byte-identical (local exec %v, remote wall %v)\n",
			len(suite), localTotal.Round(time.Microsecond), remoteTotal.Round(time.Microsecond))

		for _, v := range []struct {
			name string
			q    *xmlpub.FLWR
		}{
			{"Q1", xmlpub.Q1()},
			{"Q2", xmlpub.Q2()},
			{"Q3", xmlpub.Q3(0.9, 1.1)},
			{"ExpensiveSuppliers", xmlpub.ExpensiveSuppliers(1000)},
			{"RichSuppliers", xmlpub.RichSuppliers(5000)},
		} {
			var localXML, remoteXML bytes.Buffer
			if _, err := xmlpub.Publish(db, v.q, xmlpub.GApply, &localXML, gapplydb.WithDOP(dop)); err != nil {
				return fmt.Errorf("xml %s: local: %w", v.name, err)
			}
			if _, err := conn.QueryXML(ctx, v.q.GApplySQL(), v.q.TagPlan(), &remoteXML, client.WithDOP(dop)); err != nil {
				return fmt.Errorf("xml %s: remote: %w", v.name, err)
			}
			if !bytes.Equal(localXML.Bytes(), remoteXML.Bytes()) {
				return fmt.Errorf("xml %s (dop %d): documents differ (local %d bytes, remote %d bytes)",
					v.name, dop, localXML.Len(), remoteXML.Len())
			}
		}
		fmt.Printf("xml: all 5 published documents byte-identical\n\n")
	}
	fmt.Println("remote differential: PASS")

	if soak > 0 {
		if err := runSoak(addr, db, soak); err != nil {
			return err
		}
	}
	return nil
}

// soakIters is how many statements each soak client issues.
const soakIters = 10

// runSoak hammers the server with `clients` concurrent connections,
// each issuing a rotating mix of suite statements and verifying every
// successful result against the in-process reference. Fast rejections
// from admission control (the busy code) are expected under this load
// and counted, not failed; any other error, and any value divergence,
// fails the soak.
func runSoak(addr string, db *gapplydb.Database, clients int) error {
	suite := experiments.SuiteQueries()
	if len(suite) > 4 {
		suite = suite[:4] // the soak is about concurrency, not coverage
	}
	type ref struct {
		cols []string
		rows [][]any
	}
	ctx := context.Background()
	refs := make([]ref, len(suite))
	for i, q := range suite {
		local, err := db.QueryContext(ctx, q.SQL)
		if err != nil {
			return fmt.Errorf("soak reference %s: %w", q.Name, err)
		}
		refs[i] = ref{cols: local.Columns, rows: local.Rows}
	}

	fmt.Printf("== soak: %d clients × %d statements ==\n", clients, soakIters)
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		okCount    int
		busyCount  int
		firstError error
	)
	fail := func(err error) {
		mu.Lock()
		if firstError == nil {
			firstError = err
		}
		mu.Unlock()
	}
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := client.Dial(addr)
			if err != nil {
				fail(fmt.Errorf("soak client %d: dial: %w", c, err))
				return
			}
			defer conn.Close()
			for it := 0; it < soakIters; it++ {
				qi := (c + it) % len(suite)
				var rows *client.Rows
				var err error
				for attempt := 0; ; attempt++ {
					rows, err = conn.Query(ctx, suite[qi].SQL)
					var se *client.ServerError
					if err != nil && errors.As(err, &se) && se.Code == client.CodeBusy && attempt < 1000 {
						// Fast-rejected: admission control shedding load as
						// designed. Back off (harder as contention persists,
						// staggered by client) and retry.
						mu.Lock()
						busyCount++
						mu.Unlock()
						backoff := time.Duration(5+attempt) * time.Millisecond
						if max := time.Duration(50+c) * time.Millisecond; backoff > max {
							backoff = max
						}
						time.Sleep(backoff)
						continue
					}
					break
				}
				if err != nil {
					fail(fmt.Errorf("soak client %d: %s: %w", c, suite[qi].Name, err))
					return
				}
				var got [][]any
				for {
					row, ok, err := rows.Next()
					if err != nil {
						fail(fmt.Errorf("soak client %d: %s: stream: %w", c, suite[qi].Name, err))
						return
					}
					if !ok {
						break
					}
					got = append(got, row)
				}
				if err := diffRows(refs[qi].cols, refs[qi].rows, rows.Columns, got); err != nil {
					fail(fmt.Errorf("soak client %d: %s: %w", c, suite[qi].Name, err))
					return
				}
				mu.Lock()
				okCount++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if firstError != nil {
		return firstError
	}
	fmt.Printf("soak: PASS — %d statements verified, %d busy-rejected, %v wall\n",
		okCount, busyCount, time.Since(start).Round(time.Millisecond))
	return nil
}

// diffRows compares two result sets exactly: same columns, same row
// count, same typed values in the same order.
func diffRows(lcols []string, lrows [][]any, rcols []string, rrows [][]any) error {
	if strings.Join(lcols, ",") != strings.Join(rcols, ",") {
		return fmt.Errorf("columns differ: local %v, remote %v", lcols, rcols)
	}
	if len(lrows) != len(rrows) {
		return fmt.Errorf("row counts differ: local %d, remote %d", len(lrows), len(rrows))
	}
	for i := range lrows {
		if len(lrows[i]) != len(rrows[i]) {
			return fmt.Errorf("row %d: widths differ", i)
		}
		for j := range lrows[i] {
			if lrows[i][j] != rrows[i][j] {
				return fmt.Errorf("row %d col %d: local %#v, remote %#v", i, j, lrows[i][j], rrows[i][j])
			}
		}
	}
	return nil
}
