// Command bench regenerates the paper's evaluation: Figure 8 (speedup
// of Q1–Q4 with GApply over the sorted-outer-union / flat-SQL plans),
// Table 1 (effect of each transformation rule), and the §5.1.1
// client-side-simulation comparison.
//
// Usage:
//
//	bench [-sf 0.01] [-repeats 3] [-experiment all|figure8|table1|clientsim|spool|plancache]
//	bench -json out.json     # also write the benchmark artifact: spool and
//	                         # plan-cache measurements plus per-query
//	                         # observability records (plan hash, rule trace,
//	                         # analyzed plan, stats)
//	bench -remote host:7744  # differential smoke against a running gapplyd:
//	                         # execute the whole suite in-process and over the
//	                         # wire (rows and published XML, dop 1 and 8) and
//	                         # fail on any byte-level divergence
//	bench -remote host:7744 -soak 50   # …then a 50-client concurrency soak,
//	                         # every successful result verified, admission
//	                         # fast-rejections tolerated and counted
//	bench -replay testdata/corpus -remote host:7744 \
//	      -rate 100 -duration 30s    # replay the golden corpus: sequential
//	                         # conformance (goldens, error taxonomy, spool and
//	                         # plan-cache counters at every matrix dop), then a
//	                         # mixed open-loop workload; report → BENCH_6.json
//	bench -replay testdata/corpus -update   # regenerate the corpus goldens
//	                         # from an embedded database (deterministic: a
//	                         # second pass is a no-op)
//	bench -shards 3 -replay testdata/corpus -json BENCH_10.json
//	                         # boot an in-process 3-shard cluster (workers +
//	                         # coordinator + single-node reference), prove the
//	                         # sharded results byte-identical over the full
//	                         # evaluation workload and the corpus, then write
//	                         # the single-node vs sharded latency comparison
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"gapplydb"
	"gapplydb/experiments"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor (1.0 = full size)")
	repeats := flag.Int("repeats", 3, "runs per measurement (min is kept)")
	exp := flag.String("experiment", "all", "figure8 | table1 | clientsim | spool | plancache | order | none | all")
	dop := flag.Int("dop", 0, "GApply degree of parallelism (0 = GOMAXPROCS, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "per-query wall-clock limit (0 = unlimited); a query past it fails instead of hanging the run")
	jsonPath := flag.String("json", "", "write per-query JSON reports (plan hash, trace, operator timings) to this file")
	comparePath := flag.String("compare", "", "measure the row vs batch execution engines at dop 1 and write the comparison artifact (e.g. BENCH_8.json) to this file")
	compareBaseline := flag.String("compare-baseline", "", "with -compare: JSON file of per-query minimum speedups; exit non-zero if any measured speedup falls below its floor")
	orderPath := flag.String("order", "", "measure ordered-index plans against WithoutIndexes at dop 1 and write the comparison artifact (e.g. BENCH_9.json) to this file")
	orderBaseline := flag.String("order-baseline", "", "with -order: JSON file of per-query minimum speedups; exit non-zero if any measured speedup falls below its floor")
	remote := flag.String("remote", "", "differential smoke against a gapplyd server at host:port: run the whole suite in-process and over the wire, fail on any byte difference")
	soak := flag.Int("soak", 0, "with -remote: follow the differential with a concurrency soak of this many clients hammering the server at once")
	replayDir := flag.String("replay", "", "replay the golden corpus in this directory against -remote (conformance + mixed load), or with -update regenerate its goldens")
	update := flag.Bool("update", false, "with -replay: regenerate the corpus goldens from an embedded database")
	mode := flag.String("mode", "open", "with -replay: load-phase arrival discipline, open (Poisson at -rate) | closed (-clients workers back-to-back)")
	rate := flag.Float64("rate", 50, "with -replay: open-loop arrival rate, queries/second")
	clients := flag.Int("clients", 8, "with -replay: client connections (open) or workers (closed)")
	duration := flag.Duration("duration", 0, "with -replay: load-phase duration (0 = conformance only)")
	seed := flag.Int64("seed", 1, "with -replay: workload mix seed")
	metricsURL := flag.String("metrics-http", "", "with -replay: the server's /metrics URL; enables the admission-counter assertions")
	traceOn := flag.Bool("trace", false, "with -replay: run conformance with a client-issued trace ID per query and assert the server echoes it")
	tracesURL := flag.String("traces-http", "", "with -replay -trace: the server's /debug/traces URL; the slowest conformance trace's Chrome export lands in the report")
	traceJSON := flag.String("trace-json", "", "with -replay -trace: also write the slowest trace's Chrome JSON to this file (e.g. TRACE_7.json)")
	shardsN := flag.Int("shards", 0, "boot an in-process cluster of this many worker shards plus a coordinator, verify it byte-identical against single-node, and measure both; -json writes the comparison artifact (e.g. BENCH_10.json), -replay adds a corpus conformance subset")
	flag.Parse()

	if *shardsN > 0 {
		err := runShards(shardsFlags{
			shards: *shardsN, sf: *sf, repeats: *repeats,
			corpus: *replayDir, jsonPath: *jsonPath,
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	if *replayDir != "" {
		err := runReplay(replayFlags{
			corpus: *replayDir, remote: *remote, update: *update,
			mode: *mode, rate: *rate, clients: *clients, duration: *duration,
			seed: *seed, metricsURL: *metricsURL, jsonPath: *jsonPath,
			trace: *traceOn, tracesURL: *tracesURL, traceJSON: *traceJSON,
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	if *remote != "" {
		// The server must hold TPC-H at the same -sf (generation is
		// deterministic, so equal scale factors mean equal data).
		dops := []int{1, *dop}
		if *dop <= 1 {
			dops = []int{1, 8}
		}
		if err := runRemote(*remote, *sf, dops, *soak); err != nil {
			fatal(err)
		}
		return
	}

	experiments.Repeats = *repeats
	experiments.DOP = *dop
	experiments.Timeout = *timeout
	fmt.Printf("loading TPC-H at scale factor %g...\n", *sf)
	start := time.Now()
	db, err := gapplydb.OpenTPCH(*sf)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded in %v\n\n", time.Since(start).Round(time.Millisecond))

	run := func(name string, f func(*gapplydb.Database) error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(db); err != nil {
			fatal(err)
		}
	}
	run("figure8", printFigure8)
	run("table1", printTable1)
	run("clientsim", printClientSim)
	run("spool", printSpool)
	run("plancache", printPlanCache)
	if *orderPath == "" {
		// With -order the experiment runs once inside writeOrder; without
		// it, -experiment order (or all) prints the table alone.
		run("order", printOrder)
	}

	if *jsonPath != "" {
		if err := writeReports(db, *jsonPath); err != nil {
			fatal(err)
		}
	}
	if *comparePath != "" {
		if err := writeCompare(db, *comparePath, *compareBaseline); err != nil {
			fatal(err)
		}
	}
	if *orderPath != "" {
		if err := writeOrder(db, *orderPath, *orderBaseline); err != nil {
			fatal(err)
		}
	}
}

// orderJSON is an OrderRow with its derived speedup serialized.
type orderJSON struct {
	experiments.OrderRow
	Speedup float64
}

// measureOrder runs the order-pass workload and prints the table.
func measureOrder(db *gapplydb.Database) ([]experiments.OrderRow, error) {
	fmt.Println("== Ordered indexes: index-served plans vs WithoutIndexes (dop 1) ==")
	fmt.Println("(speedup = no-index elapsed ÷ indexed elapsed; outputs are verified")
	fmt.Println(" byte-identical before either timing is reported)")
	fmt.Println()
	rows, err := experiments.Order(db)
	if err != nil {
		return nil, err
	}
	fmt.Printf("%-14s %14s %14s %10s %10s\n", "query", "no index", "indexed", "speedup", "rows")
	for _, r := range rows {
		fmt.Printf("%-14s %14v %14v %9.2fx %10d\n",
			r.Query, r.NoIndex.Round(time.Microsecond), r.Indexed.Round(time.Microsecond), r.Speedup(), r.Rows)
	}
	fmt.Println()
	return rows, nil
}

func printOrder(db *gapplydb.Database) error {
	_, err := measureOrder(db)
	return err
}

// writeOrder measures the order-pass workload, writes the artifact, and
// — when a baseline of per-query minimum speedups is supplied — fails
// the run on any regression below a floor.
func writeOrder(db *gapplydb.Database, path, baselinePath string) error {
	rows, err := measureOrder(db)
	if err != nil {
		return err
	}
	var out struct{ Order []orderJSON }
	for _, r := range rows {
		out.Order = append(out.Order, orderJSON{OrderRow: r, Speedup: r.Speedup()})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d order comparisons to %s\n", len(rows), path)
	if baselinePath == "" {
		return nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base struct {
		MinSpeedup map[string]float64 `json:"min_speedup"`
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("order baseline %s: %w", baselinePath, err)
	}
	byName := make(map[string]experiments.OrderRow, len(rows))
	for _, r := range rows {
		byName[r.Query] = r
	}
	var failures []string
	for name, floor := range base.MinSpeedup {
		r, ok := byName[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not measured", name))
			continue
		}
		if r.Speedup() < floor {
			failures = append(failures, fmt.Sprintf("%s: speedup %.2fx below floor %.2fx", name, r.Speedup(), floor))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "order regression:", f)
		}
		return fmt.Errorf("%d ordered-index regression(s) against %s", len(failures), baselinePath)
	}
	fmt.Printf("all %d baseline floors in %s hold\n", len(base.MinSpeedup), baselinePath)
	return nil
}

// compareJSON is a CompareRow with its derived speedup serialized.
type compareJSON struct {
	experiments.CompareRow
	Speedup float64
}

// writeCompare measures both execution engines, prints the comparison,
// writes the artifact, and — when a baseline of per-query minimum
// speedups is supplied — fails the run on any regression below a floor.
func writeCompare(db *gapplydb.Database, path, baselinePath string) error {
	fmt.Println("== Execution engines: row-at-a-time vs vectorized batch (dop 1) ==")
	fmt.Println("(speedup = row-engine elapsed ÷ batch-engine elapsed; outputs are")
	fmt.Println(" verified identical before either timing is reported)")
	fmt.Println()
	rows, err := experiments.Compare(db)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %14s %14s %10s %10s\n", "query", "row engine", "batch engine", "speedup", "rows")
	var out struct{ Compare []compareJSON }
	for _, r := range rows {
		fmt.Printf("%-10s %14v %14v %9.2fx %10d\n",
			r.Query, r.Row.Round(time.Microsecond), r.Batch.Round(time.Microsecond), r.Speedup(), r.Rows)
		out.Compare = append(out.Compare, compareJSON{CompareRow: r, Speedup: r.Speedup()})
	}
	fmt.Println()
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d engine comparisons to %s\n", len(rows), path)
	if baselinePath == "" {
		return nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base struct {
		MinSpeedup map[string]float64 `json:"min_speedup"`
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("compare baseline %s: %w", baselinePath, err)
	}
	byName := make(map[string]experiments.CompareRow, len(rows))
	for _, r := range rows {
		byName[r.Query] = r
	}
	var failures []string
	for name, floor := range base.MinSpeedup {
		r, ok := byName[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not measured", name))
			continue
		}
		if r.Speedup() < floor {
			failures = append(failures, fmt.Sprintf("%s: speedup %.2fx below floor %.2fx", name, r.Speedup(), floor))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "compare regression:", f)
		}
		return fmt.Errorf("%d engine-comparison regression(s) against %s", len(failures), baselinePath)
	}
	fmt.Printf("all %d baseline floors in %s hold\n", len(base.MinSpeedup), baselinePath)
	return nil
}

// spoolJSON is a SpoolRow with its derived speedup serialized, so the
// artifact diffs without recomputation.
type spoolJSON struct {
	experiments.SpoolRow
	Speedup float64
}

// planCacheJSON is a PlanCacheRow with its derived benefit serialized.
type planCacheJSON struct {
	experiments.PlanCacheRow
	Benefit float64
}

// writeReports writes the benchmark artifact: the spooling and plan-
// cache measurements (speedup/benefit included), then the per-query
// observability records for the whole suite under EXPLAIN ANALYZE.
func writeReports(db *gapplydb.Database, path string) error {
	fmt.Printf("collecting benchmark artifact...\n")
	spool, err := experiments.Spool(db)
	if err != nil {
		return err
	}
	pc, err := experiments.PlanCache(db)
	if err != nil {
		return err
	}
	reports, err := experiments.Reports(db)
	if err != nil {
		return err
	}
	out := struct {
		Spool     []spoolJSON
		PlanCache []planCacheJSON
		Queries   []experiments.QueryReport
	}{Queries: reports}
	for _, r := range spool {
		out.Spool = append(out.Spool, spoolJSON{SpoolRow: r, Speedup: r.Speedup()})
	}
	for _, r := range pc {
		out.PlanCache = append(out.PlanCache, planCacheJSON{PlanCacheRow: r, Benefit: r.Benefit()})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d spool rows, %d plan-cache rows, %d query reports to %s\n",
		len(out.Spool), len(out.PlanCache), len(reports), path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

func printFigure8(db *gapplydb.Database) error {
	fmt.Println("== Figure 8: speedup using GApply ==")
	fmt.Println("(ratio of elapsed time without GApply to elapsed time with GApply;")
	fmt.Println(" the paper reports ratios up to ≈2 on SQL Server 2000 + 5GB TPC-H)")
	fmt.Println()
	rows, err := experiments.Figure8(db)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %14s %14s %10s\n", "query", "without", "with GApply", "speedup")
	for _, r := range rows {
		fmt.Printf("%-6s %14v %14v %9.2fx\n",
			r.Query, r.Without.Round(time.Microsecond), r.With.Round(time.Microsecond), r.Speedup())
	}
	fmt.Println()
	return nil
}

func printTable1(db *gapplydb.Database) error {
	fmt.Println("== Table 1: effect of transformation rules ==")
	fmt.Println("(benefit = elapsed without the rule ÷ elapsed with it, per sweep point)")
	fmt.Println()
	rows, err := experiments.Table1(db)
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %-34s %12s %12s %14s\n",
		"Rule Class", "Rule", "Max Benefit", "Avg Benefit", "Avg over Wins")
	for _, r := range rows {
		fmt.Printf("%-18s %-34s %12.2f %12.2f %14.2f\n",
			r.RuleClass, r.Rule, r.Max(), r.Avg(), r.AvgOverWins())
	}
	fmt.Println()
	fmt.Println("-- sweep detail --")
	for _, r := range rows {
		fmt.Printf("%s:\n", r.Rule)
		for _, p := range r.Points {
			fmt.Printf("    %-24s without=%-12v with=%-12v benefit=%.2f\n",
				p.Param, p.Without.Round(time.Microsecond), p.With.Round(time.Microsecond), p.Benefit())
		}
	}
	fmt.Println()
	return nil
}

func printSpool(db *gapplydb.Database) error {
	fmt.Println("== Invariant-subtree spooling (join-heavy GApply inners) ==")
	fmt.Println("(speedup = elapsed with the spool off ÷ elapsed with it on;")
	fmt.Println(" builds/hits show one materialization serving every group)")
	fmt.Println()
	rows, err := experiments.Spool(db)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %14s %14s %10s %8s %8s %14s %12s\n",
		"query", "spool off", "spool on", "speedup", "builds", "hits", "scans off", "scans on")
	for _, r := range rows {
		fmt.Printf("%-6s %14v %14v %9.2fx %8d %8d %14d %12d\n",
			r.Query, r.Off.Round(time.Microsecond), r.On.Round(time.Microsecond),
			r.Speedup(), r.Builds, r.Hits, r.ScansOff, r.ScansOn)
	}
	fmt.Println()
	return nil
}

func printPlanCache(db *gapplydb.Database) error {
	fmt.Println("== Statement plan cache: cold vs warm compile ==")
	fmt.Println("(total wall time per statement; warm runs skip parse/bind/optimize)")
	fmt.Println()
	rows, err := experiments.PlanCache(db)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %14s %14s %10s\n", "query", "cold", "warm", "benefit")
	for _, r := range rows {
		fmt.Printf("%-6s %14v %14v %9.2fx\n",
			r.Query, r.Cold.Round(time.Microsecond), r.Warm.Round(time.Microsecond), r.Benefit())
	}
	fmt.Println()
	return nil
}

func printClientSim(db *gapplydb.Database) error {
	fmt.Println("== §5.1.1: client-side simulation overhead (Q4) ==")
	res, err := experiments.ClientSim(db)
	if err != nil {
		return err
	}
	fmt.Printf("server-side GApply:     %v\n", res.ServerSide.Round(time.Microsecond))
	fmt.Printf("client-side simulation: %v\n", res.ClientSide.Round(time.Microsecond))
	fmt.Printf("overhead: %.2fx (paper: ≈1.2x; >1 confirms the simulation is conservative)\n\n", res.Overhead())
	return nil
}
