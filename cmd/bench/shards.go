package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"

	"gapplydb"
	"gapplydb/client"
	"gapplydb/experiments"
	"gapplydb/internal/coord"
	"gapplydb/internal/server"
	"gapplydb/replay"
)

// shardsFlags configures the -shards mode: boot an in-process cluster
// (n workers holding hash partitions + a coordinator with a full
// replica), verify the sharded results byte-identical against a plain
// single-node server, then measure both deployments and write the
// comparison artifact (BENCH_10.json).
type shardsFlags struct {
	shards   int
	sf       float64
	repeats  int
	corpus   string // replay-corpus dir for the conformance subset ("" = skip)
	jsonPath string
}

// shardPerf is one measured query in the artifact.
type shardPerf struct {
	Query      string
	Rows       int64
	SingleNode time.Duration // min wall over repeats, plain server
	Sharded    time.Duration // min wall over repeats, coordinator
	Speedup    float64       // SingleNode / Sharded
}

// shardsReport is the BENCH_10.json artifact.
type shardsReport struct {
	Shards      int
	ScaleFactor float64
	Conformance struct {
		SuiteStatements int // evaluation-workload statements verified byte-identical
		CorpusQueries   int // replay-corpus runs verified byte-identical
		Distributed     int64
		Declined        int64
	}
	Perf []shardPerf
}

// benchCluster is the in-process deployment -shards measures.
type benchCluster struct {
	co        *coord.Coordinator
	servers   []*server.Server
	conns     []*client.Conn
	coordConn *client.Conn
	refConn   *client.Conn
}

func (c *benchCluster) close() {
	for _, conn := range c.conns {
		conn.Close()
	}
	if c.co != nil {
		c.co.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, srv := range c.servers {
		srv.Shutdown(ctx)
	}
}

func (c *benchCluster) startServer(db *gapplydb.Database, cfg server.Config) (*server.Server, error) {
	srv := server.New(db, cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(lis)
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	c.servers = append(c.servers, srv)
	return srv, nil
}

func (c *benchCluster) dial(srv *server.Server) (*client.Conn, error) {
	conn, err := client.Dial(srv.Addr().String())
	if err != nil {
		return nil, err
	}
	c.conns = append(c.conns, conn)
	return conn, nil
}

func runShards(f shardsFlags) error {
	fmt.Printf("booting %d-shard cluster at scale factor %g...\n", f.shards, f.sf)
	start := time.Now()
	full, err := gapplydb.OpenTPCH(f.sf)
	if err != nil {
		return err
	}
	defer full.Close()

	c := &benchCluster{}
	defer c.close()
	addrs := make([]string, f.shards)
	for i := 0; i < f.shards; i++ {
		db, err := gapplydb.OpenTPCHShard(f.sf, i, f.shards)
		if err != nil {
			return err
		}
		srv, err := c.startServer(db, server.Config{})
		if err != nil {
			return err
		}
		addrs[i] = srv.Addr().String()
	}
	co, err := coord.New(coord.Config{DB: full, Shards: addrs})
	if err != nil {
		return err
	}
	c.co = co
	wctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = co.WaitReady(wctx)
	cancel()
	if err != nil {
		return err
	}
	coordSrv, err := c.startServer(full, server.Config{Distributor: co})
	if err != nil {
		return err
	}
	refSrv, err := c.startServer(full, server.Config{})
	if err != nil {
		return err
	}
	if c.coordConn, err = c.dial(coordSrv); err != nil {
		return err
	}
	if c.refConn, err = c.dial(refSrv); err != nil {
		return err
	}
	fmt.Printf("cluster up in %v (%d workers + coordinator + single-node reference)\n\n",
		time.Since(start).Round(time.Millisecond), f.shards)

	var report shardsReport
	report.Shards = f.shards
	report.ScaleFactor = f.sf

	// Phase 1: conformance. Every evaluation-workload statement must be
	// byte-identical between the coordinator and the single-node server.
	ctx := context.Background()
	suite := experiments.SuiteQueries()
	fmt.Printf("== sharded differential: %d evaluation statements, dop 8 ==\n", len(suite))
	for _, q := range suite {
		sharded, err := fetchRendered(ctx, c.coordConn, q.SQL)
		if err != nil {
			return fmt.Errorf("%s: sharded: %w", q.Name, err)
		}
		single, err := fetchRendered(ctx, c.refConn, q.SQL)
		if err != nil {
			return fmt.Errorf("%s: single-node: %w", q.Name, err)
		}
		if err := replay.DiffRendered(sharded, single); err != nil {
			return fmt.Errorf("%s: sharded vs single-node: %w", q.Name, err)
		}
	}
	report.Conformance.SuiteStatements = len(suite)
	fmt.Printf("all %d statements byte-identical\n\n", len(suite))

	// Replay-corpus conformance subset: every deterministic corpus query
	// (timing-dependent entries excluded) at every matrix degree.
	if f.corpus != "" {
		corpus, err := replay.Load(f.corpus)
		if err != nil {
			return err
		}
		runs := 0
		for _, q := range corpus.Queries {
			if q.TimeoutMS > 0 || q.CancelAfterRows > 0 {
				continue
			}
			for _, dop := range corpus.Workload.Dops {
				if q.DOP > 0 && dop != corpus.Workload.Dops[0] {
					continue
				}
				sharded, err := replay.RunRemote(ctx, c.coordConn, q, dop)
				if err != nil {
					return fmt.Errorf("corpus %s: sharded: %w", q.Name, err)
				}
				single, err := replay.RunRemote(ctx, c.refConn, q, dop)
				if err != nil {
					return fmt.Errorf("corpus %s: single-node: %w", q.Name, err)
				}
				if sharded.Code != single.Code {
					return fmt.Errorf("corpus %s (dop %d): sharded code %q vs single-node %q",
						q.Name, dop, sharded.Code, single.Code)
				}
				if sharded.Code == "" {
					if err := replay.DiffRendered(sharded.Rendered, single.Rendered); err != nil {
						return fmt.Errorf("corpus %s (dop %d): %w", q.Name, dop, err)
					}
				}
				runs++
			}
		}
		report.Conformance.CorpusQueries = runs
		fmt.Printf("replay corpus: %d conformance runs byte-identical\n\n", runs)
	}

	st := co.Stats()
	if st.Distributed == 0 {
		return fmt.Errorf("conformance ran but no query distributed (declined %d): analyzer or cluster misconfigured", st.Declined)
	}
	report.Conformance.Distributed = st.Distributed
	report.Conformance.Declined = st.Declined
	fmt.Printf("routing: %d distributed, %d declined to the local replica\n\n", st.Distributed, st.Declined)

	// Phase 2: latency, single-node vs sharded (min over repeats).
	perfQs := []struct{ name, sql string }{
		{"figure8/Q1/sou", suite[0].SQL},
		{"figure8/Q2/sou", suite[2].SQL},
		{"figure8/Q3/sou", suite[4].SQL},
		{"scan/partsupp-ordered", "select ps_partkey, ps_suppkey, ps_availqty from partsupp order by ps_suppkey, ps_partkey"},
		{"agg/partsupp-count", "select count(*), min(ps_supplycost), max(ps_supplycost) from partsupp"},
	}
	fmt.Printf("== latency: single-node vs %d-shard (min of %d) ==\n", f.shards, f.repeats)
	fmt.Printf("%-24s %14s %14s %10s %10s\n", "query", "single-node", "sharded", "speedup", "rows")
	for _, pq := range perfQs {
		single, rows, err := timeQuery(ctx, c.refConn, pq.sql, f.repeats)
		if err != nil {
			return fmt.Errorf("%s: single-node: %w", pq.name, err)
		}
		sharded, _, err := timeQuery(ctx, c.coordConn, pq.sql, f.repeats)
		if err != nil {
			return fmt.Errorf("%s: sharded: %w", pq.name, err)
		}
		p := shardPerf{
			Query: pq.name, Rows: rows,
			SingleNode: single, Sharded: sharded,
			Speedup: float64(single) / float64(sharded),
		}
		report.Perf = append(report.Perf, p)
		fmt.Printf("%-24s %14v %14v %9.2fx %10d\n",
			pq.name, single.Round(time.Microsecond), sharded.Round(time.Microsecond), p.Speedup, rows)
	}
	fmt.Println()

	if f.jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(f.jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote cluster comparison to %s\n", f.jsonPath)
	}
	return nil
}

// fetchRendered executes one statement at dop 8 and renders the rows in
// the replay corpus's canonical byte format.
func fetchRendered(ctx context.Context, conn *client.Conn, sql string) ([]byte, error) {
	rows, err := conn.Query(ctx, sql, client.WithDOP(8))
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var all [][]any
	for {
		row, ok, err := rows.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		all = append(all, row)
	}
	return replay.RenderRows(rows.Columns, all), nil
}

// timeQuery runs one statement n times and returns the minimum wall
// time (full stream drain) and the row count.
func timeQuery(ctx context.Context, conn *client.Conn, sql string, n int) (time.Duration, int64, error) {
	if n < 1 {
		n = 1
	}
	var best time.Duration
	var rowCount int64
	for i := 0; i < n; i++ {
		start := time.Now()
		rows, err := conn.Query(ctx, sql, client.WithDOP(8))
		if err != nil {
			return 0, 0, err
		}
		var count int64
		for {
			_, ok, err := rows.Next()
			if err != nil {
				rows.Close()
				return 0, 0, err
			}
			if !ok {
				break
			}
			count++
		}
		rows.Close()
		elapsed := time.Since(start)
		if i == 0 || elapsed < best {
			best = elapsed
		}
		rowCount = count
	}
	return best, rowCount, nil
}
