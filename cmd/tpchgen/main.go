// Command tpchgen generates the TPC-H-style data set and dumps tables
// as '|'-separated text (dbgen's .tbl format), for inspection or for
// loading into other systems.
//
// Usage:
//
//	tpchgen [-sf 0.001] [-table supplier] [-o dir]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gapplydb/internal/storage"
	"gapplydb/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.001, "scale factor")
	table := flag.String("table", "", "dump only this table to stdout")
	outDir := flag.String("o", "", "write one <table>.tbl file per table into this directory")
	flag.Parse()

	cat := storage.NewCatalog()
	if err := tpch.Load(cat, *sf); err != nil {
		fatal(err)
	}

	if *table != "" {
		tab, err := cat.Lookup(*table)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		dump(w, tab)
		return
	}
	if *outDir == "" {
		for _, name := range cat.Names() {
			tab, _ := cat.Lookup(name)
			fmt.Printf("%s: %d rows, %d columns\n", name, tab.Cardinality(), tab.Def.Schema.Len())
		}
		return
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range cat.Names() {
		tab, _ := cat.Lookup(name)
		f, err := os.Create(filepath.Join(*outDir, name+".tbl"))
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		dump(w, tab)
		w.Flush()
		f.Close()
		fmt.Printf("wrote %s.tbl (%d rows)\n", name, tab.Cardinality())
	}
}

func dump(w *bufio.Writer, tab *storage.Table) {
	for _, r := range tab.Rows {
		for i, v := range r {
			if i > 0 {
				w.WriteByte('|')
			}
			w.WriteString(v.String())
		}
		w.WriteByte('\n')
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpchgen:", err)
	os.Exit(1)
}
