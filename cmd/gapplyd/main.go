// Command gapplyd serves gapplydb over the wire protocol: a TCP server
// with per-connection sessions, bounded admission of concurrent
// queries, incremental row/XML streaming, and graceful drain-then-close
// shutdown on SIGINT/SIGTERM.
//
// Usage:
//
//	gapplyd [-sf 0.01] [-addr :7744]
//	gapplyd -http :7745          # also serve /healthz, /metrics and /debug/traces
//	gapplyd -max-concurrent 8 -max-queued 16 -session-inflight 8
//	gapplyd -drain 8s            # force-cancel queries still running then
//
// A distributed deployment runs worker shards and a coordinator:
//
//	gapplyd -shard-index 0 -shard-count 3 -addr :7745   # worker 0
//	gapplyd -shard-index 1 -shard-count 3 -addr :7746   # worker 1
//	gapplyd -shard-index 2 -shard-count 3 -addr :7747   # worker 2
//	gapplyd -coordinator -shards localhost:7745,localhost:7746,localhost:7747
//
// A worker loads only its hash partition of the TPC-H tables; the
// coordinator keeps a full replica, fans distributable queries out to
// the workers, and merges the streams order-preservingly. -shard-wait
// makes the coordinator block until every worker answers a ping.
//
// On the first SIGINT/SIGTERM the server stops accepting work, drains
// in-flight queries (force-cancelling them through the engine's context
// machinery if -drain expires), closes the database, and exits 0. A
// second signal aborts immediately with exit 1.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gapplydb"
	"gapplydb/internal/coord"
	"gapplydb/internal/server"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor to preload (0 = empty database)")
	addr := flag.String("addr", ":7744", "TCP listen address for the wire protocol")
	httpAddr := flag.String("http", "", "optional HTTP listen address for /healthz, /metrics and /debug/traces")
	maxConcurrent := flag.Int("max-concurrent", 0, "max queries executing at once (0 = GOMAXPROCS)")
	maxQueued := flag.Int("max-queued", 0, "max queries waiting for a slot before fast-reject (0 = 2x max-concurrent)")
	sessionInFlight := flag.Int("session-inflight", 0, "max concurrent queries per session (0 = 8)")
	drain := flag.Duration("drain", 8*time.Second, "graceful-shutdown drain budget before in-flight queries are force-cancelled")
	traceSampling := flag.Float64("trace-sampling", 0, "head-sample this fraction (0..1) of un-ID'd queries into the trace flight recorder; client-issued trace IDs are always traced")
	verbose := flag.Bool("v", false, "log per-connection events")
	coordinator := flag.Bool("coordinator", false, "run as cluster coordinator: keep a full replica, fan distributable queries out to -shards")
	shardAddrs := flag.String("shards", "", "comma-separated worker addresses for -coordinator (shard i of n must run with -shard-index i -shard-count n)")
	shardIndex := flag.Int("shard-index", -1, "run as worker shard i: load only this hash partition of the TPC-H tables")
	shardCount := flag.Int("shard-count", 0, "total shards in the cluster (required with -shard-index)")
	shardWait := flag.Duration("shard-wait", 0, "with -coordinator, block up to this long for every worker to answer a ping before serving")
	flag.Parse()

	logger := log.New(os.Stderr, "gapplyd: ", log.LstdFlags)

	if *coordinator && *shardIndex >= 0 {
		logger.Fatal("-coordinator and -shard-index are mutually exclusive")
	}
	if *shardIndex >= 0 && *shardCount <= *shardIndex {
		logger.Fatal("-shard-index requires -shard-count > shard-index")
	}
	if *coordinator && *shardAddrs == "" {
		logger.Fatal("-coordinator requires -shards")
	}

	var db *gapplydb.Database
	switch {
	case *shardIndex >= 0 && *sf > 0:
		logger.Printf("loading TPC-H shard %d/%d at scale factor %g...", *shardIndex, *shardCount, *sf)
		start := time.Now()
		var err error
		db, err = gapplydb.OpenTPCHShard(*sf, *shardIndex, *shardCount)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("loaded in %v", time.Since(start).Round(time.Millisecond))
	case *sf > 0:
		logger.Printf("loading TPC-H at scale factor %g...", *sf)
		start := time.Now()
		var err error
		db, err = gapplydb.OpenTPCH(*sf)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("loaded in %v", time.Since(start).Round(time.Millisecond))
	default:
		db = gapplydb.Open()
	}

	cfg := server.Config{
		MaxConcurrent:   *maxConcurrent,
		MaxQueued:       *maxQueued,
		SessionInFlight: *sessionInFlight,
		TraceSampling:   *traceSampling,
	}
	if *verbose {
		cfg.Logf = logger.Printf
	}

	var co *coord.Coordinator
	if *coordinator {
		addrs := strings.Split(*shardAddrs, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		var err error
		co, err = coord.New(coord.Config{DB: db, Shards: addrs})
		if err != nil {
			logger.Fatal(err)
		}
		if *shardWait > 0 {
			logger.Printf("waiting up to %v for %d shards...", *shardWait, len(addrs))
			ctx, cancel := context.WithTimeout(context.Background(), *shardWait)
			err := co.WaitReady(ctx)
			cancel()
			if err != nil {
				logger.Fatal(err)
			}
			logger.Printf("all shards ready")
		}
		cfg.Distributor = co
	}
	srv := server.New(db, cfg)

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.HTTPHandler()}
		go func() {
			logger.Printf("http listening on %s", *httpAddr)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("http: %v", err)
			}
		}()
	}

	// Shutdown on SIGINT/SIGTERM: drain with a budget, then force.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan int, 1)
	go func() {
		sig := <-sigc
		logger.Printf("received %v, draining (budget %v)...", sig, *drain)
		go func() {
			<-sigc
			logger.Printf("second signal, aborting")
			os.Exit(1)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("forced shutdown: %v", err)
		}
		if httpSrv != nil {
			httpSrv.Close()
		}
		if co != nil {
			co.Close()
		}
		db.Close()
		logger.Printf("bye")
		done <- 0
	}()

	logger.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		logger.Fatal(err)
	}
	os.Exit(<-done)
}
