package main

import (
	"strings"
	"testing"

	"gapplydb"
)

func shellDB(t *testing.T) *gapplydb.Database {
	t.Helper()
	db, err := gapplydb.OpenTPCH(0.001)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRunStatementSelect(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, "select count(*) from supplier;", &b)
	out := b.String()
	if !strings.Contains(out, "10") || !strings.Contains(out, "1 rows") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunStatementGApply(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, `select gapply(select count(*) from g) as (n)
		from partsupp group by ps_suppkey : g;`, &b)
	if !strings.Contains(b.String(), "rows in") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestRunStatementExplain(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, "explain select s_name from supplier where s_suppkey = 1;", &b)
	out := b.String()
	if !strings.Contains(out, "Scan supplier") || !strings.Contains(out, "estimated cost") {
		t.Errorf("explain output:\n%s", out)
	}
	// Case-insensitive EXPLAIN keyword.
	b.Reset()
	runStatement(db, "EXPLAIN select 1 from supplier;", &b)
	if !strings.Contains(b.String(), "estimated") {
		t.Errorf("EXPLAIN output:\n%s", b.String())
	}
}

func TestRunStatementError(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, "select nosuch from supplier;", &b)
	if !strings.Contains(b.String(), "error:") {
		t.Errorf("error not reported:\n%s", b.String())
	}
	b.Reset()
	runStatement(db, "explain select broken from;", &b)
	if !strings.Contains(b.String(), "error:") {
		t.Errorf("explain error not reported:\n%s", b.String())
	}
}
