package main

import (
	"strings"
	"testing"

	"gapplydb"
)

func shellDB(t *testing.T) *gapplydb.Database {
	t.Helper()
	db, err := gapplydb.OpenTPCH(0.001)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRunStatementSelect(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, "select count(*) from supplier;", &b)
	out := b.String()
	if !strings.Contains(out, "10") || !strings.Contains(out, "1 rows") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunStatementGApply(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, `select gapply(select count(*) from g) as (n)
		from partsupp group by ps_suppkey : g;`, &b)
	if !strings.Contains(b.String(), "rows in") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestRunStatementExplain(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, "explain select s_name from supplier where s_suppkey = 1;", &b)
	out := b.String()
	if !strings.Contains(out, "Scan supplier") || !strings.Contains(out, "estimated cost") {
		t.Errorf("explain output:\n%s", out)
	}
	// Case-insensitive EXPLAIN keyword.
	b.Reset()
	runStatement(db, "EXPLAIN select 1 from supplier;", &b)
	if !strings.Contains(b.String(), "estimated") {
		t.Errorf("EXPLAIN output:\n%s", b.String())
	}
}

func TestRunStatementError(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, "select nosuch from supplier;", &b)
	if !strings.Contains(b.String(), "error:") {
		t.Errorf("error not reported:\n%s", b.String())
	}
	b.Reset()
	runStatement(db, "explain select broken from;", &b)
	if !strings.Contains(b.String(), "error:") {
		t.Errorf("explain error not reported:\n%s", b.String())
	}
}

func TestRunStatementExplainAnalyze(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, "explain analyze select s_name from supplier;", &b)
	out := b.String()
	for _, want := range []string{"Scan supplier", "actual rows=10", "plan hash:"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestShellStatsFlag(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	sh := &shell{db: db, stats: true}
	sh.run("select count(*) from supplier;", &b)
	if !strings.Contains(b.String(), "stats: scanned=10") {
		t.Errorf("missing stats line:\n%s", b.String())
	}
}

func TestShellSlowlog(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	sh := &shell{db: db, slowlog: 1} // 1ns: everything is slow
	sh.run("select s_name from supplier;", &b)
	out := b.String()
	if !strings.Contains(out, "slow statement") || !strings.Contains(out, "actual rows=") {
		t.Errorf("slowlog did not print explain analyze:\n%s", out)
	}
}

func TestShellMetaCommands(t *testing.T) {
	db := shellDB(t)
	sh := &shell{db: db}
	var b strings.Builder
	if !sh.meta(`\dt`, &b) || !strings.Contains(b.String(), "supplier") {
		t.Errorf("\\dt output:\n%s", b.String())
	}
	b.Reset()
	sh.run("select count(*) from part;", &b) // populate metrics
	b.Reset()
	if !sh.meta(`\metrics`, &b) || !strings.Contains(b.String(), "queries") {
		t.Errorf("\\metrics output:\n%s", b.String())
	}
	b.Reset()
	if !sh.meta(`\explain select s_name from supplier`, &b) ||
		!strings.Contains(b.String(), "Scan supplier") {
		t.Errorf("\\explain output:\n%s", b.String())
	}
	if sh.meta(`\q`, &b) {
		t.Error("\\q must terminate the shell")
	}
}

func TestParseErrorCaret(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, "select s_name\nfrom supplier\nwhere +;", &b)
	out := b.String()
	if !strings.Contains(out, "line 3") {
		t.Errorf("parse error lacks position:\n%s", out)
	}
	if !strings.Contains(out, "where +") || !strings.Contains(out, "^") {
		t.Errorf("parse error lacks caret display:\n%s", out)
	}
}

// TestShellSlowlogTraceAndPlan: with -slowlog on, every statement is
// traced, and the slowlog line names the trace and the plan hash so a
// log entry can be joined back to the flight recorder.
func TestShellSlowlogTraceAndPlan(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	sh := &shell{db: db, slowlog: 1} // 1ns: everything is slow
	sh.run("select s_name from supplier;", &b)
	out := b.String()
	if !strings.Contains(out, "trace=") || !strings.Contains(out, "plan=") {
		t.Fatalf("slowlog line missing trace/plan:\n%s", out)
	}
	// The named trace is actually retained, hash intact.
	line := out[strings.Index(out, "trace="):]
	idHex := strings.Fields(line)[0][len("trace="):]
	id, err := gapplydb.ParseTraceID(idHex)
	if err != nil {
		t.Fatalf("slowlog trace id %q: %v", idHex, err)
	}
	tr := db.Traces().Get(id)
	if tr == nil {
		t.Fatal("slowlog-named trace not in flight recorder")
	}
	if !strings.Contains(out, "plan="+tr.PlanHash) {
		t.Fatalf("slowlog plan hash diverges from trace %q:\n%s", tr.PlanHash, out)
	}
}

func TestShellTraceMeta(t *testing.T) {
	db := shellDB(t)
	sh := &shell{db: db, slowlog: 1}
	var b strings.Builder
	sh.run("select count(*) from part;", &b)

	b.Reset()
	if !sh.meta(`\trace last`, &b) || !strings.Contains(b.String(), "query") {
		t.Errorf("\\trace last output:\n%s", b.String())
	}
	last := db.Traces().Last()
	if last == nil {
		t.Fatal("no last trace")
	}

	b.Reset()
	if !sh.meta(`\trace slow`, &b) || !strings.Contains(b.String(), last.ID.String()) {
		t.Errorf("\\trace slow output:\n%s", b.String())
	}

	b.Reset()
	if !sh.meta(`\trace `+last.ID.String(), &b) || !strings.Contains(b.String(), "execute") {
		t.Errorf("\\trace <id> output:\n%s", b.String())
	}

	b.Reset()
	sh.meta(`\trace`, &b)
	if !strings.Contains(b.String(), "usage") {
		t.Errorf("\\trace usage output:\n%s", b.String())
	}
	b.Reset()
	sh.meta(`\trace zzz`, &b)
	if !strings.Contains(b.String(), "bad trace id") {
		t.Errorf("\\trace zzz output:\n%s", b.String())
	}
}
