package main

import (
	"strings"
	"testing"

	"gapplydb"
)

func shellDB(t *testing.T) *gapplydb.Database {
	t.Helper()
	db, err := gapplydb.OpenTPCH(0.001)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRunStatementSelect(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, "select count(*) from supplier;", &b)
	out := b.String()
	if !strings.Contains(out, "10") || !strings.Contains(out, "1 rows") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunStatementGApply(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, `select gapply(select count(*) from g) as (n)
		from partsupp group by ps_suppkey : g;`, &b)
	if !strings.Contains(b.String(), "rows in") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestRunStatementExplain(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, "explain select s_name from supplier where s_suppkey = 1;", &b)
	out := b.String()
	if !strings.Contains(out, "Scan supplier") || !strings.Contains(out, "estimated cost") {
		t.Errorf("explain output:\n%s", out)
	}
	// Case-insensitive EXPLAIN keyword.
	b.Reset()
	runStatement(db, "EXPLAIN select 1 from supplier;", &b)
	if !strings.Contains(b.String(), "estimated") {
		t.Errorf("EXPLAIN output:\n%s", b.String())
	}
}

func TestRunStatementError(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, "select nosuch from supplier;", &b)
	if !strings.Contains(b.String(), "error:") {
		t.Errorf("error not reported:\n%s", b.String())
	}
	b.Reset()
	runStatement(db, "explain select broken from;", &b)
	if !strings.Contains(b.String(), "error:") {
		t.Errorf("explain error not reported:\n%s", b.String())
	}
}

func TestRunStatementExplainAnalyze(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, "explain analyze select s_name from supplier;", &b)
	out := b.String()
	for _, want := range []string{"Scan supplier", "actual rows=10", "plan hash:"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestShellStatsFlag(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	sh := &shell{db: db, stats: true}
	sh.run("select count(*) from supplier;", &b)
	if !strings.Contains(b.String(), "stats: scanned=10") {
		t.Errorf("missing stats line:\n%s", b.String())
	}
}

func TestShellSlowlog(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	sh := &shell{db: db, slowlog: 1} // 1ns: everything is slow
	sh.run("select s_name from supplier;", &b)
	out := b.String()
	if !strings.Contains(out, "slow statement") || !strings.Contains(out, "actual rows=") {
		t.Errorf("slowlog did not print explain analyze:\n%s", out)
	}
}

func TestShellMetaCommands(t *testing.T) {
	db := shellDB(t)
	sh := &shell{db: db}
	var b strings.Builder
	if !sh.meta(`\dt`, &b) || !strings.Contains(b.String(), "supplier") {
		t.Errorf("\\dt output:\n%s", b.String())
	}
	b.Reset()
	sh.run("select count(*) from part;", &b) // populate metrics
	b.Reset()
	if !sh.meta(`\metrics`, &b) || !strings.Contains(b.String(), "queries") {
		t.Errorf("\\metrics output:\n%s", b.String())
	}
	b.Reset()
	if !sh.meta(`\explain select s_name from supplier`, &b) ||
		!strings.Contains(b.String(), "Scan supplier") {
		t.Errorf("\\explain output:\n%s", b.String())
	}
	if sh.meta(`\q`, &b) {
		t.Error("\\q must terminate the shell")
	}
}

func TestParseErrorCaret(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, "select s_name\nfrom supplier\nwhere +;", &b)
	out := b.String()
	if !strings.Contains(out, "line 3") {
		t.Errorf("parse error lacks position:\n%s", out)
	}
	if !strings.Contains(out, "where +") || !strings.Contains(out, "^") {
		t.Errorf("parse error lacks caret display:\n%s", out)
	}
}
