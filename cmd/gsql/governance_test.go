package main

import (
	"strings"
	"testing"
	"time"

	"gapplydb/internal/sql"
)

func TestShellTimeoutMeta(t *testing.T) {
	db := shellDB(t)
	sh := &shell{db: db}
	var b strings.Builder
	sh.meta(`\timeout`, &b)
	if !strings.Contains(b.String(), "timeout: off") {
		t.Errorf("default timeout display:\n%s", b.String())
	}
	b.Reset()
	sh.meta(`\timeout 500ms`, &b)
	if sh.timeout != 500*time.Millisecond || !strings.Contains(b.String(), "timeout: 500ms") {
		t.Errorf("set timeout = %v, output:\n%s", sh.timeout, b.String())
	}
	b.Reset()
	sh.meta(`\timeout`, &b)
	if !strings.Contains(b.String(), "timeout: 500ms") {
		t.Errorf("timeout display after set:\n%s", b.String())
	}
	b.Reset()
	sh.meta(`\timeout off`, &b)
	if sh.timeout != 0 || !strings.Contains(b.String(), "timeout: off") {
		t.Errorf("clear timeout = %v, output:\n%s", sh.timeout, b.String())
	}
	b.Reset()
	sh.meta(`\timeout banana`, &b)
	if sh.timeout != 0 || !strings.Contains(b.String(), "usage:") {
		t.Errorf("bad duration must print usage:\n%s", b.String())
	}
}

func TestShellTimeoutCancelsStatement(t *testing.T) {
	db := shellDB(t)
	sh := &shell{db: db, timeout: time.Nanosecond}
	var b strings.Builder
	sh.run("select count(*) from supplier;", &b)
	if !strings.Contains(b.String(), "timed out after") {
		t.Errorf("expired timeout must be reported:\n%s", b.String())
	}
	// The session survives and works once the limit is lifted.
	sh.timeout = 0
	b.Reset()
	sh.run("select count(*) from supplier;", &b)
	if !strings.Contains(b.String(), "1 rows") {
		t.Errorf("statement after timeout:\n%s", b.String())
	}
}

// TestPrintErrorCaretUTF8: the caret is positioned in rune columns, so a
// multi-byte literal earlier on the line does not skew it.
func TestPrintErrorCaretUTF8(t *testing.T) {
	var b strings.Builder
	stmt := "select '日本' x"
	// Column 13 is the x: 12 runes precede it (but 16 bytes).
	printError(&b, stmt, &sql.ParseError{Msg: "boom", Line: 1, Col: 13})
	caret := "  " + strings.Repeat(" ", 12) + "^"
	if !strings.Contains(b.String(), caret+"\n") {
		t.Errorf("caret misplaced (want %d leading spaces):\n%q", 12, b.String())
	}

	// A column past the line's end clamps to one past the last rune.
	b.Reset()
	printError(&b, stmt, &sql.ParseError{Msg: "boom", Line: 1, Col: 99})
	clamped := "  " + strings.Repeat(" ", 13) + "^"
	if !strings.Contains(b.String(), clamped+"\n") {
		t.Errorf("clamped caret misplaced:\n%q", b.String())
	}
}

// TestShellParseErrorCaretEndToEnd: a statement with a non-ASCII literal
// draws the caret under the offending token, not past it.
func TestShellParseErrorCaretEndToEnd(t *testing.T) {
	db := shellDB(t)
	var b strings.Builder
	runStatement(db, "select s_name\nfrom supplier\nwhere s_name = '日本' !;", &b)
	out := b.String()
	if !strings.Contains(out, "line 3") {
		t.Fatalf("error lacks position:\n%s", out)
	}
	// "where s_name = '日本' " is 20 runes; the ! sits at column 21
	// (byte-based columns would put the caret 4 cells too far right).
	caret := "  " + strings.Repeat(" ", 20) + "^"
	if !strings.Contains(out, caret+"\n") {
		t.Errorf("caret not under the offending token:\n%q", out)
	}
}
