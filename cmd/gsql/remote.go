package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"gapplydb/client"
)

// metaRemote handles backslash commands when the shell is connected to
// a gapplyd server instead of an embedded database. Session state
// (timeout, dop, explain mode) lives server-side, set through the wire
// Set message; catalog and metrics introspection are served by the
// server's HTTP listener, not the query protocol.
func (s *shell) metaRemote(cmd string, w io.Writer) bool {
	switch {
	case cmd == `\q` || cmd == "quit" || cmd == "exit":
		return false
	case cmd == "":
		return true
	case cmd == `\dt`, cmd == `\metrics`:
		fmt.Fprintf(w, "%s is unavailable over -connect; use the server's -http endpoint\n", cmd)
	case cmd == `\timeout`:
		if s.timeout == 0 {
			fmt.Fprintln(w, "timeout: off")
		} else {
			fmt.Fprintf(w, "timeout: %v\n", s.timeout)
		}
	case strings.HasPrefix(cmd, `\timeout `):
		arg := strings.TrimSpace(cmd[len(`\timeout `):])
		if arg == "0" {
			arg = "off"
		}
		if err := s.remote.Set("timeout", arg); err != nil {
			fmt.Fprintln(w, "error:", err)
			break
		}
		if arg == "off" {
			s.timeout = 0
			fmt.Fprintln(w, "timeout: off")
		} else {
			s.timeout, _ = time.ParseDuration(arg)
			fmt.Fprintf(w, "timeout: %v\n", s.timeout)
		}
	case cmd == `\trace` || strings.HasPrefix(cmd, `\trace `):
		// Remote tracing toggles server-side head sampling for this
		// session; completed traces live in the server's flight recorder
		// (its -http listener serves them at /debug/traces).
		arg := strings.TrimSpace(strings.TrimPrefix(cmd, `\trace`))
		var p string
		switch arg {
		case "on":
			p = "1"
		case "off":
			p = "0"
		default:
			fmt.Fprintln(w, `usage: \trace on|off  (view traces at the server's /debug/traces)`)
			break
		}
		if p == "" {
			break
		}
		if err := s.remote.Set("trace_sampling", p); err != nil {
			fmt.Fprintln(w, "error:", err)
			break
		}
		fmt.Fprintf(w, "trace: %s (server retains traces at /debug/traces)\n", arg)
	case strings.HasPrefix(cmd, `\set `):
		// \set <name> <value> — raw access to the session options
		// (timeout, max_output_rows, max_partition_bytes, dop, explain,
		// trace_sampling).
		fields := strings.Fields(cmd[len(`\set `):])
		if len(fields) != 2 {
			fmt.Fprintln(w, `usage: \set <name> <value>`)
			break
		}
		if err := s.remote.Set(fields[0], fields[1]); err != nil {
			fmt.Fprintln(w, "error:", err)
			break
		}
		fmt.Fprintf(w, "%s = %s\n", fields[0], fields[1])
	case strings.HasPrefix(cmd, `\explain `):
		q := strings.TrimSuffix(strings.TrimSpace(cmd[len(`\explain `):]), ";")
		s.runRemote("explain "+q, w)
	case cmd == `\shards`:
		// A coordinator answers `show shards` with one row per worker
		// (health, pool counters, last fan-out); a plain server reports
		// it as an unknown statement.
		s.runRemote("show shards", w)
	default:
		fmt.Fprintf(w, "unknown command %s\n", cmd)
	}
	return true
}

// runRemote executes one statement over the wire and prints its result
// in the embedded shell's table format. Ctrl-C cancels just the
// statement: the context watcher sends a wire-level cancel and the
// server unwinds the query through the engine's context machinery.
func (s *shell) runRemote(query string, w io.Writer) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	rows, err := s.remote.Query(ctx, query)
	if err != nil {
		printRemoteError(w, err, start, s.timeout)
		return
	}
	defer rows.Close()
	var all [][]any
	for {
		row, ok, err := rows.Next()
		if err != nil {
			printRemoteError(w, err, start, s.timeout)
			return
		}
		if !ok {
			break
		}
		all = append(all, row)
	}
	fmt.Fprint(w, renderTable(rows.Columns, all))
	st := rows.Stats()
	fmt.Fprintf(w, "(%d rows in %v; exec %v)\n",
		len(all), time.Since(start).Round(time.Microsecond), st.Elapsed.Round(time.Microsecond))
	if s.stats {
		x := st.Exec
		fmt.Fprintf(w, "stats: scanned=%d groups=%d inner=%d serial=%d parallel=%d apply=%d cachehits=%d probes=%d spoolbuilds=%d spoolhits=%d plancache=%d\n",
			x.RowsScanned, x.Groups, x.InnerExecs, x.SerialGroupExecs,
			x.ParallelGroupExecs, x.ApplyExecs, x.ApplyCacheHits, x.JoinProbes,
			x.SpoolBuilds, x.SpoolHits, x.PlanCacheHits)
	}
	if !st.TraceID.IsZero() {
		fmt.Fprintf(w, "trace: %s\n", st.TraceID)
	}
}

func printRemoteError(w io.Writer, err error, start time.Time, timeout time.Duration) {
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(w, "cancelled after %v\n", time.Since(start).Round(time.Microsecond))
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(w, "timed out after %v (\\timeout %v)\n", time.Since(start).Round(time.Microsecond), timeout)
	default:
		fmt.Fprintln(w, "error:", err)
		var se *client.ServerError
		if errors.As(err, &se) && (se.Code == client.CodeBusy || se.Code == client.CodeSession) {
			fmt.Fprintln(w, "  (server at capacity; retry, or raise its admission limits)")
		}
	}
}

// renderTable lays out remote rows exactly as the embedded shell does:
// headers, a dashed rule, then " | "-separated left-aligned cells.
// Values render in their wire representations: NULL, base-10 integers,
// shortest-round-trip floats, raw strings, true/false.
func renderTable(cols []string, rows [][]any) string {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(rows))
	for i, row := range rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = renderValue(v)
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for j, v := range vals {
			if j > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(v)
			b.WriteString(strings.Repeat(" ", widths[j]-len(v)))
		}
		b.WriteByte('\n')
	}
	writeRow(cols)
	for j, width := range widths {
		if j > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", width))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// renderValue matches types.Value.String for every kind the wire can
// carry.
func renderValue(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case bool:
		if x {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("%v", x)
	}
}
