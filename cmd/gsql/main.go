// Command gsql is an interactive SQL shell for the engine, supporting
// the paper's extended syntax:
//
//	select gapply(<per-group query>) [as (<columns>)]
//	from ... where ... group by <cols> : <variable>
//
// Prefix a statement with EXPLAIN to see the optimized plan, its
// per-node estimates, the plan hash and the optimizer's rule trace;
// EXPLAIN ANALYZE additionally executes the statement and annotates
// every operator with actual rows, loop counts and wall time.
//
// Meta commands: \dt lists tables, \explain <query> explains a
// one-line query, \metrics dumps the session's metrics, \timeout <dur>
// sets a per-statement wall-clock limit (\timeout off clears it),
// \trace last|slow|<id> inspects the flight recorder (the last trace,
// the slowest retained traces, or one full trace by ID), \q quits.
// Against a coordinator (-connect), \shards shows per-worker health,
// connection-pool counters and the last distributed query's fan-out.
// Ctrl-C while a statement runs cancels just that statement.
//
// Usage:
//
//	gsql [-sf 0.01]          # starts with TPC-H loaded at the scale factor
//	gsql -sf 0               # starts with an empty catalog
//	gsql -stats              # print executor statistics after each statement
//	gsql -slowlog 100ms      # print EXPLAIN ANALYZE for statements slower than
//	                         # this; every statement is traced, so slowlog lines
//	                         # carry a trace ID and plan hash and the slowest
//	                         # statements stay inspectable via \trace slow
//	gsql -connect host:7744  # run statements against a gapplyd server
//	                         # instead of an embedded database; \timeout and
//	                         # \set adjust the server-side session options
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"
	"unicode/utf8"

	"gapplydb"
	"gapplydb/client"
	"gapplydb/internal/sql"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor to preload (0 = empty database)")
	stats := flag.Bool("stats", false, "print executor statistics after each statement")
	slowlog := flag.Duration("slowlog", 0, "print EXPLAIN ANALYZE for statements slower than this (0 = off)")
	connect := flag.String("connect", "", "connect to a gapplyd server at host:port instead of embedding a database")
	flag.Parse()

	var sh *shell
	if *connect != "" {
		conn, err := client.Dial(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gsql:", err)
			os.Exit(1)
		}
		defer conn.Close()
		sh = &shell{remote: conn, stats: *stats}
		fmt.Printf("gsql — connected to %s (%s). \\q quits; end statements with ';'.\n", *connect, conn.Banner())
	} else {
		var db *gapplydb.Database
		if *sf > 0 {
			var err error
			fmt.Printf("loading TPC-H at scale factor %g...\n", *sf)
			db, err = gapplydb.OpenTPCH(*sf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gsql:", err)
				os.Exit(1)
			}
		} else {
			db = gapplydb.Open()
		}
		sh = &shell{db: db, stats: *stats, slowlog: *slowlog}
		fmt.Println(`gsql — GApply SQL shell. \dt lists tables, \metrics dumps metrics, \q quits; end statements with ';'.`)
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "gsql> "
	for {
		fmt.Print(prompt)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (strings.HasPrefix(trimmed, `\`) || trimmed == "quit" || trimmed == "exit" || trimmed == "") {
			if !sh.meta(trimmed, os.Stdout) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "  ... "
			continue
		}
		stmt := buf.String()
		buf.Reset()
		prompt = "gsql> "
		sh.run(stmt, os.Stdout)
	}
}

// shell holds the session state the statement loop needs. Exactly one
// of db (embedded) and remote (gapplyd connection) is set.
type shell struct {
	db      *gapplydb.Database
	remote  *client.Conn
	stats   bool
	slowlog time.Duration
	timeout time.Duration // per-statement wall-clock limit; 0 = none
}

// meta handles a backslash command (or bare quit/exit/blank line);
// it returns false when the shell should terminate.
func (s *shell) meta(cmd string, w io.Writer) bool {
	if s.remote != nil {
		return s.metaRemote(cmd, w)
	}
	switch {
	case cmd == `\q` || cmd == "quit" || cmd == "exit":
		return false
	case cmd == "":
		return true
	case cmd == `\dt`:
		for _, t := range s.db.Tables() {
			fmt.Fprintln(w, " ", t)
		}
	case cmd == `\indexes`:
		ixs := s.db.Indexes()
		if len(ixs) == 0 {
			fmt.Fprintln(w, "no indexes")
			break
		}
		for _, ix := range ixs {
			fmt.Fprintf(w, "  %s on %s (%s)\n", ix.Name, ix.Table, strings.Join(ix.Columns, ", "))
		}
	case cmd == `\metrics`:
		fmt.Fprint(w, s.db.Metrics().String())
	case cmd == `\timeout`:
		if s.timeout == 0 {
			fmt.Fprintln(w, "timeout: off")
		} else {
			fmt.Fprintf(w, "timeout: %v\n", s.timeout)
		}
	case strings.HasPrefix(cmd, `\timeout `):
		arg := strings.TrimSpace(cmd[len(`\timeout `):])
		if arg == "off" || arg == "0" {
			s.timeout = 0
			fmt.Fprintln(w, "timeout: off")
			break
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			fmt.Fprintf(w, "usage: \\timeout <duration|off>  (e.g. \\timeout 500ms)\n")
			break
		}
		s.timeout = d
		fmt.Fprintf(w, "timeout: %v\n", s.timeout)
	case strings.HasPrefix(cmd, `\explain `):
		q := strings.TrimSuffix(strings.TrimSpace(cmd[len(`\explain `):]), ";")
		e, err := s.db.ExplainPlan(q)
		if err != nil {
			printError(w, q, err)
			return true
		}
		fmt.Fprint(w, e.String())
	case cmd == `\trace` || strings.HasPrefix(cmd, `\trace `):
		s.metaTrace(strings.TrimSpace(strings.TrimPrefix(cmd, `\trace`)), w)
	default:
		fmt.Fprintf(w, "unknown command %s\n", cmd)
	}
	return true
}

// metaTrace serves \trace against the embedded database's flight
// recorder: "last" prints the most recent trace's span tree, "slow"
// lists the slowest retained traces, and a 32-hex-digit ID prints that
// trace in full.
func (s *shell) metaTrace(arg string, w io.Writer) {
	switch {
	case arg == "last":
		t := s.db.Traces().Last()
		if t == nil {
			fmt.Fprintln(w, "no traces recorded (trace a statement with -slowlog, WithTracing, or sampling)")
			return
		}
		fmt.Fprint(w, t.String())
	case arg == "slow":
		slow := s.db.Traces().Slowest()
		if len(slow) == 0 {
			fmt.Fprintln(w, "no traces recorded")
			return
		}
		for _, sum := range slow {
			fmt.Fprintf(w, "%8.3fms  %-6s %s  %s\n", sum.DurMS, sum.Status, sum.ID, sum.Query)
		}
	case arg == "":
		fmt.Fprintln(w, `usage: \trace last|slow|<id>`)
	default:
		id, err := gapplydb.ParseTraceID(arg)
		if err != nil {
			fmt.Fprintf(w, "bad trace id %q: %v\n", arg, err)
			return
		}
		t := s.db.Traces().Get(id)
		if t == nil {
			fmt.Fprintln(w, "trace not retained (evicted or never recorded)")
			return
		}
		fmt.Fprint(w, t.String())
	}
}

// run executes one terminated statement and prints its result. The
// statement runs under a context that Ctrl-C cancels (the interrupt is
// scoped to the statement: the shell survives and prompts again) and
// that carries the session's \timeout, when one is set.
func (s *shell) run(stmt string, w io.Writer) {
	query := strings.TrimSuffix(strings.TrimSpace(stmt), ";")
	if s.remote != nil {
		s.runRemote(query, w)
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var opts []gapplydb.QueryOption
	if s.timeout > 0 {
		opts = append(opts, gapplydb.WithTimeout(s.timeout))
	}
	if s.slowlog > 0 {
		// Trace every statement so a slow one's timeline is already in
		// the flight recorder when the threshold trips — the slowlog line
		// names the trace, and \trace slow keeps the worst offenders.
		opts = append(opts, gapplydb.WithTracing())
	}
	start := time.Now()
	res, err := s.db.QueryContext(ctx, query, opts...)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Fprintf(w, "cancelled after %v\n", time.Since(start).Round(time.Microsecond))
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintf(w, "timed out after %v (\\timeout %v)\n", time.Since(start).Round(time.Microsecond), s.timeout)
		default:
			printError(w, query, err)
		}
		return
	}
	fmt.Fprint(w, res.String())
	fmt.Fprintf(w, "(%d rows in %v; exec %v)\n",
		len(res.Rows), time.Since(start).Round(time.Microsecond), res.Elapsed.Round(time.Microsecond))
	if s.stats {
		st := res.Stats
		fmt.Fprintf(w, "stats: scanned=%d groups=%d inner=%d serial=%d parallel=%d apply=%d cachehits=%d probes=%d spoolbuilds=%d spoolhits=%d plancache=%d\n",
			st.RowsScanned, st.Groups, st.InnerExecs, st.SerialGroupExecs,
			st.ParallelGroupExecs, st.ApplyExecs, st.ApplyCacheHits, st.JoinProbes,
			st.SpoolBuilds, st.SpoolHits, st.PlanCacheHits)
	}
	if s.slowlog > 0 && res.Elapsed >= s.slowlog {
		e, err := s.db.ExplainAnalyze(query)
		if err != nil {
			fmt.Fprintln(w, "slowlog: explain analyze failed:", err)
			return
		}
		planHash := "?"
		if t := s.db.Traces().Get(res.TraceID); t != nil && t.PlanHash != "" {
			planHash = t.PlanHash
		}
		fmt.Fprintf(w, "-- slow statement (%v >= %v) trace=%s plan=%s, explain analyze:\n%s",
			res.Elapsed.Round(time.Microsecond), s.slowlog, res.TraceID, planHash, e.String())
	}
}

// runStatement keeps the original one-shot entry point (used by tests):
// a default shell with stats and slowlog off.
func runStatement(db *gapplydb.Database, stmt string, w io.Writer) {
	(&shell{db: db}).run(stmt, w)
}

// printError reports a failed statement; parse errors get the offending
// source line with a caret under the error position. ParseError columns
// count runes, so the caret is positioned in display columns — a
// multi-byte UTF-8 literal earlier on the line does not skew it.
func printError(w io.Writer, stmt string, err error) {
	fmt.Fprintln(w, "error:", err)
	var pe *sql.ParseError
	if !errors.As(err, &pe) {
		return
	}
	lines := strings.Split(stmt, "\n")
	if pe.Line < 1 || pe.Line > len(lines) {
		return
	}
	line := lines[pe.Line-1]
	fmt.Fprintf(w, "  %s\n", line)
	col := pe.Col
	if max := utf8.RuneCountInString(line) + 1; col > max {
		col = max
	}
	fmt.Fprintf(w, "  %s^\n", strings.Repeat(" ", col-1))
}
