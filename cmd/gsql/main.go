// Command gsql is an interactive SQL shell for the engine, supporting
// the paper's extended syntax:
//
//	select gapply(<per-group query>) [as (<columns>)]
//	from ... where ... group by <cols> : <variable>
//
// Prefix a statement with EXPLAIN to see the optimized plan and the
// optimizer's cost estimate. Meta commands: \dt lists tables, \q quits.
//
// Usage:
//
//	gsql [-sf 0.01]        # starts with TPC-H loaded at the scale factor
//	gsql -sf 0             # starts with an empty catalog
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gapplydb"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor to preload (0 = empty database)")
	flag.Parse()

	var db *gapplydb.Database
	if *sf > 0 {
		var err error
		fmt.Printf("loading TPC-H at scale factor %g...\n", *sf)
		db, err = gapplydb.OpenTPCH(*sf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gsql:", err)
			os.Exit(1)
		}
	} else {
		db = gapplydb.Open()
	}
	fmt.Println(`gsql — GApply SQL shell. \dt lists tables, \q quits; end statements with ';'.`)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "gsql> "
	for {
		fmt.Print(prompt)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 {
			switch trimmed {
			case `\q`, "quit", "exit":
				return
			case `\dt`:
				for _, t := range db.Tables() {
					fmt.Println(" ", t)
				}
				continue
			case "":
				continue
			}
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "  ... "
			continue
		}
		stmt := buf.String()
		buf.Reset()
		prompt = "gsql> "
		runStatement(db, stmt, os.Stdout)
	}
}

func runStatement(db *gapplydb.Database, stmt string, w io.Writer) {
	trimmed := strings.TrimSpace(stmt)
	lower := strings.ToLower(trimmed)
	if strings.HasPrefix(lower, "explain") {
		rest := strings.TrimSpace(trimmed[len("explain"):])
		rest = strings.TrimSuffix(strings.TrimSpace(rest), ";")
		out, err := db.Explain(rest)
		if err != nil {
			fmt.Fprintln(w, "error:", err)
			return
		}
		fmt.Fprint(w, out)
		return
	}
	start := time.Now()
	res, err := db.Query(strings.TrimSuffix(trimmed, ";"))
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return
	}
	fmt.Fprint(w, res.String())
	fmt.Fprintf(w, "(%d rows in %v; exec %v)\n",
		len(res.Rows), time.Since(start).Round(time.Microsecond), res.Elapsed.Round(time.Microsecond))
}
