// Command xmlpub publishes the TPC-H supplier view as XML, running one
// of the paper's example queries with either translation strategy.
//
// Usage:
//
//	xmlpub [-sf 0.001] [-query q1|q2|q3|expensive|rich] [-strategy gapply|sou] [-show-sql]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gapplydb"
	"gapplydb/xmlpub"
)

func main() {
	sf := flag.Float64("sf", 0.001, "TPC-H scale factor")
	query := flag.String("query", "q1", "q1 | q2 | q3 | expensive | rich")
	strategy := flag.String("strategy", "gapply", "gapply | sou (sorted outer union)")
	showSQL := flag.Bool("show-sql", false, "print the generated SQL to stderr")
	threshold := flag.Float64("threshold", 2050, "price threshold for expensive/rich")
	flag.Parse()

	var q *xmlpub.FLWR
	switch *query {
	case "q1":
		q = xmlpub.Q1()
	case "q2":
		q = xmlpub.Q2()
	case "q3":
		q = xmlpub.Q3(0.9, 1.1)
	case "expensive":
		q = xmlpub.ExpensiveSuppliers(*threshold)
	case "rich":
		q = xmlpub.RichSuppliers(*threshold)
	default:
		fmt.Fprintf(os.Stderr, "xmlpub: unknown query %q\n", *query)
		os.Exit(2)
	}
	var s xmlpub.Strategy
	switch *strategy {
	case "gapply":
		s = xmlpub.GApply
	case "sou":
		s = xmlpub.SortedOuterUnion
	default:
		fmt.Fprintf(os.Stderr, "xmlpub: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	if *showSQL {
		fmt.Fprintf(os.Stderr, "-- %s translation:\n%s\n\n", s, q.SQL(s))
	}

	db, err := gapplydb.OpenTPCH(*sf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmlpub:", err)
		os.Exit(1)
	}
	res, err := xmlpub.Publish(db, q, s, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmlpub:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "published %d rows via %s in %v\n",
		len(res.Rows), s, res.Elapsed.Round(time.Microsecond))
}
