// Benchmarks regenerating the paper's evaluation, one testing.B target
// per reported series:
//
//   - BenchmarkFigure8/*: Q1–Q4, each with and without GApply (the bar
//     pairs behind Figure 8's speedup ratios);
//   - BenchmarkTable1/*: each transformation rule's query with the rule
//     off and on (the ratio pairs behind Table 1's benefit columns);
//   - BenchmarkPartition/*: hash vs sort partitioning (§3's two
//     Partition-phase implementations; §5.2 reports they are comparable);
//   - BenchmarkClientSimulation: §5.1.1's client-side GApply simulation
//     against the server-side operator.
//
// cmd/bench prints the same measurements as the paper's tables; these
// benchmarks expose them to `go test -bench`.
package gapplydb_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"gapplydb"
	"gapplydb/experiments"
	"gapplydb/xmlpub"
)

// benchScale is the TPC-H scale factor for benchmarks; override with
// GAPPLYDB_BENCH_SF.
func benchScale() float64 {
	if s := os.Getenv("GAPPLYDB_BENCH_SF"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f
		}
	}
	return 0.005
}

var (
	benchOnce sync.Once
	benchDB   *gapplydb.Database
)

func benchDatabase(b *testing.B) *gapplydb.Database {
	b.Helper()
	benchOnce.Do(func() {
		db, err := gapplydb.OpenTPCH(benchScale())
		if err != nil {
			panic(err)
		}
		benchDB = db
	})
	return benchDB
}

func runQuery(b *testing.B, q string, opts ...gapplydb.QueryOption) {
	b.Helper()
	db := benchDatabase(b)
	// Plan once; executing the optimized plan is what the paper times.
	if _, err := db.Query(q, opts...); err != nil {
		b.Fatalf("%v\nquery: %s", err, q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q, opts...); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------ Figure 8

const benchQ4GApply = `
	select gapply(select p_name, p_retailprice from g
	              where p_retailprice > (select avg(p_retailprice) from g))
	from partsupp, part
	where ps_partkey = p_partkey
	group by ps_suppkey, p_size : g`

const benchQ4Flat = `
	select tmp.k1, p_name, p_size, p_retailprice
	from (select ps_suppkey, p_size, avg(p_retailprice)
	      from partsupp, part
	      where p_partkey = ps_partkey
	      group by ps_suppkey, p_size) as tmp(k1, k2, avgprice),
	     partsupp, part
	where ps_partkey = p_partkey
	  and ps_suppkey = tmp.k1
	  and p_size = tmp.k2
	  and p_retailprice > tmp.avgprice
	order by tmp.k1`

func BenchmarkFigure8(b *testing.B) {
	cases := []struct {
		name          string
		without, with string
	}{
		{"Q1", xmlpub.Q1().SortedOuterUnionSQL(), xmlpub.Q1().GApplySQL()},
		{"Q2", xmlpub.Q2().SortedOuterUnionSQL(), xmlpub.Q2().GApplySQL()},
		{"Q3", xmlpub.Q3(0.9, 1.1).SortedOuterUnionSQL(), xmlpub.Q3(0.9, 1.1).GApplySQL()},
		{"Q4", benchQ4Flat, benchQ4GApply},
	}
	for _, c := range cases {
		b.Run(c.name+"/WithoutGApply", func(b *testing.B) { runQuery(b, c.without) })
		b.Run(c.name+"/WithGApply", func(b *testing.B) { runQuery(b, c.with) })
		// The parallel execution phase, pinned to fixed degrees so runs on
		// different hardware stay comparable (WithGApply above uses the
		// default, GOMAXPROCS). Compare Dop1 vs Dop4 at GAPPLYDB_BENCH_SF
		// ≥ 0.02 to see the per-group fan-out win.
		for _, dop := range []int{1, 2, 4} {
			dop := dop
			b.Run(fmt.Sprintf("%s/WithGApplyDop%d", c.name, dop), func(b *testing.B) {
				runQuery(b, c.with, gapplydb.WithDOP(dop))
			})
		}
	}
}

// ------------------------------------------------------------- Table 1

func BenchmarkTable1(b *testing.B) {
	type armed struct {
		name     string
		query    string
		rule     string
		forced   bool
		bothOpts []gapplydb.QueryOption
	}
	cases := []armed{
		{
			name: "SelectionBeforeGApply",
			query: `select gapply(select p_name, p_retailprice from g where p_retailprice > 2040)
				from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g`,
			rule: "selection-before-gapply",
		},
		{
			name: "ProjectionBeforeGApply",
			query: `select gapply(select p_name, p_retailprice, null from g
					union all select null, null, avg(p_retailprice) from g)
				from partsupp, part, supplier, nation
				where ps_partkey = p_partkey and ps_suppkey = s_suppkey and s_nationkey = n_nationkey
				group by ps_suppkey : g`,
			rule:     "projection-before-gapply",
			bothOpts: []gapplydb.QueryOption{gapplydb.WithoutRule("gapply-to-groupby")},
		},
		{
			name: "GApplyToGroupby",
			query: `select gapply(select avg(p_retailprice), min(p_retailprice),
					max(p_retailprice), count(*) from g)
				from partsupp, part where ps_partkey = p_partkey group by ps_suppkey, p_size : g`,
			rule: "gapply-to-groupby",
		},
		{
			name:   "GroupSelectionExists",
			query:  xmlpub.ExpensiveSuppliers(2050).GApplySQL(),
			rule:   "group-selection-exists",
			forced: true,
		},
		{
			name:     "GroupSelectionAggregate",
			query:    xmlpub.RichSuppliers(1495).GApplySQL(),
			rule:     "group-selection-aggregate",
			forced:   true,
			bothOpts: []gapplydb.QueryOption{gapplydb.WithoutRule("projection-before-gapply")},
		},
		{
			name: "InvariantGrouping",
			query: `select gapply(select s_name, p_name, p_retailprice from g
					where p_retailprice = (select min(p_retailprice) from g))
				from partsupp, part, supplier
				where ps_partkey = p_partkey and ps_suppkey = s_suppkey
				group by s_suppkey : g`,
			rule:     "invariant-grouping",
			forced:   true,
			bothOpts: []gapplydb.QueryOption{gapplydb.WithoutRule("projection-before-gapply")},
		},
	}
	for _, c := range cases {
		withoutOpts := append([]gapplydb.QueryOption{gapplydb.WithoutRule(c.rule)}, c.bothOpts...)
		withOpts := append([]gapplydb.QueryOption{}, c.bothOpts...)
		if c.forced {
			withOpts = append(withOpts, gapplydb.ForceRule(c.rule))
		}
		b.Run(c.name+"/RuleOff", func(b *testing.B) { runQuery(b, c.query, withoutOpts...) })
		b.Run(c.name+"/RuleOn", func(b *testing.B) { runQuery(b, c.query, withOpts...) })
	}
}

// ------------------------------------------------- partition strategies

func BenchmarkPartition(b *testing.B) {
	q := xmlpub.Q1().GApplySQL()
	b.Run("Hash", func(b *testing.B) { runQuery(b, q, gapplydb.WithPartition("hash")) })
	b.Run("Sort", func(b *testing.B) { runQuery(b, q, gapplydb.WithPartition("sort")) })
}

// --------------------------------------------- spool and plan cache

// BenchmarkSpool pairs a join-heavy GApply query with the invariant-
// subtree spool off and on at dop 1 (the ISSUE's ≥1.5× acceptance
// measurement). Run with -benchmem: the spooled arm also shows the
// allocation savings from the per-group key slab and the hash-join
// probe scratch.
func BenchmarkSpool(b *testing.B) {
	q := experiments.SpoolQueries()[0].SQL
	b.Run("Off", func(b *testing.B) {
		runQuery(b, q, gapplydb.WithDOP(1), gapplydb.WithoutSpooling())
	})
	b.Run("On", func(b *testing.B) {
		runQuery(b, q, gapplydb.WithDOP(1))
	})
}

// BenchmarkPlanCache measures the whole Query call (parse + bind +
// optimize + execute): Cold invalidates the statement cache each
// iteration, Warm hits it.
func BenchmarkPlanCache(b *testing.B) {
	db := benchDatabase(b)
	q := benchQ4GApply
	b.Run("Cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db.InvalidatePlanCache()
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Warm", func(b *testing.B) {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ------------------------------------------- §5.1.1 client simulation

func BenchmarkClientSimulation(b *testing.B) {
	b.Run("ServerSideGApply", func(b *testing.B) { runQuery(b, benchQ4GApply) })
	// The full client-side loop (materialize, re-sort, per-group rebind)
	// is measured by cmd/bench -experiment clientsim; here we benchmark
	// its dominant component, the sorted outer query it materializes.
	b.Run("ClientOuterMaterialization", func(b *testing.B) {
		runQuery(b, `select ps_suppkey, p_size, p_name, p_retailprice
			from partsupp, part where ps_partkey = p_partkey
			order by ps_suppkey, p_size`)
	})
}
