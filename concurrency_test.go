package gapplydb_test

import (
	"fmt"
	"sync"
	"testing"

	"gapplydb"
	"gapplydb/xmlpub"
)

// The concurrency battery locks in the API contract that Query (and XML
// publishing on top of it) is safe for concurrent callers of one
// *Database: every execution owns its context, worker pool and result
// buffers, and the loaded catalog is only read. Run under -race this is
// the engine's thread-safety proof; the assertions also verify that
// concurrent executions do not corrupt each other's results.

// stressQueries is a mix that covers the executor broadly: parallel
// GApply (both paper translations), plain aggregation, joins,
// decorrelated subqueries.
func stressQueries() []string {
	return []string{
		xmlpub.Q1().GApplySQL(),
		xmlpub.Q1().SortedOuterUnionSQL(),
		xmlpub.Q2().GApplySQL(),
		`select gapply(select p_name, p_retailprice from g
			where p_retailprice > (select avg(p_retailprice) from g))
		 from partsupp, part where ps_partkey = p_partkey
		 group by ps_suppkey, p_size : g`,
		`select ps_suppkey, count(*) n, avg(p_retailprice)
		 from partsupp, part where ps_partkey = p_partkey
		 group by ps_suppkey order by n desc`,
		`select p_name from part
		 where p_retailprice > 1.05 * (select avg(p_retailprice) from part)`,
	}
}

func TestConcurrentQueriesOnSharedDatabase(t *testing.T) {
	db := integDatabase(t)
	queries := stressQueries()

	// Golden answers, computed before any concurrency, at forced-serial
	// execution: every concurrent run at any dop must reproduce them
	// byte-for-byte.
	want := make([][]string, len(queries))
	for i, q := range queries {
		res, err := db.Query(q, gapplydb.WithDOP(1))
		if err != nil {
			t.Fatalf("golden run %d: %v\n%s", i, err, q)
		}
		want[i] = ordered(res)
	}

	const goroutines = 8
	const iterations = 6
	dops := []int{0, 1, 2, 8}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iterations)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				qi := (gi + it) % len(queries)
				dop := dops[(gi*iterations+it)%len(dops)]
				res, err := db.Query(queries[qi], gapplydb.WithDOP(dop))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d query %d dop %d: %w", gi, qi, dop, err)
					return
				}
				if d := firstDiff(want[qi], ordered(res)); d != "" {
					errs <- fmt.Errorf("goroutine %d query %d dop %d diverged: %s", gi, qi, dop, d)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestConcurrentXMLPublishing(t *testing.T) {
	db := integDatabase(t)
	flwrs := []*xmlpub.FLWR{xmlpub.Q1(), xmlpub.Q2(), xmlpub.Q3(0.9, 1.1)}

	want := make([]string, len(flwrs))
	for i, q := range flwrs {
		var buf stringsBuilder
		if _, err := xmlpub.Publish(db, q, xmlpub.GApply, &buf, gapplydb.WithDOP(1)); err != nil {
			t.Fatal(err)
		}
		want[i] = buf.String()
	}

	const goroutines = 6
	const iterations = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iterations)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				qi := (gi + it) % len(flwrs)
				strategy := xmlpub.GApply
				if (gi+it)%2 == 1 {
					strategy = xmlpub.SortedOuterUnion
				}
				var buf stringsBuilder
				if _, err := xmlpub.Publish(db, flwrs[qi], strategy, &buf); err != nil {
					errs <- fmt.Errorf("goroutine %d publish %d: %w", gi, qi, err)
					return
				}
				if buf.String() != want[qi] {
					errs <- fmt.Errorf("goroutine %d publish %d (%s): document diverged", gi, qi, strategy)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
