package exec

import (
	"fmt"

	"gapplydb/internal/core"
	"gapplydb/internal/schema"
)

// Build compiles a logical plan into an iterator tree bound to ctx.
// Physical choices honor the hints the optimizer set on the logical
// nodes (join method, GApply partition strategy), defaulting sensibly.
func Build(n core.Node, ctx *Context) (Iterator, error) {
	return build(n, ctx, nil)
}

// build compiles one node (and, recursively, its subtree). When the
// context carries a Profile, every compiled iterator is wrapped in an
// instrumented probe keyed by its plan node; with a nil Profile the
// iterators are returned bare, so disabled instrumentation costs
// nothing at execution time.
//
// When the node is a registered invariant root of the enclosing GApply's
// inner plan, the (probe-wrapped) iterator is additionally wrapped in a
// spool sharing the registry's holder. The spool goes outside the probe
// on purpose: replays then bypass the subtree's instrumentation, so
// EXPLAIN ANALYZE reports the one real execution (loops=1) at every
// degree of parallelism.
func build(n core.Node, ctx *Context, env compileEnv) (Iterator, error) {
	it, err := buildNode(n, ctx, env)
	if err != nil {
		return nil, err
	}
	if ctx.Prof != nil {
		it = ctx.Prof.wrap(n, it)
	}
	if ctx.spools != nil {
		if h, ok := ctx.spools.holders[n]; ok {
			it = &spool{inner: it, node: n, h: h, ctx: ctx}
		}
	}
	return it, nil
}

func buildNode(n core.Node, ctx *Context, env compileEnv) (Iterator, error) {
	switch x := n.(type) {
	case *core.Scan:
		tab, err := ctx.Catalog.Lookup(x.Table)
		if err != nil {
			return nil, err
		}
		return &tableScan{table: tab, ctx: ctx}, nil

	case *core.IndexScan:
		if err := checkIndexScan(x, ctx); err != nil {
			return nil, err
		}
		return &indexScan{plan: x, ctx: ctx}, nil

	case *core.GroupScan:
		return &groupScan{varName: x.Var, ctx: ctx}, nil

	case *core.Select:
		in, err := build(x.Input, ctx, env)
		if err != nil {
			return nil, err
		}
		pred, err := compilePredicate(x.Cond, x.Input.Schema(), env)
		if err != nil {
			return nil, err
		}
		return &filter{input: in, pred: pred, ctx: ctx}, nil

	case *core.Project:
		in, err := build(x.Input, ctx, env)
		if err != nil {
			return nil, err
		}
		// Fast path: a pure column projection compiles to an ordinal
		// copy instead of per-expression closures. The optimizer's
		// projection-before-GApply and invariant-grouping rules insert
		// exactly this shape on hot paths.
		inSchema := x.Input.Schema()
		ords := make([]int, 0, len(x.Exprs))
		pure := true
		for _, e := range x.Exprs {
			c, ok := e.(*core.ColRef)
			if !ok {
				pure = false
				break
			}
			ord, err := inSchema.Resolve(c.Table, c.Name)
			if err != nil {
				pure = false
				break
			}
			ords = append(ords, ord)
		}
		if pure {
			return &projectCols{input: in, ords: ords}, nil
		}
		fns, err := compileAll(x.Exprs, inSchema, env)
		if err != nil {
			return nil, err
		}
		return &project{input: in, exprs: fns, ctx: ctx}, nil

	case *core.Distinct:
		in, err := build(x.Input, ctx, env)
		if err != nil {
			return nil, err
		}
		return &distinct{input: in}, nil

	case *core.Join:
		return buildJoin(x, ctx, env)

	case *core.GroupBy:
		return buildGroupBy(x, ctx, env)

	case *core.AggOp:
		return buildScalarAgg(x, ctx, env)

	case *core.OrderBy:
		if x.Elided {
			// The optimizer proved the input provides exactly this
			// ordering; the node compiles to a pass-through. Its probe
			// wrapper (in build) still counts rows, so EXPLAIN ANALYZE
			// keeps the operator's line with sort work elided.
			return build(x.Input, ctx, env)
		}
		in, err := build(x.Input, ctx, env)
		if err != nil {
			return nil, err
		}
		keys, err := compileOrderKeys(x.Keys, x.Input.Schema(), env)
		if err != nil {
			return nil, err
		}
		return &sortIter{input: in, keys: keys, ctx: ctx}, nil

	case *core.UnionAll:
		// All inputs must have the same arity; the binder checks this,
		// and the executor re-checks cheaply here.
		arity := x.Inputs[0].Schema().Len()
		ins := make([]Iterator, len(x.Inputs))
		for i, c := range x.Inputs {
			if c.Schema().Len() != arity {
				return nil, fmt.Errorf("exec: union input %d has %d columns, want %d", i, c.Schema().Len(), arity)
			}
			it, err := build(c, ctx, env)
			if err != nil {
				return nil, err
			}
			ins[i] = it
		}
		return &unionAll{inputs: ins}, nil

	case *core.Apply:
		return buildApply(x, ctx, env)

	case *core.Exists:
		in, err := build(x.Input, ctx, env)
		if err != nil {
			return nil, err
		}
		return &exists{input: in, negated: x.Negated}, nil

	case *core.GApply:
		return buildGApply(x, ctx, env)

	default:
		return nil, fmt.Errorf("exec: unknown logical operator %T", n)
	}
}

// compiledKey is a sort key with its evaluator.
type compiledKey struct {
	fn   evalFn
	desc bool
}

func compileOrderKeys(keys []core.OrderKey, in *schema.Schema, env compileEnv) ([]compiledKey, error) {
	out := make([]compiledKey, len(keys))
	for i, k := range keys {
		fn, err := compileExpr(k.Expr, in, env)
		if err != nil {
			return nil, err
		}
		out[i] = compiledKey{fn: fn, desc: k.Desc}
	}
	return out, nil
}

// resolveCols maps column refs to ordinals in a schema.
func resolveCols(cols []*core.ColRef, in *schema.Schema) ([]int, error) {
	out := make([]int, len(cols))
	for i, c := range cols {
		ord, err := in.Resolve(c.Table, c.Name)
		if err != nil {
			return nil, err
		}
		out[i] = ord
	}
	return out, nil
}
