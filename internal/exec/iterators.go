package exec

import (
	"sort"

	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// tableScan produces the rows of a base table.
type tableScan struct {
	table *storage.Table
	ctx   *Context
	pos   int
}

func (s *tableScan) Open() error { s.pos = 0; return nil }
func (s *tableScan) Next() (types.Row, bool, error) {
	// Leaf scans are the engine's universal cancellation point: every
	// row of every plan originates here or at a groupScan, so polling
	// at the leaves bounds cancellation latency for all operators.
	if err := s.ctx.tick(); err != nil {
		return nil, false, err
	}
	if s.pos >= len(s.table.Rows) {
		return nil, false, nil
	}
	r := s.table.Rows[s.pos]
	s.pos++
	s.ctx.Counters.RowsScanned++
	return r, true, nil
}
func (s *tableScan) Close() error { return nil }

// groupScan produces the rows currently bound to a group variable — the
// paper's "leaf scan operator receives the relation-valued parameter".
type groupScan struct {
	varName string
	ctx     *Context
	rows    []types.Row
	pos     int
}

func (s *groupScan) Open() error {
	rows, err := s.ctx.Group(s.varName)
	if err != nil {
		return err
	}
	s.rows, s.pos = rows, 0
	return nil
}
func (s *groupScan) Next() (types.Row, bool, error) {
	if err := s.ctx.tick(); err != nil {
		return nil, false, err
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	s.ctx.Counters.GroupScanRows++
	return r, true, nil
}
func (s *groupScan) Close() error { return nil }

// filter passes rows whose predicate evaluates to True.
type filter struct {
	input Iterator
	pred  func(types.Row, *Context) (bool, error)
	ctx   *Context
}

func (f *filter) Open() error { return f.input.Open() }
func (f *filter) Next() (types.Row, bool, error) {
	for {
		r, ok, err := f.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass, err := f.pred(r, f.ctx)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return r, true, nil
		}
	}
}
func (f *filter) Close() error { return f.input.Close() }

// project computes output expressions per row.
type project struct {
	input Iterator
	exprs []evalFn
	ctx   *Context
}

func (p *project) Open() error { return p.input.Open() }
func (p *project) Next() (types.Row, bool, error) {
	r, ok, err := p.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(types.Row, len(p.exprs))
	for i, f := range p.exprs {
		v, err := f(r, p.ctx)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}
func (p *project) Close() error { return p.input.Close() }

// projectCols is the pure-column projection fast path.
type projectCols struct {
	input Iterator
	ords  []int
}

func (p *projectCols) Open() error { return p.input.Open() }
func (p *projectCols) Next() (types.Row, bool, error) {
	r, ok, err := p.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return r.Project(p.ords), true, nil
}
func (p *projectCols) Close() error { return p.input.Close() }

// distinct eliminates duplicate rows via a hash set.
type distinct struct {
	input Iterator
	seen  map[string]bool
}

func (d *distinct) Open() error {
	d.seen = make(map[string]bool)
	return d.input.Open()
}
func (d *distinct) Next() (types.Row, bool, error) {
	for {
		r, ok, err := d.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := r.KeyAll()
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return r, true, nil
	}
}
func (d *distinct) Close() error { return d.input.Close() }

// unionAll concatenates its inputs.
type unionAll struct {
	inputs []Iterator
	cur    int
}

func (u *unionAll) Open() error {
	u.cur = 0
	if len(u.inputs) == 0 {
		return nil
	}
	return u.inputs[0].Open()
}
func (u *unionAll) Next() (types.Row, bool, error) {
	for u.cur < len(u.inputs) {
		r, ok, err := u.inputs[u.cur].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return r, true, nil
		}
		if err := u.inputs[u.cur].Close(); err != nil {
			return nil, false, err
		}
		u.cur++
		if u.cur < len(u.inputs) {
			if err := u.inputs[u.cur].Open(); err != nil {
				return nil, false, err
			}
		}
	}
	return nil, false, nil
}
func (u *unionAll) Close() error {
	if u.cur < len(u.inputs) {
		return u.inputs[u.cur].Close()
	}
	return nil
}

// sortIter materializes its input and sorts by compiled keys. Sorting is
// stable so equal keys preserve input order, which keeps test
// expectations and the constant-space tagger deterministic.
type sortIter struct {
	input Iterator
	keys  []compiledKey
	ctx   *Context
	rows  []types.Row
	pos   int
}

func (s *sortIter) Open() error {
	if err := s.input.Open(); err != nil {
		return err
	}
	type keyed struct {
		row  types.Row
		keys types.Row
	}
	var data []keyed
	for {
		if err := s.ctx.tick(); err != nil {
			return err
		}
		r, ok, err := s.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		kv := make(types.Row, len(s.keys))
		for i, k := range s.keys {
			v, err := k.fn(r, s.ctx)
			if err != nil {
				return err
			}
			kv[i] = v
		}
		data = append(data, keyed{row: r, keys: kv})
	}
	if err := s.input.Close(); err != nil {
		return err
	}
	sort.SliceStable(data, func(i, j int) bool {
		for k := range s.keys {
			c := types.SortCompare(data[i].keys[k], data[j].keys[k])
			if c == 0 {
				continue
			}
			if s.keys[k].desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	s.rows = make([]types.Row, len(data))
	for i, d := range data {
		s.rows[i] = d.row
	}
	s.pos = 0
	return nil
}
func (s *sortIter) Next() (types.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}
func (s *sortIter) Close() error {
	s.rows = nil
	return nil
}

// exists consumes its input and emits a single zero-column row when the
// input is nonempty (or empty, when negated) — the paper's Exists
// returning {φ} or φ.
type exists struct {
	input   Iterator
	negated bool
	done    bool
	emit    bool
}

func (e *exists) Open() error {
	e.done = false
	if err := e.input.Open(); err != nil {
		return err
	}
	_, ok, err := e.input.Next()
	if err != nil {
		return err
	}
	if err := e.input.Close(); err != nil {
		return err
	}
	e.emit = ok != e.negated
	return nil
}
func (e *exists) Next() (types.Row, bool, error) {
	if e.done || !e.emit {
		return nil, false, nil
	}
	e.done = true
	return types.Row{}, true, nil
}
func (e *exists) Close() error { return nil }
