package exec

import (
	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

// This file compiles WHERE-style predicates into vectorized selection
// kernels. A kernel traverses one column of a batch's live rows in a
// tight loop and narrows the selection vector in place — no interface
// call, no closure chain, no Tri boxing per row.
//
// Kernels are compiled only for expression shapes that provably cannot
// error at runtime: comparisons over column references and literals,
// and conjunctions of those. (compileExpr's Cmp closures return errors
// only from their operand closures; ColRef and Lit operands cannot
// fail.) That guarantee is what makes conjunct-at-a-time narrowing
// semantics-preserving: a row dropped by an earlier conjunct can never
// have produced an error in a later one, and a WHERE passes a row only
// when every conjunct is True — NULL (Unknown) and false both reject —
// which is exactly "survives every kernel". Anything outside this
// shape (OuterRefs, arithmetic, functions, OR, NOT) falls back to the
// row-closure loop in bFilter, still batch-driven.

// selKernel narrows a selection vector: it returns the indexes in sel
// (in order) whose rows pass one conjunct. It may write the result into
// sel's backing array — callers pass a scratch selection they own.
type selKernel func(rows []types.Row, sel []int) []int

// compileFilterKernels compiles a predicate into a kernel per conjunct.
// ok=false means the expression is not kernelizable and the caller must
// use the compiled row closure instead.
func compileFilterKernels(e core.Expr, in *schema.Schema) ([]selKernel, bool) {
	switch x := e.(type) {
	case *core.And:
		var out []selKernel
		for _, op := range x.Ops {
			ks, ok := compileFilterKernels(op, in)
			if !ok {
				return nil, false
			}
			out = append(out, ks...)
		}
		return out, true
	case *core.Cmp:
		k, ok := compileCmpKernel(x, in)
		if !ok {
			return nil, false
		}
		return []selKernel{k}, true
	default:
		return nil, false
	}
}

// cmpTest returns the comparison-outcome test for an operator.
func cmpTest(op string) (func(int) bool, bool) {
	switch op {
	case "=":
		return func(c int) bool { return c == 0 }, true
	case "<>", "!=":
		return func(c int) bool { return c != 0 }, true
	case "<":
		return func(c int) bool { return c < 0 }, true
	case "<=":
		return func(c int) bool { return c <= 0 }, true
	case ">":
		return func(c int) bool { return c > 0 }, true
	case ">=":
		return func(c int) bool { return c >= 0 }, true
	default:
		return nil, false
	}
}

// compileCmpKernel builds the kernel for one comparison whose operands
// are column refs or literals. types.Compare returning ok=false is SQL
// Unknown (a NULL operand or incomparable kinds), which rejects.
func compileCmpKernel(x *core.Cmp, in *schema.Schema) (selKernel, bool) {
	test, ok := cmpTest(x.Op)
	if !ok {
		return nil, false
	}
	lo, lv, lok := kernelOperand(x.L, in)
	ro, rv, rok := kernelOperand(x.R, in)
	if !lok || !rok {
		return nil, false
	}
	switch {
	case lo >= 0 && ro >= 0: // column <op> column
		return func(rows []types.Row, sel []int) []int {
			out := sel[:0]
			for _, i := range sel {
				if c, ok := types.Compare(rows[i][lo], rows[i][ro]); ok && test(c) {
					out = append(out, i)
				}
			}
			return out
		}, true
	case lo >= 0: // column <op> literal
		return func(rows []types.Row, sel []int) []int {
			out := sel[:0]
			for _, i := range sel {
				if c, ok := types.Compare(rows[i][lo], rv); ok && test(c) {
					out = append(out, i)
				}
			}
			return out
		}, true
	case ro >= 0: // literal <op> column
		return func(rows []types.Row, sel []int) []int {
			out := sel[:0]
			for _, i := range sel {
				if c, ok := types.Compare(lv, rows[i][ro]); ok && test(c) {
					out = append(out, i)
				}
			}
			return out
		}, true
	default: // literal <op> literal: decided once, keep all or none
		keep := false
		if c, ok := types.Compare(lv, rv); ok && test(c) {
			keep = true
		}
		return func(rows []types.Row, sel []int) []int {
			if keep {
				return sel
			}
			return sel[:0]
		}, true
	}
}

// kernelOperand classifies a comparison operand: (ordinal, _, true) for
// a resolvable column ref, (-1, value, true) for a literal, ok=false
// otherwise.
func kernelOperand(e core.Expr, in *schema.Schema) (int, types.Value, bool) {
	switch x := e.(type) {
	case *core.ColRef:
		ord, err := in.Resolve(x.Table, x.Name)
		if err != nil {
			return -1, types.Null, false
		}
		return ord, types.Null, true
	case *core.Lit:
		return -1, x.V, true
	}
	return -1, types.Null, false
}

// runKernels applies every kernel in sequence, narrowing sel.
func runKernels(kernels []selKernel, rows []types.Row, sel []int) []int {
	for _, k := range kernels {
		if len(sel) == 0 {
			return sel
		}
		sel = k(rows, sel)
	}
	return sel
}
