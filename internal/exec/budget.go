package exec

import (
	"fmt"
	"sync/atomic"
)

// Budget caps the resources one query execution may consume. A Budget is
// shared by every Context forked for the query (parallel GApply workers
// charge the same meters), so all accounting is atomic. The zero value
// of each limit means unlimited; the wall-clock limit is carried by the
// deadline on Context.Ctx rather than here.
type Budget struct {
	// MaxOutputRows caps how many rows the root of the plan may emit.
	MaxOutputRows int64
	// MaxPartitionBytes caps the total bytes of rows materialized into
	// GApply partitions (both hash and sort strategies), the engine's
	// dominant memory consumer on groupwise plans.
	MaxPartitionBytes int64

	partitionBytes atomic.Int64
}

// chargePartition adds n bytes to the materialized-partition meter and
// returns a *ResourceError naming the operator when the budget is blown.
func (b *Budget) chargePartition(n int64, operator string) error {
	if b == nil {
		return nil
	}
	used := b.partitionBytes.Add(n)
	if b.MaxPartitionBytes > 0 && used > b.MaxPartitionBytes {
		return &ResourceError{Limit: LimitPartitionBytes, Operator: operator, Max: b.MaxPartitionBytes, Used: used}
	}
	return nil
}

// Limit identifiers for ResourceError.Limit.
const (
	LimitOutputRows     = "max-output-rows"
	LimitPartitionBytes = "max-partition-bytes"
)

// ResourceError reports a query killed for exceeding its resource
// budget: which limit, at which operator, and by how much. It is a
// typed error so servers can distinguish budget kills from genuine
// failures (errors.As) and surface the offending operator.
type ResourceError struct {
	// Limit is the exceeded budget dimension (LimitOutputRows or
	// LimitPartitionBytes).
	Limit string
	// Operator is a compact description of the plan operator that blew
	// the budget (the same shape the optimizer trace and EXPLAIN use).
	Operator string
	// Max is the configured limit; Used is the consumption observed when
	// the limit tripped.
	Max, Used int64
}

func (e *ResourceError) Error() string {
	return fmt.Sprintf("exec: resource budget exceeded: %s = %d (limit %d) at %s", e.Limit, e.Used, e.Max, e.Operator)
}
