package exec

import (
	"strings"

	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

// Result is a fully materialized query result.
type Result struct {
	Schema *schema.Schema
	Rows   []types.Row
}

// Run compiles and executes a logical plan, materializing the result.
// Execution honors the Context's cancellation signal (ctx.Ctx) and
// resource budget: cancellation surfaces as context.Canceled or
// context.DeadlineExceeded within one row batch, and a blown budget as
// a *ResourceError naming the offending operator.
//
// The batch engine runs by default; Context.RowExec selects the
// row-at-a-time engine. Both produce the same rows, the same errors
// (budget kills included, with identical Used values) and the same
// counters.
func Run(n core.Node, ctx *Context) (*Result, error) {
	if !ctx.RowExec {
		return runBatch(n, ctx)
	}
	it, err := Build(n, ctx)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		return nil, err
	}
	var rows []types.Row
	for {
		if err := ctx.tick(); err != nil {
			it.Close()
			return nil, err
		}
		r, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		rows = append(rows, r)
		if b := ctx.Budget; b != nil && b.MaxOutputRows > 0 && int64(len(rows)) > b.MaxOutputRows {
			it.Close()
			return nil, &ResourceError{
				Limit: LimitOutputRows, Operator: core.Summary(n),
				Max: b.MaxOutputRows, Used: int64(len(rows)),
			}
		}
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	// A cancel that lands after the last row still cancels the query:
	// callers must never mistake a result raced by cancellation for a
	// committed success.
	if err := ctx.checkCancel(); err != nil {
		return nil, err
	}
	return &Result{Schema: n.Schema(), Rows: rows}, nil
}

// runBatch is Run over the batch engine. The output-row budget error is
// raised at the same logical point as the row engine's — after max+1
// rows have been produced, with Used = max+1 — so the two engines are
// indistinguishable to a caller even on the failure path.
func runBatch(n core.Node, ctx *Context) (*Result, error) {
	it, err := BuildBatch(n, ctx)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		return nil, err
	}
	var rows []types.Row
	for {
		b, err := it.NextBatch()
		if err != nil {
			it.Close()
			return nil, err
		}
		if b == nil {
			break
		}
		if err := ctx.tickN(b.Len()); err != nil {
			it.Close()
			return nil, err
		}
		if bud := ctx.Budget; bud != nil && bud.MaxOutputRows > 0 && int64(len(rows)+b.Len()) > bud.MaxOutputRows {
			it.Close()
			return nil, &ResourceError{
				Limit: LimitOutputRows, Operator: core.Summary(n),
				Max: bud.MaxOutputRows, Used: bud.MaxOutputRows + 1,
			}
		}
		rows = b.AppendRows(rows)
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	// A cancel that lands after the last batch still cancels, exactly as
	// in the row engine.
	if err := ctx.checkCancel(); err != nil {
		return nil, err
	}
	return &Result{Schema: n.Schema(), Rows: rows}, nil
}

// String renders the result as an aligned text table (the shell's output
// format).
func (r *Result) String() string {
	headers := make([]string, r.Schema.Len())
	widths := make([]int, r.Schema.Len())
	for i, c := range r.Schema.Cols {
		headers[i] = c.QualifiedName()
		widths[i] = len(headers[i])
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = v.String()
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for j, v := range vals {
			if j > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(v)
			b.WriteString(strings.Repeat(" ", widths[j]-len(v)))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for j, w := range widths {
		if j > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
