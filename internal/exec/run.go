package exec

import (
	"strings"

	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

// Result is a fully materialized query result.
type Result struct {
	Schema *schema.Schema
	Rows   []types.Row
}

// Run compiles and executes a logical plan, materializing the result.
// Execution honors the Context's cancellation signal (ctx.Ctx) and
// resource budget: cancellation surfaces as context.Canceled or
// context.DeadlineExceeded within one row batch, and a blown budget as
// a *ResourceError naming the offending operator.
func Run(n core.Node, ctx *Context) (*Result, error) {
	it, err := Build(n, ctx)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		return nil, err
	}
	var rows []types.Row
	for {
		if err := ctx.tick(); err != nil {
			it.Close()
			return nil, err
		}
		r, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		rows = append(rows, r)
		if b := ctx.Budget; b != nil && b.MaxOutputRows > 0 && int64(len(rows)) > b.MaxOutputRows {
			it.Close()
			return nil, &ResourceError{
				Limit: LimitOutputRows, Operator: core.Summary(n),
				Max: b.MaxOutputRows, Used: int64(len(rows)),
			}
		}
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	// A cancel that lands after the last row still cancels the query:
	// callers must never mistake a result raced by cancellation for a
	// committed success.
	if err := ctx.checkCancel(); err != nil {
		return nil, err
	}
	return &Result{Schema: n.Schema(), Rows: rows}, nil
}

// String renders the result as an aligned text table (the shell's output
// format).
func (r *Result) String() string {
	headers := make([]string, r.Schema.Len())
	widths := make([]int, r.Schema.Len())
	for i, c := range r.Schema.Cols {
		headers[i] = c.QualifiedName()
		widths[i] = len(headers[i])
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = v.String()
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for j, v := range vals {
			if j > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(v)
			b.WriteString(strings.Repeat(" ", widths[j]-len(v)))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for j, w := range widths {
		if j > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
