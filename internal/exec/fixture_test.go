package exec

import (
	"gapplydb/internal/schema"
	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

type catalogT = storage.Catalog

// buildFixtureCatalog constructs the shared test data set described in
// exec_test.go's fixture comment.
func buildFixtureCatalog() *storage.Catalog {
	cat := storage.NewCatalog()
	sup, err := cat.Create(&schema.TableDef{
		Name: "supplier",
		Schema: schema.New(
			schema.Column{Name: "s_suppkey", Type: types.KindInt},
			schema.Column{Name: "s_name", Type: types.KindString},
		),
		PrimaryKey: []string{"s_suppkey"},
	})
	if err != nil {
		panic(err)
	}
	for _, r := range []types.Row{
		{types.NewInt(1), types.NewString("alpha")},
		{types.NewInt(2), types.NewString("beta")},
		{types.NewInt(3), types.NewString("gamma")},
	} {
		if err := sup.Append(r); err != nil {
			panic(err)
		}
	}

	part, err := cat.Create(&schema.TableDef{
		Name: "part",
		Schema: schema.New(
			schema.Column{Name: "p_partkey", Type: types.KindInt},
			schema.Column{Name: "p_name", Type: types.KindString},
			schema.Column{Name: "p_retailprice", Type: types.KindFloat},
			schema.Column{Name: "p_brand", Type: types.KindString},
		),
		PrimaryKey: []string{"p_partkey"},
	})
	if err != nil {
		panic(err)
	}
	for _, r := range []types.Row{
		{types.NewInt(1), types.NewString("bolt"), types.NewFloat(10), types.NewString("Brand#A")},
		{types.NewInt(2), types.NewString("nut"), types.NewFloat(20), types.NewString("Brand#B")},
		{types.NewInt(3), types.NewString("washer"), types.NewFloat(30), types.NewString("Brand#A")},
		{types.NewInt(4), types.NewString("screw"), types.NewFloat(40), types.NewString("Brand#B")},
	} {
		if err := part.Append(r); err != nil {
			panic(err)
		}
	}

	ps, err := cat.Create(&schema.TableDef{
		Name: "partsupp",
		Schema: schema.New(
			schema.Column{Name: "ps_partkey", Type: types.KindInt},
			schema.Column{Name: "ps_suppkey", Type: types.KindInt},
		),
		PrimaryKey: []string{"ps_partkey", "ps_suppkey"},
		ForeignKeys: []schema.ForeignKey{
			{Cols: []string{"ps_partkey"}, RefTable: "part", RefCols: []string{"p_partkey"}},
			{Cols: []string{"ps_suppkey"}, RefTable: "supplier", RefCols: []string{"s_suppkey"}},
		},
	})
	if err != nil {
		panic(err)
	}
	for _, r := range []types.Row{
		{types.NewInt(1), types.NewInt(1)},
		{types.NewInt(2), types.NewInt(1)},
		{types.NewInt(3), types.NewInt(1)},
		{types.NewInt(3), types.NewInt(2)},
		{types.NewInt(4), types.NewInt(2)},
	} {
		if err := ps.Append(r); err != nil {
			panic(err)
		}
	}
	return cat
}
