package exec

import (
	"fmt"
	"strings"

	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

// accum is one aggregate's running state. SQL semantics: aggregates skip
// NULL inputs (except count(*)); on zero qualifying inputs count is 0 and
// every other aggregate is NULL — the behaviour the paper's emptyOnEmpty
// analysis reasons about.
type accum struct {
	fn       string
	star     bool
	distinct bool
	seen     map[string]bool

	rows     int64 // rows seen (count(*))
	n        int64 // non-null inputs
	sumI     int64
	sumF     float64
	anyFloat bool
	minV     types.Value
	maxV     types.Value
}

func newAccum(spec core.AggSpec) (*accum, error) {
	fn := strings.ToLower(spec.Fn)
	switch fn {
	case "count", "sum", "avg", "min", "max":
	default:
		return nil, fmt.Errorf("exec: unknown aggregate %q", spec.Fn)
	}
	a := &accum{fn: fn, star: spec.Star, distinct: spec.Distinct}
	if spec.Distinct {
		a.seen = make(map[string]bool)
	}
	return a, nil
}

func (a *accum) add(v types.Value) error {
	a.rows++
	if a.star {
		return nil
	}
	if v.IsNull() {
		return nil
	}
	if a.distinct {
		k := (types.Row{v}).KeyAll()
		if a.seen[k] {
			return nil
		}
		a.seen[k] = true
	}
	a.n++
	switch a.fn {
	case "count":
	case "sum", "avg":
		switch v.K {
		case types.KindInt:
			a.sumI += v.I
			a.sumF += float64(v.I)
		case types.KindFloat:
			a.anyFloat = true
			a.sumF += v.F
		default:
			return fmt.Errorf("exec: %s over non-numeric %s", a.fn, v.K)
		}
	case "min":
		if a.minV.IsNull() {
			a.minV = v
		} else if c, ok := types.Compare(v, a.minV); ok && c < 0 {
			a.minV = v
		}
	case "max":
		if a.maxV.IsNull() {
			a.maxV = v
		} else if c, ok := types.Compare(v, a.maxV); ok && c > 0 {
			a.maxV = v
		}
	}
	return nil
}

func (a *accum) result() types.Value {
	switch a.fn {
	case "count":
		if a.star {
			return types.NewInt(a.rows)
		}
		return types.NewInt(a.n)
	case "sum":
		if a.n == 0 {
			return types.Null
		}
		if a.anyFloat {
			return types.NewFloat(a.sumF)
		}
		return types.NewInt(a.sumI)
	case "avg":
		if a.n == 0 {
			return types.Null
		}
		return types.NewFloat(a.sumF / float64(a.n))
	case "min":
		return a.minV
	case "max":
		return a.maxV
	}
	return types.Null
}

// compiledAgg pairs a spec with its argument evaluator.
type compiledAgg struct {
	spec core.AggSpec
	arg  evalFn // nil for count(*)
}

func compileAggs(specs []core.AggSpec, in *schema.Schema, env compileEnv) ([]compiledAgg, error) {
	out := make([]compiledAgg, len(specs))
	for i, s := range specs {
		ca := compiledAgg{spec: s}
		if !s.Star {
			if s.Arg == nil {
				return nil, fmt.Errorf("exec: aggregate %s missing argument", s.Fn)
			}
			fn, err := compileExpr(s.Arg, in, env)
			if err != nil {
				return nil, err
			}
			ca.arg = fn
		}
		out[i] = ca
	}
	return out, nil
}

func feed(aggs []compiledAgg, states []*accum, r types.Row, ctx *Context) error {
	for i, a := range aggs {
		var v types.Value
		if a.arg != nil {
			var err error
			v, err = a.arg(r, ctx)
			if err != nil {
				return err
			}
		}
		if err := states[i].add(v); err != nil {
			return err
		}
	}
	return nil
}

func newStates(aggs []compiledAgg) ([]*accum, error) {
	states := make([]*accum, len(aggs))
	for i, a := range aggs {
		st, err := newAccum(a.spec)
		if err != nil {
			return nil, err
		}
		states[i] = st
	}
	return states, nil
}

func buildGroupBy(g *core.GroupBy, ctx *Context, env compileEnv) (Iterator, error) {
	in, err := build(g.Input, ctx, env)
	if err != nil {
		return nil, err
	}
	inSchema := g.Input.Schema()
	ords, err := resolveCols(g.GroupCols, inSchema)
	if err != nil {
		return nil, err
	}
	aggs, err := compileAggs(g.Aggs, inSchema, env)
	if err != nil {
		return nil, err
	}
	return &hashGroupBy{input: in, ords: ords, aggs: aggs, ctx: ctx}, nil
}

// hashGroupBy materializes groups in first-seen order and emits one row
// per group: the grouping values followed by the aggregate results. A
// groupby of the empty input is empty (unlike the scalar aggregate).
type hashGroupBy struct {
	input Iterator
	ords  []int
	aggs  []compiledAgg
	ctx   *Context

	keys   []types.Row
	states [][]*accum
	pos    int
}

func (h *hashGroupBy) Open() error {
	if err := h.input.Open(); err != nil {
		return err
	}
	index := make(map[string]int)
	h.keys, h.states = nil, nil
	for {
		if err := h.ctx.tick(); err != nil {
			return err
		}
		r, ok, err := h.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := r.Key(h.ords)
		idx, exists := index[k]
		if !exists {
			st, err := newStates(h.aggs)
			if err != nil {
				return err
			}
			idx = len(h.keys)
			index[k] = idx
			h.keys = append(h.keys, r.Project(h.ords))
			h.states = append(h.states, st)
		}
		if err := feed(h.aggs, h.states[idx], r, h.ctx); err != nil {
			return err
		}
	}
	if err := h.input.Close(); err != nil {
		return err
	}
	h.pos = 0
	return nil
}

func (h *hashGroupBy) Next() (types.Row, bool, error) {
	if h.pos >= len(h.keys) {
		return nil, false, nil
	}
	i := h.pos
	h.pos++
	out := make(types.Row, 0, len(h.ords)+len(h.aggs))
	out = append(out, h.keys[i]...)
	for _, st := range h.states[i] {
		out = append(out, st.result())
	}
	return out, true, nil
}

func (h *hashGroupBy) Close() error {
	h.keys, h.states = nil, nil
	return nil
}

func buildScalarAgg(a *core.AggOp, ctx *Context, env compileEnv) (Iterator, error) {
	in, err := build(a.Input, ctx, env)
	if err != nil {
		return nil, err
	}
	aggs, err := compileAggs(a.Aggs, a.Input.Schema(), env)
	if err != nil {
		return nil, err
	}
	return &scalarAgg{input: in, aggs: aggs, ctx: ctx}, nil
}

// scalarAgg aggregates the whole input into exactly one row — including
// on empty input, where count(*) is 0 and other aggregates are NULL.
// This "not necessarily empty on empty" behaviour is why the paper's
// selection-pushing rule must verify PGQ(φ)=φ before firing.
type scalarAgg struct {
	input Iterator
	aggs  []compiledAgg
	ctx   *Context
	done  bool
	out   types.Row
}

func (s *scalarAgg) Open() error {
	if err := s.input.Open(); err != nil {
		return err
	}
	states, err := newStates(s.aggs)
	if err != nil {
		return err
	}
	for {
		if err := s.ctx.tick(); err != nil {
			return err
		}
		r, ok, err := s.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := feed(s.aggs, states, r, s.ctx); err != nil {
			return err
		}
	}
	if err := s.input.Close(); err != nil {
		return err
	}
	s.out = make(types.Row, len(states))
	for i, st := range states {
		s.out[i] = st.result()
	}
	s.done = false
	return nil
}

func (s *scalarAgg) Next() (types.Row, bool, error) {
	if s.done {
		return nil, false, nil
	}
	s.done = true
	return s.out, true, nil
}

func (s *scalarAgg) Close() error { return nil }
