package exec

import (
	"gapplydb/internal/types"
)

// Batch counterparts of join.go. The probe side advances through left
// batches with an explicit cursor (batch, live index, bucket position)
// so output batches are capped at batchSize: a high-fan-out join still
// reaches a cancellation point once per output batch, matching the row
// engine's per-output-row polling to within one batch.

// joinOut assembles concatenated output rows into shared slabs. Every
// emitted row is a three-index slice of the slab (slab[start:end:end]),
// so the slab's unused tail is never aliased — which lets one slab
// serve many batches: reset only rewinds the rows container, and a
// fresh slab is allocated (geometrically, capped at one full batch's
// worth) only when the current one fills. Tiny outputs — the per-group
// inners GApply re-opens thousands of times — therefore cost a few
// small allocations total instead of a 256-row slab per batch.
type joinOut struct {
	rows  []types.Row
	slab  types.Row
	width int
}

func (o *joinOut) reset() {
	o.rows = o.rows[:0]
}

// add appends the concatenation a++b as one output row.
func (o *joinOut) add(a, b types.Row) {
	need := len(a) + len(b)
	if len(o.slab)+need > cap(o.slab) {
		// Rows already emitted keep pointing into the old slab; only new
		// rows land in the fresh one.
		c := 2 * cap(o.slab)
		if c < 8*need {
			c = 8 * need
		}
		if c > batchSize*o.width {
			c = batchSize * o.width
		}
		if c < need {
			c = need
		}
		o.slab = make(types.Row, 0, c)
	}
	start := len(o.slab)
	o.slab = append(o.slab, a...)
	o.slab = append(o.slab, b...)
	o.rows = append(o.rows, o.slab[start:len(o.slab):len(o.slab)])
}

// bHashJoin builds a hash table on the right input's equi-columns and
// probes it with left batches. It mirrors hashJoin: the spool-backed
// rebuild skip via contentVersioned, NULL-key probe skip, residual
// predicate over the concatenated row, left-outer NULL padding. A nil
// pred means the build proved the condition residual-free (the hash
// key covers every conjunct), so bucket hits emit without evaluation.
//
// post is a fused parent filter (Select-over-Join): it runs after the
// join semantics — residual evaluation, matched tracking, and outer
// padding are all decided first — and gates only what is emitted. It
// evaluates on the reused probe row, so a rejected candidate costs a
// scratch copy instead of a slab append.
type bHashJoin struct {
	left, right BatchIterator
	pred        func(types.Row, *Context) (bool, error)
	post        func(types.Row, *Context) (bool, error)
	ctx         *Context
	leftOrds    []int
	rightOrds   []int
	outerJoin   bool
	rightArity  int
	width       int // left arity + right arity

	table    map[string][]types.Row
	tableGen uint64
	hasGen   bool
	scratch  []byte

	lb      *Batch // current left batch (valid until we pull the next)
	li      int    // next live index within lb
	cur     types.Row
	bucket  []types.Row
	bpos    int
	matched bool
	nulls   types.Row // shared right-side NULL pad

	// probeRow is the reused residual-evaluation row: candidates are
	// assembled here (left half once per left row, right half per bucket
	// row) and only survivors are copied into the output slab. Safe
	// because compiled predicates read Values out of the row and never
	// retain the slice itself.
	probeRow types.Row

	outBuf joinOut
	out    Batch
}

func (h *bHashJoin) Open() error {
	if err := h.right.Open(); err != nil {
		return err
	}
	rebuild := true
	if cv, ok := h.right.(contentVersioned); ok {
		if gen, stable := cv.contentGen(); stable {
			if h.hasGen && h.table != nil && gen == h.tableGen {
				rebuild = false
			} else {
				h.tableGen, h.hasGen = gen, true
			}
		} else {
			h.hasGen = false
		}
	}
	if rebuild {
		h.table = make(map[string][]types.Row)
		for {
			b, err := h.right.NextBatch()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			n := b.Len()
			if err := h.ctx.tickN(n); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				r := b.Row(i)
				h.scratch = r.AppendKey(h.scratch[:0], h.rightOrds)
				k := string(h.scratch) // the map key must own its bytes
				h.table[k] = append(h.table[k], r)
			}
		}
	}
	if err := h.right.Close(); err != nil {
		return err
	}
	h.lb, h.li = nil, 0
	h.cur, h.bucket, h.bpos = nil, nil, 0
	if h.nulls == nil {
		h.nulls = make(types.Row, h.rightArity)
	}
	if (h.pred != nil || h.post != nil) && h.probeRow == nil {
		h.probeRow = make(types.Row, h.width)
	}
	h.outBuf.width = h.width
	return h.left.Open()
}

// advanceLeft claims the next live left row, pulling left batches as
// needed. ok=false means the left input is exhausted.
func (h *bHashJoin) advanceLeft() (bool, error) {
	for h.lb == nil || h.li >= h.lb.Len() {
		b, err := h.left.NextBatch()
		if err != nil {
			return false, err
		}
		if b == nil {
			return false, nil
		}
		h.lb, h.li = b, 0
	}
	r := h.lb.Row(h.li)
	h.li++
	h.ctx.Counters.JoinProbes++
	h.cur = r
	if h.pred != nil || h.post != nil {
		copy(h.probeRow, r)
	}
	// NULL join keys never match (predicate equality), so skip the
	// probe; outer join still pads.
	hasNull := false
	for _, o := range h.leftOrds {
		if r[o].IsNull() {
			hasNull = true
			break
		}
	}
	if hasNull {
		h.bucket = nil
	} else {
		h.scratch = r.AppendKey(h.scratch[:0], h.leftOrds)
		h.bucket = h.table[string(h.scratch)]
	}
	h.bpos, h.matched = 0, false
	return true, nil
}

func (h *bHashJoin) NextBatch() (*Batch, error) {
	h.outBuf.reset()
	for len(h.outBuf.rows) < batchSize {
		if h.cur == nil {
			ok, err := h.advanceLeft()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
		if h.pred == nil && h.post == nil {
			// Residual-free: every bucket row is a match by construction.
			n := len(h.bucket) - h.bpos
			if room := batchSize - len(h.outBuf.rows); n > room {
				n = room
			}
			for i := 0; i < n; i++ {
				h.outBuf.add(h.cur, h.bucket[h.bpos+i])
			}
			h.bpos += n
			if n > 0 {
				h.matched = true
			}
		} else {
			for h.bpos < len(h.bucket) && len(h.outBuf.rows) < batchSize {
				rr := h.bucket[h.bpos]
				h.bpos++
				copy(h.probeRow[len(h.cur):], rr)
				if h.pred != nil {
					pass, err := h.pred(h.probeRow, h.ctx)
					if err != nil {
						return nil, err
					}
					if !pass {
						continue
					}
				}
				h.matched = true
				if h.post != nil {
					pass, err := h.post(h.probeRow, h.ctx)
					if err != nil {
						return nil, err
					}
					if !pass {
						continue
					}
				}
				h.outBuf.add(h.cur, rr)
			}
		}
		if h.bpos >= len(h.bucket) {
			if h.outerJoin && !h.matched {
				if h.post != nil {
					copy(h.probeRow, h.cur)
					copy(h.probeRow[len(h.cur):], h.nulls)
					pass, err := h.post(h.probeRow, h.ctx)
					if err != nil {
						return nil, err
					}
					if pass {
						h.outBuf.add(h.cur, h.nulls)
					}
				} else {
					h.outBuf.add(h.cur, h.nulls)
				}
			}
			h.cur = nil
		}
	}
	if len(h.outBuf.rows) == 0 {
		return nil, nil
	}
	h.out = Batch{Rows: h.outBuf.rows}
	return &h.out, nil
}

func (h *bHashJoin) Close() error {
	// Keep a generation-stable table across re-Opens (spool-fed rebuild
	// skip); drop tables built from unstable inputs.
	if !h.hasGen {
		h.table = nil
	}
	h.lb = nil
	return h.left.Close()
}

// bNLJoin is the nested-loops join with the right side materialized.
// post is the fused parent filter, with bHashJoin's semantics.
type bNLJoin struct {
	left, right BatchIterator
	pred        func(types.Row, *Context) (bool, error)
	post        func(types.Row, *Context) (bool, error)
	ctx         *Context
	outerJoin   bool
	rightArity  int
	width       int

	rightRows []types.Row
	lb        *Batch
	li        int
	cur       types.Row
	rpos      int
	matched   bool
	nulls     types.Row
	probeRow  types.Row // reused residual-evaluation row (see bHashJoin)

	outBuf joinOut
	out    Batch
}

func (n *bNLJoin) Open() error {
	rows, err := drainBatchRows(n.right, n.ctx)
	if err != nil {
		return err
	}
	n.rightRows = rows
	n.lb, n.li = nil, 0
	n.cur, n.rpos = nil, 0
	if n.nulls == nil {
		n.nulls = make(types.Row, n.rightArity)
	}
	if n.probeRow == nil {
		n.probeRow = make(types.Row, n.width)
	}
	n.outBuf.width = n.width
	return n.left.Open()
}

func (n *bNLJoin) advanceLeft() (bool, error) {
	for n.lb == nil || n.li >= n.lb.Len() {
		b, err := n.left.NextBatch()
		if err != nil {
			return false, err
		}
		if b == nil {
			return false, nil
		}
		n.lb, n.li = b, 0
	}
	n.cur = n.lb.Row(n.li)
	n.li++
	copy(n.probeRow, n.cur)
	n.rpos, n.matched = 0, false
	return true, nil
}

func (n *bNLJoin) NextBatch() (*Batch, error) {
	n.outBuf.reset()
	for len(n.outBuf.rows) < batchSize {
		if n.cur == nil {
			ok, err := n.advanceLeft()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
		for n.rpos < len(n.rightRows) && len(n.outBuf.rows) < batchSize {
			rr := n.rightRows[n.rpos]
			n.rpos++
			copy(n.probeRow[len(n.cur):], rr)
			pass, err := n.pred(n.probeRow, n.ctx)
			if err != nil {
				return nil, err
			}
			if !pass {
				continue
			}
			n.matched = true
			if n.post != nil {
				pass, err := n.post(n.probeRow, n.ctx)
				if err != nil {
					return nil, err
				}
				if !pass {
					continue
				}
			}
			n.outBuf.add(n.cur, rr)
		}
		if n.rpos >= len(n.rightRows) {
			if n.outerJoin && !n.matched {
				if n.post != nil {
					copy(n.probeRow, n.cur)
					copy(n.probeRow[len(n.cur):], n.nulls)
					pass, err := n.post(n.probeRow, n.ctx)
					if err != nil {
						return nil, err
					}
					if pass {
						n.outBuf.add(n.cur, n.nulls)
					}
				} else {
					n.outBuf.add(n.cur, n.nulls)
				}
			}
			n.cur = nil
		}
	}
	if len(n.outBuf.rows) == 0 {
		return nil, nil
	}
	n.out = Batch{Rows: n.outBuf.rows}
	return &n.out, nil
}

func (n *bNLJoin) Close() error {
	n.rightRows = nil
	n.lb = nil
	return n.left.Close()
}
