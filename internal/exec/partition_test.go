package exec

import (
	"errors"
	"math"
	"strings"
	"testing"

	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// countPerGroup builds the canonical partition probe — GApply with a
// per-group count(*) — over the named table and returns key → count,
// plus the group total, after checking output clustering.
func countPerGroup(t *testing.T, cat *storage.Catalog, table string, hint core.PartitionHint) (map[string]int64, int64) {
	t.Helper()
	ctx := NewContext(cat)
	tab, err := cat.Lookup(table)
	if err != nil {
		t.Fatal(err)
	}
	gs := &core.GroupScan{Var: "g"}
	pgq := &core.AggOp{Input: gs, Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}}}
	ga := core.NewGApply(&core.Scan{Table: table, Def: tab.Def},
		[]*core.ColRef{core.Col(tab.Def.Schema.Cols[0].Name)}, "g", pgq)
	ga.Partition = hint
	res := mustRun(t, ga, ctx)
	if !clustered(res.Rows) {
		t.Fatalf("[%v] output not clustered: %v", hint, res.Rows)
	}
	out := make(map[string]int64)
	for _, r := range res.Rows {
		k := r.Key([]int{0})
		if _, dup := out[k]; dup {
			t.Fatalf("[%v] key %v emitted as two separate groups", hint, r[0])
		}
		out[k] = r[1].Int()
	}
	return out, ctx.Counters.Groups
}

// keyTable builds a one-key-column table (plus a payload column) from
// the given values.
func keyTable(t *testing.T, kind types.Kind, keys []types.Value) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	tab, err := cat.Create(&schema.TableDef{
		Name: "obs",
		Schema: schema.New(
			schema.Column{Name: "k", Type: kind},
			schema.Column{Name: "v", Type: types.KindInt},
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		tab.Rows = append(tab.Rows, types.Row{k, types.NewInt(int64(i))})
	}
	return cat
}

// TestPartitionBigIntCollidingKeys is the regression test for the
// collision-merging bug: 2^53 and 2^53+1 share a float64 image — the
// "colliding keys" under the old float-image key encoding — so hash
// partitioning used to merge them into one group while sort
// partitioning kept them apart. Both strategies must now agree on two
// distinct groups.
func TestPartitionBigIntCollidingKeys(t *testing.T) {
	big := int64(1) << 53
	cat := keyTable(t, types.KindInt, []types.Value{
		types.NewInt(big), types.NewInt(big + 1),
		types.NewInt(big), types.NewInt(big + 1),
		types.NewInt(7),
	})
	want := map[string]int64{
		types.Row{types.NewInt(big)}.Key([]int{0}):     2,
		types.Row{types.NewInt(big + 1)}.Key([]int{0}): 2,
		types.Row{types.NewInt(7)}.Key([]int{0}):       1,
	}
	var byHint []map[string]int64
	for _, hint := range []core.PartitionHint{core.PartitionHash, core.PartitionSort} {
		got, groups := countPerGroup(t, cat, "obs", hint)
		if groups != 3 {
			t.Errorf("[%v] Groups counter = %d, want 3", hint, groups)
		}
		if len(got) != len(want) {
			t.Fatalf("[%v] groups = %d, want %d", hint, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Errorf("[%v] group count = %d, want %d", hint, got[k], n)
			}
		}
		byHint = append(byHint, got)
	}
	// Differential: hash and sort partitioning produce identical groups.
	for k, n := range byHint[0] {
		if byHint[1][k] != n {
			t.Errorf("hash/sort divergence at key %q: %d vs %d", k, n, byHint[1][k])
		}
	}
}

// TestPartitionNegativeZeroMerges: -0.0 and +0.0 compare equal, so both
// strategies must place them in a single group.
func TestPartitionNegativeZeroMerges(t *testing.T) {
	negZero := math.Copysign(0, -1)
	cat := keyTable(t, types.KindFloat, []types.Value{
		types.NewFloat(0), types.NewFloat(negZero), types.NewFloat(1.5), types.NewFloat(negZero),
	})
	for _, hint := range []core.PartitionHint{core.PartitionHash, core.PartitionSort} {
		got, _ := countPerGroup(t, cat, "obs", hint)
		if len(got) != 2 {
			t.Fatalf("[%v] groups = %v, want {0: 3, 1.5: 1}", hint, got)
		}
		if n := got[types.Row{types.NewFloat(0)}.Key([]int{0})]; n != 3 {
			t.Errorf("[%v] zero group count = %d, want 3 (+0.0 and -0.0 merged)", hint, n)
		}
	}
}

// TestPartitionNullKeysSingleGroup: NULL grouping keys form one group —
// under both partition strategies, and in agreement with the
// decorrelated baseline (a plain GroupBy over the same input).
func TestPartitionNullKeysSingleGroup(t *testing.T) {
	cat := keyTable(t, types.KindInt, []types.Value{
		types.Null, types.NewInt(1), types.Null, types.NewInt(2), types.Null,
	})
	nullKey := types.Row{types.Null}.Key([]int{0})
	for _, hint := range []core.PartitionHint{core.PartitionHash, core.PartitionSort} {
		got, groups := countPerGroup(t, cat, "obs", hint)
		if groups != 3 {
			t.Errorf("[%v] Groups counter = %d, want 3", hint, groups)
		}
		if got[nullKey] != 3 {
			t.Errorf("[%v] NULL group count = %d, want 3 (all NULLs in one group)", hint, got[nullKey])
		}
	}

	// Decorrelated baseline: GROUP BY over the same table must form the
	// same groups with the same counts.
	ctx := NewContext(cat)
	g := &core.GroupBy{
		Input:     scan(ctx, "obs"),
		GroupCols: []*core.ColRef{core.Col("k")},
		Aggs:      []core.AggSpec{{Fn: "count", Star: true, As: "n"}},
	}
	res := mustRun(t, g, ctx)
	base := make(map[string]int64)
	for _, r := range res.Rows {
		base[r.Key([]int{0})] = r[1].Int()
	}
	got, _ := countPerGroup(t, cat, "obs", core.PartitionHash)
	if len(base) != len(got) {
		t.Fatalf("GroupBy formed %d groups, GApply %d", len(base), len(got))
	}
	for k, n := range base {
		if got[k] != n {
			t.Errorf("baseline/GApply divergence at key %q: %d vs %d", k, got[k], n)
		}
	}
}

// TestPartitionHashSortDifferential sweeps a mixed bag of hostile keys —
// NULLs, ±0.0, NaN, float64-image colliders, and int/float values that
// compare equal across kinds — asserting hash- and sort-based
// partitioning produce identical groups with identical counts.
func TestPartitionHashSortDifferential(t *testing.T) {
	big := int64(1) << 53
	keys := []types.Value{
		types.Null, types.NewInt(big), types.NewFloat(float64(big)),
		types.NewInt(big + 1), types.NewFloat(0), types.NewFloat(math.Copysign(0, -1)),
		types.NewInt(0), types.NewFloat(math.NaN()), types.NewFloat(-math.NaN()),
		types.NewInt(3), types.NewFloat(3), types.NewFloat(3.5), types.Null,
	}
	// The key column holds mixed kinds; schema kind is nominal here.
	cat := keyTable(t, types.KindFloat, keys)
	hash, hashGroups := countPerGroup(t, cat, "obs", core.PartitionHash)
	sorted, sortGroups := countPerGroup(t, cat, "obs", core.PartitionSort)
	if hashGroups != sortGroups {
		t.Errorf("group counts diverge: hash %d vs sort %d", hashGroups, sortGroups)
	}
	if len(hash) != len(sorted) {
		t.Fatalf("distinct keys diverge: hash %v vs sort %v", hash, sorted)
	}
	for k, n := range hash {
		if sorted[k] != n {
			t.Errorf("hash/sort divergence at key %q: %d vs %d", k, n, sorted[k])
		}
	}
	// Spot-check the equivalence classes: INT 2^53 ≡ FLOAT 2^53 but not
	// INT 2^53+1; ±0.0 and INT 0 merge; both NaNs merge.
	expect := map[string]int64{
		types.Row{types.NewInt(big)}.Key([]int{0}):          2,
		types.Row{types.NewInt(big + 1)}.Key([]int{0}):      1,
		types.Row{types.NewFloat(0)}.Key([]int{0}):          3,
		types.Row{types.NewFloat(math.NaN())}.Key([]int{0}): 2,
		types.Row{types.Null}.Key([]int{0}):                 2,
	}
	for k, n := range expect {
		if hash[k] != n {
			t.Errorf("equivalence class %q count = %d, want %d (groups: %v)", k, hash[k], n, hash)
		}
	}
}

// ------------------------------------------------------ resource budget

func TestBudgetMaxOutputRows(t *testing.T) {
	ctx := fixture(t)
	ctx.Budget = &Budget{MaxOutputRows: 2}
	_, err := Run(scan(ctx, "part"), ctx) // 4 rows > 2
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *ResourceError", err)
	}
	if re.Limit != LimitOutputRows || re.Max != 2 || re.Used != 3 {
		t.Errorf("ResourceError = %+v", re)
	}
	if !strings.Contains(re.Operator, "Scan") {
		t.Errorf("Operator = %q, want the offending operator's shape", re.Operator)
	}
	if !strings.Contains(re.Error(), LimitOutputRows) {
		t.Errorf("Error() = %q", re.Error())
	}
	// Under the limit, the same query runs fine.
	ctx2 := fixture(t)
	ctx2.Budget = &Budget{MaxOutputRows: 4}
	mustRun(t, scan(ctx2, "part"), ctx2)
}

func TestBudgetMaxPartitionBytes(t *testing.T) {
	for _, hint := range []core.PartitionHint{core.PartitionHash, core.PartitionSort} {
		ctx := fixture(t)
		ctx.Budget = &Budget{MaxPartitionBytes: 64} // one fixture row blows this
		_, err := Run(gapplyQ1(ctx, hint), ctx)
		var re *ResourceError
		if !errors.As(err, &re) {
			t.Fatalf("[%v] err = %v, want *ResourceError", hint, err)
		}
		if re.Limit != LimitPartitionBytes || re.Max != 64 || re.Used <= 64 {
			t.Errorf("[%v] ResourceError = %+v", hint, re)
		}
		if !strings.Contains(re.Operator, "GApply") {
			t.Errorf("[%v] Operator = %q, want the GApply's shape", hint, re.Operator)
		}
	}
	// A roomy budget lets the same plan through.
	ctx := fixture(t)
	ctx.Budget = &Budget{MaxPartitionBytes: 1 << 20}
	mustRun(t, gapplyQ1(ctx, core.PartitionHash), ctx)
}
