package exec

import (
	"context"
	"runtime"
	"sync/atomic"

	"gapplydb/internal/core"
	"gapplydb/internal/types"
)

// bgapply is the batch engine's GApply. The partition phase is shared
// with the row engine verbatim (partitionByHash / partitionBySort over
// the drained outer rows — identical grouping, budget charges and
// cancellation points); the execution phase mirrors gapply's serial and
// parallel paths, pulling inner batches instead of rows. The parallel
// machinery (parRun: ordered emit, window flow control, counter and
// profile delta merges in partition order) is reused as-is — only the
// worker's inner-tree instantiation and drain differ.
type bgapply struct {
	outer, inner BatchIterator
	innerPlan    core.Node
	plan         *core.GApply
	innerArity   int
	env          compileEnv
	ctx          *Context
	ords         []int
	groupVar     string
	sortPart     bool
	ordered      bool // outer provides the group-key ordering (index path)
	correlated   bool
	spools       *spoolRegistry

	groups  [][]types.Row
	gpos    int
	keyVals types.Row
	started bool

	par *parRun
	win rowWindow // parallel mode: windows over the current group's rows

	outBuf joinOut
	out    Batch
}

func (g *bgapply) Open() error {
	if g.par != nil { // re-Open without an intervening Close
		g.par.shutdown()
		g.par = nil
	}
	if g.spools != nil {
		g.spools.reset()
	}
	rows, err := drainBatchRows(g.outer, g.ctx)
	if err != nil {
		return err
	}
	switch {
	case g.sortPart && g.ordered:
		g.groups, err = partitionOrdered(rows, g.ords, g.ctx, g.plan)
	case g.sortPart:
		g.groups, err = partitionBySort(rows, g.ords, g.ctx, g.plan)
	default:
		g.groups, err = partitionByHash(rows, g.ords, g.ctx, g.plan)
	}
	if err != nil {
		return err
	}
	g.ctx.Counters.Groups += int64(len(g.groups))
	g.gpos = 0
	g.started = false
	g.win.reset(nil)
	g.outBuf.width = len(g.ords) + g.innerArity
	if dop := g.degree(); dop > 1 {
		g.par = g.startWorkers(dop)
	}
	return nil
}

// degree mirrors gapply.degree: the context's DOP clamped to the group
// count, with the serial fallback for correlated inners.
func (g *bgapply) degree() int {
	if g.correlated {
		return 1
	}
	dop := g.ctx.DOP
	if dop <= 0 {
		dop = runtime.GOMAXPROCS(0)
	}
	if dop > len(g.groups) {
		dop = len(g.groups)
	}
	return dop
}

// advance binds the next group and opens the per-group query over it
// (serial execution phase), mirroring gapply.advance.
func (g *bgapply) advance() (bool, error) {
	if err := g.ctx.checkCancel(); err != nil {
		return false, err
	}
	for g.gpos < len(g.groups) {
		group := g.groups[g.gpos]
		g.gpos++
		g.ctx.BindGroup(g.groupVar, group)
		g.keyVals = group[0].Project(g.ords)
		g.ctx.Counters.InnerExecs++
		g.ctx.Counters.SerialGroupExecs++
		if err := g.inner.Open(); err != nil {
			return false, err
		}
		g.started = true
		return true, nil
	}
	return false, nil
}

func (g *bgapply) NextBatch() (*Batch, error) {
	if g.par != nil {
		return g.parNextBatch()
	}
	g.outBuf.reset()
	for len(g.outBuf.rows) < batchSize {
		if !g.started {
			ok, err := g.advance()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
		b, err := g.inner.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			if err := g.inner.Close(); err != nil {
				return nil, err
			}
			g.started = false
			continue
		}
		for i, n := 0, b.Len(); i < n; i++ {
			g.outBuf.add(g.keyVals, b.Row(i))
		}
	}
	if len(g.outBuf.rows) == 0 {
		return nil, nil
	}
	g.out = Batch{Rows: g.outBuf.rows}
	return &g.out, nil
}

func (g *bgapply) Close() error {
	if g.par != nil {
		g.par.shutdown()
		g.par = nil
	}
	g.groups = nil
	g.win.reset(nil)
	if g.started {
		g.started = false
		return g.inner.Close()
	}
	return nil
}

// startWorkers launches the pool, mirroring gapply.startWorkers: the
// only differences are the batch inner-tree build and the batch drain.
func (g *bgapply) startWorkers(dop int) *parRun {
	groups := g.groups
	n := len(groups)
	p := newParRun(n, dop)
	parent := g.ctx.Ctx
	if parent == nil {
		parent = context.Background()
	}
	wctxCtx, cancel := context.WithCancel(parent)
	p.cancel = cancel
	var next atomic.Int64
	var failed atomic.Bool
	p.wg.Add(dop)
	for w := 0; w < dop; w++ {
		go func() {
			defer p.wg.Done()
			wctx := g.ctx.fork()
			wctx.Ctx = wctxCtx
			wctx.spools = g.spools
			var inner BatchIterator
			for {
				select {
				case <-p.stop:
					return
				case <-wctxCtx.Done():
					return
				case p.window <- struct{}{}:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if failed.Load() {
					close(p.ready[i])
					continue
				}
				if inner == nil {
					it, err := buildBatch(g.innerPlan, wctx, g.env)
					if err != nil {
						p.results[i] = parGroup{err: err}
						failed.Store(true)
						close(p.ready[i])
						continue
					}
					inner = it
				}
				res := g.evalGroup(wctx, inner, groups[i])
				if res.err != nil {
					failed.Store(true)
				}
				p.results[i] = res
				close(p.ready[i])
			}
		}()
	}
	return p
}

// evalGroup runs the per-group query over one group on a worker's
// private context and batch tree, buffering the output rows with the
// grouping columns prefixed in one slab — identical layout and
// counter/profile delta accounting to the row engine's evalGroup.
func (g *bgapply) evalGroup(wctx *Context, inner BatchIterator, group []types.Row) parGroup {
	before := wctx.Counters
	var profBefore map[core.Node]NodeStats
	if wctx.Prof != nil {
		profBefore = wctx.Prof.snapshot()
	}
	wctx.BindGroup(g.groupVar, group)
	wctx.Counters.InnerExecs++
	wctx.Counters.ParallelGroupExecs++
	key := group[0].Project(g.ords)
	rows, err := drainBatchRows(inner, wctx)
	out := parGroup{err: err}
	if err == nil {
		total := 0
		for _, r := range rows {
			total += len(key) + len(r)
		}
		slab := make(types.Row, 0, total)
		out.rows = make([]types.Row, len(rows))
		for i, r := range rows {
			start := len(slab)
			slab = append(slab, key...)
			slab = append(slab, r...)
			out.rows[i] = slab[start:len(slab):len(slab)]
		}
	}
	out.delta = wctx.Counters.Sub(before)
	if wctx.Prof != nil {
		out.prof = wctx.Prof.since(profBefore)
	}
	return out
}

// parNextBatch emits the buffered groups in partition order as batch
// windows, merging each group's deltas exactly as gapply.parNext does.
func (g *bgapply) parNextBatch() (*Batch, error) {
	for {
		if b := g.win.next(); b != nil {
			return b, nil
		}
		if g.gpos >= len(g.groups) {
			// A cancel that lands after the last group still cancels.
			if err := g.ctx.checkCancel(); err != nil {
				return nil, err
			}
			return nil, nil
		}
		i := g.gpos
		g.gpos++
		var done <-chan struct{}
		if g.ctx.Ctx != nil {
			done = g.ctx.Ctx.Done()
		}
		select {
		case <-g.par.ready[i]:
		case <-done:
			g.par.shutdown()
			return nil, context.Cause(g.ctx.Ctx)
		}
		res := g.par.results[i]
		g.par.results[i] = parGroup{}
		<-g.par.window
		g.ctx.Counters.Add(res.delta)
		if g.ctx.Prof != nil && res.prof != nil {
			g.ctx.Prof.merge(res.prof)
		}
		if res.err != nil {
			g.par.shutdown()
			return nil, res.err
		}
		g.win.reset(res.rows)
	}
}
