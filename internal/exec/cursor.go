package exec

import (
	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

// Cursor is an incrementally consumed execution of a plan: Run without
// the materialization. Each Next produces one output row, polling the
// Context's cancellation signal and charging the output-row budget
// exactly as Run does, so a caller draining a Cursor to completion sees
// the same rows, the same errors and the same counters as Run — the
// network server streams results through one of these so a large result
// never exists in full on the server side.
//
// A Cursor, like the iterator tree it drives, belongs to a single
// goroutine. Close is idempotent and must be called even after an error
// (Next errors leave the tree closed already; the extra Close is a
// no-op).
type Cursor struct {
	Schema *schema.Schema

	node   core.Node
	it     Iterator
	ctx    *Context
	n      int64
	closed bool
}

// Start compiles the plan and opens the iterator tree, returning a
// cursor positioned before the first row.
func Start(n core.Node, ctx *Context) (*Cursor, error) {
	it, err := Build(n, ctx)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		it.Close()
		return nil, err
	}
	return &Cursor{Schema: n.Schema(), node: n, it: it, ctx: ctx}, nil
}

// Next returns the next output row. ok=false with a nil error marks
// normal exhaustion; any error (cancellation, deadline, budget, operator
// failure) closes the tree and is final.
func (c *Cursor) Next() (types.Row, bool, error) {
	if c.closed {
		return nil, false, nil
	}
	if err := c.ctx.tick(); err != nil {
		c.close()
		return nil, false, err
	}
	r, ok, err := c.it.Next()
	if err != nil {
		c.close()
		return nil, false, err
	}
	if !ok {
		// A cancel that lands after the last row still cancels the query,
		// mirroring Run: the consumer must not mistake a raced result for
		// a committed success.
		err := c.close()
		if cerr := c.ctx.checkCancel(); cerr != nil {
			err = cerr
		}
		return nil, false, err
	}
	c.n++
	if b := c.ctx.Budget; b != nil && b.MaxOutputRows > 0 && c.n > b.MaxOutputRows {
		c.close()
		return nil, false, &ResourceError{
			Limit: LimitOutputRows, Operator: core.Summary(c.node),
			Max: b.MaxOutputRows, Used: c.n,
		}
	}
	return r, true, nil
}

// Rows reports how many rows the cursor has produced so far.
func (c *Cursor) Rows() int64 { return c.n }

// Close releases the iterator tree. Safe to call more than once.
func (c *Cursor) Close() error { return c.close() }

func (c *Cursor) close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.it.Close()
}
