package exec

import (
	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

// Cursor is an incrementally consumed execution of a plan: Run without
// the materialization. Each Next produces one output row, polling the
// Context's cancellation signal and charging the output-row budget
// exactly as Run does, so a caller draining a Cursor to completion sees
// the same rows, the same errors and the same counters as Run — the
// network server streams results through one of these so a large result
// never exists in full on the server side.
//
// Like Run, Start compiles for the batch engine unless Context.RowExec
// selects the row engine; the Cursor surface is identical either way.
// NextBatch is the bulk form — the server's framing loop uses it to
// move 256 rows per call — and may be mixed freely with Next: a batch
// never re-delivers rows Next already returned.
//
// A Cursor, like the iterator tree it drives, belongs to a single
// goroutine. Close is idempotent and must be called even after an error
// (Next errors leave the tree closed already; the extra Close is a
// no-op).
type Cursor struct {
	Schema *schema.Schema

	node   core.Node
	it     Iterator      // row engine (nil in batch mode)
	bit    BatchIterator // batch engine (nil in row mode)
	ctx    *Context
	n      int64
	closed bool

	cur     *Batch // batch mode: current batch being row-stepped by Next
	pos     int    // live-row position within cur
	rem     Batch  // scratch for NextBatch remainders and truncations
	scratch Batch  // row mode: batch assembled by NextBatch
	pendErr error  // error to deliver on the NextBatch after a partial batch
}

// Start compiles the plan and opens the iterator tree, returning a
// cursor positioned before the first row.
func Start(n core.Node, ctx *Context) (*Cursor, error) {
	if !ctx.RowExec {
		bit, err := BuildBatch(n, ctx)
		if err != nil {
			return nil, err
		}
		if err := bit.Open(); err != nil {
			bit.Close()
			return nil, err
		}
		return &Cursor{Schema: n.Schema(), node: n, bit: bit, ctx: ctx}, nil
	}
	it, err := Build(n, ctx)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		it.Close()
		return nil, err
	}
	return &Cursor{Schema: n.Schema(), node: n, it: it, ctx: ctx}, nil
}

// Next returns the next output row. ok=false with a nil error marks
// normal exhaustion; any error (cancellation, deadline, budget, operator
// failure) closes the tree and is final.
func (c *Cursor) Next() (types.Row, bool, error) {
	if c.closed {
		if err := c.pendErr; err != nil {
			c.pendErr = nil
			return nil, false, err
		}
		return nil, false, nil
	}
	if err := c.ctx.tick(); err != nil {
		c.close()
		return nil, false, err
	}
	var r types.Row
	if c.bit != nil {
		for c.cur == nil || c.pos >= c.cur.Len() {
			b, err := c.bit.NextBatch()
			if err != nil {
				c.close()
				return nil, false, err
			}
			if b == nil {
				err := c.close()
				if cerr := c.ctx.checkCancel(); cerr != nil {
					err = cerr
				}
				return nil, false, err
			}
			c.cur, c.pos = b, 0
		}
		r = c.cur.Row(c.pos)
		c.pos++
	} else {
		row, ok, err := c.it.Next()
		if err != nil {
			c.close()
			return nil, false, err
		}
		if !ok {
			// A cancel that lands after the last row still cancels the query,
			// mirroring Run: the consumer must not mistake a raced result for
			// a committed success.
			err := c.close()
			if cerr := c.ctx.checkCancel(); cerr != nil {
				err = cerr
			}
			return nil, false, err
		}
		r = row
	}
	c.n++
	if b := c.ctx.Budget; b != nil && b.MaxOutputRows > 0 && c.n > b.MaxOutputRows {
		c.close()
		return nil, false, &ResourceError{
			Limit: LimitOutputRows, Operator: core.Summary(c.node),
			Max: b.MaxOutputRows, Used: c.n,
		}
	}
	return r, true, nil
}

// NextBatch returns the next batch of output rows; nil with a nil error
// marks exhaustion. The batch and its rows follow the batch-engine
// ownership contract: valid until the next call on the cursor. Budget
// semantics match Next exactly — when MaxOutputRows truncates mid-batch
// the allowed rows are still delivered, and the *ResourceError (with
// Used = max+1) arrives on the following call.
func (c *Cursor) NextBatch() (*Batch, error) {
	if err := c.pendErr; err != nil {
		c.pendErr = nil
		return nil, err
	}
	if c.closed {
		return nil, nil
	}
	if c.bit == nil {
		return c.rowAssembleBatch()
	}
	var b *Batch
	if c.cur != nil && c.pos < c.cur.Len() {
		// Rows Next stepped past must not reappear: emit the remainder of
		// the current batch first.
		if c.cur.Sel != nil {
			c.rem = Batch{Rows: c.cur.Rows, Sel: c.cur.Sel[c.pos:]}
		} else {
			c.rem = Batch{Rows: c.cur.Rows[c.pos:]}
		}
		c.cur = nil
		b = &c.rem
	} else {
		c.cur = nil
		nb, err := c.bit.NextBatch()
		if err != nil {
			c.close()
			return nil, err
		}
		if nb == nil {
			err := c.close()
			if cerr := c.ctx.checkCancel(); cerr != nil {
				err = cerr
			}
			if err != nil {
				return nil, err
			}
			return nil, nil
		}
		b = nb
	}
	if err := c.ctx.tickN(b.Len()); err != nil {
		c.close()
		return nil, err
	}
	c.n += int64(b.Len())
	if bud := c.ctx.Budget; bud != nil && bud.MaxOutputRows > 0 && c.n > bud.MaxOutputRows {
		keep := b.Len() - int(c.n-bud.MaxOutputRows)
		c.n = bud.MaxOutputRows
		c.pendErr = &ResourceError{
			Limit: LimitOutputRows, Operator: core.Summary(c.node),
			Max: bud.MaxOutputRows, Used: bud.MaxOutputRows + 1,
		}
		c.close()
		if keep == 0 {
			err := c.pendErr
			c.pendErr = nil
			return nil, err
		}
		if b.Sel != nil {
			c.rem = Batch{Rows: b.Rows, Sel: b.Sel[:keep]}
		} else {
			c.rem = Batch{Rows: b.Rows[:keep]}
		}
		return &c.rem, nil
	}
	return b, nil
}

// rowAssembleBatch is NextBatch over the row engine: up to batchSize
// Next calls folded into one owned batch, with any mid-batch error
// deferred so already-produced rows are still delivered first.
func (c *Cursor) rowAssembleBatch() (*Batch, error) {
	if c.scratch.Rows == nil {
		c.scratch.Rows = make([]types.Row, 0, batchSize)
	}
	c.scratch.Rows = c.scratch.Rows[:0]
	for len(c.scratch.Rows) < batchSize {
		r, ok, err := c.Next()
		if err != nil {
			if len(c.scratch.Rows) == 0 {
				return nil, err
			}
			c.pendErr = err
			break
		}
		if !ok {
			break
		}
		c.scratch.Rows = append(c.scratch.Rows, r)
	}
	if len(c.scratch.Rows) == 0 {
		return nil, nil
	}
	return &c.scratch, nil
}

// Rows reports how many rows the cursor has produced so far.
func (c *Cursor) Rows() int64 { return c.n }

// Close releases the iterator tree. Safe to call more than once.
func (c *Cursor) Close() error { return c.close() }

func (c *Cursor) close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.cur = nil
	if c.bit != nil {
		return c.bit.Close()
	}
	return c.it.Close()
}
