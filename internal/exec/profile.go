package exec

import (
	"time"

	"gapplydb/internal/core"
	"gapplydb/internal/types"
)

// NodeStats is the runtime profile of one plan operator: what EXPLAIN
// ANALYZE prints next to the estimates.
type NodeStats struct {
	// Rows is how many rows the operator produced across all loops.
	Rows int64
	// Opens counts Open calls — the operator's loop count (per-group
	// query operators re-open once per group, apply inners once per
	// outer row or binding version).
	Opens int64
	// Time is cumulative wall time spent inside the operator's Open,
	// Next and Close, children included (inclusive time, like EXPLAIN
	// ANALYZE in mainstream engines). Under parallel GApply the workers'
	// times sum, so a node's Time may exceed the query's elapsed time.
	Time time.Duration
	// SpoolBuilds/SpoolHits/SpoolBytes are set only on a node GApply
	// spooled: how often its materialization was built (once per
	// gapply.Open) vs. replayed, and the materialization's estimated
	// size. Rows/Opens/Time above then describe the real executions
	// only — replays bypass the probe.
	SpoolBuilds int64
	SpoolHits   int64
	SpoolBytes  int64
}

func (s *NodeStats) add(o NodeStats) {
	s.Rows += o.Rows
	s.Opens += o.Opens
	s.Time += o.Time
	s.SpoolBuilds += o.SpoolBuilds
	s.SpoolHits += o.SpoolHits
	s.SpoolBytes += o.SpoolBytes
}

// Profile collects per-operator runtime statistics for one execution,
// keyed by the logical plan node the iterator was compiled from. Like
// the Context that owns it, a Profile belongs to a single goroutine:
// parallel GApply forks a private Profile per worker and merges each
// group's delta back in partition order, exactly as Counters are merged,
// so totals are race-free and identical at every degree of parallelism.
//
// Instrumentation is strictly opt-in: when Context.Prof is nil, build
// inserts no probes and execution runs the same iterators as before —
// the disabled path costs nothing.
type Profile struct {
	stats map[core.Node]*NodeStats
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{stats: make(map[core.Node]*NodeStats)}
}

// node returns the stats cell for a plan node, creating it on first use.
func (p *Profile) node(n core.Node) *NodeStats {
	s := p.stats[n]
	if s == nil {
		s = &NodeStats{}
		p.stats[n] = s
	}
	return s
}

// Stats returns the recorded stats for a plan node; the zero value if
// the node never executed (or p is nil).
func (p *Profile) Stats(n core.Node) NodeStats {
	if p == nil {
		return NodeStats{}
	}
	if s := p.stats[n]; s != nil {
		return *s
	}
	return NodeStats{}
}

// wrap instruments an iterator compiled from plan node n.
func (p *Profile) wrap(n core.Node, it Iterator) Iterator {
	return &probe{inner: it, stats: p.node(n)}
}

// wrapBatch instruments a batch iterator compiled from plan node n.
// Rows is advanced by the batch's live-row count — actuals count rows,
// never batches — so EXPLAIN ANALYZE output is identical across the
// two engines and at every degree of parallelism.
func (p *Profile) wrapBatch(n core.Node, it BatchIterator) BatchIterator {
	return &batchProbe{inner: it, stats: p.node(n)}
}

// snapshot copies the current values, for later delta computation.
func (p *Profile) snapshot() map[core.Node]NodeStats {
	snap := make(map[core.Node]NodeStats, len(p.stats))
	for n, s := range p.stats {
		snap[n] = *s
	}
	return snap
}

// since returns the per-node work done after the snapshot was taken.
func (p *Profile) since(snap map[core.Node]NodeStats) map[core.Node]NodeStats {
	delta := make(map[core.Node]NodeStats, len(p.stats))
	for n, s := range p.stats {
		prev := snap[n] // zero value for nodes first seen after the snapshot
		d := NodeStats{
			Rows: s.Rows - prev.Rows, Opens: s.Opens - prev.Opens, Time: s.Time - prev.Time,
			SpoolBuilds: s.SpoolBuilds - prev.SpoolBuilds,
			SpoolHits:   s.SpoolHits - prev.SpoolHits,
			SpoolBytes:  s.SpoolBytes - prev.SpoolBytes,
		}
		if d != (NodeStats{}) {
			delta[n] = d
		}
	}
	return delta
}

// merge adds a delta (a finished group's work, from a worker's private
// profile) into the profile. Called only from the consuming goroutine,
// mirroring Counters.Add.
func (p *Profile) merge(delta map[core.Node]NodeStats) {
	for n, d := range delta {
		p.node(n).add(d)
	}
}

// probe is the instrumented-iterator wrapper: it forwards every call to
// the wrapped operator, timing it and counting produced rows and Open
// loops. Probes nest, so a parent's Time includes its children's.
type probe struct {
	inner Iterator
	stats *NodeStats
}

func (p *probe) Open() error {
	start := time.Now()
	err := p.inner.Open()
	p.stats.Time += time.Since(start)
	p.stats.Opens++
	return err
}

func (p *probe) Next() (types.Row, bool, error) {
	start := time.Now()
	r, ok, err := p.inner.Next()
	p.stats.Time += time.Since(start)
	if ok {
		p.stats.Rows++
	}
	return r, ok, err
}

func (p *probe) Close() error {
	start := time.Now()
	err := p.inner.Close()
	p.stats.Time += time.Since(start)
	return err
}

// batchProbe is the probe's batch twin: one timing sample per batch
// call, Rows advanced by live rows.
type batchProbe struct {
	inner BatchIterator
	stats *NodeStats
}

func (p *batchProbe) Open() error {
	start := time.Now()
	err := p.inner.Open()
	p.stats.Time += time.Since(start)
	p.stats.Opens++
	return err
}

func (p *batchProbe) NextBatch() (*Batch, error) {
	start := time.Now()
	b, err := p.inner.NextBatch()
	p.stats.Time += time.Since(start)
	if b != nil {
		p.stats.Rows += int64(b.Len())
	}
	return b, err
}

func (p *batchProbe) Close() error {
	start := time.Now()
	err := p.inner.Close()
	p.stats.Time += time.Since(start)
	return err
}
