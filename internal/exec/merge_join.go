package exec

import (
	"bytes"
	"sort"

	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// Merge join: the right input arrives in equi-key order (an IndexScan
// placed by the optimizer's order pass), so instead of building a hash
// table the join materializes the right rows with their order-encoded
// keys and binary-searches the equal range for each streaming left row.
//
// Output is byte-identical to the hash join by construction: the left
// streams in its original order (never reordered), and within a left
// row matches emit in right-input order — which is exactly the hash
// bucket's insertion order, since the hash build drains the same right
// input. The order-preserving key encoding is canonical over value
// equality (cross-type numerics, -0.0, NaN), so the equal range brackets
// exactly the rows a hash bucket would hold.

// mergeRun is the materialized right side: rows in key order with their
// encoded keys, sharing one backing buffer.
type mergeRun struct {
	rows []types.Row
	keys [][]byte
}

// newMergeRun encodes the key column of each row and verifies the
// stream's ordering. The planner guarantees key order; if the check ever
// fails (a planner bug, or an order-providing input that lied), the run
// re-establishes it with a stable sort — identical tie order — rather
// than emit misjoined output.
func newMergeRun(rows []types.Row, ord int) *mergeRun {
	keys := make([][]byte, len(rows))
	buf := make([]byte, 0, len(rows)*16)
	for i, r := range rows {
		start := len(buf)
		buf = r[ord].AppendOrderKey(buf)
		keys[i] = buf[start:len(buf):len(buf)]
	}
	sorted := true
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) > 0 {
			sorted = false
			break
		}
	}
	if !sorted {
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return bytes.Compare(keys[idx[a]], keys[idx[b]]) < 0
		})
		srows := make([]types.Row, len(rows))
		skeys := make([][]byte, len(rows))
		for i, p := range idx {
			srows[i], skeys[i] = rows[p], keys[p]
		}
		rows, keys = srows, skeys
	}
	return &mergeRun{rows: rows, keys: keys}
}

// equalRange returns the window [lo, hi) of entries whose key equals k.
func (m *mergeRun) equalRange(k []byte) (int, int) {
	lo := sort.Search(len(m.keys), func(i int) bool { return bytes.Compare(m.keys[i], k) >= 0 })
	hi := lo
	for hi < len(m.keys) && bytes.Equal(m.keys[hi], k) {
		hi++
	}
	return lo, hi
}

// mergeJoin is the row engine's merge join. It mirrors hashJoin's
// Open/Next/Close structure, counters (JoinProbes once per left row),
// NULL-key probe skip, residual predicate over the concatenated row,
// left-outer padding, and the spool-fed rebuild skip via
// contentVersioned.
type mergeJoin struct {
	left, right Iterator
	pred        func(types.Row, *Context) (bool, error)
	ctx         *Context
	leftOrd     int
	rightOrd    int
	outerJoin   bool
	rightArity  int

	run     *mergeRun
	runGen  uint64
	hasGen  bool
	keyBuf  []byte
	cur     types.Row
	bpos    int
	bend    int
	matched bool
}

func (m *mergeJoin) Open() error {
	if err := m.right.Open(); err != nil {
		return err
	}
	rebuild := true
	if cv, ok := m.right.(contentVersioned); ok {
		if gen, stable := cv.contentGen(); stable {
			if m.hasGen && m.run != nil && gen == m.runGen {
				rebuild = false
			} else {
				m.runGen, m.hasGen = gen, true
			}
		} else {
			m.hasGen = false
		}
	}
	if rebuild {
		var rows []types.Row
		for {
			if err := m.ctx.tick(); err != nil {
				return err
			}
			r, ok, err := m.right.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			rows = append(rows, r)
		}
		m.run = newMergeRun(rows, m.rightOrd)
	}
	if err := m.right.Close(); err != nil {
		return err
	}
	m.cur, m.bpos, m.bend = nil, 0, 0
	return m.left.Open()
}

func (m *mergeJoin) Next() (types.Row, bool, error) {
	for {
		if m.cur == nil {
			r, ok, err := m.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			m.ctx.Counters.JoinProbes++
			m.cur = r
			// NULL join keys never match (predicate equality), so skip
			// the probe; outer join still pads.
			if r[m.leftOrd].IsNull() {
				m.bpos, m.bend = 0, 0
			} else {
				m.keyBuf = storage.EncodeIndexKey(m.keyBuf[:0], r[m.leftOrd])
				m.bpos, m.bend = m.run.equalRange(m.keyBuf)
			}
			m.matched = false
		}
		for m.bpos < m.bend {
			rr := m.run.rows[m.bpos]
			m.bpos++
			out := m.cur.Concat(rr)
			pass, err := m.pred(out, m.ctx)
			if err != nil {
				return nil, false, err
			}
			if pass {
				m.matched = true
				return out, true, nil
			}
		}
		if m.outerJoin && !m.matched {
			out := m.cur.Concat(make(types.Row, m.rightArity))
			m.cur = nil
			return out, true, nil
		}
		m.cur = nil
	}
}

func (m *mergeJoin) Close() error {
	if !m.hasGen {
		m.run = nil
	}
	return m.left.Close()
}

// bMergeJoin is the batch engine's merge join, mirroring bHashJoin's
// cursor structure, reused probe row, fused post-filter, residual-free
// fast path (pred == nil when the equi-key covers the whole condition),
// and output slab discipline — with the hash table replaced by the
// key-ordered run and bucket lookups by binary search.
type bMergeJoin struct {
	left, right BatchIterator
	pred        func(types.Row, *Context) (bool, error)
	post        func(types.Row, *Context) (bool, error)
	ctx         *Context
	leftOrd     int
	rightOrd    int
	outerJoin   bool
	rightArity  int
	width       int

	run    *mergeRun
	runGen uint64
	hasGen bool
	keyBuf []byte

	lb       *Batch
	li       int
	cur      types.Row
	bucket   []types.Row
	bpos     int
	matched  bool
	nulls    types.Row
	probeRow types.Row

	outBuf joinOut
	out    Batch
}

func (m *bMergeJoin) Open() error {
	if err := m.right.Open(); err != nil {
		return err
	}
	rebuild := true
	if cv, ok := m.right.(contentVersioned); ok {
		if gen, stable := cv.contentGen(); stable {
			if m.hasGen && m.run != nil && gen == m.runGen {
				rebuild = false
			} else {
				m.runGen, m.hasGen = gen, true
			}
		} else {
			m.hasGen = false
		}
	}
	if rebuild {
		var rows []types.Row
		for {
			b, err := m.right.NextBatch()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			if err := m.ctx.tickN(b.Len()); err != nil {
				return err
			}
			rows = b.AppendRows(rows)
		}
		m.run = newMergeRun(rows, m.rightOrd)
	}
	if err := m.right.Close(); err != nil {
		return err
	}
	m.lb, m.li = nil, 0
	m.cur, m.bucket, m.bpos = nil, nil, 0
	if m.nulls == nil {
		m.nulls = make(types.Row, m.rightArity)
	}
	if (m.pred != nil || m.post != nil) && m.probeRow == nil {
		m.probeRow = make(types.Row, m.width)
	}
	m.outBuf.width = m.width
	return m.left.Open()
}

func (m *bMergeJoin) advanceLeft() (bool, error) {
	for m.lb == nil || m.li >= m.lb.Len() {
		b, err := m.left.NextBatch()
		if err != nil {
			return false, err
		}
		if b == nil {
			return false, nil
		}
		m.lb, m.li = b, 0
	}
	r := m.lb.Row(m.li)
	m.li++
	m.ctx.Counters.JoinProbes++
	m.cur = r
	if m.pred != nil || m.post != nil {
		copy(m.probeRow, r)
	}
	if r[m.leftOrd].IsNull() {
		m.bucket = nil
	} else {
		m.keyBuf = storage.EncodeIndexKey(m.keyBuf[:0], r[m.leftOrd])
		lo, hi := m.run.equalRange(m.keyBuf)
		m.bucket = m.run.rows[lo:hi]
	}
	m.bpos, m.matched = 0, false
	return true, nil
}

func (m *bMergeJoin) NextBatch() (*Batch, error) {
	m.outBuf.reset()
	for len(m.outBuf.rows) < batchSize {
		if m.cur == nil {
			ok, err := m.advanceLeft()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
		if m.pred == nil && m.post == nil {
			// Residual-free: every row in the equal range is a match.
			n := len(m.bucket) - m.bpos
			if room := batchSize - len(m.outBuf.rows); n > room {
				n = room
			}
			for i := 0; i < n; i++ {
				m.outBuf.add(m.cur, m.bucket[m.bpos+i])
			}
			m.bpos += n
			if n > 0 {
				m.matched = true
			}
		} else {
			for m.bpos < len(m.bucket) && len(m.outBuf.rows) < batchSize {
				rr := m.bucket[m.bpos]
				m.bpos++
				copy(m.probeRow[len(m.cur):], rr)
				if m.pred != nil {
					pass, err := m.pred(m.probeRow, m.ctx)
					if err != nil {
						return nil, err
					}
					if !pass {
						continue
					}
				}
				m.matched = true
				if m.post != nil {
					pass, err := m.post(m.probeRow, m.ctx)
					if err != nil {
						return nil, err
					}
					if !pass {
						continue
					}
				}
				m.outBuf.add(m.cur, rr)
			}
		}
		if m.bpos >= len(m.bucket) {
			if m.outerJoin && !m.matched {
				if m.post != nil {
					copy(m.probeRow, m.cur)
					copy(m.probeRow[len(m.cur):], m.nulls)
					pass, err := m.post(m.probeRow, m.ctx)
					if err != nil {
						return nil, err
					}
					if pass {
						m.outBuf.add(m.cur, m.nulls)
					}
				} else {
					m.outBuf.add(m.cur, m.nulls)
				}
			}
			m.cur = nil
		}
	}
	if len(m.outBuf.rows) == 0 {
		return nil, nil
	}
	m.out = Batch{Rows: m.outBuf.rows}
	return &m.out, nil
}

func (m *bMergeJoin) Close() error {
	if !m.hasGen {
		m.run = nil
	}
	m.lb = nil
	return m.left.Close()
}
