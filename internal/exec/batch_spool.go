package exec

import (
	"gapplydb/internal/core"
	"gapplydb/internal/types"
)

// bspool is the batch engine's spool iterator. It shares the holder /
// state machinery of spool.go — the same sync.Once materialization, the
// same generation numbering, the same build/hit accounting — so both
// engines report identical spool counters and the hash join's rebuild
// skip works identically. Replays emit the materialized rows in aliased
// batch windows (no copy).
type bspool struct {
	inner BatchIterator
	node  core.Node
	h     *spoolHolder
	ctx   *Context

	st  *spoolState // pinned at Open
	win rowWindow
}

func (s *bspool) Open() error {
	st := s.h.state
	built := false
	st.once.Do(func() {
		built = true
		st.gen = spoolGen.Add(1)
		st.rows, st.bytes, st.err = s.materialize()
	})
	if built {
		s.ctx.Counters.SpoolBuilds++
	} else {
		s.ctx.Counters.SpoolHits++
	}
	if s.ctx.Prof != nil {
		ns := s.ctx.Prof.node(s.node)
		if built {
			ns.SpoolBuilds++
			ns.SpoolBytes += st.bytes
		} else {
			ns.SpoolHits++
		}
	}
	if st.err != nil {
		return st.err
	}
	s.st = st
	s.win.reset(st.rows)
	return nil
}

// materialize drains the inner subtree batch-wise, charging the budget
// per row exactly as the row spool does.
func (s *bspool) materialize() ([]types.Row, int64, error) {
	if err := s.inner.Open(); err != nil {
		return nil, 0, err
	}
	var rows []types.Row
	var bytes int64
	for {
		b, err := s.inner.NextBatch()
		if err != nil {
			s.inner.Close()
			return nil, bytes, err
		}
		if b == nil {
			break
		}
		bn := b.Len()
		if err := s.ctx.tickN(bn); err != nil {
			s.inner.Close()
			return nil, bytes, err
		}
		for i := 0; i < bn; i++ {
			r := b.Row(i)
			n := int64(r.Bytes())
			if err := s.ctx.Budget.chargePartition(n, "Spool: "+core.Summary(s.node)); err != nil {
				s.inner.Close()
				return nil, bytes, err
			}
			bytes += n
			rows = append(rows, r)
		}
	}
	if err := s.inner.Close(); err != nil {
		return nil, bytes, err
	}
	return rows, bytes, nil
}

func (s *bspool) NextBatch() (*Batch, error) {
	b := s.win.next()
	if b == nil {
		return nil, nil
	}
	if err := s.ctx.tickN(b.Len()); err != nil {
		return nil, err
	}
	return b, nil
}

// Close releases nothing: the materialization belongs to the holder.
func (s *bspool) Close() error {
	s.win.pos = 0
	return nil
}

// contentGen implements contentVersioned, exactly as spool does.
func (s *bspool) contentGen() (uint64, bool) {
	if s.st == nil {
		return 0, false
	}
	return s.st.gen, true
}
