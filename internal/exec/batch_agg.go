package exec

import (
	"gapplydb/internal/types"
)

// Batch counterparts of agg.go. The accumulators (accum) are shared
// with the row engine — the batch operators change how rows arrive, not
// how aggregates fold — so NULL semantics and empty-input behaviour
// stay defined in exactly one place.

// bHashGroupBy materializes groups in first-seen order and emits one
// row per group, in batches.
type bHashGroupBy struct {
	input BatchIterator
	ords  []int
	aggs  []compiledAgg
	ctx   *Context

	keys   []types.Row
	states [][]*accum
	pos    int
	out    Batch
}

func (h *bHashGroupBy) Open() error {
	if err := h.input.Open(); err != nil {
		return err
	}
	index := make(map[string]int)
	h.keys, h.states = nil, nil
	for {
		b, err := h.input.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		if err := h.ctx.tickN(n); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			r := b.Row(i)
			k := r.Key(h.ords)
			idx, exists := index[k]
			if !exists {
				st, err := newStates(h.aggs)
				if err != nil {
					return err
				}
				idx = len(h.keys)
				index[k] = idx
				h.keys = append(h.keys, r.Project(h.ords))
				h.states = append(h.states, st)
			}
			if err := feed(h.aggs, h.states[idx], r, h.ctx); err != nil {
				return err
			}
		}
	}
	if err := h.input.Close(); err != nil {
		return err
	}
	h.pos = 0
	return nil
}

func (h *bHashGroupBy) NextBatch() (*Batch, error) {
	if h.pos >= len(h.keys) {
		return nil, nil
	}
	end := h.pos + batchSize
	if end > len(h.keys) {
		end = len(h.keys)
	}
	n := end - h.pos
	width := len(h.ords) + len(h.aggs)
	slab := make(types.Row, 0, n*width)
	rows := make([]types.Row, 0, n)
	for i := h.pos; i < end; i++ {
		start := len(slab)
		slab = append(slab, h.keys[i]...)
		for _, st := range h.states[i] {
			slab = append(slab, st.result())
		}
		rows = append(rows, slab[start:len(slab):len(slab)])
	}
	h.pos = end
	h.out = Batch{Rows: rows}
	return &h.out, nil
}

func (h *bHashGroupBy) Close() error {
	h.keys, h.states = nil, nil
	return nil
}

// bScalarAgg aggregates the whole input into exactly one row —
// including on empty input (count(*)=0, other aggregates NULL).
type bScalarAgg struct {
	input BatchIterator
	aggs  []compiledAgg
	ctx   *Context
	done  bool
	outR  types.Row
	out   Batch
}

func (s *bScalarAgg) Open() error {
	if err := s.input.Open(); err != nil {
		return err
	}
	states, err := newStates(s.aggs)
	if err != nil {
		return err
	}
	for {
		b, err := s.input.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		if err := s.ctx.tickN(n); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := feed(s.aggs, states, b.Row(i), s.ctx); err != nil {
				return err
			}
		}
	}
	if err := s.input.Close(); err != nil {
		return err
	}
	s.outR = make(types.Row, len(states))
	for i, st := range states {
		s.outR[i] = st.result()
	}
	s.done = false
	return nil
}

func (s *bScalarAgg) NextBatch() (*Batch, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	s.out = Batch{Rows: []types.Row{s.outR}}
	return &s.out, nil
}

func (s *bScalarAgg) Close() error { return nil }
