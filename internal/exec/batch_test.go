package exec

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"gapplydb/internal/core"
	"gapplydb/internal/types"
)

// These tests pin the batch engine's load-bearing internals: the
// slab-carving allocators and their stability guarantees, the
// residual-free and Select-into-Join fusion decisions (and their
// gating), cursor-level budget truncation, and cancellation — the parts
// a plan-level differential can pass by luck.

func TestRowSlabCarveStability(t *testing.T) {
	s := rowSlab{width: 4}
	var rows []types.Row
	// Enough carves to force several slab replacements.
	for i := 0; i < 1000; i++ {
		r := s.carve(4)
		if len(r) != 4 || cap(r) != 4 {
			t.Fatalf("carve %d: len %d cap %d, want 4/4 (three-index isolation)", i, len(r), cap(r))
		}
		for j := range r {
			r[j] = types.NewInt(int64(i*4 + j))
		}
		rows = append(rows, r)
	}
	// Every previously carved row must be intact: no carve may alias or
	// clobber another's storage.
	for i, r := range rows {
		for j, v := range r {
			if v.Int() != int64(i*4+j) {
				t.Fatalf("row %d col %d = %v, want %d", i, j, v, i*4+j)
			}
		}
	}
}

func TestJoinOutSlabPersistsAcrossResets(t *testing.T) {
	o := joinOut{width: 4}
	a := types.Row{types.NewInt(1), types.NewString("left")}
	b := types.Row{types.NewInt(2), types.NewString("right")}
	var emitted []types.Row
	for batch := 0; batch < 50; batch++ {
		o.reset()
		for i := 0; i < 10; i++ {
			o.add(a, b)
		}
		if len(o.rows) != 10 {
			t.Fatalf("batch %d: %d rows", batch, len(o.rows))
		}
		emitted = append(emitted, o.rows...)
	}
	want := types.Row{types.NewInt(1), types.NewString("left"), types.NewInt(2), types.NewString("right")}
	for i, r := range emitted {
		if !reflect.DeepEqual(r, want) {
			t.Fatalf("emitted row %d corrupted: %v", i, r)
		}
	}
	// 500 width-4 rows at a batchSize*width cap means a handful of slabs,
	// not one per reset: the whole point of persisting the slab.
	if cap(o.slab) < 8*4 {
		t.Fatalf("slab cap %d never grew past the minimum", cap(o.slab))
	}
}

// priceFilter returns a Select over in with cond p_retailprice > 15.
func priceFilter(in core.Node) *core.Select {
	return &core.Select{
		Input: in,
		Cond:  &core.Cmp{Op: ">", L: core.Col("p_retailprice"), R: core.LitFloat(15)},
	}
}

func TestSelectOverJoinFusesAsPostFilter(t *testing.T) {
	ctx := fixture(t)
	it, err := buildBatch(priceFilter(joined(ctx)), ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	hj, ok := it.(*bHashJoin)
	if !ok {
		t.Fatalf("Select over equi-join built %T, want *bHashJoin (fused post-filter)", it)
	}
	if hj.pred != nil {
		t.Error("join condition is exactly its equi-pair, pred should be dropped (residual-free)")
	}
	if hj.post == nil {
		t.Error("fused Select should compile into the join's post filter")
	}
	rows, err := drainBatchRows(it, ctx)
	if err != nil {
		t.Fatal(err)
	}
	// partsupp ⋈ part has 5 matches; prices 10 and 20,30,40 — p1 (price
	// 10) joins once, so 4 survive the filter.
	if len(rows) != 4 {
		t.Fatalf("fused join+filter = %d rows, want 4", len(rows))
	}
}

func TestJoinFusionGatedByProfile(t *testing.T) {
	ctx := fixture(t)
	ctx.Prof = NewProfile()
	it, err := buildBatch(priceFilter(joined(ctx)), ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Under EXPLAIN ANALYZE every operator keeps its identity: the Select
	// must stay a distinct (probe-wrapped) operator, not vanish into the
	// join, or per-operator actuals change shape.
	if _, fused := it.(*bHashJoin); fused {
		t.Fatal("Select fused into join despite active profile")
	}
}

func TestBatchEngineParityOnJoinFusionShapes(t *testing.T) {
	mk := func() (*Context, *Context) { return fixture(t), fixture(t) }
	outerJoin := func(ctx *Context) *core.Join {
		return &core.Join{
			Kind:  core.LeftOuterJoin,
			Left:  scan(ctx, "supplier"),
			Right: scan(ctx, "partsupp"),
			Cond:  &core.Cmp{Op: "=", L: core.QCol("supplier", "s_suppkey"), R: core.QCol("partsupp", "ps_suppkey")},
		}
	}
	cases := []struct {
		name string
		plan func(ctx *Context) core.Node
	}{
		{"select-over-inner-join", func(ctx *Context) core.Node { return priceFilter(joined(ctx)) }},
		{"project-select-join", func(ctx *Context) core.Node {
			return core.NewProject(priceFilter(joined(ctx)),
				[]core.Expr{core.Col("p_name"), core.Col("p_retailprice")}, []string{"", ""})
		}},
		// gamma supplies nothing: the padded row passes this filter, so
		// the fused post predicate must run on NULL-padded rows too.
		{"select-over-outer-join-pad-passes", func(ctx *Context) core.Node {
			return &core.Select{
				Input: outerJoin(ctx),
				Cond:  &core.Cmp{Op: ">=", L: core.Col("s_suppkey"), R: core.LitInt(2)},
			}
		}},
		// NULL = NULL is UNKNOWN: the same padded row must be rejected
		// when the filter touches the padded side.
		{"select-over-outer-join-pad-rejected", func(ctx *Context) core.Node {
			return &core.Select{
				Input: outerJoin(ctx),
				Cond:  &core.Cmp{Op: "=", L: core.Col("ps_suppkey"), R: core.Col("ps_suppkey")},
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bctx, rctx := mk()
			rctx.RowExec = true
			batch := mustRun(t, tc.plan(bctx), bctx)
			row := mustRun(t, tc.plan(rctx), rctx)
			if len(batch.Rows) != len(row.Rows) {
				t.Fatalf("engines disagree: batch %d rows, row %d rows", len(batch.Rows), len(row.Rows))
			}
			for i := range row.Rows {
				if !reflect.DeepEqual(batch.Rows[i], row.Rows[i]) {
					t.Fatalf("row %d: batch %v vs row %v", i, batch.Rows[i], row.Rows[i])
				}
			}
		})
	}
}

func TestCursorBatchBudgetTruncation(t *testing.T) {
	ctx := fixture(t)
	ctx.Budget = &Budget{MaxOutputRows: 3}
	cur, err := Start(scan(ctx, "part"), ctx) // 4 rows
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got int
	var rerr error
	for {
		b, err := cur.NextBatch()
		if err != nil {
			rerr = err
			break
		}
		if b == nil {
			break
		}
		got += b.Len()
	}
	if got != 3 {
		t.Fatalf("delivered %d rows before the budget error, want exactly the 3 budgeted", got)
	}
	var re *ResourceError
	if !errors.As(rerr, &re) {
		t.Fatalf("error = %v, want *ResourceError", rerr)
	}
	if re.Limit != LimitOutputRows || re.Used != 4 {
		t.Fatalf("ResourceError = %+v, want limit %s used 4", re, LimitOutputRows)
	}
}

func TestCursorRowStepBudget(t *testing.T) {
	ctx := fixture(t)
	ctx.Budget = &Budget{MaxOutputRows: 3}
	cur, err := Start(scan(ctx, "part"), ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got int
	var rerr error
	for {
		_, ok, err := cur.Next()
		if err != nil {
			rerr = err
			break
		}
		if !ok {
			break
		}
		got++
	}
	if got != 3 {
		t.Fatalf("delivered %d rows, want 3", got)
	}
	var re *ResourceError
	if !errors.As(rerr, &re) {
		t.Fatalf("error = %v, want *ResourceError", rerr)
	}
}

func TestRunBatchCancellation(t *testing.T) {
	ctx := fixture(t)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx.Ctx = cctx
	if _, err := Run(joined(ctx), ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on a cancelled context = %v, want context.Canceled", err)
	}
}

func TestRowAdapterRoundTrip(t *testing.T) {
	ctx := fixture(t)
	it, err := BuildBatch(joined(ctx), ctx)
	if err != nil {
		t.Fatal(err)
	}
	a := &rowAdapter{inner: it}
	rows, err := drainWith(a, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("adapter drained %d rows, want 5", len(rows))
	}
}
