// Package exec is the physical execution engine: a Volcano-style
// iterator tree compiled from the logical algebra in internal/core.
// It implements the paper's two-phase GApply (partition, then per-group
// execution with a relation-valued parameter bound to $group), plus the
// traditional operators the per-group query and the outer query need.
package exec

import (
	"context"
	"fmt"
	"reflect"
	"strings"

	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// Context carries runtime state shared by an iterator tree: the catalog,
// the current group bindings for relation-valued variables, and the
// stack of outer rows pushed by Apply operators for correlated inners.
//
// A Context (and the iterator tree bound to it) belongs to a single
// goroutine. Parallel GApply gives every worker its own fork()ed
// Context and its own iterator tree, then merges the workers' Counters
// back deterministically — shared mutable state never crosses a
// goroutine boundary.
type Context struct {
	Catalog *storage.Catalog

	// DOP caps the degree of parallelism of GApply's execution phase:
	// how many groups may be evaluated concurrently. 0 (the default)
	// means runtime.GOMAXPROCS(0); 1 forces serial execution.
	DOP int

	// Ctx carries the query's cancellation signal and deadline. Every
	// blocking operator (sort, partitioning, join builds, aggregation)
	// and every leaf scan polls it at row-batch granularity via tick;
	// nil means "never cancelled" and costs nothing.
	Ctx context.Context

	// Budget, when non-nil, meters resource consumption (output rows,
	// materialized partition bytes). It is shared — not copied — by
	// forked worker contexts, so charges from parallel GApply workers
	// land on the same meters.
	Budget *Budget

	// ticks counts cancellation-poll calls; the context is actually
	// checked once per cancelBatch ticks, bounding both the poll cost
	// and the cancellation latency to one row batch.
	ticks uint64

	// groups binds group variables to materialized partitions. GApply's
	// execution phase sets the binding before each per-group evaluation
	// ("binding a relation-valued parameter $group to each group in
	// succession", paper §3).
	groups map[string][]types.Row

	// outer is the stack of rows pushed by Apply; compiled OuterRefs
	// index it by depth from the top.
	outer []types.Row

	// version increments whenever a binding changes; uncorrelated-inner
	// caches are keyed on it.
	version uint64

	// Counters are execution statistics used by tests and the benchmark
	// harness to verify plan shapes (e.g. "the baseline joins twice").
	Counters Counters

	// Prof, when non-nil, makes Build wrap every iterator in an
	// instrumented probe recording per-operator rows, loops and wall
	// time — the data EXPLAIN ANALYZE renders. Nil (the default) keeps
	// execution completely uninstrumented.
	Prof *Profile

	// RowExec selects the reference row-at-a-time engine instead of the
	// default batch-at-a-time engine. The two produce byte-identical
	// results (the differential suite pins this); the row engine is kept
	// as the oracle the batch engine is checked against, and for
	// benchmark comparisons.
	RowExec bool

	// NoSpool disables GApply's invariant-subtree spooling, forcing the
	// pre-spool behavior of re-executing the whole inner tree per group.
	// The differential tests and the spool benchmark flip it.
	NoSpool bool

	// spools is the spool registry of the GApply whose inner tree is
	// currently being compiled: build wraps every registered invariant
	// root in a spool iterator sharing that registry's materializations.
	// buildGApply swaps it in around the inner compile; it is nil while
	// any other part of the plan compiles.
	spools *spoolRegistry
}

// Counters tallies work done during execution. Every field must be an
// int64 tally: Add and Sub merge them field-generically (via reflection)
// so a newly added counter can never be silently dropped from the
// parallel merge path.
type Counters struct {
	RowsScanned        int64 // base-table rows produced by scans
	GroupScanRows      int64 // rows produced by group-variable scans
	Groups             int64 // groups formed by GApply partitioning
	InnerExecs         int64 // per-group query executions
	SerialGroupExecs   int64 // groups evaluated on the serial path
	ParallelGroupExecs int64 // groups evaluated by worker-pool workers
	ApplyExecs         int64 // correlated inner executions by Apply
	ApplyCacheHits     int64 // uncorrelated inners served from cache
	JoinProbes         int64 // hash-join probe rows
	SpoolBuilds        int64 // invariant subtrees materialized by a spool
	SpoolHits          int64 // spool re-Opens served from the materialization
	PlanCacheHits      int64 // 1 when this execution ran a plan-cache hit
}

// NewContext returns a fresh execution context over a catalog.
func NewContext(cat *storage.Catalog) *Context {
	return &Context{Catalog: cat, groups: make(map[string][]types.Row)}
}

// fork returns a child context for a GApply worker: the same catalog and
// DOP, a snapshot of the current bindings (so inners referencing an
// enclosing group variable keep resolving), and zeroed Counters (plus a
// private Profile when the parent is instrumented) that the spawning
// GApply merges back in partition order.
func (c *Context) fork() *Context {
	groups := make(map[string][]types.Row, len(c.groups))
	for k, v := range c.groups {
		groups[k] = v
	}
	child := &Context{Catalog: c.Catalog, DOP: c.DOP, groups: groups,
		Ctx: c.Ctx, Budget: c.Budget, NoSpool: c.NoSpool, RowExec: c.RowExec}
	child.outer = append(child.outer, c.outer...)
	if c.Prof != nil {
		child.Prof = NewProfile()
	}
	return child
}

// cancelBatch is the row-batch granularity of cancellation polling: a
// power of two so tick's hot path is one increment and one mask.
const cancelBatch = 256

// tick is the engine's cancellation point. Operators call it once per
// row of work; every cancelBatch calls it polls Ctx and returns its
// error (context.Canceled or context.DeadlineExceeded) once the query
// is cancelled or past its deadline.
func (c *Context) tick() error {
	c.ticks++
	if c.ticks&(cancelBatch-1) != 0 || c.Ctx == nil {
		return nil
	}
	return context.Cause(c.Ctx)
}

// tickN advances the tick counter by n rows of work at once — the batch
// engine's cancellation point. It polls the context whenever the n rows
// crossed a cancelBatch window boundary, so batch-grained polling keeps
// the same worst-case cancellation latency as n per-row ticks.
func (c *Context) tickN(n int) error {
	if n <= 0 {
		return nil
	}
	before := c.ticks
	c.ticks += uint64(n)
	if c.Ctx == nil {
		return nil
	}
	if (before^c.ticks)&^uint64(cancelBatch-1) == 0 {
		return nil // same window: no boundary crossed
	}
	return context.Cause(c.Ctx)
}

// checkCancel polls the context immediately, ignoring the batch window.
// Operators call it at phase boundaries (before a partition phase,
// before emitting a buffered group) where promptness matters more than
// amortization.
func (c *Context) checkCancel() error {
	if c.Ctx == nil {
		return nil
	}
	return context.Cause(c.Ctx)
}

// Sub returns the per-field difference c - o: the work done since the
// snapshot o was taken.
func (c Counters) Sub(o Counters) Counters {
	out := c
	dv := reflect.ValueOf(&out).Elem()
	sv := reflect.ValueOf(o)
	for i := 0; i < dv.NumField(); i++ {
		dv.Field(i).SetInt(dv.Field(i).Int() - sv.Field(i).Int())
	}
	return out
}

// Add merges another tally into c, field by field over the whole struct.
// Parallel GApply calls this from the consuming goroutine only, once per
// finished group, so counter totals are exact and race-free without
// atomics — plan-shape assertions see the same values as under serial
// execution.
func (c *Counters) Add(o Counters) {
	dv := reflect.ValueOf(c).Elem()
	sv := reflect.ValueOf(o)
	for i := 0; i < dv.NumField(); i++ {
		dv.Field(i).SetInt(dv.Field(i).Int() + sv.Field(i).Int())
	}
}

// BindGroup binds rows to a group variable and invalidates caches.
func (c *Context) BindGroup(name string, rows []types.Row) {
	c.groups[strings.ToLower(name)] = rows
	c.version++
}

// Group returns the rows bound to a group variable.
func (c *Context) Group(name string) ([]types.Row, error) {
	rows, ok := c.groups[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("exec: group variable %q is not bound", name)
	}
	return rows, nil
}

// pushOuter/popOuter do not bump version: an Apply inner without
// OuterRefs is unaffected by the outer row, so its cache stays valid
// across the outer loop — the point of the uncorrelated-inner cache.
func (c *Context) pushOuter(r types.Row) {
	c.outer = append(c.outer, r)
}

func (c *Context) popOuter() {
	c.outer = c.outer[:len(c.outer)-1]
}

// outerAt returns the row depth levels below the top of the outer stack.
func (c *Context) outerAt(depth int) types.Row {
	return c.outer[len(c.outer)-1-depth]
}

// Iterator is the Volcano operator interface. After Close, Open may be
// called again to re-execute the subtree (Apply and GApply rely on this).
type Iterator interface {
	Open() error
	Next() (types.Row, bool, error)
	Close() error
}

// Drain opens the iterator, collects every row, and closes it.
func Drain(it Iterator) ([]types.Row, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	var rows []types.Row
	for {
		r, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		rows = append(rows, r)
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return rows, nil
}

// drainWith is Drain with a cancellation point per collected row; the
// engine's internal materializations (apply inners, join builds, GApply
// outer and per-group drains) use it so a blocking materialization stops
// within one row batch of the query being cancelled.
func drainWith(it Iterator, c *Context) ([]types.Row, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	var rows []types.Row
	for {
		if err := c.tick(); err != nil {
			it.Close()
			return nil, err
		}
		r, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		rows = append(rows, r)
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return rows, nil
}
