package exec

import (
	"fmt"

	"gapplydb/internal/core"
	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// Index-scan operators: read a base table through an ordered secondary
// index, emitting rows in key order (ascending, equal keys in heap
// position order — the stable-sort tie rule the planner's sort elision
// relies on), optionally restricted to a key range resolved to a run
// window by two binary searches.
//
// An index scan emits exactly the rows a heap scan plus a stable sort
// would, so RowsScanned counts every emitted row, as tableScan does; a
// bounded scan counts only the rows inside the window — the rows it
// actually produced.

// openIndexRun resolves the plan's table and index and returns the
// current sorted run with the [lo, hi) window its bounds select.
func openIndexRun(p *core.IndexScan, ctx *Context) (*storage.Table, *storage.IndexRun, int, int, error) {
	tab, err := ctx.Catalog.Lookup(p.Table)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	ix, err := ctx.Catalog.LookupIndex(p.Index)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	run := ix.Run(tab)
	lo, hi := indexWindow(run, p)
	return tab, run, lo, hi, nil
}

// indexWindow computes the run-offset window [lo, hi) selected by the
// scan's key bounds. Bounds are SQL comparisons: a NULL key satisfies
// none of them, and NULL keys sort first — so the presence of any bound
// starts the window past the NULL prefix. The planner only places
// bounds on single-column indexes, where a probe key compares whole-key
// (not prefix), making SeekGE/SeekGT exact brackets.
func indexWindow(run *storage.IndexRun, p *core.IndexScan) (int, int) {
	lo, hi := 0, run.Len()
	if !p.HasLo && !p.HasHi {
		return lo, hi
	}
	lo = run.SeekGT(storage.EncodeIndexKey(nil, types.Null))
	if p.HasLo {
		k := storage.EncodeIndexKey(nil, p.Lo)
		var s int
		if p.LoIncl {
			s = run.SeekGE(k)
		} else {
			s = run.SeekGT(k)
		}
		if s > lo {
			lo = s
		}
	}
	if p.HasHi {
		k := storage.EncodeIndexKey(nil, p.Hi)
		if p.HiIncl {
			hi = run.SeekGT(k)
		} else {
			hi = run.SeekGE(k)
		}
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// indexScan is the row engine's index scan.
type indexScan struct {
	plan *core.IndexScan
	ctx  *Context

	table    *storage.Table
	run      *storage.IndexRun
	pos, end int
}

func (s *indexScan) Open() error {
	tab, run, lo, hi, err := openIndexRun(s.plan, s.ctx)
	if err != nil {
		return err
	}
	s.table, s.run, s.pos, s.end = tab, run, lo, hi
	return nil
}

func (s *indexScan) Next() (types.Row, bool, error) {
	// Leaf scans are the engine's universal cancellation point, exactly
	// as in tableScan.
	if err := s.ctx.tick(); err != nil {
		return nil, false, err
	}
	if s.pos >= s.end {
		return nil, false, nil
	}
	r := s.table.Rows[s.run.Pos[s.pos]]
	s.pos++
	s.ctx.Counters.RowsScanned++
	return r, true, nil
}

func (s *indexScan) Close() error { return nil }

// bIndexScan is the batch engine's index scan. Unlike bScan it cannot
// alias a window of the table's row slice — the run permutes positions —
// so each batch gathers up to batchSize row headers into a reused
// container. Row values stay untouched and stable; only the container
// is transient, per the batch ownership contract.
type bIndexScan struct {
	plan *core.IndexScan
	ctx  *Context

	table    *storage.Table
	run      *storage.IndexRun
	pos, end int
	buf      []types.Row
	out      Batch
}

func (s *bIndexScan) Open() error {
	tab, run, lo, hi, err := openIndexRun(s.plan, s.ctx)
	if err != nil {
		return err
	}
	s.table, s.run, s.pos, s.end = tab, run, lo, hi
	return nil
}

func (s *bIndexScan) NextBatch() (*Batch, error) {
	if s.pos >= s.end {
		return nil, nil
	}
	n := s.end - s.pos
	if n > batchSize {
		n = batchSize
	}
	if err := s.ctx.tickN(n); err != nil {
		return nil, err
	}
	if cap(s.buf) < n {
		s.buf = make([]types.Row, 0, batchSize)
	}
	s.buf = s.buf[:n]
	for i := 0; i < n; i++ {
		s.buf[i] = s.table.Rows[s.run.Pos[s.pos+i]]
	}
	s.pos += n
	s.ctx.Counters.RowsScanned += int64(n)
	s.out = Batch{Rows: s.buf}
	return &s.out, nil
}

func (s *bIndexScan) Close() error { return nil }

// checkIndexScan validates an IndexScan plan against the catalog at
// build time, so a stale plan (index dropped after planning) fails with
// a clear error instead of at Open.
func checkIndexScan(p *core.IndexScan, ctx *Context) error {
	ix, err := ctx.Catalog.LookupIndex(p.Index)
	if err != nil {
		return err
	}
	if (p.HasLo || p.HasHi) && len(ix.Ords()) != 1 {
		return fmt.Errorf("exec: index %q: range bounds require a single-column index", p.Index)
	}
	return nil
}
