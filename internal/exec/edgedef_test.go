package exec

import (
	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

func dateTableDef() *schema.TableDef {
	return &schema.TableDef{
		Name: "events",
		Schema: schema.New(
			schema.Column{Name: "e_id", Type: types.KindInt},
			schema.Column{Name: "e_day", Type: types.KindDate},
		),
		PrimaryKey: []string{"e_id"},
	}
}
