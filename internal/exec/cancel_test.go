package exec

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"gapplydb/internal/core"
	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// grouped builds the obs table with n rows spread over g groups.
func groupedCatalog(t *testing.T, groups, perGroup int) *storage.Catalog {
	t.Helper()
	keys := make([]types.Value, 0, groups*perGroup)
	for i := 0; i < groups*perGroup; i++ {
		keys = append(keys, types.NewInt(int64(i%groups)))
	}
	return keyTable(t, types.KindInt, keys)
}

// heavySelfJoin is a per-group query expensive enough that cancellation
// must interrupt it mid-group: a nested-loops self-join of the group
// (quadratic in group size) under a count.
func heavySelfJoin(ctx *Context) *core.GApply {
	gs := func() core.Node { return &core.GroupScan{Var: "g"} }
	j := &core.Join{
		Left:  core.NewProject(gs(), []core.Expr{core.Col("v")}, []string{"a"}),
		Right: core.NewProject(gs(), []core.Expr{core.Col("v")}, []string{"b"}),
		Cond:  &core.Cmp{Op: "<", L: core.Col("a"), R: core.Col("b")},
	}
	agg := &core.AggOp{Input: j, Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}}}
	return core.NewGApply(scan(ctx, "obs"), []*core.ColRef{core.Col("k")}, "g", agg)
}

// waitNoExtraGoroutines fails the test if the goroutine count does not
// return to the baseline (worker wind-down is synchronous, but the
// runtime's bookkeeping may trail the final wg.Wait by a beat).
func waitNoExtraGoroutines(t *testing.T, base int) {
	t.Helper()
	var n int
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if n = runtime.NumGoroutine(); n <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d at baseline, %d after\n%s", base, n, buf[:runtime.Stack(buf, true)])
}

// TestCancelDuringPartitionPhase drives the partition functions directly
// with an already-cancelled context: both strategies must abandon the
// phase with context.Canceled instead of materializing every group.
func TestCancelDuringPartitionPhase(t *testing.T) {
	rows := make([]types.Row, 4096)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i % 32)), types.NewInt(int64(i))}
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, part := range map[string]func([]types.Row, []int, *Context, *core.GApply) ([][]types.Row, error){
		"hash": partitionByHash,
		"sort": partitionBySort,
	} {
		ctx := NewContext(buildFixtureCatalog())
		ctx.Ctx = cctx
		if _, err := part(rows, []int{0}, ctx, nil); !errors.Is(err, context.Canceled) {
			t.Errorf("%s partition with cancelled ctx: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestCancelBeforeExecution: a query started on an already-cancelled (or
// already-expired) context fails with the context's error — for both
// partition strategies, serial and parallel alike.
func TestCancelBeforeExecution(t *testing.T) {
	cat := groupedCatalog(t, 32, 32)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	<-expired.Done()
	for _, dop := range []int{1, 8} {
		for _, hint := range []core.PartitionHint{core.PartitionHash, core.PartitionSort} {
			ctx := NewContext(cat)
			ctx.DOP = dop
			ctx.Ctx = cancelled
			ga := heavySelfJoin(ctx)
			ga.Partition = hint
			if _, err := Run(ga, ctx); !errors.Is(err, context.Canceled) {
				t.Errorf("dop=%d %v: err = %v, want context.Canceled", dop, hint, err)
			}

			tctx := NewContext(cat)
			tctx.DOP = dop
			tctx.Ctx = expired
			ga = heavySelfJoin(tctx)
			ga.Partition = hint
			if _, err := Run(ga, tctx); !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("dop=%d %v: err = %v, want context.DeadlineExceeded", dop, hint, err)
			}
		}
	}
}

// TestCancelMidExecutionParallel is the acceptance check for the
// cancellation path: a parallel GApply at dop 8, cancelled after its
// first output row, must surface context.Canceled within 100ms —
// workers mid-group included — and leak no goroutines.
func TestCancelMidExecutionParallel(t *testing.T) {
	cat := groupedCatalog(t, 64, 150)
	base := runtime.NumGoroutine()
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx := NewContext(cat)
	ctx.DOP = 8
	ctx.Ctx = cctx
	it, err := Build(heavySelfJoin(ctx), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	cancel()
	start := time.Now()
	var nextErr error
	for {
		_, ok, err := it.Next()
		if err != nil {
			nextErr = err
			break
		}
		if !ok {
			break
		}
	}
	elapsed := time.Since(start)
	if !errors.Is(nextErr, context.Canceled) {
		t.Fatalf("err after cancel = %v, want context.Canceled", nextErr)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("cancellation took %v, want ≤ 100ms", elapsed)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	waitNoExtraGoroutines(t, base)
}

// TestCancelAfterLastRow: a cancel that lands after the final row has
// been produced must still surface — the caller must never mistake a
// result raced by cancellation for a committed success.
func TestCancelAfterLastRow(t *testing.T) {
	for _, dop := range []int{1, 8} {
		cctx, cancel := context.WithCancel(context.Background())
		ctx := fixture(t)
		ctx.DOP = dop
		ctx.Ctx = cctx
		it, err := Build(gapplyQ1(ctx, core.PartitionHash), ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := it.Open(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 7; i++ { // Q1 over the fixture emits exactly 7 rows
			if _, ok, err := it.Next(); err != nil || !ok {
				t.Fatalf("dop=%d row %d: ok=%v err=%v", dop, i, ok, err)
			}
		}
		cancel()
		if _, _, err := it.Next(); !errorsIsCanceled(err) {
			t.Errorf("dop=%d: Next after last row with cancel = %v, want context.Canceled", dop, err)
		}
		it.Close()
	}

	// Run-level: the materializing driver applies the same rule.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx := fixture(t)
	ctx.Ctx = cctx
	if _, err := Run(scan(ctx, "supplier"), ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Run on cancelled ctx = %v, want context.Canceled", err)
	}
}

func errorsIsCanceled(err error) bool { return errors.Is(err, context.Canceled) }

// TestParallelGroupErrorPropagatesNoLeak injects a failing per-group
// query (division by zero in exactly one group) at dop 8: the first
// error in partition order must propagate, every worker must be
// drained, and no goroutine may leak.
func TestParallelGroupErrorPropagatesNoLeak(t *testing.T) {
	cat := groupedCatalog(t, 64, 10)
	base := runtime.NumGoroutine()

	mk := func(ctx *Context) *core.GApply {
		gs := &core.GroupScan{Var: "g"}
		// 1 / (k - 3): fails exactly in the group with key 3.
		boom := &core.BinOp{Op: "/", L: core.LitInt(1),
			R: &core.BinOp{Op: "-", L: core.Col("k"), R: core.LitInt(3)}}
		pgq := core.NewProject(gs, []core.Expr{boom}, []string{"boom"})
		return core.NewGApply(scan(ctx, "obs"), []*core.ColRef{core.Col("k")}, "g", pgq)
	}

	ctx := NewContext(cat)
	ctx.DOP = 8
	_, err := Run(mk(ctx), ctx)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v, want the injected division by zero", err)
	}
	waitNoExtraGoroutines(t, base)

	// The parallel path surfaces the same error serial execution does.
	sctx := NewContext(cat)
	sctx.DOP = 1
	_, serr := Run(mk(sctx), sctx)
	if serr == nil || serr.Error() != err.Error() {
		t.Errorf("parallel error %q != serial error %q", err, serr)
	}
	waitNoExtraGoroutines(t, base)
}

// TestCancelledWorkersDropCleanly: cancelling mid-run and then closing
// must not deadlock Close or leak the pool, and the iterator must be
// reusable after a fresh Open (Apply depends on re-execution).
func TestCancelReopenAfterCancel(t *testing.T) {
	cat := groupedCatalog(t, 16, 40)
	cctx, cancel := context.WithCancel(context.Background())
	ctx := NewContext(cat)
	ctx.DOP = 4
	ctx.Ctx = cctx
	it, err := Build(heavySelfJoin(ctx), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	cancel()
	for {
		if _, ok, err := it.Next(); err != nil || !ok {
			break
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	// Clear the cancellation and re-execute: full results this time.
	ctx.Ctx = context.Background()
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 16 { // one count row per group
		t.Errorf("re-opened run = %d rows, want 16", n)
	}
}
