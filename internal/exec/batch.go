package exec

import "gapplydb/internal/types"

// This file is the spine of the batch-at-a-time engine: the Batch
// container, the BatchIterator operator interface, and the adapters and
// drain helpers the operators share. The engine keeps the Volcano
// shape — a pull-based operator tree — but each pull moves a batch of
// up to batchSize rows, so the per-row interface call, cancellation
// poll, and allocation that dominate the row engine's hot paths are
// paid once per batch instead of once per row.
//
// Layout. A Batch is row-major: Rows holds the row data (each row a
// types.Row, the same representation the storage layer and the row
// engine use), and Sel is the selection vector — the indexes of the
// live rows, in order. Filters narrow Sel without moving row data;
// column-oriented kernels (vector.go) traverse one column of the live
// rows in a tight loop. Row-major with a selection vector, rather than
// a columnar flip, because the storage layer is row-major, every
// operator exchanges whole rows, and a types.Value is a 40-byte struct:
// transposing at every operator boundary would cost more than the
// column-stride traversal saves.
//
// Ownership contract. Row values (types.Row headers and the Values they
// point at) are immutable and stable: holding one past the next pull is
// always safe. The Batch container itself — the Rows and Sel slices —
// is transient: it is valid only until the next NextBatch call on the
// producer, which may reuse the backing arrays. An operator that keeps
// rows across pulls (sort, join build, partition, spool) must copy the
// row headers out; none needs to copy row data.

// batchSize is the target number of rows per batch. It matches
// cancelBatch, so one batch of work is also one cancellation window:
// batch-grained polling has the same worst-case cancellation latency
// the row engine's per-row tick amortization had.
const batchSize = 256

// Batch is a set of rows flowing between batch operators.
type Batch struct {
	// Rows is the row data. Not all of it need be live: consult Sel.
	Rows []types.Row
	// Sel is the selection vector: indexes into Rows of the live rows,
	// in output order. nil means every row is live, in order.
	Sel []int
}

// Len returns the number of live rows.
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	if b.Sel != nil {
		return len(b.Sel)
	}
	return len(b.Rows)
}

// Row returns the i-th live row.
func (b *Batch) Row(i int) types.Row {
	if b.Sel != nil {
		return b.Rows[b.Sel[i]]
	}
	return b.Rows[i]
}

// Gather appends column ord of every live row to dst and returns it —
// the column-slice view a vectorized kernel iterates.
func (b *Batch) Gather(ord int, dst []types.Value) []types.Value {
	if b.Sel != nil {
		for _, i := range b.Sel {
			dst = append(dst, b.Rows[i][ord])
		}
		return dst
	}
	for i := range b.Rows {
		dst = append(dst, b.Rows[i][ord])
	}
	return dst
}

// NullMask appends one bool per live row to dst — true when column ord
// is NULL in that row — and returns it. Join and aggregate paths use it
// to split NULL handling out of their inner loops.
func (b *Batch) NullMask(ord int, dst []bool) []bool {
	if b.Sel != nil {
		for _, i := range b.Sel {
			dst = append(dst, b.Rows[i][ord].IsNull())
		}
		return dst
	}
	for i := range b.Rows {
		dst = append(dst, b.Rows[i][ord].IsNull())
	}
	return dst
}

// AppendRows appends the live rows' headers to dst and returns it — the
// copy-out a materializing consumer performs to own rows past the
// producer's next pull.
func (b *Batch) AppendRows(dst []types.Row) []types.Row {
	if b.Sel != nil {
		for _, i := range b.Sel {
			dst = append(dst, b.Rows[i])
		}
		return dst
	}
	return append(dst, b.Rows...)
}

// rowSlab carves stable row storage out of shared slabs. Every carve is
// a three-index slice (slab[start:end:end]), so a carved row can never
// grow into its neighbor or the slab's unused tail — which is what lets
// one slab serve many batches: a fresh slab is allocated (geometrically,
// capped at one full batch's worth of rows) only when the current one
// fills. The carved values are stable forever, as the ownership
// contract requires; only the *unused* slab capacity is recycled.
type rowSlab struct {
	slab  types.Row
	width int // output arity, for the full-batch cap
}

// carve returns stable, contiguous storage for n values.
func (s *rowSlab) carve(n int) types.Row {
	if len(s.slab)+n > cap(s.slab) {
		c := 2 * cap(s.slab)
		if c < 8*n {
			c = 8 * n
		}
		if c > batchSize*s.width {
			c = batchSize * s.width
		}
		if c < n {
			c = n
		}
		s.slab = make(types.Row, 0, c)
	}
	start := len(s.slab)
	s.slab = s.slab[:start+n]
	return s.slab[start : start+n : start+n]
}

// identitySel grows (or reuses) sel as the identity selection [0, n).
func identitySel(sel []int, n int) []int {
	sel = sel[:0]
	for i := 0; i < n; i++ {
		sel = append(sel, i)
	}
	return sel
}

// BatchIterator is the batch-engine operator interface. NextBatch
// returns a nil Batch at end of stream; a returned Batch has at least
// one live row. After Close, Open may be called again to re-execute the
// subtree (Apply and GApply rely on this, exactly as with Iterator).
type BatchIterator interface {
	Open() error
	NextBatch() (*Batch, error)
	Close() error
}

// drainBatchRows opens the iterator, copies every live row's header
// out, and closes it, polling cancellation once per batch. It is the
// batch engine's drainWith.
func drainBatchRows(it BatchIterator, c *Context) ([]types.Row, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	var rows []types.Row
	for {
		b, err := it.NextBatch()
		if err != nil {
			it.Close()
			return nil, err
		}
		if b == nil {
			break
		}
		if err := c.tickN(b.Len()); err != nil {
			it.Close()
			return nil, err
		}
		rows = b.AppendRows(rows)
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return rows, nil
}

// rowWindow emits a stable row slice as a sequence of batches without
// copying: each batch aliases a batchSize window of the slice. The rows
// must outlive the iteration (materialized state does).
type rowWindow struct {
	rows []types.Row
	pos  int
	out  Batch
}

func (w *rowWindow) reset(rows []types.Row) { w.rows, w.pos = rows, 0 }

func (w *rowWindow) next() *Batch {
	if w.pos >= len(w.rows) {
		return nil
	}
	end := w.pos + batchSize
	if end > len(w.rows) {
		end = len(w.rows)
	}
	w.out = Batch{Rows: w.rows[w.pos:end]}
	w.pos = end
	return &w.out
}

// rowAdapter exposes a batch tree through the row Iterator interface,
// so row-level consumers (and the exec package's own tests) can drive
// either engine.
type rowAdapter struct {
	inner BatchIterator
	buf   *Batch
	pos   int
}

func (a *rowAdapter) Open() error {
	a.buf, a.pos = nil, 0
	return a.inner.Open()
}

func (a *rowAdapter) Next() (types.Row, bool, error) {
	for a.buf == nil || a.pos >= a.buf.Len() {
		b, err := a.inner.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, false, nil
		}
		a.buf, a.pos = b, 0
	}
	r := a.buf.Row(a.pos)
	a.pos++
	return r, true, nil
}

func (a *rowAdapter) Close() error {
	a.buf = nil
	return a.inner.Close()
}
