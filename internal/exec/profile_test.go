package exec

import (
	"reflect"
	"testing"

	"gapplydb/internal/core"
)

// TestCountersAddSubCoverEveryField is the guard the Counters.Add
// satellite asks for: because Add and Sub iterate the struct's fields
// generically, a newly added counter is merged automatically — this test
// fails (via reflection, not a hand-maintained list) if the struct ever
// gains a field the merge arithmetic mishandles.
func TestCountersAddSubCoverEveryField(t *testing.T) {
	var a, b Counters
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		if av.Field(i).Kind() != reflect.Int64 {
			t.Fatalf("Counters field %s is %s; Add/Sub require int64 tallies",
				av.Type().Field(i).Name, av.Field(i).Kind())
		}
		av.Field(i).SetInt(int64(10 * (i + 1)))
		bv.Field(i).SetInt(int64(i + 1))
	}
	sum := a
	sum.Add(b)
	diff := sum.Sub(b)
	sv := reflect.ValueOf(sum)
	for i := 0; i < sv.NumField(); i++ {
		want := int64(10*(i+1) + (i + 1))
		if got := sv.Field(i).Int(); got != want {
			t.Errorf("Add dropped field %s: got %d, want %d", sv.Type().Field(i).Name, got, want)
		}
	}
	if diff != a {
		t.Errorf("Sub did not invert Add: %+v, want %+v", diff, a)
	}
}

// TestProfileDisabledInsertsNoProbes pins the zero-cost-when-disabled
// contract: with a nil Profile the compiled tree contains no probe
// wrappers at all.
func TestProfileDisabledInsertsNoProbes(t *testing.T) {
	ctx := fixture(t)
	it, err := Build(gapplyQ1(ctx, core.PartitionHash), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, isProbe := it.(*probe); isProbe {
		t.Fatal("nil Profile still produced an instrumented iterator")
	}
}

// TestProfileCountsMatchAcrossDOP runs the Q1 plan instrumented at
// dop 1 and dop 8 and checks (a) the per-operator actual row counts are
// exactly right, and (b) parallel workers' per-node stats merge to the
// serial totals — the partition-order merge the tentpole requires.
func TestProfileCountsMatchAcrossDOP(t *testing.T) {
	type nodeCount struct {
		op   string
		rows int64
	}
	collect := func(dop int) (map[core.Node]NodeStats, core.Node) {
		ctx := fixture(t)
		ctx.DOP = dop
		ctx.Prof = NewProfile()
		plan := gapplyQ1(ctx, core.PartitionHash)
		mustRun(t, plan, ctx)
		out := make(map[core.Node]NodeStats)
		core.Walk(plan, func(n core.Node) {
			s := ctx.Prof.Stats(n)
			s.Time = 0 // timings are the one legitimately nondeterministic field
			out[n] = s
		})
		return out, plan
	}

	serial, plan := collect(1)
	root := serial[plan]
	// Q1 over the fixture: 2 groups × (3+1 / 2+1) rows = 7, one Open.
	if root.Rows != 7 || root.Opens != 1 {
		t.Fatalf("GApply stats = %+v, want 7 rows / 1 open", root)
	}
	ga := plan.(*core.GApply)
	// The per-group union produces all 7 inner rows; it reopens per group
	// (2 groups; the prebuilt serial tree is the one that ran).
	if s := serial[ga.Inner]; s.Rows != 7 || s.Opens != 2 {
		t.Fatalf("inner stats = %+v, want 7 rows / 2 opens", s)
	}

	for _, dop := range []int{2, 8} {
		par, parPlan := collect(dop)
		// Per-node actual rows and loop counts must be identical to the
		// serial run — node-by-node, not just in total.
		byDescribe := func(m map[core.Node]NodeStats, plan core.Node) []nodeCount {
			var out []nodeCount
			core.Walk(plan, func(n core.Node) {
				out = append(out, nodeCount{op: n.Describe(), rows: m[n].Rows})
			})
			return out
		}
		want, got := byDescribe(serial, plan), byDescribe(par, parPlan)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("dop %d per-node rows diverged:\nserial: %+v\nparallel: %+v", dop, want, got)
		}
	}
}
