package exec

import (
	"strings"
	"testing"

	"gapplydb/internal/core"
	"gapplydb/internal/types"
)

// Runtime failure injection: errors must surface through the iterator
// tree, not panic or vanish.

func TestRuntimeDivisionByZero(t *testing.T) {
	ctx := fixture(t)
	plan := core.NewProject(scan(ctx, "part"),
		[]core.Expr{&core.BinOp{Op: "/", L: core.LitInt(1), R: core.LitInt(0)}}, nil)
	if _, err := Run(plan, ctx); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
	// Division by a zero-valued column, mid-stream.
	ps, _ := ctx.Catalog.Lookup("partsupp")
	ps.Rows = append(ps.Rows, types.Row{types.NewInt(9), types.NewInt(0)})
	plan2 := core.NewProject(scan(ctx, "partsupp"),
		[]core.Expr{&core.BinOp{Op: "/", L: core.Col("ps_partkey"), R: core.Col("ps_suppkey")}}, nil)
	if _, err := Run(plan2, ctx); err == nil {
		t.Error("mid-stream division by zero must fail")
	}
}

func TestRuntimeTypeErrors(t *testing.T) {
	ctx := fixture(t)
	// Arithmetic on strings.
	bad := core.NewProject(scan(ctx, "part"),
		[]core.Expr{&core.BinOp{Op: "+", L: core.Col("p_name"), R: core.LitInt(1)}}, nil)
	if _, err := Run(bad, ctx); err == nil {
		t.Error("string arithmetic must fail")
	}
	// Sum over strings.
	agg := &core.AggOp{Input: scan(ctx, "part"),
		Aggs: []core.AggSpec{{Fn: "sum", Arg: core.Col("p_name"), As: "s"}}}
	if _, err := Run(agg, ctx); err == nil {
		t.Error("sum over strings must fail")
	}
	// abs of a string.
	absq := core.NewProject(scan(ctx, "part"),
		[]core.Expr{&core.Func{Name: "abs", Args: []core.Expr{core.Col("p_name")}}}, nil)
	if _, err := Run(absq, ctx); err == nil {
		t.Error("abs of string must fail")
	}
	// Unknown aggregate function.
	bad2 := &core.AggOp{Input: scan(ctx, "part"),
		Aggs: []core.AggSpec{{Fn: "median", Arg: core.Col("p_retailprice")}}}
	if _, err := Run(bad2, ctx); err == nil {
		t.Error("unknown aggregate must fail")
	}
}

func TestSortIsStable(t *testing.T) {
	ctx := fixture(t)
	// Sort by brand: rows within a brand must keep scan order.
	o := &core.OrderBy{Input: scan(ctx, "part"), Keys: []core.OrderKey{{Expr: core.Col("p_brand")}}}
	res := mustRun(t, o, ctx)
	var brandA []string
	for _, r := range res.Rows {
		if r[3].Str() == "Brand#A" {
			brandA = append(brandA, r[1].Str())
		}
	}
	if len(brandA) != 2 || brandA[0] != "bolt" || brandA[1] != "washer" {
		t.Errorf("stability violated: %v", brandA)
	}
}

func TestOrderByExpressionKey(t *testing.T) {
	ctx := fixture(t)
	// Sort by a computed key: price modulo-ish expression.
	o := &core.OrderBy{Input: scan(ctx, "part"), Keys: []core.OrderKey{
		{Expr: &core.BinOp{Op: "-", L: core.LitFloat(0), R: core.Col("p_retailprice")}},
	}}
	res := mustRun(t, o, ctx)
	if res.Rows[0][1].Str() != "screw" {
		t.Errorf("computed-key sort: %v", res.Rows)
	}
}

func TestNestedApplies(t *testing.T) {
	ctx := fixture(t)
	// Outer apply over suppliers; inner apply over their partsupps with
	// a second level of correlation back to the supplier row.
	level2 := &core.AggOp{
		Input: &core.Select{
			Input: scan(ctx, "partsupp"),
			Cond: &core.And{Ops: []core.Expr{
				&core.Cmp{Op: "=", L: core.Col("ps_suppkey"), R: &core.OuterRef{Table: "supplier", Name: "s_suppkey"}},
			}},
		},
		Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}},
	}
	level1 := &core.Apply{Outer: scan(ctx, "supplier"), Inner: level2}
	// Wrap again: count parts with partkey above that count (nonsense
	// predicate, but exercises two frames on the outer stack).
	level3 := &core.AggOp{
		Input: &core.Select{
			Input: scan(ctx, "part"),
			Cond:  &core.Cmp{Op: ">", L: core.Col("p_partkey"), R: &core.OuterRef{Name: "n"}},
		},
		Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "m"}},
	}
	plan := &core.Apply{Outer: level1, Inner: level3}
	res := mustRun(t, plan, ctx)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		n, m := r[2].Int(), r[3].Int()
		if m != 4-min64(n, 4) {
			t.Errorf("supplier %v: n=%d m=%d", r[0], n, m)
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestHashJoinResidualPredicate(t *testing.T) {
	ctx := fixture(t)
	// Equi pair plus a non-equi residual on the joined row.
	j := joined(ctx)
	j.Cond = &core.And{Ops: []core.Expr{
		j.Cond,
		&core.Cmp{Op: ">", L: core.QCol("part", "p_retailprice"), R: core.LitFloat(25)},
	}}
	res := mustRun(t, j, ctx)
	// washer(30) twice + screw(40) once.
	if len(res.Rows) != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestLeftOuterJoinWithResidual(t *testing.T) {
	ctx := fixture(t)
	j := &core.Join{
		Kind:  core.LeftOuterJoin,
		Left:  scan(ctx, "supplier"),
		Right: scan(ctx, "partsupp"),
		Cond: &core.And{Ops: []core.Expr{
			&core.Cmp{Op: "=", L: core.QCol("supplier", "s_suppkey"), R: core.QCol("partsupp", "ps_suppkey")},
			&core.Cmp{Op: "=", L: core.QCol("partsupp", "ps_partkey"), R: core.LitInt(3)},
		}},
	}
	res := mustRun(t, j, ctx)
	// s1 and s2 each match partkey 3 once; s3 padded.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	padded := 0
	for _, r := range res.Rows {
		if r[2].IsNull() {
			padded++
		}
	}
	if padded != 1 {
		t.Errorf("padded = %d", padded)
	}
}

func TestDistinctWithNullRows(t *testing.T) {
	ctx := fixture(t)
	part, _ := ctx.Catalog.Lookup("part")
	part.Rows = append(part.Rows,
		types.Row{types.NewInt(10), types.Null, types.Null, types.Null},
		types.Row{types.NewInt(11), types.Null, types.Null, types.Null})
	d := &core.Distinct{Input: core.ProjectCols(scan(ctx, "part"), []*core.ColRef{core.Col("p_name")})}
	res := mustRun(t, d, ctx)
	// 4 names + one NULL (NULLs deduplicate together).
	if len(res.Rows) != 5 {
		t.Errorf("distinct rows = %v", res.Rows)
	}
}

func TestEmptyTableEverywhere(t *testing.T) {
	ctx := fixture(t)
	part, _ := ctx.Catalog.Lookup("part")
	part.Rows = nil
	// Join with empty side.
	if res := mustRun(t, joined(ctx), ctx); len(res.Rows) != 0 {
		t.Error("join with empty side")
	}
	// GroupBy over empty join.
	gb := &core.GroupBy{Input: joined(ctx), GroupCols: []*core.ColRef{core.Col("ps_suppkey")},
		Aggs: []core.AggSpec{{Fn: "count", Star: true}}}
	if res := mustRun(t, gb, ctx); len(res.Rows) != 0 {
		t.Error("groupby over empty")
	}
	// GApply over empty outer.
	ga := core.NewGApply(joined(ctx), []*core.ColRef{core.Col("ps_suppkey")}, "g",
		&core.AggOp{Input: &core.GroupScan{Var: "g"}, Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}}})
	if res := mustRun(t, ga, ctx); len(res.Rows) != 0 {
		t.Error("gapply over empty outer")
	}
	// Sort and distinct over empty input.
	o := &core.OrderBy{Input: scan(ctx, "part"), Keys: []core.OrderKey{{Expr: core.Col("p_name")}}}
	if res := mustRun(t, o, ctx); len(res.Rows) != 0 {
		t.Error("sort over empty")
	}
}

func TestUnionInsideApplyReopens(t *testing.T) {
	// An Apply re-opens its inner per outer row; a union inner checks
	// every iterator's re-open path.
	ctx := fixture(t)
	inner := &core.UnionAll{Inputs: []core.Node{
		&core.AggOp{Input: &core.Select{
			Input: scan(ctx, "partsupp"),
			Cond:  &core.Cmp{Op: "=", L: core.Col("ps_suppkey"), R: &core.OuterRef{Table: "supplier", Name: "s_suppkey"}},
		}, Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}}},
		&core.AggOp{Input: scan(ctx, "partsupp"), Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}}},
	}}
	plan := &core.Apply{Outer: scan(ctx, "supplier"), Inner: inner}
	res := mustRun(t, plan, ctx)
	// 3 suppliers × 2 union branches.
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %v", res.Rows)
	}
	totals := 0
	for _, r := range res.Rows {
		if r[2].Int() == 5 {
			totals++ // the uncorrelated branch always counts all 5
		}
	}
	if totals != 3 {
		t.Errorf("uncorrelated branch rows = %d", totals)
	}
}

func TestGApplyInsideApplyReopens(t *testing.T) {
	// GApply as an apply inner must re-partition per outer row.
	ctx := fixture(t)
	ga := core.NewGApply(
		&core.Select{
			Input: scan(ctx, "partsupp"),
			Cond:  &core.Cmp{Op: "=", L: core.Col("ps_suppkey"), R: &core.OuterRef{Table: "supplier", Name: "s_suppkey"}},
		},
		[]*core.ColRef{core.Col("ps_suppkey")}, "gg",
		&core.AggOp{Input: &core.GroupScan{Var: "gg"}, Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}}})
	plan := &core.Apply{Outer: scan(ctx, "supplier"), Inner: ga}
	res := mustRun(t, plan, ctx)
	// Suppliers 1 and 2 produce one group each; supplier 3 produces none.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		want := int64(3)
		if r[0].Int() == 2 {
			want = 2
		}
		if r[3].Int() != want {
			t.Errorf("supplier %v count = %v", r[0], r[3])
		}
	}
}

func TestCountersAccounting(t *testing.T) {
	ctx := fixture(t)
	res := mustRun(t, gapplyQ1(ctx, core.PartitionHash), ctx)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	c := ctx.Counters
	if c.RowsScanned != 9 { // partsupp 5 + part 4
		t.Errorf("RowsScanned = %d", c.RowsScanned)
	}
	if c.Groups != 2 || c.InnerExecs != 2 {
		t.Errorf("groups = %d, innerExecs = %d", c.Groups, c.InnerExecs)
	}
	if c.GroupScanRows == 0 {
		t.Error("GroupScanRows not counted")
	}
}

func TestDateValuesFlowThrough(t *testing.T) {
	ctx := fixture(t)
	if err := func() error {
		_, err := ctx.Catalog.Lookup("events")
		return err
	}(); err == nil {
		t.Skip("events exists")
	}
	tab, err := ctx.Catalog.Create(dateTableDef())
	if err != nil {
		t.Fatal(err)
	}
	tab.Append(types.Row{types.NewInt(1), types.NewDate(100)})
	tab.Append(types.Row{types.NewInt(2), types.NewDate(50)})
	o := &core.OrderBy{Input: scan(ctx, "events"), Keys: []core.OrderKey{{Expr: core.Col("e_day")}}}
	res := mustRun(t, o, ctx)
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("date ordering: %v", res.Rows)
	}
	g := &core.GroupBy{Input: scan(ctx, "events"), GroupCols: []*core.ColRef{core.Col("e_day")},
		Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}}}
	if res := mustRun(t, g, ctx); len(res.Rows) != 2 {
		t.Errorf("date grouping: %v", res.Rows)
	}
}
