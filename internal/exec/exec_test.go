package exec

import (
	"strings"
	"testing"

	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

// fixture builds a small catalog:
//
//	supplier: (1, alpha) (2, beta) (3, gamma)        — gamma supplies nothing
//	part:     (1, bolt, 10, Brand#A) (2, nut, 20, Brand#B)
//	          (3, washer, 30, Brand#A) (4, screw, 40, Brand#B)
//	partsupp: s1 → p1, p2, p3;  s2 → p3, p4
func fixture(t *testing.T) *Context {
	t.Helper()
	cat := newTestCatalog(t)
	return NewContext(cat)
}

func newTestCatalog(t *testing.T) *catalogT {
	t.Helper()
	c := buildFixtureCatalog()
	return c
}

func scan(ctx *Context, table string) *core.Scan {
	tab, err := ctx.Catalog.Lookup(table)
	if err != nil {
		panic(err)
	}
	return &core.Scan{Table: table, Def: tab.Def}
}

// joined returns partsupp ⋈ part on partkey.
func joined(ctx *Context) *core.Join {
	return &core.Join{
		Left:  scan(ctx, "partsupp"),
		Right: scan(ctx, "part"),
		Cond:  &core.Cmp{Op: "=", L: core.QCol("partsupp", "ps_partkey"), R: core.QCol("part", "p_partkey")},
	}
}

func mustRun(t *testing.T, n core.Node, ctx *Context) *Result {
	t.Helper()
	res, err := Run(n, ctx)
	if err != nil {
		t.Fatalf("Run: %v\nplan:\n%s", err, core.Format(n))
	}
	return res
}

func TestTableScan(t *testing.T) {
	ctx := fixture(t)
	res := mustRun(t, scan(ctx, "part"), ctx)
	if len(res.Rows) != 4 {
		t.Fatalf("part scan = %d rows", len(res.Rows))
	}
	if ctx.Counters.RowsScanned != 4 {
		t.Errorf("RowsScanned = %d", ctx.Counters.RowsScanned)
	}
	if res.Schema.Cols[0].QualifiedName() != "part.p_partkey" {
		t.Errorf("schema = %v", res.Schema)
	}
}

func TestSelectAndProject(t *testing.T) {
	ctx := fixture(t)
	plan := core.NewProject(
		&core.Select{
			Input: scan(ctx, "part"),
			Cond:  &core.Cmp{Op: ">", L: core.Col("p_retailprice"), R: core.LitFloat(15)},
		},
		[]core.Expr{core.Col("p_name"), &core.BinOp{Op: "*", L: core.Col("p_retailprice"), R: core.LitInt(2)}},
		[]string{"", "twice"},
	)
	res := mustRun(t, plan, ctx)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "nut" || res.Rows[0][1].Float() != 40 {
		t.Errorf("first row = %v", res.Rows[0])
	}
}

func TestSelectNullSemantics(t *testing.T) {
	ctx := fixture(t)
	// p_retailprice <> p_retailprice is UNKNOWN only for NULL, false
	// otherwise, so nothing qualifies; NOT of it qualifies all non-NULL.
	sel := &core.Select{
		Input: scan(ctx, "part"),
		Cond:  &core.Cmp{Op: "<>", L: core.Col("p_retailprice"), R: core.Col("p_retailprice")},
	}
	if res := mustRun(t, sel, ctx); len(res.Rows) != 0 {
		t.Errorf("x <> x selected %d rows", len(res.Rows))
	}
}

func TestHashJoin(t *testing.T) {
	ctx := fixture(t)
	res := mustRun(t, joined(ctx), ctx)
	if len(res.Rows) != 5 {
		t.Fatalf("join rows = %d, want 5", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[0].Int() != r[2].Int() { // ps_partkey = p_partkey
			t.Errorf("join produced mismatched row %v", r)
		}
	}
	if ctx.Counters.JoinProbes != 5 {
		t.Errorf("JoinProbes = %d", ctx.Counters.JoinProbes)
	}
}

func TestNestedLoopsJoinMatchesHash(t *testing.T) {
	ctx := fixture(t)
	h := joined(ctx)
	hres := mustRun(t, h, ctx)
	n := joined(ctx)
	n.Method = core.JoinNestedLoops
	nres := mustRun(t, n, ctx)
	if len(hres.Rows) != len(nres.Rows) {
		t.Fatalf("hash %d vs nl %d rows", len(hres.Rows), len(nres.Rows))
	}
	// Same multiset of rows.
	seen := make(map[string]int)
	for _, r := range hres.Rows {
		seen[r.KeyAll()]++
	}
	for _, r := range nres.Rows {
		seen[r.KeyAll()]--
	}
	for k, v := range seen {
		if v != 0 {
			t.Errorf("row multiset mismatch at %q: %d", k, v)
		}
	}
}

func TestLeftOuterJoin(t *testing.T) {
	ctx := fixture(t)
	j := &core.Join{
		Kind:  core.LeftOuterJoin,
		Left:  scan(ctx, "supplier"),
		Right: scan(ctx, "partsupp"),
		Cond:  &core.Cmp{Op: "=", L: core.QCol("supplier", "s_suppkey"), R: core.QCol("partsupp", "ps_suppkey")},
	}
	res := mustRun(t, j, ctx)
	// s1 has 3 partsupps, s2 has 2, s3 none but is padded: 6 rows.
	if len(res.Rows) != 6 {
		t.Fatalf("left outer rows = %d, want 6", len(res.Rows))
	}
	padded := 0
	for _, r := range res.Rows {
		if r[2].IsNull() {
			padded++
			if r[0].Int() != 3 {
				t.Errorf("padded row for supplier %v, want 3", r[0])
			}
		}
	}
	if padded != 1 {
		t.Errorf("padded rows = %d", padded)
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	ctx := fixture(t)
	// Add a partsupp row with NULL partkey; inner join must drop it.
	ps, _ := ctx.Catalog.Lookup("partsupp")
	ps.Rows = append(ps.Rows, types.Row{types.Null, types.NewInt(1)})
	res := mustRun(t, joined(ctx), ctx)
	if len(res.Rows) != 5 {
		t.Errorf("NULL key row joined: %d rows", len(res.Rows))
	}
}

func TestGroupBy(t *testing.T) {
	ctx := fixture(t)
	g := &core.GroupBy{
		Input:     joined(ctx),
		GroupCols: []*core.ColRef{core.Col("ps_suppkey")},
		Aggs: []core.AggSpec{
			{Fn: "avg", Arg: core.Col("p_retailprice"), As: "avgprice"},
			{Fn: "count", Star: true, As: "n"},
			{Fn: "min", Arg: core.Col("p_name"), As: "first_name"},
		},
	}
	res := mustRun(t, g, ctx)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	byKey := map[int64]types.Row{}
	for _, r := range res.Rows {
		byKey[r[0].Int()] = r
	}
	if r := byKey[1]; r[1].Float() != 20 || r[2].Int() != 3 || r[3].Str() != "bolt" {
		t.Errorf("supplier 1 aggregates = %v", r)
	}
	if r := byKey[2]; r[1].Float() != 35 || r[2].Int() != 2 {
		t.Errorf("supplier 2 aggregates = %v", r)
	}
}

func TestGroupByEmptyInputIsEmpty(t *testing.T) {
	ctx := fixture(t)
	g := &core.GroupBy{
		Input: &core.Select{
			Input: scan(ctx, "part"),
			Cond:  &core.Cmp{Op: ">", L: core.Col("p_retailprice"), R: core.LitFloat(1e9)},
		},
		GroupCols: []*core.ColRef{core.Col("p_brand")},
		Aggs:      []core.AggSpec{{Fn: "count", Star: true}},
	}
	if res := mustRun(t, g, ctx); len(res.Rows) != 0 {
		t.Errorf("groupby of empty input = %v", res.Rows)
	}
}

func TestScalarAggEmptyInput(t *testing.T) {
	ctx := fixture(t)
	a := &core.AggOp{
		Input: &core.Select{
			Input: scan(ctx, "part"),
			Cond:  &core.Cmp{Op: ">", L: core.Col("p_retailprice"), R: core.LitFloat(1e9)},
		},
		Aggs: []core.AggSpec{
			{Fn: "count", Star: true, As: "n"},
			{Fn: "avg", Arg: core.Col("p_retailprice"), As: "a"},
			{Fn: "sum", Arg: core.Col("p_retailprice"), As: "s"},
			{Fn: "min", Arg: core.Col("p_retailprice"), As: "lo"},
		},
	}
	res := mustRun(t, a, ctx)
	if len(res.Rows) != 1 {
		t.Fatalf("scalar agg of empty input must emit one row, got %d", len(res.Rows))
	}
	r := res.Rows[0]
	if r[0].Int() != 0 || !r[1].IsNull() || !r[2].IsNull() || !r[3].IsNull() {
		t.Errorf("empty-input aggregates = %v (want 0, NULL, NULL, NULL)", r)
	}
}

func TestAggregateDistinctAndNulls(t *testing.T) {
	ctx := fixture(t)
	part, _ := ctx.Catalog.Lookup("part")
	part.Rows = append(part.Rows, types.Row{types.NewInt(5), types.NewString("rivet"), types.Null, types.NewString("Brand#A")})
	a := &core.AggOp{
		Input: scan(ctx, "part"),
		Aggs: []core.AggSpec{
			{Fn: "count", Star: true, As: "all"},
			{Fn: "count", Arg: core.Col("p_retailprice"), As: "nonnull"},
			{Fn: "count", Arg: core.Col("p_brand"), Distinct: true, As: "brands"},
			{Fn: "sum", Arg: core.Col("p_retailprice"), As: "total"},
		},
	}
	res := mustRun(t, a, ctx)
	r := res.Rows[0]
	if r[0].Int() != 5 {
		t.Errorf("count(*) = %v", r[0])
	}
	if r[1].Int() != 4 {
		t.Errorf("count(col) must skip NULL: %v", r[1])
	}
	if r[2].Int() != 2 {
		t.Errorf("count(distinct brand) = %v", r[2])
	}
	if r[3].Float() != 100 {
		t.Errorf("sum = %v", r[3])
	}
}

func TestSumIntegerStaysInteger(t *testing.T) {
	ctx := fixture(t)
	a := &core.AggOp{
		Input: scan(ctx, "partsupp"),
		Aggs:  []core.AggSpec{{Fn: "sum", Arg: core.Col("ps_partkey"), As: "s"}},
	}
	res := mustRun(t, a, ctx)
	if res.Rows[0][0].K != types.KindInt || res.Rows[0][0].Int() != 13 {
		t.Errorf("sum of int column = %v", res.Rows[0][0])
	}
}

func TestOrderBy(t *testing.T) {
	ctx := fixture(t)
	o := &core.OrderBy{
		Input: scan(ctx, "part"),
		Keys:  []core.OrderKey{{Expr: core.Col("p_retailprice"), Desc: true}},
	}
	res := mustRun(t, o, ctx)
	prices := make([]float64, len(res.Rows))
	for i, r := range res.Rows {
		prices[i] = r[2].Float()
	}
	for i := 1; i < len(prices); i++ {
		if prices[i] > prices[i-1] {
			t.Fatalf("not descending: %v", prices)
		}
	}
}

func TestDistinct(t *testing.T) {
	ctx := fixture(t)
	d := &core.Distinct{Input: core.ProjectCols(joined(ctx), []*core.ColRef{core.Col("ps_suppkey")})}
	res := mustRun(t, d, ctx)
	if len(res.Rows) != 2 {
		t.Errorf("distinct suppliers = %d", len(res.Rows))
	}
}

func TestUnionAll(t *testing.T) {
	ctx := fixture(t)
	p := core.ProjectCols(scan(ctx, "part"), []*core.ColRef{core.Col("p_partkey")})
	u := &core.UnionAll{Inputs: []core.Node{p, p, p}}
	res := mustRun(t, u, ctx)
	if len(res.Rows) != 12 {
		t.Errorf("union all = %d rows", len(res.Rows))
	}
	// Arity mismatch is rejected at build time.
	bad := &core.UnionAll{Inputs: []core.Node{p, scan(ctx, "part")}}
	if _, err := Run(bad, ctx); err == nil {
		t.Error("union arity mismatch must fail")
	}
}

func TestExistsOperator(t *testing.T) {
	ctx := fixture(t)
	nonEmpty := &core.Exists{Input: scan(ctx, "part")}
	res := mustRun(t, nonEmpty, ctx)
	if len(res.Rows) != 1 || len(res.Rows[0]) != 0 {
		t.Errorf("exists(nonempty) = %v", res.Rows)
	}
	empty := &core.Exists{Input: &core.Select{
		Input: scan(ctx, "part"),
		Cond:  &core.Cmp{Op: "<", L: core.Col("p_retailprice"), R: core.LitFloat(0)},
	}}
	if res := mustRun(t, empty, ctx); len(res.Rows) != 0 {
		t.Errorf("exists(empty) = %v", res.Rows)
	}
	negated := &core.Exists{Negated: true, Input: empty.Input}
	if res := mustRun(t, negated, ctx); len(res.Rows) != 1 {
		t.Errorf("not exists(empty) = %v", res.Rows)
	}
}

func TestApplyCorrelated(t *testing.T) {
	ctx := fixture(t)
	// For each supplier, count its partsupp rows via a correlated inner.
	inner := &core.AggOp{
		Input: &core.Select{
			Input: scan(ctx, "partsupp"),
			Cond:  &core.Cmp{Op: "=", L: core.Col("ps_suppkey"), R: &core.OuterRef{Table: "supplier", Name: "s_suppkey"}},
		},
		Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}},
	}
	a := &core.Apply{Outer: scan(ctx, "supplier"), Inner: inner}
	res := mustRun(t, a, ctx)
	if len(res.Rows) != 3 {
		t.Fatalf("apply rows = %d", len(res.Rows))
	}
	want := map[int64]int64{1: 3, 2: 2, 3: 0}
	for _, r := range res.Rows {
		if r[2].Int() != want[r[0].Int()] {
			t.Errorf("supplier %v count = %v, want %v", r[0], r[2], want[r[0].Int()])
		}
	}
	if ctx.Counters.ApplyExecs != 3 {
		t.Errorf("ApplyExecs = %d (correlated must re-execute per row)", ctx.Counters.ApplyExecs)
	}
	if ctx.Counters.ApplyCacheHits != 0 {
		t.Errorf("correlated inner must not be cached")
	}
}

func TestApplyUncorrelatedCached(t *testing.T) {
	ctx := fixture(t)
	inner := &core.AggOp{
		Input: scan(ctx, "part"),
		Aggs:  []core.AggSpec{{Fn: "avg", Arg: core.Col("p_retailprice"), As: "a"}},
	}
	a := &core.Apply{Outer: scan(ctx, "supplier"), Inner: inner}
	res := mustRun(t, a, ctx)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[2].Float() != 25 {
			t.Errorf("avg = %v", r[2])
		}
	}
	if ctx.Counters.ApplyExecs != 1 {
		t.Errorf("ApplyExecs = %d, want 1 (uncorrelated cache)", ctx.Counters.ApplyExecs)
	}
	if ctx.Counters.ApplyCacheHits != 2 {
		t.Errorf("ApplyCacheHits = %d, want 2", ctx.Counters.ApplyCacheHits)
	}
}

func TestApplyExistsSelectsRows(t *testing.T) {
	ctx := fixture(t)
	// Suppliers that supply some part: Apply + Exists keeps the outer row
	// exactly when the inner is nonempty (S × {φ} = S).
	inner := &core.Exists{Input: &core.Select{
		Input: scan(ctx, "partsupp"),
		Cond:  &core.Cmp{Op: "=", L: core.Col("ps_suppkey"), R: &core.OuterRef{Table: "supplier", Name: "s_suppkey"}},
	}}
	a := &core.Apply{Outer: scan(ctx, "supplier"), Inner: inner}
	res := mustRun(t, a, ctx)
	if len(res.Rows) != 2 {
		t.Fatalf("semijoin rows = %d", len(res.Rows))
	}
	if res.Schema.Len() != 2 {
		t.Errorf("apply+exists schema = %v (must equal outer schema)", res.Schema)
	}
}

func TestOuterApplyPadsNulls(t *testing.T) {
	ctx := fixture(t)
	inner := &core.Select{
		Input: scan(ctx, "partsupp"),
		Cond: &core.And{Ops: []core.Expr{
			&core.Cmp{Op: "=", L: core.Col("ps_suppkey"), R: &core.OuterRef{Table: "supplier", Name: "s_suppkey"}},
			&core.Cmp{Op: "=", L: core.Col("ps_partkey"), R: core.LitInt(1)},
		}},
	}
	a := &core.Apply{Outer: scan(ctx, "supplier"), Inner: inner, Kind: core.OuterApply}
	res := mustRun(t, a, ctx)
	if len(res.Rows) != 3 {
		t.Fatalf("outer apply rows = %d", len(res.Rows))
	}
	nulls := 0
	for _, r := range res.Rows {
		if r[2].IsNull() && r[3].IsNull() {
			nulls++
		}
	}
	if nulls != 2 {
		t.Errorf("padded rows = %d, want 2 (suppliers 2 and 3)", nulls)
	}
}

func TestResultString(t *testing.T) {
	ctx := fixture(t)
	res := mustRun(t, scan(ctx, "supplier"), ctx)
	s := res.String()
	if !strings.Contains(s, "supplier.s_suppkey") || !strings.Contains(s, "gamma") {
		t.Errorf("Result.String:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // header, rule, 3 rows
		t.Errorf("line count = %d:\n%s", len(lines), s)
	}
}

func TestBuildErrors(t *testing.T) {
	ctx := fixture(t)
	// Unknown column.
	bad := &core.Select{Input: scan(ctx, "part"), Cond: &core.Cmp{Op: "=", L: core.Col("nosuch"), R: core.LitInt(1)}}
	if _, err := Run(bad, ctx); err == nil {
		t.Error("unknown column must fail at build")
	}
	// Unknown table.
	if _, err := Run(&core.Scan{Table: "nosuch"}, ctx); err == nil {
		t.Error("unknown table must fail")
	}
	// Unbound group variable fails at Open.
	gs := &core.GroupScan{Var: "nope", Sch: schema.New()}
	if _, err := Run(gs, ctx); err == nil {
		t.Error("unbound group var must fail")
	}
	// Unresolvable outer ref fails at build.
	badOuter := &core.Select{Input: scan(ctx, "part"), Cond: &core.Cmp{Op: "=", L: &core.OuterRef{Name: "zzz"}, R: core.LitInt(1)}}
	if _, err := Run(&core.Apply{Outer: scan(ctx, "supplier"), Inner: badOuter}, ctx); err == nil {
		t.Error("unresolvable outer ref must fail")
	}
	// Un-normalized subquery expression is rejected.
	sq := &core.Select{Input: scan(ctx, "part"), Cond: &core.ExistsExpr{Plan: scan(ctx, "part")}}
	if _, err := Run(sq, ctx); err == nil {
		t.Error("raw ExistsExpr must be rejected by the executor")
	}
}
