package exec

import (
	"gapplydb/internal/types"
)

// bApply is the batch counterpart of apply: it re-executes (or serves
// from the uncorrelated cache) the inner tree once per outer row,
// emitting concatenated rows in batches capped at batchSize. The outer
// stack push/pop around the inner drain is identical to the row engine,
// so correlated expressions compiled with OuterRefs work unchanged.
type bApply struct {
	outer, inner BatchIterator
	ctx          *Context
	outerApply   bool
	innerArity   int
	width        int
	uncorrelated bool

	cache        []types.Row
	cacheVersion uint64
	cacheValid   bool

	ob      *Batch // current outer batch
	oi      int    // next live index within ob
	cur     types.Row
	results []types.Row
	rpos    int
	nulls   types.Row

	outBuf joinOut
	out    Batch
}

func (a *bApply) Open() error {
	a.ob, a.oi = nil, 0
	a.cur, a.results, a.rpos = nil, nil, 0
	a.cacheValid = false
	if a.nulls == nil {
		a.nulls = make(types.Row, a.innerArity)
	}
	a.outBuf.width = a.width
	return a.outer.Open()
}

func (a *bApply) innerRows() ([]types.Row, error) {
	if a.uncorrelated {
		if a.cacheValid && a.cacheVersion == a.ctx.version {
			a.ctx.Counters.ApplyCacheHits++
			return a.cache, nil
		}
	}
	a.ctx.Counters.ApplyExecs++
	rows, err := drainBatchRows(a.inner, a.ctx)
	if err != nil {
		return nil, err
	}
	if a.uncorrelated {
		a.cache, a.cacheVersion, a.cacheValid = rows, a.ctx.version, true
	}
	return rows, nil
}

// advanceOuter claims the next outer row and evaluates its inner rows.
func (a *bApply) advanceOuter() (bool, error) {
	for a.ob == nil || a.oi >= a.ob.Len() {
		b, err := a.outer.NextBatch()
		if err != nil {
			return false, err
		}
		if b == nil {
			return false, nil
		}
		a.ob, a.oi = b, 0
	}
	a.cur = a.ob.Row(a.oi)
	a.oi++
	a.ctx.pushOuter(a.cur)
	rows, err := a.innerRows()
	a.ctx.popOuter()
	if err != nil {
		return false, err
	}
	a.results, a.rpos = rows, 0
	return true, nil
}

func (a *bApply) NextBatch() (*Batch, error) {
	a.outBuf.reset()
	for len(a.outBuf.rows) < batchSize {
		if a.cur == nil {
			ok, err := a.advanceOuter()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if len(a.results) == 0 && a.outerApply {
				a.outBuf.add(a.cur, a.nulls)
				a.cur = nil
				continue
			}
		}
		for a.rpos < len(a.results) && len(a.outBuf.rows) < batchSize {
			a.outBuf.add(a.cur, a.results[a.rpos])
			a.rpos++
		}
		if a.rpos >= len(a.results) {
			a.cur = nil
		}
	}
	if len(a.outBuf.rows) == 0 {
		return nil, nil
	}
	a.out = Batch{Rows: a.outBuf.rows}
	return &a.out, nil
}

func (a *bApply) Close() error {
	a.results, a.cache = nil, nil
	a.cacheValid = false
	a.ob = nil
	return a.outer.Close()
}
