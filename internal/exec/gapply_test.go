package exec

import (
	"testing"
	"testing/quick"

	"gapplydb/internal/core"
	"gapplydb/internal/types"
)

// gapplyQ1 builds the paper's Q1 plan (Figure 2): for each supplier, all
// part names and prices plus the average price, via one join and a
// per-group union.
func gapplyQ1(ctx *Context, hint core.PartitionHint) *core.GApply {
	gs := func() *core.GroupScan { return &core.GroupScan{Var: "tmpSupp"} }
	pgq := &core.UnionAll{Inputs: []core.Node{
		core.NewProject(gs(),
			[]core.Expr{core.Col("p_name"), core.Col("p_retailprice"), &core.Lit{}},
			[]string{"name", "price", "avgprice"}),
		core.NewProject(
			&core.AggOp{Input: gs(), Aggs: []core.AggSpec{{Fn: "avg", Arg: core.Col("p_retailprice"), As: "a"}}},
			[]core.Expr{&core.Lit{}, &core.Lit{}, core.Col("a")},
			[]string{"name", "price", "avgprice"}),
	}}
	ga := core.NewGApply(joined(ctx), []*core.ColRef{core.Col("ps_suppkey")}, "tmpSupp", pgq)
	ga.Partition = hint
	return ga
}

func TestGApplyQ1(t *testing.T) {
	for _, hint := range []core.PartitionHint{core.PartitionHash, core.PartitionSort} {
		ctx := fixture(t)
		res := mustRun(t, gapplyQ1(ctx, hint), ctx)
		// Supplier 1: 3 parts + 1 avg row; supplier 2: 2 parts + 1 avg row.
		if len(res.Rows) != 7 {
			t.Fatalf("[%v] rows = %d, want 7", hint, len(res.Rows))
		}
		if res.Schema.Len() != 4 {
			t.Fatalf("[%v] schema = %v", hint, res.Schema)
		}
		avgs := map[int64]float64{}
		parts := map[int64]int{}
		for _, r := range res.Rows {
			if !r[3].IsNull() {
				avgs[r[0].Int()] = r[3].Float()
			} else {
				parts[r[0].Int()]++
			}
		}
		if avgs[1] != 20 || avgs[2] != 35 {
			t.Errorf("[%v] avgs = %v", hint, avgs)
		}
		if parts[1] != 3 || parts[2] != 2 {
			t.Errorf("[%v] part rows = %v", hint, parts)
		}
		if ctx.Counters.Groups != 2 || ctx.Counters.InnerExecs != 2 {
			t.Errorf("[%v] counters = %+v", hint, ctx.Counters)
		}
	}
}

// clustered verifies rows are clustered on column 0 — each key appears in
// one contiguous run, the property the constant-space tagger needs.
func clustered(rows []types.Row) bool {
	seen := map[string]bool{}
	var cur string
	first := true
	for _, r := range rows {
		k := r.Key([]int{0})
		if first || k != cur {
			if seen[k] {
				return false
			}
			seen[k] = true
			cur, first = k, false
		}
	}
	return true
}

func TestGApplyOutputClustered(t *testing.T) {
	for _, hint := range []core.PartitionHint{core.PartitionHash, core.PartitionSort} {
		ctx := fixture(t)
		res := mustRun(t, gapplyQ1(ctx, hint), ctx)
		if !clustered(res.Rows) {
			t.Errorf("[%v] output not clustered by group key:\n%v", hint, res.Rows)
		}
	}
}

func TestGApplySortPartitionOrdersGroups(t *testing.T) {
	ctx := fixture(t)
	res := mustRun(t, gapplyQ1(ctx, core.PartitionSort), ctx)
	last := int64(-1 << 62)
	for _, r := range res.Rows {
		if k := r[0].Int(); k < last {
			t.Fatalf("sort partitioning must emit groups in key order: %v", res.Rows)
		} else {
			last = k
		}
	}
}

// gapplyQ2 builds the paper's Q2: per supplier, count parts priced at or
// above / below the group average, with the average computed by an
// uncorrelated-within-group scalar subquery (Apply + AggOp).
func gapplyQ2(ctx *Context) *core.GApply {
	gs := func() *core.GroupScan { return &core.GroupScan{Var: "tmpSupp"} }
	avgSub := func() core.Node {
		return &core.AggOp{Input: gs(), Aggs: []core.AggSpec{{Fn: "avg", Arg: core.Col("p_retailprice"), As: "gavg"}}}
	}
	branch := func(op string, outName string, otherName string) core.Node {
		// Apply(group, avg) ⇒ group rows extended with gavg; filter; count.
		app := &core.Apply{Outer: gs(), Inner: avgSub()}
		sel := &core.Select{Input: app, Cond: &core.Cmp{Op: op, L: core.Col("p_retailprice"), R: core.Col("gavg")}}
		agg := &core.AggOp{Input: sel, Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "c"}}}
		if outName == "count_above" {
			return core.NewProject(agg, []core.Expr{core.Col("c"), &core.Lit{}}, []string{outName, otherName})
		}
		return core.NewProject(agg, []core.Expr{&core.Lit{}, core.Col("c")}, []string{otherName, outName})
	}
	pgq := &core.UnionAll{Inputs: []core.Node{
		branch(">=", "count_above", "count_below"),
		branch("<", "count_below", "count_above"),
	}}
	return core.NewGApply(joined(ctx), []*core.ColRef{core.Col("ps_suppkey")}, "tmpSupp", pgq)
}

func TestGApplyQ2(t *testing.T) {
	ctx := fixture(t)
	res := mustRun(t, gapplyQ2(ctx), ctx)
	// Two rows per supplier (one per union branch).
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	above := map[int64]int64{}
	below := map[int64]int64{}
	for _, r := range res.Rows {
		if !r[1].IsNull() {
			above[r[0].Int()] = r[1].Int()
		}
		if !r[2].IsNull() {
			below[r[0].Int()] = r[2].Int()
		}
	}
	// Supplier 1: prices 10,20,30 avg 20 → 2 at-or-above, 1 below.
	// Supplier 2: prices 30,40 avg 35 → 1 at-or-above, 1 below.
	if above[1] != 2 || below[1] != 1 {
		t.Errorf("supplier 1: above=%d below=%d", above[1], below[1])
	}
	if above[2] != 1 || below[2] != 1 {
		t.Errorf("supplier 2: above=%d below=%d", above[2], below[2])
	}
}

func TestGApplyInnerCacheInvalidatedPerGroup(t *testing.T) {
	// The avg subquery inside Q2 is uncorrelated, but its value must be
	// recomputed for each group — the binding bump must invalidate the
	// apply cache. The expected counts in TestGApplyQ2 already prove
	// correctness; here we pin the mechanism.
	ctx := fixture(t)
	mustRun(t, gapplyQ2(ctx), ctx)
	// 2 groups × 2 branches: the first branch per group executes the avg,
	// the second reuses it only if the binding hasn't changed. Binding
	// changes once per group, so at least 2 executions must happen.
	if ctx.Counters.ApplyExecs < 2 {
		t.Errorf("ApplyExecs = %d, want ≥ 2 (one per group)", ctx.Counters.ApplyExecs)
	}
	if ctx.Counters.ApplyExecs > 4 {
		t.Errorf("ApplyExecs = %d, want ≤ 4 (cached within group)", ctx.Counters.ApplyExecs)
	}
}

func TestGApplyGroupSelectionShape(t *testing.T) {
	// PGQ = Apply(group, Exists(σ_{price>35}(group))): return the whole
	// group when it contains an expensive part (paper §4.2's example).
	ctx := fixture(t)
	gs := func() *core.GroupScan { return &core.GroupScan{Var: "g"} }
	pgq := &core.Apply{
		Outer: gs(),
		Inner: &core.Exists{Input: &core.Select{
			Input: gs(),
			Cond:  &core.Cmp{Op: ">", L: core.Col("p_retailprice"), R: core.LitFloat(35)},
		}},
	}
	ga := core.NewGApply(joined(ctx), []*core.ColRef{core.Col("ps_suppkey")}, "g", pgq)
	res := mustRun(t, ga, ctx)
	// Only supplier 2 has a part > 35 (screw at 40); its whole group (2
	// rows) is returned.
	if len(res.Rows) != 2 {
		t.Fatalf("group selection rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[0].Int() != 2 {
			t.Errorf("wrong group selected: %v", r)
		}
	}
}

func TestGApplyEmptyOuter(t *testing.T) {
	ctx := fixture(t)
	outer := &core.Select{
		Input: joined(ctx),
		Cond:  &core.Cmp{Op: "<", L: core.Col("p_retailprice"), R: core.LitFloat(0)},
	}
	gs := &core.GroupScan{Var: "g"}
	pgq := &core.AggOp{Input: gs, Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}}}
	ga := core.NewGApply(outer, []*core.ColRef{core.Col("ps_suppkey")}, "g", pgq)
	res := mustRun(t, ga, ctx)
	// No groups at all ⇒ empty result (distinct over empty outer),
	// matching the formal semantics ∪ over distinct(π_C(RE1)) = ∅.
	if len(res.Rows) != 0 {
		t.Errorf("GApply over empty outer = %v", res.Rows)
	}
}

func TestGApplyMultipleGroupColumns(t *testing.T) {
	// Group by (ps_suppkey, p_brand) — Q4's shape uses two grouping
	// columns; verify keys cross correctly.
	ctx := fixture(t)
	gs := &core.GroupScan{Var: "g"}
	pgq := &core.AggOp{Input: gs, Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}}}
	ga := core.NewGApply(joined(ctx),
		[]*core.ColRef{core.Col("ps_suppkey"), core.Col("p_brand")}, "g", pgq)
	res := mustRun(t, ga, ctx)
	counts := map[string]int64{}
	for _, r := range res.Rows {
		counts[r[0].String()+"/"+r[1].Str()] = r[2].Int()
	}
	want := map[string]int64{"1/Brand#A": 2, "1/Brand#B": 1, "2/Brand#A": 1, "2/Brand#B": 1}
	if len(counts) != len(want) {
		t.Fatalf("groups = %v", counts)
	}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("group %s = %d, want %d", k, counts[k], v)
		}
	}
}

func TestGApplyFormalSemantics(t *testing.T) {
	// Property: for random multisets, GApply(C, PGQ=count(*)) equals a
	// hand-computed group count, for both partition strategies — checking
	// the formal definition ∪_{c} ({c} × PGQ(σ_{C=c} RE1)).
	f := func(keys []uint8) bool {
		if len(keys) == 0 {
			return true
		}
		cat := buildFixtureCatalog()
		tab, err := cat.Lookup("partsupp")
		if err != nil {
			return false
		}
		tab.Rows = nil
		for i, k := range keys {
			tab.Rows = append(tab.Rows, types.Row{types.NewInt(int64(i)), types.NewInt(int64(k % 8))})
		}
		want := map[int64]int64{}
		for _, k := range keys {
			want[int64(k%8)]++
		}
		for _, hint := range []core.PartitionHint{core.PartitionHash, core.PartitionSort} {
			ctx := NewContext(cat)
			gs := &core.GroupScan{Var: "g"}
			pgq := &core.AggOp{Input: gs, Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}}}
			ga := core.NewGApply(scan(ctx, "partsupp"), []*core.ColRef{core.Col("ps_suppkey")}, "g", pgq)
			ga.Partition = hint
			res, err := Run(ga, ctx)
			if err != nil {
				return false
			}
			if len(res.Rows) != len(want) {
				return false
			}
			for _, r := range res.Rows {
				if want[r[0].Int()] != r[1].Int() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
