package exec

import (
	"fmt"
	"strings"

	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

// evalFn evaluates a compiled expression against an input row.
type evalFn func(row types.Row, ctx *Context) (types.Value, error)

// compileEnv is the compile-time stack of enclosing Apply outer schemas,
// innermost last; OuterRefs resolve against it to a (depth, ordinal).
type compileEnv []*schema.Schema

// push returns the env extended with one more outer schema.
func (e compileEnv) push(s *schema.Schema) compileEnv {
	out := make(compileEnv, len(e)+1)
	copy(out, e)
	out[len(e)] = s
	return out
}

// compileExpr compiles a scalar expression against an input schema.
func compileExpr(e core.Expr, in *schema.Schema, env compileEnv) (evalFn, error) {
	switch x := e.(type) {
	case *core.ColRef:
		ord, err := in.Resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return func(row types.Row, _ *Context) (types.Value, error) {
			return row[ord], nil
		}, nil

	case *core.OuterRef:
		// Resolve from the innermost enclosing outer schema out.
		for depth := 0; depth < len(env); depth++ {
			sch := env[len(env)-1-depth]
			if ord, err := sch.Resolve(x.Table, x.Name); err == nil {
				d := depth
				return func(_ types.Row, ctx *Context) (types.Value, error) {
					return ctx.outerAt(d)[ord], nil
				}, nil
			}
		}
		return nil, fmt.Errorf("exec: outer reference %s does not resolve in any enclosing scope", x)

	case *core.Lit:
		v := x.V
		return func(types.Row, *Context) (types.Value, error) { return v, nil }, nil

	case *core.BinOp:
		l, err := compileExpr(x.L, in, env)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(x.R, in, env)
		if err != nil {
			return nil, err
		}
		var op func(a, b types.Value) (types.Value, error)
		switch x.Op {
		case "+":
			op = types.Add
		case "-":
			op = types.Sub
		case "*":
			op = types.Mul
		case "/":
			op = types.Div
		default:
			return nil, fmt.Errorf("exec: unknown arithmetic operator %q", x.Op)
		}
		return func(row types.Row, ctx *Context) (types.Value, error) {
			a, err := l(row, ctx)
			if err != nil {
				return types.Null, err
			}
			b, err := r(row, ctx)
			if err != nil {
				return types.Null, err
			}
			return op(a, b)
		}, nil

	case *core.Cmp:
		l, err := compileExpr(x.L, in, env)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(x.R, in, env)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(row types.Row, ctx *Context) (types.Value, error) {
			a, err := l(row, ctx)
			if err != nil {
				return types.Null, err
			}
			b, err := r(row, ctx)
			if err != nil {
				return types.Null, err
			}
			c, ok := types.Compare(a, b)
			if !ok {
				return types.Unknown.Value(), nil
			}
			var t types.Tri
			switch op {
			case "=":
				t = types.TriOf(c == 0)
			case "<>", "!=":
				t = types.TriOf(c != 0)
			case "<":
				t = types.TriOf(c < 0)
			case "<=":
				t = types.TriOf(c <= 0)
			case ">":
				t = types.TriOf(c > 0)
			case ">=":
				t = types.TriOf(c >= 0)
			default:
				return types.Null, fmt.Errorf("exec: unknown comparison %q", op)
			}
			return t.Value(), nil
		}, nil

	case *core.And:
		ops, err := compileAll(x.Ops, in, env)
		if err != nil {
			return nil, err
		}
		return func(row types.Row, ctx *Context) (types.Value, error) {
			acc := types.True
			for _, f := range ops {
				v, err := f(row, ctx)
				if err != nil {
					return types.Null, err
				}
				acc = acc.And(triOf(v))
				if acc == types.False {
					break
				}
			}
			return acc.Value(), nil
		}, nil

	case *core.Or:
		ops, err := compileAll(x.Ops, in, env)
		if err != nil {
			return nil, err
		}
		return func(row types.Row, ctx *Context) (types.Value, error) {
			acc := types.False
			for _, f := range ops {
				v, err := f(row, ctx)
				if err != nil {
					return types.Null, err
				}
				acc = acc.Or(triOf(v))
				if acc == types.True {
					break
				}
			}
			return acc.Value(), nil
		}, nil

	case *core.Not:
		f, err := compileExpr(x.Op, in, env)
		if err != nil {
			return nil, err
		}
		return func(row types.Row, ctx *Context) (types.Value, error) {
			v, err := f(row, ctx)
			if err != nil {
				return types.Null, err
			}
			return triOf(v).Not().Value(), nil
		}, nil

	case *core.Func:
		args, err := compileAll(x.Args, in, env)
		if err != nil {
			return nil, err
		}
		switch strings.ToLower(x.Name) {
		case "coalesce":
			return func(row types.Row, ctx *Context) (types.Value, error) {
				for _, f := range args {
					v, err := f(row, ctx)
					if err != nil {
						return types.Null, err
					}
					if !v.IsNull() {
						return v, nil
					}
				}
				return types.Null, nil
			}, nil
		case "abs":
			if len(args) != 1 {
				return nil, fmt.Errorf("exec: abs takes one argument")
			}
			return func(row types.Row, ctx *Context) (types.Value, error) {
				v, err := args[0](row, ctx)
				if err != nil || v.IsNull() {
					return types.Null, err
				}
				switch v.K {
				case types.KindInt:
					if v.I < 0 {
						return types.NewInt(-v.I), nil
					}
					return v, nil
				case types.KindFloat:
					if v.F < 0 {
						return types.NewFloat(-v.F), nil
					}
					return v, nil
				default:
					return types.Null, fmt.Errorf("exec: abs of %s", v.K)
				}
			}, nil
		default:
			return nil, fmt.Errorf("exec: unknown function %q", x.Name)
		}

	case *core.ScalarSubquery, *core.ExistsExpr:
		return nil, fmt.Errorf("exec: un-normalized subquery reached the executor; the binder must rewrite it into Apply")

	default:
		return nil, fmt.Errorf("exec: unknown expression %T", e)
	}
}

func compileAll(exprs []core.Expr, in *schema.Schema, env compileEnv) ([]evalFn, error) {
	out := make([]evalFn, len(exprs))
	for i, e := range exprs {
		f, err := compileExpr(e, in, env)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// triOf interprets a value as a predicate result.
func triOf(v types.Value) types.Tri {
	if v.IsNull() {
		return types.Unknown
	}
	return types.TriOf(v.Bool())
}

// compilePredicate wraps compileExpr for WHERE-style conditions: the
// returned function is true only when the expression is True (NULL and
// false both reject the row).
func compilePredicate(e core.Expr, in *schema.Schema, env compileEnv) (func(types.Row, *Context) (bool, error), error) {
	if e == nil {
		return func(types.Row, *Context) (bool, error) { return true, nil }, nil
	}
	f, err := compileExpr(e, in, env)
	if err != nil {
		return nil, err
	}
	return func(row types.Row, ctx *Context) (bool, error) {
		v, err := f(row, ctx)
		if err != nil {
			return false, err
		}
		return triOf(v) == types.True, nil
	}, nil
}
