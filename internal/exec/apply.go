package exec

import (
	"gapplydb/internal/core"
	"gapplydb/internal/types"
)

func buildApply(a *core.Apply, ctx *Context, env compileEnv) (Iterator, error) {
	outer, err := build(a.Outer, ctx, env)
	if err != nil {
		return nil, err
	}
	outerSchema := a.Outer.Schema()
	inner, err := build(a.Inner, ctx, env.push(outerSchema))
	if err != nil {
		return nil, err
	}
	return &apply{
		outer:        outer,
		inner:        inner,
		ctx:          ctx,
		outerApply:   a.Kind == core.OuterApply,
		innerArity:   a.Inner.Schema().Len(),
		uncorrelated: len(core.OuterRefsIn(a.Inner)) == 0,
	}, nil
}

// apply re-executes the inner tree once per outer row — the correlated
// subquery execution model the paper builds GApply's physical
// implementation on. When the inner has no outer references its result
// cannot change across the outer loop (it may still change when a group
// binding changes), so it is materialized once per binding version —
// the standard cached-subquery optimization.
type apply struct {
	outer, inner Iterator
	ctx          *Context
	outerApply   bool
	innerArity   int
	uncorrelated bool

	cache        []types.Row
	cacheVersion uint64
	cacheValid   bool

	cur     types.Row
	results []types.Row
	rpos    int
}

func (a *apply) Open() error {
	a.cur, a.results, a.rpos = nil, nil, 0
	a.cacheValid = false
	return a.outer.Open()
}

func (a *apply) innerRows() ([]types.Row, error) {
	if a.uncorrelated {
		if a.cacheValid && a.cacheVersion == a.ctx.version {
			a.ctx.Counters.ApplyCacheHits++
			return a.cache, nil
		}
	}
	a.ctx.Counters.ApplyExecs++
	rows, err := drainWith(a.inner, a.ctx)
	if err != nil {
		return nil, err
	}
	if a.uncorrelated {
		a.cache, a.cacheVersion, a.cacheValid = rows, a.ctx.version, true
	}
	return rows, nil
}

func (a *apply) Next() (types.Row, bool, error) {
	for {
		if a.cur == nil {
			r, ok, err := a.outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			a.cur = r
			a.ctx.pushOuter(r)
			rows, err := a.innerRows()
			a.ctx.popOuter()
			if err != nil {
				return nil, false, err
			}
			a.results, a.rpos = rows, 0
			if len(rows) == 0 && a.outerApply {
				out := a.cur.Concat(make(types.Row, a.innerArity))
				a.cur = nil
				return out, true, nil
			}
		}
		if a.rpos < len(a.results) {
			out := a.cur.Concat(a.results[a.rpos])
			a.rpos++
			return out, true, nil
		}
		a.cur = nil
	}
}

func (a *apply) Close() error {
	a.results, a.cache = nil, nil
	a.cacheValid = false
	return a.outer.Close()
}
