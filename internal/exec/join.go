package exec

import (
	"gapplydb/internal/core"
	"gapplydb/internal/types"
)

func buildJoin(j *core.Join, ctx *Context, env compileEnv) (Iterator, error) {
	left, err := build(j.Left, ctx, env)
	if err != nil {
		return nil, err
	}
	right, err := build(j.Right, ctx, env)
	if err != nil {
		return nil, err
	}
	outSchema := j.Schema()
	pred, err := compilePredicate(j.Cond, outSchema, env)
	if err != nil {
		return nil, err
	}
	pairs := j.EquiPairs()
	method := j.Method
	if method == core.JoinAuto {
		if len(pairs) > 0 {
			method = core.JoinHash
		} else {
			method = core.JoinNestedLoops
		}
	}
	rightArity := j.Right.Schema().Len()
	if method == core.JoinMerge && len(pairs) == 1 {
		ls, rs := j.Left.Schema(), j.Right.Schema()
		lo, err := ls.Resolve(pairs[0].Left.Table, pairs[0].Left.Name)
		if err != nil {
			return nil, err
		}
		ro, err := rs.Resolve(pairs[0].Right.Table, pairs[0].Right.Name)
		if err != nil {
			return nil, err
		}
		return &mergeJoin{
			left: left, right: right, pred: pred, ctx: ctx,
			leftOrd: lo, rightOrd: ro,
			outerJoin: j.Kind == core.LeftOuterJoin, rightArity: rightArity,
		}, nil
	}
	if (method == core.JoinHash || method == core.JoinMerge) && len(pairs) > 0 {
		leftOrds := make([]int, len(pairs))
		rightOrds := make([]int, len(pairs))
		ls, rs := j.Left.Schema(), j.Right.Schema()
		for i, p := range pairs {
			lo, err := ls.Resolve(p.Left.Table, p.Left.Name)
			if err != nil {
				return nil, err
			}
			ro, err := rs.Resolve(p.Right.Table, p.Right.Name)
			if err != nil {
				return nil, err
			}
			leftOrds[i], rightOrds[i] = lo, ro
		}
		return &hashJoin{
			left: left, right: right, pred: pred, ctx: ctx,
			leftOrds: leftOrds, rightOrds: rightOrds,
			outerJoin: j.Kind == core.LeftOuterJoin, rightArity: rightArity,
		}, nil
	}
	return &nlJoin{
		left: left, right: right, pred: pred, ctx: ctx,
		outerJoin: j.Kind == core.LeftOuterJoin, rightArity: rightArity,
	}, nil
}

// hashJoin builds a hash table on the right input's equi-columns and
// probes it with left rows; the full join condition runs as a residual
// predicate over the concatenated row. Left-outer pads NULLs for
// unmatched left rows.
//
// When the right input is a stable materialization (a spool: it reports
// a content generation), the build table is kept across re-Opens and
// rebuilt only when the generation changes — so a per-group query that
// joins $group against an invariant build side pays the rehash once per
// gapply.Open instead of once per group.
type hashJoin struct {
	left, right Iterator
	pred        func(types.Row, *Context) (bool, error)
	ctx         *Context
	leftOrds    []int
	rightOrds   []int
	outerJoin   bool
	rightArity  int

	table    map[string][]types.Row
	tableGen uint64 // spool generation the table was built from
	hasGen   bool   // table came from a generation-stable right input
	scratch  []byte // per-iterator probe-key buffer (no per-row alloc)
	cur      types.Row
	bucket   []types.Row
	bpos     int
	matched  bool
}

func (h *hashJoin) Open() error {
	// Always Open the right input — for a spool that is where the
	// build-once/replay accounting happens, deterministically once per
	// group at any dop — and only skip the drain+rehash when the content
	// generation says the existing table is still current.
	if err := h.right.Open(); err != nil {
		return err
	}
	rebuild := true
	if cv, ok := h.right.(contentVersioned); ok {
		if gen, stable := cv.contentGen(); stable {
			if h.hasGen && h.table != nil && gen == h.tableGen {
				rebuild = false
			} else {
				h.tableGen, h.hasGen = gen, true
			}
		} else {
			h.hasGen = false
		}
	}
	if rebuild {
		h.table = make(map[string][]types.Row)
		for {
			if err := h.ctx.tick(); err != nil {
				return err
			}
			r, ok, err := h.right.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			h.scratch = r.AppendKey(h.scratch[:0], h.rightOrds)
			k := string(h.scratch) // the map key must own its bytes
			h.table[k] = append(h.table[k], r)
		}
	}
	if err := h.right.Close(); err != nil {
		return err
	}
	h.cur, h.bucket, h.bpos = nil, nil, 0
	return h.left.Open()
}

func (h *hashJoin) Next() (types.Row, bool, error) {
	for {
		if h.cur == nil {
			r, ok, err := h.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			h.ctx.Counters.JoinProbes++
			h.cur = r
			// NULL join keys never match (predicate equality), so skip
			// the probe; outer join still pads.
			hasNull := false
			for _, o := range h.leftOrds {
				if r[o].IsNull() {
					hasNull = true
					break
				}
			}
			if hasNull {
				h.bucket = nil
			} else {
				// Probe with a reused scratch buffer: m[string(b)] compiles
				// to an allocation-free lookup, so the per-left-row key
				// costs no garbage.
				h.scratch = r.AppendKey(h.scratch[:0], h.leftOrds)
				h.bucket = h.table[string(h.scratch)]
			}
			h.bpos, h.matched = 0, false
		}
		for h.bpos < len(h.bucket) {
			rr := h.bucket[h.bpos]
			h.bpos++
			out := h.cur.Concat(rr)
			pass, err := h.pred(out, h.ctx)
			if err != nil {
				return nil, false, err
			}
			if pass {
				h.matched = true
				return out, true, nil
			}
		}
		if h.outerJoin && !h.matched {
			out := h.cur.Concat(make(types.Row, h.rightArity))
			h.cur = nil
			return out, true, nil
		}
		h.cur = nil
	}
}

func (h *hashJoin) Close() error {
	// A generation-stable table is the whole point of the spool-fed
	// rebuild skip: keep it across the per-group Open/Close cycle.
	// Tables built from an unstable input are dropped as before.
	if !h.hasGen {
		h.table = nil
	}
	return h.left.Close()
}

// nlJoin is a nested-loops join with the right side materialized.
type nlJoin struct {
	left, right Iterator
	pred        func(types.Row, *Context) (bool, error)
	ctx         *Context
	outerJoin   bool
	rightArity  int

	rightRows []types.Row
	cur       types.Row
	rpos      int
	matched   bool
}

func (n *nlJoin) Open() error {
	rows, err := drainWith(n.right, n.ctx)
	if err != nil {
		return err
	}
	n.rightRows = rows
	n.cur, n.rpos = nil, 0
	return n.left.Open()
}

func (n *nlJoin) Next() (types.Row, bool, error) {
	for {
		if n.cur == nil {
			r, ok, err := n.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			n.cur, n.rpos, n.matched = r, 0, false
		}
		for n.rpos < len(n.rightRows) {
			rr := n.rightRows[n.rpos]
			n.rpos++
			out := n.cur.Concat(rr)
			pass, err := n.pred(out, n.ctx)
			if err != nil {
				return nil, false, err
			}
			if pass {
				n.matched = true
				return out, true, nil
			}
		}
		if n.outerJoin && !n.matched {
			out := n.cur.Concat(make(types.Row, n.rightArity))
			n.cur = nil
			return out, true, nil
		}
		n.cur = nil
	}
}

func (n *nlJoin) Close() error {
	n.rightRows = nil
	return n.left.Close()
}
