package exec

import (
	"gapplydb/internal/core"
	"gapplydb/internal/types"
)

func buildJoin(j *core.Join, ctx *Context, env compileEnv) (Iterator, error) {
	left, err := build(j.Left, ctx, env)
	if err != nil {
		return nil, err
	}
	right, err := build(j.Right, ctx, env)
	if err != nil {
		return nil, err
	}
	outSchema := j.Schema()
	pred, err := compilePredicate(j.Cond, outSchema, env)
	if err != nil {
		return nil, err
	}
	pairs := j.EquiPairs()
	method := j.Method
	if method == core.JoinAuto {
		if len(pairs) > 0 {
			method = core.JoinHash
		} else {
			method = core.JoinNestedLoops
		}
	}
	rightArity := j.Right.Schema().Len()
	if method == core.JoinHash && len(pairs) > 0 {
		leftOrds := make([]int, len(pairs))
		rightOrds := make([]int, len(pairs))
		ls, rs := j.Left.Schema(), j.Right.Schema()
		for i, p := range pairs {
			lo, err := ls.Resolve(p.Left.Table, p.Left.Name)
			if err != nil {
				return nil, err
			}
			ro, err := rs.Resolve(p.Right.Table, p.Right.Name)
			if err != nil {
				return nil, err
			}
			leftOrds[i], rightOrds[i] = lo, ro
		}
		return &hashJoin{
			left: left, right: right, pred: pred, ctx: ctx,
			leftOrds: leftOrds, rightOrds: rightOrds,
			outerJoin: j.Kind == core.LeftOuterJoin, rightArity: rightArity,
		}, nil
	}
	return &nlJoin{
		left: left, right: right, pred: pred, ctx: ctx,
		outerJoin: j.Kind == core.LeftOuterJoin, rightArity: rightArity,
	}, nil
}

// hashJoin builds a hash table on the right input's equi-columns and
// probes it with left rows; the full join condition runs as a residual
// predicate over the concatenated row. Left-outer pads NULLs for
// unmatched left rows.
type hashJoin struct {
	left, right Iterator
	pred        func(types.Row, *Context) (bool, error)
	ctx         *Context
	leftOrds    []int
	rightOrds   []int
	outerJoin   bool
	rightArity  int

	table   map[string][]types.Row
	cur     types.Row // current left row
	bucket  []types.Row
	bpos    int
	matched bool
}

func (h *hashJoin) Open() error {
	if err := h.right.Open(); err != nil {
		return err
	}
	h.table = make(map[string][]types.Row)
	for {
		if err := h.ctx.tick(); err != nil {
			return err
		}
		r, ok, err := h.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := r.Key(h.rightOrds)
		h.table[k] = append(h.table[k], r)
	}
	if err := h.right.Close(); err != nil {
		return err
	}
	h.cur, h.bucket, h.bpos = nil, nil, 0
	return h.left.Open()
}

func (h *hashJoin) Next() (types.Row, bool, error) {
	for {
		if h.cur == nil {
			r, ok, err := h.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			h.ctx.Counters.JoinProbes++
			h.cur = r
			// NULL join keys never match (predicate equality), so skip
			// the probe; outer join still pads.
			hasNull := false
			for _, o := range h.leftOrds {
				if r[o].IsNull() {
					hasNull = true
					break
				}
			}
			if hasNull {
				h.bucket = nil
			} else {
				h.bucket = h.table[r.Key(h.leftOrds)]
			}
			h.bpos, h.matched = 0, false
		}
		for h.bpos < len(h.bucket) {
			rr := h.bucket[h.bpos]
			h.bpos++
			out := h.cur.Concat(rr)
			pass, err := h.pred(out, h.ctx)
			if err != nil {
				return nil, false, err
			}
			if pass {
				h.matched = true
				return out, true, nil
			}
		}
		if h.outerJoin && !h.matched {
			out := h.cur.Concat(make(types.Row, h.rightArity))
			h.cur = nil
			return out, true, nil
		}
		h.cur = nil
	}
}

func (h *hashJoin) Close() error {
	h.table = nil
	return h.left.Close()
}

// nlJoin is a nested-loops join with the right side materialized.
type nlJoin struct {
	left, right Iterator
	pred        func(types.Row, *Context) (bool, error)
	ctx         *Context
	outerJoin   bool
	rightArity  int

	rightRows []types.Row
	cur       types.Row
	rpos      int
	matched   bool
}

func (n *nlJoin) Open() error {
	rows, err := drainWith(n.right, n.ctx)
	if err != nil {
		return err
	}
	n.rightRows = rows
	n.cur, n.rpos = nil, 0
	return n.left.Open()
}

func (n *nlJoin) Next() (types.Row, bool, error) {
	for {
		if n.cur == nil {
			r, ok, err := n.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			n.cur, n.rpos, n.matched = r, 0, false
		}
		for n.rpos < len(n.rightRows) {
			rr := n.rightRows[n.rpos]
			n.rpos++
			out := n.cur.Concat(rr)
			pass, err := n.pred(out, n.ctx)
			if err != nil {
				return nil, false, err
			}
			if pass {
				n.matched = true
				return out, true, nil
			}
		}
		if n.outerJoin && !n.matched {
			out := n.cur.Concat(make(types.Row, n.rightArity))
			n.cur = nil
			return out, true, nil
		}
		n.cur = nil
	}
}

func (n *nlJoin) Close() error {
	n.rightRows = nil
	return n.left.Close()
}
