package exec

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"gapplydb/internal/core"
	"gapplydb/internal/types"
)

func buildGApply(g *core.GApply, ctx *Context, env compileEnv) (Iterator, error) {
	outer, err := build(g.Outer, ctx, env)
	if err != nil {
		return nil, err
	}
	ords, err := resolveCols(g.GroupCols, g.Outer.Schema())
	if err != nil {
		return nil, err
	}
	// Identify the inner plan's maximal group-invariant subtrees and give
	// each a shared materialization holder; the inner compile below (and
	// every per-worker compile of the same plan) wraps those roots in
	// spool iterators pointing at the same holders, so each invariant
	// subtree executes once per Open no matter how many trees or workers
	// re-Open it.
	var spools *spoolRegistry
	if !ctx.NoSpool {
		if roots := core.InvariantRoots(g.Inner); len(roots) > 0 {
			spools = newSpoolRegistry(roots)
		}
	}
	// The per-group query reads the group through GroupScan, not through
	// OuterRefs, so it compiles against the same env.
	prevSpools := ctx.spools
	ctx.spools = spools
	inner, err := build(g.Inner, ctx, env)
	ctx.spools = prevSpools
	if err != nil {
		return nil, err
	}
	return &gapply{
		outer:     outer,
		inner:     inner,
		spools:    spools,
		innerPlan: g.Inner,
		plan:      g,
		env:       env,
		ctx:       ctx,
		ords:      ords,
		groupVar:  g.GroupVar,
		sortPart:  g.Partition == core.PartitionSort,
		ordered:   core.GApplyOuterOrdered(g),
		// An inner with outer references reads rows the enclosing Apply
		// pushes onto the shared context's stack as it iterates; that
		// state cannot be snapshotted per worker, so such inners run
		// serially (the workers' fallback the parallel phase checks).
		correlated: len(core.OuterRefsIn(g.Inner)) > 0,
	}, nil
}

// gapply is the paper's physical GApply (§3): a Partition phase that
// splits the outer stream into groups on the grouping columns (by
// hashing or sorting), then an Execution phase that evaluates the
// per-group query against each group with the relation-valued parameter
// $group bound to the group's rows. Both partition strategies emit
// results clustered by group, which is what lets the syntax drop the
// ORDER BY a sorted-outer-union query needs for a constant-space tagger.
//
// The execution phase runs the groups either serially through the
// prebuilt inner tree (the paper's "in succession") or — since the
// groups are independent by construction — fanned out across a bounded
// worker pool, where every worker owns a private Context and a private
// instantiation of the inner plan, and a reorder stage emits the
// buffered per-group results in partition order. Output is therefore
// byte-identical to serial execution, clustering included.
//
// Both phases are cancellation points: the partition phase polls the
// query context per outer row and charges materialized bytes against
// the resource budget; the execution phase polls per produced row, and
// parallel workers stop promptly — without goroutine leaks or dropped
// counter merges — when the query is cancelled or a group fails.
type gapply struct {
	outer, inner Iterator
	innerPlan    core.Node
	plan         *core.GApply
	env          compileEnv
	ctx          *Context
	ords         []int
	groupVar     string
	sortPart     bool
	ordered      bool // outer provides the group-key ordering (index path)
	correlated   bool
	spools       *spoolRegistry // nil when the inner has no invariant subtrees

	groups  [][]types.Row
	gpos    int
	keyVals types.Row
	started bool

	par  *parRun     // non-nil while a parallel execution phase is live
	buf  []types.Row // current group's buffered output (parallel mode)
	bpos int
}

func (g *gapply) Open() error {
	if g.par != nil { // re-Open without an intervening Close
		g.par.shutdown()
		g.par = nil
	}
	if g.spools != nil {
		// Fresh materializations once per Open: the previous pool (if any)
		// has fully stopped above, so no worker can observe the reset.
		g.spools.reset()
	}
	rows, err := drainWith(g.outer, g.ctx)
	if err != nil {
		return err
	}
	switch {
	case g.sortPart && g.ordered:
		g.groups, err = partitionOrdered(rows, g.ords, g.ctx, g.plan)
	case g.sortPart:
		g.groups, err = partitionBySort(rows, g.ords, g.ctx, g.plan)
	default:
		g.groups, err = partitionByHash(rows, g.ords, g.ctx, g.plan)
	}
	if err != nil {
		return err
	}
	g.ctx.Counters.Groups += int64(len(g.groups))
	g.gpos = 0
	g.started = false
	g.buf, g.bpos = nil, 0
	if dop := g.degree(); dop > 1 {
		g.par = g.startWorkers(dop)
	}
	return nil
}

// degree decides how many workers the execution phase uses: the
// context's DOP (default GOMAXPROCS), clamped to the group count, and 1
// — the serial fallback — when the inner is correlated with an
// enclosing Apply.
func (g *gapply) degree() int {
	if g.correlated {
		return 1
	}
	dop := g.ctx.DOP
	if dop <= 0 {
		dop = runtime.GOMAXPROCS(0)
	}
	if dop > len(g.groups) {
		dop = len(g.groups)
	}
	return dop
}

// chargePartition bills the budget for one row materialized into a
// partition, labelling a blown budget with the GApply's plan shape.
func chargePartition(ctx *Context, plan *core.GApply, r types.Row) error {
	if ctx.Budget == nil {
		return nil
	}
	operator := "GApply"
	if plan != nil {
		operator = core.Summary(plan)
	}
	return ctx.Budget.chargePartition(int64(r.Bytes()), operator)
}

// groupKeyEqual reports whether a row's grouping columns are Identical
// to a group's representative key — the exact comparison that backs the
// hash partitioner's buckets, so hash collisions can never merge
// distinct grouping keys.
func groupKeyEqual(key types.Row, r types.Row, ords []int) bool {
	for i, o := range ords {
		if !types.Identical(key[i], r[o]) {
			return false
		}
	}
	return true
}

// partitionByHash groups rows by hashing the grouping columns; group
// order is first appearance in the input, so output is deterministic.
// Buckets are keyed by the 64-bit hash, and every row is compared
// against the actual key values of the groups sharing its bucket: rows
// whose keys merely collide are split into distinct groups, so hash-
// and sort-based partitioning always produce identical groups. Rows are
// copied into the group's storage: each group is a temporary relation
// (paper §3), so the partition phase pays memory traffic proportional
// to row width — the cost the projection-before-GApply rule exists to
// shrink, and the byte meter the partition budget is charged against.
func partitionByHash(rows []types.Row, ords []int, ctx *Context, plan *core.GApply) ([][]types.Row, error) {
	buckets := make(map[uint64][]int) // hash -> indexes of groups in that bucket
	var groups [][]types.Row
	var keys []types.Row // representative grouping-column values per group
	for _, r := range rows {
		if err := ctx.tick(); err != nil {
			return nil, err
		}
		h := r.Hash(ords)
		gi := -1
		for _, i := range buckets[h] {
			if groupKeyEqual(keys[i], r, ords) {
				gi = i
				break
			}
		}
		if gi < 0 {
			gi = len(groups)
			buckets[h] = append(buckets[h], gi)
			groups = append(groups, nil)
			keys = append(keys, r.Project(ords))
		}
		if err := chargePartition(ctx, plan, r); err != nil {
			return nil, err
		}
		groups[gi] = append(groups[gi], r.Clone())
	}
	return groups, nil
}

// partitionBySort sorts rows on the grouping columns and cuts runs,
// copying rows into the sorted temporary storage (see partitionByHash).
func partitionBySort(rows []types.Row, ords []int, ctx *Context, plan *core.GApply) ([][]types.Row, error) {
	sorted, err := clonePartitionRows(rows, ctx, plan)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		return types.CompareRows(sorted[i], sorted[j], ords, nil) < 0
	})
	return cutGroupRuns(sorted, ords), nil
}

// partitionOrdered cuts group runs from an outer stream the optimizer
// proved already arrives in ascending group-key order (an ordered index
// access path): identical clones, budget charges, cancellation points
// and resulting groups to partitionBySort — an already-ordered input is
// a fixed point of the stable sort — minus the O(n log n) sort itself.
// A violated order expectation (a planner bug, not a data property)
// falls back to the stable sort rather than emit misgrouped output; the
// verification is one comparison per row, paid inside the run cut
// anyway.
func partitionOrdered(rows []types.Row, ords []int, ctx *Context, plan *core.GApply) ([][]types.Row, error) {
	sorted, err := clonePartitionRows(rows, ctx, plan)
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(sorted); i++ {
		if types.CompareRows(sorted[i-1], sorted[i], ords, nil) > 0 {
			sort.SliceStable(sorted, func(a, b int) bool {
				return types.CompareRows(sorted[a], sorted[b], ords, nil) < 0
			})
			break
		}
	}
	return cutGroupRuns(sorted, ords), nil
}

// clonePartitionRows copies the drained outer rows into the partition's
// temporary storage, charging the budget and polling cancellation per
// row — the shared front half of both sort-family partitioners.
func clonePartitionRows(rows []types.Row, ctx *Context, plan *core.GApply) ([]types.Row, error) {
	cloned := make([]types.Row, len(rows))
	for i, r := range rows {
		if err := ctx.tick(); err != nil {
			return nil, err
		}
		if err := chargePartition(ctx, plan, r); err != nil {
			return nil, err
		}
		cloned[i] = r.Clone()
	}
	return cloned, nil
}

// cutGroupRuns splits key-ordered rows into their group runs.
func cutGroupRuns(sorted []types.Row, ords []int) [][]types.Row {
	var groups [][]types.Row
	start := 0
	for i := 1; i <= len(sorted); i++ {
		if i == len(sorted) || types.CompareRows(sorted[i], sorted[start], ords, nil) != 0 {
			groups = append(groups, sorted[start:i])
			start = i
		}
	}
	return groups
}

// advance binds the next group and opens the per-group query over it
// (serial execution phase).
func (g *gapply) advance() (bool, error) {
	// Group boundaries are prompt cancellation points: a cancel between
	// groups is noticed before the next per-group execution starts.
	if err := g.ctx.checkCancel(); err != nil {
		return false, err
	}
	for g.gpos < len(g.groups) {
		group := g.groups[g.gpos]
		g.gpos++
		g.ctx.BindGroup(g.groupVar, group)
		g.keyVals = group[0].Project(g.ords)
		g.ctx.Counters.InnerExecs++
		g.ctx.Counters.SerialGroupExecs++
		if err := g.inner.Open(); err != nil {
			return false, err
		}
		g.started = true
		return true, nil
	}
	return false, nil
}

func (g *gapply) Next() (types.Row, bool, error) {
	if g.par != nil {
		return g.parNext()
	}
	for {
		if !g.started {
			ok, err := g.advance()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return nil, false, nil
			}
		}
		r, ok, err := g.inner.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return g.keyVals.Concat(r), true, nil
		}
		if err := g.inner.Close(); err != nil {
			return nil, false, err
		}
		g.started = false
	}
}

func (g *gapply) Close() error {
	if g.par != nil {
		g.par.shutdown()
		g.par = nil
	}
	g.groups, g.buf = nil, nil
	if g.started {
		g.started = false
		return g.inner.Close()
	}
	return nil
}

// ---------------------------------------------- parallel execution phase

// parGroup is one group's buffered evaluation: its output rows (already
// prefixed with the grouping-column values), the execution counters the
// worker accumulated while producing them, and any error.
type parGroup struct {
	rows  []types.Row
	delta Counters
	// prof is the group's per-operator profile delta (nil when
	// instrumentation is disabled), merged like delta.
	prof map[core.Node]NodeStats
	err  error
}

// parRun is the state of one parallel execution phase. Workers claim
// group indexes from a shared counter, evaluate each claimed group
// against their private iterator tree, publish into results[i], and
// close ready[i]; the consumer (the goroutine driving Next) waits on the
// ready channels in partition order. The channel close is the only
// synchronization a result needs: the worker's writes happen before the
// close, which happens before the consumer's read.
//
// window bounds how many groups may be claimed but not yet consumed, so
// a fast worker racing ahead through small groups cannot buffer an
// unbounded prefix of the output: workers acquire a window slot before
// claiming an index and the consumer releases the slot when it emits the
// group.
//
// Shutdown — from Close, from the first group error, or from query
// cancellation — closes stop and cancels the workers' derived context,
// so a worker deep inside a large group stops within one row batch; the
// consumer never waits on a ready channel no worker will close, because
// it selects on the query context alongside every ready wait.
type parRun struct {
	results []parGroup
	ready   []chan struct{}
	window  chan struct{}
	stop    chan struct{}
	cancel  context.CancelFunc // cancels the workers' derived context
	once    sync.Once
	wg      sync.WaitGroup
}

// newParRun allocates the pool state for n groups at the given degree;
// shared by the row and batch GApply execution phases.
func newParRun(n, dop int) *parRun {
	p := &parRun{
		results: make([]parGroup, n),
		ready:   make([]chan struct{}, n),
		window:  make(chan struct{}, 2*dop),
		stop:    make(chan struct{}),
	}
	for i := range p.ready {
		p.ready[i] = make(chan struct{})
	}
	return p
}

// startWorkers launches the pool for the groups partitioned by Open.
// The pool captures the partition snapshot (not the gapply fields): a
// later Close/Open on the iterator must not yank state out from under
// workers that are still winding down.
func (g *gapply) startWorkers(dop int) *parRun {
	groups := g.groups
	n := len(groups)
	p := newParRun(n, dop)
	// Workers run under a context derived from the query's: cancelling
	// the query (or shutting the pool down) interrupts a worker even
	// mid-group, via the same row-batch ticks serial execution uses.
	parent := g.ctx.Ctx
	if parent == nil {
		parent = context.Background()
	}
	wctxCtx, cancel := context.WithCancel(parent)
	p.cancel = cancel
	var next atomic.Int64
	var failed atomic.Bool
	p.wg.Add(dop)
	for w := 0; w < dop; w++ {
		go func() {
			defer p.wg.Done()
			wctx := g.ctx.fork()
			wctx.Ctx = wctxCtx
			// The worker compiles its private inner tree against the
			// gapply's spool registry, so its spool iterators share the
			// holders (and materializations) of every other tree.
			wctx.spools = g.spools
			var inner Iterator
			for {
				select {
				case <-p.stop:
					return
				case <-wctxCtx.Done():
					return
				case p.window <- struct{}{}:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// After any group fails the run's outcome is decided (the
				// consumer stops at the first error in partition order), so
				// later groups complete empty instead of doing work.
				if failed.Load() {
					close(p.ready[i])
					continue
				}
				if inner == nil {
					// Instantiate this worker's private inner tree, bound to
					// its private context. Compilation already succeeded once
					// against the same plan, so an error here is unexpected
					// but still reported through the group's slot.
					it, err := build(g.innerPlan, wctx, g.env)
					if err != nil {
						p.results[i] = parGroup{err: err}
						failed.Store(true)
						close(p.ready[i])
						continue
					}
					inner = it
				}
				res := evalGroup(g, wctx, inner, groups[i])
				if res.err != nil {
					failed.Store(true)
				}
				p.results[i] = res
				close(p.ready[i])
			}
		}()
	}
	return p
}

// evalGroup runs the per-group query over one group on a worker's
// private context and tree, buffering the output rows with the grouping
// columns prefixed — the same row layout the serial phase streams.
func evalGroup(g *gapply, wctx *Context, inner Iterator, group []types.Row) parGroup {
	before := wctx.Counters
	var profBefore map[core.Node]NodeStats
	if wctx.Prof != nil {
		profBefore = wctx.Prof.snapshot()
	}
	wctx.BindGroup(g.groupVar, group)
	wctx.Counters.InnerExecs++
	wctx.Counters.ParallelGroupExecs++
	key := group[0].Project(g.ords)
	rows, err := drainWith(inner, wctx)
	out := parGroup{err: err}
	if err == nil {
		// Prefix every output row with the grouping-column values, copying
		// into one slab for the whole group instead of allocating a fresh
		// backing array per row (key.Concat would); the three-index slices
		// keep rows from aliasing each other's capacity.
		total := 0
		for _, r := range rows {
			total += len(key) + len(r)
		}
		slab := make(types.Row, 0, total)
		out.rows = make([]types.Row, len(rows))
		for i, r := range rows {
			start := len(slab)
			slab = append(slab, key...)
			slab = append(slab, r...)
			out.rows[i] = slab[start:len(slab):len(slab)]
		}
	}
	out.delta = wctx.Counters.Sub(before)
	if wctx.Prof != nil {
		out.prof = wctx.Prof.since(profBefore)
	}
	return out
}

// parNext emits the buffered groups in partition order, merging each
// group's counter delta into the parent context as it is consumed. The
// first group error — in partition order, matching what serial
// execution would surface — shuts the pool down and is returned; a
// cancelled query stops the wait for the next group immediately rather
// than blocking on a ready channel its worker may never close.
func (g *gapply) parNext() (types.Row, bool, error) {
	for {
		if g.bpos < len(g.buf) {
			r := g.buf[g.bpos]
			g.bpos++
			return r, true, nil
		}
		if g.gpos >= len(g.groups) {
			// A cancel that lands after the last group still cancels.
			if err := g.ctx.checkCancel(); err != nil {
				return nil, false, err
			}
			return nil, false, nil
		}
		i := g.gpos
		g.gpos++
		var done <-chan struct{}
		if g.ctx.Ctx != nil {
			done = g.ctx.Ctx.Done()
		}
		select {
		case <-g.par.ready[i]:
		case <-done:
			g.par.shutdown()
			return nil, false, context.Cause(g.ctx.Ctx)
		}
		res := g.par.results[i]
		g.par.results[i] = parGroup{}
		<-g.par.window
		g.ctx.Counters.Add(res.delta)
		if g.ctx.Prof != nil && res.prof != nil {
			g.ctx.Prof.merge(res.prof)
		}
		if res.err != nil {
			// Stop the pool now rather than waiting for Close: the error
			// decides the query, so no worker should keep computing.
			g.par.shutdown()
			return nil, false, res.err
		}
		g.buf, g.bpos = res.rows, 0
	}
}

// shutdown stops the pool — closing the claim gate and cancelling the
// workers' context so even a worker mid-group exits within a row batch —
// and waits for the workers to finish; pending results are discarded.
// Safe to call more than once.
func (p *parRun) shutdown() {
	p.once.Do(func() {
		close(p.stop)
		if p.cancel != nil {
			p.cancel()
		}
	})
	p.wg.Wait()
}
