package exec

import (
	"sort"

	"gapplydb/internal/core"
	"gapplydb/internal/types"
)

func buildGApply(g *core.GApply, ctx *Context, env compileEnv) (Iterator, error) {
	outer, err := build(g.Outer, ctx, env)
	if err != nil {
		return nil, err
	}
	ords, err := resolveCols(g.GroupCols, g.Outer.Schema())
	if err != nil {
		return nil, err
	}
	// The per-group query reads the group through GroupScan, not through
	// OuterRefs, so it compiles against the same env.
	inner, err := build(g.Inner, ctx, env)
	if err != nil {
		return nil, err
	}
	return &gapply{
		outer:    outer,
		inner:    inner,
		ctx:      ctx,
		ords:     ords,
		groupVar: g.GroupVar,
		sortPart: g.Partition == core.PartitionSort,
	}, nil
}

// gapply is the paper's physical GApply (§3): a Partition phase that
// splits the outer stream into groups on the grouping columns (by
// hashing or sorting), then an Execution phase that runs in nested-loops
// fashion, binding the relation-valued parameter $group to each group in
// succession and evaluating the per-group query against it. Both
// strategies emit results clustered by group, which is what lets the
// syntax drop the ORDER BY a sorted-outer-union query needs for a
// constant-space tagger.
type gapply struct {
	outer, inner Iterator
	ctx          *Context
	ords         []int
	groupVar     string
	sortPart     bool

	groups  [][]types.Row
	gpos    int
	keyVals types.Row
	started bool
}

func (g *gapply) Open() error {
	rows, err := Drain(g.outer)
	if err != nil {
		return err
	}
	if g.sortPart {
		g.groups = partitionBySort(rows, g.ords)
	} else {
		g.groups = partitionByHash(rows, g.ords)
	}
	g.ctx.Counters.Groups += int64(len(g.groups))
	g.gpos = 0
	g.started = false
	return nil
}

// partitionByHash groups rows by hashing the grouping columns; group
// order is first appearance in the input, so output is deterministic.
// Rows are copied into the group's storage: each group is a temporary
// relation (paper §3), so the partition phase pays memory traffic
// proportional to row width — the cost the projection-before-GApply
// rule exists to shrink.
func partitionByHash(rows []types.Row, ords []int) [][]types.Row {
	index := make(map[string]int)
	var groups [][]types.Row
	for _, r := range rows {
		k := r.Key(ords)
		i, ok := index[k]
		if !ok {
			i = len(groups)
			index[k] = i
			groups = append(groups, nil)
		}
		groups[i] = append(groups[i], r.Clone())
	}
	return groups
}

// partitionBySort sorts rows on the grouping columns and cuts runs,
// copying rows into the sorted temporary storage (see partitionByHash).
func partitionBySort(rows []types.Row, ords []int) [][]types.Row {
	sorted := make([]types.Row, len(rows))
	for i, r := range rows {
		sorted[i] = r.Clone()
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		return types.CompareRows(sorted[i], sorted[j], ords, nil) < 0
	})
	var groups [][]types.Row
	start := 0
	for i := 1; i <= len(sorted); i++ {
		if i == len(sorted) || types.CompareRows(sorted[i], sorted[start], ords, nil) != 0 {
			groups = append(groups, sorted[start:i])
			start = i
		}
	}
	return groups
}

// advance binds the next group and opens the per-group query over it.
func (g *gapply) advance() (bool, error) {
	for g.gpos < len(g.groups) {
		group := g.groups[g.gpos]
		g.gpos++
		g.ctx.BindGroup(g.groupVar, group)
		g.keyVals = group[0].Project(g.ords)
		g.ctx.Counters.InnerExecs++
		if err := g.inner.Open(); err != nil {
			return false, err
		}
		g.started = true
		return true, nil
	}
	return false, nil
}

func (g *gapply) Next() (types.Row, bool, error) {
	for {
		if !g.started {
			ok, err := g.advance()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return nil, false, nil
			}
		}
		r, ok, err := g.inner.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return g.keyVals.Concat(r), true, nil
		}
		if err := g.inner.Close(); err != nil {
			return nil, false, err
		}
		g.started = false
	}
}

func (g *gapply) Close() error {
	g.groups = nil
	if g.started {
		g.started = false
		return g.inner.Close()
	}
	return nil
}
