package exec

import (
	"sync"
	"sync/atomic"

	"gapplydb/internal/core"
	"gapplydb/internal/types"
)

// This file is GApply's invariant-subtree spool layer. A per-group query
// is re-Opened once per group (× once per worker tree in parallel mode),
// so any part of it that does not depend on the group binding — no
// GroupScan, no OuterRef — repeats identical work for every group: a
// base-table scan is re-scanned, a hash-join build side is re-built, an
// invariant scalar subquery is re-aggregated, thousands of times. The
// spool materializes each maximal invariant subtree exactly once per
// gapply.Open and replays the buffered rows on every subsequent re-Open.
// The materialization is shared read-only across parallel workers (each
// worker has a private iterator tree, but all spool iterators compiled
// from the same plan node share one holder), so dop-8 builds an
// invariant subtree once, not eight times.

// spoolGen hands out a process-global generation number per
// materialization. Downstream operators that cache work derived from a
// spool's content (hashJoin's build table) compare generations to decide
// whether their cache is still current; a fresh build — even of the same
// subtree after a re-partition — always gets a new generation.
var spoolGen atomic.Uint64

// contentVersioned is implemented by iterators whose output is a stable
// materialization: contentGen returns a generation identifying the
// current content. Two Opens returning the same generation are
// guaranteed to replay identical rows. The second result is false when
// no stable generation is available (then callers must not cache).
// Valid only after a successful Open.
type contentVersioned interface {
	contentGen() (uint64, bool)
}

// spoolRegistry maps the invariant roots of one GApply's inner plan to
// their shared materialization holders. It is created at buildGApply
// time, read (never written) during inner-tree compilation — including
// the per-worker compiles parallel execution performs — and reset once
// per gapply.Open, strictly before any worker starts.
type spoolRegistry struct {
	holders map[core.Node]*spoolHolder
}

// newSpoolRegistry allocates a holder per invariant root.
func newSpoolRegistry(roots []core.Node) *spoolRegistry {
	r := &spoolRegistry{holders: make(map[core.Node]*spoolHolder, len(roots))}
	for _, n := range roots {
		r.holders[n] = &spoolHolder{}
	}
	return r
}

// reset gives every holder a fresh, unbuilt state. Called by gapply.Open
// on the consumer goroutine; the happens-before edge to workers is the
// goroutine spawn in startWorkers (and Open waits out any previous pool
// first), so no lock is needed.
func (r *spoolRegistry) reset() {
	for _, h := range r.holders {
		h.state = &spoolState{}
	}
}

// spoolHolder is the sharing point for one invariant root: every spool
// iterator compiled from that plan node (serial tree + one per worker)
// points at the same holder and therefore replays the same state.
type spoolHolder struct {
	state *spoolState
}

// spoolState is one materialization: built at most once (sync.Once), then
// immutable. rows/err/bytes/gen are written only inside the Once and read
// only after it, so they need no further synchronization.
type spoolState struct {
	once  sync.Once
	rows  []types.Row
	err   error
	bytes int64
	gen   uint64
}

// spool materializes its input subtree once per holder reset and replays
// the buffered rows on every Open. It wraps the (possibly probe-wrapped)
// compiled subtree, so under EXPLAIN ANALYZE the subtree's operators
// report the single real execution — loops=1 at any dop — while replays
// and the spool's own build/hit tallies are recorded on the root node's
// NodeStats. Build cost is charged per row against MaxPartitionBytes:
// the spool is a materialization, the same budget dimension as GApply's
// partitions.
type spool struct {
	inner Iterator
	node  core.Node
	h     *spoolHolder
	ctx   *Context

	st  *spoolState // pinned at Open
	pos int
}

func (s *spool) Open() error {
	st := s.h.state
	built := false
	st.once.Do(func() {
		built = true
		st.gen = spoolGen.Add(1)
		st.rows, st.bytes, st.err = s.materialize()
	})
	if built {
		s.ctx.Counters.SpoolBuilds++
	} else {
		s.ctx.Counters.SpoolHits++
	}
	if s.ctx.Prof != nil {
		ns := s.ctx.Prof.node(s.node)
		if built {
			ns.SpoolBuilds++
			ns.SpoolBytes += st.bytes
		} else {
			ns.SpoolHits++
		}
	}
	if st.err != nil {
		return st.err
	}
	s.st, s.pos = st, 0
	return nil
}

// materialize drains the inner subtree, charging the budget per row so a
// runaway invariant subtree is killed at the limit, not after filling
// memory. Rows are stored as produced (no clone): everything upstream of
// a spool is group-independent, so the rows cannot be invalidated by a
// later binding change within this materialization's lifetime.
func (s *spool) materialize() ([]types.Row, int64, error) {
	if err := s.inner.Open(); err != nil {
		return nil, 0, err
	}
	var rows []types.Row
	var bytes int64
	for {
		if err := s.ctx.tick(); err != nil {
			s.inner.Close()
			return nil, bytes, err
		}
		r, ok, err := s.inner.Next()
		if err != nil {
			s.inner.Close()
			return nil, bytes, err
		}
		if !ok {
			break
		}
		n := int64(r.Bytes())
		if err := s.ctx.Budget.chargePartition(n, "Spool: "+core.Summary(s.node)); err != nil {
			s.inner.Close()
			return nil, bytes, err
		}
		bytes += n
		rows = append(rows, r)
	}
	if err := s.inner.Close(); err != nil {
		return nil, bytes, err
	}
	return rows, bytes, nil
}

func (s *spool) Next() (types.Row, bool, error) {
	if err := s.ctx.tick(); err != nil {
		return nil, false, err
	}
	if s.st == nil || s.pos >= len(s.st.rows) {
		return nil, false, nil
	}
	r := s.st.rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close releases nothing: the materialization belongs to the holder (it
// outlives this iterator's open/close cycles by design), and the inner
// tree was already closed by the build.
func (s *spool) Close() error {
	s.pos = 0
	return nil
}

// contentGen implements contentVersioned: the generation of the pinned
// materialization.
func (s *spool) contentGen() (uint64, bool) {
	if s.st == nil {
		return 0, false
	}
	return s.st.gen, true
}
