package exec

import (
	"fmt"

	"gapplydb/internal/core"
	"gapplydb/internal/types"
)

// BuildBatch compiles a logical plan into a batch-iterator tree bound
// to ctx — the batch engine's Build. Physical choices honor the same
// optimizer hints, and probe/spool wrapping follows the same discipline
// as build: the probe sits inside the spool, so replays bypass the
// subtree's instrumentation and EXPLAIN ANALYZE actuals stay
// dop-invariant and engine-invariant (rows are counted, not batches).
func BuildBatch(n core.Node, ctx *Context) (BatchIterator, error) {
	return buildBatch(n, ctx, nil)
}

func buildBatch(n core.Node, ctx *Context, env compileEnv) (BatchIterator, error) {
	it, err := buildBatchNode(n, ctx, env)
	if err != nil {
		return nil, err
	}
	if ctx.Prof != nil {
		it = ctx.Prof.wrapBatch(n, it)
	}
	if ctx.spools != nil {
		if h, ok := ctx.spools.holders[n]; ok {
			it = &bspool{inner: it, node: n, h: h, ctx: ctx}
		}
	}
	return it, nil
}

// fusable reports whether a Select node may be fused into its parent
// Project: fusion elides the Select as a distinct operator, so it is
// only legal when nothing needs the node's identity — no per-operator
// probe (EXPLAIN ANALYZE) and no spool holder (invariant-subtree
// materialization is keyed by node).
func fusable(sel *core.Select, ctx *Context) bool {
	if ctx.Prof != nil {
		return false
	}
	if ctx.spools != nil && ctx.spools.holders[sel] != nil {
		return false
	}
	return true
}

// joinFusable reports whether a Join node may absorb its parent Select
// as a post-filter: like fusable, the join's node identity must be
// unobserved (no per-operator probe, no spool holder), since the fused
// build bypasses buildBatch's wrapping of the join node.
func joinFusable(j *core.Join, ctx *Context) bool {
	if ctx.Prof != nil {
		return false
	}
	if ctx.spools != nil && ctx.spools.holders[j] != nil {
		return false
	}
	return true
}

// pureColOrds resolves a projection list that is purely column refs to
// their input ordinals; ok=false for anything else.
func pureColOrds(exprs []core.Expr, in interface {
	Resolve(table, name string) (int, error)
}) ([]int, bool) {
	ords := make([]int, 0, len(exprs))
	for _, e := range exprs {
		c, ok := e.(*core.ColRef)
		if !ok {
			return nil, false
		}
		ord, err := in.Resolve(c.Table, c.Name)
		if err != nil {
			return nil, false
		}
		ords = append(ords, ord)
	}
	return ords, true
}

func buildBatchNode(n core.Node, ctx *Context, env compileEnv) (BatchIterator, error) {
	switch x := n.(type) {
	case *core.Scan:
		tab, err := ctx.Catalog.Lookup(x.Table)
		if err != nil {
			return nil, err
		}
		return &bScan{table: tab, ctx: ctx}, nil

	case *core.IndexScan:
		if err := checkIndexScan(x, ctx); err != nil {
			return nil, err
		}
		return &bIndexScan{plan: x, ctx: ctx}, nil

	case *core.GroupScan:
		return &bGroupScan{varName: x.Var, ctx: ctx}, nil

	case *core.Select:
		// Select-over-Join fuses the filter into the join as a post
		// predicate: candidates are rejected on the reused probe row
		// before they are ever copied into the output slab. High-reject
		// filters directly over joins (the sorted-outer-union shape) are
		// where the copy-then-discard churn was worst.
		if j, ok := x.Input.(*core.Join); ok && fusable(x, ctx) && joinFusable(j, ctx) {
			return buildBatchJoin(j, x.Cond, ctx, env)
		}
		in, err := buildBatch(x.Input, ctx, env)
		if err != nil {
			return nil, err
		}
		inSchema := x.Input.Schema()
		pred, err := compilePredicate(x.Cond, inSchema, env)
		if err != nil {
			return nil, err
		}
		f := &bFilter{input: in, pred: pred, ctx: ctx}
		if kernels, ok := compileFilterKernels(x.Cond, inSchema); ok {
			f.kernels = kernels
		}
		return f, nil

	case *core.Project:
		// Fused filter+project: when the input is a Select whose node
		// identity nothing observes, compile one operator that narrows
		// the selection and gathers the survivors in a single pass.
		if sel, ok := x.Input.(*core.Select); ok && fusable(sel, ctx) {
			// Select-over-Join below the projection: prefer pushing the
			// filter into the join (reject before copy) and projecting on
			// top over fusing filter+project above a join that copies
			// every candidate.
			if j, ok := sel.Input.(*core.Join); ok && joinFusable(j, ctx) {
				in, err := buildBatchJoin(j, sel.Cond, ctx, env)
				if err != nil {
					return nil, err
				}
				if ords, ok := pureColOrds(x.Exprs, x.Input.Schema()); ok {
					return &bProjectCols{input: in, ords: ords}, nil
				}
				fns, err := compileAll(x.Exprs, x.Input.Schema(), env)
				if err != nil {
					return nil, err
				}
				return &bProject{input: in, exprs: fns, ctx: ctx}, nil
			}
			in, err := buildBatch(sel.Input, ctx, env)
			if err != nil {
				return nil, err
			}
			selSchema := sel.Input.Schema()
			pred, err := compilePredicate(sel.Cond, selSchema, env)
			if err != nil {
				return nil, err
			}
			fu := &bFused{input: in, pred: pred, ctx: ctx}
			if kernels, ok := compileFilterKernels(sel.Cond, selSchema); ok {
				fu.kernels = kernels
			}
			// The projection compiles against the Select's output schema,
			// which row-for-row is the Select input's schema.
			if ords, ok := pureColOrds(x.Exprs, x.Input.Schema()); ok {
				fu.ords = ords
				return fu, nil
			}
			fns, err := compileAll(x.Exprs, x.Input.Schema(), env)
			if err != nil {
				return nil, err
			}
			fu.exprs = fns
			return fu, nil
		}
		in, err := buildBatch(x.Input, ctx, env)
		if err != nil {
			return nil, err
		}
		if ords, ok := pureColOrds(x.Exprs, x.Input.Schema()); ok {
			return &bProjectCols{input: in, ords: ords}, nil
		}
		fns, err := compileAll(x.Exprs, x.Input.Schema(), env)
		if err != nil {
			return nil, err
		}
		return &bProject{input: in, exprs: fns, ctx: ctx}, nil

	case *core.Distinct:
		in, err := buildBatch(x.Input, ctx, env)
		if err != nil {
			return nil, err
		}
		return &bDistinct{input: in}, nil

	case *core.Join:
		return buildBatchJoin(x, nil, ctx, env)

	case *core.GroupBy:
		in, err := buildBatch(x.Input, ctx, env)
		if err != nil {
			return nil, err
		}
		inSchema := x.Input.Schema()
		ords, err := resolveCols(x.GroupCols, inSchema)
		if err != nil {
			return nil, err
		}
		aggs, err := compileAggs(x.Aggs, inSchema, env)
		if err != nil {
			return nil, err
		}
		return &bHashGroupBy{input: in, ords: ords, aggs: aggs, ctx: ctx}, nil

	case *core.AggOp:
		in, err := buildBatch(x.Input, ctx, env)
		if err != nil {
			return nil, err
		}
		aggs, err := compileAggs(x.Aggs, x.Input.Schema(), env)
		if err != nil {
			return nil, err
		}
		return &bScalarAgg{input: in, aggs: aggs, ctx: ctx}, nil

	case *core.OrderBy:
		if x.Elided {
			// Pass-through, mirroring build: the input already provides
			// this exact ordering, the probe wrapper keeps the operator's
			// EXPLAIN ANALYZE line.
			return buildBatch(x.Input, ctx, env)
		}
		in, err := buildBatch(x.Input, ctx, env)
		if err != nil {
			return nil, err
		}
		keys, err := compileOrderKeys(x.Keys, x.Input.Schema(), env)
		if err != nil {
			return nil, err
		}
		return &bSort{input: in, keys: keys, ctx: ctx}, nil

	case *core.UnionAll:
		arity := x.Inputs[0].Schema().Len()
		ins := make([]BatchIterator, len(x.Inputs))
		for i, c := range x.Inputs {
			if c.Schema().Len() != arity {
				return nil, fmt.Errorf("exec: union input %d has %d columns, want %d", i, c.Schema().Len(), arity)
			}
			it, err := buildBatch(c, ctx, env)
			if err != nil {
				return nil, err
			}
			ins[i] = it
		}
		return &bUnionAll{inputs: ins}, nil

	case *core.Apply:
		outer, err := buildBatch(x.Outer, ctx, env)
		if err != nil {
			return nil, err
		}
		outerSchema := x.Outer.Schema()
		inner, err := buildBatch(x.Inner, ctx, env.push(outerSchema))
		if err != nil {
			return nil, err
		}
		innerArity := x.Inner.Schema().Len()
		return &bApply{
			outer:        outer,
			inner:        inner,
			ctx:          ctx,
			outerApply:   x.Kind == core.OuterApply,
			innerArity:   innerArity,
			width:        outerSchema.Len() + innerArity,
			uncorrelated: len(core.OuterRefsIn(x.Inner)) == 0,
		}, nil

	case *core.Exists:
		in, err := buildBatch(x.Input, ctx, env)
		if err != nil {
			return nil, err
		}
		return &bExists{input: in, negated: x.Negated}, nil

	case *core.GApply:
		return buildBatchGApply(x, ctx, env)

	default:
		return nil, fmt.Errorf("exec: unknown logical operator %T", n)
	}
}

// buildBatchJoin compiles a join; postCond, when non-nil, is a parent
// Select's condition fused in as a post-filter over the join's output
// schema (see bHashJoin.post).
func buildBatchJoin(j *core.Join, postCond core.Expr, ctx *Context, env compileEnv) (BatchIterator, error) {
	left, err := buildBatch(j.Left, ctx, env)
	if err != nil {
		return nil, err
	}
	right, err := buildBatch(j.Right, ctx, env)
	if err != nil {
		return nil, err
	}
	outSchema := j.Schema()
	pred, err := compilePredicate(j.Cond, outSchema, env)
	if err != nil {
		return nil, err
	}
	var post func(types.Row, *Context) (bool, error)
	if postCond != nil {
		post, err = compilePredicate(postCond, outSchema, env)
		if err != nil {
			return nil, err
		}
	}
	pairs := j.EquiPairs()
	method := j.Method
	if method == core.JoinAuto {
		if len(pairs) > 0 {
			method = core.JoinHash
		} else {
			method = core.JoinNestedLoops
		}
	}
	leftArity := j.Left.Schema().Len()
	rightArity := j.Right.Schema().Len()
	if method == core.JoinMerge && len(pairs) == 1 {
		ls, rs := j.Left.Schema(), j.Right.Schema()
		lo, err := ls.Resolve(pairs[0].Left.Table, pairs[0].Left.Name)
		if err != nil {
			return nil, err
		}
		ro, err := rs.Resolve(pairs[0].Right.Table, pairs[0].Right.Name)
		if err != nil {
			return nil, err
		}
		// Same residual-free proof as the hash path below: the order-key
		// encoding is canonical over value equality, so an equal-range hit
		// cannot fail a condition the equi-pair fully covers.
		if len(core.ConjunctsOf(j.Cond)) == len(pairs) {
			pred = nil
		}
		return &bMergeJoin{
			left: left, right: right, pred: pred, post: post, ctx: ctx,
			leftOrd: lo, rightOrd: ro,
			outerJoin: j.Kind == core.LeftOuterJoin, rightArity: rightArity,
			width: leftArity + rightArity,
		}, nil
	}
	if (method == core.JoinHash || method == core.JoinMerge) && len(pairs) > 0 {
		leftOrds := make([]int, len(pairs))
		rightOrds := make([]int, len(pairs))
		ls, rs := j.Left.Schema(), j.Right.Schema()
		for i, p := range pairs {
			lo, err := ls.Resolve(p.Left.Table, p.Left.Name)
			if err != nil {
				return nil, err
			}
			ro, err := rs.Resolve(p.Right.Table, p.Right.Name)
			if err != nil {
				return nil, err
			}
			leftOrds[i], rightOrds[i] = lo, ro
		}
		// When every conjunct of the join condition is one of the
		// extracted equi-pairs, the hash probe already guarantees the
		// whole predicate: the key encoding is canonical (key equality is
		// exactly Compare equality, including cross-type numerics, -0.0
		// and NaN), so a bucket hit cannot fail the condition. Drop the
		// residual and let the probe emit whole buckets in a tight loop.
		if len(core.ConjunctsOf(j.Cond)) == len(pairs) {
			pred = nil
		}
		return &bHashJoin{
			left: left, right: right, pred: pred, post: post, ctx: ctx,
			leftOrds: leftOrds, rightOrds: rightOrds,
			outerJoin: j.Kind == core.LeftOuterJoin, rightArity: rightArity,
			width: leftArity + rightArity,
		}, nil
	}
	return &bNLJoin{
		left: left, right: right, pred: pred, post: post, ctx: ctx,
		outerJoin: j.Kind == core.LeftOuterJoin, rightArity: rightArity,
		width: leftArity + rightArity,
	}, nil
}

func buildBatchGApply(g *core.GApply, ctx *Context, env compileEnv) (BatchIterator, error) {
	outer, err := buildBatch(g.Outer, ctx, env)
	if err != nil {
		return nil, err
	}
	ords, err := resolveCols(g.GroupCols, g.Outer.Schema())
	if err != nil {
		return nil, err
	}
	var spools *spoolRegistry
	if !ctx.NoSpool {
		if roots := core.InvariantRoots(g.Inner); len(roots) > 0 {
			spools = newSpoolRegistry(roots)
		}
	}
	prevSpools := ctx.spools
	ctx.spools = spools
	inner, err := buildBatch(g.Inner, ctx, env)
	ctx.spools = prevSpools
	if err != nil {
		return nil, err
	}
	return &bgapply{
		outer:      outer,
		inner:      inner,
		spools:     spools,
		innerPlan:  g.Inner,
		plan:       g,
		innerArity: g.Inner.Schema().Len(),
		env:        env,
		ctx:        ctx,
		ords:       ords,
		groupVar:   g.GroupVar,
		sortPart:   g.Partition == core.PartitionSort,
		ordered:    core.GApplyOuterOrdered(g),
		correlated: len(core.OuterRefsIn(g.Inner)) > 0,
	}, nil
}
