package exec

import (
	"fmt"
	"testing"
	"testing/quick"

	"gapplydb/internal/core"
	"gapplydb/internal/types"
)

// renderRows prints a result row-for-row; parallel execution must match
// serial execution byte-for-byte, ordering included.
func renderRows(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	return out
}

func runAtDOP(t *testing.T, mk func(ctx *Context) *core.GApply, dop int) (*Result, Counters) {
	t.Helper()
	ctx := fixture(t)
	ctx.DOP = dop
	res := mustRun(t, mk(ctx), ctx)
	return res, ctx.Counters
}

// TestGApplyParallelMatchesSerial pins the tentpole contract: for every
// workload shape and partition strategy, executing the groups across a
// worker pool produces exactly the rows serial execution produces, in
// exactly the same order, with exactly the same counter totals.
func TestGApplyParallelMatchesSerial(t *testing.T) {
	shapes := []struct {
		name string
		mk   func(ctx *Context) *core.GApply
	}{
		{"Q1Hash", func(ctx *Context) *core.GApply { return gapplyQ1(ctx, core.PartitionHash) }},
		{"Q1Sort", func(ctx *Context) *core.GApply { return gapplyQ1(ctx, core.PartitionSort) }},
		{"Q2", gapplyQ2},
	}
	for _, s := range shapes {
		serial, serialCounters := runAtDOP(t, s.mk, 1)
		want := renderRows(serial.Rows)
		for _, dop := range []int{2, 3, 8} {
			par, parCounters := runAtDOP(t, s.mk, dop)
			got := renderRows(par.Rows)
			if len(got) != len(want) {
				t.Fatalf("%s dop=%d: %d rows, want %d", s.name, dop, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s dop=%d: row %d = %s, want %s", s.name, dop, i, got[i], want[i])
				}
			}
			// The serial/parallel split counters are the one intentional
			// difference between the paths: every group must move from
			// the serial tally to the parallel one, totals preserved.
			if parCounters.SerialGroupExecs != 0 ||
				parCounters.ParallelGroupExecs != serialCounters.SerialGroupExecs {
				t.Errorf("%s dop=%d: group-exec split %d/%d, want 0/%d",
					s.name, dop, parCounters.SerialGroupExecs,
					parCounters.ParallelGroupExecs, serialCounters.SerialGroupExecs)
			}
			norm := func(c Counters) Counters {
				c.SerialGroupExecs, c.ParallelGroupExecs = 0, 0
				return c
			}
			if norm(parCounters) != norm(serialCounters) {
				t.Errorf("%s dop=%d: counters %+v, want %+v", s.name, dop, parCounters, serialCounters)
			}
		}
	}
}

// TestGApplyParallelRandomized extends the formal-semantics property
// check: on random multisets, every parallel degree reproduces the
// serial output exactly, under both partition strategies.
func TestGApplyParallelRandomized(t *testing.T) {
	f := func(keys []uint8, useSort bool) bool {
		cat := buildFixtureCatalog()
		tab, err := cat.Lookup("partsupp")
		if err != nil {
			return false
		}
		tab.Rows = nil
		for i, k := range keys {
			tab.Rows = append(tab.Rows, types.Row{types.NewInt(int64(i)), types.NewInt(int64(k % 16))})
		}
		hint := core.PartitionHash
		if useSort {
			hint = core.PartitionSort
		}
		mk := func() *core.GApply {
			gs := &core.GroupScan{Var: "g"}
			pgq := &core.AggOp{Input: gs, Aggs: []core.AggSpec{
				{Fn: "count", Star: true, As: "n"},
				{Fn: "min", Arg: core.Col("ps_partkey"), As: "lo"},
				{Fn: "max", Arg: core.Col("ps_partkey"), As: "hi"},
			}}
			ga := core.NewGApply(&core.Scan{Table: "partsupp", Def: tab.Def},
				[]*core.ColRef{core.Col("ps_suppkey")}, "g", pgq)
			ga.Partition = hint
			return ga
		}
		var want []string
		for _, dop := range []int{1, 2, 7} {
			ctx := NewContext(cat)
			ctx.DOP = dop
			res, err := Run(mk(), ctx)
			if err != nil {
				return false
			}
			got := renderRows(res.Rows)
			if dop == 1 {
				want = got
				continue
			}
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGApplyParallelErrorPropagates: a per-group query that fails must
// surface its error through the reorder stage, and the pool must wind
// down cleanly (the -race run would flag leaked workers touching freed
// state).
func TestGApplyParallelErrorPropagates(t *testing.T) {
	ctx := fixture(t)
	ctx.DOP = 4
	gs := &core.GroupScan{Var: "g"}
	// abs() of a string fails at evaluation time in every group.
	pgq := core.NewProject(gs,
		[]core.Expr{&core.Func{Name: "abs", Args: []core.Expr{core.Col("p_name")}}},
		[]string{"boom"})
	ga := core.NewGApply(joined(ctx), []*core.ColRef{core.Col("ps_suppkey")}, "g", pgq)
	if _, err := Run(ga, ctx); err == nil {
		t.Fatal("per-group failure must propagate out of parallel GApply")
	}
}

// TestGApplyCorrelatedInnerFallsBackSerial pins the safety valve: a
// per-group query that reads the enclosing Apply's outer row cannot be
// cloned into workers, so GApply keeps the paper's serial execution for
// it — and still computes the right answer at any requested DOP.
func TestGApplyCorrelatedInnerFallsBackSerial(t *testing.T) {
	ctx := fixture(t)
	ctx.DOP = 8
	// For each supplier s: GApply over partsupp grouped by ps_partkey,
	// whose per-group query keeps the group's rows matching s — the
	// OuterRef makes the inner correlated.
	gs := &core.GroupScan{Var: "g"}
	pgq := &core.Select{
		Input: gs,
		Cond:  &core.Cmp{Op: "=", L: core.Col("ps_suppkey"), R: &core.OuterRef{Name: "s_suppkey"}},
	}
	ga := core.NewGApply(scan(ctx, "partsupp"), []*core.ColRef{core.Col("ps_partkey")}, "g", pgq)
	it, err := buildGApply(ga, ctx, compileEnv{}.push(scan(ctx, "supplier").Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if !it.(*gapply).correlated {
		t.Fatal("OuterRef in the per-group query must mark the GApply correlated")
	}
	if it.(*gapply).degree() != 1 {
		t.Error("correlated GApply must fall back to serial execution")
	}

	// End-to-end through Apply: the full plan must agree with the flat
	// join it is equivalent to.
	app := &core.Apply{Outer: scan(ctx, "supplier"), Inner: ga}
	res := mustRun(t, app, ctx)
	rows := 0
	for _, r := range res.Rows {
		// supplier row ++ (ps_partkey, ps_partkey, ps_suppkey): the kept
		// rows are exactly the supplier's partsupp entries.
		if r[0].Int() != r[4].Int() {
			t.Fatalf("row pairs wrong supplier: %v", r)
		}
		rows++
	}
	if rows != 5 { // |partsupp|
		t.Errorf("correlated GApply kept %d rows, want 5", rows)
	}
}

// TestGApplyParallelEarlyClose: closing the iterator mid-stream must
// stop the pool without deadlocking, even though most groups were never
// consumed.
func TestGApplyParallelEarlyClose(t *testing.T) {
	cat := buildFixtureCatalog()
	tab, err := cat.Lookup("partsupp")
	if err != nil {
		t.Fatal(err)
	}
	tab.Rows = nil
	for i := 0; i < 400; i++ {
		tab.Rows = append(tab.Rows, types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 100))})
	}
	ctx := NewContext(cat)
	ctx.DOP = 4
	gs := &core.GroupScan{Var: "g"}
	pgq := &core.AggOp{Input: gs, Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}}}
	ga := core.NewGApply(scan(ctx, "partsupp"), []*core.ColRef{core.Col("ps_suppkey")}, "g", pgq)
	it, err := Build(ga, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-execution after Close must still work (Apply relies on this).
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("re-opened run = %d rows, want 100", n)
	}
}
