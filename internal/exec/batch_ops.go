package exec

import (
	"sort"

	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// Batch counterparts of the basic operators in iterators.go. Each
// mirrors its row twin's Open/Close structure and counter effects
// exactly — the differential suite holds the two engines byte-identical
// — but moves batchSize rows per interface call.

// bScan produces a base table in zero-copy batches: each batch aliases
// a window of the table's row slice.
type bScan struct {
	table *storage.Table
	ctx   *Context
	pos   int
	out   Batch
}

func (s *bScan) Open() error { s.pos = 0; return nil }

func (s *bScan) NextBatch() (*Batch, error) {
	if s.pos >= len(s.table.Rows) {
		return nil, nil
	}
	end := s.pos + batchSize
	if end > len(s.table.Rows) {
		end = len(s.table.Rows)
	}
	n := end - s.pos
	// Leaf scans remain the engine's universal cancellation point, now
	// at batch granularity.
	if err := s.ctx.tickN(n); err != nil {
		return nil, err
	}
	s.out = Batch{Rows: s.table.Rows[s.pos:end]}
	s.pos = end
	s.ctx.Counters.RowsScanned += int64(n)
	return &s.out, nil
}

func (s *bScan) Close() error { return nil }

// bGroupScan produces the rows bound to a group variable in batches.
type bGroupScan struct {
	varName string
	ctx     *Context
	win     rowWindow
}

func (s *bGroupScan) Open() error {
	rows, err := s.ctx.Group(s.varName)
	if err != nil {
		return err
	}
	s.win.reset(rows)
	return nil
}

func (s *bGroupScan) NextBatch() (*Batch, error) {
	b := s.win.next()
	if b == nil {
		return nil, nil
	}
	if err := s.ctx.tickN(b.Len()); err != nil {
		return nil, err
	}
	s.ctx.Counters.GroupScanRows += int64(b.Len())
	return b, nil
}

func (s *bGroupScan) Close() error { return nil }

// bFilter narrows each input batch's selection. When the predicate
// kernelized (vector.go) the narrowing is a column-at-a-time tight
// loop; otherwise the compiled row closure runs over the live rows —
// still one interface call and one cancellation poll per batch.
type bFilter struct {
	input   BatchIterator
	kernels []selKernel // non-nil: the vectorized path
	pred    func(types.Row, *Context) (bool, error)
	ctx     *Context

	sel []int // scratch selection, reused per batch
	out Batch
}

func (f *bFilter) Open() error { return f.input.Open() }

func (f *bFilter) NextBatch() (*Batch, error) {
	for {
		b, err := f.input.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		// Start from the input's selection, copied into scratch we own:
		// kernels narrow in place.
		if b.Sel != nil {
			f.sel = append(f.sel[:0], b.Sel...)
		} else {
			f.sel = identitySel(f.sel, len(b.Rows))
		}
		if f.kernels != nil {
			f.sel = runKernels(f.kernels, b.Rows, f.sel)
		} else {
			out := f.sel[:0]
			for _, i := range f.sel {
				pass, err := f.pred(b.Rows[i], f.ctx)
				if err != nil {
					return nil, err
				}
				if pass {
					out = append(out, i)
				}
			}
			f.sel = out
		}
		if len(f.sel) == 0 {
			continue
		}
		f.out = Batch{Rows: b.Rows, Sel: f.sel}
		return &f.out, nil
	}
}

func (f *bFilter) Close() error { return f.input.Close() }

// bProject computes output expressions for every live row, carving the
// output rows out of shared slabs (rowSlab) — a handful of allocations
// per query instead of one per row or even one per batch. The row
// values are stable as the contract requires; only the rows container
// is reused, which the contract permits (containers are transient).
type bProject struct {
	input BatchIterator
	exprs []evalFn
	ctx   *Context

	slab rowSlab
	rows []types.Row
	out  Batch
}

func (p *bProject) Open() error {
	p.slab.width = len(p.exprs)
	return p.input.Open()
}

func (p *bProject) NextBatch() (*Batch, error) {
	b, err := p.input.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	n := b.Len()
	width := len(p.exprs)
	p.rows = p.rows[:0]
	for i := 0; i < n; i++ {
		r := b.Row(i)
		dst := p.slab.carve(width)
		for j, f := range p.exprs {
			v, err := f(r, p.ctx)
			if err != nil {
				return nil, err
			}
			dst[j] = v
		}
		p.rows = append(p.rows, dst)
	}
	p.out = Batch{Rows: p.rows}
	return &p.out, nil
}

func (p *bProject) Close() error { return p.input.Close() }

// bProjectCols is the pure-column projection fast path: an ordinal
// gather into slab-carved rows.
type bProjectCols struct {
	input BatchIterator
	ords  []int

	slab rowSlab
	rows []types.Row
	out  Batch
}

func (p *bProjectCols) Open() error {
	p.slab.width = len(p.ords)
	return p.input.Open()
}

func (p *bProjectCols) NextBatch() (*Batch, error) {
	b, err := p.input.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	p.rows = projectBatch(b, p.ords, &p.slab, p.rows[:0])
	p.out = Batch{Rows: p.rows}
	return &p.out, nil
}

func (p *bProjectCols) Close() error { return p.input.Close() }

// projectBatch gathers the ordinals of every live row into slab-carved
// rows appended to dst (reused across batches by the caller).
func projectBatch(b *Batch, ords []int, slab *rowSlab, dst []types.Row) []types.Row {
	n := b.Len()
	width := len(ords)
	for i := 0; i < n; i++ {
		r := b.Row(i)
		out := slab.carve(width)
		for j, o := range ords {
			out[j] = r[o]
		}
		dst = append(dst, out)
	}
	return dst
}

// bFused is filter+project fused into one pass: narrow the selection,
// then gather only the survivors. build inserts it for Project-over-
// Select when neither node needs its own probe or spool identity, so
// the fusion is invisible to EXPLAIN ANALYZE and the spool counters.
type bFused struct {
	input   BatchIterator
	kernels []selKernel
	pred    func(types.Row, *Context) (bool, error)
	ords    []int    // pure-column projection…
	exprs   []evalFn // …or general expressions (exactly one is set)
	ctx     *Context

	sel  []int
	slab rowSlab
	rows []types.Row
	out  Batch
}

func (f *bFused) Open() error {
	if f.ords != nil {
		f.slab.width = len(f.ords)
	} else {
		f.slab.width = len(f.exprs)
	}
	return f.input.Open()
}

func (f *bFused) NextBatch() (*Batch, error) {
	for {
		b, err := f.input.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		if b.Sel != nil {
			f.sel = append(f.sel[:0], b.Sel...)
		} else {
			f.sel = identitySel(f.sel, len(b.Rows))
		}
		if f.kernels != nil {
			f.sel = runKernels(f.kernels, b.Rows, f.sel)
		} else {
			out := f.sel[:0]
			for _, i := range f.sel {
				pass, err := f.pred(b.Rows[i], f.ctx)
				if err != nil {
					return nil, err
				}
				if pass {
					out = append(out, i)
				}
			}
			f.sel = out
		}
		if len(f.sel) == 0 {
			continue
		}
		narrowed := Batch{Rows: b.Rows, Sel: f.sel}
		if f.ords != nil {
			f.rows = projectBatch(&narrowed, f.ords, &f.slab, f.rows[:0])
			f.out = Batch{Rows: f.rows}
			return &f.out, nil
		}
		n := narrowed.Len()
		width := len(f.exprs)
		f.rows = f.rows[:0]
		for i := 0; i < n; i++ {
			r := narrowed.Row(i)
			dst := f.slab.carve(width)
			for j, fn := range f.exprs {
				v, err := fn(r, f.ctx)
				if err != nil {
					return nil, err
				}
				dst[j] = v
			}
			f.rows = append(f.rows, dst)
		}
		f.out = Batch{Rows: f.rows}
		return &f.out, nil
	}
}

func (f *bFused) Close() error { return f.input.Close() }

// bDistinct narrows each batch to first-seen rows.
type bDistinct struct {
	input BatchIterator
	seen  map[string]bool
	sel   []int
	out   Batch
}

func (d *bDistinct) Open() error {
	d.seen = make(map[string]bool)
	return d.input.Open()
}

func (d *bDistinct) NextBatch() (*Batch, error) {
	for {
		b, err := d.input.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		if b.Sel != nil {
			d.sel = append(d.sel[:0], b.Sel...)
		} else {
			d.sel = identitySel(d.sel, len(b.Rows))
		}
		out := d.sel[:0]
		for _, i := range d.sel {
			k := b.Rows[i].KeyAll()
			if d.seen[k] {
				continue
			}
			d.seen[k] = true
			out = append(out, i)
		}
		if len(out) == 0 {
			continue
		}
		d.sel = out
		d.out = Batch{Rows: b.Rows, Sel: d.sel}
		return &d.out, nil
	}
}

func (d *bDistinct) Close() error { return d.input.Close() }

// bUnionAll concatenates its inputs, forwarding their batches. Like the
// row unionAll, inputs past the first are opened lazily during
// NextBatch and closed as they exhaust.
type bUnionAll struct {
	inputs []BatchIterator
	cur    int
}

func (u *bUnionAll) Open() error {
	u.cur = 0
	if len(u.inputs) == 0 {
		return nil
	}
	return u.inputs[0].Open()
}

func (u *bUnionAll) NextBatch() (*Batch, error) {
	for u.cur < len(u.inputs) {
		b, err := u.inputs[u.cur].NextBatch()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		if err := u.inputs[u.cur].Close(); err != nil {
			return nil, err
		}
		u.cur++
		if u.cur < len(u.inputs) {
			if err := u.inputs[u.cur].Open(); err != nil {
				return nil, err
			}
		}
	}
	return nil, nil
}

func (u *bUnionAll) Close() error {
	if u.cur < len(u.inputs) {
		return u.inputs[u.cur].Close()
	}
	return nil
}

// bSort materializes its input, sorts stably by the compiled keys, and
// emits the sorted rows in aliased windows.
type bSort struct {
	input BatchIterator
	keys  []compiledKey
	ctx   *Context
	rows  []types.Row
	win   rowWindow
}

func (s *bSort) Open() error {
	if err := s.input.Open(); err != nil {
		return err
	}
	type keyed struct {
		row  types.Row
		keys types.Row
	}
	var data []keyed
	for {
		b, err := s.input.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		if err := s.ctx.tickN(n); err != nil {
			return err
		}
		// One key slab per batch, mirroring the output-row slabs.
		slab := make(types.Row, n*len(s.keys))
		for i := 0; i < n; i++ {
			r := b.Row(i)
			kv := slab[i*len(s.keys) : (i+1)*len(s.keys) : (i+1)*len(s.keys)]
			for j, k := range s.keys {
				v, err := k.fn(r, s.ctx)
				if err != nil {
					return err
				}
				kv[j] = v
			}
			data = append(data, keyed{row: r, keys: kv})
		}
	}
	if err := s.input.Close(); err != nil {
		return err
	}
	sort.SliceStable(data, func(i, j int) bool {
		for k := range s.keys {
			c := types.SortCompare(data[i].keys[k], data[j].keys[k])
			if c == 0 {
				continue
			}
			if s.keys[k].desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	s.rows = make([]types.Row, len(data))
	for i, d := range data {
		s.rows[i] = d.row
	}
	s.win.reset(s.rows)
	return nil
}

func (s *bSort) NextBatch() (*Batch, error) {
	return s.win.next(), nil
}

func (s *bSort) Close() error {
	s.rows = nil
	s.win.reset(nil)
	return nil
}

// bExists consumes its input and emits a single zero-column row when
// the input is nonempty (or empty, when negated). It pulls one batch
// where the row engine pulls one row; the upstream may therefore do up
// to one batch of extra work — outputs are identical, and the
// differential suite compares outputs, not work counters.
type bExists struct {
	input   BatchIterator
	negated bool
	done    bool
	emit    bool
	out     Batch
}

func (e *bExists) Open() error {
	e.done = false
	if err := e.input.Open(); err != nil {
		return err
	}
	b, err := e.input.NextBatch()
	if err != nil {
		return err
	}
	if err := e.input.Close(); err != nil {
		return err
	}
	e.emit = (b.Len() > 0) != e.negated
	return nil
}

func (e *bExists) NextBatch() (*Batch, error) {
	if e.done || !e.emit {
		return nil, nil
	}
	e.done = true
	e.out = Batch{Rows: []types.Row{{}}}
	return &e.out, nil
}

func (e *bExists) Close() error { return nil }
