// Package bind lowers SQL ASTs to the logical algebra. It performs name
// resolution (including correlation: references that resolve only in an
// enclosing query become OuterRefs), normalizes subqueries into Apply
// operators (the paper's "apply is a logical operator that models a
// subquery"), hoists aggregates into GroupBy/Aggregate operators, and
// builds GApply nodes from the extended syntax.
package bind

import (
	"fmt"
	"strings"

	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/sql"
	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// Binder lowers statements against a catalog.
type Binder struct {
	cat *storage.Catalog
	seq int // unique-name counter for __sq/__agg columns
}

// New returns a binder over the catalog.
func New(cat *storage.Catalog) *Binder { return &Binder{cat: cat} }

// Bind lowers a parsed statement to a logical plan.
func (b *Binder) Bind(stmt *sql.SelectStmt) (core.Node, error) {
	return b.bindSelect(stmt, nil)
}

// scope is one level of name visibility: the current FROM's schema, the
// group variables visible at this level, and the enclosing scope.
type scope struct {
	parent    *scope
	sch       *schema.Schema
	groupVar  string // active group variable (its qualifier is stripped)
	groupVars map[string]*schema.Schema
}

// lookupGroupVar finds a visible group variable's schema.
func (s *scope) lookupGroupVar(name string) (*schema.Schema, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		for v, sch := range sc.groupVars {
			if strings.EqualFold(v, name) {
				return sch, true
			}
		}
	}
	return nil, false
}

func (b *Binder) fresh(prefix string) string {
	b.seq++
	return fmt.Sprintf("__%s%d", prefix, b.seq)
}

// bindSelect handles the union chain and the trailing ORDER BY.
func (b *Binder) bindSelect(stmt *sql.SelectStmt, parent *scope) (core.Node, error) {
	plan, err := b.bindCore(stmt, parent)
	if err != nil {
		return nil, err
	}
	for cur := stmt; cur.SetOp != nil; cur = cur.SetOp.Right {
		right, err := b.bindCore(cur.SetOp.Right, parent)
		if err != nil {
			return nil, err
		}
		if right.Schema().Len() != plan.Schema().Len() {
			return nil, fmt.Errorf("bind: union branches have %d and %d columns",
				plan.Schema().Len(), right.Schema().Len())
		}
		var u core.Node = &core.UnionAll{Inputs: []core.Node{plan, right}}
		if !cur.SetOp.All {
			u = &core.Distinct{Input: u}
		}
		plan = u
	}
	if len(stmt.OrderBy) > 0 {
		plan, err = b.bindOrderBy(plan, stmt.OrderBy, parent)
		if err != nil {
			return nil, err
		}
	}
	return plan, nil
}

// bindOrderBy attaches an OrderBy, preferring the output schema; when a
// key only resolves against the input of a top Project (SQL allows
// ordering by a column that is not selected), the sort goes below it.
func (b *Binder) bindOrderBy(plan core.Node, items []sql.OrderItem, parent *scope) (core.Node, error) {
	tryBind := func(sch *schema.Schema) ([]core.OrderKey, error) {
		sc := &scope{parent: parent, sch: sch}
		keys := make([]core.OrderKey, len(items))
		for i, it := range items {
			e, err := b.bindExpr(it.Expr, sc, nil, nil)
			if err != nil {
				return nil, err
			}
			if !colRefsResolve(e, sch) {
				return nil, fmt.Errorf("bind: ORDER BY key %s does not resolve", e)
			}
			keys[i] = core.OrderKey{Expr: e, Desc: it.Desc}
		}
		return keys, nil
	}
	keys, err := tryBind(plan.Schema())
	if err == nil {
		return &core.OrderBy{Input: plan, Keys: keys}, nil
	}
	// SQL allows ordering by a column that is not selected: when the plan
	// tops out in a Project, sort below it.
	if proj, ok := plan.(*core.Project); ok {
		if keys, err2 := tryBind(proj.Input.Schema()); err2 == nil {
			return proj.WithChildren([]core.Node{&core.OrderBy{Input: proj.Input, Keys: keys}}), nil
		}
	}
	return nil, err
}

func colRefsResolve(e core.Expr, sch *schema.Schema) bool {
	ok := true
	for _, c := range core.ColRefsIn(e) {
		if !sch.Has(c.Table, c.Name) {
			ok = false
		}
	}
	return ok
}

// bindCore lowers a single select core (no union chain, no order by).
func (b *Binder) bindCore(stmt *sql.SelectStmt, parent *scope) (core.Node, error) {
	if stmt.HasGApply() {
		return b.bindGApply(stmt, parent)
	}
	if stmt.GroupVar != "" {
		return nil, fmt.Errorf("bind: GROUP BY ... : %s requires a gapply(...) select item", stmt.GroupVar)
	}
	plan, origSchema, cur, err := b.bindFromWhere(stmt, parent)
	if err != nil {
		return nil, err
	}

	// Expand stars against the original FROM schema (before WHERE
	// normalization possibly extended it with subquery columns).
	items, err := expandStars(stmt.Items, origSchema)
	if err != nil {
		return nil, err
	}

	// Bind select items, hoisting aggregates into specs.
	var specs []core.AggSpec
	exprs := make([]core.Expr, len(items))
	names := make([]string, len(items))
	for i, it := range items {
		e, err := b.bindExpr(it.Expr, cur, &specs, nil)
		if err != nil {
			return nil, err
		}
		exprs[i] = e
		names[i] = it.Alias
		if names[i] == "" {
			if agg, ok := it.Expr.(*sql.AggCall); ok {
				// A bare aggregate keeps its display name.
				names[i] = displayAggName(agg)
			}
		}
	}

	// HAVING binds in the same aggregate-hoisting pass.
	var havingExpr core.Expr
	if stmt.Having != nil {
		if len(stmt.GroupBy) == 0 {
			return nil, fmt.Errorf("bind: HAVING requires GROUP BY")
		}
		havingExpr, err = b.bindExpr(stmt.Having, cur, &specs, nil)
		if err != nil {
			return nil, err
		}
	}

	switch {
	case len(stmt.GroupBy) > 0:
		groupCols, err := b.bindGroupCols(stmt.GroupBy, plan.Schema())
		if err != nil {
			return nil, err
		}
		gb := &core.GroupBy{Input: plan, GroupCols: groupCols, Aggs: specs}
		if err := validateOverGrouped(exprs, havingExpr, gb.Schema()); err != nil {
			return nil, err
		}
		plan = gb
		if havingExpr != nil {
			plan = &core.Select{Input: plan, Cond: havingExpr}
		}
	case len(specs) > 0:
		ag := &core.AggOp{Input: plan, Aggs: specs}
		if err := validateOverGrouped(exprs, nil, ag.Schema()); err != nil {
			return nil, err
		}
		plan = ag
	}

	plan = core.NewProject(plan, exprs, names)
	if stmt.Distinct {
		plan = &core.Distinct{Input: plan}
	}
	return plan, nil
}

// displayAggName renders count(*) / avg(p_x) style output names.
func displayAggName(a *sql.AggCall) string {
	if a.Star {
		return a.Fn + "(*)"
	}
	if id, ok := a.Arg.(*sql.Ident); ok {
		d := ""
		if a.Distinct {
			d = "distinct "
		}
		return a.Fn + "(" + d + id.Name + ")"
	}
	return ""
}

// validateOverGrouped checks that post-aggregation expressions reference
// only grouping columns and aggregate results.
func validateOverGrouped(exprs []core.Expr, having core.Expr, sch *schema.Schema) error {
	check := func(e core.Expr) error {
		for _, c := range core.ColRefsIn(e) {
			if !sch.Has(c.Table, c.Name) {
				return fmt.Errorf("bind: column %s must appear in GROUP BY or inside an aggregate", c)
			}
		}
		return nil
	}
	for _, e := range exprs {
		if err := check(e); err != nil {
			return err
		}
	}
	if having != nil {
		return check(having)
	}
	return nil
}

func expandStars(items []sql.SelectItem, sch *schema.Schema) ([]sql.SelectItem, error) {
	var out []sql.SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		for _, c := range sch.Cols {
			out = append(out, sql.SelectItem{Expr: &sql.Ident{Table: c.Table, Name: c.Name}})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bind: empty select list")
	}
	return out, nil
}

func (b *Binder) bindGroupCols(cols []sql.ColName, sch *schema.Schema) ([]*core.ColRef, error) {
	out := make([]*core.ColRef, len(cols))
	for i, c := range cols {
		if _, err := sch.Resolve(c.Table, c.Name); err != nil {
			return nil, fmt.Errorf("bind: grouping column: %w", err)
		}
		out[i] = &core.ColRef{Table: c.Table, Name: c.Name}
	}
	return out, nil
}

// bindFromWhere builds the FROM join tree and normalizes WHERE. It
// returns the plan (possibly extended with subquery columns by Apply
// normalization), the original FROM schema, and the current scope.
func (b *Binder) bindFromWhere(stmt *sql.SelectStmt, parent *scope) (core.Node, *schema.Schema, *scope, error) {
	if len(stmt.From) == 0 {
		return nil, nil, nil, fmt.Errorf("bind: FROM clause is required")
	}
	var plan core.Node
	groupVar := ""
	for i, tr := range stmt.From {
		node, gv, err := b.bindTableRef(tr, parent)
		if err != nil {
			return nil, nil, nil, err
		}
		// A group variable may appear alongside base tables — "from g,
		// supplier where ..." joins the group with a base relation inside
		// the per-group query (the join-heavy inners §5's Q2–Q4 describe);
		// the invariant base-table side is what GApply's spool layer
		// materializes once. Only a second *distinct* group variable is
		// rejected: one scope strips one qualifier.
		if gv != "" {
			if groupVar != "" && !strings.EqualFold(groupVar, gv) {
				return nil, nil, nil, fmt.Errorf("bind: FROM may reference at most one group variable (found %s and %s)", groupVar, gv)
			}
			groupVar = gv
		}
		if i == 0 {
			plan = node
		} else {
			plan = &core.Join{Left: plan, Right: node, Cond: nil}
		}
	}
	origSchema := plan.Schema()
	cur := &scope{parent: parent, sch: origSchema, groupVar: groupVar}
	if stmt.Where != nil {
		var err error
		plan, err = b.normalizeWhere(plan, stmt.Where, cur)
		if err != nil {
			return nil, nil, nil, err
		}
		cur.sch = plan.Schema()
	}
	return plan, origSchema, cur, nil
}

// bindTableRef lowers one FROM entry. The second result is the group
// variable name when the entry references one.
func (b *Binder) bindTableRef(tr sql.TableRef, parent *scope) (core.Node, string, error) {
	if tr.Subquery != nil {
		sub, err := b.bindSelect(tr.Subquery, parent)
		if err != nil {
			return nil, "", err
		}
		cols := make([]*core.ColRef, sub.Schema().Len())
		for i, c := range sub.Schema().Cols {
			cols[i] = &core.ColRef{Table: c.Table, Name: c.Name}
		}
		if tr.ColNames != nil && len(tr.ColNames) != len(cols) {
			return nil, "", fmt.Errorf("bind: derived table %s declares %d columns, subquery has %d",
				tr.Alias, len(tr.ColNames), len(cols))
		}
		p := core.ProjectCols(sub, cols)
		p.Qualifier = tr.Alias
		if tr.ColNames != nil {
			p.Names = tr.ColNames
		}
		return p, "", nil
	}
	if parent != nil {
		if sch, ok := parent.lookupGroupVar(tr.Table); ok {
			if tr.Alias != "" && !strings.EqualFold(tr.Alias, tr.Table) {
				return nil, "", fmt.Errorf("bind: group variable %s cannot be aliased", tr.Table)
			}
			return &core.GroupScan{Var: tr.Table, Sch: sch}, tr.Table, nil
		}
	}
	tab, err := b.cat.Lookup(tr.Table)
	if err != nil {
		return nil, "", err
	}
	return &core.Scan{Table: tab.Def.Name, Def: tab.Def, Alias: tr.Alias}, "", nil
}

// normalizeWhere rewrites the WHERE clause over plan: EXISTS conjuncts
// become Apply+Exists (the paper's group/row selection shape), scalar
// subqueries become Apply operators whose single output column replaces
// the subquery in the predicate, and what remains becomes a Select.
func (b *Binder) normalizeWhere(plan core.Node, where sql.Expr, cur *scope) (core.Node, error) {
	conjuncts := splitConjuncts(where)
	var residual []core.Expr
	for _, c := range conjuncts {
		if ex, ok := c.(*sql.ExistsExpr); ok {
			sub, err := b.bindSelect(ex.Sub, cur)
			if err != nil {
				return nil, err
			}
			plan = &core.Apply{
				Outer: plan,
				Inner: &core.Exists{Input: sub, Negated: ex.Negated},
			}
			cur.sch = plan.Schema()
			continue
		}
		sq := &subqCollector{b: b, scope: cur}
		e, err := b.bindExpr(c, cur, nil, sq)
		if err != nil {
			return nil, err
		}
		for _, a := range sq.applies {
			plan = &core.Apply{Outer: plan, Inner: a.inner, Kind: a.kind}
			cur.sch = plan.Schema()
		}
		residual = append(residual, e)
	}
	if len(residual) > 0 {
		plan = &core.Select{Input: plan, Cond: core.AndAll(residual)}
	}
	return plan, nil
}

func splitConjuncts(e sql.Expr) []sql.Expr {
	if l, ok := e.(*sql.Logical); ok && l.Op == "and" {
		var out []sql.Expr
		for _, o := range l.Ops {
			out = append(out, splitConjuncts(o)...)
		}
		return out
	}
	return []sql.Expr{e}
}

// pendingApply is one subquery hoisted out of a predicate.
type pendingApply struct {
	inner core.Node
	kind  core.ApplyKind
}

// subqCollector accumulates scalar subqueries found while binding a
// predicate.
type subqCollector struct {
	b       *Binder
	scope   *scope
	applies []pendingApply
}

func (s *subqCollector) add(sub *sql.SelectStmt) (core.Expr, error) {
	plan, err := s.b.bindSelect(sub, s.scope)
	if err != nil {
		return nil, err
	}
	if plan.Schema().Len() != 1 {
		return nil, fmt.Errorf("bind: scalar subquery must return exactly one column, got %d", plan.Schema().Len())
	}
	name := s.b.fresh("sq")
	var renamed core.Node
	if p, ok := plan.(*core.Project); ok && len(p.Exprs) == 1 && p.Qualifier == "" {
		// Rename in place instead of stacking a second projection; the
		// transformation rules pattern-match Project(Aggregate(...)).
		renamed = &core.Project{Input: p.Input, Exprs: p.Exprs, Names: []string{name}}
	} else {
		col := plan.Schema().Cols[0]
		renamed = core.NewProject(plan, []core.Expr{&core.ColRef{Table: col.Table, Name: col.Name}}, []string{name})
	}
	kind := core.OuterApply
	if guaranteesOneRow(plan) {
		// Aggregate subqueries produce exactly one row even on empty
		// input, so a cross apply preserves the outer row count.
		kind = core.CrossApply
	}
	s.applies = append(s.applies, pendingApply{inner: renamed, kind: kind})
	return &core.ColRef{Name: name}, nil
}

// guaranteesOneRow reports whether the plan emits exactly one row on any
// input — true for a scalar aggregate, possibly wrapped in projections.
func guaranteesOneRow(n core.Node) bool {
	switch x := n.(type) {
	case *core.AggOp:
		return true
	case *core.Project:
		return guaranteesOneRow(x.Input)
	case *core.OrderBy:
		return guaranteesOneRow(x.Input)
	default:
		return false
	}
}

// bindExpr converts an AST expression. aggs, when non-nil, enables
// aggregate hoisting (select list / HAVING position); subq, when
// non-nil, enables scalar subqueries (WHERE position).
func (b *Binder) bindExpr(e sql.Expr, s *scope, aggs *[]core.AggSpec, subq *subqCollector) (core.Expr, error) {
	switch x := e.(type) {
	case *sql.Ident:
		return b.resolveIdent(x, s)

	case *sql.NumberLit:
		if x.IsFloat {
			return core.LitFloat(x.F), nil
		}
		return core.LitInt(x.I), nil

	case *sql.StringLit:
		return core.LitStr(x.S), nil

	case *sql.NullLit:
		return &core.Lit{V: types.Null}, nil

	case *sql.BoolLit:
		return &core.Lit{V: types.NewBool(x.B)}, nil

	case *sql.Binary:
		l, err := b.bindExpr(x.L, s, aggs, subq)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(x.R, s, aggs, subq)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+", "-", "*", "/":
			return &core.BinOp{Op: x.Op, L: l, R: r}, nil
		default:
			return &core.Cmp{Op: x.Op, L: l, R: r}, nil
		}

	case *sql.Logical:
		ops := make([]core.Expr, len(x.Ops))
		for i, o := range x.Ops {
			e, err := b.bindExpr(o, s, aggs, subq)
			if err != nil {
				return nil, err
			}
			ops[i] = e
		}
		if x.Op == "and" {
			return &core.And{Ops: ops}, nil
		}
		return &core.Or{Ops: ops}, nil

	case *sql.NotExpr:
		inner, err := b.bindExpr(x.E, s, aggs, subq)
		if err != nil {
			return nil, err
		}
		return &core.Not{Op: inner}, nil

	case *sql.AggCall:
		if aggs == nil {
			return nil, fmt.Errorf("bind: aggregate %s not allowed in this context", x.Fn)
		}
		spec := core.AggSpec{Fn: x.Fn, Star: x.Star, Distinct: x.Distinct, As: b.fresh("agg")}
		if !x.Star {
			arg, err := b.bindExpr(x.Arg, s, nil, subq)
			if err != nil {
				return nil, err
			}
			spec.Arg = arg
		}
		*aggs = append(*aggs, spec)
		return &core.ColRef{Name: spec.As}, nil

	case *sql.FuncCall:
		args := make([]core.Expr, len(x.Args))
		for i, a := range x.Args {
			e, err := b.bindExpr(a, s, aggs, subq)
			if err != nil {
				return nil, err
			}
			args[i] = e
		}
		return &core.Func{Name: x.Name, Args: args}, nil

	case *sql.SubqueryExpr:
		if subq == nil {
			return nil, fmt.Errorf("bind: scalar subqueries are only supported in WHERE")
		}
		return subq.add(x.Sub)

	case *sql.ExistsExpr:
		return nil, fmt.Errorf("bind: EXISTS is only supported as a top-level WHERE conjunct")

	default:
		return nil, fmt.Errorf("bind: unknown expression %T", e)
	}
}

// resolveIdent resolves a column reference: the current scope yields a
// ColRef; an enclosing scope yields an OuterRef (correlation). A
// reference qualified by the active group variable is unqualified first
// ("all columns in the joining tables are associated with x", §3.1).
func (b *Binder) resolveIdent(id *sql.Ident, s *scope) (core.Expr, error) {
	table, name := id.Table, id.Name
	first := true
	for sc := s; sc != nil; sc = sc.parent {
		t := table
		if t != "" && strings.EqualFold(t, sc.groupVar) {
			t = ""
		}
		if sc.sch != nil {
			if _, err := sc.sch.Resolve(t, name); err == nil {
				if first {
					return &core.ColRef{Table: t, Name: name}, nil
				}
				return &core.OuterRef{Table: t, Name: name}, nil
			} else if strings.Contains(err.Error(), "ambiguous") {
				return nil, err
			}
		}
		if sc.sch != nil {
			first = false
		}
	}
	return nil, fmt.Errorf("bind: unknown column %q", (&core.ColRef{Table: table, Name: name}).String())
}

// bindGApply lowers the paper's extended syntax into a GApply node.
func (b *Binder) bindGApply(stmt *sql.SelectStmt, parent *scope) (core.Node, error) {
	if len(stmt.Items) != 1 {
		return nil, fmt.Errorf("bind: gapply(...) must be the only select item")
	}
	if stmt.GroupVar == "" {
		return nil, fmt.Errorf("bind: gapply requires GROUP BY <cols> : <variable>")
	}
	if stmt.Distinct {
		return nil, fmt.Errorf("bind: SELECT DISTINCT gapply(...) is not supported")
	}
	if stmt.Having != nil {
		return nil, fmt.Errorf("bind: HAVING is not supported with gapply; filter inside the per-group query")
	}
	outer, _, cur, err := b.bindFromWhere(stmt, parent)
	if err != nil {
		return nil, err
	}
	if cur.groupVar != "" {
		return nil, fmt.Errorf("bind: gapply over a group variable is not supported; nest queries inside the per-group query instead")
	}
	groupCols, err := b.bindGroupCols(stmt.GroupBy, outer.Schema())
	if err != nil {
		return nil, err
	}
	pgqScope := &scope{
		parent:    parent,
		groupVars: map[string]*schema.Schema{stmt.GroupVar: outer.Schema()},
	}
	pgq, err := b.bindSelect(stmt.Items[0].GApply, pgqScope)
	if err != nil {
		return nil, fmt.Errorf("bind: per-group query: %w", err)
	}
	if len(core.GroupScansIn(pgq)) == 0 {
		return nil, fmt.Errorf("bind: the per-group query must read the group variable %s", stmt.GroupVar)
	}
	if names := stmt.Items[0].GApplyNames; names != nil {
		pgq, err = renameOutputs(pgq, names)
		if err != nil {
			return nil, err
		}
	}
	return core.NewGApply(outer, groupCols, stmt.GroupVar, pgq), nil
}

// renameOutputs renames the output columns of a bound select plan. The
// binder always tops a select core with a Project, so descending through
// order/distinct/union reaches one per branch.
func renameOutputs(n core.Node, names []string) (core.Node, error) {
	switch x := n.(type) {
	case *core.Project:
		if len(names) != len(x.Exprs) {
			return nil, fmt.Errorf("bind: as-list names %d columns, query returns %d", len(names), len(x.Exprs))
		}
		return &core.Project{Input: x.Input, Exprs: x.Exprs, Names: names, Qualifier: x.Qualifier}, nil
	case *core.OrderBy, *core.Distinct:
		child, err := renameOutputs(n.Children()[0], names)
		if err != nil {
			return nil, err
		}
		return n.WithChildren([]core.Node{child}), nil
	case *core.UnionAll:
		out := make([]core.Node, len(x.Inputs))
		for i, c := range x.Inputs {
			r, err := renameOutputs(c, names)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return &core.UnionAll{Inputs: out}, nil
	default:
		return nil, fmt.Errorf("bind: cannot rename outputs of %T", n)
	}
}
