package bind

import (
	"strings"
	"testing"

	"gapplydb/internal/core"
	"gapplydb/internal/exec"
	"gapplydb/internal/schema"
	"gapplydb/internal/sql"
	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// fixtureCatalog mirrors the executor tests' data set:
//
//	supplier: (1, alpha) (2, beta) (3, gamma)
//	part:     (1, bolt, 10, Brand#A) (2, nut, 20, Brand#B)
//	          (3, washer, 30, Brand#A) (4, screw, 40, Brand#B)
//	partsupp: s1 → p1, p2, p3;  s2 → p3, p4
func fixtureCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	mk := func(def *schema.TableDef, rows []types.Row) {
		tab, err := cat.Create(def)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if err := tab.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	mk(&schema.TableDef{
		Name: "supplier",
		Schema: schema.New(
			schema.Column{Name: "s_suppkey", Type: types.KindInt},
			schema.Column{Name: "s_name", Type: types.KindString}),
		PrimaryKey: []string{"s_suppkey"},
	}, []types.Row{
		{types.NewInt(1), types.NewString("alpha")},
		{types.NewInt(2), types.NewString("beta")},
		{types.NewInt(3), types.NewString("gamma")},
	})
	mk(&schema.TableDef{
		Name: "part",
		Schema: schema.New(
			schema.Column{Name: "p_partkey", Type: types.KindInt},
			schema.Column{Name: "p_name", Type: types.KindString},
			schema.Column{Name: "p_retailprice", Type: types.KindFloat},
			schema.Column{Name: "p_brand", Type: types.KindString}),
		PrimaryKey: []string{"p_partkey"},
	}, []types.Row{
		{types.NewInt(1), types.NewString("bolt"), types.NewFloat(10), types.NewString("Brand#A")},
		{types.NewInt(2), types.NewString("nut"), types.NewFloat(20), types.NewString("Brand#B")},
		{types.NewInt(3), types.NewString("washer"), types.NewFloat(30), types.NewString("Brand#A")},
		{types.NewInt(4), types.NewString("screw"), types.NewFloat(40), types.NewString("Brand#B")},
	})
	mk(&schema.TableDef{
		Name: "partsupp",
		Schema: schema.New(
			schema.Column{Name: "ps_partkey", Type: types.KindInt},
			schema.Column{Name: "ps_suppkey", Type: types.KindInt}),
		PrimaryKey: []string{"ps_partkey", "ps_suppkey"},
		ForeignKeys: []schema.ForeignKey{
			{Cols: []string{"ps_partkey"}, RefTable: "part", RefCols: []string{"p_partkey"}},
			{Cols: []string{"ps_suppkey"}, RefTable: "supplier", RefCols: []string{"s_suppkey"}},
		},
	}, []types.Row{
		{types.NewInt(1), types.NewInt(1)},
		{types.NewInt(2), types.NewInt(1)},
		{types.NewInt(3), types.NewInt(1)},
		{types.NewInt(3), types.NewInt(2)},
		{types.NewInt(4), types.NewInt(2)},
	})
	return cat
}

// run parses, binds and executes q against the fixture.
func run(t *testing.T, cat *storage.Catalog, q string) *exec.Result {
	t.Helper()
	plan := bindQuery(t, cat, q)
	ctx := exec.NewContext(cat)
	res, err := exec.Run(plan, ctx)
	if err != nil {
		t.Fatalf("exec %q: %v\nplan:\n%s", q, err, core.Format(plan))
	}
	return res
}

func bindQuery(t *testing.T, cat *storage.Catalog, q string) core.Node {
	t.Helper()
	stmt, _, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	plan, err := New(cat).Bind(stmt)
	if err != nil {
		t.Fatalf("bind %q: %v", q, err)
	}
	return plan
}

func bindErr(t *testing.T, cat *storage.Catalog, q string) error {
	t.Helper()
	stmt, _, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	_, err = New(cat).Bind(stmt)
	if err == nil {
		t.Fatalf("bind %q must fail", q)
	}
	return err
}

func TestBindSimpleProjectionFilter(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, "select p_name, p_retailprice * 2 as twice from part where p_retailprice >= 30")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Schema.Cols[1].Name != "twice" {
		t.Errorf("schema = %v", res.Schema)
	}
	if res.Rows[0][0].Str() != "washer" || res.Rows[0][1].Float() != 60 {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestBindJoinAndQualifiedStars(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, "select * from partsupp, part where ps_partkey = p_partkey")
	if len(res.Rows) != 5 || res.Schema.Len() != 6 {
		t.Fatalf("rows=%d schema=%v", len(res.Rows), res.Schema)
	}
	// Aliased self-join: both sides visible under their aliases.
	res = run(t, cat, `select a.p_name, b.p_name from part a, part b
		where a.p_partkey = b.p_partkey and a.p_retailprice > 25`)
	if len(res.Rows) != 2 {
		t.Errorf("self join rows = %v", res.Rows)
	}
}

func TestBindGroupByAggregates(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, `select ps_suppkey, avg(p_retailprice) as avgprice, count(*) as n
		from partsupp, part where ps_partkey = p_partkey group by ps_suppkey`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	byKey := map[int64]types.Row{}
	for _, r := range res.Rows {
		byKey[r[0].Int()] = r
	}
	if byKey[1][1].Float() != 20 || byKey[1][2].Int() != 3 {
		t.Errorf("supplier 1 = %v", byKey[1])
	}
	if byKey[2][1].Float() != 35 || byKey[2][2].Int() != 2 {
		t.Errorf("supplier 2 = %v", byKey[2])
	}
}

func TestBindHaving(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, `select ps_suppkey from partsupp group by ps_suppkey having count(*) > 2`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Errorf("having rows = %v", res.Rows)
	}
}

func TestBindScalarAggregateNoGroup(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, "select count(*), avg(p_retailprice) from part")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 4 || res.Rows[0][1].Float() != 25 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Output names keep the display form.
	if res.Schema.Cols[0].Name != "count(*)" || res.Schema.Cols[1].Name != "avg(p_retailprice)" {
		t.Errorf("schema = %v", res.Schema)
	}
}

func TestBindRejectsUngroupedColumn(t *testing.T) {
	cat := fixtureCatalog(t)
	err := bindErr(t, cat, "select p_name, count(*) from part")
	if !strings.Contains(err.Error(), "GROUP BY") {
		t.Errorf("err = %v", err)
	}
	bindErr(t, cat, "select p_name from part group by p_brand")
}

func TestBindOrderBy(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, "select p_name from part order by p_retailprice desc")
	if res.Rows[0][0].Str() != "screw" || res.Rows[3][0].Str() != "bolt" {
		t.Errorf("order = %v", res.Rows)
	}
	// ORDER BY a column that is not selected (sort below the projection).
	res = run(t, cat, "select p_name from part order by p_partkey desc")
	if res.Rows[0][0].Str() != "screw" {
		t.Errorf("order below projection = %v", res.Rows)
	}
}

func TestBindDistinctAndUnion(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, "select distinct p_brand from part")
	if len(res.Rows) != 2 {
		t.Errorf("distinct = %v", res.Rows)
	}
	res = run(t, cat, "select p_brand from part union select p_brand from part")
	if len(res.Rows) != 2 {
		t.Errorf("union distinct = %v", res.Rows)
	}
	res = run(t, cat, "select p_brand from part union all select p_brand from part")
	if len(res.Rows) != 8 {
		t.Errorf("union all = %v", res.Rows)
	}
	bindErr(t, cat, "select p_brand, p_name from part union all select p_brand from part")
}

func TestBindDerivedTable(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, `select tmp.k, tmp.avgprice from
		(select ps_suppkey, avg(p_retailprice) from partsupp, part
		 where ps_partkey = p_partkey group by ps_suppkey) as tmp(k, avgprice)
		where tmp.avgprice > 25`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Errorf("derived = %v", res.Rows)
	}
	bindErr(t, cat, "select 1 from (select p_name from part) as t(a, b)")
}

func TestBindExistsSubquery(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, `select s_name from supplier where exists
		(select ps_partkey from partsupp where ps_suppkey = s_suppkey)`)
	if len(res.Rows) != 2 {
		t.Fatalf("exists = %v", res.Rows)
	}
	res = run(t, cat, `select s_name from supplier where not exists
		(select ps_partkey from partsupp where ps_suppkey = s_suppkey)`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "gamma" {
		t.Errorf("not exists = %v", res.Rows)
	}
}

func TestBindCorrelatedScalarSubquery(t *testing.T) {
	cat := fixtureCatalog(t)
	// Parts priced above their supplier's average (paper §2's Q2 shape,
	// one branch).
	res := run(t, cat, `select ps1.ps_suppkey, count(*) from partsupp ps1, part
		where p_partkey = ps_partkey and p_retailprice >=
			(select avg(p_retailprice) from partsupp, part
			 where p_partkey = ps_partkey and ps_suppkey = ps1.ps_suppkey)
		group by ps1.ps_suppkey`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	counts := map[int64]int64{}
	for _, r := range res.Rows {
		counts[r[0].Int()] = r[1].Int()
	}
	// Supplier 1: avg 20 → parts ≥ 20: nut, washer = 2.
	// Supplier 2: avg 35 → parts ≥ 35: screw = 1.
	if counts[1] != 2 || counts[2] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestBindUncorrelatedScalarSubquery(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, `select p_name from part
		where p_retailprice > (select avg(p_retailprice) from part)`)
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestBindGApplyQ1(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, `
		select gapply(select p_name, p_retailprice, null from tmpSupp
		              union all
		              select null, null, avg(p_retailprice) from tmpSupp)
		       as (name, price, avgprice)
		from partsupp, part
		where ps_partkey = p_partkey
		group by ps_suppkey : tmpSupp`)
	if len(res.Rows) != 7 {
		t.Fatalf("Q1 rows = %v", res.Rows)
	}
	if res.Schema.Cols[0].Name != "ps_suppkey" ||
		res.Schema.Cols[1].Name != "name" || res.Schema.Cols[3].Name != "avgprice" {
		t.Errorf("schema = %v", res.Schema)
	}
	avgs := map[int64]float64{}
	for _, r := range res.Rows {
		if !r[3].IsNull() {
			avgs[r[0].Int()] = r[3].Float()
		}
	}
	if avgs[1] != 20 || avgs[2] != 35 {
		t.Errorf("avgs = %v", avgs)
	}
}

func TestBindGApplyQ2PaperSyntax(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, `
		select gapply(
			select count(*), null from tmpSupp
			where p_retailprice >= (select avg(p_retailprice) from tmpSupp)
			union all
			select null, count(*) from tmpSupp
			where p_retailprice < (select avg(p_retailprice) from tmpSupp)
		) as (count_above, count_below)
		from partsupp, part
		where ps_partkey = p_partkey
		group by ps_suppkey : tmpSupp`)
	if len(res.Rows) != 4 {
		t.Fatalf("Q2 rows = %v", res.Rows)
	}
	above := map[int64]int64{}
	below := map[int64]int64{}
	for _, r := range res.Rows {
		if !r[1].IsNull() {
			above[r[0].Int()] = r[1].Int()
		}
		if !r[2].IsNull() {
			below[r[0].Int()] = r[2].Int()
		}
	}
	if above[1] != 2 || below[1] != 1 || above[2] != 1 || below[2] != 1 {
		t.Errorf("above=%v below=%v", above, below)
	}
}

func TestBindGApplyGroupSelection(t *testing.T) {
	cat := fixtureCatalog(t)
	// §4.2: return the whole group when it contains an expensive part.
	res := run(t, cat, `
		select gapply(select * from g where exists
			(select p_partkey from g where p_retailprice > 35))
		from partsupp, part
		where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	if len(res.Rows) != 2 {
		t.Fatalf("group selection rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[0].Int() != 2 {
			t.Errorf("wrong group: %v", r)
		}
	}
}

func TestBindGApplyQualifiedGroupVarColumns(t *testing.T) {
	cat := fixtureCatalog(t)
	// g.p_name is stripped to an unqualified reference (§3.1: all columns
	// of the joining tables are associated with x).
	res := run(t, cat, `
		select gapply(select g.p_name from g where g.p_retailprice > 25)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	if len(res.Rows) != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestBindGApplyOrderByInsidePGQ(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, `
		select gapply(select p_name from g order by p_retailprice desc)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// First row of each group is its most expensive part.
	if res.Rows[0][1].Str() != "washer" && res.Rows[0][1].Str() != "screw" {
		t.Errorf("first of group = %v", res.Rows[0])
	}
}

func TestBindGApplyErrors(t *testing.T) {
	cat := fixtureCatalog(t)
	// Missing group variable.
	bindErr(t, cat, "select gapply(select count(*) from g) from part group by p_brand")
	// PGQ ignores the variable entirely.
	bindErr(t, cat, "select gapply(select count(*) from part) from part group by p_brand : g")
	// gapply mixed with other select items.
	bindErr(t, cat, "select p_brand, gapply(select count(*) from g) from part group by p_brand : g")
	// Group var with a plain query.
	bindErr(t, cat, "select p_brand from part group by p_brand : g")
	// as-list arity mismatch.
	bindErr(t, cat, "select gapply(select count(*) from g) as (a, b) from part group by p_brand : g")
	// Unknown grouping column.
	bindErr(t, cat, "select gapply(select count(*) from g) from part group by nosuch : g")
	// HAVING with gapply.
	bindErr(t, cat, "select gapply(select count(*) from g) from part group by p_brand : g having count(*) > 1")
}

func TestBindNameErrors(t *testing.T) {
	cat := fixtureCatalog(t)
	bindErr(t, cat, "select nosuch from part")
	bindErr(t, cat, "select p_name from nosuch")
	bindErr(t, cat, "select part.p_partkey from part a, part b") // alias hides base name
	// Ambiguity across a self-join.
	err := bindErr(t, cat, "select p_name from part a, part b")
	if !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("err = %v", err)
	}
}

func TestBindGApplySimpleAggregate(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, `
		select gapply(select count(*) from g) as (n)
		from part group by p_brand : g`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[1].Int() != 2 {
			t.Errorf("brand group %v count = %v", r[0], r[1])
		}
	}
	if res.Schema.Cols[1].Name != "n" {
		t.Errorf("schema = %v", res.Schema)
	}
}

func TestBindCoalesceInQuery(t *testing.T) {
	cat := fixtureCatalog(t)
	res := run(t, cat, "select coalesce(null, p_name) from part where p_partkey = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "bolt" {
		t.Errorf("coalesce = %v", res.Rows)
	}
}

func TestBindPlanShapes(t *testing.T) {
	cat := fixtureCatalog(t)
	// The gapply query produces a GApply root (possibly below OrderBy).
	plan := bindQuery(t, cat, `select gapply(select count(*) from g) from part group by p_brand : g`)
	if _, ok := plan.(*core.GApply); !ok {
		t.Errorf("plan root = %T\n%s", plan, core.Format(plan))
	}
	// Correlated subqueries become Apply operators, not raw expressions.
	plan = bindQuery(t, cat, `select p_name from part
		where p_retailprice > (select avg(p_retailprice) from part)`)
	applies := 0
	core.Walk(plan, func(n core.Node) {
		if _, ok := n.(*core.Apply); ok {
			applies++
		}
	})
	if applies != 1 {
		t.Errorf("applies = %d\n%s", applies, core.Format(plan))
	}
}
