// Package stats collects table statistics and implements the paper's
// §4.4 cost model for plans containing GApply: with a uniformity
// assumption over groups, cost(GApply) = cost(outer) + partitioning +
// (number of groups) × cost(per-group query on one average-size group).
// The number of groups is the number of distinct values in the grouping
// columns; the average group size is outer cardinality / groups.
package stats

import (
	"math"
	"strings"

	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// ColumnStats summarizes one column.
type ColumnStats struct {
	Distinct int64
	NullFrac float64
	Min, Max types.Value // numeric columns only
}

// TableStats summarizes one table.
type TableStats struct {
	Rows    int64
	Columns map[string]ColumnStats // keyed by lower-case column name
}

// Stats holds statistics for every table in a catalog.
type Stats struct {
	Tables map[string]TableStats // keyed by lower-case table name
}

// Collect scans the catalog and computes exact statistics. The engine is
// in-memory, so exact collection is cheap enough; a disk engine would
// sample instead, with the same interface.
func Collect(cat *storage.Catalog) *Stats {
	s := &Stats{Tables: make(map[string]TableStats)}
	for _, name := range cat.Names() {
		tab, err := cat.Lookup(name)
		if err != nil {
			continue
		}
		ts := TableStats{Rows: int64(tab.Cardinality()), Columns: make(map[string]ColumnStats)}
		for i, col := range tab.Def.Schema.Cols {
			seen := make(map[string]bool)
			var nulls int64
			var minV, maxV types.Value
			for _, r := range tab.Rows {
				v := r[i]
				if v.IsNull() {
					nulls++
					continue
				}
				seen[(types.Row{v}).KeyAll()] = true
				if v.K.Numeric() || v.K == types.KindDate {
					if minV.IsNull() {
						minV, maxV = v, v
					} else {
						if c, ok := types.Compare(v, minV); ok && c < 0 {
							minV = v
						}
						if c, ok := types.Compare(v, maxV); ok && c > 0 {
							maxV = v
						}
					}
				}
			}
			cs := ColumnStats{Distinct: int64(len(seen)), Min: minV, Max: maxV}
			if tab.Cardinality() > 0 {
				cs.NullFrac = float64(nulls) / float64(tab.Cardinality())
			}
			ts.Columns[strings.ToLower(col.Name)] = cs
		}
		s.Tables[strings.ToLower(name)] = ts
	}
	return s
}

// TableRows returns a table's cardinality (0 if unknown).
func (s *Stats) TableRows(table string) int64 {
	return s.Tables[strings.ToLower(table)].Rows
}

// ColumnDistinct returns the distinct count of table.column; when the
// table is unknown (derived columns), it searches all tables for the
// column name and falls back to a square-root heuristic on rows.
func (s *Stats) ColumnDistinct(table, column string, fallbackRows float64) float64 {
	column = strings.ToLower(column)
	if table != "" {
		if ts, ok := s.Tables[strings.ToLower(table)]; ok {
			if cs, ok := ts.Columns[column]; ok && cs.Distinct > 0 {
				return float64(cs.Distinct)
			}
		}
	}
	for _, ts := range s.Tables {
		if cs, ok := ts.Columns[column]; ok && cs.Distinct > 0 {
			return float64(cs.Distinct)
		}
	}
	d := math.Sqrt(fallbackRows)
	if d < 1 {
		d = 1
	}
	return d
}

// RangeSelectivity estimates the fraction of table.column values
// satisfying `column <op> literal` using min/max interpolation; 1/3 when
// unknown (the classic Selinger default).
func (s *Stats) RangeSelectivity(table, column, op string, lit types.Value) float64 {
	const def = 1.0 / 3
	find := func(ts TableStats) (ColumnStats, bool) {
		cs, ok := ts.Columns[strings.ToLower(column)]
		return cs, ok
	}
	var cs ColumnStats
	found := false
	if table != "" {
		if ts, ok := s.Tables[strings.ToLower(table)]; ok {
			cs, found = find(ts)
		}
	}
	if !found {
		for _, ts := range s.Tables {
			if c, ok := find(ts); ok {
				cs, found = c, true
				break
			}
		}
	}
	if !found || cs.Min.IsNull() || cs.Max.IsNull() || lit.IsNull() {
		return def
	}
	lo, hi, v := cs.Min.Float(), cs.Max.Float(), lit.Float()
	if hi <= lo {
		return def
	}
	frac := (v - lo) / (hi - lo)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	switch op {
	case "<", "<=":
		return clampSel(frac)
	case ">", ">=":
		return clampSel(1 - frac)
	default:
		return def
	}
}

func clampSel(x float64) float64 {
	if x < 0.001 {
		return 0.001
	}
	if x > 1 {
		return 1
	}
	return x
}
