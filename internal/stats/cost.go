package stats

import (
	"math"

	"gapplydb/internal/core"
)

// Estimate is a cardinality + cost estimate for a plan node.
type Estimate struct {
	Rows float64
	Cost float64
}

// Per-row work constants. Only their ratios matter; they are tuned so
// the optimizer's choices match the executor's observed behaviour
// (hashing a row costs more than streaming it, sorting carries a log
// factor, re-executing an apply inner is a full inner cost).
const (
	cScanRow    = 1.0
	cFilterRow  = 0.2
	cProjectRow = 0.2
	cHashRow    = 1.5 // insert or probe
	cSortRow    = 1.0 // multiplied by log2(n)
	cGroupRow   = 1.8 // partition/aggregate bookkeeping per row
	cEmitRow    = 0.1
	cIndexRow   = 1.05 // sorted-run gather: heap fetch through one indirection
	cMergeRow   = 0.5  // merge join per-row work: stream left, binary-probe right
)

// Estimator derives cardinalities and costs from collected statistics.
// Estimate never mutates the receiver, so one Estimator may serve
// concurrent planning sessions (the stats it reads are frozen at
// Collect time).
type Estimator struct {
	Stats *Stats

	// groupRows is the assumed GroupScan cardinality while costing a
	// per-group query under the §4.4 uniformity assumption; it is set
	// only on the copied estimator estimateGApply descends with.
	groupRows float64

	// memo, when non-nil, records the estimate of every node visited —
	// set only on the copied estimator EstimateAll descends with, so the
	// shared estimator stays immutable under concurrent planning.
	memo map[core.Node]Estimate
}

// NewEstimator wraps stats for cost estimation.
func NewEstimator(s *Stats) *Estimator { return &Estimator{Stats: s} }

// EstimateAll computes the estimate of every node in the plan in one
// walk, keyed by node identity. Unlike calling Estimate per subtree, the
// per-group query's nodes are costed in context (GroupScan at the §4.4
// average group size, not 1 row) — the numbers EXPLAIN prints next to
// each operator.
func (e *Estimator) EstimateAll(n core.Node) map[core.Node]Estimate {
	sub := *e
	sub.memo = make(map[core.Node]Estimate)
	sub.Estimate(n)
	return sub.memo
}

// Estimate computes the estimate for a plan tree.
func (e *Estimator) Estimate(n core.Node) Estimate {
	est := e.estimate(n)
	if e.memo != nil {
		e.memo[n] = est
	}
	return est
}

func (e *Estimator) estimate(n core.Node) Estimate {
	switch x := n.(type) {
	case *core.Scan:
		rows := float64(e.Stats.TableRows(x.Table))
		return Estimate{Rows: rows, Cost: rows * cScanRow}

	case *core.IndexScan:
		// Reading through the sorted run costs slightly more per row than
		// a heap scan (position indirection) but delivers rows in key
		// order — the savings show up as elided sorts above, not here.
		rows := float64(e.Stats.TableRows(x.Table))
		if x.HasLo {
			op := ">"
			if x.LoIncl {
				op = ">="
			}
			rows *= e.Stats.RangeSelectivity(x.Table, x.Cols[0], op, x.Lo)
		}
		if x.HasHi {
			op := "<"
			if x.HiIncl {
				op = "<="
			}
			rows *= e.Stats.RangeSelectivity(x.Table, x.Cols[0], op, x.Hi)
		}
		return Estimate{Rows: rows, Cost: rows * cIndexRow}

	case *core.GroupScan:
		rows := e.groupRows
		if rows <= 0 {
			rows = 1
		}
		return Estimate{Rows: rows, Cost: rows * cScanRow}

	case *core.Select:
		in := e.Estimate(x.Input)
		sel := e.selectivity(x.Cond, in.Rows)
		return Estimate{Rows: in.Rows * sel, Cost: in.Cost + in.Rows*cFilterRow}

	case *core.Project:
		in := e.Estimate(x.Input)
		return Estimate{Rows: in.Rows, Cost: in.Cost + in.Rows*cProjectRow}

	case *core.Distinct:
		in := e.Estimate(x.Input)
		out := in.Rows * 0.5
		if out < 1 {
			out = 1
		}
		return Estimate{Rows: out, Cost: in.Cost + in.Rows*cHashRow}

	case *core.Join:
		l, r := e.Estimate(x.Left), e.Estimate(x.Right)
		sel := 1.0
		pairs := x.EquiPairs()
		if len(pairs) > 0 {
			for _, p := range pairs {
				dl := e.Stats.ColumnDistinct(p.Left.Table, p.Left.Name, l.Rows)
				dr := e.Stats.ColumnDistinct(p.Right.Table, p.Right.Name, r.Rows)
				sel /= math.Max(dl, dr)
			}
		} else if x.Cond != nil {
			sel = 0.33
		}
		rows := l.Rows * r.Rows * sel
		if x.Kind == core.LeftOuterJoin && rows < l.Rows {
			rows = l.Rows
		}
		joinWork := r.Rows*cHashRow + l.Rows*cHashRow
		if x.Method == core.JoinMerge {
			// The right child delivers the equi-key order (index scan), so
			// the join neither builds nor probes a hash table: it encodes
			// the sorted right run and binary-searches it per left row.
			// The probe carries the search's log factor — a hash probe is
			// O(1), so merge only wins when the left (probe) side is small
			// relative to the hash build+probe work it avoids.
			joinWork = r.Rows*cMergeRow + l.Rows*cMergeRow*math.Log2(math.Max(r.Rows, 2))
		}
		cost := l.Cost + r.Cost + joinWork + rows*cEmitRow
		return Estimate{Rows: rows, Cost: cost}

	case *core.GroupBy:
		in := e.Estimate(x.Input)
		groups := e.distinctOf(x.GroupCols, x.Input, in.Rows)
		return Estimate{Rows: groups, Cost: in.Cost + in.Rows*cGroupRow}

	case *core.AggOp:
		in := e.Estimate(x.Input)
		return Estimate{Rows: 1, Cost: in.Cost + in.Rows*cGroupRow}

	case *core.OrderBy:
		in := e.Estimate(x.Input)
		if x.Elided {
			// The input already provides the order; the node is a marker.
			return Estimate{Rows: in.Rows, Cost: in.Cost}
		}
		return Estimate{Rows: in.Rows, Cost: in.Cost + sortCost(in.Rows)}

	case *core.UnionAll:
		var out Estimate
		for _, c := range x.Inputs {
			est := e.Estimate(c)
			out.Rows += est.Rows
			out.Cost += est.Cost
		}
		return out

	case *core.Apply:
		outer := e.Estimate(x.Outer)
		inner := e.Estimate(x.Inner)
		innerRows := inner.Rows
		execs := outer.Rows
		if len(core.OuterRefsIn(x.Inner)) == 0 {
			// Uncorrelated inners are cached across the outer loop.
			execs = 1
		}
		rows := outer.Rows * math.Max(innerRows, 1)
		if _, isExists := x.Inner.(*core.Exists); isExists {
			rows = outer.Rows * 0.5 // semijoin-style selectivity
		}
		return Estimate{Rows: rows, Cost: outer.Cost + execs*inner.Cost + rows*cEmitRow}

	case *core.Exists:
		in := e.Estimate(x.Input)
		return Estimate{Rows: 1, Cost: in.Cost}

	case *core.GApply:
		return e.estimateGApply(x)

	default:
		var out Estimate
		for _, c := range n.Children() {
			est := e.Estimate(c)
			out.Rows += est.Rows
			out.Cost += est.Cost
		}
		return out
	}
}

// estimateGApply implements §4.4: uniform groups, per-group query costed
// once at the average group size and multiplied by the group count.
func (e *Estimator) estimateGApply(g *core.GApply) Estimate {
	outer := e.Estimate(g.Outer)
	groups := e.distinctOf(g.GroupCols, g.Outer, outer.Rows)
	avgGroup := 1.0
	if groups > 0 {
		avgGroup = outer.Rows / groups
	}

	// Cost the per-group query on a copy: mutating e.groupRows in place
	// would race when concurrent queries share the optimizer's estimator.
	sub := *e
	sub.groupRows = avgGroup
	perGroup := sub.Estimate(g.Inner)

	partition := outer.Rows * cHashRow
	if g.Partition == core.PartitionSort {
		partition = sortCost(outer.Rows)
		if core.GApplyOuterOrdered(g) {
			// The outer streams in group order already: partitioning is a
			// single linear run-cutting pass, no sort.
			partition = outer.Rows * cFilterRow
		}
	}
	return Estimate{
		Rows: groups * math.Max(perGroup.Rows, 1),
		Cost: outer.Cost + partition + groups*perGroup.Cost,
	}
}

// distinctOf estimates the distinct count of a column combination.
func (e *Estimator) distinctOf(cols []*core.ColRef, input core.Node, rows float64) float64 {
	d := 1.0
	for _, c := range cols {
		d *= e.Stats.ColumnDistinct(c.Table, c.Name, rows)
	}
	if d > rows && rows > 0 {
		d = rows
	}
	if d < 1 {
		d = 1
	}
	return d
}

// selectivity estimates the fraction of rows passing a predicate given
// the (already-estimated) input cardinality. Taking rows as a number
// rather than re-estimating the input subtree keeps Estimate linear in
// plan size.
func (e *Estimator) selectivity(cond core.Expr, rows float64) float64 {
	if cond == nil {
		return 1
	}
	switch x := cond.(type) {
	case *core.And:
		s := 1.0
		for _, o := range x.Ops {
			s *= e.selectivity(o, rows)
		}
		return s
	case *core.Or:
		s := 0.0
		for _, o := range x.Ops {
			oi := e.selectivity(o, rows)
			s = s + oi - s*oi
		}
		return s
	case *core.Not:
		return clampSel(1 - e.selectivity(x.Op, rows))
	case *core.Cmp:
		col, lit, op := core.CmpColLit(x)
		if col == nil {
			// col-to-col or computed comparison.
			if x.Op == "=" {
				return 0.1
			}
			return 1.0 / 3
		}
		switch op {
		case "=":
			return clampSel(1 / e.Stats.ColumnDistinct(col.Table, col.Name, rows))
		case "<>":
			return clampSel(1 - 1/e.Stats.ColumnDistinct(col.Table, col.Name, rows))
		default:
			return e.Stats.RangeSelectivity(col.Table, col.Name, op, lit)
		}
	default:
		return 0.5
	}
}

func sortCost(rows float64) float64 {
	if rows < 2 {
		return cSortRow
	}
	return rows * math.Log2(rows) * cSortRow
}
