package stats

import (
	"testing"

	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/storage"
	"gapplydb/internal/tpch"
	"gapplydb/internal/types"
)

func tinyCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	if err := tpch.Load(cat, 0.001); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestCollectBasics(t *testing.T) {
	cat := tinyCatalog(t)
	s := Collect(cat)
	sz := tpch.SizesFor(0.001)
	if got := s.TableRows("supplier"); got != int64(sz.Suppliers) {
		t.Errorf("supplier rows = %d", got)
	}
	if got := s.TableRows("nosuch"); got != 0 {
		t.Errorf("unknown table rows = %d", got)
	}
	// Primary keys are fully distinct.
	if got := s.ColumnDistinct("part", "p_partkey", 0); got != float64(sz.Parts) {
		t.Errorf("p_partkey distinct = %v", got)
	}
	// ps_suppkey has at most #suppliers distinct values.
	if got := s.ColumnDistinct("partsupp", "ps_suppkey", 0); got > float64(sz.Suppliers) {
		t.Errorf("ps_suppkey distinct = %v", got)
	}
}

func TestColumnDistinctFallbacks(t *testing.T) {
	cat := tinyCatalog(t)
	s := Collect(cat)
	// Unknown table, known column elsewhere: cross-table search.
	if got := s.ColumnDistinct("", "p_partkey", 100); got <= 1 {
		t.Errorf("cross-table distinct = %v", got)
	}
	// Completely unknown column: sqrt heuristic, at least 1.
	if got := s.ColumnDistinct("", "zzz", 100); got != 10 {
		t.Errorf("sqrt fallback = %v", got)
	}
	if got := s.ColumnDistinct("", "zzz", 0); got != 1 {
		t.Errorf("floor = %v", got)
	}
}

func TestNullFraction(t *testing.T) {
	cat := storage.NewCatalog()
	tab, _ := cat.Create(&schema.TableDef{
		Name:   "t",
		Schema: schema.New(schema.Column{Name: "a", Type: types.KindInt}),
	})
	tab.Append(types.Row{types.NewInt(1)})
	tab.Append(types.Row{types.Null})
	tab.Append(types.Row{types.Null})
	tab.Append(types.Row{types.NewInt(2)})
	s := Collect(cat)
	cs := s.Tables["t"].Columns["a"]
	if cs.NullFrac != 0.5 {
		t.Errorf("null frac = %v", cs.NullFrac)
	}
	if cs.Distinct != 2 {
		t.Errorf("distinct = %v", cs.Distinct)
	}
	if cs.Min.Int() != 1 || cs.Max.Int() != 2 {
		t.Errorf("min/max = %v/%v", cs.Min, cs.Max)
	}
}

func TestRangeSelectivity(t *testing.T) {
	cat := tinyCatalog(t)
	s := Collect(cat)
	// p_size spans 1..50 roughly uniformly.
	lo := s.RangeSelectivity("part", "p_size", "<", types.NewInt(10))
	hi := s.RangeSelectivity("part", "p_size", ">", types.NewInt(40))
	if lo > 0.4 || lo < 0.05 {
		t.Errorf("p_size < 10 sel = %v", lo)
	}
	if hi > 0.4 || hi < 0.05 {
		t.Errorf("p_size > 40 sel = %v", hi)
	}
	// Unknown column falls to the Selinger default.
	if got := s.RangeSelectivity("part", "zzz", "<", types.NewInt(1)); got != 1.0/3 {
		t.Errorf("unknown col sel = %v", got)
	}
	// Extremes clamp but never hit zero.
	if got := s.RangeSelectivity("part", "p_size", "<", types.NewInt(-5)); got < 0.001 {
		t.Errorf("clamped sel = %v", got)
	}
}

func scanOf(t *testing.T, cat *storage.Catalog, name string) *core.Scan {
	t.Helper()
	tab, err := cat.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Scan{Table: name, Def: tab.Def}
}

func TestEstimateScanSelectJoin(t *testing.T) {
	cat := tinyCatalog(t)
	est := NewEstimator(Collect(cat))
	sz := tpch.SizesFor(0.001)

	scan := scanOf(t, cat, "part")
	e := est.Estimate(scan)
	if e.Rows != float64(sz.Parts) {
		t.Errorf("scan rows = %v", e.Rows)
	}

	sel := &core.Select{Input: scan, Cond: &core.Cmp{Op: "=", L: core.Col("p_brand"), R: core.LitStr("Brand#11")}}
	se := est.Estimate(sel)
	if se.Rows >= e.Rows || se.Rows <= 0 {
		t.Errorf("brand selection rows = %v of %v", se.Rows, e.Rows)
	}

	join := &core.Join{
		Left:  scanOf(t, cat, "partsupp"),
		Right: scan,
		Cond:  &core.Cmp{Op: "=", L: core.QCol("partsupp", "ps_partkey"), R: core.QCol("part", "p_partkey")},
	}
	je := est.Estimate(join)
	// FK join: |partsupp ⋈ part| = |partsupp|.
	if ratio := je.Rows / float64(sz.PartSupps); ratio < 0.5 || ratio > 2 {
		t.Errorf("join rows = %v, want ≈ %d", je.Rows, sz.PartSupps)
	}
	if je.Cost <= se.Cost {
		t.Error("join must cost more than a selection")
	}
}

func TestEstimateGApplyUniformity(t *testing.T) {
	cat := tinyCatalog(t)
	est := NewEstimator(Collect(cat))
	join := &core.Join{
		Left:  scanOf(t, cat, "partsupp"),
		Right: scanOf(t, cat, "part"),
		Cond:  &core.Cmp{Op: "=", L: core.QCol("partsupp", "ps_partkey"), R: core.QCol("part", "p_partkey")},
	}
	pgq := &core.AggOp{Input: &core.GroupScan{Var: "g"}, Aggs: []core.AggSpec{{Fn: "avg", Arg: core.Col("p_retailprice"), As: "a"}}}
	ga := core.NewGApply(join, []*core.ColRef{core.QCol("partsupp", "ps_suppkey")}, "g", pgq)
	e := est.Estimate(ga)
	suppliers := float64(tpch.SizesFor(0.001).Suppliers)
	// One aggregate row per group ⇒ rows ≈ number of suppliers.
	if e.Rows < suppliers*0.5 || e.Rows > suppliers*2 {
		t.Errorf("GApply rows = %v, want ≈ %v", e.Rows, suppliers)
	}
	// The per-group query must be costed per group: total cost exceeds
	// the outer cost alone.
	outer := est.Estimate(join)
	if e.Cost <= outer.Cost {
		t.Errorf("GApply cost %v must exceed outer cost %v", e.Cost, outer.Cost)
	}
	// Sort partitioning costs differently from hash partitioning.
	gaSort := core.NewGApply(join, []*core.ColRef{core.QCol("partsupp", "ps_suppkey")}, "g", pgq)
	gaSort.Partition = core.PartitionSort
	if est.Estimate(gaSort).Cost == e.Cost {
		t.Error("partition strategies must cost differently")
	}
}

func TestEstimateApplyCaching(t *testing.T) {
	cat := tinyCatalog(t)
	est := NewEstimator(Collect(cat))
	outer := scanOf(t, cat, "supplier")
	uncorr := &core.AggOp{Input: scanOf(t, cat, "part"), Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}}}
	corr := &core.AggOp{
		Input: &core.Select{
			Input: scanOf(t, cat, "part"),
			Cond:  &core.Cmp{Op: "=", L: core.Col("p_partkey"), R: &core.OuterRef{Name: "s_suppkey"}},
		},
		Aggs: []core.AggSpec{{Fn: "count", Star: true, As: "n"}},
	}
	cached := est.Estimate(&core.Apply{Outer: outer, Inner: uncorr})
	reexec := est.Estimate(&core.Apply{Outer: outer, Inner: corr})
	if cached.Cost >= reexec.Cost {
		t.Errorf("uncorrelated apply (%v) must cost less than correlated (%v)", cached.Cost, reexec.Cost)
	}
}

func TestEstimateSelectivityCombinators(t *testing.T) {
	cat := tinyCatalog(t)
	est := NewEstimator(Collect(cat))
	scan := scanOf(t, cat, "part")
	rows := est.Estimate(scan).Rows
	eq := &core.Cmp{Op: "=", L: core.Col("p_brand"), R: core.LitStr("Brand#11")}
	rng := &core.Cmp{Op: ">", L: core.Col("p_size"), R: core.LitInt(25)}
	and := est.selectivity(&core.And{Ops: []core.Expr{eq, rng}}, rows)
	or := est.selectivity(&core.Or{Ops: []core.Expr{eq, rng}}, rows)
	not := est.selectivity(&core.Not{Op: eq}, rows)
	seq := est.selectivity(eq, rows)
	if and >= seq || and <= 0 {
		t.Errorf("AND sel = %v vs %v", and, seq)
	}
	if or <= seq || or > 1 {
		t.Errorf("OR sel = %v", or)
	}
	if not <= 0.5 {
		t.Errorf("NOT of selective pred = %v", not)
	}
}
