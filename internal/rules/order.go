package rules

import (
	"strings"

	"gapplydb/internal/core"
	"gapplydb/internal/storage"
)

// Order placement substrate: given an ordering some consumer is
// interested in (an ORDER BY's keys, a merge join's right equi-key, a
// sort-partitioned GApply's group columns), try to rewrite a subtree so
// it *provides* that ordering via an ordered secondary index — without
// changing a single output byte. The optimizer's order pass (internal/
// opt) decides where interesting orders exist and whether the rewrite
// pays; this file only answers "can this subtree deliver that order,
// and how".

// ProvideOrdering rewrites n so its output provides exactly `want`,
// returning the rewritten subtree. The rewrite is output-preserving in
// the strictest sense — same rows, same order, same ties — because the
// only change it ever makes is replacing a heap Scan with an IndexScan
// whose stable-sorted run equals a stable sort the consumer was going to
// perform anyway. Descending or computed orderings are never provided:
// a reverse index scan would reverse tie order relative to a stable
// sort, so only all-ascending plain-column orderings qualify.
func ProvideOrdering(n core.Node, want []core.OrderedCol, cat *storage.Catalog) (core.Node, bool) {
	if len(want) == 0 {
		return nil, false
	}
	for _, c := range want {
		if c.Desc {
			return nil, false
		}
	}
	if core.OrderingEquals(core.ProvidedOrdering(n), want) {
		return n, true
	}
	switch x := n.(type) {
	case *core.Scan:
		return scanToIndexScan(x, want, cat)
	case *core.Select:
		in, ok := ProvideOrdering(x.Input, want, cat)
		if !ok {
			return nil, false
		}
		// Filtering preserves order. When the ordered input is a bare
		// index scan, redundantly push any range conjuncts on the key
		// column down as scan bounds: the Select stays in place (so the
		// output is decided by it, bit for bit), the bounds just let the
		// scan seek instead of visiting rows the filter would drop.
		if is, isIdx := in.(*core.IndexScan); isIdx && !is.HasLo && !is.HasHi {
			in = pushKeyBounds(is, x.Cond)
		}
		return &core.Select{Input: in, Cond: x.Cond}, true
	case *core.Project:
		return projectProvideOrdering(x, want, cat)
	default:
		return nil, false
	}
}

// scanToIndexScan swaps a heap scan for an index scan when the catalog
// has an index whose key columns are exactly the wanted ordering.
func scanToIndexScan(s *core.Scan, want []core.OrderedCol, cat *storage.Catalog) (core.Node, bool) {
	sch := s.Schema()
	cols := make([]string, len(want))
	for i, c := range want {
		ord, err := sch.Resolve(c.Table, c.Name)
		if err != nil {
			return nil, false
		}
		cols[i] = sch.Cols[ord].Name
	}
	ix := cat.OrderedIndex(s.Table, cols)
	if ix == nil {
		return nil, false
	}
	return &core.IndexScan{
		Table: s.Table,
		Def:   s.Def,
		Alias: s.Alias,
		Index: ix.Name,
		Cols:  append([]string(nil), ix.Cols...),
		Ords:  ix.Ords(),
	}, true
}

// projectProvideOrdering maps the wanted output-side ordering through a
// projection to input-side columns and recurses. Every wanted column
// must come out of a plain column reference; anything computed cannot
// carry an index order through.
func projectProvideOrdering(p *core.Project, want []core.OrderedCol, cat *storage.Catalog) (core.Node, bool) {
	inSch := p.Input.Schema()
	outSch := p.Schema()
	inner := make([]core.OrderedCol, len(want))
	for i, oc := range want {
		found := false
		for j, e := range p.Exprs {
			col := outSch.Cols[j]
			if !(strings.EqualFold(col.Table, oc.Table) && strings.EqualFold(col.Name, oc.Name)) {
				continue
			}
			c, isCol := e.(*core.ColRef)
			if !isCol {
				return nil, false
			}
			canon, ok := core.CanonOrderedCol(c, inSch, oc.Desc)
			if !ok {
				return nil, false
			}
			inner[i] = canon
			found = true
			break
		}
		if !found {
			return nil, false
		}
	}
	in, ok := ProvideOrdering(p.Input, inner, cat)
	if !ok {
		return nil, false
	}
	return &core.Project{Input: in, Exprs: p.Exprs, Names: p.Names, Qualifier: p.Qualifier}, true
}

// pushKeyBounds copies col-vs-literal range conjuncts of cond that
// constrain the index's leading key column onto the scan as seek bounds.
// The conjuncts themselves are NOT removed from the enclosing Select —
// the bounds are deliberately redundant, so the scan may only skip rows
// the filter was guaranteed to drop. NULL literals are skipped: a SQL
// comparison with NULL passes no row, but a NULL *bound* would admit
// NULL keys (they sort first).
func pushKeyBounds(is *core.IndexScan, cond core.Expr) *core.IndexScan {
	cp := *is
	// Bounds only make sense on a single-column index: with a composite
	// key the encoded leading-column bound is a prefix, and the seek
	// primitives (SeekGE/SeekGT on full keys) would mis-handle inclusive
	// upper bounds against longer keys sharing the prefix.
	if len(is.Ords) != 1 {
		return &cp
	}
	sch := is.Schema()
	for _, c := range core.ConjunctsOf(cond) {
		cmp, ok := c.(*core.Cmp)
		if !ok {
			continue
		}
		col, lit, op := core.CmpColLit(cmp)
		if col == nil || lit.IsNull() {
			continue
		}
		ord, err := sch.Resolve(col.Table, col.Name)
		if err != nil || ord != is.Ords[0] {
			continue
		}
		switch op {
		case "=":
			if !cp.HasLo {
				cp.Lo, cp.HasLo, cp.LoIncl = lit, true, true
			}
			if !cp.HasHi {
				cp.Hi, cp.HasHi, cp.HiIncl = lit, true, true
			}
		case ">", ">=":
			if !cp.HasLo {
				cp.Lo, cp.HasLo, cp.LoIncl = lit, true, op == ">="
			}
		case "<", "<=":
			if !cp.HasHi {
				cp.Hi, cp.HasHi, cp.HiIncl = lit, true, op == "<="
			}
		}
	}
	return &cp
}
