package rules

import (
	"strings"

	"gapplydb/internal/core"
)

// GroupSelectionExists implements §4.2's rule (Figure 5): a per-group
// query of the form "return the whole group if some tuple satisfies S"
// is re-evaluated as: filter the outer query with S, project the group
// ids (distinct), and join the ids back with the outer query to
// reconstruct the qualifying groups.
//
// When the predicate is selective, extracting ids first avoids
// materializing every group; when it is not, the extra join can lose —
// which is why the optimizer decides this rule by cost (Table 1's
// average-over-wins exceeds its average).
//
// Groups whose grouping-column values contain NULL cannot be
// reconstructed by the equijoin, so the rule skips firing when any
// grouping column is nullable-in-principle is not tracked; in this
// engine grouping columns are key columns in every workload, matching
// the paper's setting.
type GroupSelectionExists struct{}

// Name implements Rule.
func (GroupSelectionExists) Name() string { return "group-selection-exists" }

// Apply implements Rule.
func (GroupSelectionExists) Apply(n core.Node, _ *Context) (core.Node, bool) {
	return rewriteGApplies(n, func(ga *core.GApply) (core.Node, bool) {
		topProj, apply := peelProject(ga.Inner)
		ap, ok := apply.(*core.Apply)
		if !ok || ap.Kind != core.CrossApply {
			return nil, false
		}
		if _, ok := ap.Outer.(*core.GroupScan); !ok {
			return nil, false
		}
		ex, ok := ap.Inner.(*core.Exists)
		if !ok || ex.Negated {
			return nil, false
		}
		cond, ok := extractSelectionChain(ex.Input, ga.Outer.Schema())
		if !ok || cond == nil {
			return nil, false
		}
		return rebuildGroupSelection(ga, topProj, &core.Select{Input: ga.Outer, Cond: cond})
	})
}

// GroupSelectionAggregate implements §4.2's aggregate variant: a
// per-group query of the form "return the group if agg(group) satisfies
// a condition" is re-evaluated by computing the aggregates with a
// (pipelinable, low-memory) groupby, filtering the group ids, and
// joining them back to reconstruct the groups.
type GroupSelectionAggregate struct{}

// Name implements Rule.
func (GroupSelectionAggregate) Name() string { return "group-selection-aggregate" }

// Apply implements Rule.
func (GroupSelectionAggregate) Apply(n core.Node, _ *Context) (core.Node, bool) {
	return rewriteGApplies(n, func(ga *core.GApply) (core.Node, bool) {
		topProj, selNode := peelProject(ga.Inner)
		sel, ok := selNode.(*core.Select)
		if !ok {
			return nil, false
		}
		ap, ok := sel.Input.(*core.Apply)
		if !ok || ap.Kind != core.CrossApply {
			return nil, false
		}
		if _, ok := ap.Outer.(*core.GroupScan); !ok {
			return nil, false
		}
		// The inner must be a (renamed) scalar aggregate over the group,
		// optionally over a selection of it.
		rename, ok := ap.Inner.(*core.Project)
		if !ok || len(rename.Exprs) != 1 {
			return nil, false
		}
		sqName := rename.Names[0]
		if sqName == "" {
			if c, ok := rename.Exprs[0].(*core.ColRef); ok {
				sqName = c.Name
			}
		}
		agg, ok := rename.Input.(*core.AggOp)
		if !ok || len(agg.Aggs) != 1 {
			return nil, false
		}
		aggInputCond, okChain := aggOverGroup(agg.Input, ga.Outer.Schema())
		if !okChain {
			return nil, false
		}
		if aggInputCond != nil && strings.EqualFold(agg.Aggs[0].Fn, "count") {
			// count over a filtered group is 0, not NULL, on an empty
			// subset; the groupby version would drop the group instead.
			return nil, false
		}
		// The selection condition references the aggregate's renamed
		// output; rewrite it to the groupby's column name.
		cond := sel.Cond.Rewrite(func(e core.Expr) core.Expr {
			if c, ok := e.(*core.ColRef); ok && strings.EqualFold(c.Name, sqName) && c.Table == "" {
				return &core.ColRef{Name: agg.Aggs[0].OutName()}
			}
			return e
		})
		gbInput := ga.Outer
		if aggInputCond != nil {
			gbInput = &core.Select{Input: gbInput, Cond: aggInputCond}
		}
		gb := &core.GroupBy{Input: gbInput, GroupCols: ga.GroupCols, Aggs: agg.Aggs}
		// The predicate must be group-level: after rewriting the subquery
		// column to the aggregate output it may reference only grouping
		// columns and the aggregate — a condition on group *rows* (e.g.
		// "p_retailprice = min(...)") is row selection, not group
		// selection, and stays with GApply.
		if !exprResolves(cond, gb.Schema()) {
			return nil, false
		}
		return rebuildGroupSelection(ga, topProj, &core.Select{Input: gb, Cond: cond})
	})
}

// peelProject strips one top-level projection, returning it separately.
func peelProject(n core.Node) (*core.Project, core.Node) {
	if p, ok := n.(*core.Project); ok {
		return p, p.Input
	}
	return nil, n
}

// extractSelectionChain matches a chain of Select/Project/Distinct/
// OrderBy over a GroupScan and returns the conjunction of the selection
// conditions. The conditions must be over the group's columns, without
// outer references.
func extractSelectionChain(n core.Node, groupSchema interface{ Has(string, string) bool }) (core.Expr, bool) {
	var conds []core.Expr
	for {
		switch x := n.(type) {
		case *core.GroupScan:
			return core.AndAll(conds), true
		case *core.Select:
			if core.HasOuterRefs(x.Cond) || !exprResolves(x.Cond, groupSchema) {
				return nil, false
			}
			conds = append(conds, core.ConjunctsOf(x.Cond)...)
			n = x.Input
		case *core.Project:
			n = x.Input
		case *core.Distinct:
			n = x.Input
		case *core.OrderBy:
			n = x.Input
		default:
			return nil, false
		}
	}
}

// aggOverGroup matches the aggregate input: either the group itself or a
// selection of it; returns the selection condition (nil when none).
func aggOverGroup(n core.Node, groupSchema interface{ Has(string, string) bool }) (core.Expr, bool) {
	switch x := n.(type) {
	case *core.GroupScan:
		return nil, true
	case *core.Select:
		if _, ok := x.Input.(*core.GroupScan); !ok {
			return nil, false
		}
		if core.HasOuterRefs(x.Cond) || !exprResolves(x.Cond, groupSchema) {
			return nil, false
		}
		return x.Cond, true
	default:
		return nil, false
	}
}

// rebuildGroupSelection builds Figure 5's right-hand tree: distinct group
// ids from the filtered source, joined back with the outer query, then
// projected to the original GApply output shape.
func rebuildGroupSelection(ga *core.GApply, topProj *core.Project, filtered core.Node) (core.Node, bool) {
	outerSchema := ga.Outer.Schema()
	// Qualify/alias the id columns so the reconstruction join condition
	// resolves unambiguously.
	idExprs := make([]core.Expr, len(ga.GroupCols))
	idNames := make([]string, len(ga.GroupCols))
	for i, gc := range ga.GroupCols {
		if !outerSchema.Has(gc.Table, gc.Name) {
			return nil, false
		}
		idExprs[i] = gc
		idNames[i] = "__gid_" + gc.Name
	}
	idProj := core.NewProject(filtered, idExprs, idNames)
	idProj.Qualifier = "__gsel"
	ids := &core.Distinct{Input: idProj}

	var joinCond []core.Expr
	for i, gc := range ga.GroupCols {
		joinCond = append(joinCond, &core.Cmp{
			Op: "=",
			L:  &core.ColRef{Table: "__gsel", Name: idNames[i]},
			R:  gc,
		})
	}
	// The id set goes on the build (right) side of the hash join: with a
	// selective predicate it is tiny, and the outer query streams through
	// as probes — the asymmetry that makes Figure 5's plan win.
	join := &core.Join{Left: ga.Outer, Right: ids, Cond: core.AndAll(joinCond)}

	// Restore the original output shape: grouping values first, then the
	// per-group query's output (the group columns, through topProj if the
	// query projected).
	outExprs := make([]core.Expr, 0, len(ga.GroupCols)+outerSchema.Len())
	outNames := make([]string, 0, len(ga.GroupCols)+outerSchema.Len())
	for _, gc := range ga.GroupCols {
		outExprs = append(outExprs, gc)
		outNames = append(outNames, "")
	}
	if topProj != nil {
		for _, e := range topProj.Exprs {
			if !exprResolves(e, outerSchema) {
				return nil, false
			}
		}
		outExprs = append(outExprs, topProj.Exprs...)
		outNames = append(outNames, topProj.Names...)
	} else {
		for _, c := range outerSchema.Cols {
			outExprs = append(outExprs, &core.ColRef{Table: c.Table, Name: c.Name})
			outNames = append(outNames, "")
		}
	}
	return core.NewProject(join, outExprs, outNames), true
}
