// Package rules implements the paper's transformation rules for plans
// containing GApply (§4), plus the classic selection/projection pushdown
// and subquery decorrelation substrate they compose with:
//
//   - PushSelectIntoGApply / PushProjectIntoGApply — the "no-traversal"
//     rules σ(R GA PGQ) = R GA σ(PGQ) and π_{C∪B}(R GA PGQ) = R GA π_B(PGQ).
//   - SelectionBeforeGApply — push the per-group query's covering range
//     into the outer query when PGQ(φ) = φ (§4.1, Theorem 1).
//   - ProjectionBeforeGApply — project the outer query to the grouping
//     columns plus the columns PGQ references (§4.1).
//   - GApplyToGroupBy — replace a pure-aggregation per-group query with a
//     traditional groupby (§4.1).
//   - GroupSelectionExists — evaluate an existential group-selection
//     predicate first, then reconstruct qualifying groups by joining the
//     group ids back (§4.2, Figure 5).
//   - GroupSelectionAggregate — the aggregate-condition variant (§4.2).
//   - InvariantGrouping — push GApply below foreign-key joins whose join
//     columns are grouping columns (§4.3, Theorem 2).
//   - PushDownSelections / Decorrelate — classic substrate rules.
//
// Every rule is a pure function from plan to plan; firing decisions
// (always / cost-based / forced) belong to the optimizer.
package rules

import (
	"gapplydb/internal/core"
	"gapplydb/internal/storage"
)

// Context carries what rules need to fire: catalog metadata (foreign
// keys for invariant grouping) and a per-optimization name sequence.
type Context struct {
	Catalog *storage.Catalog

	// seq numbers generated qualifiers (e.g. decorrelation's __dcN)
	// within one optimization run. Scoping it to the Context — not a
	// process global — keeps a statement's optimized plan (and therefore
	// its EXPLAIN text and plan hash) identical no matter how many
	// queries were planned before it.
	seq int64
}

// NextSeq returns the next per-run sequence number, starting at 1.
func (c *Context) NextSeq() int64 {
	c.seq++
	return c.seq
}

// Rule is one transformation.
type Rule interface {
	// Name is the rule's identifier, used by the optimizer's enable/force
	// sets and by the Table 1 benchmark harness.
	Name() string
	// Apply rewrites the plan, reporting whether anything changed. Rules
	// never mutate the input tree.
	Apply(n core.Node, ctx *Context) (core.Node, bool)
}

// rewriteGApplies walks the tree and rewrites each GApply node with f,
// tracking whether any rewrite fired. Inner per-group trees are visited
// too (a GApply cannot nest inside a PGQ by the paper's restrictions,
// but defensive code is free).
func rewriteGApplies(n core.Node, f func(*core.GApply) (core.Node, bool)) (core.Node, bool) {
	fired := false
	out := core.Transform(n, func(m core.Node) core.Node {
		if ga, ok := m.(*core.GApply); ok {
			if r, ok2 := f(ga); ok2 {
				fired = true
				return r
			}
		}
		return m
	})
	return out, fired
}

// All returns the full rule set in the order the optimizer applies them.
func All() []Rule {
	return []Rule{
		PushDownSelections{},
		Decorrelate{},
		PushSelectIntoGApply{},
		PushProjectIntoGApply{},
		SelectionBeforeGApply{},
		ProjectionBeforeGApply{},
		GApplyToGroupBy{},
		GroupSelectionExists{},
		GroupSelectionAggregate{},
		InvariantGrouping{},
	}
}

// CostBasedNames lists the rules whose firing can increase cost and so
// are decided by the cost model (the Table 1 rows where "average over
// wins" exceeds "average benefit").
func CostBasedNames() map[string]bool {
	return map[string]bool{
		GroupSelectionExists{}.Name():    true,
		GroupSelectionAggregate{}.Name(): true,
		InvariantGrouping{}.Name():       true,
	}
}
