package rules

import (
	"fmt"
	"strings"

	"gapplydb/internal/core"
)

// Decorrelate rewrites a correlated scalar-aggregate subquery — the
// Apply shape the paper's §2 "without GApply" SQL produces — into a
// left-outer join against a grouped aggregate, which is how production
// optimizers (and [12], the GApply origin paper) execute it:
//
//	Apply(R, π_{sq}(Agg(σ_{c=outer(o) ∧ p}(S))))
//	  = R ⟕_{o = c} π(GroupBy_{c}(σ_p(S)))
//
// This substrate rule is what makes the Figure 8 baseline realistic: a
// naive re-execution per outer row would overstate GApply's advantage by
// orders of magnitude; the decorrelated baseline still pays the paper's
// redundant join, which is the effect Figure 8 measures.
//
// The rule bails out on count aggregates (a missing group yields NULL
// through the outer join but 0 through the apply) and on correlations
// that are not simple column equalities.
type Decorrelate struct{}

// Name implements Rule.
func (Decorrelate) Name() string { return "decorrelate-scalar-agg" }

// Apply implements Rule.
func (Decorrelate) Apply(n core.Node, ctx *Context) (core.Node, bool) {
	fired := false
	out := core.Transform(n, func(m core.Node) core.Node {
		ap, ok := m.(*core.Apply)
		if !ok || ap.Kind != core.CrossApply {
			return m
		}
		rename, ok := ap.Inner.(*core.Project)
		if !ok || len(rename.Exprs) != 1 || rename.Qualifier != "" {
			return m
		}
		sqName := rename.Names[0]
		aggRef, ok := rename.Exprs[0].(*core.ColRef)
		if !ok {
			return m
		}
		if sqName == "" {
			sqName = aggRef.Name
		}
		agg, ok := rename.Input.(*core.AggOp)
		if !ok || len(agg.Aggs) != 1 {
			return m
		}
		if strings.EqualFold(agg.Aggs[0].Fn, "count") {
			return m
		}
		// Strip the correlated equality conjuncts out of the inner tree.
		var corr []core.EquiPair // Left: inner column, Right: (reused as) outer column
		var outerRefs []*core.OuterRef
		ok = true
		stripped := core.Transform(agg.Input, func(t core.Node) core.Node {
			sel, isSel := t.(*core.Select)
			if !isSel {
				// Outer refs anywhere else defeat the rewrite.
				if j, isJoin := t.(*core.Join); isJoin && j.Cond != nil && core.HasOuterRefs(j.Cond) {
					ok = false
				}
				return t
			}
			var residual []core.Expr
			for _, c := range core.ConjunctsOf(sel.Cond) {
				if !core.HasOuterRefs(c) {
					residual = append(residual, c)
					continue
				}
				col, outer := matchCorrEquality(c)
				if col == nil {
					ok = false
					return t
				}
				corr = append(corr, core.EquiPair{Left: col})
				outerRefs = append(outerRefs, outer)
			}
			if len(residual) == len(core.ConjunctsOf(sel.Cond)) {
				return t
			}
			if len(residual) == 0 {
				return sel.Input
			}
			return &core.Select{Input: sel.Input, Cond: core.AndAll(residual)}
		})
		if !ok || len(corr) == 0 {
			return m
		}
		// Verify the correlation columns resolve in the stripped tree and
		// that every outer reference targets this Apply's outer (not a
		// further enclosing scope).
		for _, p := range corr {
			if !stripped.Schema().Has(p.Left.Table, p.Left.Name) {
				return m
			}
		}
		for _, o := range outerRefs {
			if !ap.Outer.Schema().Has(o.Table, o.Name) {
				return m
			}
		}
		qual := fmt.Sprintf("__dc%d", ctx.NextSeq())
		groupCols := make([]*core.ColRef, len(corr))
		exprs := make([]core.Expr, 0, len(corr)+1)
		names := make([]string, 0, len(corr)+1)
		for i, p := range corr {
			groupCols[i] = p.Left
			exprs = append(exprs, p.Left)
			names = append(names, fmt.Sprintf("__k%d", i))
		}
		exprs = append(exprs, &core.ColRef{Name: agg.Aggs[0].OutName()})
		names = append(names, sqName)
		gb := &core.GroupBy{Input: stripped, GroupCols: core.DedupCols(groupCols), Aggs: agg.Aggs}
		proj := core.NewProject(gb, exprs, names)
		proj.Qualifier = qual

		var cond []core.Expr
		for i, o := range outerRefs {
			cond = append(cond, &core.Cmp{
				Op: "=",
				L:  &core.ColRef{Table: o.Table, Name: o.Name},
				R:  &core.ColRef{Table: qual, Name: fmt.Sprintf("__k%d", i)},
			})
		}
		fired = true
		return &core.Join{Left: ap.Outer, Right: proj, Kind: core.LeftOuterJoin, Cond: core.AndAll(cond)}
	})
	return out, fired
}

// matchCorrEquality matches `col = outerRef` (either side order).
func matchCorrEquality(e core.Expr) (*core.ColRef, *core.OuterRef) {
	cmp, ok := e.(*core.Cmp)
	if !ok || cmp.Op != "=" {
		return nil, nil
	}
	if c, ok := cmp.L.(*core.ColRef); ok {
		if o, ok := cmp.R.(*core.OuterRef); ok {
			return c, o
		}
	}
	if c, ok := cmp.R.(*core.ColRef); ok {
		if o, ok := cmp.L.(*core.OuterRef); ok {
			return c, o
		}
	}
	return nil, nil
}
