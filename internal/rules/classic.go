package rules

import (
	"gapplydb/internal/core"
)

// PushDownSelections is the classic substrate rule: conjuncts of a
// Select above a Join move to the join side that can evaluate them, or
// into the join condition when they span both sides. The paper's §4
// assumes "all selections and projections in the outer query are pushed
// down" (the annotated join tree of [15]); this rule establishes that
// normal form, and re-establishes it after SelectionBeforeGApply inserts
// a covering-range selection on top of the outer query.
type PushDownSelections struct{}

// Name implements Rule.
func (PushDownSelections) Name() string { return "push-down-selections" }

// Apply implements Rule.
func (PushDownSelections) Apply(n core.Node, _ *Context) (core.Node, bool) {
	fired := false
	// Iterate to a fixpoint: pushing a selection below one join may
	// enable pushing below the next.
	for {
		changed := false
		n = core.Transform(n, func(m core.Node) core.Node {
			sel, ok := m.(*core.Select)
			if !ok {
				return m
			}
			// Merge stacked selections so conjuncts push together.
			if inner, ok := sel.Input.(*core.Select); ok {
				changed = true
				return &core.Select{
					Input: inner.Input,
					Cond:  core.AndAll(append(core.ConjunctsOf(sel.Cond), core.ConjunctsOf(inner.Cond)...)),
				}
			}
			// Select over a pure, unaliased column projection commutes
			// below it (the projection-before-GApply rule inserts these
			// on the paths group selection later filters).
			if proj, ok := sel.Input.(*core.Project); ok && pureUnaliasedProject(proj) {
				if exprResolves(sel.Cond, proj.Input.Schema()) && !core.HasOuterRefs(sel.Cond) {
					changed = true
					return proj.WithChildren([]core.Node{&core.Select{Input: proj.Input, Cond: sel.Cond}})
				}
				return m
			}
			// Select over Apply: conjuncts over only the apply's outer
			// columns commute below it. This establishes the paper's
			// Figure 3 tree shape, where σ_{brand=A} sits on the apply's
			// outer input so the covering-range analysis can see it.
			if ap, ok := sel.Input.(*core.Apply); ok {
				outerSchema := ap.Outer.Schema()
				var down, keep []core.Expr
				for _, c := range core.ConjunctsOf(sel.Cond) {
					if !core.HasOuterRefs(c) && exprResolves(c, outerSchema) {
						down = append(down, c)
					} else {
						keep = append(keep, c)
					}
				}
				if len(down) == 0 {
					return m
				}
				changed = true
				var out core.Node = &core.Apply{
					Outer: &core.Select{Input: ap.Outer, Cond: core.AndAll(down)},
					Inner: ap.Inner,
					Kind:  ap.Kind,
				}
				if len(keep) > 0 {
					out = &core.Select{Input: out, Cond: core.AndAll(keep)}
				}
				return out
			}
			join, ok := sel.Input.(*core.Join)
			if !ok || join.Kind != core.InnerJoin {
				return m
			}
			ls, rs := join.Left.Schema(), join.Right.Schema()
			var toLeft, toRight, toJoin, keep []core.Expr
			for _, c := range core.ConjunctsOf(sel.Cond) {
				switch {
				case core.HasOuterRefs(c):
					// Correlated conjuncts must stay put for the
					// decorrelation rule to see them next to the rest.
					keep = append(keep, c)
				case exprResolves(c, ls):
					toLeft = append(toLeft, c)
				case exprResolves(c, rs):
					toRight = append(toRight, c)
				case exprResolves(c, join.Schema()):
					toJoin = append(toJoin, c)
				default:
					keep = append(keep, c)
				}
			}
			if len(toLeft) == 0 && len(toRight) == 0 && len(toJoin) == 0 {
				return m
			}
			changed = true
			left, right := join.Left, join.Right
			if len(toLeft) > 0 {
				left = &core.Select{Input: left, Cond: core.AndAll(toLeft)}
			}
			if len(toRight) > 0 {
				right = &core.Select{Input: right, Cond: core.AndAll(toRight)}
			}
			cond := join.Cond
			if len(toJoin) > 0 {
				cond = core.AndAll(append(core.ConjunctsOf(cond), toJoin...))
			}
			var out core.Node = &core.Join{Left: left, Right: right, Kind: join.Kind, Cond: cond, Method: join.Method}
			if len(keep) > 0 {
				out = &core.Select{Input: out, Cond: core.AndAll(keep)}
			}
			return out
		})
		if !changed {
			break
		}
		fired = true
	}
	return n, fired
}

// pureUnaliasedProject reports whether the projection only selects
// columns under their original names, so predicates commute through it.
func pureUnaliasedProject(p *core.Project) bool {
	if p.Qualifier != "" {
		return false
	}
	for i, e := range p.Exprs {
		if _, ok := e.(*core.ColRef); !ok {
			return false
		}
		if i < len(p.Names) && p.Names[i] != "" {
			return false
		}
	}
	return true
}

// exprResolves reports whether every column the expression references is
// available in the schema.
func exprResolves(e core.Expr, sch interface{ Has(string, string) bool }) bool {
	for _, c := range core.ColRefsIn(e) {
		if !sch.Has(c.Table, c.Name) {
			return false
		}
	}
	return true
}
