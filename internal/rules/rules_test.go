package rules

import (
	"strings"
	"testing"

	"gapplydb/internal/bind"
	"gapplydb/internal/core"
	"gapplydb/internal/exec"
	"gapplydb/internal/schema"
	"gapplydb/internal/sql"
	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// fixtureCatalog: the shared 3-supplier / 4-part / 5-partsupp data set
// used across the engine's tests, with declared foreign keys.
func fixtureCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	mk := func(def *schema.TableDef, rows []types.Row) {
		tab, err := cat.Create(def)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if err := tab.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	mk(&schema.TableDef{
		Name: "supplier",
		Schema: schema.New(
			schema.Column{Name: "s_suppkey", Type: types.KindInt},
			schema.Column{Name: "s_name", Type: types.KindString}),
		PrimaryKey: []string{"s_suppkey"},
	}, []types.Row{
		{types.NewInt(1), types.NewString("alpha")},
		{types.NewInt(2), types.NewString("beta")},
		{types.NewInt(3), types.NewString("gamma")},
	})
	mk(&schema.TableDef{
		Name: "part",
		Schema: schema.New(
			schema.Column{Name: "p_partkey", Type: types.KindInt},
			schema.Column{Name: "p_name", Type: types.KindString},
			schema.Column{Name: "p_retailprice", Type: types.KindFloat},
			schema.Column{Name: "p_brand", Type: types.KindString}),
		PrimaryKey: []string{"p_partkey"},
	}, []types.Row{
		{types.NewInt(1), types.NewString("bolt"), types.NewFloat(10), types.NewString("Brand#A")},
		{types.NewInt(2), types.NewString("nut"), types.NewFloat(20), types.NewString("Brand#B")},
		{types.NewInt(3), types.NewString("washer"), types.NewFloat(30), types.NewString("Brand#A")},
		{types.NewInt(4), types.NewString("screw"), types.NewFloat(40), types.NewString("Brand#B")},
	})
	mk(&schema.TableDef{
		Name: "partsupp",
		Schema: schema.New(
			schema.Column{Name: "ps_partkey", Type: types.KindInt},
			schema.Column{Name: "ps_suppkey", Type: types.KindInt}),
		PrimaryKey: []string{"ps_partkey", "ps_suppkey"},
		ForeignKeys: []schema.ForeignKey{
			{Cols: []string{"ps_partkey"}, RefTable: "part", RefCols: []string{"p_partkey"}},
			{Cols: []string{"ps_suppkey"}, RefTable: "supplier", RefCols: []string{"s_suppkey"}},
		},
	}, []types.Row{
		{types.NewInt(1), types.NewInt(1)},
		{types.NewInt(2), types.NewInt(1)},
		{types.NewInt(3), types.NewInt(1)},
		{types.NewInt(3), types.NewInt(2)},
		{types.NewInt(4), types.NewInt(2)},
	})
	return cat
}

func bindSQL(t *testing.T, cat *storage.Catalog, q string) core.Node {
	t.Helper()
	stmt, _, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := bind.New(cat).Bind(stmt)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	return plan
}

func runPlan(t *testing.T, cat *storage.Catalog, plan core.Node) []types.Row {
	t.Helper()
	res, err := exec.Run(plan, exec.NewContext(cat))
	if err != nil {
		t.Fatalf("exec: %v\nplan:\n%s", err, core.Format(plan))
	}
	return res.Rows
}

// sameMultiset compares row multisets ignoring order.
func sameMultiset(a, b []types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]int{}
	for _, r := range a {
		m[r.KeyAll()]++
	}
	for _, r := range b {
		m[r.KeyAll()]--
	}
	for _, v := range m {
		if v != 0 {
			return false
		}
	}
	return true
}

// fireAndCheck applies the rule, requires it to fire, and verifies the
// rewritten plan computes the same multiset as the original.
func fireAndCheck(t *testing.T, cat *storage.Catalog, r Rule, plan core.Node) core.Node {
	t.Helper()
	before := runPlan(t, cat, plan)
	out, fired := r.Apply(plan, &Context{Catalog: cat})
	if !fired {
		t.Fatalf("rule %s did not fire on:\n%s", r.Name(), core.Format(plan))
	}
	after := runPlan(t, cat, out)
	if !sameMultiset(before, after) {
		t.Fatalf("rule %s changed results:\nbefore: %v\nafter:  %v\nplan:\n%s",
			r.Name(), before, after, core.Format(out))
	}
	return out
}

func mustNotFire(t *testing.T, cat *storage.Catalog, r Rule, plan core.Node) {
	t.Helper()
	if _, fired := r.Apply(plan, &Context{Catalog: cat}); fired {
		t.Fatalf("rule %s must not fire on:\n%s", r.Name(), core.Format(plan))
	}
}

func countNodes(n core.Node, pred func(core.Node) bool) int {
	c := 0
	core.Walk(n, func(m core.Node) {
		if pred(m) {
			c++
		}
	})
	return c
}

func isJoin(n core.Node) bool      { _, ok := n.(*core.Join); return ok }
func isGApply(n core.Node) bool    { _, ok := n.(*core.GApply); return ok }
func isGroupScan(n core.Node) bool { _, ok := n.(*core.GroupScan); return ok }

// ------------------------------------------------------- classic rules

func TestPushDownSelections(t *testing.T) {
	cat := fixtureCatalog(t)
	plan := bindSQL(t, cat, `select p_name from partsupp, part
		where ps_partkey = p_partkey and p_retailprice > 15 and ps_suppkey = 1`)
	out := fireAndCheck(t, cat, PushDownSelections{}, plan)
	// The join node must carry the equality; the single-side conjuncts
	// must sit directly above the scans.
	join := -1
	core.Walk(out, func(m core.Node) {
		if j, ok := m.(*core.Join); ok {
			if len(j.EquiPairs()) == 1 {
				join = 1
			}
			// The sides must be filtered scans or scans.
			if _, ok := j.Left.(*core.Select); !ok {
				if _, ok := j.Left.(*core.Scan); !ok {
					t.Errorf("left side is %T", j.Left)
				}
			}
		}
	})
	if join != 1 {
		t.Errorf("join did not absorb the equality:\n%s", core.Format(out))
	}
}

func TestPushDownSelectionsKeepsCorrelated(t *testing.T) {
	cat := fixtureCatalog(t)
	plan := bindSQL(t, cat, `select ps1.ps_suppkey, count(*) from partsupp ps1, part
		where p_partkey = ps_partkey and p_retailprice >=
			(select avg(p_retailprice) from partsupp, part
			 where p_partkey = ps_partkey and ps_suppkey = ps1.ps_suppkey)
		group by ps1.ps_suppkey`)
	out, _ := PushDownSelections{}.Apply(plan, &Context{Catalog: cat})
	// Still executable and correct.
	if !sameMultiset(runPlan(t, cat, plan), runPlan(t, cat, out)) {
		t.Fatal("pushdown broke the correlated query")
	}
}

// --------------------------------------------------- no-traversal rules

func TestPushSelectIntoGApply(t *testing.T) {
	cat := fixtureCatalog(t)
	ga := bindSQL(t, cat, `
		select gapply(select p_name, avg(p_retailprice) from g group by p_name) as (name, ap)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	// Select on a PGQ output column above the GApply.
	plan := &core.Select{Input: ga, Cond: &core.Cmp{Op: ">", L: core.Col("ap"), R: core.LitFloat(15)}}
	out := fireAndCheck(t, cat, PushSelectIntoGApply{}, plan)
	newGA, ok := out.(*core.GApply)
	if !ok {
		t.Fatalf("select not absorbed: %T\n%s", out, core.Format(out))
	}
	if _, ok := newGA.Inner.(*core.Select); !ok {
		t.Errorf("PGQ not wrapped in the selection:\n%s", core.Format(out))
	}
}

func TestPushSelectIntoGApplyGroupColumnGoesOuter(t *testing.T) {
	cat := fixtureCatalog(t)
	ga := bindSQL(t, cat, `
		select gapply(select count(*) from g) as (n)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	plan := &core.Select{Input: ga, Cond: &core.Cmp{Op: "=", L: core.Col("ps_suppkey"), R: core.LitInt(1)}}
	out := fireAndCheck(t, cat, PushSelectIntoGApply{}, plan)
	newGA, ok := out.(*core.GApply)
	if !ok {
		t.Fatalf("plan root = %T", out)
	}
	if _, ok := newGA.Outer.(*core.Select); !ok {
		t.Errorf("group-column selection must move to the outer query:\n%s", core.Format(out))
	}
}

func TestPushProjectIntoGApply(t *testing.T) {
	cat := fixtureCatalog(t)
	ga := bindSQL(t, cat, `
		select gapply(select p_name, p_retailprice from g) as (name, price)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`).(*core.GApply)
	plan := core.ProjectCols(ga, []*core.ColRef{
		core.QCol("partsupp", "ps_suppkey"), core.Col("name"),
	})
	out := fireAndCheck(t, cat, PushProjectIntoGApply{}, plan)
	newGA, ok := out.(*core.GApply)
	if !ok {
		t.Fatalf("projection not absorbed: %T", out)
	}
	if newGA.Inner.Schema().Len() != 1 {
		t.Errorf("PGQ output = %v", newGA.Inner.Schema())
	}
	// Identity projection must not fire.
	identity := core.ProjectCols(ga, []*core.ColRef{
		core.QCol("partsupp", "ps_suppkey"), core.Col("name"), core.Col("price"),
	})
	mustNotFire(t, cat, PushProjectIntoGApply{}, identity)
}

// -------------------------------------------- selection before GApply

func TestSelectionBeforeGApplyFires(t *testing.T) {
	cat := fixtureCatalog(t)
	// PGQ selects Brand#A rows only and is emptyOnEmpty (projection).
	plan := bindSQL(t, cat, `
		select gapply(select p_name from g where p_brand = 'Brand#A')
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	out := fireAndCheck(t, cat, SelectionBeforeGApply{}, plan)
	ga := out.(*core.GApply)
	// The covering range moved into the outer query...
	if countNodes(ga.Outer, func(n core.Node) bool {
		s, ok := n.(*core.Select)
		return ok && strings.Contains(s.Cond.String(), "Brand#A")
	}) == 0 {
		t.Errorf("covering range not pushed:\n%s", core.Format(out))
	}
	// ...and the equivalent per-group selection was eliminated.
	if countNodes(ga.Inner, func(n core.Node) bool {
		s, ok := n.(*core.Select)
		return ok && strings.Contains(s.Cond.String(), "Brand#A")
	}) != 0 {
		t.Errorf("redundant per-group selection kept:\n%s", core.Format(out))
	}
	// Firing twice must be a no-op.
	mustNotFire(t, cat, SelectionBeforeGApply{}, out)
}

func TestSelectionBeforeGApplyBlockedByAggregate(t *testing.T) {
	cat := fixtureCatalog(t)
	// count(*) over the selected subset: PGQ(φ) ≠ φ — pushing the range
	// would lose empty-group rows (0-count rows). Must not fire.
	plan := bindSQL(t, cat, `
		select gapply(select count(*) from g where p_brand = 'Brand#A') as (n)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	mustNotFire(t, cat, SelectionBeforeGApply{}, plan)
}

func TestSelectionBeforeGApplyFigure3(t *testing.T) {
	cat := fixtureCatalog(t)
	// Figure 3: brand-A parts priced above the average of brand-B parts.
	// The covering range is brand=A ∨ brand=B.
	plan := bindSQL(t, cat, `
		select gapply(select p_name from g
		              where p_brand = 'Brand#A' and p_retailprice >
		                    (select avg(p_retailprice) from g where p_brand = 'Brand#B'))
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	// The optimizer establishes the annotated tree (σ below apply) first.
	plan, _ = PushDownSelections{}.Apply(plan, &Context{Catalog: cat})
	out := fireAndCheck(t, cat, SelectionBeforeGApply{}, plan)
	ga := out.(*core.GApply)
	sel, ok := ga.Outer.(*core.Select)
	if !ok {
		t.Fatalf("no outer selection:\n%s", core.Format(out))
	}
	s := sel.Cond.String()
	if !strings.Contains(s, "Brand#A") || !strings.Contains(s, "Brand#B") || !strings.Contains(s, "OR") {
		t.Errorf("covering range = %s", s)
	}
}

// ------------------------------------------- projection before GApply

func TestProjectionBeforeGApply(t *testing.T) {
	cat := fixtureCatalog(t)
	plan := bindSQL(t, cat, `
		select gapply(select avg(p_retailprice) from g) as (ap)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	out := fireAndCheck(t, cat, ProjectionBeforeGApply{}, plan)
	ga := out.(*core.GApply)
	proj, ok := ga.Outer.(*core.Project)
	if !ok {
		t.Fatalf("outer not pruned:\n%s", core.Format(out))
	}
	// Only ps_suppkey and p_retailprice survive out of 6 columns.
	if proj.Schema().Len() != 2 {
		t.Errorf("pruned to %v", proj.Schema())
	}
	// GroupScans rebound to the pruned schema.
	for _, gs := range core.GroupScansIn(ga.Inner) {
		if gs.Sch.Len() != 2 {
			t.Errorf("GroupScan schema = %v", gs.Sch)
		}
	}
	mustNotFire(t, cat, ProjectionBeforeGApply{}, out)
}

// ------------------------------------------------- GApply to groupby

func TestGApplyToGroupByScalarAggs(t *testing.T) {
	cat := fixtureCatalog(t)
	plan := bindSQL(t, cat, `
		select gapply(select avg(p_retailprice), count(*) from g) as (ap, n)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	out := fireAndCheck(t, cat, GApplyToGroupBy{}, plan)
	if countNodes(out, isGApply) != 0 {
		t.Errorf("GApply not eliminated:\n%s", core.Format(out))
	}
	if countNodes(out, func(n core.Node) bool { _, ok := n.(*core.GroupBy); return ok }) != 1 {
		t.Errorf("no groupby:\n%s", core.Format(out))
	}
}

func TestGApplyToGroupByNestedGrouping(t *testing.T) {
	cat := fixtureCatalog(t)
	// PGQ groups the group by brand: converts to groupby on (suppkey, brand).
	plan := bindSQL(t, cat, `
		select gapply(select p_brand, min(p_retailprice) from g group by p_brand) as (brand, cheapest)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	out := fireAndCheck(t, cat, GApplyToGroupBy{}, plan)
	found := false
	core.Walk(out, func(n core.Node) {
		if gb, ok := n.(*core.GroupBy); ok && len(gb.GroupCols) == 2 {
			found = true
		}
	})
	if !found {
		t.Errorf("groupby on C∪B missing:\n%s", core.Format(out))
	}
}

func TestGApplyToGroupByDoesNotFireOnFilteredAggregate(t *testing.T) {
	cat := fixtureCatalog(t)
	// A selection under the aggregate means groups with no qualifying
	// rows still emit a row via GApply — a plain groupby would drop them.
	plan := bindSQL(t, cat, `
		select gapply(select count(*) from g where p_brand = 'Brand#A') as (n)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	mustNotFire(t, cat, GApplyToGroupBy{}, plan)
}

// ----------------------------------------------------- group selection

func TestGroupSelectionExists(t *testing.T) {
	cat := fixtureCatalog(t)
	plan := bindSQL(t, cat, `
		select gapply(select * from g where exists
			(select p_partkey from g where p_retailprice > 35))
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	out := fireAndCheck(t, cat, GroupSelectionExists{}, plan)
	if countNodes(out, isGApply) != 0 {
		t.Errorf("GApply not eliminated:\n%s", core.Format(out))
	}
	// Figure 5's shape: Distinct over the ids, joined back.
	if countNodes(out, func(n core.Node) bool { _, ok := n.(*core.Distinct); return ok }) != 1 {
		t.Errorf("distinct group ids missing:\n%s", core.Format(out))
	}
	if countNodes(out, isJoin) < 2 { // reconstruction join + the outer's own join
		t.Errorf("reconstruction join missing:\n%s", core.Format(out))
	}
}

func TestGroupSelectionExistsDoesNotFireOnNegated(t *testing.T) {
	cat := fixtureCatalog(t)
	plan := bindSQL(t, cat, `
		select gapply(select * from g where not exists
			(select p_partkey from g where p_retailprice > 35))
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	mustNotFire(t, cat, GroupSelectionExists{}, plan)
}

func TestGroupSelectionAggregate(t *testing.T) {
	cat := fixtureCatalog(t)
	// §4.2's second example: suppliers whose average part price exceeds a
	// threshold, returning the whole group.
	plan := bindSQL(t, cat, `
		select gapply(select * from g where
			(select avg(p_retailprice) from g) > 25)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	out := fireAndCheck(t, cat, GroupSelectionAggregate{}, plan)
	if countNodes(out, isGApply) != 0 {
		t.Errorf("GApply not eliminated:\n%s", core.Format(out))
	}
	if countNodes(out, func(n core.Node) bool { _, ok := n.(*core.GroupBy); return ok }) != 1 {
		t.Errorf("pipelined aggregate missing:\n%s", core.Format(out))
	}
	// Verify the selected supplier is #2 (avg 35 > 25; supplier 1 avg 20).
	rows := runPlan(t, cat, out)
	for _, r := range rows {
		if r[0].Int() != 2 {
			t.Errorf("wrong group: %v", r)
		}
	}
}

func TestGroupSelectionAggregateCountBlocked(t *testing.T) {
	cat := fixtureCatalog(t)
	// count over a *filtered* subset must not convert (0 ≠ dropped group).
	plan := bindSQL(t, cat, `
		select gapply(select * from g where
			(select count(p_partkey) from g where p_brand = 'Brand#A') < 2)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	mustNotFire(t, cat, GroupSelectionAggregate{}, plan)
}

// --------------------------------------------------- invariant grouping

func TestInvariantGroupingFigure7(t *testing.T) {
	cat := fixtureCatalog(t)
	// Figure 7: per supplier, the supplier name and the least expensive
	// part. s_name is only projected (not gp-eval), the supplier join is
	// FK, and its join column is the grouping column → GApply pushes
	// below the supplier join with s_name dropped from the adapted PGQ.
	plan := bindSQL(t, cat, `
		select gapply(select s_name, p_name, p_retailprice from g
		              where p_retailprice = (select min(p_retailprice) from g))
		from partsupp, part, supplier
		where ps_partkey = p_partkey and ps_suppkey = s_suppkey
		group by s_suppkey : g`)
	// Establish the annotated-join-tree normal form first (§4's setup).
	plan, _ = PushDownSelections{}.Apply(plan, &Context{Catalog: cat})
	out := fireAndCheck(t, cat, InvariantGrouping{}, plan)
	// The GApply must now sit below the supplier join: its outer subtree
	// contains no scan of supplier.
	var ga *core.GApply
	core.Walk(out, func(n core.Node) {
		if g, ok := n.(*core.GApply); ok {
			ga = g
		}
	})
	if ga == nil {
		t.Fatalf("GApply vanished:\n%s", core.Format(out))
	}
	if countNodes(ga.Outer, func(n core.Node) bool {
		s, ok := n.(*core.Scan)
		return ok && s.Table == "supplier"
	}) != 0 {
		t.Errorf("supplier still below GApply:\n%s", core.Format(out))
	}
	// The adapted PGQ no longer projects s_name from the group.
	for _, c := range core.ReferencedColumns(ga.Inner) {
		if strings.EqualFold(c.Name, "s_name") {
			t.Errorf("adapted PGQ still references s_name")
		}
	}
}

func TestInvariantGroupingRequiresForeignKey(t *testing.T) {
	cat := fixtureCatalog(t)
	plan := bindSQL(t, cat, `
		select gapply(select count(*) from g) as (m)
		from partsupp, part
		where ps_partkey = p_partkey
		group by p_partkey : g`)
	plan, _ = PushDownSelections{}.Apply(plan, &Context{Catalog: cat})
	// Grouping by p_partkey: the join column ps_partkey maps to the
	// grouping column via the equality pair, the FK holds, and count(*)
	// needs no part columns — this SHOULD fire.
	fireAndCheck(t, cat, InvariantGrouping{}, plan)

	// Now group on a non-join column: condition 2 fails.
	plan2 := bindSQL(t, cat, `
		select gapply(select min(p_retailprice) from g) as (m)
		from partsupp, part
		where ps_partkey = p_partkey
		group by p_brand : g`)
	plan2, _ = PushDownSelections{}.Apply(plan2, &Context{Catalog: cat})
	mustNotFire(t, cat, InvariantGrouping{}, plan2)
}

func TestInvariantGroupingNeedsGpEvalAtN(t *testing.T) {
	cat := fixtureCatalog(t)
	// PGQ aggregates s_name (right-side column): gp-eval not at n.
	plan := bindSQL(t, cat, `
		select gapply(select min(s_name) from g) as (m)
		from partsupp, supplier
		where ps_suppkey = s_suppkey
		group by s_suppkey : g`)
	plan, _ = PushDownSelections{}.Apply(plan, &Context{Catalog: cat})
	mustNotFire(t, cat, InvariantGrouping{}, plan)
}

// --------------------------------------------------------- decorrelate

func TestDecorrelateQ2Branch(t *testing.T) {
	cat := fixtureCatalog(t)
	plan := bindSQL(t, cat, `select ps1.ps_suppkey, count(*) from partsupp ps1, part
		where p_partkey = ps_partkey and p_retailprice >=
			(select avg(p_retailprice) from partsupp, part
			 where p_partkey = ps_partkey and ps_suppkey = ps1.ps_suppkey)
		group by ps1.ps_suppkey`)
	out := fireAndCheck(t, cat, Decorrelate{}, plan)
	// No Apply remains; a left-outer join over a grouped aggregate does.
	if countNodes(out, func(n core.Node) bool { _, ok := n.(*core.Apply); return ok }) != 0 {
		t.Errorf("apply not decorrelated:\n%s", core.Format(out))
	}
	leftOuter := countNodes(out, func(n core.Node) bool {
		j, ok := n.(*core.Join)
		return ok && j.Kind == core.LeftOuterJoin
	})
	if leftOuter != 1 {
		t.Errorf("left outer join count = %d:\n%s", leftOuter, core.Format(out))
	}
}

func TestDecorrelateSkipsCount(t *testing.T) {
	cat := fixtureCatalog(t)
	plan := bindSQL(t, cat, `select s_name from supplier
		where 1 <= (select count(ps_partkey) from partsupp where ps_suppkey = s_suppkey)`)
	mustNotFire(t, cat, Decorrelate{}, plan)
}

func TestDecorrelateSkipsNonEquality(t *testing.T) {
	cat := fixtureCatalog(t)
	plan := bindSQL(t, cat, `select s_name from supplier
		where 20 <= (select avg(p_retailprice) from partsupp, part
		             where ps_partkey = p_partkey and ps_suppkey < s_suppkey)`)
	mustNotFire(t, cat, Decorrelate{}, plan)
}

// ------------------------------------------------------------- suite

func TestAllRulesPreserveSemanticsOnWorkloadQueries(t *testing.T) {
	cat := fixtureCatalog(t)
	queries := []string{
		// Q1 (paper §3.1 syntax)
		`select gapply(select p_name, p_retailprice, null from g
			union all select null, null, avg(p_retailprice) from g) as (name, price, ap)
		 from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g`,
		// Q2
		`select gapply(select count(*), null from g
			where p_retailprice >= (select avg(p_retailprice) from g)
			union all select null, count(*) from g
			where p_retailprice < (select avg(p_retailprice) from g)) as (above, below)
		 from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g`,
		// group selection
		`select gapply(select * from g where exists
			(select p_partkey from g where p_retailprice > 35))
		 from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g`,
		// invariant grouping candidate
		`select gapply(select s_name, p_name, p_retailprice from g
		               where p_retailprice = (select min(p_retailprice) from g))
		 from partsupp, part, supplier
		 where ps_partkey = p_partkey and ps_suppkey = s_suppkey
		 group by s_suppkey : g`,
		// covering range
		`select gapply(select p_name from g where p_brand = 'Brand#A')
		 from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g`,
	}
	for qi, q := range queries {
		plan := bindSQL(t, cat, q)
		want := runPlan(t, cat, plan)
		cur := plan
		for _, r := range All() {
			next, fired := r.Apply(cur, &Context{Catalog: cat})
			if !fired {
				continue
			}
			got := runPlan(t, cat, next)
			if !sameMultiset(want, got) {
				t.Fatalf("query %d: rule %s changed results\nbefore: %v\nafter:  %v\nplan:\n%s",
					qi, r.Name(), want, got, core.Format(next))
			}
			cur = next
		}
	}
}

func TestRuleNamesUniqueAndCostBasedSubset(t *testing.T) {
	names := map[string]bool{}
	for _, r := range All() {
		if names[r.Name()] {
			t.Errorf("duplicate rule name %q", r.Name())
		}
		names[r.Name()] = true
	}
	for n := range CostBasedNames() {
		if !names[n] {
			t.Errorf("cost-based rule %q not in All()", n)
		}
	}
}
