package rules

import (
	"strings"

	"gapplydb/internal/analyze"
	"gapplydb/internal/core"
)

// PushSelectIntoGApply implements the no-traversal rule
//
//	σ(RE1 GA_C RE2) = RE1 GA_C σ(RE2)   if σ involves only RE2's columns
//
// plus the groupby-style analogue: a conjunct over only the grouping
// columns filters whole groups and moves into the outer query.
type PushSelectIntoGApply struct{}

// Name implements Rule.
func (PushSelectIntoGApply) Name() string { return "push-select-into-gapply" }

// Apply implements Rule.
func (PushSelectIntoGApply) Apply(n core.Node, _ *Context) (core.Node, bool) {
	fired := false
	out := core.Transform(n, func(m core.Node) core.Node {
		sel, ok := m.(*core.Select)
		if !ok {
			return m
		}
		ga, ok := sel.Input.(*core.GApply)
		if !ok {
			return m
		}
		innerSchema := ga.Inner.Schema()
		groupSchema := groupColsSchema(ga)
		var toInner, toOuter, keep []core.Expr
		for _, c := range core.ConjunctsOf(sel.Cond) {
			switch {
			case core.HasOuterRefs(c):
				keep = append(keep, c)
			case exprResolves(c, innerSchema) && !exprResolves(c, groupSchema):
				toInner = append(toInner, c)
			case exprResolves(c, groupSchema):
				toOuter = append(toOuter, c)
			default:
				keep = append(keep, c)
			}
		}
		if len(toInner) == 0 && len(toOuter) == 0 {
			return m
		}
		fired = true
		outer := ga.Outer
		if len(toOuter) > 0 {
			outer = &core.Select{Input: outer, Cond: core.AndAll(toOuter)}
		}
		inner := ga.Inner
		if len(toInner) > 0 {
			inner = &core.Select{Input: inner, Cond: core.AndAll(toInner)}
		}
		var out core.Node = &core.GApply{
			Outer: outer, GroupCols: ga.GroupCols, GroupVar: ga.GroupVar,
			Inner: inner, Partition: ga.Partition,
		}
		if len(keep) > 0 {
			out = &core.Select{Input: out, Cond: core.AndAll(keep)}
		}
		return out
	})
	return out, fired
}

// groupColsSchema builds the schema slice holding just the grouping
// columns (the first columns of the GApply output).
func groupColsSchema(ga *core.GApply) interface{ Has(string, string) bool } {
	full := ga.Schema()
	return full.Project(intRange(len(ga.GroupCols)))
}

func intRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// PushProjectIntoGApply implements the no-traversal rule
//
//	π_{C∪B}(RE1 GA_C RE2) = RE1 GA_C π_B(RE2)
//
// It fires when the projection is a pure column list consisting of all
// grouping columns (in order) followed by a subset of the per-group
// query's output columns.
type PushProjectIntoGApply struct{}

// Name implements Rule.
func (PushProjectIntoGApply) Name() string { return "push-project-into-gapply" }

// Apply implements Rule.
func (PushProjectIntoGApply) Apply(n core.Node, _ *Context) (core.Node, bool) {
	fired := false
	out := core.Transform(n, func(m core.Node) core.Node {
		proj, ok := m.(*core.Project)
		if !ok || proj.Qualifier != "" {
			return m
		}
		ga, ok := proj.Input.(*core.GApply)
		if !ok {
			return m
		}
		// All expressions must be plain unaliased columns.
		cols := make([]*core.ColRef, len(proj.Exprs))
		for i, e := range proj.Exprs {
			c, ok := e.(*core.ColRef)
			if !ok {
				return m
			}
			if i < len(proj.Names) && proj.Names[i] != "" {
				return m
			}
			cols[i] = c
		}
		if len(cols) < len(ga.GroupCols) {
			return m
		}
		// Prefix must be exactly the grouping columns, in order.
		for i, gc := range ga.GroupCols {
			if !strings.EqualFold(cols[i].Name, gc.Name) ||
				(cols[i].Table != "" && gc.Table != "" && !strings.EqualFold(cols[i].Table, gc.Table)) {
				return m
			}
		}
		// Remaining columns must come from the per-group query's output
		// (and not also be grouping columns, to avoid ambiguity).
		innerSchema := ga.Inner.Schema()
		rest := cols[len(ga.GroupCols):]
		if len(rest) == innerSchema.Len() {
			return m // projection is the identity; nothing to push
		}
		for _, c := range rest {
			if !innerSchema.Has(c.Table, c.Name) {
				return m
			}
		}
		fired = true
		inner := core.ProjectCols(ga.Inner, rest)
		return &core.GApply{
			Outer: ga.Outer, GroupCols: ga.GroupCols, GroupVar: ga.GroupVar,
			Inner: inner, Partition: ga.Partition,
		}
	})
	return out, fired
}

// SelectionBeforeGApply implements §4.1's "Placing Selections Before
// GApply" (Theorem 1): when the per-group query produces an empty result
// on an empty group (PGQ(φ) = φ), the covering range of its root can be
// applied to the outer query, and any per-group selection logically
// equivalent to it can be eliminated.
type SelectionBeforeGApply struct{}

// Name implements Rule.
func (SelectionBeforeGApply) Name() string { return "selection-before-gapply" }

// Apply implements Rule.
func (SelectionBeforeGApply) Apply(n core.Node, _ *Context) (core.Node, bool) {
	return rewriteGApplies(n, func(ga *core.GApply) (core.Node, bool) {
		outerSchema := ga.Outer.Schema()
		cr := analyze.CoveringRange(ga.Inner, outerSchema)
		if cr == nil {
			return nil, false // covering range is the whole group
		}
		if !analyze.EmptyOnEmpty(ga.Inner) {
			return nil, false // PGQ(φ) ≠ φ: count(*)-style aggregates
		}
		// Idempotence: skip when every covering-range conjunct already
		// appears as a selection conjunct somewhere in the outer tree —
		// classic pushdown relocates the inserted selection, and firing
		// again would stack duplicates forever.
		if allConjunctsPresent(cr, ga.Outer) {
			return nil, false
		}
		outer := &core.Select{Input: ga.Outer, Cond: cr}
		// Eliminate per-group selections logically equivalent to the
		// pushed range (only those whose condition equals the whole
		// range; partial overlaps stay for correctness).
		inner := core.Transform(ga.Inner, func(m core.Node) core.Node {
			if sel, ok := m.(*core.Select); ok && core.ExprEqual(sel.Cond, cr) {
				if !hasAggBetween(ga.Inner, sel) {
					return sel.Input
				}
			}
			return m
		})
		return withPartition(core.NewGApply(outer, ga.GroupCols, ga.GroupVar, inner), ga.Partition), true
	})
}

// allConjunctsPresent reports whether each conjunct of cond appears
// (structurally) as a selection or join conjunct somewhere in the tree.
func allConjunctsPresent(cond core.Expr, tree core.Node) bool {
	var present []core.Expr
	core.Walk(tree, func(m core.Node) {
		switch x := m.(type) {
		case *core.Select:
			present = append(present, core.ConjunctsOf(x.Cond)...)
		case *core.Join:
			present = append(present, core.ConjunctsOf(x.Cond)...)
		}
	})
	for _, want := range core.ConjunctsOf(cond) {
		found := false
		for _, have := range present {
			if core.ExprEqual(want, have) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// hasAggBetween conservatively reports whether removing sel could change
// results because an aggregate/apply sits below it (its condition then
// filters computed rows, not raw group rows; such selects never have a
// covering-range-equal condition in well-formed trees, but check anyway).
func hasAggBetween(root core.Node, sel *core.Select) bool {
	blocked := false
	core.Walk(sel.Input, func(m core.Node) {
		switch m.(type) {
		case *core.AggOp, *core.GroupBy, *core.Apply:
			blocked = true
		}
	})
	return blocked
}

// withPartition keeps the physical hint across a rebuild.
func withPartition(g *core.GApply, p core.PartitionHint) *core.GApply {
	g.Partition = p
	return g
}

// ProjectionBeforeGApply implements §4.1's "Placing Projections Before
// GApply": only the grouping columns and the columns referenced by the
// per-group query need to flow into the partition phase. Because the
// syntax binds *all* columns of the outer query to the group variable,
// this pruning can shrink the partitioned data substantially.
type ProjectionBeforeGApply struct{}

// Name implements Rule.
func (ProjectionBeforeGApply) Name() string { return "projection-before-gapply" }

// Apply implements Rule.
func (ProjectionBeforeGApply) Apply(n core.Node, _ *Context) (core.Node, bool) {
	return rewriteGApplies(n, func(ga *core.GApply) (core.Node, bool) {
		outerSchema := ga.Outer.Schema()
		needed := append([]*core.ColRef{}, ga.GroupCols...)
		needed = append(needed, analyze.ReferencedGroupColumns(ga.Inner, outerSchema)...)
		needed = core.DedupCols(needed)
		if len(needed) >= outerSchema.Len() {
			return nil, false // nothing to prune
		}
		outer := core.ProjectCols(ga.Outer, needed)
		return withPartition(core.NewGApply(outer, ga.GroupCols, ga.GroupVar, ga.Inner), ga.Partition), true
	})
}

// GApplyToGroupBy implements §4.1's "Converting GApply to groupby": a
// per-group query that only computes aggregates over the group becomes a
// traditional (streaming, non-blocking per group) groupby; one that
// groups the group by columns B becomes a groupby on C ∪ B.
type GApplyToGroupBy struct{}

// Name implements Rule.
func (GApplyToGroupBy) Name() string { return "gapply-to-groupby" }

// Apply implements Rule.
func (GApplyToGroupBy) Apply(n core.Node, _ *Context) (core.Node, bool) {
	return rewriteGApplies(n, func(ga *core.GApply) (core.Node, bool) {
		// Peel an optional top-level projection of the per-group query.
		inner := ga.Inner
		var topProj *core.Project
		if p, ok := inner.(*core.Project); ok {
			inner = p.Input
			topProj = p
		}
		switch x := inner.(type) {
		case *core.AggOp:
			if _, ok := x.Input.(*core.GroupScan); !ok {
				return nil, false
			}
			gb := &core.GroupBy{Input: ga.Outer, GroupCols: ga.GroupCols, Aggs: x.Aggs}
			return rebuildAbove(gb, ga, topProj), true
		case *core.GroupBy:
			if _, ok := x.Input.(*core.GroupScan); !ok {
				return nil, false
			}
			cols := append(append([]*core.ColRef{}, ga.GroupCols...), x.GroupCols...)
			gb := &core.GroupBy{Input: ga.Outer, GroupCols: core.DedupCols(cols), Aggs: x.Aggs}
			return rebuildAbove(gb, ga, topProj), true
		default:
			return nil, false
		}
	})
}

// rebuildAbove re-creates the GApply output shape (grouping values
// crossed with per-group results) on top of the replacement groupby.
func rebuildAbove(gb *core.GroupBy, ga *core.GApply, topProj *core.Project) core.Node {
	if topProj == nil && sameCols(gb.GroupCols, ga.GroupCols) {
		return gb
	}
	exprs := make([]core.Expr, 0, len(ga.GroupCols)+4)
	names := make([]string, 0, len(ga.GroupCols)+4)
	for _, c := range ga.GroupCols {
		exprs = append(exprs, c)
		names = append(names, "")
	}
	if topProj != nil {
		exprs = append(exprs, topProj.Exprs...)
		names = append(names, topProj.Names...)
	} else {
		// Expose the per-group query's own output columns.
		innerSchema := ga.Inner.Schema()
		for _, c := range innerSchema.Cols {
			exprs = append(exprs, &core.ColRef{Table: c.Table, Name: c.Name})
			names = append(names, "")
		}
	}
	return core.NewProject(gb, exprs, names)
}

func sameCols(a, b []*core.ColRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i].Name, b[i].Name) || !strings.EqualFold(a[i].Table, b[i].Table) {
			return false
		}
	}
	return true
}
