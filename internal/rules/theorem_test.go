package rules

import (
	"fmt"
	"math/rand"
	"testing"

	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// randomCatalog builds a randomized parts/suppliers catalog from a
// seeded PRNG: nSupp suppliers, nPart parts with random prices/brands,
// each part supplied by 1-3 random suppliers. Determinism per seed
// keeps failures reproducible.
func randomCatalog(t *testing.T, seed int64, nSupp, nPart int) *storage.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cat := storage.NewCatalog()
	sup, err := cat.Create(&schema.TableDef{
		Name: "supplier",
		Schema: schema.New(
			schema.Column{Name: "s_suppkey", Type: types.KindInt},
			schema.Column{Name: "s_name", Type: types.KindString}),
		PrimaryKey: []string{"s_suppkey"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= nSupp; i++ {
		sup.Append(types.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("s%d", i))})
	}
	part, err := cat.Create(&schema.TableDef{
		Name: "part",
		Schema: schema.New(
			schema.Column{Name: "p_partkey", Type: types.KindInt},
			schema.Column{Name: "p_name", Type: types.KindString},
			schema.Column{Name: "p_retailprice", Type: types.KindFloat},
			schema.Column{Name: "p_brand", Type: types.KindString}),
		PrimaryKey: []string{"p_partkey"},
	})
	if err != nil {
		t.Fatal(err)
	}
	brands := []string{"Brand#A", "Brand#B", "Brand#C"}
	for i := 1; i <= nPart; i++ {
		part.Append(types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("p%d", i)),
			types.NewFloat(float64(rng.Intn(1000)) / 10),
			types.NewString(brands[rng.Intn(len(brands))]),
		})
	}
	ps, err := cat.Create(&schema.TableDef{
		Name: "partsupp",
		Schema: schema.New(
			schema.Column{Name: "ps_partkey", Type: types.KindInt},
			schema.Column{Name: "ps_suppkey", Type: types.KindInt}),
		PrimaryKey: []string{"ps_partkey", "ps_suppkey"},
		ForeignKeys: []schema.ForeignKey{
			{Cols: []string{"ps_partkey"}, RefTable: "part", RefCols: []string{"p_partkey"}},
			{Cols: []string{"ps_suppkey"}, RefTable: "supplier", RefCols: []string{"s_suppkey"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= nPart; p++ {
		n := 1 + rng.Intn(3)
		seen := map[int]bool{}
		for j := 0; j < n; j++ {
			s := 1 + rng.Intn(nSupp)
			if seen[s] {
				continue
			}
			seen[s] = true
			ps.Append(types.Row{types.NewInt(int64(p)), types.NewInt(int64(s))})
		}
	}
	return cat
}

// TestTheorem1Property checks the paper's Theorem 1 end to end on
// randomized data: pushing the covering range into the outer query
// (when PGQ(φ)=φ) never changes the result of any query in a family of
// selective per-group queries, across random data sets.
func TestTheorem1Property(t *testing.T) {
	queries := []string{
		// single selection
		`select gapply(select p_name from g where p_brand = 'Brand#A')
		 from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g`,
		// stacked conditions
		`select gapply(select p_name from g where p_brand = 'Brand#A' and p_retailprice > 40)
		 from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g`,
		// union of two selective branches (disjunctive covering range)
		`select gapply(select p_name from g where p_brand = 'Brand#A'
		               union all
		               select p_name from g where p_brand = 'Brand#B')
		 from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g`,
		// Figure 3: selection plus aggregate over a different selection
		`select gapply(select p_name from g
		               where p_brand = 'Brand#A' and p_retailprice >
		                     (select avg(p_retailprice) from g where p_brand = 'Brand#B'))
		 from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g`,
	}
	for seed := int64(1); seed <= 8; seed++ {
		cat := randomCatalog(t, seed, 5+int(seed), 30)
		ctx := &Context{Catalog: cat}
		for qi, q := range queries {
			plan := bindSQL(t, cat, q)
			plan, _ = PushDownSelections{}.Apply(plan, ctx)
			want := runPlan(t, cat, plan)
			rewritten, fired := SelectionBeforeGApply{}.Apply(plan, ctx)
			if !fired {
				t.Fatalf("seed %d query %d: rule did not fire", seed, qi)
			}
			got := runPlan(t, cat, rewritten)
			if !sameMultiset(want, got) {
				t.Fatalf("seed %d query %d: Theorem 1 violated\nbefore: %v\nafter: %v\nplan:\n%s",
					seed, qi, want, got, core.Format(rewritten))
			}
		}
	}
}

// TestTheorem1RequiresEmptyOnEmpty pins the theorem's side condition:
// with an aggregate branch (PGQ(φ) ≠ φ), pushing the range would drop
// the 0-count rows, so the rule must refuse across random data.
func TestTheorem1RequiresEmptyOnEmpty(t *testing.T) {
	q := `select gapply(select count(*) from g where p_brand = 'Brand#A') as (n)
	      from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g`
	for seed := int64(1); seed <= 4; seed++ {
		cat := randomCatalog(t, seed, 6, 25)
		mustNotFire(t, cat, SelectionBeforeGApply{}, bindSQL(t, cat, q))
	}
}

// TestTheorem2Property checks Theorem 2 on randomized data: moving
// GApply below a foreign-key join whose join columns are grouping
// columns (with the adapted per-group query) preserves results.
func TestTheorem2Property(t *testing.T) {
	queries := []string{
		// Figure 7: name + cheapest part per supplier.
		`select gapply(select s_name, p_name, p_retailprice from g
		               where p_retailprice = (select min(p_retailprice) from g))
		 from partsupp, part, supplier
		 where ps_partkey = p_partkey and ps_suppkey = s_suppkey
		 group by s_suppkey : g`,
		// Aggregate-only per-group query.
		`select gapply(select max(p_retailprice) from g) as (top)
		 from partsupp, part, supplier
		 where ps_partkey = p_partkey and ps_suppkey = s_suppkey
		 group by s_suppkey : g`,
	}
	for seed := int64(1); seed <= 8; seed++ {
		cat := randomCatalog(t, seed, 4+int(seed)%5, 25)
		ctx := &Context{Catalog: cat}
		for qi, q := range queries {
			plan := bindSQL(t, cat, q)
			plan, _ = PushDownSelections{}.Apply(plan, ctx)
			want := runPlan(t, cat, plan)
			rewritten, fired := InvariantGrouping{}.Apply(plan, ctx)
			if !fired {
				t.Fatalf("seed %d query %d: rule did not fire\n%s", seed, qi, core.Format(plan))
			}
			got := runPlan(t, cat, rewritten)
			if !sameMultiset(want, got) {
				t.Fatalf("seed %d query %d: Theorem 2 violated\nbefore: %v\nafter: %v\nplan:\n%s",
					seed, qi, want, got, core.Format(rewritten))
			}
		}
	}
}

// TestGroupSelectionProperty randomizes the §4.2 rewrites.
func TestGroupSelectionProperty(t *testing.T) {
	existsQ := `select gapply(select * from g where exists
			(select p_partkey from g where p_retailprice > 80))
		from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g`
	aggQ := `select gapply(select * from g where
			(select avg(p_retailprice) from g) > 50)
		from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g`
	for seed := int64(1); seed <= 8; seed++ {
		cat := randomCatalog(t, seed, 6, 30)
		for _, tc := range []struct {
			rule Rule
			q    string
		}{
			{GroupSelectionExists{}, existsQ},
			{GroupSelectionAggregate{}, aggQ},
		} {
			plan := bindSQL(t, cat, tc.q)
			fireAndCheck(t, cat, tc.rule, plan)
		}
	}
}

// TestDecorrelateProperty randomizes the decorrelation rewrite over the
// paper's Q2 correlated-aggregate shape.
func TestDecorrelateProperty(t *testing.T) {
	q := `select ps1.ps_suppkey, count(*) from partsupp ps1, part
		where p_partkey = ps_partkey and p_retailprice >=
			(select avg(p_retailprice) from partsupp, part
			 where p_partkey = ps_partkey and ps_suppkey = ps1.ps_suppkey)
		group by ps1.ps_suppkey`
	for seed := int64(1); seed <= 8; seed++ {
		cat := randomCatalog(t, seed, 5, 20)
		fireAndCheck(t, cat, Decorrelate{}, bindSQL(t, cat, q))
	}
}
