package rules

import (
	"strings"

	"gapplydb/internal/analyze"
	"gapplydb/internal/core"
)

// InvariantGrouping implements §4.3 (Theorem 2): GApply moves below the
// top join of its left-deep outer tree onto node n = the join's left
// child when n has the invariant grouping property:
//
//  1. n's columns contain the grouping columns (possibly remapped
//     through the join's equality pairs) and the gp-eval columns;
//  2. every join column of n is a grouping column;
//  3. the join above n is a foreign-key join (outer side holds the
//     foreign key to the inner side's key).
//
// The per-group query is adapted by dropping projected columns that are
// not available at n — later joins re-attach them — and the original
// output shape is restored by a final projection. Repeated firing pushes
// GApply arbitrarily deep, one join per firing.
type InvariantGrouping struct{}

// Name implements Rule.
func (InvariantGrouping) Name() string { return "invariant-grouping" }

// Apply implements Rule.
func (InvariantGrouping) Apply(n core.Node, ctx *Context) (core.Node, bool) {
	return rewriteGApplies(n, func(ga *core.GApply) (core.Node, bool) {
		join, ok := ga.Outer.(*core.Join)
		if !ok || join.Kind != core.InnerJoin {
			return nil, false
		}
		// The join must be a pure equijoin: each conjunct one equality.
		pairs := join.EquiPairs()
		if len(pairs) == 0 || len(pairs) != len(core.ConjunctsOf(join.Cond)) {
			return nil, false
		}
		nNode := join.Left
		nSchema := nNode.Schema()
		rightScan, ok := join.Right.(*core.Scan)
		if !ok {
			return nil, false // need a base table to check the foreign key
		}

		// Remap grouping columns through the join equalities onto n.
		newGCols := make([]*core.ColRef, len(ga.GroupCols))
		for i, gc := range ga.GroupCols {
			switch {
			case nSchema.Has(gc.Table, gc.Name):
				newGCols[i] = gc
			default:
				mapped := remapThroughPairs(gc, pairs, join.Right.Schema())
				if mapped == nil {
					return nil, false
				}
				newGCols[i] = mapped
			}
		}

		// Condition 2: every join column of n is a grouping column.
		for _, p := range pairs {
			if !colInList(p.Left, newGCols) {
				return nil, false
			}
		}

		// Condition 3: the join is a foreign-key join from n's side to
		// the right table's key.
		for _, p := range pairs {
			lord, err := nSchema.Resolve(p.Left.Table, p.Left.Name)
			if err != nil {
				return nil, false
			}
			leftCol := nSchema.Cols[lord]
			if !ctx.Catalog.HasForeignKey(leftCol.Table, []string{leftCol.Name}, rightScan.Table, []string{p.Right.Name}) {
				return nil, false
			}
		}

		// Condition 1 (second half): gp-eval columns available at n.
		for _, c := range analyze.GpEvalColumns(ga.Inner, ga.Outer.Schema()) {
			if !nSchema.Has(c.Table, c.Name) {
				return nil, false
			}
		}

		// Adapt the per-group query: drop projected columns not present
		// at n (they get re-attached by the join above).
		adapted, ok := adaptPGQ(ga.Inner, ga.Outer.Schema(), nSchema)
		if !ok {
			return nil, false
		}

		newGA := withPartition(core.NewGApply(nNode, newGCols, ga.GroupVar, adapted), ga.Partition)
		newJoin := &core.Join{Left: newGA, Right: join.Right, Cond: join.Cond, Method: join.Method}

		// Restore the original output shape by name.
		origCols := ga.Schema().Cols
		outExprs := make([]core.Expr, len(origCols))
		for i, c := range origCols {
			if _, err := newJoin.Schema().Resolve(c.Table, c.Name); err != nil {
				return nil, false
			}
			outExprs[i] = &core.ColRef{Table: c.Table, Name: c.Name}
		}
		return core.NewProject(newJoin, outExprs, nil), true
	})
}

// remapThroughPairs maps a grouping column that lives on the join's
// right side onto its equal left-side column.
func remapThroughPairs(gc *core.ColRef, pairs []core.EquiPair, rightSchema interface {
	Resolve(string, string) (int, error)
}, ) *core.ColRef {
	gcOrd, err := rightSchema.Resolve(gc.Table, gc.Name)
	if err != nil {
		return nil
	}
	for _, p := range pairs {
		if ord, err := rightSchema.Resolve(p.Right.Table, p.Right.Name); err == nil && ord == gcOrd {
			return p.Left
		}
	}
	return nil
}

func colInList(c *core.ColRef, list []*core.ColRef) bool {
	for _, l := range list {
		if strings.EqualFold(c.Name, l.Name) &&
			(c.Table == "" || l.Table == "" || strings.EqualFold(c.Table, l.Table)) {
			return true
		}
	}
	return false
}

// adaptPGQ drops from every projection list the columns that come from
// the group but are not available at the new, narrower group schema.
// If any projection would become empty (the exists-subquery caveat in
// §4.3), the adaptation fails.
func adaptPGQ(pgq core.Node, oldGroup, newGroup interface{ Has(string, string) bool }) (core.Node, bool) {
	ok := true
	out := core.Transform(pgq, func(m core.Node) core.Node {
		p, isProj := m.(*core.Project)
		if !isProj {
			return m
		}
		var exprs []core.Expr
		var names []string
		for i, e := range p.Exprs {
			drop := false
			for _, c := range core.ColRefsIn(e) {
				if oldGroup.Has(c.Table, c.Name) && !newGroup.Has(c.Table, c.Name) {
					drop = true
				}
			}
			if !drop {
				exprs = append(exprs, e)
				if i < len(p.Names) {
					names = append(names, p.Names[i])
				} else {
					names = append(names, "")
				}
			}
		}
		if len(exprs) == 0 {
			ok = false
			return m
		}
		if len(exprs) == len(p.Exprs) {
			return m
		}
		np := core.NewProject(p.Input, exprs, names)
		np.Qualifier = p.Qualifier
		return np
	})
	if !ok {
		return nil, false
	}
	return out, true
}
