package trace

import (
	"math/rand"
	"sync"
)

// Recorder is the flight recorder: a bounded sink that always retains
// the recentN most recent completed traces and, independently, the
// slowN slowest seen since start (by root-span duration). A trace can
// be in both sets; Get searches both. The two retention policies serve
// the two debugging questions — "what just happened" and "what was ever
// pathologically slow" — without unbounded memory.
type Recorder struct {
	mu      sync.Mutex
	recentN int
	slowN   int
	recent  []*Trace // ring, oldest first
	slow    []*Trace // unordered; evict current minimum when full
}

// NewRecorder sizes the flight recorder. Non-positive sizes disable the
// corresponding retention set.
func NewRecorder(recentN, slowN int) *Recorder {
	if recentN < 0 {
		recentN = 0
	}
	if slowN < 0 {
		slowN = 0
	}
	return &Recorder{recentN: recentN, slowN: slowN}
}

// Record adds a completed trace. Nil traces (from a double Finish or a
// nil builder) are ignored.
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.recentN > 0 {
		r.recent = append(r.recent, t)
		if len(r.recent) > r.recentN {
			r.recent = r.recent[1:]
		}
	}
	if r.slowN > 0 {
		if len(r.slow) < r.slowN {
			r.slow = append(r.slow, t)
		} else {
			min := 0
			for i := 1; i < len(r.slow); i++ {
				if r.slow[i].Dur < r.slow[min].Dur {
					min = i
				}
			}
			if t.Dur > r.slow[min].Dur {
				r.slow[min] = t
			}
		}
	}
}

// Recent returns summaries of the retained most-recent traces, newest
// first.
func (r *Recorder) Recent() []Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Summary, 0, len(r.recent))
	for i := len(r.recent) - 1; i >= 0; i-- {
		out = append(out, r.recent[i].Summarize())
	}
	return out
}

// Slowest returns summaries of the retained slowest traces, slowest
// first.
func (r *Recorder) Slowest() []Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Summary, 0, len(r.slow))
	for _, t := range r.slow {
		out = append(out, t.Summarize())
	}
	r.mu.Unlock()
	SortSummaries(out)
	return out
}

// Get returns the retained trace with the given ID, or nil. The most
// recent occurrence wins if the ID is in both sets.
func (r *Recorder) Get(id ID) *Trace {
	if r == nil || id.IsZero() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.recent) - 1; i >= 0; i-- {
		if r.recent[i].ID == id {
			return r.recent[i]
		}
	}
	for _, t := range r.slow {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Last returns the most recently recorded trace, or nil.
func (r *Recorder) Last() *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recent) == 0 {
		return nil
	}
	return r.recent[len(r.recent)-1]
}

// Sampler makes head-sampling decisions. It is a seeded PRNG behind a
// mutex so decisions are concurrency-safe and, with a fixed seed and a
// serial decision order, deterministic — which is what the sampling
// tests pin.
type Sampler struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewSampler returns a sampler seeded for reproducible decisions.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed))}
}

// Sample reports whether a query should be traced at probability p.
// p <= 0 never samples; p >= 1 always does (without consuming
// randomness, so a forced-on stretch doesn't perturb the stream).
func (s *Sampler) Sample(p float64) bool {
	if s == nil || p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	s.mu.Lock()
	v := s.rng.Float64()
	s.mu.Unlock()
	return v < p
}

// Reseed resets the decision stream — test hook for determinism.
func (s *Sampler) Reseed(seed int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rng = rand.New(rand.NewSource(seed))
	s.mu.Unlock()
}
