package trace

import (
	"sync"
	"time"
)

// Builder accumulates spans for one in-flight traced query. All methods
// are safe on a nil *Builder — the untraced path passes nil around and
// pays only the receiver check — and safe for concurrent use, since
// spans may be added from the session goroutine and the engine.
//
// Span indexes returned by StartSpan are stable handles; EndSpan may be
// called at most once per handle. Finish seals the builder and returns
// the completed Trace; later calls are no-ops returning nil.
type Builder struct {
	mu       sync.Mutex
	id       ID
	query    string
	planHash string
	start    time.Time
	spans    []Span
	open     []time.Time // per-span start wall time; zero once ended
	done     bool
}

// NewBuilder opens a trace: it records the begin time and creates the
// root span (index 0) named "query".
func NewBuilder(id ID, query string) *Builder {
	b := &Builder{id: id, query: query, start: time.Now()}
	b.spans = append(b.spans, Span{Name: "query", Parent: -1})
	b.open = append(b.open, b.start)
	return b
}

// ID returns the trace ID (zero for a nil builder).
func (b *Builder) ID() ID {
	if b == nil {
		return ID{}
	}
	return b.id
}

// SetQuery replaces the query text (used when the builder is opened
// before the statement is read).
func (b *Builder) SetQuery(q string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.query = q
	b.mu.Unlock()
}

// SetPlanHash records the compiled plan's hash on the trace.
func (b *Builder) SetPlanHash(h string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.planHash = h
	b.mu.Unlock()
}

// StartSpan opens a child span under parent (0 = root) and returns its
// handle. On a nil builder it returns -1, which every other method
// accepts and ignores.
func (b *Builder) StartSpan(name string, parent int) int {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return -1
	}
	now := time.Now()
	b.spans = append(b.spans, Span{Name: name, Parent: parent, Start: now.Sub(b.start)})
	b.open = append(b.open, now)
	return len(b.spans) - 1
}

// EndSpan closes the span with the given handle, fixing its duration.
func (b *Builder) EndSpan(i int) {
	if b == nil || i < 0 {
		return
	}
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done || i >= len(b.spans) || b.open[i].IsZero() {
		return
	}
	b.spans[i].Dur = now.Sub(b.open[i])
	b.open[i] = time.Time{}
}

// Span opens a child span and returns the closure that ends it — the
// idiomatic `defer tb.Span("parse", 0)()` form. On a nil builder the
// returned closure is a no-op.
func (b *Builder) Span(name string, parent int) func() {
	i := b.StartSpan(name, parent)
	return func() { b.EndSpan(i) }
}

// AddTimed records an already-measured region (e.g. admission wait
// timed around a blocking acquire) as a completed span.
func (b *Builder) AddTimed(name string, parent int, start time.Time, dur time.Duration) int {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return -1
	}
	b.spans = append(b.spans, Span{Name: name, Parent: parent, Start: start.Sub(b.start), Dur: dur})
	b.open = append(b.open, time.Time{})
	return len(b.spans) - 1
}

// AddSynthetic records a span whose start is an explicit offset from
// the trace begin — used for operator spans reconstructed from the
// executor profile after the run, which have inclusive durations but no
// wall-clock start of their own.
func (b *Builder) AddSynthetic(name string, parent int, startOff, dur time.Duration, attrs []Attr) int {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return -1
	}
	b.spans = append(b.spans, Span{Name: name, Parent: parent, Start: startOff, Dur: dur, Attrs: attrs})
	b.open = append(b.open, time.Time{})
	return len(b.spans) - 1
}

// Annotate appends attributes to an open or closed span.
func (b *Builder) Annotate(i int, attrs ...Attr) {
	if b == nil || i < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done || i >= len(b.spans) {
		return
	}
	b.spans[i].Attrs = append(b.spans[i].Attrs, attrs...)
}

// SpanStart returns the recorded start offset of span i (0 if unknown),
// so post-run synthetic children can inherit their parent's start.
func (b *Builder) SpanStart(i int) time.Duration {
	if b == nil || i < 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if i >= len(b.spans) {
		return 0
	}
	return b.spans[i].Start
}

// Finish seals the builder: any still-open spans (the root included)
// are closed at now, and the completed Trace is returned. Subsequent
// calls return nil.
func (b *Builder) Finish(status, errMsg string) *Trace {
	if b == nil {
		return nil
	}
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return nil
	}
	b.done = true
	for i := range b.spans {
		if !b.open[i].IsZero() {
			b.spans[i].Dur = now.Sub(b.open[i])
			b.open[i] = time.Time{}
		}
	}
	t := &Trace{
		ID: b.id, Query: b.query, PlanHash: b.planHash,
		Started: b.start, Dur: b.spans[0].Dur,
		Status: status, Error: errMsg,
		Spans: append([]Span(nil), b.spans...),
	}
	return t
}
