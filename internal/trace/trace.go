// Package trace is the engine's end-to-end query tracer: one Trace per
// traced query, made of phase spans (admission wait, parse, bind,
// optimize, plan-cache lookup, execution) and per-operator spans derived
// from the executor's profile.
//
// The design is deliberately minimal and dependency-free so every layer
// can use it: a 16-byte ID travels on the wire (client-issued or
// server-minted) and is echoed on completion frames, a Builder
// accumulates spans while the query runs, and completed traces land in a
// Recorder — a bounded flight recorder that always retains the N slowest
// and the N most recent traces, queryable by ID and exportable as Chrome
// trace_event JSON for chrome://tracing.
//
// Tracing is strictly opt-in per query (forced, or head-sampled with a
// probability); an untraced query pays a nil check and nothing else.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// ID identifies one trace: 16 random bytes, rendered as 32 hex digits.
// The zero ID means "not traced" everywhere it appears.
type ID [16]byte

// NewID mints a random trace ID. It never returns the zero ID.
func NewID() ID {
	var id ID
	for id.IsZero() {
		if _, err := rand.Read(id[:]); err != nil {
			// crypto/rand never fails on supported platforms; if it somehow
			// does, a time-derived ID keeps tracing usable.
			now := time.Now().UnixNano()
			for i := 0; i < 8; i++ {
				id[i] = byte(now >> (8 * i))
			}
		}
	}
	return id
}

// IsZero reports whether the ID is the zero ("untraced") ID.
func (id ID) IsZero() bool { return id == ID{} }

// String renders the ID as 32 lowercase hex digits.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// MarshalText makes IDs render as hex in JSON.
func (id ID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText parses the hex rendering.
func (id *ID) UnmarshalText(b []byte) error {
	parsed, err := ParseID(string(b))
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// ParseID parses the 32-hex-digit rendering back into an ID.
func ParseID(s string) (ID, error) {
	var id ID
	b, err := hex.DecodeString(strings.TrimSpace(s))
	if err != nil || len(b) != len(id) {
		return ID{}, fmt.Errorf("trace: bad trace id %q", s)
	}
	copy(id[:], b)
	return id, nil
}

// Attr is one key/value annotation on a span (row counts, cache
// verdicts, rule names). A slice, not a map, so renderings are
// deterministic.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed region of a trace. Start is the offset from the
// trace's begin time; Parent indexes the enclosing span in the trace's
// Spans slice (-1 for the root). Operator spans synthesized from the
// executor's profile inherit their parent's Start and carry the
// operator's inclusive time as Dur — under parallel GApply the workers'
// times sum, so an operator span may be longer than its parent.
type Span struct {
	Name   string        `json:"name"`
	Parent int           `json:"parent"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Trace is one completed traced query.
type Trace struct {
	ID       ID        `json:"id"`
	Query    string    `json:"query"`
	PlanHash string    `json:"plan_hash,omitempty"`
	Started  time.Time `json:"started"`
	// Dur is the root span's duration: the whole request, admission wait
	// and compile included.
	Dur    time.Duration `json:"dur_ns"`
	Status string        `json:"status"` // "ok" or "error"
	Error  string        `json:"error,omitempty"`
	Spans  []Span        `json:"spans"`
}

// Summary is the flight recorder's listing form of a trace.
type Summary struct {
	ID       ID      `json:"id"`
	Query    string  `json:"query"`
	PlanHash string  `json:"plan_hash,omitempty"`
	Started  string  `json:"started"`
	DurMS    float64 `json:"dur_ms"`
	Status   string  `json:"status"`
	Spans    int     `json:"spans"`
}

// Summarize reduces the trace to its listing form.
func (t *Trace) Summarize() Summary {
	q := t.Query
	if len(q) > 120 {
		q = q[:117] + "..."
	}
	return Summary{
		ID: t.ID, Query: q, PlanHash: t.PlanHash,
		Started: t.Started.UTC().Format(time.RFC3339Nano),
		DurMS:   float64(t.Dur) / float64(time.Millisecond),
		Status:  t.Status, Spans: len(t.Spans),
	}
}

// String renders the trace as an indented span tree with durations and
// attributes — the gsql \trace rendering.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s  %s  %s\n", t.ID, t.Dur.Round(time.Microsecond), t.Status)
	fmt.Fprintf(&b, "query: %s\n", strings.TrimSpace(t.Query))
	if t.PlanHash != "" {
		fmt.Fprintf(&b, "plan hash: %s\n", t.PlanHash)
	}
	if t.Error != "" {
		fmt.Fprintf(&b, "error: %s\n", t.Error)
	}
	children := make(map[int][]int, len(t.Spans))
	for i, s := range t.Spans {
		if i == 0 {
			continue
		}
		children[s.Parent] = append(children[s.Parent], i)
	}
	var render func(i, depth int)
	render = func(i, depth int) {
		s := t.Spans[i]
		fmt.Fprintf(&b, "%s%s  +%s %s", strings.Repeat("  ", depth), s.Name,
			s.Start.Round(time.Microsecond), s.Dur.Round(time.Microsecond))
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		for _, c := range children[i] {
			render(c, depth+1)
		}
	}
	if len(t.Spans) > 0 {
		render(0, 0)
	}
	return b.String()
}

// chromeEvent is one Chrome trace_event ("X" = complete event). The
// format is the Trace Event Format chrome://tracing and Perfetto load.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeJSON exports the trace in Chrome trace_event JSON ("traceEvents"
// array of complete events), loadable by chrome://tracing and Perfetto.
// Sibling operator spans are fanned out across tids by depth so nested
// inclusive times render as a flame graph rather than overlapping.
func (t *Trace) ChromeJSON() ([]byte, error) {
	events := make([]chromeEvent, 0, len(t.Spans))
	for _, s := range t.Spans {
		ev := chromeEvent{
			Name: s.Name, Ph: "X",
			Ts:  float64(s.Start) / float64(time.Microsecond),
			Dur: float64(s.Dur) / float64(time.Microsecond),
			Pid: 1, Tid: 1,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	doc := struct {
		TraceEvents []chromeEvent     `json:"traceEvents"`
		Metadata    map[string]string `json:"metadata"`
	}{
		TraceEvents: events,
		Metadata: map[string]string{
			"trace_id": t.ID.String(),
			"query":    t.Query,
			"status":   t.Status,
		},
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Find returns the indexes of the spans with the given name, in span
// order — a test and tooling helper.
func (t *Trace) Find(name string) []int {
	var out []int
	for i, s := range t.Spans {
		if s.Name == name {
			out = append(out, i)
		}
	}
	return out
}

// SortSummaries orders summaries by duration, slowest first (ties by
// ID, for determinism).
func SortSummaries(s []Summary) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].DurMS != s[j].DurMS {
			return s[i].DurMS > s[j].DurMS
		}
		return s[i].ID.String() < s[j].ID.String()
	})
}
