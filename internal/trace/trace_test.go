package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDRoundTrip(t *testing.T) {
	id := NewID()
	if id.IsZero() {
		t.Fatal("NewID returned the zero ID")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q, want 32 hex digits", s)
	}
	back, err := ParseID(s)
	if err != nil {
		t.Fatalf("ParseID(%q): %v", s, err)
	}
	if back != id {
		t.Fatalf("round trip mismatch: %s != %s", back, id)
	}
	if _, err := ParseID("zz"); err == nil {
		t.Fatal("ParseID accepted junk")
	}
	if _, err := ParseID(s[:30]); err == nil {
		t.Fatal("ParseID accepted short input")
	}
}

func TestIDJSON(t *testing.T) {
	id := NewID()
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%q", id.String())
	if string(b) != want {
		t.Fatalf("marshal = %s, want %s", b, want)
	}
	var back ID
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("unmarshal mismatch: %s != %s", back, id)
	}
}

func TestNilBuilderIsSafe(t *testing.T) {
	var b *Builder
	if !b.ID().IsZero() {
		t.Fatal("nil builder ID not zero")
	}
	if i := b.StartSpan("x", 0); i != -1 {
		t.Fatalf("nil StartSpan = %d, want -1", i)
	}
	b.EndSpan(0)
	b.Span("x", 0)() // must not panic
	b.AddTimed("x", 0, time.Now(), time.Millisecond)
	b.AddSynthetic("x", 0, 0, 0, nil)
	b.Annotate(0, Attr{Key: "k", Value: "v"})
	b.SetPlanHash("h")
	b.SetQuery("q")
	if b.SpanStart(0) != 0 {
		t.Fatal("nil SpanStart non-zero")
	}
	if tr := b.Finish("ok", ""); tr != nil {
		t.Fatal("nil Finish returned a trace")
	}
}

func TestBuilderSpanTree(t *testing.T) {
	id := NewID()
	b := NewBuilder(id, "SELECT 1")
	parse := b.StartSpan("parse", 0)
	time.Sleep(time.Millisecond)
	b.EndSpan(parse)
	exec := b.StartSpan("execute", 0)
	b.AddSynthetic("Scan part", exec, b.SpanStart(exec), 5*time.Millisecond,
		[]Attr{{Key: "rows", Value: "10"}})
	b.EndSpan(exec)
	b.SetPlanHash("deadbeef")
	tr := b.Finish("ok", "")
	if tr == nil {
		t.Fatal("Finish returned nil")
	}
	if tr.ID != id || tr.PlanHash != "deadbeef" || tr.Status != "ok" {
		t.Fatalf("trace header wrong: %+v", tr)
	}
	if len(tr.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(tr.Spans))
	}
	if tr.Spans[0].Name != "query" || tr.Spans[0].Parent != -1 {
		t.Fatalf("root span wrong: %+v", tr.Spans[0])
	}
	if tr.Spans[parse].Dur < time.Millisecond {
		t.Fatalf("parse span too short: %v", tr.Spans[parse].Dur)
	}
	if tr.Dur < tr.Spans[parse].Dur {
		t.Fatalf("root dur %v < parse dur %v", tr.Dur, tr.Spans[parse].Dur)
	}
	op := tr.Find("Scan part")
	if len(op) != 1 || tr.Spans[op[0]].Parent != exec {
		t.Fatalf("operator span misplaced: %v", op)
	}
	if tr.Spans[op[0]].Start != tr.Spans[exec].Start {
		t.Fatal("synthetic span did not inherit parent start")
	}
	// Finish is idempotent.
	if again := b.Finish("ok", ""); again != nil {
		t.Fatal("second Finish returned a trace")
	}
	// Rendering mentions the pieces a human needs.
	s := tr.String()
	for _, want := range []string{id.String(), "SELECT 1", "deadbeef", "parse", "Scan part", "rows=10"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestBuilderConcurrentSpans(t *testing.T) {
	b := NewBuilder(NewID(), "q")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				end := b.Span(fmt.Sprintf("w%d", w), 0)
				b.Annotate(0, Attr{Key: "k", Value: "v"})
				end()
			}
		}(w)
	}
	wg.Wait()
	tr := b.Finish("ok", "")
	if got := len(tr.Spans); got != 1+8*100 {
		t.Fatalf("got %d spans, want %d", got, 1+8*100)
	}
	for i, s := range tr.Spans[1:] {
		if s.Dur < 0 {
			t.Fatalf("span %d negative duration", i+1)
		}
	}
}

func TestChromeJSON(t *testing.T) {
	b := NewBuilder(NewID(), "SELECT 1")
	b.AddSynthetic("execute", 0, 0, 2*time.Millisecond, []Attr{{Key: "rows", Value: "3"}})
	tr := b.Finish("ok", "")
	raw, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("ChromeJSON not parseable: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	if doc.Metadata["trace_id"] != tr.ID.String() {
		t.Fatal("metadata missing trace id")
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event phase %q, want X", ev.Ph)
		}
		if ev.Name == "execute" {
			found = true
			if ev.Dur < 1999 || ev.Dur > 2001 {
				t.Fatalf("execute dur %v us, want ~2000", ev.Dur)
			}
			if ev.Args["rows"] != "3" {
				t.Fatalf("execute args = %v", ev.Args)
			}
		}
	}
	if !found {
		t.Fatal("execute event missing")
	}
}

// mkTrace builds a finished trace with a fixed duration for recorder tests.
func mkTrace(dur time.Duration) *Trace {
	return &Trace{ID: NewID(), Query: "q", Dur: dur, Status: "ok",
		Spans: []Span{{Name: "query", Parent: -1, Dur: dur}}}
}

func TestRecorderSlowestRetainedUnderChurn(t *testing.T) {
	r := NewRecorder(4, 3)
	// Three genuinely slow traces early...
	slow := []*Trace{mkTrace(100 * time.Millisecond), mkTrace(300 * time.Millisecond), mkTrace(200 * time.Millisecond)}
	for _, tr := range slow {
		r.Record(tr)
	}
	// ...then heavy churn of fast traces that must evict them from the
	// recent ring but never from the slow set.
	for i := 0; i < 1000; i++ {
		r.Record(mkTrace(time.Duration(i%5+1) * time.Millisecond))
	}
	rec := r.Recent()
	if len(rec) != 4 {
		t.Fatalf("recent len %d, want 4", len(rec))
	}
	for _, s := range rec {
		if s.DurMS > 50 {
			t.Fatalf("slow trace leaked into recent ring after churn: %+v", s)
		}
	}
	sl := r.Slowest()
	if len(sl) != 3 {
		t.Fatalf("slowest len %d, want 3", len(sl))
	}
	wantOrder := []time.Duration{300 * time.Millisecond, 200 * time.Millisecond, 100 * time.Millisecond}
	for i, s := range sl {
		if s.DurMS != float64(wantOrder[i])/float64(time.Millisecond) {
			t.Fatalf("slowest[%d] = %v ms, want %v", i, s.DurMS, wantOrder[i])
		}
	}
	// Every slow trace is still retrievable by ID even though it left
	// the recent ring.
	for _, tr := range slow {
		got := r.Get(tr.ID)
		if got == nil || got.ID != tr.ID {
			t.Fatalf("slow trace %s not retrievable", tr.ID)
		}
	}
	// A new slowest displaces the current minimum.
	champion := mkTrace(time.Second)
	r.Record(champion)
	sl = r.Slowest()
	if sl[0].ID != champion.ID {
		t.Fatalf("new champion not at head: %+v", sl[0])
	}
	if len(sl) != 3 {
		t.Fatalf("slow set grew past cap: %d", len(sl))
	}
	if got := r.Get(slow[0].ID); got != nil {
		t.Fatal("evicted minimum still retrievable")
	}
}

func TestRecorderLastAndGetZero(t *testing.T) {
	r := NewRecorder(2, 2)
	if r.Last() != nil {
		t.Fatal("empty recorder Last != nil")
	}
	if r.Get(ID{}) != nil {
		t.Fatal("Get(zero) != nil")
	}
	a, b := mkTrace(time.Millisecond), mkTrace(2*time.Millisecond)
	r.Record(a)
	r.Record(b)
	if last := r.Last(); last == nil || last.ID != b.ID {
		t.Fatal("Last is not the most recent trace")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(8, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := mkTrace(time.Duration(w*200+i) * time.Microsecond)
				r.Record(tr)
				r.Get(tr.ID)
				r.Recent()
				r.Slowest()
				r.Last()
			}
		}(w)
	}
	wg.Wait()
	if len(r.Recent()) != 8 || len(r.Slowest()) != 8 {
		t.Fatal("recorder sets not at cap after concurrent churn")
	}
}

func TestSamplerDeterministicAndBounded(t *testing.T) {
	a, b := NewSampler(42), NewSampler(42)
	hits := 0
	for i := 0; i < 10000; i++ {
		da, db := a.Sample(0.25), b.Sample(0.25)
		if da != db {
			t.Fatalf("decision %d diverged between identically seeded samplers", i)
		}
		if da {
			hits++
		}
	}
	// 10k Bernoulli(0.25) draws: mean 2500, sd ~43; ±10 sd is safe for a
	// deterministic seed.
	if hits < 2100 || hits > 2900 {
		t.Fatalf("sample rate off: %d/10000 at p=0.25", hits)
	}
	if a.Sample(0) || a.Sample(-1) {
		t.Fatal("p<=0 sampled")
	}
	if !a.Sample(1) || !a.Sample(1.5) {
		t.Fatal("p>=1 did not sample")
	}
	// p>=1 must not consume randomness: both streams still aligned.
	for i := 0; i < 100; i++ {
		b.Sample(1)
	}
	for i := 0; i < 100; i++ {
		if a.Sample(0.5) != b.Sample(0.5) {
			t.Fatal("p>=1 perturbed the decision stream")
		}
	}
	var nilS *Sampler
	if nilS.Sample(1) {
		t.Fatal("nil sampler sampled")
	}
}

func TestSamplerConcurrent(t *testing.T) {
	s := NewSampler(7)
	var wg sync.WaitGroup
	var hits int64
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < 1000; i++ {
				if s.Sample(0.5) {
					local++
				}
			}
			mu.Lock()
			hits += int64(local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if hits < 3200 || hits > 4800 {
		t.Fatalf("concurrent sample rate off: %d/8000 at p=0.5", hits)
	}
}

func TestSummarizeTruncatesQuery(t *testing.T) {
	long := strings.Repeat("x", 500)
	tr := &Trace{ID: NewID(), Query: long, Dur: time.Millisecond, Status: "ok"}
	s := tr.Summarize()
	if len(s.Query) != 120 || !strings.HasSuffix(s.Query, "...") {
		t.Fatalf("summary query not truncated: len %d", len(s.Query))
	}
}
