package coord

import (
	"context"
	"fmt"
	"time"

	"gapplydb"
	"gapplydb/client"
	"gapplydb/internal/exchange"
	"gapplydb/internal/server"
)

// batchMaxRows mirrors the session's framing batch size.
const batchMaxRows = 256

// shardConn is one worker's leg of a distributed query: the pooled
// connection and the in-flight Rows stream on it.
type shardConn struct {
	shard int
	addr  string
	pool  *client.Pool
	conn  *client.Conn
	rows  *client.Rows
}

// release closes the leg's stream (cancelling it server-side if still
// running) and returns the connection to its pool, which discards it
// if the stream's death took the connection with it.
func (sc *shardConn) release() {
	if sc.rows != nil {
		sc.rows.Close()
	}
	sc.pool.Put(sc.conn)
}

// shardSource adapts one leg to exchange.RowSource, tagging errors
// with the shard identity and counting rows for fan-out stats.
type shardSource struct {
	sc *shardConn
	n  int64
}

func (s *shardSource) Next() ([]any, bool, error) {
	row, ok, err := s.sc.rows.Next()
	if err != nil {
		return nil, false, &ShardError{Shard: s.sc.shard, Addr: s.sc.addr, Err: err}
	}
	if ok {
		s.n++
	}
	return row, ok, nil
}

// gatherStream is the coordinator-side result stream the session
// frames to the client: rows pulled from the shards through the
// strategy's gather (merge, pass-through, or combine), with the
// global output-row budget enforced where the global count exists.
type gatherStream struct {
	c       *Coordinator
	query   string
	cols    []string
	cancel  context.CancelFunc
	conns   []*shardConn
	srcs    []*shardSource
	next    func() ([]any, bool, error)
	maxRows int64

	start   time.Time
	elapsed time.Duration
	stats   gapplydb.ExecStats
	emitted int64
	done    bool
	err     error
	closed  bool
	noted   bool
}

func newGatherStream(c *Coordinator, query string, cut exchange.Cut, conns []*shardConn, cancel context.CancelFunc, maxRows int64) *gatherStream {
	g := &gatherStream{
		c:       c,
		query:   query,
		cols:    conns[0].rows.Columns,
		cancel:  cancel,
		conns:   conns,
		maxRows: maxRows,
		start:   time.Now(),
	}
	g.srcs = make([]*shardSource, len(conns))
	srcs := make([]exchange.RowSource, len(conns))
	for i, sc := range conns {
		g.srcs[i] = &shardSource{sc: sc}
		srcs[i] = g.srcs[i]
	}
	switch cut.Strategy {
	case exchange.StrategyMergeGather:
		m := exchange.NewMerge(srcs, cut.Keys)
		g.next = m.Next
	case exchange.StrategyPartialAgg:
		g.next = g.aggNext(cut.Combines)
	default: // StrategySingleShard
		g.next = g.srcs[0].Next
	}
	return g
}

// aggNext pulls the one partial row each shard produces, combines
// them, and emits the single global row.
func (g *gatherStream) aggNext(combines []exchange.CombineFn) func() ([]any, bool, error) {
	emitted := false
	return func() ([]any, bool, error) {
		if emitted {
			return nil, false, nil
		}
		emitted = true
		partials := make([][]any, len(g.srcs))
		for i, s := range g.srcs {
			row, ok, err := s.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return nil, false, &ShardError{Shard: s.sc.shard, Addr: s.sc.addr,
					Err: fmt.Errorf("coord: aggregate fragment returned no row")}
			}
			if _, extra, err := s.Next(); err != nil {
				return nil, false, err
			} else if extra {
				return nil, false, &ShardError{Shard: s.sc.shard, Addr: s.sc.addr,
					Err: fmt.Errorf("coord: aggregate fragment returned more than one row")}
			}
			partials[i] = row
		}
		row, err := exchange.CombineAggRows(partials, combines)
		if err != nil {
			return nil, false, err
		}
		return row, true, nil
	}
}

func (g *gatherStream) Columns() []string { return g.cols }

func (g *gatherStream) NextBatch() ([][]any, bool, error) {
	if g.err != nil {
		return nil, false, g.err
	}
	if g.done {
		return nil, false, nil
	}
	var batch [][]any
	for len(batch) < batchMaxRows {
		row, ok, err := g.next()
		if err != nil {
			return nil, false, g.fail(err)
		}
		if !ok {
			g.finish()
			return batch, len(batch) > 0, nil
		}
		g.emitted++
		if g.maxRows > 0 && g.emitted > g.maxRows {
			return nil, false, g.fail(&gapplydb.ResourceError{
				Limit: "max-output-rows", Operator: "Exchange",
				Max: g.maxRows, Used: g.emitted,
			})
		}
		batch = append(batch, row)
	}
	return batch, true, nil
}

// fail latches the error and cancels every sibling shard query: one
// worker dying must not leave the others streaming into the void.
func (g *gatherStream) fail(err error) error {
	g.err = err
	g.cancel()
	g.note()
	g.c.noteFailed()
	return err
}

// finish latches clean exhaustion: fold the shards' execution stats
// into the stream's and record the fan-out.
func (g *gatherStream) finish() {
	g.done = true
	g.elapsed = time.Since(g.start)
	for _, sc := range g.conns {
		g.stats = addStats(g.stats, sc.rows.Stats().Exec)
	}
	g.note()
}

func (g *gatherStream) note() {
	if g.noted {
		return
	}
	g.noted = true
	g.c.noteFan(g.query, g.srcs)
}

// Close cancels anything still running, drains the shard streams and
// returns the connections. Idempotent; the session defers it.
func (g *gatherStream) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	g.cancel()
	for _, sc := range g.conns {
		sc.release()
	}
	g.note()
	return nil
}

func (g *gatherStream) Stats() gapplydb.ExecStats { return g.stats }
func (g *gatherStream) Elapsed() time.Duration    { return g.elapsed }

func addStats(a, b gapplydb.ExecStats) gapplydb.ExecStats {
	a.RowsScanned += b.RowsScanned
	a.Groups += b.Groups
	a.InnerExecs += b.InnerExecs
	a.SerialGroupExecs += b.SerialGroupExecs
	a.ParallelGroupExecs += b.ParallelGroupExecs
	a.ApplyExecs += b.ApplyExecs
	a.ApplyCacheHits += b.ApplyCacheHits
	a.JoinProbes += b.JoinProbes
	a.SpoolBuilds += b.SpoolBuilds
	a.SpoolHits += b.SpoolHits
	a.PlanCacheHits += b.PlanCacheHits
	return a
}

// staticStream serves a prebuilt result (the `show shards` status).
type staticStream struct {
	cols []string
	rows [][]any
	sent bool
}

func newStaticStream(cols []string, rows [][]any) *staticStream {
	return &staticStream{cols: cols, rows: rows}
}

func (s *staticStream) Columns() []string { return s.cols }

func (s *staticStream) NextBatch() ([][]any, bool, error) {
	if s.sent {
		return nil, false, nil
	}
	s.sent = true
	return s.rows, len(s.rows) > 0, nil
}

func (s *staticStream) Close() error              { return nil }
func (s *staticStream) Stats() gapplydb.ExecStats { return gapplydb.ExecStats{} }
func (s *staticStream) Elapsed() time.Duration    { return 0 }

var _ server.RowStream = (*gatherStream)(nil)
var _ server.RowStream = (*staticStream)(nil)
