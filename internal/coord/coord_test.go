package coord_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gapplydb"
	"gapplydb/client"
	"gapplydb/experiments"
	"gapplydb/internal/coord"
	"gapplydb/internal/server"
	"gapplydb/internal/wire"
	"gapplydb/replay"
	"gapplydb/xmlpub"
)

// The differential contract under test: a 3-node cluster fronted by a
// coordinator must be byte-identical — row streams and XML documents —
// to a single-node server over the full replica, across the Figure 8
// publishing workload and the replay corpus. The corpus scale factor is
// pinned (0.001, partsupp holds 800 rows) so shard row counts and
// aggregate results are exact constants here.

const (
	clusterShards = 3
	clusterSF     = 0.001
)

var (
	dbOnce   sync.Once
	dbErr    error
	fullDB   *gapplydb.Database
	shardDBs [clusterShards]*gapplydb.Database
)

// clusterDBs loads the full replica and the three hash-partitioned
// shards once; the generators are deterministic, so every test shares
// them. Databases are safe for concurrent queries.
func clusterDBs(t *testing.T) (*gapplydb.Database, []*gapplydb.Database) {
	t.Helper()
	dbOnce.Do(func() {
		if fullDB, dbErr = gapplydb.OpenTPCH(clusterSF); dbErr != nil {
			return
		}
		for i := range shardDBs {
			if shardDBs[i], dbErr = gapplydb.OpenTPCHShard(clusterSF, i, clusterShards); dbErr != nil {
				return
			}
		}
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return fullDB, shardDBs[:]
}

func startServer(t *testing.T, db *gapplydb.Database, cfg server.Config) *server.Server {
	t.Helper()
	srv := server.New(db, cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Lenient: the failure tests kill workers mid-test, so a second
		// shutdown (or a serve error from the forced close) is expected.
		srv.Shutdown(ctx)
		<-serveErr
	})
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	return srv
}

func dialServer(t *testing.T, srv *server.Server) *client.Conn {
	t.Helper()
	conn, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// cluster is one full test deployment: three worker servers over the
// shard databases, a coordinator server over the full replica with the
// Distributor wired in, and a plain reference server over the same
// replica — the single-node baseline every result is diffed against.
type cluster struct {
	co        *coord.Coordinator
	workers   []*server.Server
	coordSrv  *server.Server
	refSrv    *server.Server
	coordConn *client.Conn
	refConn   *client.Conn
}

func startCluster(t *testing.T) *cluster {
	t.Helper()
	full, shards := clusterDBs(t)
	cl := &cluster{}
	addrs := make([]string, clusterShards)
	for i, db := range shards {
		srv := startServer(t, db, server.Config{})
		cl.workers = append(cl.workers, srv)
		addrs[i] = srv.Addr().String()
	}
	co, err := coord.New(coord.Config{DB: full, Shards: addrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := co.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	cl.co = co
	cl.coordSrv = startServer(t, full, server.Config{Distributor: co})
	cl.refSrv = startServer(t, full, server.Config{})
	cl.coordConn = dialServer(t, cl.coordSrv)
	cl.refConn = dialServer(t, cl.refSrv)
	return cl
}

func queryRows(t *testing.T, conn *client.Conn, sql string, opts ...client.QueryOption) ([]string, [][]any) {
	t.Helper()
	rows, err := conn.Query(context.Background(), sql, opts...)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	defer rows.Close()
	var out [][]any
	for {
		row, ok, err := rows.Next()
		if err != nil {
			t.Fatalf("next %q: %v", sql, err)
		}
		if !ok {
			return rows.Columns, out
		}
		out = append(out, row)
	}
}

func queryXML(t *testing.T, conn *client.Conn, sql string, plan *xmlpub.TagPlan, opts ...client.QueryOption) []byte {
	t.Helper()
	var doc bytes.Buffer
	if _, err := conn.QueryXML(context.Background(), sql, plan, &doc, opts...); err != nil {
		t.Fatalf("xml %q: %v", sql, err)
	}
	return doc.Bytes()
}

// TestClusterCorpusDifferential replays the regression corpus against
// the coordinator and the single-node reference at every matrix degree
// and requires byte-identical output (and identical error taxonomy).
// Timing-dependent corpus entries (timeouts, mid-stream cancels) are
// excluded: their outcome depends on wall-clock races, not on result
// bytes, and they have dedicated single-node coverage.
func TestClusterCorpusDifferential(t *testing.T) {
	c, err := replay.Load("../../testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	cl := startCluster(t)
	ctx := context.Background()

	for _, q := range c.Queries {
		q := q
		if q.TimeoutMS > 0 || q.CancelAfterRows > 0 {
			continue
		}
		for _, dop := range c.Workload.Dops {
			dop := dop
			if q.DOP > 0 && dop != c.Workload.Dops[0] {
				continue // degree-pinned queries run once
			}
			eff := dop
			if q.DOP > 0 {
				eff = q.DOP
			}
			t.Run(fmt.Sprintf("%s/dop%d", q.Name, eff), func(t *testing.T) {
				sharded, err := replay.RunRemote(ctx, cl.coordConn, q, dop)
				if err != nil {
					t.Fatalf("sharded: %v", err)
				}
				single, err := replay.RunRemote(ctx, cl.refConn, q, dop)
				if err != nil {
					t.Fatalf("single: %v", err)
				}
				if sharded.Code != single.Code {
					t.Fatalf("divergent outcome: sharded %q (%v) vs single %q (%v)",
						sharded.Code, sharded.Err, single.Code, single.Err)
				}
				if q.Expect.Error != "" {
					if sharded.Code != q.Expect.Error {
						t.Fatalf("code = %q, want %q", sharded.Code, q.Expect.Error)
					}
					return
				}
				if sharded.Code != "" {
					t.Fatalf("failed with %s: %v", sharded.Code, sharded.Err)
				}
				if err := replay.DiffRendered(sharded.Rendered, single.Rendered); err != nil {
					t.Fatalf("sharded vs single-node: %v", err)
				}
				if q.Expect.Golden {
					want, err := c.Golden(q)
					if err != nil {
						t.Fatal(err)
					}
					if err := replay.DiffRendered(sharded.Rendered, want); err != nil {
						t.Fatalf("sharded vs golden: %v", err)
					}
				}
			})
		}
	}
	// The suite is only meaningful if the coordinator actually claimed
	// queries rather than declining everything to the local replica.
	if st := cl.co.Stats(); st.Distributed == 0 {
		t.Fatalf("no query distributed across the corpus: %+v", st)
	}
}

// TestClusterFigure8Differential runs the paper's publishing queries —
// both translation strategies, rows and tagged XML — through the
// cluster and diffs against the single-node server. The sorted
// outer-union formulations must actually distribute (merge-gather on
// the outer key); the GApply formulations distribute only when the
// local plan chose sort partitioning, so they are diffed but their
// routing is not pinned.
func TestClusterFigure8Differential(t *testing.T) {
	cl := startCluster(t)
	dop := []client.QueryOption{client.WithDOP(8)}

	for _, tc := range []struct {
		name string
		q    *xmlpub.FLWR
	}{
		{"Q1", xmlpub.Q1()},
		{"Q2", xmlpub.Q2()},
		{"Q3", xmlpub.Q3(0.9, 1.1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sou := tc.q.SortedOuterUnionSQL()
			before := cl.co.Stats().Distributed
			cols, rows := queryRows(t, cl.coordConn, sou, dop...)
			refCols, refRows := queryRows(t, cl.refConn, sou, dop...)
			if cl.co.Stats().Distributed == before {
				t.Fatalf("sorted outer union did not distribute")
			}
			if err := replay.DiffRendered(replay.RenderRows(cols, rows), replay.RenderRows(refCols, refRows)); err != nil {
				t.Fatalf("sorted-outer-union rows: %v", err)
			}

			plan := tc.q.TagPlan()
			xml := queryXML(t, cl.coordConn, sou, plan, dop...)
			refXML := queryXML(t, cl.refConn, sou, plan, dop...)
			if !bytes.Equal(xml, refXML) {
				t.Fatalf("sorted-outer-union xml differs (%d vs %d bytes)", len(xml), len(refXML))
			}

			ga := tc.q.GApplySQL()
			gCols, gRows := queryRows(t, cl.coordConn, ga, dop...)
			gRefCols, gRefRows := queryRows(t, cl.refConn, ga, dop...)
			if err := replay.DiffRendered(replay.RenderRows(gCols, gRows), replay.RenderRows(gRefCols, gRefRows)); err != nil {
				t.Fatalf("gapply rows: %v", err)
			}
			gXML := queryXML(t, cl.coordConn, ga, plan, dop...)
			gRefXML := queryXML(t, cl.refConn, ga, plan, dop...)
			if !bytes.Equal(gXML, gRefXML) {
				t.Fatalf("gapply xml differs (%d vs %d bytes)", len(gXML), len(gRefXML))
			}
		})
	}
}

// TestClusterSuiteDifferential sweeps the entire evaluation workload —
// every Figure 8, Table 1 and spooling statement the bench harness
// measures — through the cluster at dop 8 and requires byte-identical
// rows against the single-node server. Routing is whatever the analyzer
// proves (distributed or declined); identity must hold either way.
func TestClusterSuiteDifferential(t *testing.T) {
	cl := startCluster(t)
	dop := []client.QueryOption{client.WithDOP(8)}

	for _, q := range experiments.SuiteQueries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			cols, rows := queryRows(t, cl.coordConn, q.SQL, dop...)
			refCols, refRows := queryRows(t, cl.refConn, q.SQL, dop...)
			if err := replay.DiffRendered(replay.RenderRows(cols, rows), replay.RenderRows(refCols, refRows)); err != nil {
				t.Fatalf("sharded vs single-node: %v", err)
			}
		})
	}
	st := cl.co.Stats()
	if st.Distributed == 0 {
		t.Fatalf("no statement of the evaluation workload distributed: %+v", st)
	}
	t.Logf("suite routing: %d distributed, %d declined", st.Distributed, st.Declined)
}

// TestClusterPartialAgg distributes a combinable aggregate and checks
// the combined result against both the single-node server and the
// corpus's pinned cardinality (partsupp holds exactly 800 rows at this
// scale).
func TestClusterPartialAgg(t *testing.T) {
	cl := startCluster(t)
	const q = "select count(*), min(ps_supplycost), max(ps_supplycost), sum(ps_availqty) from partsupp"

	before := cl.co.Stats().Distributed
	cols, rows := queryRows(t, cl.coordConn, q)
	if cl.co.Stats().Distributed == before {
		t.Fatal("aggregate did not distribute")
	}
	refCols, refRows := queryRows(t, cl.refConn, q)
	if err := replay.DiffRendered(replay.RenderRows(cols, rows), replay.RenderRows(refCols, refRows)); err != nil {
		t.Fatalf("sharded vs single-node: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("aggregate returned %d rows", len(rows))
	}
	if got := rows[0][0]; got != int64(800) {
		t.Fatalf("count(*) over shards = %v, want 800", got)
	}
}

// TestClusterMaxOutputRows pins the budget taxonomy through the
// fan-in: the coordinator enforces the global output-row budget itself
// (shards can't know the global count), and the client must see the
// same "resource" error a single-node server produces.
func TestClusterMaxOutputRows(t *testing.T) {
	cl := startCluster(t)
	const q = "select ps_partkey, ps_suppkey from partsupp order by ps_suppkey, ps_partkey"

	codeOf := func(conn *client.Conn) string {
		rows, err := conn.Query(context.Background(), q, client.WithMaxOutputRows(5))
		if err == nil {
			defer rows.Close()
			for {
				_, ok, nerr := rows.Next()
				if nerr != nil {
					err = nerr
					break
				}
				if !ok {
					break
				}
			}
		}
		var se *client.ServerError
		if !errors.As(err, &se) {
			t.Fatalf("error %v (%T) is not a ServerError", err, err)
		}
		return se.Code
	}

	before := cl.co.Stats().Distributed
	sharded := codeOf(cl.coordConn)
	if cl.co.Stats().Distributed == before {
		t.Fatal("budgeted query did not distribute")
	}
	single := codeOf(cl.refConn)
	if sharded != wire.CodeResource || sharded != single {
		t.Fatalf("sharded code %q, single-node code %q, want both %q", sharded, single, wire.CodeResource)
	}
}

// TestClusterDeclineRunsLocally: a query the analyzer cannot prove
// distributable (avg does not combine) must silently run on the
// coordinator's full replica and still match the single-node server.
func TestClusterDeclineRunsLocally(t *testing.T) {
	cl := startCluster(t)
	const q = "select avg(l_quantity) from lineitem"

	before := cl.co.Stats()
	cols, rows := queryRows(t, cl.coordConn, q)
	after := cl.co.Stats()
	if after.Declined == before.Declined {
		t.Fatal("avg aggregate was not declined")
	}
	if after.Distributed != before.Distributed {
		t.Fatal("avg aggregate was distributed")
	}
	refCols, refRows := queryRows(t, cl.refConn, q)
	if err := replay.DiffRendered(replay.RenderRows(cols, rows), replay.RenderRows(refCols, refRows)); err != nil {
		t.Fatalf("declined query vs single-node: %v", err)
	}
}

// TestClusterShowShards exercises the status meta-query gsql's \shards
// command sends through the ordinary query path.
func TestClusterShowShards(t *testing.T) {
	cl := startCluster(t)
	// Run one distributed query first so the fan-out columns are live.
	queryRows(t, cl.coordConn, "select ps_partkey, ps_suppkey from partsupp order by ps_suppkey, ps_partkey")

	cols, rows := queryRows(t, cl.coordConn, "show shards")
	if want := []string{"shard", "addr", "healthy", "idle", "in_use", "dials", "dial_failures", "last_rows", "last_strategy"}; len(cols) != len(want) || cols[0] != "shard" || cols[2] != "healthy" {
		t.Fatalf("columns = %v, want %v", cols, want)
	}
	if len(rows) != clusterShards {
		t.Fatalf("%d status rows, want %d", len(rows), clusterShards)
	}
	var fanned int64
	for i, row := range rows {
		if row[0] != int64(i) {
			t.Errorf("row %d shard id = %v", i, row[0])
		}
		if row[2] != true {
			t.Errorf("shard %d not healthy: %v", i, row)
		}
		if row[8] != "merge-gather" {
			t.Errorf("shard %d last_strategy = %v, want merge-gather", i, row[8])
		}
		if n, ok := row[7].(int64); ok {
			fanned += n
		}
	}
	// partsupp's 800 rows are hash-partitioned across the three shards;
	// the per-shard fan-out counts must reassemble the full table.
	if fanned != 800 {
		t.Fatalf("last-query fan-out rows = %d, want 800", fanned)
	}
}

// waitActiveDrained polls a server's admission gauge until every query
// slot is released (or the deadline passes) — the leak check for
// sibling cancellation.
func waitActiveDrained(t *testing.T, srv *server.Server, name string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		active := srv.Metrics().Counters["server_queries_active"]
		if active == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s still has %d active queries after cancel", name, active)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterWorkerFailureMidStream kills one worker while a
// distributed merge is streaming. The contract: the client gets a typed
// shard error naming the failed node, the sibling shards' in-flight
// queries are cancelled (admission slots drain to zero — no leaks), and
// the cluster degrades: the same query immediately succeeds again via
// the coordinator's local replica, byte-identical to the single-node
// answer.
func TestClusterWorkerFailureMidStream(t *testing.T) {
	cl := startCluster(t)

	// A result far larger than the wire's buffering (the client's demux
	// window plus both TCP socket buffers) so no worker can finish
	// streaming before the kill lands: 64 wide scans of lineitem merged
	// on the partition key — several MB per shard.
	const wide = "select l_orderkey, l_partkey, l_suppkey, l_linenumber, l_quantity, l_extendedprice, l_discount from lineitem"
	var b strings.Builder
	b.WriteString(wide)
	for i := 0; i < 63; i++ {
		b.WriteString(" union all " + wide)
	}
	b.WriteString(" order by l_orderkey")
	q := b.String()

	before := cl.co.Stats()
	rows, err := cl.coordConn.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cl.co.Stats().Distributed == before.Distributed {
		t.Fatal("union merge did not distribute; the kill would test nothing")
	}

	for i := 0; i < 100; i++ {
		if _, ok, err := rows.Next(); err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
	}

	// Force-kill worker 1: an expired context skips the drain and
	// cancels in-flight queries, closing their connections.
	killed, cancel := context.WithCancel(context.Background())
	cancel()
	cl.workers[1].Shutdown(killed)

	var streamErr error
	for streamErr == nil {
		_, ok, err := rows.Next()
		if err != nil {
			streamErr = err
			break
		}
		if !ok {
			t.Fatal("stream completed cleanly despite the killed worker")
		}
	}
	var se *client.ServerError
	if !errors.As(streamErr, &se) {
		t.Fatalf("stream error %v (%T) is not a ServerError", streamErr, streamErr)
	}
	if se.Code != wire.CodeShard {
		t.Fatalf("code = %q (%v), want %q", se.Code, se, wire.CodeShard)
	}
	if !strings.Contains(se.Message, "shard 1") {
		t.Fatalf("error does not name the failed node: %q", se.Message)
	}
	rows.Close()

	// Sibling cancellation must free the survivors' admission slots.
	waitActiveDrained(t, cl.workers[0], "worker 0")
	waitActiveDrained(t, cl.workers[2], "worker 2")
	waitActiveDrained(t, cl.coordSrv, "coordinator")
	if st := cl.co.Stats(); st.Failed == before.Failed {
		t.Fatalf("shard failure not counted: %+v", st)
	}

	// Degraded mode: the dead shard makes the next fan-out fail before
	// it starts, so the coordinator declines and the local replica
	// answers — still byte-identical to the single-node server.
	const small = "select ps_partkey, ps_suppkey from partsupp order by ps_suppkey, ps_partkey"
	preDecline := cl.co.Stats().Declined
	cols, got := queryRows(t, cl.coordConn, small)
	if cl.co.Stats().Declined == preDecline {
		t.Fatal("query against the degraded cluster was not declined to the local replica")
	}
	refCols, want := queryRows(t, cl.refConn, small)
	if err := replay.DiffRendered(replay.RenderRows(cols, got), replay.RenderRows(refCols, want)); err != nil {
		t.Fatalf("degraded-mode result vs single-node: %v", err)
	}
}
