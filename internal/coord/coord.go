// Package coord is the distributed-GApply coordinator: it fronts a
// cluster of worker gapplyd shards that hold hash-partitioned TPC-H
// data (tpch.LoadShard), decides per query whether the plan can run
// sharded with byte-identical output (exchange.Analyze), fans the
// original SQL out to the workers with the plan decisions pinned, and
// gathers the streams back — through an order-preserving merge, a
// single-shard pass-through, or a partial-aggregate combine.
//
// The coordinator also keeps a full local replica (its own Database),
// so any query it cannot prove distributable is simply declined back
// to the serving session, which runs it locally: correctness never
// depends on the analyzer being complete, only on it being sound.
package coord

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gapplydb"
	"gapplydb/client"
	"gapplydb/internal/exchange"
	"gapplydb/internal/server"
	"gapplydb/internal/wire"
)

// Config builds a Coordinator.
type Config struct {
	// DB is the coordinator's full local replica: it plans every query
	// (the shards reproduce its decisions via pins) and executes the
	// ones that stay local.
	DB *gapplydb.Database
	// Shards are the worker gapplyd addresses; shard i of
	// len(Shards) must have been loaded with OpenTPCHShard(sf, i, n).
	Shards []string
	// PoolSize bounds connections per shard (default 2).
	PoolSize int
	// PingInterval enables the pools' background health checks.
	PingInterval time.Duration
	// DialTimeout bounds one dial+handshake (default 5s).
	DialTimeout time.Duration
	// DialOptions apply to every shard connection.
	DialOptions []client.DialOption
}

// Stats counts the coordinator's routing decisions.
type Stats struct {
	// Distributed counts queries claimed and fanned out; Declined
	// counts queries handed back for local execution; Failed counts
	// claimed queries that ended in a shard error.
	Distributed, Declined, Failed int64
}

// fanOut snapshots the last distributed query for `show shards`.
type fanOut struct {
	query    string
	strategy exchange.Strategy
	rows     []int64 // per shard
}

// Coordinator implements server.Distributor over a shard cluster.
type Coordinator struct {
	db     *gapplydb.Database
	layout exchange.Layout
	addrs  []string
	pools  []*client.Pool

	mu    sync.Mutex
	stats Stats
	last  fanOut
}

// New builds a coordinator over an already-open local replica and the
// shard addresses. No connection is dialed until the first query (or
// WaitReady).
func New(cfg Config) (*Coordinator, error) {
	if cfg.DB == nil {
		return nil, errors.New("coord: Config.DB is required")
	}
	if len(cfg.Shards) == 0 {
		return nil, errors.New("coord: at least one shard address is required")
	}
	c := &Coordinator{
		db:     cfg.DB,
		layout: exchange.DefaultTPCH(len(cfg.Shards)),
		addrs:  cfg.Shards,
	}
	for _, addr := range cfg.Shards {
		c.pools = append(c.pools, client.NewPool(client.PoolConfig{
			Addr:         addr,
			Size:         cfg.PoolSize,
			DialTimeout:  cfg.DialTimeout,
			PingInterval: cfg.PingInterval,
			DialOptions:  cfg.DialOptions,
		}))
	}
	return c, nil
}

// Close releases every shard pool.
func (c *Coordinator) Close() error {
	for _, p := range c.pools {
		p.Close()
	}
	return nil
}

// Stats snapshots the routing counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// WaitReady blocks until every shard answers a ping (or ctx expires).
// cmd/gapplyd -shard-wait uses it so a coordinator can start before its
// workers finish loading.
func (c *Coordinator) WaitReady(ctx context.Context) error {
	for i, p := range c.pools {
		for {
			err := func() error {
				conn, err := p.Get(ctx)
				if err != nil {
					return err
				}
				defer p.Put(conn)
				return conn.Ping(ctx)
			}()
			if err == nil {
				break
			}
			if ctx.Err() != nil {
				return fmt.Errorf("coord: shard %d (%s) not ready: %w", i, c.addrs[i], err)
			}
			select {
			case <-time.After(100 * time.Millisecond):
			case <-ctx.Done():
				return fmt.Errorf("coord: shard %d (%s) not ready: %w", i, c.addrs[i], err)
			}
		}
	}
	return nil
}

// ShardError reports which worker a distributed query died on. It
// unwraps to the shard's own error, so context sentinels (cancelled,
// timeout) and budget errors keep satisfying the caller's errors.Is /
// errors.As checks through the fan-in.
type ShardError struct {
	Shard int
	Addr  string
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("coord: shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// WireCode passes the shard's original error taxonomy through when it
// has one; anything else (a dead connection, a protocol fault) is the
// cluster-level "shard" code naming the failed node in the message.
func (e *ShardError) WireCode() string {
	var se *client.ServerError
	if errors.As(e.Err, &se) && se.Code != "" {
		return se.Code
	}
	return wire.CodeShard
}

// Distribute implements server.Distributor. It claims the query when
// the plan analysis proves a sharded execution reproduces the local
// stream byte for byte, and declines otherwise (nil stream, false).
func (c *Coordinator) Distribute(ctx context.Context, query string, opts server.DistOptions) (server.RowStream, bool, error) {
	if isShowShards(query) {
		return c.statusStream(), true, nil
	}
	plan, rtrace, isExplain, err := c.db.PlanTrace(query)
	if err != nil || isExplain {
		return c.decline()
	}
	cut := exchange.Analyze(plan, c.layout)
	if !cut.Distributed() {
		return c.decline()
	}
	pins, ok := derivePins(cut, rtrace)
	if !ok {
		return c.decline()
	}
	shardOpts := append(pins, c.shardOptions(opts)...)

	var shards []int
	if cut.Strategy == exchange.StrategySingleShard {
		shards = []int{0}
	} else {
		shards = make([]int, len(c.pools))
		for i := range shards {
			shards[i] = i
		}
	}

	ictx, cancel := context.WithCancel(ctx)
	conns, err := c.start(ictx, query, shardOpts, shards)
	if err != nil {
		// Pre-start failure (dead shard, full pool, rejected query):
		// degrade to the local replica rather than failing the query.
		cancel()
		return c.decline()
	}

	g := newGatherStream(c, query, cut, conns, cancel, opts.MaxOutputRows)
	c.mu.Lock()
	c.stats.Distributed++
	c.last = fanOut{query: query, strategy: cut.Strategy, rows: make([]int64, len(c.pools))}
	c.mu.Unlock()
	return g, true, nil
}

func (c *Coordinator) decline() (server.RowStream, bool, error) {
	c.mu.Lock()
	c.stats.Declined++
	c.mu.Unlock()
	return nil, false, nil
}

// shardOptions translates the session's effective options into the
// per-shard query options: timeouts and parallelism pass through, the
// partition-memory budget is apportioned (each shard holds ~1/n of any
// partitioned operator's data), output-row budgets are enforced at the
// coordinator where the global count exists, and the trace ID fans out
// so the shards' spans join the query's one trace tree.
func (c *Coordinator) shardOptions(opts server.DistOptions) []client.QueryOption {
	var out []client.QueryOption
	if opts.Timeout > 0 {
		out = append(out, client.WithTimeout(opts.Timeout))
	}
	if opts.DOP > 0 {
		out = append(out, client.WithDOP(opts.DOP))
	}
	if opts.MaxPartitionBytes > 0 {
		n := int64(len(c.pools))
		out = append(out, client.WithMaxPartitionBytes((opts.MaxPartitionBytes+n-1)/n))
	}
	if opts.TraceID != (gapplydb.TraceID{}) {
		out = append(out, client.WithTraceID(opts.TraceID))
	}
	return out
}

// start opens one connection+query per listed shard. On any failure it
// unwinds everything already started and returns the error.
func (c *Coordinator) start(ctx context.Context, query string, opts []client.QueryOption, shards []int) ([]*shardConn, error) {
	var conns []*shardConn
	for _, i := range shards {
		conn, err := c.pools[i].Get(ctx)
		if err != nil {
			unwind(conns, c)
			return nil, &ShardError{Shard: i, Addr: c.addrs[i], Err: err}
		}
		rows, err := conn.Query(ctx, query, opts...)
		if err != nil {
			c.pools[i].Put(conn)
			unwind(conns, c)
			return nil, &ShardError{Shard: i, Addr: c.addrs[i], Err: err}
		}
		conns = append(conns, &shardConn{shard: i, addr: c.addrs[i], pool: c.pools[i], conn: conn, rows: rows})
	}
	return conns, nil
}

func unwind(conns []*shardConn, c *Coordinator) {
	for _, sc := range conns {
		sc.release()
	}
}

// derivePins turns the analysis plus the optimizer's rule trace into
// the options every shard query carries, so each worker compiles the
// congruent plan. Cost-based rule decisions are what shard-local
// statistics could flip, so each is pinned the way the coordinator
// decided it: accepted → forced, rejected → disabled. A rule both
// accepted and rejected (different match sites) cannot be pinned
// uniformly, so the query stays local; the same goes for traces that
// already carry forced rules (the session never offers pinned queries,
// so this is belt and braces). Sort partitioning is pinned whenever
// GApply survived into the plan — Analyze only distributes all-sort
// plans, and the physical hash-vs-sort choice is likewise cost-based.
func derivePins(cut exchange.Cut, rtrace []gapplydb.RuleApplication) ([]client.QueryOption, bool) {
	force := map[string]bool{}
	disable := map[string]bool{}
	for _, a := range rtrace {
		if !a.CostBased {
			continue
		}
		if a.Forced {
			return nil, false
		}
		if a.Accepted {
			force[a.Rule] = true
		} else {
			disable[a.Rule] = true
		}
	}
	for r := range force {
		if disable[r] {
			return nil, false
		}
	}
	var out []client.QueryOption
	if cut.HasGApply {
		out = append(out, client.WithPartition("sort"))
	}
	if len(force) > 0 {
		out = append(out, client.WithForceRules(sortedKeys(force)...))
	}
	if len(disable) > 0 {
		out = append(out, client.WithDisableRules(sortedKeys(disable)...))
	}
	return out, true
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// noteFan records one finished (or abandoned) fan-out's per-shard row
// counts for `show shards`.
func (c *Coordinator) noteFan(query string, srcs []*shardSource) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.last.query != query || len(c.last.rows) == 0 {
		return
	}
	for _, s := range srcs {
		if s.sc.shard < len(c.last.rows) {
			c.last.rows[s.sc.shard] = s.n
		}
	}
}

func (c *Coordinator) noteFailed() {
	c.mu.Lock()
	c.stats.Failed++
	c.mu.Unlock()
}

// isShowShards recognizes the cluster-status meta query (the gsql
// \shards command sends it through the ordinary query path).
func isShowShards(query string) bool {
	q := strings.TrimSpace(query)
	q = strings.TrimSuffix(q, ";")
	return strings.EqualFold(strings.Join(strings.Fields(q), " "), "show shards")
}

// statusStream renders one row per shard: pool health and counters,
// plus the last distributed query's strategy and per-shard row fan-out.
func (c *Coordinator) statusStream() server.RowStream {
	c.mu.Lock()
	last := c.last
	c.mu.Unlock()

	cols := []string{"shard", "addr", "healthy", "idle", "in_use", "dials", "dial_failures", "last_rows", "last_strategy"}
	rows := make([][]any, len(c.pools))
	for i, p := range c.pools {
		st := p.Stats()
		var lastRows int64
		if i < len(last.rows) {
			lastRows = last.rows[i]
		}
		strategy := ""
		if last.query != "" {
			strategy = last.strategy.String()
		}
		rows[i] = []any{
			int64(i), c.addrs[i], p.Healthy(),
			int64(st.Idle), int64(st.InUse), st.Dials, st.DialFailures,
			lastRows, strategy,
		}
	}
	return newStaticStream(cols, rows)
}
