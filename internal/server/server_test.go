package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gapplydb"
	"gapplydb/client"
	"gapplydb/experiments"
	"gapplydb/xmlpub"
)

func newHTTPRequest(t *testing.T, path string) (*http.Request, *httptest.ResponseRecorder) {
	t.Helper()
	return httptest.NewRequest(http.MethodGet, path, nil), httptest.NewRecorder()
}

// The battery shares one TPC-H instance: the engine is read-only after
// load, and a shared catalog is exactly the multi-tenant shape the
// server exists to serve.
var (
	dbOnce sync.Once
	testdb *gapplydb.Database
)

func testDB(t *testing.T) *gapplydb.Database {
	t.Helper()
	dbOnce.Do(func() {
		db, err := gapplydb.OpenTPCH(0.001)
		if err != nil {
			panic(err)
		}
		testdb = db
	})
	return testdb
}

// startServer brings a server up on a loopback ephemeral port and
// registers its teardown.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv := New(testDB(t), cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	// Serve sets the listener before accepting; wait for it.
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	return srv
}

func dial(t *testing.T, srv *Server) *client.Conn {
	t.Helper()
	conn, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// waitNoExtraGoroutines polls until the goroutine count returns to the
// baseline (work unwinding is asynchronous) and fails with a full dump
// if it never does.
func waitNoExtraGoroutines(t *testing.T, base int) {
	t.Helper()
	var n int
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if n = runtime.NumGoroutine(); n <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d at baseline, %d after\n%s", base, n, buf[:runtime.Stack(buf, true)])
}

// drainRows consumes a stream to its end, returning the error it ended
// with (nil for clean exhaustion) and always releasing the query.
func drainRows(rows *client.Rows) error {
	defer rows.Close()
	for {
		_, ok, err := rows.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

func fetchAll(t *testing.T, rows *client.Rows) [][]any {
	t.Helper()
	var out [][]any
	for {
		row, ok, err := rows.Next()
		if err != nil {
			t.Fatalf("remote stream: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, row)
	}
}

// requireSameRows compares a remote result against the in-process
// reference value by value — the wire carries the same Go
// representations Result.Rows uses, so equality must be exact.
func requireSameRows(t *testing.T, name string, local *gapplydb.Result, cols []string, remote [][]any) {
	t.Helper()
	if strings.Join(local.Columns, ",") != strings.Join(cols, ",") {
		t.Fatalf("%s: columns differ: local %v remote %v", name, local.Columns, cols)
	}
	if len(local.Rows) != len(remote) {
		t.Fatalf("%s: row counts differ: local %d remote %d", name, len(local.Rows), len(remote))
	}
	for i := range local.Rows {
		if len(local.Rows[i]) != len(remote[i]) {
			t.Fatalf("%s: row %d widths differ", name, i)
		}
		for j := range local.Rows[i] {
			if local.Rows[i][j] != remote[i][j] {
				t.Fatalf("%s: row %d col %d: local %#v remote %#v", name, i, j, local.Rows[i][j], remote[i][j])
			}
		}
	}
}

// TestRemoteDifferentialSuite is the acceptance gate: every statement
// of the evaluation workload (Figure 8, Table 1, spooling) returns
// byte-identical rows over the wire and in-process, at dop 1 and 8,
// and the five published XML documents match byte for byte.
func TestRemoteDifferentialSuite(t *testing.T) {
	db := testDB(t)
	srv := startServer(t, Config{})
	conn := dial(t, srv)
	ctx := context.Background()

	suite := experiments.SuiteQueries()
	for _, dop := range []int{1, 8} {
		for _, q := range suite {
			local, err := db.QueryContext(ctx, q.SQL, gapplydb.WithDOP(dop))
			if err != nil {
				t.Fatalf("%s (dop %d): local: %v", q.Name, dop, err)
			}
			rows, err := conn.Query(ctx, q.SQL, client.WithDOP(dop))
			if err != nil {
				t.Fatalf("%s (dop %d): remote: %v", q.Name, dop, err)
			}
			remote := fetchAll(t, rows)
			requireSameRows(t, fmt.Sprintf("%s (dop %d)", q.Name, dop), local, rows.Columns, remote)
			if st := rows.Stats(); st.Rows != int64(len(remote)) {
				t.Fatalf("%s: End reported %d rows, streamed %d", q.Name, st.Rows, len(remote))
			}
		}
	}

	for _, v := range []struct {
		name string
		q    *xmlpub.FLWR
	}{
		{"Q1", xmlpub.Q1()},
		{"Q2", xmlpub.Q2()},
		{"Q3", xmlpub.Q3(0.9, 1.1)},
		{"ExpensiveSuppliers", xmlpub.ExpensiveSuppliers(1000)},
		{"RichSuppliers", xmlpub.RichSuppliers(5000)},
	} {
		for _, dop := range []int{1, 8} {
			var localXML, remoteXML bytes.Buffer
			if _, err := xmlpub.Publish(db, v.q, xmlpub.GApply, &localXML, gapplydb.WithDOP(dop)); err != nil {
				t.Fatalf("xml %s: local: %v", v.name, err)
			}
			st, err := conn.QueryXML(ctx, v.q.GApplySQL(), v.q.TagPlan(), &remoteXML, client.WithDOP(dop))
			if err != nil {
				t.Fatalf("xml %s: remote: %v", v.name, err)
			}
			if !bytes.Equal(localXML.Bytes(), remoteXML.Bytes()) {
				t.Fatalf("xml %s (dop %d): documents differ (local %d bytes, remote %d)",
					v.name, dop, localXML.Len(), remoteXML.Len())
			}
			if st.Rows != int64(remoteXML.Len()) {
				t.Fatalf("xml %s: End reported %d bytes, received %d", v.name, st.Rows, remoteXML.Len())
			}
		}
	}
}

// TestSessionOptions: session-scoped defaults apply to subsequent
// queries, per-query options override them, and bad options are
// rejected without poisoning the session.
func TestSessionOptions(t *testing.T) {
	srv := startServer(t, Config{})
	conn := dial(t, srv)
	ctx := context.Background()

	// A session explain mode turns plain statements into reports.
	if err := conn.Set("explain", "plan"); err != nil {
		t.Fatal(err)
	}
	rows, err := conn.Query(ctx, "select count(*) from part")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 1 || rows.Columns[0] != "QUERY PLAN" {
		t.Fatalf("explain mode columns = %v", rows.Columns)
	}
	if got := fetchAll(t, rows); len(got) == 0 {
		t.Fatal("explain mode returned no plan lines")
	}
	if err := conn.Set("explain", "off"); err != nil {
		t.Fatal(err)
	}

	// A session timeout kills slow statements...
	if err := conn.Set("timeout", "1ns"); err != nil {
		t.Fatal(err)
	}
	_, err = conn.Query(ctx, "select count(*) from partsupp")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("session timeout: err = %v, want deadline", err)
	}
	// ...and the per-query option overrides it.
	rows, err = conn.Query(ctx, "select count(*) from part", client.WithTimeout(time.Minute))
	if err != nil {
		t.Fatalf("per-query override: %v", err)
	}
	fetchAll(t, rows)
	if err := conn.Set("timeout", "off"); err != nil {
		t.Fatal(err)
	}

	// A session row budget surfaces as a resource error code.
	if err := conn.Set("max_output_rows", "1"); err != nil {
		t.Fatal(err)
	}
	rows, err = conn.Query(ctx, "select p_partkey from part")
	if err == nil {
		_, _, err = rows.Next()
		for err == nil {
			_, _, err = rows.Next()
		}
		rows.Close()
	}
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != client.CodeResource {
		t.Fatalf("row budget: err = %v, want resource code", err)
	}
	if err := conn.Set("max_output_rows", "0"); err != nil {
		t.Fatal(err)
	}

	// Unknown names and bad values are rejected; the session survives.
	if err := conn.Set("no_such_option", "1"); err == nil {
		t.Fatal("unknown option accepted")
	}
	if err := conn.Set("timeout", "sideways"); err == nil {
		t.Fatal("bad timeout accepted")
	}
	if err := conn.Ping(ctx); err != nil {
		t.Fatalf("session poisoned after bad set: %v", err)
	}
}

// TestQueryErrorCodes: server-side failures arrive as typed codes, and
// a failed statement leaves the connection usable.
func TestQueryErrorCodes(t *testing.T) {
	srv := startServer(t, Config{})
	conn := dial(t, srv)
	ctx := context.Background()

	_, err := conn.Query(ctx, "select from where")
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != client.CodeInternal && se.Code != client.CodeParse {
		t.Fatalf("parse failure: %v", err)
	}

	_, err = conn.Query(ctx, "select count(*) from partsupp", client.WithTimeout(time.Nanosecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout: err = %v, want DeadlineExceeded", err)
	}

	rows, err := conn.Query(ctx, "select count(*) from part")
	if err != nil {
		t.Fatalf("connection unusable after errors: %v", err)
	}
	if got := fetchAll(t, rows); len(got) != 1 {
		t.Fatalf("rows = %v", got)
	}
}

// TestClientContextCancel: cancelling the caller's context propagates
// over the wire and unwinds the query server-side; the error satisfies
// errors.Is(err, context.Canceled) exactly like the embedded API. The
// statement streams rows (a projection, not an aggregate — aggregates do
// their work before the first frame), so the cancel lands mid-stream.
func TestClientContextCancel(t *testing.T) {
	srv := startServer(t, Config{})
	conn := dial(t, srv)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := conn.Query(ctx, "select l1.l_orderkey from lineitem l1, lineitem l2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := rows.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	cancel()
	if err := drainRows(rows); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cancel was scoped to the query: the session is fine.
	if err := conn.Ping(context.Background()); err != nil {
		t.Fatalf("ping after cancel: %v", err)
	}
}

// waitCounter polls the server's registry until the counter reaches
// want, failing the test if it never does.
func waitCounter(t *testing.T, srv *Server, name string, want int64) {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if srv.Metrics().Counters[name] >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("counter %s never reached %d", name, want)
}

// TestGracefulShutdownDrains: Shutdown lets a running query finish (here
// an aggregate bounded by its own deadline — its work happens before its
// first result frame, so the submission must run from a goroutine),
// then returns nil; the listener is gone afterwards.
func TestGracefulShutdownDrains(t *testing.T) {
	srv := New(testDB(t), Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	conn, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Hold a slot with a statement that takes real time but finishes
	// (the deadline bounds it).
	errc := make(chan error, 1)
	go func() {
		rows, err := conn.Query(context.Background(), "select count(*) from lineitem l1, lineitem l2",
			client.WithTimeout(500*time.Millisecond))
		if err == nil {
			err = drainRows(rows)
		}
		errc <- err
	}()
	waitCounter(t, srv, "server_queries_active", 1)

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// The in-flight query ran to its own conclusion (here: its timeout).
	select {
	case err := <-errc:
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			t.Fatalf("drained query ended with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drained query never settled")
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("drain took %v", elapsed)
	}
	// The listener is gone.
	if _, err := client.Dial(srv.Addr().String()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestForcedShutdown: when the drain budget expires, in-flight queries
// are cancelled through the engine's context machinery and Shutdown
// returns the context's error instead of hanging.
func TestForcedShutdown(t *testing.T) {
	srv := New(testDB(t), Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	conn, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// An effectively unbounded statement, submitted from a goroutine (no
	// frame arrives before force-cancel tears it down).
	errc := make(chan error, 1)
	go func() {
		rows, err := conn.Query(context.Background(), "select count(*) from lineitem l1, lineitem l2")
		if err == nil {
			err = drainRows(rows)
		}
		errc <- err
	}()
	waitCounter(t, srv, "server_queries_active", 1)

	sctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(sctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown: err = %v, want DeadlineExceeded", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("force-cancelled query reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("force-cancelled query never settled")
	}
}

// TestHTTPHandler: the observability endpoints serve health and the
// instance-scoped registries.
func TestHTTPHandler(t *testing.T) {
	srv := startServer(t, Config{})
	conn := dial(t, srv)
	rows, err := conn.Query(context.Background(), "select count(*) from part")
	if err != nil {
		t.Fatal(err)
	}
	fetchAll(t, rows)

	h := srv.HTTPHandler()
	get := func(path string) (int, string) {
		req, rec := newHTTPRequest(t, path)
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "server_queries") {
		t.Fatalf("metrics = %d %q", code, body)
	}
	if code, body := get("/metrics/db"); code != 200 || !strings.Contains(body, "queries") {
		t.Fatalf("metrics/db = %d %q", code, body)
	}
}
