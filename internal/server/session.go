package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"gapplydb"
	"gapplydb/internal/trace"
	"gapplydb/internal/wire"
	"gapplydb/xmlpub"
)

// sessionOptions are the session-scoped execution defaults a client
// sets with TypeSet frames; a query's own options override them field
// by field.
type sessionOptions struct {
	timeout           time.Duration
	maxOutputRows     int64
	maxPartitionBytes int64
	dop               int
	explain           string // "", "plan", "analyze"
	// traceSampling is the session's head-sampling probability for
	// queries that do not carry their own trace ID; -1 means "use the
	// server's configured default".
	traceSampling float64
}

// session is one client connection: a read loop dispatching frames,
// any number of concurrently running query goroutines streaming
// results back through a write mutex, and the per-session half of
// admission control (the in-flight cap).
type session struct {
	srv  *Server
	conn net.Conn
	br   *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	ctx    context.Context // session root; cancel tears down every query
	cancel context.CancelFunc

	// maxFrame is the session's frame limit: the server's configured
	// maximum until the handshake, the negotiated value after.
	maxFrame int

	mu       sync.Mutex
	opts     sessionOptions
	inflight map[uint64]context.CancelFunc
	wgQ      sync.WaitGroup
	draining bool
}

func newSession(s *Server, conn net.Conn) *session {
	ctx, cancel := context.WithCancel(context.Background())
	sess := &session{
		srv: s, conn: conn,
		br: bufio.NewReaderSize(conn, 64<<10),
		bw: bufio.NewWriterSize(conn, 64<<10),

		maxFrame: s.cfg.MaxFrame,

		ctx: ctx, cancel: cancel,
		inflight: make(map[uint64]context.CancelFunc),
	}
	sess.opts.traceSampling = -1 // inherit the server default
	return sess
}

// writeFrame serializes one frame to the connection. Frames from
// concurrent query goroutines interleave whole — never byte-mixed —
// because the mutex covers the write+flush pair.
func (s *session) writeFrame(t wire.Type, payload []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := wire.WriteFrame(s.bw, t, payload); err != nil {
		return err
	}
	return s.bw.Flush()
}

func (s *session) writeError(id uint64, code, msg string) error {
	return s.writeErrorTraced(id, code, msg, trace.ID{})
}

// writeErrorTraced is writeError echoing the failed query's trace ID so
// the client can still find the error's trace in the flight recorder.
func (s *session) writeErrorTraced(id uint64, code, msg string, tid trace.ID) error {
	// Per-code taxonomy counters: server_errors_cancelled, _timeout,
	// _busy, … so operators (and the replay harness) can tell shedding
	// from genuine failures without parsing logs.
	s.srv.reg.Counter("server_errors_" + code).Inc()
	m := wire.ErrorMsg{ID: id, Code: code, Message: msg, Trace: tid}
	return s.writeFrame(wire.TypeError, m.Encode())
}

// serve runs the session to completion: handshake, then the dispatch
// loop until the client hangs up, a protocol violation poisons the
// stream, or shutdown closes the connection. Teardown cancels every
// in-flight query (the mid-stream-disconnect contract: the engine
// unwinds within one row batch and the admission slots come back).
func (s *session) serve() {
	defer func() {
		s.cancel()   // cancel in-flight queries
		s.wgQ.Wait() // wait for their goroutines to release slots
		s.conn.Close()
		s.srv.removeSession(s)
	}()
	if err := s.handshake(); err != nil {
		s.srv.logf("session %s: handshake: %v", s.conn.RemoteAddr(), err)
		return
	}
	for {
		t, payload, err := wire.ReadFrame(s.br, s.maxFrame)
		if err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				// The stream position is unrecoverable past an oversized
				// header: report and hang up.
				s.writeError(0, wire.CodeProtocol, err.Error())
			}
			return
		}
		if err := s.dispatch(t, payload); err != nil {
			s.srv.logf("session %s: %v", s.conn.RemoteAddr(), err)
			return
		}
	}
}

// handshake expects the client's Hello within the configured deadline
// and answers with Welcome.
func (s *session) handshake() error {
	s.conn.SetReadDeadline(time.Now().Add(s.srv.cfg.HandshakeTimeout))
	defer s.conn.SetReadDeadline(time.Time{})
	t, payload, err := wire.ReadFrame(s.br, s.srv.cfg.MaxFrame)
	if err != nil {
		return err
	}
	if t != wire.TypeHello {
		s.writeError(0, wire.CodeProtocol, "expected hello")
		return fmt.Errorf("expected hello, got %v", t)
	}
	version, clientMax, err := wire.DecodeHello(payload)
	if err != nil {
		s.writeError(0, wire.CodeProtocol, err.Error())
		return err
	}
	if version != wire.ProtocolVersion {
		s.writeError(0, wire.CodeProtocol,
			fmt.Sprintf("protocol version %d unsupported (want %d)", version, wire.ProtocolVersion))
		return fmt.Errorf("version mismatch: %d", version)
	}
	negotiated, err := wire.NegotiateFrame(s.srv.cfg.MaxFrame, clientMax)
	if err != nil {
		s.writeError(0, wire.CodeProtocol, err.Error())
		return err
	}
	s.maxFrame = negotiated
	return s.writeFrame(wire.TypeWelcome, wire.EncodeWelcomeMax(s.srv.cfg.Banner, negotiated))
}

// dispatch routes one frame. A returned error poisons the session.
func (s *session) dispatch(t wire.Type, payload []byte) error {
	switch t {
	case wire.TypeQuery:
		m, err := wire.DecodeQuery(payload)
		if err != nil {
			return err
		}
		s.startQuery(m)
		return nil
	case wire.TypeCancel:
		id, err := wire.DecodeID(payload)
		if err != nil {
			return err
		}
		s.mu.Lock()
		cancel := s.inflight[id]
		s.mu.Unlock()
		if cancel != nil {
			s.srv.reg.Counter("server_cancels").Inc()
			cancel()
		}
		return nil
	case wire.TypePing:
		id, err := wire.DecodeID(payload)
		if err != nil {
			return err
		}
		return s.writeFrame(wire.TypePong, wire.EncodeID(id))
	case wire.TypeSet:
		m, err := wire.DecodeSet(payload)
		if err != nil {
			return err
		}
		if err := s.setOption(m.Name, m.Value); err != nil {
			return s.writeError(m.ID, wire.CodeProtocol, err.Error())
		}
		return s.writeFrame(wire.TypeOK, wire.EncodeID(m.ID))
	default:
		return fmt.Errorf("unexpected frame %v", t)
	}
}

// setOption applies one session-scoped default.
func (s *session) setOption(name, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch strings.ToLower(name) {
	case "timeout":
		if value == "off" || value == "0" {
			s.opts.timeout = 0
			return nil
		}
		d, err := time.ParseDuration(value)
		if err != nil || d < 0 {
			return fmt.Errorf("bad timeout %q", value)
		}
		s.opts.timeout = d
	case "max_output_rows":
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("bad max_output_rows %q", value)
		}
		s.opts.maxOutputRows = n
	case "max_partition_bytes":
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("bad max_partition_bytes %q", value)
		}
		s.opts.maxPartitionBytes = n
	case "dop":
		n, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("bad dop %q", value)
		}
		s.opts.dop = n
	case "explain":
		switch strings.ToLower(value) {
		case "off", "":
			s.opts.explain = ""
		case "plan":
			s.opts.explain = "plan"
		case "analyze":
			s.opts.explain = "analyze"
		default:
			return fmt.Errorf("bad explain mode %q (off|plan|analyze)", value)
		}
	case "trace_sampling":
		if strings.EqualFold(value, "default") {
			s.opts.traceSampling = -1
			return nil
		}
		p, err := strconv.ParseFloat(value, 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("bad trace_sampling %q (0..1 or \"default\")", value)
		}
		s.opts.traceSampling = p
	default:
		return fmt.Errorf("unknown session option %q", name)
	}
	return nil
}

// startQuery admits one query submission at the session level (drain
// gate, per-session in-flight cap) and spawns its goroutine.
func (s *session) startQuery(m *wire.QueryMsg) {
	s.srv.reg.Counter("server_queries").Inc()
	if s.srv.draining.Load() || s.sessionDraining() {
		s.srv.reg.Counter("server_queries_rejected").Inc()
		s.writeError(m.ID, wire.CodeShutdown, "server is shutting down")
		return
	}
	qctx, cancel := context.WithCancel(s.ctx)
	s.mu.Lock()
	if len(s.inflight) >= s.srv.cfg.SessionInFlight {
		s.mu.Unlock()
		cancel()
		s.srv.reg.Counter("server_queries_rejected").Inc()
		s.writeError(m.ID, wire.CodeSession,
			fmt.Sprintf("session in-flight limit (%d) reached", s.srv.cfg.SessionInFlight))
		return
	}
	if _, dup := s.inflight[m.ID]; dup {
		s.mu.Unlock()
		cancel()
		s.writeError(m.ID, wire.CodeProtocol, "query id already in flight")
		return
	}
	s.inflight[m.ID] = cancel
	s.wgQ.Add(1)
	s.mu.Unlock()

	go func() {
		defer func() {
			s.mu.Lock()
			delete(s.inflight, m.ID)
			s.mu.Unlock()
			cancel()
			s.wgQ.Done()
		}()
		s.runQuery(qctx, m)
	}()
}

func (s *session) sessionDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// drain flips the session to reject new queries, waits for the
// in-flight ones to finish streaming, and hangs up — the graceful half
// of Shutdown.
func (s *session) drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.wgQ.Wait()
	s.conn.Close() // unblocks the read loop; serve() finishes teardown
}

// effOpts are one query's fully resolved execution options: session
// defaults folded under the query's own.
type effOpts struct {
	timeout           time.Duration
	maxOutputRows     int64
	maxPartitionBytes int64
	dop               int
	partition         string
	forceRules        []string
	disableRules      []string
	explain           bool // statement is (or became) an EXPLAIN
}

// pinned reports whether the client pinned planner decisions —
// distribution is skipped so the pins take effect literally.
func (e *effOpts) pinned() bool {
	return e.partition != "" || len(e.forceRules) > 0 || len(e.disableRules) > 0
}

// engineOptions renders the resolved options for the embedded engine.
func (e *effOpts) engineOptions() []gapplydb.QueryOption {
	var opts []gapplydb.QueryOption
	if e.timeout > 0 || e.maxOutputRows > 0 || e.maxPartitionBytes > 0 {
		opts = append(opts, gapplydb.WithBudget(gapplydb.Budget{
			Timeout: e.timeout, MaxOutputRows: e.maxOutputRows, MaxPartitionBytes: e.maxPartitionBytes,
		}))
	}
	if e.dop != 0 {
		opts = append(opts, gapplydb.WithDOP(e.dop))
	}
	if e.partition != "" {
		opts = append(opts, gapplydb.WithPartition(e.partition))
	}
	for _, r := range e.forceRules {
		opts = append(opts, gapplydb.ForceRule(r))
	}
	for _, r := range e.disableRules {
		opts = append(opts, gapplydb.WithoutRule(r))
	}
	return opts
}

// effectiveOptions folds session defaults under the query's own
// options, returning the effective statement text (the session explain
// mode may prefix it) and the resolved options.
func (s *session) effectiveOptions(m *wire.QueryMsg) (string, effOpts) {
	s.mu.Lock()
	so := s.opts
	s.mu.Unlock()

	eff := effOpts{
		timeout:           so.timeout,
		maxOutputRows:     so.maxOutputRows,
		maxPartitionBytes: so.maxPartitionBytes,
		dop:               so.dop,
		partition:         m.Opts.Partition,
		forceRules:        m.Opts.ForceRules,
		disableRules:      m.Opts.DisableRules,
	}
	if m.Opts.Timeout > 0 {
		eff.timeout = m.Opts.Timeout
	}
	if m.Opts.MaxOutputRows > 0 {
		eff.maxOutputRows = m.Opts.MaxOutputRows
	}
	if m.Opts.MaxPartitionBytes > 0 {
		eff.maxPartitionBytes = m.Opts.MaxPartitionBytes
	}
	switch {
	case m.Opts.DOP > 0:
		eff.dop = int(m.Opts.DOP)
	case m.Opts.DOP < 0: // explicit engine default, overriding session dop
		eff.dop = 0
	}

	query := m.SQL
	if so.explain != "" && !hasExplainPrefix(query) {
		if so.explain == "analyze" {
			query = "explain analyze " + query
		} else {
			query = "explain " + query
		}
	}
	eff.explain = hasExplainPrefix(query)
	return query, eff
}

func hasExplainPrefix(q string) bool {
	return strings.HasPrefix(strings.ToLower(strings.TrimSpace(q)), "explain")
}

// Streaming shape: batches flush at either bound, so small results
// arrive in one frame and large ones never materialize server-side.
const (
	batchMaxRows  = 256
	batchMaxBytes = 128 << 10
	xmlChunkBytes = 32 << 10
)

// traceBuilder decides whether this submission is traced and, if so,
// opens the trace before admission so the queue wait is a span. A
// client-issued trace ID always traces; otherwise the session's (or
// server's) head-sampling probability draws on the server's sampler.
func (s *session) traceBuilder(m *wire.QueryMsg) *trace.Builder {
	id := m.Trace
	if id.IsZero() {
		s.mu.Lock()
		p := s.opts.traceSampling
		s.mu.Unlock()
		if p < 0 {
			p = s.srv.cfg.TraceSampling
		}
		if !s.srv.sampler.Sample(p) {
			return nil
		}
		id = trace.NewID()
	}
	return trace.NewBuilder(id, m.SQL)
}

// runQuery executes one admitted submission end to end: global
// admission, engine stream, row-batch or XML streaming, completion or
// error frame. It owns the query's admission slot.
func (s *session) runQuery(ctx context.Context, m *wire.QueryMsg) {
	tb := s.traceBuilder(m) // nil for untraced; all span calls no-op
	tid := tb.ID()
	admSpan := tb.StartSpan("admission", 0)
	if err := s.srv.adm.acquire(ctx); err != nil {
		tb.EndSpan(admSpan)
		switch {
		case errors.Is(err, errBusy):
			s.writeErrorTraced(m.ID, wire.CodeBusy, "too many concurrent queries; retry later", tid)
		case errors.Is(err, context.Canceled):
			s.writeErrorTraced(m.ID, wire.CodeCancelled, "cancelled while queued", tid)
		default:
			s.writeErrorTraced(m.ID, errorCode(err), err.Error(), tid)
		}
		// The engine never saw this query, so the server records the
		// admission-failure trace itself.
		s.srv.db.Traces().Record(tb.Finish("error", err.Error()))
		return
	}
	tb.EndSpan(admSpan)
	defer s.srv.adm.release()
	s.srv.reg.Counter("server_queries_active").Inc()
	defer s.srv.reg.Counter("server_queries_active").Add(-1)

	query, eff := s.effectiveOptions(m)

	// Distributed path: a coordinator gets first claim on every plain
	// query. EXPLAIN and client-pinned queries stay local (the local
	// database is the coordinator's full replica, so local is always
	// correct); a declined query falls through for the same reason.
	if d := s.srv.cfg.Distributor; d != nil && !eff.explain && !eff.pinned() {
		ds, handled, err := d.Distribute(ctx, query, DistOptions{
			Timeout:           eff.timeout,
			MaxOutputRows:     eff.maxOutputRows,
			MaxPartitionBytes: eff.maxPartitionBytes,
			DOP:               eff.dop,
			TraceID:           tid,
		})
		if err != nil {
			s.srv.reg.Counter("server_query_errors").Inc()
			s.writeErrorTraced(m.ID, errorCode(err), err.Error(), tid)
			if tb != nil {
				s.srv.db.Traces().Record(tb.Finish("error", err.Error()))
			}
			return
		}
		if handled {
			defer ds.Close()
			if tb != nil {
				tb.SetQuery(query)
				defer func() { s.srv.db.Traces().Record(tb.Finish("ok", "")) }()
			}
			if m.Opts.XML {
				s.streamXML(m.ID, ds, m.Opts.TagPlan, tid)
				return
			}
			s.streamRows(m.ID, ds, tid)
			return
		}
	}

	opts := eff.engineOptions()
	if tb != nil {
		tb.SetQuery(query) // session explain mode may have prefixed it
		opts = append(opts, gapplydb.WithTraceBuilder(tb))
	}
	stream, err := s.srv.db.StreamContext(ctx, query, opts...)
	if err != nil {
		s.srv.reg.Counter("server_query_errors").Inc()
		s.writeErrorTraced(m.ID, errorCode(err), err.Error(), tid)
		return
	}
	defer stream.Close()

	if m.Opts.XML {
		s.streamXML(m.ID, engineStream{stream}, m.Opts.TagPlan, tid)
		return
	}
	s.streamRows(m.ID, engineStream{stream}, tid)
}

// streamRows sends the header, then row batches, then End (or Error).
func (s *session) streamRows(id uint64, stream RowStream, tid trace.ID) {
	cols := stream.Columns()
	h := wire.RowHeaderMsg{ID: id, Columns: cols}
	if err := s.writeFrame(wire.TypeRowHeader, h.Encode()); err != nil {
		return // connection gone; teardown cancels the stream
	}
	ncols := len(cols)
	var (
		batch      [][]any
		batchBytes int
		total      int64
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		payload, err := wire.EncodeRowBatch(id, ncols, batch)
		if err != nil {
			return err
		}
		if err := s.writeFrame(wire.TypeRowBatch, payload); err != nil {
			return err
		}
		s.srv.reg.Counter("server_rows_streamed").Add(int64(len(batch)))
		s.srv.reg.Counter("server_bytes_streamed").Add(int64(len(payload)))
		batch = batch[:0]
		batchBytes = 0
		return nil
	}
	// Rows arrive in engine batches; per-row work here is only the frame
	// bookkeeping. Frame boundaries are still governed by batchMaxRows /
	// batchMaxBytes, so the wire shape is unchanged.
	for {
		rows, ok, err := stream.NextBatch()
		if err != nil {
			s.srv.reg.Counter("server_query_errors").Inc()
			s.writeErrorTraced(id, errorCode(err), err.Error(), tid)
			return
		}
		if !ok {
			break
		}
		for _, row := range rows {
			batch = append(batch, row)
			batchBytes += rowSize(row)
			total++
			if len(batch) >= batchMaxRows || batchBytes >= batchMaxBytes {
				if err := flush(); err != nil {
					return
				}
			}
		}
	}
	if err := flush(); err != nil {
		return
	}
	end := wire.EndMsg{ID: id, Rows: total, Elapsed: stream.Elapsed(), Stats: statPairs(stream.Stats()), Trace: tid}
	s.writeFrame(wire.TypeEnd, end.Encode())
}

// streamXML pipes the result through the constant-space tagger into
// XMLChunk frames — the whole document never exists server-side.
func (s *session) streamXML(id uint64, stream RowStream, planJSON []byte, tid trace.ID) {
	var plan xmlpub.TagPlan
	if err := json.Unmarshal(planJSON, &plan); err != nil {
		s.writeErrorTraced(id, wire.CodeProtocol, "bad tag plan: "+err.Error(), tid)
		return
	}
	cw := &chunkWriter{sess: s, id: id}
	tagger := xmlpub.NewTagger(&plan, cw)
	for {
		rows, ok, err := stream.NextBatch()
		if err != nil {
			s.srv.reg.Counter("server_query_errors").Inc()
			s.writeErrorTraced(id, errorCode(err), err.Error(), tid)
			return
		}
		if !ok {
			break
		}
		for _, row := range rows {
			if err := tagger.Row(row); err != nil {
				if cw.err != nil {
					return // connection gone
				}
				s.writeError(id, wire.CodeInternal, err.Error())
				return
			}
		}
	}
	if err := tagger.Close(); err != nil {
		if cw.err == nil {
			s.writeError(id, wire.CodeInternal, err.Error())
		}
		return
	}
	if err := cw.flush(); err != nil {
		return
	}
	end := wire.EndMsg{ID: id, Rows: cw.written, Elapsed: stream.Elapsed(), Stats: statPairs(stream.Stats()), Trace: tid}
	s.writeFrame(wire.TypeEnd, end.Encode())
}

// chunkWriter buffers tagger output and emits XMLChunk frames at the
// chunk threshold. written counts document bytes (not frame overhead).
type chunkWriter struct {
	sess    *session
	id      uint64
	buf     []byte
	written int64
	err     error
}

func (c *chunkWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	c.buf = append(c.buf, p...)
	if len(c.buf) >= xmlChunkBytes {
		if err := c.flush(); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

func (c *chunkWriter) flush() error {
	if c.err != nil {
		return c.err
	}
	if len(c.buf) == 0 {
		return nil
	}
	payload := wire.EncodeChunk(c.id, c.buf)
	if err := c.sess.writeFrame(wire.TypeXMLChunk, payload); err != nil {
		c.err = err
		return err
	}
	c.sess.srv.reg.Counter("server_bytes_streamed").Add(int64(len(c.buf)))
	c.written += int64(len(c.buf))
	c.buf = c.buf[:0]
	return nil
}

// rowSize approximates one row's encoded size for batch flushing.
func rowSize(row []any) int {
	n := 0
	for _, v := range row {
		switch x := v.(type) {
		case string:
			n += 5 + len(x)
		default:
			n += 9
		}
	}
	return n
}
