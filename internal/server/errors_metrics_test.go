package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"gapplydb/client"
)

// Every error frame the server writes must also land in a per-code
// counter, so the taxonomy is observable from /metrics without log
// parsing.
func TestPerCodeErrorCounters(t *testing.T) {
	srv := startServer(t, Config{})
	conn := dial(t, srv)
	ctx := context.Background()

	if _, err := conn.Query(ctx, "definitely not sql"); err == nil {
		t.Fatal("parse error expected")
	}
	if got := srv.reg.Counter("server_errors_" + client.CodeParse).Value(); got != 1 {
		t.Fatalf("server_errors_parse = %d, want 1", got)
	}

	_, err := conn.Query(ctx, "select count(*) from partsupp, part, supplier",
		client.WithTimeout(time.Millisecond))
	if err == nil {
		t.Fatal("timeout expected")
	}
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != client.CodeTimeout {
		t.Fatalf("err = %v, want timeout", err)
	}
	if got := srv.reg.Counter("server_errors_" + client.CodeTimeout).Value(); got != 1 {
		t.Fatalf("server_errors_timeout = %d, want 1", got)
	}
}
