package server

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"gapplydb/client"
	"gapplydb/internal/trace"
)

// TestClientIssuedTraceRoundTrip pins the acceptance criterion: a
// client-issued trace ID comes back in the End frame, and the full
// trace — admission wait through operator spans — is retrievable from
// the server's flight recorder and /debug/traces.
func TestClientIssuedTraceRoundTrip(t *testing.T) {
	srv := startServer(t, Config{})
	conn := dial(t, srv)

	id := client.NewTraceID()
	rows, err := conn.Query(context.Background(),
		"select gapply(select count(*) from g) as (cnt) from partsupp group by ps_suppkey : g",
		client.WithTraceID(id))
	if err != nil {
		t.Fatal(err)
	}
	fetchAll(t, rows)
	if rows.Stats().TraceID != id {
		t.Fatalf("End frame echoed %s, want %s", rows.Stats().TraceID, id)
	}

	tr := srv.db.Traces().Get(id)
	if tr == nil {
		t.Fatal("trace not in the server's flight recorder")
	}
	if tr.Status != "ok" {
		t.Fatalf("status %q, want ok", tr.Status)
	}
	// The server side of the span tree: admission before the engine
	// phases, all hanging off the root.
	for _, name := range []string{"admission", "execute"} {
		idx := tr.Find(name)
		if len(idx) != 1 || tr.Spans[idx[0]].Parent != 0 {
			t.Fatalf("span %q missing or misparented\n%s", name, tr)
		}
	}
	if tr.PlanHash == "" {
		t.Fatalf("trace lost the plan hash\n%s", tr)
	}

	// The same trace over HTTP, by ID and in the listing.
	h := srv.HTTPHandler()
	get := func(path string) (int, string) {
		req, rec := newHTTPRequest(t, path)
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	code, body := get("/debug/traces/" + id.String())
	if code != 200 || !strings.Contains(body, id.String()) {
		t.Fatalf("/debug/traces/<id> = %d %q", code, body)
	}
	var doc trace.Trace
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if doc.ID != id || len(doc.Spans) != len(tr.Spans) {
		t.Fatalf("HTTP trace diverges from recorder: %d vs %d spans", len(doc.Spans), len(tr.Spans))
	}
	if code, body := get("/debug/traces"); code != 200 || !strings.Contains(body, id.String()) {
		t.Fatalf("/debug/traces listing = %d, contains id = %v", code, strings.Contains(body, id.String()))
	}
	// Chrome export is valid JSON with the standard top-level key.
	code, body = get("/debug/traces/" + id.String() + "?format=chrome")
	if code != 200 {
		t.Fatalf("chrome export = %d %q", code, body)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &chrome); err != nil {
		t.Fatalf("chrome JSON: %v", err)
	}
	if len(chrome.TraceEvents) < len(tr.Spans) {
		t.Fatalf("chrome export has %d events for %d spans", len(chrome.TraceEvents), len(tr.Spans))
	}
	if code, _ := get("/debug/traces/" + trace.NewID().String()); code != 404 {
		t.Fatalf("unknown trace id = %d, want 404", code)
	}
	if code, _ := get("/debug/traces/not-hex"); code != 400 {
		t.Fatalf("malformed trace id = %d, want 400", code)
	}
}

// TestTraceIDOnServerError: a traced query that fails still echoes its
// ID on the Error frame and leaves an error-status trace behind.
func TestTraceIDOnServerError(t *testing.T) {
	srv := startServer(t, Config{})
	conn := dial(t, srv)

	id := client.NewTraceID()
	_, err := conn.Query(context.Background(), "select utter nonsense", client.WithTraceID(id))
	if err == nil {
		t.Fatal("bad statement succeeded")
	}
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("error %T, want *client.ServerError", err)
	}
	if se.TraceID != id {
		t.Fatalf("Error frame echoed %s, want %s", se.TraceID, id)
	}
	tr := srv.db.Traces().Get(id)
	if tr == nil || tr.Status != "error" {
		t.Fatalf("failed query's trace: %+v", tr)
	}
}

// TestSessionTraceSampling: `Set trace_sampling` turns head sampling on
// for untagged queries, deterministically under a seeded sampler.
func TestSessionTraceSampling(t *testing.T) {
	srv := startServer(t, Config{})
	srv.SeedTraceSampler(42)
	conn := dial(t, srv)

	if err := conn.Set("trace_sampling", "1"); err != nil {
		t.Fatal(err)
	}
	rows, err := conn.Query(context.Background(), "select count(*) from part")
	if err != nil {
		t.Fatal(err)
	}
	fetchAll(t, rows)
	sampled := rows.Stats().TraceID
	if sampled.IsZero() {
		t.Fatal("p=1 session produced no trace ID")
	}
	if srv.db.Traces().Get(sampled) == nil {
		t.Fatal("sampled trace not retained")
	}

	if err := conn.Set("trace_sampling", "0"); err != nil {
		t.Fatal(err)
	}
	rows, err = conn.Query(context.Background(), "select count(*) from part")
	if err != nil {
		t.Fatal(err)
	}
	fetchAll(t, rows)
	if !rows.Stats().TraceID.IsZero() {
		t.Fatal("p=0 session traced a query")
	}

	// Back to the server default (0 here), and validation rejects junk.
	if err := conn.Set("trace_sampling", "default"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"-0.5", "1.5", "lots"} {
		if err := conn.Set("trace_sampling", bad); err == nil {
			t.Fatalf("trace_sampling=%q accepted", bad)
		}
	}
}

// TestTraceSessionExplainPrefix: a session in explain mode rewrites the
// statement before the engine sees it; the trace's recorded query must
// be the effective (prefixed) text, not the submitted one.
func TestTraceSessionExplainPrefix(t *testing.T) {
	srv := startServer(t, Config{})
	conn := dial(t, srv)
	if err := conn.Set("explain", "plan"); err != nil {
		t.Fatal(err)
	}
	id := client.NewTraceID()
	rows, err := conn.Query(context.Background(), "select count(*) from part", client.WithTraceID(id))
	if err != nil {
		t.Fatal(err)
	}
	fetchAll(t, rows)
	tr := srv.db.Traces().Get(id)
	if tr == nil {
		t.Fatal("explain-mode trace not recorded")
	}
	if !strings.HasPrefix(strings.ToLower(tr.Query), "explain") {
		t.Fatalf("trace query %q lost the session explain prefix", tr.Query)
	}
}
