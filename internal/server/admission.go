// Package server is gapplyd's network front end: a TCP server speaking
// the internal/wire protocol, with per-connection sessions, bounded
// admission of concurrent queries, incremental result streaming through
// the engine's Stream API, and graceful drain-then-close shutdown built
// on the context machinery the resource-governance layer added.
package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"gapplydb/internal/metrics"
)

// errBusy is the admission layer's fast rejection: the wait queue is at
// capacity, so the query is refused immediately instead of piling more
// latency onto an already saturated server.
var errBusy = errors.New("server: admission queue full")

// admission bounds concurrent query execution. It is a semaphore of
// MaxConcurrent slots fronted by a counted wait queue of MaxQueued
// entries: a query takes a free slot immediately if one exists, waits
// in the queue otherwise, and is fast-rejected with errBusy when the
// queue itself is full — the three states (running, queued, rejected)
// the server_* metrics expose.
type admission struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
	reg      *metrics.Registry
}

func newAdmission(maxConcurrent, maxQueued int, reg *metrics.Registry) *admission {
	return &admission{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueued),
		reg:      reg,
	}
}

// acquire claims an execution slot, waiting in the bounded queue if
// none is free. It fails with errBusy when the queue is full and with
// the context's cause when the caller's query is cancelled while
// queued. Every successful acquire must be paired with release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	// No free slot: join the wait queue if it has room.
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.reg.Counter("server_queries_rejected").Inc()
		return errBusy
	}
	a.reg.Counter("server_queries_queued").Inc()
	start := time.Now()
	defer func() {
		a.queued.Add(-1)
		a.reg.Histogram("server_admission_wait").Observe(time.Since(start))
	}()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// release frees a slot claimed by acquire.
func (a *admission) release() { <-a.slots }
