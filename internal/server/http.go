package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"gapplydb/internal/metrics"
	"gapplydb/internal/trace"
)

// HTTPHandler returns the server's observability surface, mounted on
// whatever mux/listener the caller owns (gapplyd's -http flag starts a
// plain http.Server with it):
//
//	/healthz           200 JSON {"status":"ok", go/vcs build info,
//	                   uptime} while serving; 503 {"status":"draining"}
//	                   during shutdown
//	/metrics           the server_* registry as JSON (?format=text for
//	                   the \metrics text rendering) — instance-scoped,
//	                   no expvar; keys sort deterministically
//	/metrics/db        the underlying database's lifetime metrics
//	/debug/traces      the flight recorder: most-recent and slowest
//	                   trace summaries as JSON
//	/debug/traces/<id> one full trace by ID (?format=chrome for Chrome
//	                   trace_event JSON loadable in chrome://tracing or
//	                   Perfetto, ?format=text for the span-tree text)
//
// Nothing here touches process-global state, so any number of servers
// (or parallel tests) can each expose their own handler.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.Handle("/metrics", metrics.Handler(s.reg))
	mux.HandleFunc("/metrics/db", func(w http.ResponseWriter, r *http.Request) {
		snap := s.db.Metrics()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, snap.String())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	mux.HandleFunc("/debug/traces", s.serveTraceList)
	mux.HandleFunc("/debug/traces/", s.serveTrace)
	return mux
}

// buildInfo resolves the binary's go version and VCS revision once; the
// revision is empty outside a VCS-stamped build (go test binaries).
func buildInfo() (goVersion, revision string, modified bool) {
	goVersion = runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				revision = kv.Value
			case "vcs.modified":
				modified = kv.Value == "true"
			}
		}
	}
	return goVersion, revision, modified
}

// healthz is the /healthz document. Status stays a plain "ok"/
// "draining" substring so trivial probes (grep, load balancers) keep
// working; the rest identifies the build and its age for operators.
type healthz struct {
	Status      string  `json:"status"`
	GoVersion   string  `json:"go_version"`
	VCSRevision string  `json:"vcs_revision,omitempty"`
	VCSModified bool    `json:"vcs_modified,omitempty"`
	UptimeS     float64 `json:"uptime_s"`
}

func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	goVersion, revision, modified := buildInfo()
	doc := healthz{
		Status:      "ok",
		GoVersion:   goVersion,
		VCSRevision: revision,
		VCSModified: modified,
		UptimeS:     time.Since(s.started).Seconds(),
	}
	code := http.StatusOK
	if s.draining.Load() {
		doc.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// serveTraceList renders the flight recorder's two retention sets.
func (s *Server) serveTraceList(w http.ResponseWriter, r *http.Request) {
	rec := s.db.Traces()
	doc := struct {
		Recent  []trace.Summary `json:"recent"`
		Slowest []trace.Summary `json:"slowest"`
	}{Recent: rec.Recent(), Slowest: rec.Slowest()}
	if doc.Recent == nil {
		doc.Recent = []trace.Summary{}
	}
	if doc.Slowest == nil {
		doc.Slowest = []trace.Summary{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// serveTrace renders one retained trace by ID.
func (s *Server) serveTrace(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	id, err := trace.ParseID(idStr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t := s.db.Traces().Get(id)
	if t == nil {
		http.Error(w, "trace not retained (evicted or never recorded)", http.StatusNotFound)
		return
	}
	switch r.URL.Query().Get("format") {
	case "chrome":
		b, err := t.ChromeJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, t.String())
	default:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(t)
	}
}
