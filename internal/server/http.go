package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"gapplydb/internal/metrics"
)

// HTTPHandler returns the server's observability surface, mounted on
// whatever mux/listener the caller owns (gapplyd's -http flag starts a
// plain http.Server with it):
//
//	/healthz     200 "ok" while serving, 503 "draining" during shutdown
//	/metrics     the server_* registry as JSON (?format=text for the
//	             \metrics text rendering) — instance-scoped, no expvar
//	/metrics/db  the underlying database's lifetime metrics snapshot
//
// Nothing here touches process-global state, so any number of servers
// (or parallel tests) can each expose their own handler.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", metrics.Handler(s.reg))
	mux.HandleFunc("/metrics/db", func(w http.ResponseWriter, r *http.Request) {
		snap := s.db.Metrics()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, snap.String())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	return mux
}
