package server

import (
	"context"
	"time"

	"gapplydb"
	"gapplydb/internal/trace"
)

// RowStream is the result stream a session can frame to its client:
// either the engine's own *gapplydb.Stream (wrapped by engineStream)
// or a distributed coordinator's gathered stream. The contract mirrors
// gapplydb.Stream: single consumer, NextBatch until ok=false or error,
// Close always (idempotent), Stats/Elapsed valid after exhaustion.
type RowStream interface {
	Columns() []string
	NextBatch() ([][]any, bool, error)
	Close() error
	Stats() gapplydb.ExecStats
	Elapsed() time.Duration
}

// DistOptions carries one query's effective execution options (session
// defaults already folded in) to a Distributor.
type DistOptions struct {
	Timeout           time.Duration
	MaxOutputRows     int64
	MaxPartitionBytes int64
	DOP               int
	// TraceID is the query's trace identity (zero = untraced); a
	// distributor fans it out so the shards' traces join one tree.
	TraceID trace.ID
}

// Distributor intercepts queries for distributed execution. Distribute
// either claims the query (handled=true, streaming its gathered result)
// or declines (handled=false, nil error) to let the session run it on
// the local database — the coordinator's full local replica, so
// declining is always correct, just not scaled out. A non-nil error is
// only returned for failures of a claimed query's setup.
type Distributor interface {
	Distribute(ctx context.Context, query string, opts DistOptions) (RowStream, bool, error)
}

// engineStream adapts *gapplydb.Stream (Columns is a field) to RowStream.
type engineStream struct{ *gapplydb.Stream }

func (s engineStream) Columns() []string { return s.Stream.Columns }
