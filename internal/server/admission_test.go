package server

import (
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"gapplydb/client"
	"gapplydb/internal/wire"
)

// heavyQ takes far longer than frame submission at the test scale
// factor, so a burst of them is fully submitted before the first one
// finishes — the shape admission control exists for.
const heavyQ = "select count(*) from lineitem l1, lineitem l2"

// TestAdmissionBurstMetrics is the admission-control acceptance gate:
// with max-concurrency N, a burst of 4N queries must surface queued and
// rejected counts in the server_* metrics, every submission must get a
// terminal answer, and nothing may leak a goroutine.
func TestAdmissionBurstMetrics(t *testing.T) {
	testDB(t) // materialize the shared database before the baseline
	base := runtime.NumGoroutine()
	t.Cleanup(func() { waitNoExtraGoroutines(t, base) })

	const n = 2 // MaxConcurrent
	srv := startServer(t, Config{MaxConcurrent: n, MaxQueued: n, SessionInFlight: 8 * n})
	conn := dial(t, srv)

	const burst = 4 * n
	var (
		wg                        sync.WaitGroup
		mu                        sync.Mutex
		busy, finished, cancelled int
	)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The timeout bounds the slot holders; the queue and the
			// rejections are decided long before it fires.
			rows, err := conn.Query(context.Background(), heavyQ, client.WithTimeout(500*time.Millisecond))
			if err == nil {
				err = drainRows(rows)
			}
			var se *client.ServerError
			mu.Lock()
			defer mu.Unlock()
			switch {
			case errors.As(err, &se) && se.Code == client.CodeBusy:
				busy++
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				cancelled++ // ran (or queued) until the deadline killed it
			case err == nil:
				finished++
			default:
				t.Errorf("burst query: unexpected outcome %v", err)
			}
		}()
	}
	wg.Wait()

	if busy+finished+cancelled != burst {
		t.Fatalf("accounting: busy=%d finished=%d cancelled=%d, want %d total", busy, finished, cancelled, burst)
	}
	if busy == 0 {
		t.Fatal("burst of 4N queries saw no fast-rejections")
	}
	snap := srv.Metrics()
	if got := snap.Counters["server_queries"]; got != burst {
		t.Fatalf("server_queries = %d, want %d", got, burst)
	}
	if got := snap.Counters["server_queries_rejected"]; got != int64(busy) {
		t.Fatalf("server_queries_rejected = %d, client saw %d busy errors", got, busy)
	}
	if got := snap.Counters["server_queries_queued"]; got == 0 {
		t.Fatal("server_queries_queued = 0, want > 0 (burst exceeded the slot count)")
	}
	if got := snap.Counters["server_queries_active"]; got != 0 {
		t.Fatalf("server_queries_active = %d after the burst settled, want 0", got)
	}
}

// TestSessionInFlightCap: one session may only have SessionInFlight
// queries submitted at once; excess submissions fail with the session
// code while other sessions are unaffected.
func TestSessionInFlightCap(t *testing.T) {
	srv := startServer(t, Config{MaxConcurrent: 1, MaxQueued: 16, SessionInFlight: 2})
	conn := dial(t, srv)

	var (
		wg             sync.WaitGroup
		mu             sync.Mutex
		sessionLimited int
	)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, err := conn.Query(context.Background(), heavyQ, client.WithTimeout(300*time.Millisecond))
			if err == nil {
				err = drainRows(rows)
			}
			var se *client.ServerError
			if errors.As(err, &se) && se.Code == client.CodeSession {
				mu.Lock()
				sessionLimited++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if sessionLimited == 0 {
		t.Fatal("6 concurrent submissions against an in-flight cap of 2 saw no session-limit rejections")
	}
	// A second session is not affected by the first one's cap history.
	conn2 := dial(t, srv)
	rows, err := conn2.Query(context.Background(), "select count(*) from part")
	if err != nil {
		t.Fatalf("second session: %v", err)
	}
	fetchAll(t, rows)
}

// TestMidStreamDisconnect: a client that vanishes mid-stream must not
// wedge the server — the query is cancelled through its context, the
// admission slot comes back, and no goroutine survives the session.
func TestMidStreamDisconnect(t *testing.T) {
	testDB(t)
	base := runtime.NumGoroutine()
	t.Cleanup(func() { waitNoExtraGoroutines(t, base) })

	// One slot total, so the follow-up query below only runs if the
	// disconnected query's slot was actually released.
	srv := startServer(t, Config{MaxConcurrent: 1})

	conn, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// A result far larger than the kernel socket buffers: the server is
	// still streaming (or blocked writing) when the client hangs up.
	rows, err := conn.Query(context.Background(), "select l1.l_orderkey, l2.l_orderkey from lineitem l1, lineitem l2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := rows.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	conn.Close() // abrupt: no cancel frame, no drain

	// The freed slot is the proof of cleanup: this blocks until the
	// server tears the dead session's query down.
	conn2 := dial(t, srv)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rows2, err := conn2.Query(ctx, "select count(*) from part")
	if err != nil {
		t.Fatalf("query after disconnect: %v", err)
	}
	if got := fetchAll(t, rows2); len(got) != 1 {
		t.Fatalf("rows = %v", got)
	}
}

// TestCancelCompleteRace races client-side cancellation against natural
// completion over one session, under -race: whichever side wins, every
// query settles with a defined outcome and the session stays usable.
func TestCancelCompleteRace(t *testing.T) {
	srv := startServer(t, Config{})
	conn := dial(t, srv)

	for i := 0; i < 40; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			// Stagger the cancel across the query's whole lifetime so some
			// land before admission, some mid-stream, some after End.
			time.Sleep(time.Duration(i%8) * 100 * time.Microsecond)
			cancel()
			close(done)
		}()
		rows, err := conn.Query(ctx, "select count(*) from part")
		if err == nil {
			err = drainRows(rows)
		}
		<-done
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want nil or context.Canceled", i, err)
		}
		if err := conn.Ping(context.Background()); err != nil {
			t.Fatalf("iteration %d: session dead after race: %v", i, err)
		}
	}
}

// TestServerOversizedFrame: a frame header declaring a payload past the
// server's limit draws a protocol error and a hangup, before any
// allocation for the payload.
func TestServerOversizedFrame(t *testing.T) {
	srv := startServer(t, Config{MaxFrame: 1 << 16})
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteFrame(nc, wire.TypeHello, wire.EncodeHello()); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wire.ReadFrame(nc, 0)
	if err != nil || typ != wire.TypeWelcome {
		t.Fatalf("handshake: type=%v err=%v", typ, err)
	}
	// Header only: type Query, 4 GiB declared payload.
	if _, err := nc.Write([]byte{3, 0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(nc, 0)
	if err != nil {
		t.Fatalf("expected an error frame, got %v", err)
	}
	if typ != wire.TypeError {
		t.Fatalf("frame type = %v, want error", typ)
	}
	m, err := wire.DecodeError(payload)
	if err != nil || m.Code != wire.CodeProtocol {
		t.Fatalf("error = %+v (%v), want protocol code", m, err)
	}
	// The connection is poisoned: the server hangs up.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := wire.ReadFrame(nc, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("after oversized frame: err = %v, want EOF", err)
	}
}
