package server

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gapplydb"
	"gapplydb/internal/metrics"
	"gapplydb/internal/sql"
	"gapplydb/internal/trace"
	"gapplydb/internal/wire"
)

// Config tunes one server instance. The zero value is usable: every
// field has a production-shaped default.
type Config struct {
	// MaxConcurrent caps queries executing at once across all sessions
	// (the admission semaphore's width). Default: GOMAXPROCS.
	MaxConcurrent int
	// MaxQueued bounds the admission wait queue; a query arriving with
	// the queue full is fast-rejected with wire.CodeBusy instead of
	// adding latency to a saturated server. Default: 2×MaxConcurrent.
	MaxQueued int
	// SessionInFlight caps one session's concurrently submitted queries
	// (admitted or queued); excess submissions are rejected with
	// wire.CodeSession. Default: 8.
	SessionInFlight int
	// MaxFrame bounds one received frame's payload; oversized frames
	// poison the connection (the session replies with wire.CodeProtocol
	// and hangs up). Default: wire.DefaultMaxFrame.
	MaxFrame int
	// HandshakeTimeout bounds how long a fresh connection may take to
	// send its Hello. Default: 10s.
	HandshakeTimeout time.Duration
	// Banner is the server identification sent in the Welcome frame.
	Banner string
	// TraceSampling head-samples this fraction of queries that arrive
	// without their own trace ID into the flight recorder (0 = only
	// client-issued trace IDs are traced). Sessions override it with
	// `Set trace_sampling`.
	TraceSampling float64
	// Distributor, when set, is offered every plain (non-EXPLAIN,
	// unpinned) query before local execution; a coordinator uses this
	// hook to fan queries out across shards. Nil = always local.
	Distributor Distributor
	// Registry receives the server_* metrics. Default: a fresh registry
	// per server, so parallel servers (and parallel tests) never share
	// counters.
	Registry *metrics.Registry
	// Logf, when set, receives one line per connection-level event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 2 * c.MaxConcurrent
	}
	if c.SessionInFlight <= 0 {
		c.SessionInFlight = 8
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	if c.Banner == "" {
		c.Banner = "gapplyd"
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server serves gapplydb queries over the wire protocol. Create with
// New, start with Serve or ListenAndServe, stop with Shutdown.
type Server struct {
	db      *gapplydb.Database
	cfg     Config
	reg     *metrics.Registry
	adm     *admission
	sampler *trace.Sampler // head-sampling decisions for untagged queries
	started time.Time      // process-visible uptime base for /healthz

	mu       sync.Mutex
	lis      net.Listener
	sessions map[*session]struct{}
	draining atomic.Bool
	wgConns  sync.WaitGroup
}

// New builds a server over an already-loaded database. The server does
// not own the database: Shutdown drains the server's own work but
// leaves the database open (callers that want full teardown follow with
// db.Close()).
func New(db *gapplydb.Database, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		db:      db,
		cfg:     cfg,
		reg:     cfg.Registry,
		adm:     newAdmission(cfg.MaxConcurrent, cfg.MaxQueued, cfg.Registry),
		sampler: trace.NewSampler(time.Now().UnixNano()),
		started: time.Now(),

		sessions: make(map[*session]struct{}),
	}
}

// SeedTraceSampler reseeds the server's head-sampling decision stream —
// deterministic sampling for tests and reproducible load runs.
func (s *Server) SeedTraceSampler(seed int64) { s.sampler.Reseed(seed) }

// Metrics snapshots the server's registry (the server_* counters plus
// the admission-wait histogram).
func (s *Server) Metrics() metrics.Snapshot { return s.reg.Snapshot() }

// Addr returns the listening address once Serve has been called.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// ListenAndServe listens on the TCP address and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until Shutdown closes it. It
// returns nil after a Shutdown-initiated stop and the accept error
// otherwise.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.lis != nil {
		s.mu.Unlock()
		return errors.New("server: Serve called twice")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		if s.draining.Load() {
			conn.Close()
			continue
		}
		s.reg.Counter("server_connections").Inc()
		s.reg.Counter("server_connections_active").Inc()
		sess := newSession(s, conn)
		s.mu.Lock()
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.wgConns.Add(1)
		go sess.serve()
	}
}

// removeSession unregisters a finished session.
func (s *Server) removeSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	s.reg.Counter("server_connections_active").Add(-1)
	s.wgConns.Done()
}

// snapshotSessions copies the live session set.
func (s *Server) snapshotSessions() []*session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		out = append(out, sess)
	}
	return out
}

// Shutdown stops the server gracefully:
//
//  1. Drain gate — the listener closes and every session starts
//     rejecting new queries with wire.CodeShutdown; in-flight queries
//     keep streaming.
//  2. Drain — each session waits for its in-flight queries to finish,
//     then hangs up; Shutdown returns nil once every connection is gone.
//  3. Force — if ctx expires first, remaining queries are cancelled
//     through the engine's context machinery (they unwind within one
//     row batch) and connections are closed; Shutdown returns ctx's
//     error.
//
// Shutdown is idempotent; concurrent calls race harmlessly (all of them
// wait for the connections to unwind).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.lis != nil {
		s.lis.Close()
	}
	s.mu.Unlock()

	// Ask every session to hang up once its in-flight work completes.
	for _, sess := range s.snapshotSessions() {
		go sess.drain()
	}
	done := make(chan struct{})
	go func() {
		s.wgConns.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force: cancel whatever is still running and close the pipes.
		for _, sess := range s.snapshotSessions() {
			sess.cancel()
			sess.conn.Close()
		}
		<-done
		return context.Cause(ctx)
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) logf(format string, args ...any) { s.cfg.Logf(format, args...) }

// statPairs flattens the public ExecStats into wire (name, value)
// pairs for the End frame.
func statPairs(st gapplydb.ExecStats) []wire.StatPair {
	return []wire.StatPair{
		{Name: "rows_scanned", Value: st.RowsScanned},
		{Name: "groups", Value: st.Groups},
		{Name: "inner_execs", Value: st.InnerExecs},
		{Name: "serial_group_execs", Value: st.SerialGroupExecs},
		{Name: "parallel_group_execs", Value: st.ParallelGroupExecs},
		{Name: "apply_execs", Value: st.ApplyExecs},
		{Name: "apply_cache_hits", Value: st.ApplyCacheHits},
		{Name: "join_probes", Value: st.JoinProbes},
		{Name: "spool_builds", Value: st.SpoolBuilds},
		{Name: "spool_hits", Value: st.SpoolHits},
		{Name: "plan_cache_hits", Value: st.PlanCacheHits},
	}
}

// errorCode maps an engine error onto the wire taxonomy.
func errorCode(err error) string {
	var re *gapplydb.ResourceError
	var pe *sql.ParseError
	var wc interface{ WireCode() string }
	switch {
	case errors.Is(err, context.Canceled):
		return wire.CodeCancelled
	case errors.Is(err, context.DeadlineExceeded):
		return wire.CodeTimeout
	case errors.As(err, &re):
		return wire.CodeResource
	case errors.Is(err, gapplydb.ErrDatabaseClosed):
		return wire.CodeShutdown
	case errors.As(err, &pe):
		return wire.CodeParse
	case errors.As(err, &wc):
		// Errors that know their own code — a coordinator's ShardError
		// passes its shard's original taxonomy through the fan-in.
		return wc.WireCode()
	default:
		return wire.CodeInternal
	}
}
