// Package metrics is a small, dependency-free metrics layer for the
// engine: atomic counters and fixed-bucket latency histograms collected
// into a registry, with a text renderer for the shell's \metrics command
// and an optional expvar publisher for scraping.
//
// Everything is safe for concurrent use: recording is lock-free
// (sync/atomic), and Snapshot takes a consistent-enough point-in-time
// copy for reporting (individual values are atomically read; the set of
// instruments is guarded by a mutex).
package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic tally.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any delta; the engine only adds non-negatives).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current tally.
func (c *Counter) Value() int64 { return c.v.Load() }

// DefaultLatencyBuckets are the upper bounds the engine's latency
// histograms use: decades from 100µs to 10s, plus the implicit +Inf.
var DefaultLatencyBuckets = []time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// FineLatencyBuckets is a 1-2-5 grid from 50µs to 10s — the resolution
// latency percentiles need. The workload-replay driver records against
// these; the engine's always-on histograms keep the cheaper decades.
var FineLatencyBuckets = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	200 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2 * time.Second,
	5 * time.Second,
	10 * time.Second,
}

// Histogram tallies durations into fixed buckets. Buckets are
// cumulative-free (each observation lands in exactly one bucket, the
// first whose upper bound contains it; observations beyond the last
// bound land in the overflow bucket).
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; last is overflow (+Inf)
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	min    atomic.Int64 // nanoseconds; MaxInt64 until the first observation
	max    atomic.Int64 // nanoseconds
}

// NewHistogram builds a histogram over ascending upper bounds; nil
// bounds means DefaultLatencyBuckets.
func NewHistogram(bounds []time.Duration) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	if bounds == nil {
		h.bounds = DefaultLatencyBuckets
		h.counts = make([]atomic.Int64, len(DefaultLatencyBuckets)+1)
	}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.min.Load()
		if int64(d) >= cur || h.min.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of everything observed
// so far; see HistogramSnapshot.Quantile for the estimator.
func (h *Histogram) Quantile(q float64) time.Duration { return h.snapshot().Quantile(q) }

// Snapshot returns a point-in-time copy of the histogram, for callers
// that need several derived statistics from one consistent view.
func (h *Histogram) Snapshot() HistogramSnapshot { return h.snapshot() }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Min     time.Duration // smallest observation (0 when empty)
	Max     time.Duration // largest observation (0 when empty)
	Buckets []BucketCount
}

// BucketCount is one histogram bucket: observations ≤ UpperBound (and
// greater than the previous bound). UpperBound 0 marks the overflow
// (+Inf) bucket.
type BucketCount struct {
	UpperBound time.Duration
	Count      int64
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket holding the target rank: a bucket (lo, hi] with c
// observations is treated as c points spread evenly across its width.
// The tracked Min/Max tighten the first occupied bucket, the overflow
// bucket (whose upper bound is unbounded), and the result overall, so
// p0 is exactly Min, p100 exactly Max, and a single-observation
// histogram answers that observation for every q. Empty histograms
// answer 0; q outside [0,1] is clamped.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	target := q * float64(s.Count)
	var cum float64
	for i, b := range s.Buckets {
		if b.Count == 0 {
			continue
		}
		next := cum + float64(b.Count)
		if next < target {
			cum = next
			continue
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = s.Buckets[i-1].UpperBound
		}
		hi := b.UpperBound
		if hi == 0 { // overflow bucket: bounded above by the observed max
			hi = s.Max
		}
		// Clip to the observed range: every observation lies in [Min, Max],
		// so no quantile can fall outside it.
		if lo < s.Min {
			lo = s.Min
		}
		if hi > s.Max {
			hi = s.Max
		}
		if hi <= lo {
			return lo
		}
		frac := (target - cum) / float64(b.Count)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return s.Max
}

func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     time.Duration(h.sum.Load()),
		Max:     time.Duration(h.max.Load()),
		Buckets: make([]BucketCount, len(h.counts)),
	}
	if mn := h.min.Load(); mn != math.MaxInt64 {
		out.Min = time.Duration(mn)
	}
	for i := range h.bounds {
		out.Buckets[i] = BucketCount{UpperBound: h.bounds[i], Count: h.counts[i].Load()}
	}
	out.Buckets[len(h.bounds)] = BucketCount{Count: h.counts[len(h.bounds)].Load()}
	return out
}

// Registry is a named collection of instruments. Instruments are
// created on first use and live for the registry's lifetime, so callers
// may cache the returned pointers and record without further lookups.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram (default latency buckets),
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith is Histogram with explicit bucket bounds (nil = the
// default latency buckets). Bounds apply only on first use: once a
// histogram exists under the name, later calls return it unchanged, so
// every recorder of a name should agree on its buckets.
func (r *Registry) HistogramWith(name string, bounds []time.Duration) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for n, c := range r.counters {
		out.Counters[n] = c.Value()
	}
	for n, h := range r.histograms {
		out.Histograms[n] = h.snapshot()
	}
	return out
}

// Ratio returns counter a over (a+b) as a fraction in [0,1], or 0 when
// both are zero — e.g. Ratio("apply_cache_hits", "apply_execs") is the
// apply cache hit ratio.
func (s Snapshot) Ratio(a, b string) float64 {
	x, y := s.Counters[a], s.Counters[b]
	if x+y == 0 {
		return 0
	}
	return float64(x) / float64(x+y)
}

// String renders the snapshot as aligned text, counters first then
// histograms, each sorted by name — the \metrics output.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	w := 0
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	for _, n := range names {
		fmt.Fprintf(&b, "%-*s %d\n", w, n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%s: count=%d mean=%s p50=%s p95=%s p99=%s\n",
			n, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		for _, bk := range h.Buckets {
			if bk.Count == 0 {
				continue
			}
			bound := "+Inf"
			if bk.UpperBound > 0 {
				bound = bk.UpperBound.String()
			}
			fmt.Fprintf(&b, "  <= %-8s %d\n", bound, bk.Count)
		}
	}
	return b.String()
}

// Handler exposes one registry over HTTP as a JSON snapshot (recomputed
// per request) — the instance-scoped alternative to Publish. Unlike the
// expvar path there is no process-global name table: each registry gets
// its own handler on whatever mux the caller owns, so parallel server
// tests (and multiple servers in one process) never share or collide on
// counters. Append "?format=text" for the \metrics text rendering.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := r.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, s.String())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s)
	})
}

var (
	publishMu  sync.Mutex
	publishSet = map[string]bool{}
)

// Publish exposes the registry under the given expvar name as a JSON
// snapshot (recomputed per read). Publishing the same name twice is a
// no-op rather than the panic expvar.Publish would raise, so callers can
// publish unconditionally at startup.
//
// Prefer Handler for new code: expvar's name table is process-global, so
// two databases published under one name silently alias (the first
// wins), which is exactly the cross-test leakage an instance-scoped
// handler avoids.
func Publish(name string, r *Registry) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if publishSet[name] || expvar.Get(name) != nil {
		return
	}
	publishSet[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
