package metrics

import (
	"math"
	"testing"
	"time"
)

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram(nil)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %v, want 0", q, got)
		}
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(7 * time.Millisecond)
	// One observation answers itself at every q — Min/Max clipping must
	// collapse the bucket to the point.
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7*time.Millisecond {
			t.Errorf("Quantile(%g) = %v, want 7ms", q, got)
		}
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// All observations land in the (1ms, 10ms] bucket; interpolation runs
	// across the observed [2ms, 8ms] range, not the full bucket width.
	h := NewHistogram(nil)
	h.Observe(2 * time.Millisecond)
	h.Observe(8 * time.Millisecond)
	if got := h.Quantile(0); got != 2*time.Millisecond {
		t.Errorf("p0 = %v, want 2ms", got)
	}
	if got := h.Quantile(1); got != 8*time.Millisecond {
		t.Errorf("p100 = %v, want 8ms", got)
	}
	mid := h.Quantile(0.5)
	if mid < 2*time.Millisecond || mid > 8*time.Millisecond {
		t.Errorf("p50 = %v, want within [2ms, 8ms]", mid)
	}
}

func TestQuantileUniformDistribution(t *testing.T) {
	// 10000 observations spread uniformly over (0, 1s]: every quantile of
	// the true distribution is q·1s; the bucketed estimate must land
	// within one bucket width of it.
	h := NewHistogram(FineLatencyBuckets)
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Observe(time.Duration(i) * time.Second / n)
	}
	for _, q := range []float64{0.10, 0.50, 0.90, 0.95, 0.99} {
		got := h.Quantile(q)
		want := time.Duration(q * float64(time.Second))
		// Tolerance: the width of the bucket the true quantile falls in
		// (1-2-5 grid → at most 60% of the value at these magnitudes).
		tol := time.Duration(0.6 * float64(want))
		if diff := (got - want).Abs(); diff > tol {
			t.Errorf("Quantile(%g) = %v, want %v ± %v", q, got, want, tol)
		}
	}
}

func TestQuantileExactWithinBucket(t *testing.T) {
	// A hand-checkable case: bounds {10, 20, 30}, four observations with
	// known positions. Cumulative counts: (0,10]=2, (10,20]=1, (20,30]=1.
	h := NewHistogram([]time.Duration{10, 20, 30})
	h.Observe(4)
	h.Observe(8)
	h.Observe(15)
	h.Observe(25)
	// target(0.5) = 2 falls at the end of the first bucket, whose observed
	// range is clipped to [4 (min), 10]: lo + 1.0·(hi-lo) = 10.
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %v, want 10", got)
	}
	// target(0.75) = 3: second bucket, frac = (3-2)/1 = 1 → its upper
	// bound, 20.
	if got := h.Quantile(0.75); got != 20 {
		t.Errorf("p75 = %v, want 20", got)
	}
	// target(1) → observed max.
	if got := h.Quantile(1); got != 25 {
		t.Errorf("p100 = %v, want 25 (max)", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	// Observations past the last bound land in the overflow bucket, which
	// has no upper bound of its own: the estimator must use the observed
	// max instead of extrapolating to infinity.
	h := NewHistogram([]time.Duration{time.Millisecond})
	h.Observe(500 * time.Microsecond)
	h.Observe(3 * time.Second)
	h.Observe(5 * time.Second)
	h.Observe(9 * time.Second)
	if got := h.Quantile(0.99); got > 9*time.Second {
		t.Errorf("p99 = %v, want ≤ max (9s)", got)
	}
	if got := h.Quantile(1); got != 9*time.Second {
		t.Errorf("p100 = %v, want 9s", got)
	}
	if got := h.Quantile(0.75); got < time.Second || got > 9*time.Second {
		t.Errorf("p75 = %v, want within the overflow range (1s, 9s]", got)
	}
}

func TestQuantileClampsRange(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	if got := h.Quantile(-1); got != time.Millisecond {
		t.Errorf("Quantile(-1) = %v, want min", got)
	}
	if got := h.Quantile(2); got != 2*time.Millisecond {
		t.Errorf("Quantile(2) = %v, want max", got)
	}
}

func TestSnapshotMinMax(t *testing.T) {
	h := NewHistogram(nil)
	s := h.snapshot()
	if s.Min != 0 || s.Max != 0 {
		t.Errorf("empty snapshot min/max = %v/%v, want 0/0", s.Min, s.Max)
	}
	h.Observe(3 * time.Millisecond)
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	s = h.snapshot()
	if s.Min != time.Millisecond || s.Max != 3*time.Millisecond {
		t.Errorf("min/max = %v/%v, want 1ms/3ms", s.Min, s.Max)
	}
}

func TestHistogramWithBounds(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("lat", FineLatencyBuckets)
	if r.HistogramWith("lat", nil) != h || r.Histogram("lat") != h {
		t.Fatal("HistogramWith must return a stable instrument per name")
	}
	h.Observe(time.Millisecond)
	s := r.Snapshot().Histograms["lat"]
	if len(s.Buckets) != len(FineLatencyBuckets)+1 {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(FineLatencyBuckets)+1)
	}
}

func TestQuantileMonotone(t *testing.T) {
	// Quantile must be monotone in q for any distribution; probe with a
	// skewed one.
	h := NewHistogram(FineLatencyBuckets)
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(math.Pow(float64(i), 1.7)) * time.Microsecond)
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%g) = %v < previous %v: not monotone", q, got, prev)
		}
		prev = got
	}
}
