package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("Value = %d, want 42", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, time.Second})
	h.Observe(time.Microsecond)       // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (inclusive upper bound)
	h.Observe(100 * time.Millisecond) // bucket 1
	h.Observe(time.Minute)            // overflow
	s := h.snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	want := []int64{2, 1, 1}
	for i, c := range s.Buckets {
		if c.Count != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c.Count, want[i])
		}
	}
	if s.Buckets[2].UpperBound != 0 {
		t.Errorf("overflow bucket bound = %v, want 0 (+Inf)", s.Buckets[2].UpperBound)
	}
	if got := s.Mean(); got <= 0 {
		t.Errorf("Mean = %v, want > 0", got)
	}
}

func TestRegistrySnapshotAndRatio(t *testing.T) {
	r := NewRegistry()
	if r.Counter("queries") != r.Counter("queries") {
		t.Fatal("Counter must return a stable instrument per name")
	}
	r.Counter("queries").Add(3)
	r.Counter("apply_cache_hits").Add(3)
	r.Counter("apply_execs").Add(1)
	r.Histogram("execute_latency").Observe(2 * time.Millisecond)

	s := r.Snapshot()
	if s.Counters["queries"] != 3 {
		t.Errorf("queries = %d, want 3", s.Counters["queries"])
	}
	if got := s.Ratio("apply_cache_hits", "apply_execs"); got != 0.75 {
		t.Errorf("Ratio = %v, want 0.75", got)
	}
	if got := s.Ratio("nope", "nada"); got != 0 {
		t.Errorf("empty Ratio = %v, want 0", got)
	}
	text := s.String()
	for _, want := range []string{"queries", "execute_latency", "count=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("String() missing %q:\n%s", want, text)
		}
	}
}

func TestPublishIdempotent(t *testing.T) {
	r := NewRegistry()
	Publish("metrics_test_registry", r)
	Publish("metrics_test_registry", r) // must not panic
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("queries").Inc()
				r.Histogram("lat").Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["queries"] != 8000 || s.Histograms["lat"].Count != 8000 {
		t.Fatalf("lost updates: %+v", s.Counters)
	}
}
