package metrics

import (
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"
)

// populate builds a registry whose map iteration order is likely to
// differ run to run: many counters, inserted in shuffled order.
func populate(order []string) *Registry {
	r := NewRegistry()
	for i, n := range order {
		r.Counter(n).Add(int64(i + 1))
	}
	r.Histogram("lat_a").Observe(3 * time.Millisecond)
	r.Histogram("lat_b").Observe(30 * time.Millisecond)
	return r
}

// TestSnapshotRenderingDeterministic pins the observability contract
// that two registries with the same values render identically — text
// and JSON — regardless of insertion (and hence map iteration) order.
// Golden-file diffs and scrape consumers rely on it.
func TestSnapshotRenderingDeterministic(t *testing.T) {
	names := []string{
		"queries", "server_queries", "plan_cache_hits", "apply_execs",
		"spool_builds", "spool_hits", "groups", "rows_scanned",
		"admission_waits", "server_errors_busy",
	}
	fwd := populate(names)
	// rev holds the same values but registers everything in reverse
	// order, so the two registries differ only in map insertion history.
	rev := NewRegistry()
	for i := len(names) - 1; i >= 0; i-- {
		rev.Counter(names[i]).Add(int64(i + 1))
	}
	rev.Histogram("lat_b").Observe(30 * time.Millisecond)
	rev.Histogram("lat_a").Observe(3 * time.Millisecond)

	serve := func(r *Registry, format string) string {
		req := httptest.NewRequest("GET", "/metrics"+format, nil)
		rec := httptest.NewRecorder()
		Handler(r).ServeHTTP(rec, req)
		return rec.Body.String()
	}
	if a, b := serve(fwd, "?format=text"), serve(rev, "?format=text"); a != b {
		t.Fatalf("text rendering depends on insertion order:\n%s\nvs\n%s", a, b)
	}
	if a, b := serve(fwd, ""), serve(rev, ""); a != b {
		t.Fatalf("JSON rendering depends on insertion order:\n%s\nvs\n%s", a, b)
	}

	// The text rendering lists counters in sorted name order.
	text := fwd.Snapshot().String()
	var got []string
	for _, line := range strings.Split(text, "\n") {
		f := strings.Fields(line)
		if len(f) == 2 && !strings.Contains(line, "<=") {
			got = append(got, f[0])
		}
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("counter lines not sorted: %v", got)
	}
}
