// Package analyze implements the paper's static analyses over per-group
// queries:
//
//   - EmptyOnEmpty (§4.1): does the tree produce empty output on an empty
//     group? Aggregates break this (count(*) of φ is a row), which is why
//     selection pushing must check it.
//   - CoveringRange (§4.1): the minimal selection on the group such that
//     evaluating the per-group query on the selected subset equals
//     evaluating it on the whole group (Theorem 1).
//   - GpEvalColumns (§4.3): the columns a per-group query *needs* —
//     selection/grouping/aggregation/ordering columns, but not plainly
//     projected ones, which later joins could re-attach (invariant
//     grouping).
//   - ReferencedGroupColumns: every group column the per-group query
//     touches (projection pruning needs these plus the grouping columns).
package analyze

import (
	"gapplydb/internal/core"
	"gapplydb/internal/schema"
)

// EmptyOnEmpty reports whether the tree rooted at n produces an empty
// result when every GroupScan in it yields the empty relation. The
// traversal mirrors the paper's bit-setting rules.
func EmptyOnEmpty(n core.Node) bool {
	switch x := n.(type) {
	case *core.GroupScan:
		return true
	case *core.Scan:
		// A base-table scan does not depend on the group at all; it can
		// produce rows for an empty group.
		return false
	case *core.Select, *core.Project, *core.Distinct, *core.GroupBy, *core.OrderBy:
		return EmptyOnEmpty(n.Children()[0])
	case *core.Exists:
		if x.Negated {
			// NOT EXISTS of an empty input produces a row.
			return false
		}
		return EmptyOnEmpty(x.Input)
	case *core.AggOp:
		return false
	case *core.Apply:
		return EmptyOnEmpty(x.Outer)
	case *core.UnionAll:
		for _, c := range x.Inputs {
			if !EmptyOnEmpty(c) {
				return false
			}
		}
		return true
	case *core.Join:
		// An inner join is empty if either side is; a left-outer only if
		// the left side is.
		if x.Kind == core.LeftOuterJoin {
			return EmptyOnEmpty(x.Left)
		}
		return EmptyOnEmpty(x.Left) || EmptyOnEmpty(x.Right)
	case *core.GApply:
		// GApply over an empty input forms no groups.
		return EmptyOnEmpty(x.Outer)
	default:
		// Unknown operators are conservatively assumed to produce output.
		return false
	}
}

// CoveringRange computes the covering range of the tree rooted at n as a
// predicate over the group's columns (nil means "the whole group", the
// boolean condition true). groupSchema is the schema of the group
// variable; conditions mentioning columns outside it (e.g. apply-produced
// subquery columns) poison their select into contributing nothing, which
// the paper's rules achieve by the apply/aggregate-descendant check.
func CoveringRange(n core.Node, groupSchema *schema.Schema) core.Expr {
	switch x := n.(type) {
	case *core.GroupScan:
		return nil // true: the whole group
	case *core.Select:
		child := CoveringRange(x.Input, groupSchema)
		// "If it has an apply, groupby or aggregate descendant, then it is
		// the same as the covering range of its child."
		if hasBlockingDescendant(x.Input) || !condOverSchema(x.Cond, groupSchema) {
			return child
		}
		if child == nil {
			return x.Cond
		}
		return core.AndAll([]core.Expr{child, x.Cond})
	case *core.Project, *core.Distinct, *core.OrderBy, *core.GroupBy, *core.AggOp, *core.Exists:
		return CoveringRange(n.Children()[0], groupSchema)
	case *core.Apply:
		return disjoin(CoveringRange(x.Outer, groupSchema), CoveringRange(x.Inner, groupSchema))
	case *core.UnionAll:
		var acc core.Expr
		hasAny := false
		for i, c := range x.Inputs {
			r := CoveringRange(c, groupSchema)
			if r == nil {
				return nil // one branch needs the whole group
			}
			if i == 0 {
				acc, hasAny = r, true
			} else {
				acc = disjoin(acc, r)
			}
		}
		if !hasAny {
			return nil
		}
		return acc
	default:
		return nil
	}
}

// disjoin ORs two covering ranges; nil (true) absorbs everything.
func disjoin(a, b core.Expr) core.Expr {
	if a == nil || b == nil {
		return nil
	}
	return &core.Or{Ops: []core.Expr{a, b}}
}

// hasBlockingDescendant reports whether the tree contains an apply,
// groupby or aggregate — the operators below which a selection's
// condition no longer describes a subset of the raw group.
func hasBlockingDescendant(n core.Node) bool {
	found := false
	core.Walk(n, func(m core.Node) {
		switch m.(type) {
		case *core.Apply, *core.GroupBy, *core.AggOp:
			found = true
		}
	})
	return found
}

// condOverSchema reports whether every column the condition references
// resolves in the group schema (no apply-columns, no outer refs).
func condOverSchema(cond core.Expr, groupSchema *schema.Schema) bool {
	if cond == nil {
		return true
	}
	if core.HasOuterRefs(cond) {
		return false
	}
	for _, c := range core.ColRefsIn(cond) {
		if !groupSchema.Has(c.Table, c.Name) {
			return false
		}
	}
	return true
}

// GpEvalColumns computes the paper's gp-eval columns of a per-group
// query: the columns needed to *evaluate* it (selection, grouping,
// aggregation, ordering), excluding plainly projected columns. Only
// columns that resolve in the group schema are returned.
func GpEvalColumns(n core.Node, groupSchema *schema.Schema) []*core.ColRef {
	cols := evalCols(n)
	var out []*core.ColRef
	for _, c := range cols {
		if groupSchema.Has(c.Table, c.Name) {
			out = append(out, c)
		}
	}
	return core.DedupCols(out)
}

func evalCols(n core.Node) []*core.ColRef {
	switch x := n.(type) {
	case *core.GroupScan, *core.Scan:
		return nil
	case *core.Select:
		return append(evalCols(x.Input), core.ColRefsIn(x.Cond)...)
	case *core.GroupBy:
		out := evalCols(x.Input)
		out = append(out, x.GroupCols...)
		for _, a := range x.Aggs {
			out = append(out, core.ColRefsIn(a.Arg)...)
		}
		return out
	case *core.AggOp:
		out := evalCols(x.Input)
		for _, a := range x.Aggs {
			out = append(out, core.ColRefsIn(a.Arg)...)
		}
		return out
	case *core.OrderBy:
		out := evalCols(x.Input)
		for _, k := range x.Keys {
			out = append(out, core.ColRefsIn(k.Expr)...)
		}
		return out
	case *core.Project, *core.Distinct, *core.Exists:
		return evalCols(n.Children()[0])
	case *core.Apply:
		return append(evalCols(x.Outer), evalCols(x.Inner)...)
	case *core.UnionAll:
		var out []*core.ColRef
		for _, c := range x.Inputs {
			out = append(out, evalCols(c)...)
		}
		return out
	case *core.Join:
		out := append(evalCols(x.Left), evalCols(x.Right)...)
		return append(out, core.ColRefsIn(x.Cond)...)
	default:
		var out []*core.ColRef
		for _, c := range n.Children() {
			out = append(out, evalCols(c)...)
		}
		return out
	}
}

// ReferencedGroupColumns returns every group column the per-group query
// references anywhere — the set the projection-before-GApply rule keeps.
func ReferencedGroupColumns(pgq core.Node, groupSchema *schema.Schema) []*core.ColRef {
	var out []*core.ColRef
	for _, c := range core.ReferencedColumns(pgq) {
		if groupSchema.Has(c.Table, c.Name) {
			out = append(out, c)
		}
	}
	return core.DedupCols(out)
}
