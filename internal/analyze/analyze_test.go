package analyze

import (
	"testing"

	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

func groupSchema() *schema.Schema {
	return schema.New(
		schema.Column{Table: "partsupp", Name: "ps_suppkey", Type: types.KindInt},
		schema.Column{Table: "part", Name: "p_name", Type: types.KindString},
		schema.Column{Table: "part", Name: "p_brand", Type: types.KindString},
		schema.Column{Table: "part", Name: "p_retailprice", Type: types.KindFloat},
	)
}

func gs() *core.GroupScan { return &core.GroupScan{Var: "g", Sch: groupSchema()} }

func brandSel(brand string, in core.Node) *core.Select {
	return &core.Select{Input: in, Cond: &core.Cmp{Op: "=", L: core.Col("p_brand"), R: core.LitStr(brand)}}
}

func TestEmptyOnEmptyRules(t *testing.T) {
	cases := []struct {
		name string
		n    core.Node
		want bool
	}{
		{"groupscan", gs(), true},
		{"select", brandSel("Brand#A", gs()), true},
		{"project", core.ProjectCols(gs(), []*core.ColRef{core.Col("p_name")}), true},
		{"distinct", &core.Distinct{Input: gs()}, true},
		{"orderby", &core.OrderBy{Input: gs(), Keys: []core.OrderKey{{Expr: core.Col("p_name")}}}, true},
		{"groupby", &core.GroupBy{Input: gs(), GroupCols: []*core.ColRef{core.Col("p_brand")},
			Aggs: []core.AggSpec{{Fn: "count", Star: true}}}, true},
		{"aggregate", &core.AggOp{Input: gs(), Aggs: []core.AggSpec{{Fn: "count", Star: true}}}, false},
		{"exists", &core.Exists{Input: gs()}, true},
		{"not-exists", &core.Exists{Input: gs(), Negated: true}, false},
		{"apply outer empty", &core.Apply{Outer: gs(), Inner: &core.AggOp{Input: gs(),
			Aggs: []core.AggSpec{{Fn: "avg", Arg: core.Col("p_retailprice")}}}}, true},
		{"apply outer agg", &core.Apply{Outer: &core.AggOp{Input: gs(),
			Aggs: []core.AggSpec{{Fn: "count", Star: true}}}, Inner: gs()}, false},
		{"unionall all empty", &core.UnionAll{Inputs: []core.Node{gs(), brandSel("Brand#B", gs())}}, true},
		{"unionall with agg branch", &core.UnionAll{Inputs: []core.Node{gs(),
			&core.AggOp{Input: gs(), Aggs: []core.AggSpec{{Fn: "count", Star: true}}}}}, false},
	}
	for _, c := range cases {
		if got := EmptyOnEmpty(c.n); got != c.want {
			t.Errorf("%s: EmptyOnEmpty = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestEmptyOnEmptyPaperQ1(t *testing.T) {
	// Q1's PGQ unions a projection branch with an aggregate branch; the
	// aggregate branch produces a row on empty input, so the whole PGQ is
	// NOT emptyOnEmpty — the selection rule must not fire on Q1.
	pgq := &core.UnionAll{Inputs: []core.Node{
		core.ProjectCols(gs(), []*core.ColRef{core.Col("p_name"), core.Col("p_retailprice")}),
		&core.AggOp{Input: gs(), Aggs: []core.AggSpec{{Fn: "avg", Arg: core.Col("p_retailprice")}}},
	}}
	if EmptyOnEmpty(pgq) {
		t.Error("Q1's PGQ must not be emptyOnEmpty")
	}
}

func TestCoveringRangeSimpleSelect(t *testing.T) {
	pgq := core.ProjectCols(brandSel("Brand#A", gs()), []*core.ColRef{core.Col("p_name")})
	cr := CoveringRange(pgq, groupSchema())
	if cr == nil {
		t.Fatal("covering range must be the brand selection")
	}
	want := &core.Cmp{Op: "=", L: core.Col("p_brand"), R: core.LitStr("Brand#A")}
	if !core.ExprEqual(cr, want) {
		t.Errorf("covering range = %s", cr)
	}
}

func TestCoveringRangeFigure3(t *testing.T) {
	// Figure 3: parts of brand A priced above the average of brand B.
	// PGQ = σ_{brand=A ∧ price > avgB}(Apply(g, avg(σ_{brand=B} g))).
	// The apply disjoins the two branches: range = (brand=A) ∨ (brand=B)?
	// No — the outer select sits ABOVE the apply, so its condition is
	// skipped (apply descendant); the covering range comes from the apply:
	// whole group on the outer side? The outer of the apply is σ_{brand=A}
	// *below* the apply in the paper's tree. Model it that way:
	avgB := &core.AggOp{
		Input: brandSel("Brand#B", gs()),
		Aggs:  []core.AggSpec{{Fn: "avg", Arg: core.Col("p_retailprice"), As: "avgB"}},
	}
	pgq := &core.Select{
		Input: &core.Apply{Outer: brandSel("Brand#A", gs()), Inner: avgB},
		Cond:  &core.Cmp{Op: ">", L: core.Col("p_retailprice"), R: core.Col("avgB")},
	}
	cr := CoveringRange(pgq, groupSchema())
	want := &core.Or{Ops: []core.Expr{
		&core.Cmp{Op: "=", L: core.Col("p_brand"), R: core.LitStr("Brand#A")},
		&core.Cmp{Op: "=", L: core.Col("p_brand"), R: core.LitStr("Brand#B")},
	}}
	if !core.ExprEqual(cr, want) {
		t.Errorf("covering range = %v, want %v", cr, want)
	}
}

func TestCoveringRangeSelectAboveAggregateIsSkipped(t *testing.T) {
	// A select above an aggregate filters aggregate output, not group
	// rows; its condition must not enter the range.
	pgq := &core.Select{
		Input: &core.AggOp{Input: gs(), Aggs: []core.AggSpec{{Fn: "avg", Arg: core.Col("p_retailprice"), As: "a"}}},
		Cond:  &core.Cmp{Op: ">", L: core.Col("a"), R: core.LitFloat(10)},
	}
	if cr := CoveringRange(pgq, groupSchema()); cr != nil {
		t.Errorf("covering range = %v, want whole group", cr)
	}
}

func TestCoveringRangeUnion(t *testing.T) {
	// Q3's shape: branch A selects high-end, branch B low-end; the range
	// is the disjunction.
	hi := brandSel("Brand#A", gs())
	lo := brandSel("Brand#B", gs())
	pgq := &core.UnionAll{Inputs: []core.Node{hi, lo}}
	cr := CoveringRange(pgq, groupSchema())
	want := &core.Or{Ops: []core.Expr{
		&core.Cmp{Op: "=", L: core.Col("p_brand"), R: core.LitStr("Brand#A")},
		&core.Cmp{Op: "=", L: core.Col("p_brand"), R: core.LitStr("Brand#B")},
	}}
	if !core.ExprEqual(cr, want) {
		t.Errorf("union covering range = %v", cr)
	}
	// A branch scanning the whole group absorbs the range.
	pgq2 := &core.UnionAll{Inputs: []core.Node{hi, gs()}}
	if cr := CoveringRange(pgq2, groupSchema()); cr != nil {
		t.Errorf("whole-group branch must absorb: %v", cr)
	}
}

func TestCoveringRangeStackedSelects(t *testing.T) {
	inner := brandSel("Brand#A", gs())
	outer := &core.Select{Input: inner, Cond: &core.Cmp{Op: ">", L: core.Col("p_retailprice"), R: core.LitFloat(5)}}
	cr := CoveringRange(outer, groupSchema())
	want := &core.And{Ops: []core.Expr{
		&core.Cmp{Op: "=", L: core.Col("p_brand"), R: core.LitStr("Brand#A")},
		&core.Cmp{Op: ">", L: core.Col("p_retailprice"), R: core.LitFloat(5)},
	}}
	if !core.ExprEqual(cr, want) {
		t.Errorf("stacked selects range = %v", cr)
	}
}

func TestCoveringRangeForeignColumnPoisons(t *testing.T) {
	// A selection on a column that is not in the group schema (e.g. an
	// apply-produced subquery column) contributes nothing.
	sel := &core.Select{Input: gs(), Cond: &core.Cmp{Op: ">", L: core.Col("__sq1"), R: core.LitFloat(0)}}
	if cr := CoveringRange(sel, groupSchema()); cr != nil {
		t.Errorf("foreign column produced a range: %v", cr)
	}
}

func TestGpEvalColumns(t *testing.T) {
	// select p_name from g where p_brand = 'Brand#A' order by p_retailprice:
	// gp-eval = {p_brand, p_retailprice}; p_name is only projected.
	pgq := &core.OrderBy{
		Input: core.ProjectCols(brandSel("Brand#A", gs()), []*core.ColRef{core.Col("p_name"), core.Col("p_retailprice")}),
		Keys:  []core.OrderKey{{Expr: core.Col("p_retailprice")}},
	}
	got := GpEvalColumns(pgq, groupSchema())
	names := map[string]bool{}
	for _, c := range got {
		names[c.Name] = true
	}
	if !names["p_brand"] || !names["p_retailprice"] || names["p_name"] {
		t.Errorf("gp-eval = %v", got)
	}
}

func TestGpEvalColumnsAggregatesAndGrouping(t *testing.T) {
	pgq := &core.GroupBy{
		Input:     gs(),
		GroupCols: []*core.ColRef{core.Col("p_brand")},
		Aggs:      []core.AggSpec{{Fn: "min", Arg: core.Col("p_retailprice")}},
	}
	got := GpEvalColumns(pgq, groupSchema())
	if len(got) != 2 {
		t.Errorf("gp-eval = %v", got)
	}
	// Pure projection needs nothing.
	proj := core.ProjectCols(gs(), []*core.ColRef{core.Col("p_name")})
	if got := GpEvalColumns(proj, groupSchema()); len(got) != 0 {
		t.Errorf("projection-only gp-eval = %v", got)
	}
}

func TestReferencedGroupColumns(t *testing.T) {
	pgq := core.ProjectCols(brandSel("Brand#A", gs()), []*core.ColRef{core.Col("p_name")})
	got := ReferencedGroupColumns(pgq, groupSchema())
	names := map[string]bool{}
	for _, c := range got {
		names[c.Name] = true
	}
	// Projection pruning must keep projected AND selected columns.
	if !names["p_name"] || !names["p_brand"] || len(got) != 2 {
		t.Errorf("referenced = %v", got)
	}
}
