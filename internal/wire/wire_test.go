package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 1000)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, Type(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if typ != Type(i+1) {
			t.Fatalf("frame %d: type %v, want %v", i, typ, Type(i+1))
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, _, err := ReadFrame(&buf, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("trailing read = %v, want EOF", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	// A legitimate frame larger than the reader's limit.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeRowBatch, make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrame(&buf, 1024); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	// A corrupt header declaring a huge payload must be rejected before
	// any allocation, not after an attempted read.
	hdr := []byte{byte(TypeRowBatch), 0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadFrame(bytes.NewReader(hdr), 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("corrupt header err = %v, want ErrFrameTooLarge", err)
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []any{nil, int64(0), int64(-1), int64(math.MaxInt64), int64(math.MinInt64),
		3.14, math.Inf(1), 0.0, "", "héllo\x00world", true, false}
	var e Enc
	for _, v := range vals {
		if err := PutValue(&e, v); err != nil {
			t.Fatal(err)
		}
	}
	d := Dec{B: e.B}
	for i, want := range vals {
		got := d.Value()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("value %d: %#v, want %#v", i, got, want)
		}
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	// int travels as int64.
	var e2 Enc
	if err := PutValue(&e2, 7); err != nil {
		t.Fatal(err)
	}
	d2 := Dec{B: e2.B}
	if got := d2.Value(); got != int64(7) {
		t.Fatalf("int decoded as %#v, want int64(7)", got)
	}
	// Unsupported types must be rejected, not silently mangled.
	var e3 Enc
	if err := PutValue(&e3, struct{}{}); err == nil {
		t.Fatal("PutValue(struct{}{}) succeeded")
	}
}

func TestQueryMsgRoundTrip(t *testing.T) {
	m := &QueryMsg{
		ID:  42,
		SQL: "select gapply(select * from g) from t group by k : g",
		Opts: QueryOptions{
			Timeout: 250 * time.Millisecond, MaxOutputRows: 10, MaxPartitionBytes: 1 << 20,
			DOP: 8, XML: true, TagPlan: []byte(`{"RootTag":"r"}`),
		},
	}
	got, err := DecodeQuery(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v, want %+v", got, m)
	}
}

func TestRowBatchRoundTrip(t *testing.T) {
	rows := [][]any{
		{int64(1), "a", nil},
		{int64(2), "b", 2.5},
		{nil, "", false},
	}
	p, err := EncodeRowBatch(9, 3, rows)
	if err != nil {
		t.Fatal(err)
	}
	id, got, err := DecodeRowBatch(p)
	if err != nil {
		t.Fatal(err)
	}
	if id != 9 || !reflect.DeepEqual(got, rows) {
		t.Fatalf("id=%d rows=%v, want 9 %v", id, got, rows)
	}
	if _, err := EncodeRowBatch(9, 2, rows); err == nil {
		t.Fatal("width mismatch accepted")
	}
	// Empty batch (header-only) round-trips.
	p, err = EncodeRowBatch(9, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, got, err = DecodeRowBatch(p); err != nil || len(got) != 0 {
		t.Fatalf("empty batch: rows=%v err=%v", got, err)
	}
}

func TestHandshakeMessages(t *testing.T) {
	v, mf, err := DecodeHello(EncodeHello())
	if err != nil || v != ProtocolVersion || mf != DefaultMaxFrame {
		t.Fatalf("hello: v=%d maxFrame=%d err=%v", v, mf, err)
	}
	var bad Enc
	bad.U32(0xdeadbeef)
	bad.U32(ProtocolVersion)
	if _, _, err := DecodeHello(bad.B); err == nil {
		t.Fatal("bad magic accepted")
	}
	v, banner, mf, err := DecodeWelcome(EncodeWelcome("gapplyd test"))
	if err != nil || v != ProtocolVersion || banner != "gapplyd test" || mf != DefaultMaxFrame {
		t.Fatalf("welcome: v=%d banner=%q maxFrame=%d err=%v", v, banner, mf, err)
	}
}

func TestControlMessages(t *testing.T) {
	h := &RowHeaderMsg{ID: 3, Columns: []string{"a", "b.c"}}
	gh, err := DecodeRowHeader(h.Encode())
	if err != nil || !reflect.DeepEqual(gh, h) {
		t.Fatalf("header: %+v err=%v", gh, err)
	}
	e := &EndMsg{ID: 3, Rows: 100, Elapsed: time.Second,
		Stats: []StatPair{{"rows_scanned", 5}, {"groups", 2}}}
	ge, err := DecodeEnd(e.Encode())
	if err != nil || !reflect.DeepEqual(ge, e) {
		t.Fatalf("end: %+v err=%v", ge, err)
	}
	em := &ErrorMsg{ID: 3, Code: CodeBusy, Message: "queue full"}
	gem, err := DecodeError(em.Encode())
	if err != nil || !reflect.DeepEqual(gem, em) {
		t.Fatalf("error: %+v err=%v", gem, err)
	}
	id, err := DecodeID(EncodeID(77))
	if err != nil || id != 77 {
		t.Fatalf("id: %d err=%v", id, err)
	}
	s := &SetMsg{ID: 4, Name: "timeout", Value: "5s"}
	gs, err := DecodeSet(s.Encode())
	if err != nil || !reflect.DeepEqual(gs, s) {
		t.Fatalf("set: %+v err=%v", gs, err)
	}
	cid, chunk, err := DecodeChunk(EncodeChunk(5, []byte("<a/>")))
	if err != nil || cid != 5 || string(chunk) != "<a/>" {
		t.Fatalf("chunk: id=%d b=%q err=%v", cid, chunk, err)
	}
}

func TestTruncatedPayloadsLatchError(t *testing.T) {
	m := &QueryMsg{ID: 1, SQL: "select 1"}
	full := m.Encode()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeQuery(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, _, err := DecodeRowBatch([]byte{1, 2}); !errors.Is(err, ErrShortPayload) {
		t.Fatalf("short batch err = %v", err)
	}
}
