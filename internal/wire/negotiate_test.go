package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// TestHelloWelcomeByteCompat pins the zero-value handshake payloads to
// the pre-negotiation format: a peer that never proposes a custom frame
// limit puts exactly the old bytes on the wire.
func TestHelloWelcomeByteCompat(t *testing.T) {
	var oldHello Enc
	oldHello.U32(Magic)
	oldHello.U32(ProtocolVersion)
	if !bytes.Equal(EncodeHello(), oldHello.B) {
		t.Errorf("EncodeHello changed: %x != %x", EncodeHello(), oldHello.B)
	}
	if !bytes.Equal(EncodeHelloMax(0), oldHello.B) {
		t.Errorf("EncodeHelloMax(0) not byte-compatible")
	}
	if !bytes.Equal(EncodeHelloMax(DefaultMaxFrame), oldHello.B) {
		t.Errorf("EncodeHelloMax(DefaultMaxFrame) not byte-compatible")
	}

	var oldWelcome Enc
	oldWelcome.U32(ProtocolVersion)
	oldWelcome.Str("b")
	if !bytes.Equal(EncodeWelcome("b"), oldWelcome.B) {
		t.Errorf("EncodeWelcome changed")
	}
	if !bytes.Equal(EncodeWelcomeMax("b", DefaultMaxFrame), oldWelcome.B) {
		t.Errorf("EncodeWelcomeMax(DefaultMaxFrame) not byte-compatible")
	}
}

func TestHelloMaxRoundTrip(t *testing.T) {
	const proposed = 256 << 10
	v, mf, err := DecodeHello(EncodeHelloMax(proposed))
	if err != nil || v != ProtocolVersion || mf != proposed {
		t.Fatalf("v=%d maxFrame=%d err=%v", v, mf, err)
	}
	v, banner, mf, err := DecodeWelcome(EncodeWelcomeMax("srv", proposed))
	if err != nil || v != ProtocolVersion || banner != "srv" || mf != proposed {
		t.Fatalf("welcome: v=%d banner=%q maxFrame=%d err=%v", v, banner, mf, err)
	}
}

func TestNegotiateFrame(t *testing.T) {
	cases := []struct {
		a, b, want int
		err        bool
	}{
		{0, 0, DefaultMaxFrame, false},
		{0, 1 << 20, 1 << 20, false},
		{2 << 20, 0, 2 << 20, false},
		{1 << 20, 2 << 20, 1 << 20, false},
		{MinFrame, 8 << 20, MinFrame, false},
		{1024, 0, 0, true}, // below MinFrame
	}
	for _, c := range cases {
		got, err := NegotiateFrame(c.a, c.b)
		if c.err {
			var fe *FrameSizeError
			if !errors.As(err, &fe) {
				t.Errorf("NegotiateFrame(%d,%d): want FrameSizeError, got %v", c.a, c.b, err)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("NegotiateFrame(%d,%d) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
}

// TestQueryOptionsExtension round-trips the distributed plan pins and
// pins byte-compatibility: a query without pins encodes exactly as
// before the extension existed.
func TestQueryOptionsExtension(t *testing.T) {
	plain := &QueryMsg{ID: 7, SQL: "select 1"}
	got, err := DecodeQuery(plain.Encode())
	if err != nil || !reflect.DeepEqual(got, plain) {
		t.Fatalf("plain round-trip: %+v err=%v", got, err)
	}

	m := &QueryMsg{ID: 9, SQL: "select * from partsupp"}
	m.Opts.Partition = "sort"
	m.Opts.ForceRules = []string{"gapply-to-groupby"}
	m.Opts.DisableRules = []string{"invariant-grouping", "push-down-selections"}
	got, err = DecodeQuery(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Opts.Partition != "sort" ||
		!reflect.DeepEqual(got.Opts.ForceRules, m.Opts.ForceRules) ||
		!reflect.DeepEqual(got.Opts.DisableRules, m.Opts.DisableRules) {
		t.Fatalf("pins lost: %+v", got.Opts)
	}

	// Pins compose with a trace ID (the positional trace field stays
	// aligned whether or not the ID is set).
	var id [16]byte
	id[0] = 0xaa
	m.Trace = id
	got, err = DecodeQuery(m.Encode())
	if err != nil || got.Trace != id || got.Opts.Partition != "sort" {
		t.Fatalf("pins+trace: trace=%x partition=%q err=%v", got.Trace, got.Opts.Partition, err)
	}
}
