// Package wire is gapplyd's binary protocol: length-prefixed frames
// carrying a small fixed message set — handshake, query submission,
// row-batch and XML-chunk streams, completion with statistics, errors,
// cancellation, session options and pings.
//
// Framing. Every frame is
//
//	[1 byte type][4 bytes big-endian payload length][payload]
//
// A reader enforces a maximum payload length and rejects anything
// larger with ErrFrameTooLarge before allocating, so a corrupt or
// malicious peer cannot make the other side buffer an arbitrary amount.
//
// Multiplexing. Every per-query message begins with the query id the
// client assigned, so one connection carries any number of concurrent
// queries: the server interleaves RowBatch/XMLChunk frames of different
// queries and the client demultiplexes on the id. Handshake and session
// messages (Hello/Welcome/Set/OK/Ping/Pong) use the same id mechanism
// where a reply must be matched to its request.
//
// Values. Rows travel as tagged scalars in the exact Go representations
// the embedded API's Result.Rows uses (nil, int64, float64, string,
// bool), so remote results are byte-identical to in-process ones after
// formatting.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"gapplydb/internal/trace"
)

// ProtocolVersion is bumped on any incompatible change; the handshake
// rejects mismatches.
const ProtocolVersion = 1

// Magic opens every Hello so a server can immediately reject a peer
// that is not speaking this protocol ("GAPD").
const Magic = 0x47415044

// DefaultMaxFrame bounds one frame's payload: large enough for any row
// batch the server emits (batches flush far below this), small enough
// that a corrupt length prefix cannot balloon memory.
const DefaultMaxFrame = 4 << 20

// MinFrame is the smallest negotiable frame limit. Below this the
// server could not fit an ordinary row batch or error message, so the
// handshake rejects it rather than let the session wedge mid-stream.
const MinFrame = 64 << 10

// FrameSizeError reports an unnegotiable frame-size pairing: one side
// proposed a limit the other cannot honor. It ends the handshake.
type FrameSizeError struct {
	// Proposed is the rejected limit; Min the floor it fell under, or
	// Limit the ceiling it exceeded (one of the two is set).
	Proposed, Min, Limit int
}

func (e *FrameSizeError) Error() string {
	if e.Limit > 0 {
		return fmt.Sprintf("wire: negotiated max frame %d exceeds peer limit %d", e.Proposed, e.Limit)
	}
	return fmt.Sprintf("wire: proposed max frame %d below minimum %d", e.Proposed, e.Min)
}

// NegotiateFrame folds the two sides' frame-size offers (0 or negative
// means DefaultMaxFrame) into the session limit: the smaller of the
// two. An offer below MinFrame is a *FrameSizeError.
func NegotiateFrame(a, b int) (int, error) {
	if a <= 0 {
		a = DefaultMaxFrame
	}
	if b <= 0 {
		b = DefaultMaxFrame
	}
	n := a
	if b < n {
		n = b
	}
	if n < MinFrame {
		return 0, &FrameSizeError{Proposed: n, Min: MinFrame}
	}
	return n, nil
}

// Type identifies a frame's message.
type Type byte

const (
	TypeInvalid   Type = iota
	TypeHello          // client→server: magic, protocol version
	TypeWelcome        // server→client: protocol version, server banner
	TypeQuery          // client→server: id, SQL text, per-query options
	TypeRowHeader      // server→client: id, column names
	TypeRowBatch       // server→client: id, n rows of tagged values
	TypeXMLChunk       // server→client: id, raw document bytes
	TypeEnd            // server→client: id, elapsed, row count, stats
	TypeError          // server→client: id, code, message
	TypeCancel         // client→server: id of the query to cancel
	TypePing           // client→server: id
	TypePong           // server→client: id echoed
	TypeSet            // client→server: id, session option name, value
	TypeOK             // server→client: id echoed (Set accepted)
)

// String names the frame type for diagnostics.
func (t Type) String() string {
	names := [...]string{"invalid", "hello", "welcome", "query", "rowheader",
		"rowbatch", "xmlchunk", "end", "error", "cancel", "ping", "pong", "set", "ok"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("type(%d)", byte(t))
}

// ErrFrameTooLarge reports a frame whose declared payload exceeds the
// reader's limit; the connection is unrecoverable after it (the stream
// position is past a header whose payload was never read).
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

const headerLen = 5

// WriteFrame writes one frame. The payload may be nil (length 0).
func WriteFrame(w io.Writer, t Type, payload []byte) error {
	if len(payload) > math.MaxUint32 {
		return ErrFrameTooLarge
	}
	var hdr [headerLen]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, rejecting payloads over maxPayload bytes
// (0 means DefaultMaxFrame) before allocating anything for them.
func ReadFrame(r io.Reader, maxPayload int) (Type, []byte, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxFrame
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return TypeInvalid, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > uint32(maxPayload) {
		return TypeInvalid, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxPayload)
	}
	if n == 0 {
		return Type(hdr[0]), nil, nil
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return TypeInvalid, nil, err
	}
	return Type(hdr[0]), payload, nil
}

// Enc builds a payload. The zero value is ready to use; methods never
// fail (growth is append-based).
type Enc struct{ B []byte }

// U8 appends one byte.
func (e *Enc) U8(v byte) { e.B = append(e.B, v) }

// U32 appends a big-endian uint32.
func (e *Enc) U32(v uint32) { e.B = binary.BigEndian.AppendUint32(e.B, v) }

// U64 appends a big-endian uint64.
func (e *Enc) U64(v uint64) { e.B = binary.BigEndian.AppendUint64(e.B, v) }

// I64 appends a big-endian two's-complement int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends an IEEE-754 float64.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.B = append(e.B, s...)
}

// Bytes appends a length-prefixed byte slice.
func (e *Enc) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.B = append(e.B, b...)
}

// ErrShortPayload reports a payload that ended before its declared
// contents — a framing or encoding bug, never a recoverable condition.
var ErrShortPayload = errors.New("wire: truncated payload")

// Dec consumes a payload. The first decode past the end latches
// ErrShortPayload; callers check Err once at the end of a message.
type Dec struct {
	B   []byte
	off int
	err error
}

// Err returns the first decode error.
func (d *Dec) Err() error { return d.err }

// Remaining reports how many payload bytes are left unread (0 after an
// error). Optional trailing message fields check it before decoding, so
// frames from an older peer — which simply end earlier — parse cleanly.
func (d *Dec) Remaining() int {
	if d.err != nil {
		return 0
	}
	return len(d.B) - d.off
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.B) {
		d.err = ErrShortPayload
		return nil
	}
	b := d.B[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a big-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads an IEEE-754 float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a length-prefixed string.
func (d *Dec) Str() string { return string(d.BytesRef()) }

// BytesRef reads a length-prefixed byte slice aliasing the payload.
func (d *Dec) BytesRef() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	return d.take(int(n))
}

// value tags.
const (
	tagNull  = 0
	tagInt   = 1
	tagFloat = 2
	tagStr   = 3
	tagTrue  = 4
	tagFalse = 5
)

// PutValue appends one tagged scalar. Accepted dynamic types are
// exactly those of Result.Rows cells: nil, int64, float64, string,
// bool (int is accepted for convenience and travels as int64).
func PutValue(e *Enc, v any) error {
	switch x := v.(type) {
	case nil:
		e.U8(tagNull)
	case int64:
		e.U8(tagInt)
		e.I64(x)
	case int:
		e.U8(tagInt)
		e.I64(int64(x))
	case float64:
		e.U8(tagFloat)
		e.F64(x)
	case string:
		e.U8(tagStr)
		e.Str(x)
	case bool:
		if x {
			e.U8(tagTrue)
		} else {
			e.U8(tagFalse)
		}
	default:
		return fmt.Errorf("wire: unsupported value type %T", v)
	}
	return nil
}

// Value reads one tagged scalar.
func (d *Dec) Value() any {
	switch t := d.U8(); t {
	case tagNull:
		return nil
	case tagInt:
		return d.I64()
	case tagFloat:
		return d.F64()
	case tagStr:
		return d.Str()
	case tagTrue:
		return true
	case tagFalse:
		return false
	default:
		if d.err == nil {
			d.err = fmt.Errorf("wire: unknown value tag %d", t)
		}
		return nil
	}
}

// QueryOptions are the per-query knobs a Query frame carries; zero
// values mean "session default" (and the session's defaults in turn
// fall back to the engine's).
type QueryOptions struct {
	// Timeout is the wall-clock budget (0 = session default).
	Timeout time.Duration
	// MaxOutputRows / MaxPartitionBytes cap the resource budget.
	MaxOutputRows     int64
	MaxPartitionBytes int64
	// DOP caps GApply's parallel degree (0 = session default,
	// -1 = engine default explicitly, overriding a session DOP).
	DOP int32
	// XML switches the reply from row batches to a streamed XML
	// document tagged with TagPlan.
	XML bool
	// TagPlan is the JSON-encoded xmlpub.TagPlan for XML mode.
	TagPlan []byte
	// Partition pins GApply's partitioning strategy ("hash", "sort";
	// "" = engine default). ForceRules / DisableRules pin individual
	// optimizer rules. The distributed coordinator uses all three to
	// make every shard reproduce the exact plan it chose; they travel
	// as optional trailing fields older peers simply omit or ignore.
	Partition    string
	ForceRules   []string
	DisableRules []string
}

// distributed reports whether any plan-pinning field is set (and the
// optional trailing extension block therefore must be encoded).
func (o *QueryOptions) distributed() bool {
	return o.Partition != "" || len(o.ForceRules) > 0 || len(o.DisableRules) > 0
}

// QueryMsg is one query submission.
type QueryMsg struct {
	ID   uint64
	SQL  string
	Opts QueryOptions
	// Trace is the client-issued trace ID (zero = untraced / let the
	// server decide). It travels as an optional trailing field: old
	// clients simply omit it and old servers ignore it, in both
	// directions, because decoders never require the payload to be
	// fully consumed.
	Trace trace.ID
}

// putTraceID appends the optional trailing trace-ID field: a presence
// byte followed by the 16 raw ID bytes. A zero ID appends nothing, so
// frames to/from peers that predate tracing are byte-identical.
func putTraceID(e *Enc, id trace.ID) {
	if id.IsZero() {
		return
	}
	e.U8(1)
	e.B = append(e.B, id[:]...)
}

// traceID reads the optional trailing trace-ID field, returning the
// zero ID when the payload ends first (an older peer).
func (d *Dec) traceID() trace.ID {
	var id trace.ID
	if d.Remaining() == 0 {
		return id
	}
	if d.U8() == 1 {
		copy(id[:], d.take(len(id)))
	}
	return id
}

// putStrList appends a count-prefixed string list.
func putStrList(e *Enc, ss []string) {
	e.U32(uint32(len(ss)))
	for _, s := range ss {
		e.Str(s)
	}
}

// strList reads a count-prefixed string list.
func (d *Dec) strList() []string {
	n := d.U32()
	var ss []string
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		ss = append(ss, d.Str())
	}
	return ss
}

// Encode serializes the message as a TypeQuery payload.
func (m *QueryMsg) Encode() []byte {
	var e Enc
	e.U64(m.ID)
	e.Str(m.SQL)
	e.I64(int64(m.Opts.Timeout))
	e.I64(m.Opts.MaxOutputRows)
	e.I64(m.Opts.MaxPartitionBytes)
	e.U32(uint32(m.Opts.DOP))
	if m.Opts.XML {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.Bytes(m.Opts.TagPlan)
	ext := m.Opts.distributed()
	if ext && m.Trace.IsZero() {
		// The trace field is positional: when the extension block
		// follows, an absent trace must still occupy its presence byte.
		e.U8(0)
	}
	putTraceID(&e, m.Trace)
	if ext {
		e.U8(1)
		e.Str(m.Opts.Partition)
		putStrList(&e, m.Opts.ForceRules)
		putStrList(&e, m.Opts.DisableRules)
	}
	return e.B
}

// DecodeQuery parses a TypeQuery payload.
func DecodeQuery(p []byte) (*QueryMsg, error) {
	d := Dec{B: p}
	m := &QueryMsg{ID: d.U64(), SQL: d.Str()}
	m.Opts.Timeout = time.Duration(d.I64())
	m.Opts.MaxOutputRows = d.I64()
	m.Opts.MaxPartitionBytes = d.I64()
	m.Opts.DOP = int32(d.U32())
	m.Opts.XML = d.U8() == 1
	if b := d.BytesRef(); len(b) > 0 {
		m.Opts.TagPlan = append([]byte(nil), b...)
	}
	m.Trace = d.traceID()
	if d.Remaining() > 0 && d.U8() == 1 {
		m.Opts.Partition = d.Str()
		m.Opts.ForceRules = d.strList()
		m.Opts.DisableRules = d.strList()
	}
	return m, d.Err()
}

// EncodeHello builds the client's opening frame payload with the
// default frame limit (byte-identical to the pre-negotiation format).
func EncodeHello() []byte { return EncodeHelloMax(0) }

// EncodeHelloMax builds the client's opening frame payload, proposing
// maxFrame as the session's frame limit. 0 (or DefaultMaxFrame itself)
// keeps the old two-word payload, so peers that predate negotiation
// see exactly the frames they always did.
func EncodeHelloMax(maxFrame int) []byte {
	var e Enc
	e.U32(Magic)
	e.U32(ProtocolVersion)
	if maxFrame > 0 && maxFrame != DefaultMaxFrame {
		e.U32(uint32(maxFrame))
	}
	return e.B
}

// DecodeHello validates a Hello payload and returns the peer's version
// and proposed frame limit (DefaultMaxFrame when the peer predates
// negotiation and omitted the field).
func DecodeHello(p []byte) (version uint32, maxFrame int, err error) {
	d := Dec{B: p}
	magic, version := d.U32(), d.U32()
	maxFrame = DefaultMaxFrame
	if d.Remaining() >= 4 {
		maxFrame = int(d.U32())
	}
	if err := d.Err(); err != nil {
		return 0, 0, err
	}
	if magic != Magic {
		return 0, 0, fmt.Errorf("wire: bad magic %#x", magic)
	}
	return version, maxFrame, nil
}

// EncodeWelcome builds the server's handshake reply with the default
// frame limit (byte-identical to the pre-negotiation format).
func EncodeWelcome(banner string) []byte { return EncodeWelcomeMax(banner, 0) }

// EncodeWelcomeMax builds the server's handshake reply, confirming
// maxFrame as the session's negotiated frame limit. 0 (or
// DefaultMaxFrame) keeps the old payload shape.
func EncodeWelcomeMax(banner string, maxFrame int) []byte {
	var e Enc
	e.U32(ProtocolVersion)
	e.Str(banner)
	if maxFrame > 0 && maxFrame != DefaultMaxFrame {
		e.U32(uint32(maxFrame))
	}
	return e.B
}

// DecodeWelcome parses the handshake reply; maxFrame is the limit the
// server confirmed (DefaultMaxFrame when the server predates
// negotiation and omitted the field).
func DecodeWelcome(p []byte) (version uint32, banner string, maxFrame int, err error) {
	d := Dec{B: p}
	version, banner = d.U32(), d.Str()
	maxFrame = DefaultMaxFrame
	if d.Remaining() >= 4 {
		maxFrame = int(d.U32())
	}
	return version, banner, maxFrame, d.Err()
}

// RowHeaderMsg announces a query's output columns.
type RowHeaderMsg struct {
	ID      uint64
	Columns []string
}

// Encode serializes the header.
func (m *RowHeaderMsg) Encode() []byte {
	var e Enc
	e.U64(m.ID)
	e.U32(uint32(len(m.Columns)))
	for _, c := range m.Columns {
		e.Str(c)
	}
	return e.B
}

// DecodeRowHeader parses a TypeRowHeader payload.
func DecodeRowHeader(p []byte) (*RowHeaderMsg, error) {
	d := Dec{B: p}
	m := &RowHeaderMsg{ID: d.U64()}
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.Columns = append(m.Columns, d.Str())
	}
	return m, d.Err()
}

// EncodeRowBatch serializes rows (each ncols wide) into a TypeRowBatch
// payload.
func EncodeRowBatch(id uint64, ncols int, rows [][]any) ([]byte, error) {
	var e Enc
	e.U64(id)
	e.U32(uint32(ncols))
	e.U32(uint32(len(rows)))
	for _, r := range rows {
		if len(r) != ncols {
			return nil, fmt.Errorf("wire: row has %d columns, batch declares %d", len(r), ncols)
		}
		for _, v := range r {
			if err := PutValue(&e, v); err != nil {
				return nil, err
			}
		}
	}
	return e.B, nil
}

// DecodeRowBatch parses a TypeRowBatch payload.
func DecodeRowBatch(p []byte) (id uint64, rows [][]any, err error) {
	d := Dec{B: p}
	id = d.U64()
	ncols := d.U32()
	nrows := d.U32()
	for i := uint32(0); i < nrows && d.Err() == nil; i++ {
		row := make([]any, ncols)
		for j := range row {
			row[j] = d.Value()
		}
		rows = append(rows, row)
	}
	return id, rows, d.Err()
}

// EncodeChunk serializes an id-tagged byte chunk (XMLChunk payloads).
func EncodeChunk(id uint64, b []byte) []byte {
	var e Enc
	e.U64(id)
	e.Bytes(b)
	return e.B
}

// DecodeChunk parses an id-tagged byte chunk.
func DecodeChunk(p []byte) (uint64, []byte, error) {
	d := Dec{B: p}
	id := d.U64()
	b := d.BytesRef()
	if err := d.Err(); err != nil {
		return 0, nil, err
	}
	return id, append([]byte(nil), b...), nil
}

// EndMsg completes a query: total rows, elapsed execution wall time,
// and the executor's statistics as (name, value) pairs — pairs so a
// newer server can add counters without breaking an older client.
type EndMsg struct {
	ID      uint64
	Rows    int64
	Elapsed time.Duration
	Stats   []StatPair
	// Trace echoes the query's trace ID (client-issued or server-minted;
	// zero = the query was not traced). Optional trailing field.
	Trace trace.ID
}

// StatPair is one named counter in an EndMsg.
type StatPair struct {
	Name  string
	Value int64
}

// Encode serializes the completion message.
func (m *EndMsg) Encode() []byte {
	var e Enc
	e.U64(m.ID)
	e.I64(m.Rows)
	e.I64(int64(m.Elapsed))
	e.U32(uint32(len(m.Stats)))
	for _, s := range m.Stats {
		e.Str(s.Name)
		e.I64(s.Value)
	}
	putTraceID(&e, m.Trace)
	return e.B
}

// DecodeEnd parses a TypeEnd payload.
func DecodeEnd(p []byte) (*EndMsg, error) {
	d := Dec{B: p}
	m := &EndMsg{ID: d.U64(), Rows: d.I64(), Elapsed: time.Duration(d.I64())}
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.Stats = append(m.Stats, StatPair{Name: d.Str(), Value: d.I64()})
	}
	m.Trace = d.traceID()
	return m, d.Err()
}

// Error codes carried by TypeError frames. The client maps Cancelled
// and Timeout back onto context.Canceled / context.DeadlineExceeded so
// remote errors satisfy the same errors.Is checks as embedded ones.
const (
	CodeParse     = "parse"         // statement failed to parse/bind
	CodeResource  = "resource"      // budget exceeded (ResourceError)
	CodeCancelled = "cancelled"     // cancelled by client or teardown
	CodeTimeout   = "timeout"       // deadline exceeded
	CodeBusy      = "busy"          // admission queue full, fast-rejected
	CodeShutdown  = "shutdown"      // server draining, no new queries
	CodeSession   = "session-limit" // per-session in-flight cap reached
	CodeProtocol  = "protocol"      // malformed frame or bad handshake
	CodeShard     = "shard"         // a distributed query's shard failed
	CodeInternal  = "internal"      // anything else
)

// ErrorMsg reports a failed query (or Set/handshake violation).
type ErrorMsg struct {
	ID      uint64
	Code    string
	Message string
	// Trace echoes the failed query's trace ID when it was traced, so an
	// error can still be attributed in the flight recorder. Optional
	// trailing field.
	Trace trace.ID
}

// Encode serializes the error.
func (m *ErrorMsg) Encode() []byte {
	var e Enc
	e.U64(m.ID)
	e.Str(m.Code)
	e.Str(m.Message)
	putTraceID(&e, m.Trace)
	return e.B
}

// DecodeError parses a TypeError payload.
func DecodeError(p []byte) (*ErrorMsg, error) {
	d := Dec{B: p}
	m := &ErrorMsg{ID: d.U64(), Code: d.Str(), Message: d.Str()}
	m.Trace = d.traceID()
	return m, d.Err()
}

// EncodeID serializes the single-id payloads (Cancel, Ping, Pong, OK).
func EncodeID(id uint64) []byte {
	var e Enc
	e.U64(id)
	return e.B
}

// DecodeID parses a single-id payload.
func DecodeID(p []byte) (uint64, error) {
	d := Dec{B: p}
	id := d.U64()
	return id, d.Err()
}

// SetMsg sets one session-scoped option.
type SetMsg struct {
	ID    uint64
	Name  string
	Value string
}

// Encode serializes the option update.
func (m *SetMsg) Encode() []byte {
	var e Enc
	e.U64(m.ID)
	e.Str(m.Name)
	e.Str(m.Value)
	return e.B
}

// DecodeSet parses a TypeSet payload.
func DecodeSet(p []byte) (*SetMsg, error) {
	d := Dec{B: p}
	m := &SetMsg{ID: d.U64(), Name: d.Str(), Value: d.Str()}
	return m, d.Err()
}
