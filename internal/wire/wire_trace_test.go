package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"gapplydb/internal/trace"
)

func testTraceID() trace.ID {
	var id trace.ID
	for i := range id {
		id[i] = byte(i + 1)
	}
	return id
}

func TestQueryMsgTraceRoundTrip(t *testing.T) {
	m := &QueryMsg{ID: 7, SQL: "select 1", Trace: testTraceID()}
	got, err := DecodeQuery(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v, want %+v", got, m)
	}
	if got.Trace.IsZero() {
		t.Fatal("trace ID lost in round trip")
	}
}

func TestEndAndErrorTraceRoundTrip(t *testing.T) {
	id := testTraceID()
	e := &EndMsg{ID: 3, Rows: 9, Elapsed: time.Millisecond,
		Stats: []StatPair{{"rows_scanned", 5}}, Trace: id}
	ge, err := DecodeEnd(e.Encode())
	if err != nil || !reflect.DeepEqual(ge, e) {
		t.Fatalf("end: %+v err=%v", ge, err)
	}
	em := &ErrorMsg{ID: 3, Code: CodeTimeout, Message: "deadline", Trace: id}
	gem, err := DecodeError(em.Encode())
	if err != nil || !reflect.DeepEqual(gem, em) {
		t.Fatalf("error: %+v err=%v", gem, err)
	}
}

// TestTraceFieldAbsentCompat pins both compatibility directions: a
// zero-trace encode is byte-identical to the pre-tracing format (an old
// server sees exactly the frames an old client sent), and a new decoder
// accepts payloads that end before the optional field (an old client
// against a new server).
func TestTraceFieldAbsentCompat(t *testing.T) {
	// Old-format Query payload, hand-built field by field.
	var e Enc
	e.U64(42)
	e.Str("select 1")
	e.I64(int64(time.Second))
	e.I64(10)
	e.I64(1 << 20)
	e.U32(8)
	e.U8(0)
	e.Bytes(nil)
	oldQuery := e.B

	m := &QueryMsg{ID: 42, SQL: "select 1",
		Opts: QueryOptions{Timeout: time.Second, MaxOutputRows: 10, MaxPartitionBytes: 1 << 20, DOP: 8}}
	if !bytes.Equal(m.Encode(), oldQuery) {
		t.Fatal("zero-trace Query encode differs from pre-tracing format")
	}
	got, err := DecodeQuery(oldQuery)
	if err != nil {
		t.Fatalf("old-format Query rejected: %v", err)
	}
	if !got.Trace.IsZero() {
		t.Fatalf("old-format Query decoded with trace %s", got.Trace)
	}

	// Same for End and Error.
	var ee Enc
	ee.U64(3)
	ee.I64(100)
	ee.I64(int64(time.Second))
	ee.U32(0)
	end := &EndMsg{ID: 3, Rows: 100, Elapsed: time.Second}
	if !bytes.Equal(end.Encode(), ee.B) {
		t.Fatal("zero-trace End encode differs from pre-tracing format")
	}
	ge, err := DecodeEnd(ee.B)
	if err != nil || !ge.Trace.IsZero() {
		t.Fatalf("old-format End: %+v err=%v", ge, err)
	}

	var er Enc
	er.U64(3)
	er.Str(CodeBusy)
	er.Str("queue full")
	errm := &ErrorMsg{ID: 3, Code: CodeBusy, Message: "queue full"}
	if !bytes.Equal(errm.Encode(), er.B) {
		t.Fatal("zero-trace Error encode differs from pre-tracing format")
	}
	gem, err := DecodeError(er.B)
	if err != nil || !gem.Trace.IsZero() {
		t.Fatalf("old-format Error: %+v err=%v", gem, err)
	}
}

func TestTraceFieldTruncationRejected(t *testing.T) {
	m := &QueryMsg{ID: 1, SQL: "q", Trace: testTraceID()}
	full := m.Encode()
	base := len(full) - 17 // presence byte + 16 ID bytes
	for cut := base + 1; cut < len(full); cut++ {
		if _, err := DecodeQuery(full[:cut]); err == nil {
			t.Fatalf("truncated trace field at %d accepted", cut)
		}
	}
	// Presence byte 0: field explicitly absent, no ID bytes follow.
	explicit := append(append([]byte(nil), full[:base]...), 0)
	got, err := DecodeQuery(explicit)
	if err != nil {
		t.Fatalf("presence=0 rejected: %v", err)
	}
	if !got.Trace.IsZero() {
		t.Fatal("presence=0 decoded a trace ID")
	}
}

// FuzzDecodeTraced exercises the trace-carrying decoders with arbitrary
// payloads — they must never panic, and whatever decodes must re-encode
// to something that decodes identically.
func FuzzDecodeTraced(f *testing.F) {
	f.Add((&QueryMsg{ID: 1, SQL: "select 1", Trace: testTraceID()}).Encode())
	f.Add((&EndMsg{ID: 2, Rows: 5, Trace: testTraceID()}).Encode())
	f.Add((&ErrorMsg{ID: 3, Code: CodeInternal, Message: "x", Trace: testTraceID()}).Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		if m, err := DecodeQuery(p); err == nil {
			m2, err2 := DecodeQuery(m.Encode())
			if err2 != nil || m2.Trace != m.Trace || m2.SQL != m.SQL {
				t.Fatalf("Query re-decode mismatch: %+v vs %+v (%v)", m, m2, err2)
			}
		}
		if m, err := DecodeEnd(p); err == nil {
			m2, err2 := DecodeEnd(m.Encode())
			if err2 != nil || m2.Trace != m.Trace || m2.Rows != m.Rows {
				t.Fatalf("End re-decode mismatch: %+v vs %+v (%v)", m, m2, err2)
			}
		}
		if m, err := DecodeError(p); err == nil {
			m2, err2 := DecodeError(m.Encode())
			if err2 != nil || m2.Trace != m.Trace || m2.Code != m.Code {
				t.Fatalf("Error re-decode mismatch: %+v vs %+v (%v)", m, m2, err2)
			}
		}
	})
}
