package tpch

import (
	"fmt"

	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// Sharded loading. A shard holds a horizontal slice of the TPC-H data
// set: the large fact tables are hash-partitioned on the column the
// distributed GApply workload groups or joins them by, and the small
// dimension tables are replicated ("broadcast") to every shard, so a
// shard-local query over fact ⋈ dimension needs no data movement.
//
// The loader generates the exact same deterministic row stream as the
// unsharded Load and simply skips rows another shard owns. That detail
// carries the distributed engine's byte-identity proof: each shard's
// heap order is the global heap order restricted to the shard's rows,
// so any operator tree that preserves "restriction of the global
// stream" per shard can be re-merged into exactly the single-node
// output by an ordered gather on a partition-key column.

// fnvOffset is the FNV-1a offset basis, the seed ShardOf hashes from.
const fnvOffset = 14695981039346656037

// PartitionColumns maps each hash-partitioned table to its partition
// column. Tables absent from the map (region, nation, supplier,
// customer, part) are broadcast: every shard holds a full copy.
//
// The partition columns follow the publishing workload: partsupp is
// grouped and ordered by supplier (the paper's Figure 8 queries),
// lineitem nests under its order, and orders nest under their customer.
func PartitionColumns() map[string]string {
	return map[string]string{
		"partsupp": "ps_suppkey",
		"lineitem": "l_orderkey",
		"orders":   "o_custkey",
	}
}

// partitionOrds gives the ordinal of each partition column in the
// generator's table schemas (kept in sync with the Create calls in
// gen.go; the shard tests assert the correspondence).
var partitionOrds = map[string]int{
	"partsupp": 1, // ps_suppkey
	"lineitem": 0, // l_orderkey
	"orders":   1, // o_custkey
}

// ShardOf maps a partition-key value to its owning shard in [0,
// totalShards). The mapping hashes the value's canonical image (the
// same one the engine's hash partitioner uses), so INT 5 and FLOAT 5.0
// land on the same shard.
func ShardOf(v types.Value, totalShards int) int {
	if totalShards <= 1 {
		return 0
	}
	return int(v.Hash(fnvOffset) % uint64(totalShards))
}

// LoadShard populates the catalog with shard `shard` of a
// totalShards-way partitioned TPC-H load at the given scale factor:
// broadcast tables in full, partitioned tables restricted to the rows
// ShardOf assigns to this shard, in exactly the global generation
// order. LoadShard(cat, sf, 0, 1) is identical to Load(cat, sf).
func LoadShard(cat *storage.Catalog, sf float64, shard, totalShards int) error {
	if totalShards < 1 {
		return fmt.Errorf("tpch: totalShards must be >= 1 (got %d)", totalShards)
	}
	if shard < 0 || shard >= totalShards {
		return fmt.Errorf("tpch: shard %d out of range [0,%d)", shard, totalShards)
	}
	keep := func(table string, row types.Row) bool {
		ord, ok := partitionOrds[table]
		if !ok || totalShards == 1 {
			return true
		}
		return ShardOf(row[ord], totalShards) == shard
	}
	return load(cat, sf, keep)
}
