package tpch

import (
	"testing"

	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

func loadTiny(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	if err := Load(cat, 0.001); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestSizesFor(t *testing.T) {
	s := SizesFor(1)
	if s.Suppliers != 10_000 || s.Parts != 200_000 || s.PartSupps != 800_000 {
		t.Errorf("SF=1 sizes: %+v", s)
	}
	tiny := SizesFor(0)
	if tiny.Suppliers < 1 || tiny.Parts < 1 || tiny.Orders < 1 {
		t.Errorf("SF=0 must still give ≥1 row per table: %+v", tiny)
	}
	if SizesFor(0.001).Suppliers != 10 {
		t.Errorf("SF=0.001 suppliers = %d", SizesFor(0.001).Suppliers)
	}
}

func TestLoadCreatesAllTables(t *testing.T) {
	cat := loadTiny(t)
	want := []string{"customer", "lineitem", "nation", "orders", "part", "partsupp", "region", "supplier"}
	got := cat.Names()
	if len(got) != len(want) {
		t.Fatalf("tables = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("table %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCardinalities(t *testing.T) {
	cat := loadTiny(t)
	sz := SizesFor(0.001)
	check := func(name string, want int) {
		t.Helper()
		tab, err := cat.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if tab.Cardinality() != want {
			t.Errorf("%s cardinality = %d, want %d", name, tab.Cardinality(), want)
		}
	}
	check("supplier", sz.Suppliers)
	check("part", sz.Parts)
	check("partsupp", sz.PartSupps)
	check("customer", sz.Customers)
	check("orders", sz.Orders)
	check("region", 5)
	check("nation", 25)
	li, _ := cat.Lookup("lineitem")
	if li.Cardinality() < sz.Orders {
		t.Errorf("lineitem must have ≥1 line per order, got %d", li.Cardinality())
	}
}

func TestDeterminism(t *testing.T) {
	a := storage.NewCatalog()
	b := storage.NewCatalog()
	if err := Load(a, 0.001); err != nil {
		t.Fatal(err)
	}
	if err := Load(b, 0.001); err != nil {
		t.Fatal(err)
	}
	for _, name := range a.Names() {
		ta, _ := a.Lookup(name)
		tb, _ := b.Lookup(name)
		if ta.Cardinality() != tb.Cardinality() {
			t.Fatalf("%s cardinalities differ", name)
		}
		for i := range ta.Rows {
			if !ta.Rows[i].Identical(tb.Rows[i]) {
				t.Fatalf("%s row %d differs: %v vs %v", name, i, ta.Rows[i], tb.Rows[i])
			}
		}
	}
}

func TestReferentialIntegrity(t *testing.T) {
	cat := loadTiny(t)
	keys := func(table string, col int) map[int64]bool {
		tab, _ := cat.Lookup(table)
		m := make(map[int64]bool, len(tab.Rows))
		for _, r := range tab.Rows {
			m[r[col].Int()] = true
		}
		return m
	}
	suppliers := keys("supplier", 0)
	parts := keys("part", 0)
	ps, _ := cat.Lookup("partsupp")
	for _, r := range ps.Rows {
		if !parts[r[0].Int()] {
			t.Fatalf("partsupp references missing part %d", r[0].Int())
		}
		if !suppliers[r[1].Int()] {
			t.Fatalf("partsupp references missing supplier %d", r[1].Int())
		}
	}
	customers := keys("customer", 0)
	ord, _ := cat.Lookup("orders")
	for _, r := range ord.Rows {
		if !customers[r[1].Int()] {
			t.Fatalf("orders references missing customer %d", r[1].Int())
		}
	}
	orders := keys("orders", 0)
	li, _ := cat.Lookup("lineitem")
	for _, r := range li.Rows {
		if !orders[r[0].Int()] {
			t.Fatalf("lineitem references missing order %d", r[0].Int())
		}
		if !parts[r[1].Int()] || !suppliers[r[2].Int()] {
			t.Fatalf("lineitem references missing part/supplier")
		}
	}
}

func TestPartsuppDistinctSuppliersPerPart(t *testing.T) {
	cat := loadTiny(t)
	ps, _ := cat.Lookup("partsupp")
	seen := make(map[[2]int64]bool)
	for _, r := range ps.Rows {
		k := [2]int64{r[0].Int(), r[1].Int()}
		if seen[k] {
			t.Fatalf("duplicate (part, supplier) pair %v violates partsupp PK", k)
		}
		seen[k] = true
	}
}

func TestEverySupplierSuppliesSomething(t *testing.T) {
	// The paper's queries group partsupp⋈part by ps_suppkey; the shape of
	// the experiments requires all suppliers to have nonempty groups.
	cat := loadTiny(t)
	ps, _ := cat.Lookup("partsupp")
	supplied := make(map[int64]bool)
	for _, r := range ps.Rows {
		supplied[r[1].Int()] = true
	}
	sup, _ := cat.Lookup("supplier")
	missing := 0
	for _, r := range sup.Rows {
		if !supplied[r[0].Int()] {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d of %d suppliers supply no parts", missing, sup.Cardinality())
	}
}

func TestValueDomains(t *testing.T) {
	cat := loadTiny(t)
	part, _ := cat.Lookup("part")
	for _, r := range part.Rows {
		if p := r[4].Float(); p < 900 || p > 2101 {
			t.Fatalf("p_retailprice %v outside dbgen's domain", p)
		}
		if s := r[3].Int(); s < 1 || s > 50 {
			t.Fatalf("p_size %v outside 1..50", s)
		}
		brand := r[2].Str()
		if len(brand) != 8 || brand[:6] != "Brand#" {
			t.Fatalf("p_brand %q malformed", brand)
		}
	}
	li, _ := cat.Lookup("lineitem")
	for _, r := range li.Rows {
		if q := r[4].Int(); q < 1 || q > 50 {
			t.Fatalf("l_quantity %v outside 1..50", q)
		}
		if d := r[6].Float(); d < 0 || d > 0.10 {
			t.Fatalf("l_discount %v outside 0..0.10", d)
		}
	}
}

func TestBrandSelectivity(t *testing.T) {
	// 25 brands ⇒ each selects ≈4%; the covering-range rule benchmarks
	// depend on brand predicates being selective.
	cat := storage.NewCatalog()
	if err := Load(cat, 0.005); err != nil {
		t.Fatal(err)
	}
	part, _ := cat.Lookup("part")
	counts := make(map[string]int)
	for _, r := range part.Rows {
		counts[r[2].Str()]++
	}
	if len(counts) != 25 {
		t.Fatalf("expected 25 brands, got %d", len(counts))
	}
	n := part.Cardinality()
	for b, c := range counts {
		frac := float64(c) / float64(n)
		if frac > 0.12 {
			t.Errorf("brand %s covers %.0f%% of parts — too coarse", b, frac*100)
		}
	}
}

func TestLoadTwiceFails(t *testing.T) {
	cat := loadTiny(t)
	if err := Load(cat, 0.001); err == nil {
		t.Error("loading into a populated catalog must fail on duplicate tables")
	}
}

func TestRNGStability(t *testing.T) {
	// Pin the first few outputs so accidental generator changes that would
	// invalidate recorded experiment numbers are caught.
	r := newRNG(101)
	got := []uint64{r.next(), r.next(), r.next()}
	r2 := newRNG(101)
	want := []uint64{r2.next(), r2.next(), r2.next()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("rng must be deterministic")
		}
	}
	r3 := newRNG(1)
	if r3.intn(0) != 0 {
		t.Error("intn(0) must be 0")
	}
	for i := 0; i < 1000; i++ {
		v := r3.rangeInt(5, 10)
		if v < 5 || v > 10 {
			t.Fatalf("rangeInt out of range: %d", v)
		}
		f := r3.float()
		if f < 0 || f >= 1 {
			t.Fatalf("float out of range: %v", f)
		}
	}
}

func TestPartPriceFormula(t *testing.T) {
	if got := partPrice(1); got != float64(90000+0+100)/100 {
		t.Errorf("partPrice(1) = %v", got)
	}
	// Prices must vary within any thousand-part window (Q3's max/min spread).
	lo, hi := partPrice(1), partPrice(1)
	for k := int64(1); k <= 1000; k++ {
		p := partPrice(k)
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if hi-lo < 100 {
		t.Errorf("price spread %v too small for max/min benchmarks", hi-lo)
	}
}

var sinkCatalog *storage.Catalog

func BenchmarkLoadSF001(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cat := storage.NewCatalog()
		if err := Load(cat, 0.01); err != nil {
			b.Fatal(err)
		}
		sinkCatalog = cat
	}
}

func TestRowTypesMatchSchema(t *testing.T) {
	cat := loadTiny(t)
	for _, name := range cat.Names() {
		tab, _ := cat.Lookup(name)
		for _, r := range tab.Rows {
			for i, v := range r {
				want := tab.Def.Schema.Cols[i].Type
				if v.IsNull() {
					continue
				}
				if v.K != want && !(v.K.Numeric() && want.Numeric()) {
					t.Fatalf("%s col %d: kind %v, schema says %v", name, i, v.K, want)
				}
				_ = types.Row{v} // exercise the row alias
			}
		}
	}
}
