// Package tpch is a deterministic, laptop-scale TPC-H-style data
// generator. The paper evaluates on the 5 GB TPC-H database; we generate
// the same schema shape (keys, foreign keys, value distributions close in
// spirit to dbgen's) at a configurable scale factor so the benchmark
// harness can reproduce the paper's ratios without the authors' testbed.
//
// Determinism matters: every run with the same scale factor produces the
// same rows, so benchmark series and test expectations are stable.
package tpch

import (
	"fmt"

	"gapplydb/internal/schema"
	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// rng is a splitmix64 generator: tiny, fast, deterministic across
// platforms — no dependence on math/rand ordering guarantees.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// rangeInt returns a uniform value in [lo, hi].
func (r *rng) rangeInt(lo, hi int64) int64 { return lo + r.intn(hi-lo+1) }

// float returns a uniform float in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// Base cardinalities at scale factor 1.0 (true TPC-H values). The
// generator scales them linearly, except nation and region which are
// fixed by the spec.
const (
	baseSuppliers    = 10_000
	basePfarts       = 0 // placeholder to keep the constant block aligned
	baseParts        = 200_000
	baseCustomers    = 150_000
	baseOrders       = 1_500_000
	suppsPerPart     = 4 // partsupp has 4 suppliers per part
	maxLinesPerOrder = 7
)

var nations = []struct {
	name   string
	region int64
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1}, {"EGYPT", 4},
	{"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3}, {"INDIA", 2}, {"INDONESIA", 2},
	{"IRAN", 4}, {"IRAQ", 4}, {"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0},
	{"MOROCCO", 0}, {"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var partAdjectives = []string{"spring", "burnished", "floral", "chartreuse", "antique", "polished", "smoke", "lavender", "frosted", "plated"}
var partNouns = []string{"brass", "copper", "steel", "nickel", "tin", "linen", "cotton", "silk", "wool", "pine"}

// Sizes generates how many rows each table gets at scale factor sf.
type Sizes struct {
	Suppliers int
	Parts     int
	PartSupps int
	Customers int
	Orders    int
}

// SizesFor computes table cardinalities for a scale factor. Every table
// gets at least one row so tiny test scale factors still exercise joins.
func SizesFor(sf float64) Sizes {
	n := func(base int) int {
		v := int(float64(base) * sf)
		if v < 1 {
			v = 1
		}
		return v
	}
	s := Sizes{
		Suppliers: n(baseSuppliers),
		Parts:     n(baseParts),
		Customers: n(baseCustomers),
		Orders:    n(baseOrders),
	}
	s.PartSupps = s.Parts * suppsPerPart
	return s
}

// Load creates and populates the eight TPC-H tables in the catalog at the
// given scale factor. It is the single entry point used by the engine's
// LoadTPCH, the examples and the benchmark harness.
func Load(cat *storage.Catalog, sf float64) error {
	return load(cat, sf, keepAll)
}

// keepFunc decides whether a generated row is stored. The generator
// always draws the full deterministic row stream and applies keep only
// at the Append, so a filtered load (a shard) sees the exact global
// generation order restricted to its rows.
type keepFunc func(table string, row types.Row) bool

func keepAll(string, types.Row) bool { return true }

func load(cat *storage.Catalog, sf float64, keep keepFunc) error {
	sz := SizesFor(sf)
	if err := loadRegion(cat); err != nil {
		return err
	}
	if err := loadNation(cat); err != nil {
		return err
	}
	if err := loadSupplier(cat, sz); err != nil {
		return err
	}
	if err := loadPart(cat, sz); err != nil {
		return err
	}
	if err := loadPartSupp(cat, sz, keep); err != nil {
		return err
	}
	if err := loadCustomer(cat, sz); err != nil {
		return err
	}
	if err := loadOrders(cat, sz, keep); err != nil {
		return err
	}
	return loadLineitem(cat, sz, keep)
}

func col(name string, k types.Kind) schema.Column { return schema.Column{Name: name, Type: k} }

func loadRegion(cat *storage.Catalog) error {
	t, err := cat.Create(&schema.TableDef{
		Name:       "region",
		Schema:     schema.New(col("r_regionkey", types.KindInt), col("r_name", types.KindString)),
		PrimaryKey: []string{"r_regionkey"},
	})
	if err != nil {
		return err
	}
	for i, name := range regions {
		if err := t.Append(types.Row{types.NewInt(int64(i)), types.NewString(name)}); err != nil {
			return err
		}
	}
	return nil
}

func loadNation(cat *storage.Catalog) error {
	t, err := cat.Create(&schema.TableDef{
		Name: "nation",
		Schema: schema.New(
			col("n_nationkey", types.KindInt),
			col("n_name", types.KindString),
			col("n_regionkey", types.KindInt),
		),
		PrimaryKey: []string{"n_nationkey"},
		ForeignKeys: []schema.ForeignKey{
			{Cols: []string{"n_regionkey"}, RefTable: "region", RefCols: []string{"r_regionkey"}},
		},
	})
	if err != nil {
		return err
	}
	for i, n := range nations {
		if err := t.Append(types.Row{types.NewInt(int64(i)), types.NewString(n.name), types.NewInt(n.region)}); err != nil {
			return err
		}
	}
	return nil
}

func loadSupplier(cat *storage.Catalog, sz Sizes) error {
	t, err := cat.Create(&schema.TableDef{
		Name: "supplier",
		Schema: schema.New(
			col("s_suppkey", types.KindInt),
			col("s_name", types.KindString),
			col("s_nationkey", types.KindInt),
			col("s_acctbal", types.KindFloat),
		),
		PrimaryKey: []string{"s_suppkey"},
		ForeignKeys: []schema.ForeignKey{
			{Cols: []string{"s_nationkey"}, RefTable: "nation", RefCols: []string{"n_nationkey"}},
		},
	})
	if err != nil {
		return err
	}
	r := newRNG(101)
	for i := 1; i <= sz.Suppliers; i++ {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Supplier#%09d", i)),
			types.NewInt(r.intn(int64(len(nations)))),
			types.NewFloat(float64(r.rangeInt(-99999, 999999)) / 100),
		}
		if err := t.Append(row); err != nil {
			return err
		}
	}
	return nil
}

// partBrand mirrors dbgen's Brand#MN naming (M, N in 1..5), giving 25
// brands — the covering-range benchmarks select on these.
func partBrand(r *rng) string {
	return fmt.Sprintf("Brand#%d%d", r.rangeInt(1, 5), r.rangeInt(1, 5))
}

// partPrice mirrors dbgen's retail price polynomial so prices spread over
// roughly 900..2100 with partkey-correlated structure.
func partPrice(key int64) float64 {
	return float64(90000+((key/10)%20001)+100*(key%1000)) / 100
}

func loadPart(cat *storage.Catalog, sz Sizes) error {
	t, err := cat.Create(&schema.TableDef{
		Name: "part",
		Schema: schema.New(
			col("p_partkey", types.KindInt),
			col("p_name", types.KindString),
			col("p_brand", types.KindString),
			col("p_size", types.KindInt),
			col("p_retailprice", types.KindFloat),
		),
		PrimaryKey: []string{"p_partkey"},
	})
	if err != nil {
		return err
	}
	r := newRNG(202)
	for i := 1; i <= sz.Parts; i++ {
		name := partAdjectives[r.intn(int64(len(partAdjectives)))] + " " + partNouns[r.intn(int64(len(partNouns)))]
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewString(name),
			types.NewString(partBrand(r)),
			types.NewInt(r.rangeInt(1, 50)),
			types.NewFloat(partPrice(int64(i))),
		}
		if err := t.Append(row); err != nil {
			return err
		}
	}
	return nil
}

func loadPartSupp(cat *storage.Catalog, sz Sizes, keep keepFunc) error {
	t, err := cat.Create(&schema.TableDef{
		Name: "partsupp",
		Schema: schema.New(
			col("ps_partkey", types.KindInt),
			col("ps_suppkey", types.KindInt),
			col("ps_availqty", types.KindInt),
			col("ps_supplycost", types.KindFloat),
		),
		PrimaryKey: []string{"ps_partkey", "ps_suppkey"},
		ForeignKeys: []schema.ForeignKey{
			{Cols: []string{"ps_partkey"}, RefTable: "part", RefCols: []string{"p_partkey"}},
			{Cols: []string{"ps_suppkey"}, RefTable: "supplier", RefCols: []string{"s_suppkey"}},
		},
	})
	if err != nil {
		return err
	}
	r := newRNG(303)
	s := int64(sz.Suppliers)
	for p := int64(1); p <= int64(sz.Parts); p++ {
		for i := int64(0); i < suppsPerPart; i++ {
			// Deterministic supplier spread: each part takes 4 consecutive
			// suppliers starting at a part-dependent offset, so pairs are
			// distinct whenever there are ≥4 suppliers and coverage of the
			// supplier domain is uniform.
			supp := ((p-1)*suppsPerPart+i)%s + 1
			row := types.Row{
				types.NewInt(p),
				types.NewInt(supp),
				types.NewInt(r.rangeInt(1, 9999)),
				types.NewFloat(float64(r.rangeInt(100, 100000)) / 100),
			}
			if !keep("partsupp", row) {
				continue
			}
			if err := t.Append(row); err != nil {
				return err
			}
		}
	}
	return nil
}

func loadCustomer(cat *storage.Catalog, sz Sizes) error {
	t, err := cat.Create(&schema.TableDef{
		Name: "customer",
		Schema: schema.New(
			col("c_custkey", types.KindInt),
			col("c_name", types.KindString),
			col("c_nationkey", types.KindInt),
			col("c_acctbal", types.KindFloat),
			col("c_mktsegment", types.KindString),
		),
		PrimaryKey: []string{"c_custkey"},
		ForeignKeys: []schema.ForeignKey{
			{Cols: []string{"c_nationkey"}, RefTable: "nation", RefCols: []string{"n_nationkey"}},
		},
	})
	if err != nil {
		return err
	}
	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	r := newRNG(404)
	for i := 1; i <= sz.Customers; i++ {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Customer#%09d", i)),
			types.NewInt(r.intn(int64(len(nations)))),
			types.NewFloat(float64(r.rangeInt(-99999, 999999)) / 100),
			types.NewString(segments[r.intn(int64(len(segments)))]),
		}
		if err := t.Append(row); err != nil {
			return err
		}
	}
	return nil
}

func loadOrders(cat *storage.Catalog, sz Sizes, keep keepFunc) error {
	t, err := cat.Create(&schema.TableDef{
		Name: "orders",
		Schema: schema.New(
			col("o_orderkey", types.KindInt),
			col("o_custkey", types.KindInt),
			col("o_orderstatus", types.KindString),
			col("o_totalprice", types.KindFloat),
			col("o_orderdate", types.KindDate),
		),
		PrimaryKey: []string{"o_orderkey"},
		ForeignKeys: []schema.ForeignKey{
			{Cols: []string{"o_custkey"}, RefTable: "customer", RefCols: []string{"c_custkey"}},
		},
	})
	if err != nil {
		return err
	}
	statuses := []string{"O", "F", "P"}
	r := newRNG(505)
	for i := 1; i <= sz.Orders; i++ {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewInt(r.rangeInt(1, int64(sz.Customers))),
			types.NewString(statuses[r.intn(3)]),
			types.NewFloat(float64(r.rangeInt(90000, 50000000)) / 100),
			types.NewDate(r.rangeInt(8035, 10591)), // 1992-01-01 .. 1998-12-31 as day numbers
		}
		if !keep("orders", row) {
			continue
		}
		if err := t.Append(row); err != nil {
			return err
		}
	}
	return nil
}

func loadLineitem(cat *storage.Catalog, sz Sizes, keep keepFunc) error {
	t, err := cat.Create(&schema.TableDef{
		Name: "lineitem",
		Schema: schema.New(
			col("l_orderkey", types.KindInt),
			col("l_partkey", types.KindInt),
			col("l_suppkey", types.KindInt),
			col("l_linenumber", types.KindInt),
			col("l_quantity", types.KindInt),
			col("l_extendedprice", types.KindFloat),
			col("l_discount", types.KindFloat),
		),
		PrimaryKey: []string{"l_orderkey", "l_linenumber"},
		ForeignKeys: []schema.ForeignKey{
			{Cols: []string{"l_orderkey"}, RefTable: "orders", RefCols: []string{"o_orderkey"}},
			{Cols: []string{"l_partkey"}, RefTable: "part", RefCols: []string{"p_partkey"}},
			{Cols: []string{"l_suppkey"}, RefTable: "supplier", RefCols: []string{"s_suppkey"}},
		},
	})
	if err != nil {
		return err
	}
	r := newRNG(606)
	for o := int64(1); o <= int64(sz.Orders); o++ {
		lines := r.rangeInt(1, maxLinesPerOrder)
		for l := int64(1); l <= lines; l++ {
			part := r.rangeInt(1, int64(sz.Parts))
			qty := r.rangeInt(1, 50)
			row := types.Row{
				types.NewInt(o),
				types.NewInt(part),
				types.NewInt(r.rangeInt(1, int64(sz.Suppliers))),
				types.NewInt(l),
				types.NewInt(qty),
				types.NewFloat(partPrice(part) * float64(qty)),
				types.NewFloat(float64(r.rangeInt(0, 10)) / 100),
			}
			if !keep("lineitem", row) {
				continue
			}
			if err := t.Append(row); err != nil {
				return err
			}
		}
	}
	return nil
}
