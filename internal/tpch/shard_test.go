package tpch

import (
	"testing"

	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

func loadFull(t *testing.T, sf float64) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	if err := Load(cat, sf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	return cat
}

func loadOneShard(t *testing.T, sf float64, shard, total int) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	if err := LoadShard(cat, sf, shard, total); err != nil {
		t.Fatalf("LoadShard(%d/%d): %v", shard, total, err)
	}
	return cat
}

func tableRows(t *testing.T, cat *storage.Catalog, name string) []types.Row {
	t.Helper()
	tab, err := cat.Lookup(name)
	if err != nil {
		t.Fatalf("Lookup(%s): %v", name, err)
	}
	return tab.Rows
}

// TestPartitionOrdsMatchSchema pins the hand-maintained ordinal map to
// the generator's actual schemas.
func TestPartitionOrdsMatchSchema(t *testing.T) {
	cat := loadFull(t, 0.001)
	for table, colName := range PartitionColumns() {
		tab, err := cat.Lookup(table)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", table, err)
		}
		ord := -1
		for i, c := range tab.Def.Schema.Cols {
			if c.Name == colName {
				ord = i
				break
			}
		}
		if ord != partitionOrds[table] {
			t.Errorf("%s: partition col %s at ordinal %d, partitionOrds says %d",
				table, colName, ord, partitionOrds[table])
		}
	}
}

// TestShardsPartitionAndCover verifies the core restriction property:
// each partitioned table's shard slices are disjoint, owned by ShardOf,
// and interleave back into exactly the global generation order.
func TestShardsPartitionAndCover(t *testing.T) {
	const sf = 0.001
	const total = 3
	full := loadFull(t, sf)
	shards := make([]*storage.Catalog, total)
	for i := range shards {
		shards[i] = loadOneShard(t, sf, i, total)
	}

	for table, ord := range partitionOrds {
		global := tableRows(t, full, table)
		cursors := make([][]types.Row, total)
		for i, sc := range shards {
			cursors[i] = tableRows(t, sc, table)
		}
		// Walk the global stream; each row must be the next row of
		// exactly the shard ShardOf assigns it to.
		pos := make([]int, total)
		for gi, row := range global {
			owner := ShardOf(row[ord], total)
			if pos[owner] >= len(cursors[owner]) {
				t.Fatalf("%s: global row %d owner shard %d exhausted early", table, gi, owner)
			}
			got := cursors[owner][pos[owner]]
			if !rowsEqual(got, row) {
				t.Fatalf("%s: global row %d != shard %d row %d", table, gi, owner, pos[owner])
			}
			pos[owner]++
		}
		for i := range pos {
			if pos[i] != len(cursors[i]) {
				t.Fatalf("%s: shard %d has %d extra rows", table, i, len(cursors[i])-pos[i])
			}
		}
	}
}

// TestBroadcastTablesReplicated checks dimension tables are full copies
// on every shard.
func TestBroadcastTablesReplicated(t *testing.T) {
	const sf = 0.001
	full := loadFull(t, sf)
	shard := loadOneShard(t, sf, 1, 3)
	for _, table := range []string{"region", "nation", "supplier", "customer", "part"} {
		g := tableRows(t, full, table)
		s := tableRows(t, shard, table)
		if len(g) != len(s) {
			t.Fatalf("%s: full %d rows, shard copy %d rows", table, len(g), len(s))
		}
		for i := range g {
			if !rowsEqual(g[i], s[i]) {
				t.Fatalf("%s: row %d differs between full load and shard copy", table, i)
			}
		}
	}
}

// TestSingleShardIdentical pins LoadShard(cat, sf, 0, 1) == Load(cat, sf).
func TestSingleShardIdentical(t *testing.T) {
	const sf = 0.001
	full := loadFull(t, sf)
	one := loadOneShard(t, sf, 0, 1)
	for table := range partitionOrds {
		g := tableRows(t, full, table)
		s := tableRows(t, one, table)
		if len(g) != len(s) {
			t.Fatalf("%s: %d vs %d rows", table, len(g), len(s))
		}
		for i := range g {
			if !rowsEqual(g[i], s[i]) {
				t.Fatalf("%s: row %d differs", table, i)
			}
		}
	}
}

func TestLoadShardValidation(t *testing.T) {
	cat := storage.NewCatalog()
	if err := LoadShard(cat, 0.001, 0, 0); err == nil {
		t.Error("totalShards=0 accepted")
	}
	if err := LoadShard(cat, 0.001, 3, 3); err == nil {
		t.Error("shard==totalShards accepted")
	}
	if err := LoadShard(cat, 0.001, -1, 3); err == nil {
		t.Error("negative shard accepted")
	}
}

func rowsEqual(a, b types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		c, ok := types.Compare(a[i], b[i])
		if !ok || c != 0 {
			// NULLs compare unequal via Compare; fall back to kind check.
			if a[i].IsNull() && b[i].IsNull() {
				continue
			}
			return false
		}
	}
	return true
}
