package opt

import (
	"testing"

	"gapplydb/internal/bind"
	"gapplydb/internal/core"
	"gapplydb/internal/exec"
	"gapplydb/internal/rules"
	"gapplydb/internal/sql"
	"gapplydb/internal/stats"
	"gapplydb/internal/storage"
	"gapplydb/internal/tpch"
	"gapplydb/internal/types"
)

func setup(t *testing.T) (*storage.Catalog, *Optimizer) {
	t.Helper()
	cat := storage.NewCatalog()
	if err := tpch.Load(cat, 0.002); err != nil {
		t.Fatal(err)
	}
	return cat, New(cat, stats.Collect(cat))
}

func bindQ(t *testing.T, cat *storage.Catalog, q string) core.Node {
	t.Helper()
	stmt, _, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bind.New(cat).Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func runP(t *testing.T, cat *storage.Catalog, plan core.Node) []types.Row {
	t.Helper()
	res, err := exec.Run(plan, exec.NewContext(cat))
	if err != nil {
		t.Fatalf("exec: %v\n%s", err, core.Format(plan))
	}
	return res.Rows
}

func sameMultiset(a, b []types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]int{}
	for _, r := range a {
		m[r.KeyAll()]++
	}
	for _, r := range b {
		if m[r.KeyAll()]--; m[r.KeyAll()] < 0 {
			return false
		}
	}
	return true
}

const q1 = `
	select gapply(select p_name, p_retailprice, null from g
	              union all
	              select null, null, avg(p_retailprice) from g) as (name, price, ap)
	from partsupp, part where ps_partkey = p_partkey
	group by ps_suppkey : g`

const coveringRangeQ = `
	select gapply(select p_name, p_retailprice from g where p_brand = 'Brand#11')
	from partsupp, part where ps_partkey = p_partkey
	group by ps_suppkey : g`

func TestOptimizePreservesSemantics(t *testing.T) {
	cat, o := setup(t)
	for _, q := range []string{q1, coveringRangeQ} {
		plan := bindQ(t, cat, q)
		want := runP(t, cat, plan)
		got := runP(t, cat, o.Optimize(plan, Options{}))
		if !sameMultiset(want, got) {
			t.Errorf("optimization changed results for:\n%s", q)
		}
	}
}

func TestOptimizeAppliesProjectionPruning(t *testing.T) {
	cat, o := setup(t)
	plan := o.Optimize(bindQ(t, cat, q1), Options{})
	var ga *core.GApply
	core.Walk(plan, func(n core.Node) {
		if g, ok := n.(*core.GApply); ok {
			ga = g
		}
	})
	if ga == nil {
		t.Fatalf("GApply missing:\n%s", core.Format(plan))
	}
	// The outer must be pruned: the join yields 9 columns, Q1 needs 3
	// (ps_suppkey, p_name, p_retailprice).
	if got := ga.Outer.Schema().Len(); got != 3 {
		t.Errorf("outer columns = %d, want 3\n%s", got, core.Format(plan))
	}
	// Physical hints are assigned.
	if ga.Partition == core.PartitionAuto {
		t.Error("partition strategy not chosen")
	}
}

func TestOptimizeAppliesCoveringRange(t *testing.T) {
	cat, o := setup(t)
	plan := o.Optimize(bindQ(t, cat, coveringRangeQ), Options{})
	// The brand selection must now sit in the outer tree (below GApply),
	// pushed down toward the part scan.
	var ga *core.GApply
	core.Walk(plan, func(n core.Node) {
		if g, ok := n.(*core.GApply); ok {
			ga = g
		}
	})
	if ga == nil {
		t.Fatalf("no GApply:\n%s", core.Format(plan))
	}
	found := 0
	core.Walk(ga.Outer, func(n core.Node) {
		if s, ok := n.(*core.Select); ok {
			for range core.ConjunctsOf(s.Cond) {
				found++
			}
		}
	})
	if found == 0 {
		t.Errorf("covering range not in outer tree:\n%s", core.Format(plan))
	}
	// And the per-group selection is gone.
	innerSelects := 0
	core.Walk(ga.Inner, func(n core.Node) {
		if _, ok := n.(*core.Select); ok {
			innerSelects++
		}
	})
	if innerSelects != 0 {
		t.Errorf("per-group selection survived:\n%s", core.Format(plan))
	}
}

func TestDisableRules(t *testing.T) {
	cat, o := setup(t)
	plan := o.Optimize(bindQ(t, cat, q1), Options{
		DisableRules: map[string]bool{rules.ProjectionBeforeGApply{}.Name(): true},
	})
	var ga *core.GApply
	core.Walk(plan, func(n core.Node) {
		if g, ok := n.(*core.GApply); ok {
			ga = g
		}
	})
	if ga.Outer.Schema().Len() == 3 {
		t.Error("disabled rule still fired")
	}
}

func TestForceRules(t *testing.T) {
	cat, o := setup(t)
	q := `select gapply(select * from g where exists
			(select p_partkey from g where p_retailprice > 2090))
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`
	plan := bindQ(t, cat, q)
	forced := o.Optimize(plan, Options{ForceRules: map[string]bool{
		rules.GroupSelectionExists{}.Name(): true,
	}})
	gapplies := 0
	core.Walk(forced, func(n core.Node) {
		if _, ok := n.(*core.GApply); ok {
			gapplies++
		}
	})
	if gapplies != 0 {
		t.Errorf("forced group selection kept GApply:\n%s", core.Format(forced))
	}
	// Semantics hold either way.
	if !sameMultiset(runP(t, cat, bindQ(t, cat, q)), runP(t, cat, forced)) {
		t.Error("forced rewrite changed results")
	}
}

func TestPartitionOverride(t *testing.T) {
	cat, o := setup(t)
	plan := o.Optimize(bindQ(t, cat, q1), Options{Partition: core.PartitionSort})
	core.Walk(plan, func(n core.Node) {
		if ga, ok := n.(*core.GApply); ok && ga.Partition != core.PartitionSort {
			t.Errorf("partition override ignored: %v", ga.Partition)
		}
	})
}

func TestSkipOptimization(t *testing.T) {
	cat, o := setup(t)
	bound := bindQ(t, cat, q1)
	plan := o.Optimize(bound, Options{SkipOptimization: true})
	// Logical shape untouched: the outer is still the raw Select(Join).
	var ga *core.GApply
	core.Walk(plan, func(n core.Node) {
		if g, ok := n.(*core.GApply); ok {
			ga = g
		}
	})
	if _, ok := ga.Outer.(*core.Select); !ok {
		t.Errorf("skip-optimization rewrote the plan:\n%s", core.Format(plan))
	}
	// But physical hints are chosen.
	if ga.Partition == core.PartitionAuto {
		t.Error("physical pass skipped")
	}
}

func TestOptimizeDecorrelatesBaseline(t *testing.T) {
	cat, o := setup(t)
	q := `select ps1.ps_suppkey, count(*) from partsupp ps1, part
		where p_partkey = ps_partkey and p_retailprice >=
			(select avg(p_retailprice) from partsupp, part
			 where p_partkey = ps_partkey and ps_suppkey = ps1.ps_suppkey)
		group by ps1.ps_suppkey`
	plan := o.Optimize(bindQ(t, cat, q), Options{})
	applies := 0
	core.Walk(plan, func(n core.Node) {
		if _, ok := n.(*core.Apply); ok {
			applies++
		}
	})
	if applies != 0 {
		t.Errorf("baseline not decorrelated:\n%s", core.Format(plan))
	}
	// Compare against a pushed-down but still-correlated plan (executing
	// the raw bound plan would re-run the inner per cross-product row).
	correlated := o.Optimize(bindQ(t, cat, q), Options{
		DisableRules: map[string]bool{rules.Decorrelate{}.Name(): true},
	})
	if !sameMultiset(runP(t, cat, correlated), runP(t, cat, plan)) {
		t.Error("decorrelated baseline changed results")
	}
	// Cost model should prefer the decorrelated plan.
	if o.Estimate(plan).Cost >= o.Estimate(correlated).Cost {
		t.Error("decorrelated plan should cost less than correlated apply")
	}
}

func TestJoinMethodsAssigned(t *testing.T) {
	cat, o := setup(t)
	plan := o.Optimize(bindQ(t, cat, "select p_name from partsupp, part where ps_partkey = p_partkey"), Options{})
	core.Walk(plan, func(n core.Node) {
		if j, ok := n.(*core.Join); ok && j.Method == core.JoinAuto {
			t.Error("join method not assigned")
		}
	})
}

func TestOptimizeTraced(t *testing.T) {
	cat, o := setup(t)

	// The Q1 shape fires pushdown + the always-beneficial GApply rules;
	// every accepted entry must carry pass numbers and plan summaries.
	plan, trace := o.OptimizeTraced(bindQ(t, cat, q1), Options{})
	if len(trace) == 0 {
		t.Fatalf("no rule applications recorded for:\n%s", core.Format(plan))
	}
	accepted := map[string]bool{}
	for _, e := range trace {
		if e.Rule == "" || e.Pass < 1 || e.Pass > maxPasses {
			t.Errorf("malformed entry: %+v", e)
		}
		if e.Before == "" || e.After == "" {
			t.Errorf("entry %s missing plan summaries: %+v", e.Rule, e)
		}
		if e.Accepted {
			accepted[e.Rule] = true
		}
	}
	if !accepted["projection-before-gapply"] {
		t.Errorf("projection-before-gapply not in accepted trace: %+v", trace)
	}

	// A forced cost-based rule must be traced as forced and accepted.
	_, forcedTrace := o.OptimizeTraced(bindQ(t, cat, q1), Options{
		ForceRules: map[string]bool{rules.GroupSelectionExists{}.Name(): true},
	})
	for _, e := range forcedTrace {
		if e.CostBased && e.Forced && !e.Accepted {
			t.Errorf("forced rule %s rejected: %+v", e.Rule, e)
		}
	}

	// Rejected cost-based rules record the cost comparison that lost.
	_, rejTrace := o.OptimizeTraced(bindQ(t, cat, q1), Options{})
	for _, e := range rejTrace {
		if e.CostBased && !e.Forced && !e.Accepted && e.CostAfter < e.CostBefore {
			t.Errorf("rejected rule %s has winning cost: %+v", e.Rule, e)
		}
	}

	// Skipped optimization yields no trace.
	if _, tr := o.OptimizeTraced(bindQ(t, cat, q1), Options{SkipOptimization: true}); tr != nil {
		t.Errorf("skip-optimization recorded a trace: %+v", tr)
	}

	// Optimize and OptimizeTraced must agree on the final plan.
	want := core.Format(o.Optimize(bindQ(t, cat, q1), Options{}))
	if got := core.Format(plan); got != want {
		t.Errorf("traced plan differs:\n%s\nvs\n%s", got, want)
	}
}
