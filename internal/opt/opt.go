// Package opt is the engine's Volcano-style rule-based optimizer. It
// normalizes plans into the annotated-join-tree form §4 assumes,
// applies the paper's always-beneficial GApply rules to a fixpoint,
// decides the cost-based rules (group selection, invariant grouping)
// with the §4.4 cost model, and finally picks physical strategies
// (GApply partitioning, join methods).
//
// Termination follows the paper's argument: every rule either pushes
// GApply down, eliminates it, or adds selections/projections to the
// outer tree — none of which any other rule reverses — so successive
// firing terminates; a generous iteration bound guards programming
// errors.
package opt

import (
	"fmt"
	"sort"
	"strings"

	"gapplydb/internal/core"
	"gapplydb/internal/rules"
	"gapplydb/internal/stats"
	"gapplydb/internal/storage"
)

// Options controls optimization, primarily for the experiment harness:
// the Table 1 benchmarks disable or force individual rules to measure
// their effect.
type Options struct {
	// DisableRules names rules that must not run.
	DisableRules map[string]bool
	// ForceRules names cost-based rules that fire regardless of cost.
	ForceRules map[string]bool
	// Partition overrides the GApply partitioning strategy; Auto lets
	// the cost model choose.
	Partition core.PartitionHint
	// SkipOptimization returns the bound plan untouched except for
	// physical hints — the "no optimizer" baseline.
	SkipOptimization bool
	// DisableIndexes turns the order-placement pass off: no IndexScans,
	// no sort elision, no merge joins, no ordered GApply outers. The
	// differential harness compares against this baseline; outputs must
	// be byte-identical either way.
	DisableIndexes bool
}

// Fingerprint renders the options in a canonical textual form: equal
// option sets — however the maps were populated — produce equal strings.
// The statement plan cache keys on it, because every field here changes
// what plan compilation produces.
func (o Options) Fingerprint() string {
	names := func(m map[string]bool) string {
		on := make([]string, 0, len(m))
		for n, v := range m {
			if v {
				on = append(on, n)
			}
		}
		sort.Strings(on)
		return strings.Join(on, ",")
	}
	return fmt.Sprintf("disable=%s;force=%s;partition=%d;skip=%t;noidx=%t",
		names(o.DisableRules), names(o.ForceRules), o.Partition, o.SkipOptimization, o.DisableIndexes)
}

// Optimizer rewrites logical plans.
type Optimizer struct {
	cat *storage.Catalog
	est *stats.Estimator
}

// New builds an optimizer over a catalog with collected statistics.
func New(cat *storage.Catalog, st *stats.Stats) *Optimizer {
	return &Optimizer{cat: cat, est: stats.NewEstimator(st)}
}

// maxPasses bounds rule iteration; real plans converge in 2-3 passes.
const maxPasses = 12

// RuleApplication is one entry of the optimizer's trace: a rule that
// matched the plan, whether its rewrite was kept, and — for cost-based
// rules — the cost comparison that decided it. Table 1's "which rule
// helped" experiments read these instead of inferring rule activity from
// timings.
type RuleApplication struct {
	// Rule is the rule identifier (see gapplydb.RuleNames).
	Rule string
	// Pass is the 1-based optimization pass the rule fired in.
	Pass int
	// CostBased marks rules decided by the §4.4 cost model.
	CostBased bool
	// Forced marks cost-based rules applied regardless of cost.
	Forced bool
	// Accepted reports whether the rewrite was kept.
	Accepted bool
	// CostBefore/CostAfter are the cost model's verdict, set only for
	// cost-based (non-forced) rules.
	CostBefore, CostAfter float64
	// Before/After are compact plan-shape summaries (core.Summary).
	Before, After string
}

// Optimize rewrites the plan under the given options.
func (o *Optimizer) Optimize(plan core.Node, opts Options) core.Node {
	out, _ := o.OptimizeTraced(plan, opts)
	return out
}

// OptimizeTraced rewrites the plan and records every rule application —
// accepted or rejected — in optimization order. The trace is nil when
// optimization is skipped and empty when no rule matched.
func (o *Optimizer) OptimizeTraced(plan core.Node, opts Options) (core.Node, []RuleApplication) {
	if opts.SkipOptimization {
		return o.physical(plan, opts), nil
	}
	ctx := &rules.Context{Catalog: o.cat}
	enabled := func(r rules.Rule) bool { return !opts.DisableRules[r.Name()] }
	costBased := rules.CostBasedNames()
	var trace []RuleApplication

	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, r := range rules.All() {
			if !enabled(r) {
				continue
			}
			candidate, fired := r.Apply(plan, ctx)
			if !fired {
				continue
			}
			entry := RuleApplication{
				Rule:      r.Name(),
				Pass:      pass + 1,
				CostBased: costBased[r.Name()],
				Forced:    costBased[r.Name()] && opts.ForceRules[r.Name()],
				Before:    core.Summary(plan),
				After:     core.Summary(candidate),
			}
			if entry.CostBased && !entry.Forced {
				// Keep the rewrite only when the cost model prefers it.
				entry.CostBefore = o.est.Estimate(plan).Cost
				entry.CostAfter = o.est.Estimate(candidate).Cost
				if entry.CostAfter >= entry.CostBefore {
					trace = append(trace, entry)
					continue
				}
			}
			entry.Accepted = true
			trace = append(trace, entry)
			plan = candidate
			changed = true
		}
		if !changed {
			break
		}
	}
	return o.physical(plan, opts), trace
}

// physical assigns physical strategies: the GApply partitioning (hash vs
// sort, §3's two Partition-phase implementations) and join methods, then
// the order-placement pass. The ordering between the two halves is a
// correctness property, not a convenience: partitioning and join-method
// decisions are made over index-free plans, so enabling indexes can
// never flip hash↔sort or change which rows flow where — it only swaps
// access paths and removes sort work inside the shape already chosen.
// That is what keeps indexes-on and indexes-off outputs byte-identical.
func (o *Optimizer) physical(plan core.Node, opts Options) core.Node {
	plan = core.Transform(plan, func(n core.Node) core.Node {
		switch x := n.(type) {
		case *core.GApply:
			if x.Partition != core.PartitionAuto {
				return n
			}
			hint := opts.Partition
			if hint == core.PartitionAuto {
				hash := *x
				hash.Partition = core.PartitionHash
				srt := *x
				srt.Partition = core.PartitionSort
				if o.est.Estimate(&srt).Cost < o.est.Estimate(&hash).Cost {
					hint = core.PartitionSort
				} else {
					hint = core.PartitionHash
				}
			}
			cp := *x
			cp.Partition = hint
			return &cp
		case *core.Join:
			if x.Method != core.JoinAuto {
				return n
			}
			cp := *x
			if len(x.EquiPairs()) > 0 {
				cp.Method = core.JoinHash
			} else {
				cp.Method = core.JoinNestedLoops
			}
			return &cp
		default:
			return n
		}
	})
	if !opts.DisableIndexes {
		plan = o.placeOrder(plan)
	}
	return plan
}

// placeOrder is the order-placement pass: it finds the plan's
// interesting orders — ORDER BY keys, a hash join's right equi-key, a
// sort-partitioned GApply's group columns — and asks the rules substrate
// (rules.ProvideOrdering) to rewrite the subtree below each into one
// that delivers the order from an ordered index. Every rewrite is
// output-preserving by construction (stable-sorted index runs equal the
// stable sorts they replace), so acceptance is purely about cost:
//   - OrderBy: elide the sort whenever the input can provide the exact
//     ordering — strictly less work, no cost check needed.
//   - Join: a merge alternative replaces hash only when the cost model
//     prefers it (the emitted rows are identical either way).
//   - GApply (sort partitioning, already chosen): an ordered outer turns
//     the partitioning sort into a linear run cut — again strictly less
//     work. The hash-vs-sort choice itself happened before this pass and
//     is never revisited.
func (o *Optimizer) placeOrder(plan core.Node) core.Node {
	return core.Transform(plan, func(n core.Node) core.Node {
		switch x := n.(type) {
		case *core.OrderBy:
			if x.Elided {
				return n
			}
			want, ok := core.RequiredOrdering(x.Keys, x.Input.Schema())
			if !ok {
				return n
			}
			in, ok := rules.ProvideOrdering(x.Input, want, o.cat)
			if !ok {
				return n
			}
			return &core.OrderBy{Input: in, Keys: x.Keys, Elided: true}
		case *core.Join:
			if x.Method != core.JoinHash {
				return n
			}
			pairs := x.EquiPairs()
			if len(pairs) != 1 {
				// Multi-key merge would need a composite index probe; the
				// single-key case is the paper's sort/merge sweet spot.
				return n
			}
			want, ok := core.CanonOrderedCol(pairs[0].Right, x.Right.Schema(), false)
			if !ok {
				return n
			}
			right, ok := rules.ProvideOrdering(x.Right, []core.OrderedCol{want}, o.cat)
			if !ok {
				return n
			}
			merge := &core.Join{Left: x.Left, Right: right, Kind: x.Kind, Cond: x.Cond, Method: core.JoinMerge}
			if o.est.Estimate(merge).Cost < o.est.Estimate(x).Cost {
				return merge
			}
			return n
		case *core.GApply:
			if x.Partition != core.PartitionSort || core.GApplyOuterOrdered(x) {
				return n
			}
			sch := x.Outer.Schema()
			want := make([]core.OrderedCol, 0, len(x.GroupCols))
			for _, c := range x.GroupCols {
				oc, ok := core.CanonOrderedCol(c, sch, false)
				if !ok {
					return n
				}
				want = append(want, oc)
			}
			outer, ok := rules.ProvideOrdering(x.Outer, want, o.cat)
			if !ok {
				return n
			}
			cp := *x
			cp.Outer = outer
			return &cp
		default:
			return n
		}
	})
}

// Estimate exposes the cost model for EXPLAIN and the harness.
func (o *Optimizer) Estimate(plan core.Node) stats.Estimate {
	return o.est.Estimate(plan)
}
