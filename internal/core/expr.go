// Package core defines the engine's logical algebra: the expression
// model and the logical operators — Scan, Select, Project, Distinct,
// Join, GroupBy, Aggregate, OrderBy, Union(All), Apply, Exists and the
// paper's contribution, GApply (groupwise processing over relation-valued
// variables). Transformation rules (internal/rules), static analyses
// (internal/analyze), the optimizer (internal/opt) and the executor
// (internal/exec) all operate on the trees defined here.
package core

import (
	"fmt"
	"strings"

	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

// Expr is a scalar expression evaluated against a row of the operator's
// input schema. Column references are name-based (not ordinal-based) so
// transformation rules can move expressions between operators without
// re-resolution; the executor resolves names to ordinals once per
// operator when it compiles the plan.
type Expr interface {
	String() string
	// Walk visits the expression and all sub-expressions, pre-order.
	Walk(func(Expr))
	// Rewrite rebuilds the expression bottom-up, replacing each node
	// with f's result.
	Rewrite(f func(Expr) Expr) Expr
}

// ColRef references a column of the current operator's input by
// (optional) qualifier and name.
type ColRef struct {
	Table string
	Name  string
}

// OuterRef references a column of an enclosing Apply's outer row — the
// correlation mechanism for subqueries (paper §4: "apply is a logical
// operator that models a subquery").
type OuterRef struct {
	Table string
	Name  string
}

// Lit is a literal value.
type Lit struct {
	V types.Value
}

// BinOp is arithmetic: + - * /.
type BinOp struct {
	Op   string
	L, R Expr
}

// Cmp is a comparison: = <> < <= > >=.
type Cmp struct {
	Op   string
	L, R Expr
}

// And is conjunction over one or more operands.
type And struct {
	Ops []Expr
}

// Or is disjunction over one or more operands.
type Or struct {
	Ops []Expr
}

// Not is negation.
type Not struct {
	Op Expr
}

// Func is a scalar function call. Supported: coalesce, abs.
type Func struct {
	Name string
	Args []Expr
}

// ScalarSubquery holds a subquery in an expression position during
// binding. The binder normalizes these into Apply operators before the
// plan reaches the optimizer; no evaluator exists for them.
type ScalarSubquery struct {
	Plan Node
}

// ExistsExpr holds an EXISTS(...) predicate during binding; like
// ScalarSubquery it is normalized into Apply+Exists before optimization.
type ExistsExpr struct {
	Plan    Node
	Negated bool
}

func (e *ColRef) String() string {
	if e.Table == "" {
		return e.Name
	}
	return e.Table + "." + e.Name
}
func (e *OuterRef) String() string {
	if e.Table == "" {
		return "outer." + e.Name
	}
	return "outer." + e.Table + "." + e.Name
}
func (e *Lit) String() string   { return e.V.SQLLiteral() }
func (e *BinOp) String() string { return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")" }
func (e *Cmp) String() string   { return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")" }
func (e *And) String() string   { return joinExprs(e.Ops, " AND ") }
func (e *Or) String() string    { return joinExprs(e.Ops, " OR ") }
func (e *Not) String() string   { return "NOT " + e.Op.String() }
func (e *Func) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}
func (e *ScalarSubquery) String() string { return "(subquery)" }
func (e *ExistsExpr) String() string {
	if e.Negated {
		return "NOT EXISTS(subquery)"
	}
	return "EXISTS(subquery)"
}

func joinExprs(ops []Expr, sep string) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func (e *ColRef) Walk(f func(Expr))   { f(e) }
func (e *OuterRef) Walk(f func(Expr)) { f(e) }
func (e *Lit) Walk(f func(Expr))      { f(e) }
func (e *BinOp) Walk(f func(Expr))    { f(e); e.L.Walk(f); e.R.Walk(f) }
func (e *Cmp) Walk(f func(Expr))      { f(e); e.L.Walk(f); e.R.Walk(f) }
func (e *And) Walk(f func(Expr)) {
	f(e)
	for _, o := range e.Ops {
		o.Walk(f)
	}
}
func (e *Or) Walk(f func(Expr)) {
	f(e)
	for _, o := range e.Ops {
		o.Walk(f)
	}
}
func (e *Not) Walk(f func(Expr)) { f(e); e.Op.Walk(f) }
func (e *Func) Walk(f func(Expr)) {
	f(e)
	for _, a := range e.Args {
		a.Walk(f)
	}
}
func (e *ScalarSubquery) Walk(f func(Expr)) { f(e) }
func (e *ExistsExpr) Walk(f func(Expr))     { f(e) }

func (e *ColRef) Rewrite(f func(Expr) Expr) Expr   { return f(e) }
func (e *OuterRef) Rewrite(f func(Expr) Expr) Expr { return f(e) }
func (e *Lit) Rewrite(f func(Expr) Expr) Expr      { return f(e) }
func (e *BinOp) Rewrite(f func(Expr) Expr) Expr {
	return f(&BinOp{Op: e.Op, L: e.L.Rewrite(f), R: e.R.Rewrite(f)})
}
func (e *Cmp) Rewrite(f func(Expr) Expr) Expr {
	return f(&Cmp{Op: e.Op, L: e.L.Rewrite(f), R: e.R.Rewrite(f)})
}
func (e *And) Rewrite(f func(Expr) Expr) Expr {
	ops := make([]Expr, len(e.Ops))
	for i, o := range e.Ops {
		ops[i] = o.Rewrite(f)
	}
	return f(&And{Ops: ops})
}
func (e *Or) Rewrite(f func(Expr) Expr) Expr {
	ops := make([]Expr, len(e.Ops))
	for i, o := range e.Ops {
		ops[i] = o.Rewrite(f)
	}
	return f(&Or{Ops: ops})
}
func (e *Not) Rewrite(f func(Expr) Expr) Expr { return f(&Not{Op: e.Op.Rewrite(f)}) }
func (e *Func) Rewrite(f func(Expr) Expr) Expr {
	args := make([]Expr, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.Rewrite(f)
	}
	return f(&Func{Name: e.Name, Args: args})
}
func (e *ScalarSubquery) Rewrite(f func(Expr) Expr) Expr { return f(e) }
func (e *ExistsExpr) Rewrite(f func(Expr) Expr) Expr     { return f(e) }

// Col is shorthand for an unqualified column reference.
func Col(name string) *ColRef { return &ColRef{Name: name} }

// QCol is shorthand for a qualified column reference.
func QCol(table, name string) *ColRef { return &ColRef{Table: table, Name: name} }

// LitInt, LitFloat, LitStr build literal expressions.
func LitInt(i int64) *Lit     { return &Lit{V: types.NewInt(i)} }
func LitFloat(f float64) *Lit { return &Lit{V: types.NewFloat(f)} }
func LitStr(s string) *Lit    { return &Lit{V: types.NewString(s)} }

// ConjunctsOf flattens nested ANDs into a list of conjuncts.
func ConjunctsOf(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*And); ok {
		var out []Expr
		for _, o := range a.Ops {
			out = append(out, ConjunctsOf(o)...)
		}
		return out
	}
	return []Expr{e}
}

// AndAll combines conjuncts back into a single expression (nil for none).
func AndAll(exprs []Expr) Expr {
	switch len(exprs) {
	case 0:
		return nil
	case 1:
		return exprs[0]
	default:
		return &And{Ops: exprs}
	}
}

// CmpColLit matches a comparison of a column with a literal, returning
// the normalized (column, literal, operator-with-column-on-left) — nil
// column when the comparison has any other shape. Shared by the cost
// model's selectivity estimation and the order pass's range pushdown.
func CmpColLit(c *Cmp) (*ColRef, types.Value, string) {
	if col, ok := c.L.(*ColRef); ok {
		if l, ok := c.R.(*Lit); ok {
			return col, l.V, c.Op
		}
	}
	if col, ok := c.R.(*ColRef); ok {
		if l, ok := c.L.(*Lit); ok {
			return col, l.V, FlipCmpOp(c.Op)
		}
	}
	return nil, types.Null, ""
}

// FlipCmpOp mirrors an inequality for operand swap (5 < x ⇔ x > 5).
func FlipCmpOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// ColRefsIn collects all ColRefs (not OuterRefs) in the expression.
func ColRefsIn(e Expr) []*ColRef {
	var out []*ColRef
	if e == nil {
		return nil
	}
	e.Walk(func(x Expr) {
		if c, ok := x.(*ColRef); ok {
			out = append(out, c)
		}
	})
	return out
}

// HasOuterRefs reports whether the expression references an enclosing
// Apply's row; expressions without outer refs are invariant across the
// outer loop and the executor caches their subqueries.
func HasOuterRefs(e Expr) bool {
	found := false
	e.Walk(func(x Expr) {
		if _, ok := x.(*OuterRef); ok {
			found = true
		}
	})
	return found
}

// InferType computes the result kind of the expression against an input
// schema. Unresolvable references infer as NULL kind; the executor will
// fail with a precise error at compile time instead.
func InferType(e Expr, in *schema.Schema) types.Kind {
	switch x := e.(type) {
	case *ColRef:
		if i, err := in.Resolve(x.Table, x.Name); err == nil {
			return in.Cols[i].Type
		}
		return types.KindNull
	case *OuterRef:
		return types.KindNull // unknown statically; refined at runtime
	case *Lit:
		return x.V.K
	case *BinOp:
		l, r := InferType(x.L, in), InferType(x.R, in)
		if l == types.KindFloat || r == types.KindFloat || x.Op == "/" {
			return types.KindFloat
		}
		return types.KindInt
	case *Cmp, *And, *Or, *Not:
		return types.KindBool
	case *Func:
		switch strings.ToLower(x.Name) {
		case "coalesce":
			for _, a := range x.Args {
				if k := InferType(a, in); k != types.KindNull {
					return k
				}
			}
			return types.KindNull
		case "abs":
			if len(x.Args) == 1 {
				return InferType(x.Args[0], in)
			}
		}
		return types.KindNull
	default:
		return types.KindNull
	}
}

// EquiPair is one side-equality extracted from a join condition.
type EquiPair struct {
	Left  *ColRef // resolves in the join's left input
	Right *ColRef // resolves in the join's right input
}

// ExprName derives a result column name for an unaliased projection, the
// way SQL engines label computed columns.
func ExprName(e Expr, ordinal int) string {
	if c, ok := e.(*ColRef); ok {
		return c.Name
	}
	return fmt.Sprintf("col%d", ordinal)
}
