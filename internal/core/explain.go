package core

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// FormatAnnotated renders the plan tree like Format, appending the
// string returned by annot to each operator line (separated by two
// spaces; empty annotations add nothing). EXPLAIN uses it to attach
// cardinality/cost estimates, and EXPLAIN ANALYZE the actual row counts
// and timings, without core depending on the stats or exec packages.
func FormatAnnotated(n Node, annot func(Node) string) string {
	var b strings.Builder
	formatAnnotated(n, 0, annot, &b)
	return b.String()
}

func formatAnnotated(n Node, depth int, annot func(Node) string, b *strings.Builder) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Describe())
	if a := annot(n); a != "" {
		b.WriteString("  ")
		b.WriteString(a)
	}
	b.WriteByte('\n')
	for _, c := range n.Children() {
		formatAnnotated(c, depth+1, annot, b)
	}
}

// summaryDepth bounds how deep Summary descends before eliding; rule
// traces want a glanceable shape, not a full dump.
const summaryDepth = 4

// Summary renders a compact one-line shape of the plan — operator names
// nested as a term, leaf scans keeping their table — for optimizer rule
// traces: "GApply(Join(Scan partsupp, Scan part), AggOp(GroupScan $g))".
func Summary(n Node) string {
	var b strings.Builder
	summarize(n, 0, &b)
	return b.String()
}

func summarize(n Node, depth int, b *strings.Builder) {
	switch x := n.(type) {
	case *Scan:
		b.WriteString("Scan ")
		b.WriteString(x.Table)
		return
	case *GroupScan:
		b.WriteString("GroupScan $")
		b.WriteString(x.Var)
		return
	}
	// Operator name = first word of the Describe line.
	name := n.Describe()
	if i := strings.IndexByte(name, ' '); i > 0 {
		name = name[:i]
	}
	b.WriteString(name)
	ch := n.Children()
	if len(ch) == 0 {
		return
	}
	if depth >= summaryDepth {
		b.WriteString("(…)")
		return
	}
	b.WriteByte('(')
	for i, c := range ch {
		if i > 0 {
			b.WriteString(", ")
		}
		summarize(c, depth+1, b)
	}
	b.WriteByte(')')
}

// PlanHash returns a stable 16-hex-digit fingerprint of the plan's
// rendered shape (operators, predicates, physical hints — everything
// Format prints). Two queries with the same hash executed the same
// physical plan; the bench harness keys its per-query reports on it so
// plan regressions are diffable across runs.
func PlanHash(n Node) string {
	h := fnv.New64a()
	h.Write([]byte(Format(n)))
	return fmt.Sprintf("%016x", h.Sum64())
}

// CountOps returns how many nodes in the tree satisfy the predicate —
// the plan-shape assertion helper tests use ("exactly one Scan of the
// fact table", "no redundant Join").
func CountOps(n Node, pred func(Node) bool) int {
	count := 0
	Walk(n, func(m Node) {
		if pred(m) {
			count++
		}
	})
	return count
}
