package core

import (
	"strings"

	"gapplydb/internal/schema"
)

// Provided/required orderings. An ordering is a sequence of columns the
// rows of an operator's output are sorted by (types.SortCompare per
// column, NULLs first when ascending). The propagation here is
// deliberately conservative and tie-exact: an operator only claims an
// ordering when its output is byte-for-byte what a stable sort on those
// keys would produce — equal-key rows in input (ultimately heap) order.
// That discipline is what lets the optimizer substitute index order for
// explicit sorts without changing any output, which the differential
// suites assert.

// OrderedCol is one column of an ordering, canonically qualified.
type OrderedCol struct {
	Table, Name string
	Desc        bool
}

func (o OrderedCol) String() string {
	name := o.Name
	if o.Table != "" {
		name = o.Table + "." + o.Name
	}
	if o.Desc {
		return name + " DESC"
	}
	return name + " ASC"
}

// equalCol compares qualified columns case-insensitively.
func (o OrderedCol) equalCol(p OrderedCol) bool {
	return strings.EqualFold(o.Table, p.Table) && strings.EqualFold(o.Name, p.Name) && o.Desc == p.Desc
}

// OrderingEquals reports whether two orderings are exactly equal —
// same columns, same directions, same length. Exactness (not prefix
// subsumption) is required throughout the order pass: a longer provided
// ordering sorts equal-prefix rows by its extra columns, which differs
// from the stable sort's input-order ties.
func OrderingEquals(a, b []OrderedCol) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].equalCol(b[i]) {
			return false
		}
	}
	return true
}

// CanonOrderedCol resolves a column reference against a schema into a
// canonically qualified OrderedCol (the schema's own table/name pair),
// so unqualified references compare equal to qualified ones.
func CanonOrderedCol(c *ColRef, sch *schema.Schema, desc bool) (OrderedCol, bool) {
	ord, err := sch.Resolve(c.Table, c.Name)
	if err != nil {
		return OrderedCol{}, false
	}
	col := sch.Cols[ord]
	return OrderedCol{Table: col.Table, Name: col.Name, Desc: desc}, true
}

// RequiredOrdering converts an OrderBy's keys into an ordering, when
// every key is a plain column reference resolvable in the input schema.
// Any computed key makes the sort unservable by an access path.
func RequiredOrdering(keys []OrderKey, in *schema.Schema) ([]OrderedCol, bool) {
	out := make([]OrderedCol, 0, len(keys))
	for _, k := range keys {
		c, ok := k.Expr.(*ColRef)
		if !ok {
			return nil, false
		}
		oc, ok := CanonOrderedCol(c, in, k.Desc)
		if !ok {
			return nil, false
		}
		out = append(out, oc)
	}
	return out, true
}

// ProvidedOrdering returns the ordering n's output rows are known to
// have (nil when unordered). Only operators that preserve or establish
// tie-exact order participate; everything else conservatively reports
// unordered.
func ProvidedOrdering(n Node) []OrderedCol {
	switch x := n.(type) {
	case *IndexScan:
		sch := x.Schema()
		out := make([]OrderedCol, len(x.Ords))
		for i, ord := range x.Ords {
			col := sch.Cols[ord]
			out[i] = OrderedCol{Table: col.Table, Name: col.Name}
		}
		return out
	case *OrderBy:
		// A sort (elided or not) provides its key ordering when the keys
		// are plain columns.
		if req, ok := RequiredOrdering(x.Keys, x.Input.Schema()); ok {
			return req
		}
		return nil
	case *Select:
		// Filtering preserves relative order.
		return ProvidedOrdering(x.Input)
	case *Project:
		return projectOrdering(x)
	case *GApply:
		// Sort partitioning emits groups in group-key order with rows
		// inside a group in outer-input order — exactly a stable sort of
		// the outer by the group columns, restricted to the grouping
		// prefix of the output schema.
		if x.Partition != PartitionSort {
			return nil
		}
		sch := x.Schema()
		out := make([]OrderedCol, 0, len(x.GroupCols))
		for i := range x.GroupCols {
			col := sch.Cols[i]
			out = append(out, OrderedCol{Table: col.Table, Name: col.Name})
		}
		return out
	default:
		return nil
	}
}

// projectOrdering maps the input ordering through a projection: the
// longest prefix of the input ordering whose columns survive as plain
// column references, renamed to their output-schema qualifications.
// Dropping a suffix is sound — rows sorted by (a, b) are sorted by (a) —
// but note the result is then a *weaker* claim, with ties no longer in
// input order; OrderingEquals' exactness requirement keeps that claim
// from being consumed where tie order matters.
func projectOrdering(p *Project) []OrderedCol {
	in := ProvidedOrdering(p.Input)
	if len(in) == 0 {
		return nil
	}
	inSch := p.Input.Schema()
	outSch := p.Schema()
	var out []OrderedCol
	for _, oc := range in {
		found := false
		for i, e := range p.Exprs {
			c, ok := e.(*ColRef)
			if !ok {
				continue
			}
			canon, ok := CanonOrderedCol(c, inSch, oc.Desc)
			if !ok || !canon.equalCol(oc) {
				continue
			}
			col := outSch.Cols[i]
			out = append(out, OrderedCol{Table: col.Table, Name: col.Name, Desc: oc.Desc})
			found = true
			break
		}
		if !found {
			break
		}
	}
	// Exactness guard: only claim the full ordering. A proper prefix has
	// different tie behavior than the stable sorts this pass substitutes
	// for, so it must not be offered as "the" ordering.
	if len(out) != len(in) {
		return nil
	}
	return out
}

// GApplyOuterOrdered reports whether g's outer input already provides
// exactly the ascending group-column order a sort partitioning would
// impose. When true, partitioning degenerates to cutting runs at group
// boundaries in one linear pass — the sort is free — and the output is
// unchanged because sort partitioning's stable sort would have left an
// already-ordered input exactly as is. Shared by the cost model and both
// executors so they agree on when the fast path applies.
func GApplyOuterOrdered(g *GApply) bool {
	if g.Partition != PartitionSort || len(g.GroupCols) == 0 {
		return false
	}
	sch := g.Outer.Schema()
	want := make([]OrderedCol, 0, len(g.GroupCols))
	for _, c := range g.GroupCols {
		oc, ok := CanonOrderedCol(c, sch, false)
		if !ok {
			return false
		}
		want = append(want, oc)
	}
	return OrderingEquals(ProvidedOrdering(g.Outer), want)
}

// FormatOrdering renders an ordering for EXPLAIN annotations.
func FormatOrdering(cols []OrderedCol) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}
