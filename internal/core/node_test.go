package core

import (
	"strings"
	"testing"

	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

func partDef() *schema.TableDef {
	return &schema.TableDef{
		Name:       "part",
		Schema:     partSchema(),
		PrimaryKey: []string{"p_partkey"},
	}
}

func partsuppSchema() *schema.Schema {
	return schema.New(
		schema.Column{Table: "partsupp", Name: "ps_partkey", Type: types.KindInt},
		schema.Column{Table: "partsupp", Name: "ps_suppkey", Type: types.KindInt},
	)
}

func partsuppDef() *schema.TableDef {
	return &schema.TableDef{
		Name:       "partsupp",
		Schema:     partsuppSchema(),
		PrimaryKey: []string{"ps_partkey", "ps_suppkey"},
	}
}

func joinedScan() *Join {
	return &Join{
		Left:  &Scan{Table: "partsupp", Def: partsuppDef()},
		Right: &Scan{Table: "part", Def: partDef()},
		Cond:  &Cmp{Op: "=", L: QCol("partsupp", "ps_partkey"), R: QCol("part", "p_partkey")},
	}
}

func TestScanSchemaAndAlias(t *testing.T) {
	s := &Scan{Table: "part", Def: partDef()}
	if s.Schema().Len() != 3 || s.Schema().Cols[0].Table != "part" {
		t.Errorf("Scan schema = %v", s.Schema())
	}
	a := &Scan{Table: "part", Def: partDef(), Alias: "p2"}
	if a.Schema().Cols[0].Table != "p2" {
		t.Errorf("aliased scan schema = %v", a.Schema())
	}
	if !strings.Contains(a.Describe(), "AS p2") {
		t.Errorf("Describe = %q", a.Describe())
	}
}

func TestJoinSchemaAndEquiPairs(t *testing.T) {
	j := joinedScan()
	if j.Schema().Len() != 5 {
		t.Errorf("join schema = %v", j.Schema())
	}
	pairs := j.EquiPairs()
	if len(pairs) != 1 {
		t.Fatalf("EquiPairs = %v", pairs)
	}
	if pairs[0].Left.Name != "ps_partkey" || pairs[0].Right.Name != "p_partkey" {
		t.Errorf("pair = %v -> %v", pairs[0].Left, pairs[0].Right)
	}
	// Sides swapped in the condition still resolve to (left, right).
	j2 := joinedScan()
	j2.Cond = &Cmp{Op: "=", L: QCol("part", "p_partkey"), R: QCol("partsupp", "ps_partkey")}
	pairs = j2.EquiPairs()
	if len(pairs) != 1 || pairs[0].Left.Name != "ps_partkey" {
		t.Errorf("swapped pair = %v", pairs)
	}
	// Non-equi conjuncts are skipped.
	j3 := joinedScan()
	j3.Cond = &And{Ops: []Expr{
		j.Cond,
		&Cmp{Op: ">", L: QCol("part", "p_retailprice"), R: LitFloat(10)},
	}}
	if len(j3.EquiPairs()) != 1 {
		t.Errorf("non-equi conjunct leaked into EquiPairs")
	}
}

func TestProjectSchema(t *testing.T) {
	scan := &Scan{Table: "part", Def: partDef()}
	p := NewProject(scan, []Expr{
		QCol("part", "p_name"),
		&BinOp{Op: "*", L: Col("p_retailprice"), R: LitFloat(2)},
	}, []string{"", "double_price"})
	s := p.Schema()
	if s.Cols[0].Table != "part" || s.Cols[0].Name != "p_name" {
		t.Errorf("unaliased column must keep qualified name: %v", s.Cols[0])
	}
	if s.Cols[1].Name != "double_price" || s.Cols[1].Type != types.KindFloat {
		t.Errorf("aliased computed column: %v", s.Cols[1])
	}
	// Unaliased computed columns get positional names.
	p2 := NewProject(scan, []Expr{LitInt(1)}, nil)
	if p2.Schema().Cols[0].Name != "col0" {
		t.Errorf("positional name = %v", p2.Schema().Cols[0])
	}
}

func TestGroupBySchema(t *testing.T) {
	g := &GroupBy{
		Input:     joinedScan(),
		GroupCols: []*ColRef{QCol("partsupp", "ps_suppkey")},
		Aggs: []AggSpec{
			{Fn: "avg", Arg: Col("p_retailprice"), As: "avgprice"},
			{Fn: "count", Star: true},
		},
	}
	s := g.Schema()
	if s.Len() != 3 {
		t.Fatalf("schema = %v", s)
	}
	if s.Cols[0].Name != "ps_suppkey" || s.Cols[0].Table != "partsupp" {
		t.Errorf("group col = %v", s.Cols[0])
	}
	if s.Cols[1].Name != "avgprice" || s.Cols[1].Type != types.KindFloat {
		t.Errorf("avg col = %v", s.Cols[1])
	}
	if s.Cols[2].Name != "count(*)" || s.Cols[2].Type != types.KindInt {
		t.Errorf("count col = %v", s.Cols[2])
	}
}

func TestAggSpecTypes(t *testing.T) {
	in := partSchema()
	cases := []struct {
		a    AggSpec
		want types.Kind
	}{
		{AggSpec{Fn: "count", Star: true}, types.KindInt},
		{AggSpec{Fn: "avg", Arg: Col("p_partkey")}, types.KindFloat},
		{AggSpec{Fn: "sum", Arg: Col("p_partkey")}, types.KindInt},
		{AggSpec{Fn: "sum", Arg: Col("p_retailprice")}, types.KindFloat},
		{AggSpec{Fn: "min", Arg: Col("p_name")}, types.KindString},
		{AggSpec{Fn: "max", Arg: Col("p_retailprice")}, types.KindFloat},
	}
	for _, c := range cases {
		if got := c.a.OutType(in); got != c.want {
			t.Errorf("OutType(%s) = %v, want %v", c.a.OutName(), got, c.want)
		}
	}
	if (AggSpec{Fn: "count", Star: true}).OutName() != "count(*)" {
		t.Error("count(*) name")
	}
	if (AggSpec{Fn: "avg", Arg: Col("x"), As: "a"}).OutName() != "a" {
		t.Error("alias wins")
	}
}

func TestExistsSchemaIsNull(t *testing.T) {
	e := &Exists{Input: joinedScan()}
	if e.Schema().Len() != 0 {
		t.Error("Exists has the null schema")
	}
	if e.Describe() != "Exists" || (&Exists{Negated: true, Input: e.Input}).Describe() != "NotExists" {
		t.Error("Describe")
	}
}

func TestApplySchema(t *testing.T) {
	outer := &Scan{Table: "part", Def: partDef()}
	inner := &AggOp{Input: &GroupScan{Var: "g", Sch: partSchema()}, Aggs: []AggSpec{{Fn: "avg", Arg: Col("p_retailprice"), As: "a"}}}
	a := &Apply{Outer: outer, Inner: inner}
	if a.Schema().Len() != 4 {
		t.Errorf("apply schema = %v", a.Schema())
	}
	// Apply + Exists keeps the outer schema (null schema cross).
	ae := &Apply{Outer: outer, Inner: &Exists{Input: inner}}
	if ae.Schema().Len() != 3 {
		t.Errorf("apply+exists schema = %v", ae.Schema())
	}
}

func TestGApplySchemaAndRebinding(t *testing.T) {
	outer := joinedScan()
	pgq := &AggOp{
		Input: &GroupScan{Var: "tmp", Sch: schema.New()}, // stale schema on purpose
		Aggs:  []AggSpec{{Fn: "avg", Arg: Col("p_retailprice"), As: "avgprice"}},
	}
	ga := NewGApply(outer, []*ColRef{QCol("partsupp", "ps_suppkey")}, "tmp", pgq)
	// NewGApply must rebind the GroupScan to the outer schema.
	gs := GroupScansIn(ga.Inner)
	if len(gs) != 1 || gs[0].Sch.Len() != 5 {
		t.Fatalf("GroupScan not rebound: %v", gs)
	}
	s := ga.Schema()
	if s.Len() != 2 || s.Cols[0].Name != "ps_suppkey" || s.Cols[1].Name != "avgprice" {
		t.Errorf("GApply schema = %v", s)
	}
	if !strings.Contains(ga.Describe(), "GApply [partsupp.ps_suppkey] $tmp") {
		t.Errorf("Describe = %q", ga.Describe())
	}
}

func TestWithChildrenPreservesFields(t *testing.T) {
	outer := joinedScan()
	sel := &Select{Input: outer, Cond: &Cmp{Op: ">", L: Col("p_retailprice"), R: LitFloat(5)}}
	n := sel.WithChildren([]Node{outer.Left})
	if n.(*Select).Cond != sel.Cond {
		t.Error("Select.WithChildren must keep Cond")
	}
	ga := NewGApply(outer, []*ColRef{Col("ps_suppkey")}, "g", &GroupScan{Var: "g"})
	ga.Partition = PartitionSort
	n2 := ga.WithChildren([]Node{outer, ga.Inner})
	if n2.(*GApply).Partition != PartitionSort || n2.(*GApply).GroupVar != "g" {
		t.Error("GApply.WithChildren must keep hints and var")
	}
	u := &UnionAll{Inputs: []Node{outer, outer}}
	if len(u.WithChildren([]Node{outer.Left, outer.Right}).Children()) != 2 {
		t.Error("UnionAll.WithChildren")
	}
}

func TestPartitionHintString(t *testing.T) {
	if PartitionAuto.String() != "auto" || PartitionHash.String() != "hash" || PartitionSort.String() != "sort" {
		t.Error("PartitionHint.String")
	}
}

func TestOrderByDistinctUnionDescribe(t *testing.T) {
	scan := &Scan{Table: "part", Def: partDef()}
	o := &OrderBy{Input: scan, Keys: []OrderKey{{Expr: Col("p_name")}, {Expr: Col("p_retailprice"), Desc: true}}}
	if o.Describe() != "OrderBy p_name, p_retailprice DESC" {
		t.Errorf("OrderBy describe = %q", o.Describe())
	}
	if o.Schema().Len() != 3 {
		t.Error("OrderBy schema passes through")
	}
	d := &Distinct{Input: scan}
	if d.Describe() != "Distinct" || d.Schema().Len() != 3 {
		t.Error("Distinct")
	}
	u := &UnionAll{Inputs: []Node{scan, scan}}
	if u.Schema().Len() != 3 || !strings.Contains(u.Describe(), "2 inputs") {
		t.Error("UnionAll")
	}
}
