package core

import (
	"strings"
	"testing"
)

// q1Plan builds the paper's Q1 in the algebra (Figure 2, left):
// GApply[ps_suppkey] over partsupp⋈part, PGQ = UnionAll(project names
// and prices, scalar avg).
func q1Plan() *GApply {
	outer := joinedScan()
	gs := func() *GroupScan { return &GroupScan{Var: "tmpSupp"} }
	pgq := &UnionAll{Inputs: []Node{
		NewProject(gs(), []Expr{Col("p_name"), Col("p_retailprice"), &Lit{}}, []string{"", "", "avgprice"}),
		NewProject(
			&AggOp{Input: gs(), Aggs: []AggSpec{{Fn: "avg", Arg: Col("p_retailprice"), As: "a"}}},
			[]Expr{&Lit{}, &Lit{}, Col("a")}, []string{"p_name", "p_retailprice", "avgprice"},
		),
	}}
	return NewGApply(outer, []*ColRef{QCol("partsupp", "ps_suppkey")}, "tmpSupp", pgq)
}

func TestWalkCoversInnerTrees(t *testing.T) {
	ga := q1Plan()
	var kinds []string
	Walk(ga, func(n Node) {
		kinds = append(kinds, strings.Fields(n.Describe())[0])
	})
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"GApply", "Join", "Scan", "UnionAll", "Project", "Aggregate", "GroupScan"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Walk missed %s in %v", want, joined)
		}
	}
	Walk(nil, func(Node) { t.Error("walking nil must not visit") })
}

func TestTransformIdentityPreservesStructure(t *testing.T) {
	ga := q1Plan()
	got := Transform(ga, func(n Node) Node { return n })
	if got != Node(ga) {
		t.Error("identity transform must return the same root")
	}
}

func TestTransformRebuildsOnChange(t *testing.T) {
	ga := q1Plan()
	// Replace the inner UnionAll with just its first branch.
	got := Transform(ga, func(n Node) Node {
		if u, ok := n.(*UnionAll); ok {
			return u.Inputs[0]
		}
		return n
	})
	newGA, ok := got.(*GApply)
	if !ok {
		t.Fatalf("root changed type: %T", got)
	}
	if _, ok := newGA.Inner.(*Project); !ok {
		t.Errorf("inner = %T, want *Project", newGA.Inner)
	}
	// The original must be untouched.
	if _, ok := ga.Inner.(*UnionAll); !ok {
		t.Error("Transform mutated the original tree")
	}
}

func TestReplaceGroupScans(t *testing.T) {
	ga := q1Plan()
	pruned := ga.Outer.Schema().Project([]int{1, 4}) // ps_suppkey, p_retailprice
	newInner := ReplaceGroupScans(ga.Inner, "tmpSupp", pruned)
	for _, gs := range GroupScansIn(newInner) {
		if gs.Sch.Len() != 2 {
			t.Errorf("GroupScan not rebound: %v", gs.Sch)
		}
		if gs.Var != "tmpSupp" {
			t.Errorf("var changed: %q", gs.Var)
		}
	}
	// Other group variables are left alone.
	same := ReplaceGroupScans(ga.Inner, "otherVar", pruned)
	for _, gs := range GroupScansIn(same) {
		if gs.Sch.Len() == 2 {
			t.Error("rebound a non-matching group variable")
		}
	}
}

func TestFormatTree(t *testing.T) {
	out := Format(q1Plan())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "GApply") {
		t.Errorf("root line = %q", lines[0])
	}
	// Children are indented beneath their parents.
	if !strings.HasPrefix(lines[1], "  Join") {
		t.Errorf("second line = %q", lines[1])
	}
	depth := func(s string) int { return (len(s) - len(strings.TrimLeft(s, " "))) / 2 }
	maxDepth := 0
	for _, l := range lines {
		if d := depth(l); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth < 2 {
		t.Errorf("tree depth %d too shallow:\n%s", maxDepth, out)
	}
}

func TestReferencedColumns(t *testing.T) {
	ga := q1Plan()
	cols := DedupCols(ReferencedColumns(ga.Inner))
	names := make(map[string]bool)
	for _, c := range cols {
		names[c.Name] = true
	}
	if !names["p_name"] || !names["p_retailprice"] {
		t.Errorf("PGQ references = %v", cols)
	}
	if names["ps_partkey"] {
		t.Error("PGQ does not reference ps_partkey")
	}
	// GroupBy group cols, aggregate args and order keys are all collected.
	n := &OrderBy{
		Input: &GroupBy{
			Input:     &GroupScan{Var: "g", Sch: partSchema()},
			GroupCols: []*ColRef{Col("p_name")},
			Aggs:      []AggSpec{{Fn: "sum", Arg: Col("p_retailprice")}},
		},
		Keys: []OrderKey{{Expr: Col("p_name")}},
	}
	got := DedupCols(ReferencedColumns(n))
	if len(got) != 2 {
		t.Errorf("ReferencedColumns = %v", got)
	}
}

func TestOuterRefsIn(t *testing.T) {
	inner := &Select{
		Input: &Scan{Table: "part", Def: partDef()},
		Cond:  &Cmp{Op: "=", L: Col("p_partkey"), R: &OuterRef{Table: "partsupp", Name: "ps_partkey"}},
	}
	refs := OuterRefsIn(inner)
	if len(refs) != 1 || refs[0].Name != "ps_partkey" {
		t.Errorf("OuterRefsIn = %v", refs)
	}
	if len(OuterRefsIn(&Scan{Table: "part", Def: partDef()})) != 0 {
		t.Error("scan has no outer refs")
	}
}

func TestDedupCols(t *testing.T) {
	cols := []*ColRef{QCol("t", "a"), QCol("T", "A"), QCol("t", "b"), Col("a")}
	got := DedupCols(cols)
	if len(got) != 3 {
		t.Errorf("DedupCols = %v", got)
	}
	if got[0].Name != "a" || got[1].Name != "b" {
		t.Errorf("order not preserved: %v", got)
	}
}

func TestGroupInvariant(t *testing.T) {
	part := func() Node { return &Scan{Table: "part", Def: partDef()} }
	sel := &Select{Input: part(), Cond: &Cmp{Op: ">", L: Col("p_retailprice"), R: &Lit{}}}
	if !GroupInvariant(sel) {
		t.Error("Select over a base scan is invariant")
	}
	if GroupInvariant(&GroupScan{Var: "g"}) {
		t.Error("a GroupScan is never invariant")
	}
	// Any GroupScan anywhere in the subtree disqualifies it, regardless of
	// the variable it reads.
	j := &Join{Left: &GroupScan{Var: "other"}, Right: part()}
	if GroupInvariant(j) {
		t.Error("subtree containing a GroupScan is not invariant")
	}
	// A correlated predicate (OuterRef) also disqualifies: its result
	// changes per outer row even though no group variable appears.
	corr := &Select{Input: part(), Cond: &Cmp{Op: "=", L: Col("p_partkey"), R: &OuterRef{Table: "partsupp", Name: "ps_partkey"}}}
	if GroupInvariant(corr) {
		t.Error("correlated subtree is not invariant")
	}
}

func TestInvariantRootsMaximal(t *testing.T) {
	part := &Scan{Table: "part", Def: partDef()}
	sel := &Select{Input: part, Cond: &Cmp{Op: ">", L: Col("p_retailprice"), R: &Lit{}}}
	join := &Join{
		Left:  &GroupScan{Var: "g", Sch: partsuppDef().Schema},
		Right: sel,
		Cond:  &Cmp{Op: "=", L: Col("ps_partkey"), R: Col("p_partkey")},
	}
	roots := InvariantRoots(join)
	// Maximality: the Select (not the Scan under it) is the single root.
	if len(roots) != 1 || roots[0] != Node(sel) {
		t.Errorf("InvariantRoots = %v, want the Select subtree", roots)
	}
	// A fully invariant tree reports itself.
	if roots := InvariantRoots(sel); len(roots) != 1 || roots[0] != Node(sel) {
		t.Errorf("InvariantRoots(invariant tree) = %v", roots)
	}
	// No invariant subtree at all.
	if roots := InvariantRoots(&GroupScan{Var: "g"}); len(roots) != 0 {
		t.Errorf("InvariantRoots(GroupScan) = %v", roots)
	}
}

func TestInvariantRootsNestedGApplyOpaque(t *testing.T) {
	// A nested GApply spools its own inner independently; only its Outer
	// side is searched. The invariant scan inside the nested inner must
	// NOT be reported.
	innerInvariant := &Scan{Table: "part", Def: partDef()}
	nested := &GApply{
		Outer:    &GroupScan{Var: "g", Sch: partsuppDef().Schema},
		GroupVar: "h",
		Inner:    &Join{Left: &GroupScan{Var: "h"}, Right: innerInvariant},
	}
	roots := InvariantRoots(nested)
	if len(roots) != 0 {
		t.Errorf("InvariantRoots looked through a nested GApply: %v", roots)
	}
}
