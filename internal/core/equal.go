package core

import (
	"strings"

	"gapplydb/internal/types"
)

// ExprEqual reports structural equality of two expressions, with
// case-insensitive column names and order-insensitive And/Or operand
// comparison. The selection-before-GApply rule uses it to drop per-group
// selections that are logically equivalent to the pushed covering range.
func ExprEqual(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case *ColRef:
		y, ok := b.(*ColRef)
		return ok && strings.EqualFold(x.Table, y.Table) && strings.EqualFold(x.Name, y.Name)
	case *OuterRef:
		y, ok := b.(*OuterRef)
		return ok && strings.EqualFold(x.Table, y.Table) && strings.EqualFold(x.Name, y.Name)
	case *Lit:
		y, ok := b.(*Lit)
		if !ok {
			return false
		}
		if x.V.IsNull() || y.V.IsNull() {
			return x.V.IsNull() && y.V.IsNull()
		}
		return (types.Row{x.V}).KeyAll() == (types.Row{y.V}).KeyAll()
	case *BinOp:
		y, ok := b.(*BinOp)
		return ok && x.Op == y.Op && ExprEqual(x.L, y.L) && ExprEqual(x.R, y.R)
	case *Cmp:
		y, ok := b.(*Cmp)
		if !ok {
			return false
		}
		if x.Op == y.Op && ExprEqual(x.L, y.L) && ExprEqual(x.R, y.R) {
			return true
		}
		// Symmetric comparisons match with sides flipped.
		if flip := flipCmp(x.Op); flip == y.Op && ExprEqual(x.L, y.R) && ExprEqual(x.R, y.L) {
			return true
		}
		return false
	case *And:
		y, ok := b.(*And)
		return ok && operandsEqual(x.Ops, y.Ops)
	case *Or:
		y, ok := b.(*Or)
		return ok && operandsEqual(x.Ops, y.Ops)
	case *Not:
		y, ok := b.(*Not)
		return ok && ExprEqual(x.Op, y.Op)
	case *Func:
		y, ok := b.(*Func)
		if !ok || !strings.EqualFold(x.Name, y.Name) || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !ExprEqual(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// flipCmp returns the operator that holds when the operands are swapped.
func flipCmp(op string) string {
	switch op {
	case "=":
		return "="
	case "<>":
		return "<>"
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return ""
}

// operandsEqual matches operand multisets regardless of order.
func operandsEqual(a, b []Expr) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
	for _, x := range a {
		found := false
		for j, y := range b {
			if !used[j] && ExprEqual(x, y) {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
