package core

import (
	"fmt"
	"strings"

	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

// Node is a logical operator. Schemas are computed structurally from
// children so rewrites stay consistent without bookkeeping.
type Node interface {
	Schema() *schema.Schema
	Children() []Node
	// WithChildren returns a copy of the node with the children replaced
	// (same arity). Scalar fields are shared; rules that modify them must
	// copy the node themselves.
	WithChildren(ch []Node) Node
	// Describe returns the operator's one-line EXPLAIN label.
	Describe() string
}

// ---------------------------------------------------------------- Scan

// Scan reads a base table.
type Scan struct {
	Table string
	Def   *schema.TableDef
	// Alias re-qualifies the table's columns (FROM t AS a). Empty means
	// the base name.
	Alias string
}

func (s *Scan) Schema() *schema.Schema {
	if s.Alias != "" {
		return s.Def.Schema.Rename(s.Alias)
	}
	return s.Def.Schema
}
func (s *Scan) Children() []Node          { return nil }
func (s *Scan) WithChildren([]Node) Node  { c := *s; return &c }
func (s *Scan) Describe() string {
	if s.Alias != "" && s.Alias != s.Table {
		return "Scan " + s.Table + " AS " + s.Alias
	}
	return "Scan " + s.Table
}

// ----------------------------------------------------------- IndexScan

// IndexScan reads a base table through an ordered secondary index: rows
// come out in the index's key order (ascending, ties in heap position
// order — the stable-sort tie rule), optionally restricted to a key
// range on the single index column. It is a physical access path placed
// by the optimizer's order pass; the binder never produces one.
type IndexScan struct {
	Table string
	Def   *schema.TableDef
	// Alias re-qualifies the table's columns (FROM t AS a).
	Alias string
	// Index names the catalog index; Cols are its key columns and Ords
	// their ordinals in the table schema.
	Index string
	Cols  []string
	Ords  []int
	// Optional bounds on the (single) key column. A bound is applied
	// during the scan: only rows whose key is within [Lo, Hi] (openness
	// per LoIncl/HiIncl) are emitted, still in index order. NULL keys
	// never satisfy a bound.
	Lo, Hi         types.Value
	HasLo, HasHi   bool
	LoIncl, HiIncl bool
}

func (s *IndexScan) Schema() *schema.Schema {
	if s.Alias != "" {
		return s.Def.Schema.Rename(s.Alias)
	}
	return s.Def.Schema
}
func (s *IndexScan) Children() []Node         { return nil }
func (s *IndexScan) WithChildren([]Node) Node { c := *s; return &c }
func (s *IndexScan) Describe() string {
	d := "IndexScan " + s.Table
	if s.Alias != "" && s.Alias != s.Table {
		d += " AS " + s.Alias
	}
	d += " using " + s.Index
	if s.HasLo || s.HasHi {
		var parts []string
		if s.HasLo {
			op := ">"
			if s.LoIncl {
				op = ">="
			}
			parts = append(parts, s.Cols[0]+" "+op+" "+s.Lo.SQLLiteral())
		}
		if s.HasHi {
			op := "<"
			if s.HiIncl {
				op = "<="
			}
			parts = append(parts, s.Cols[0]+" "+op+" "+s.Hi.SQLLiteral())
		}
		d += " [" + strings.Join(parts, " AND ") + "]"
	}
	return d
}

// ---------------------------------------------------------- GroupScan

// GroupScan is the leaf of a per-group query: it reads the temporary
// relation bound to the GApply group variable (paper §3, "when the leaf
// scan operator receives the relation-valued parameter, it understands
// this to be a temporary relation and reads from it").
type GroupScan struct {
	Var string
	Sch *schema.Schema
}

func (g *GroupScan) Schema() *schema.Schema  { return g.Sch }
func (g *GroupScan) Children() []Node        { return nil }
func (g *GroupScan) WithChildren([]Node) Node { c := *g; return &c }
func (g *GroupScan) Describe() string        { return "GroupScan $" + g.Var }

// -------------------------------------------------------------- Select

// Select filters rows by a predicate.
type Select struct {
	Input Node
	Cond  Expr
}

func (s *Select) Schema() *schema.Schema { return s.Input.Schema() }
func (s *Select) Children() []Node       { return []Node{s.Input} }
func (s *Select) WithChildren(ch []Node) Node {
	return &Select{Input: ch[0], Cond: s.Cond}
}
func (s *Select) Describe() string { return "Select " + s.Cond.String() }

// ------------------------------------------------------------- Project

// Project computes output columns from expressions. Names[i] is the
// alias (may be empty; ColRefs then keep their qualified name).
// Qualifier, when set, re-qualifies every output column — the shape of a
// derived table `(select …) AS alias(cols…)`.
type Project struct {
	Input     Node
	Exprs     []Expr
	Names     []string
	Qualifier string
}

// NewProject builds a projection, padding Names to the expression count.
func NewProject(in Node, exprs []Expr, names []string) *Project {
	for len(names) < len(exprs) {
		names = append(names, "")
	}
	return &Project{Input: in, Exprs: exprs, Names: names}
}

// ProjectCols builds a pure column projection preserving qualified names.
func ProjectCols(in Node, cols []*ColRef) *Project {
	exprs := make([]Expr, len(cols))
	for i, c := range cols {
		exprs[i] = c
	}
	return NewProject(in, exprs, nil)
}

func (p *Project) Schema() *schema.Schema {
	in := p.Input.Schema()
	cols := make([]schema.Column, len(p.Exprs))
	for i, e := range p.Exprs {
		name := ""
		if i < len(p.Names) {
			name = p.Names[i]
		}
		switch {
		case name != "":
			cols[i] = schema.Column{Name: name, Type: InferType(e, in)}
		default:
			if c, ok := e.(*ColRef); ok {
				if ord, err := in.Resolve(c.Table, c.Name); err == nil {
					cols[i] = in.Cols[ord]
					break
				}
			}
			cols[i] = schema.Column{Name: ExprName(e, i), Type: InferType(e, in)}
		}
		if p.Qualifier != "" {
			cols[i].Table = p.Qualifier
		}
	}
	return &schema.Schema{Cols: cols}
}
func (p *Project) Children() []Node { return []Node{p.Input} }
func (p *Project) WithChildren(ch []Node) Node {
	return &Project{Input: ch[0], Exprs: p.Exprs, Names: p.Names, Qualifier: p.Qualifier}
}
func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
		if i < len(p.Names) && p.Names[i] != "" {
			parts[i] += " AS " + p.Names[i]
		}
	}
	return "Project " + strings.Join(parts, ", ")
}

// ------------------------------------------------------------ Distinct

// Distinct eliminates duplicate rows (the paper follows multiset
// semantics; duplicates are removed only by this operator).
type Distinct struct {
	Input Node
}

func (d *Distinct) Schema() *schema.Schema      { return d.Input.Schema() }
func (d *Distinct) Children() []Node            { return []Node{d.Input} }
func (d *Distinct) WithChildren(ch []Node) Node { return &Distinct{Input: ch[0]} }
func (d *Distinct) Describe() string            { return "Distinct" }

// ---------------------------------------------------------------- Join

// JoinKind distinguishes inner from left-outer joins. The paper's rules
// concern inner joins; left-outer exists for subquery decorrelation.
type JoinKind int

const (
	InnerJoin JoinKind = iota
	LeftOuterJoin
)

// JoinMethod is the physical hint chosen by the optimizer.
type JoinMethod int

const (
	JoinAuto JoinMethod = iota
	JoinHash
	JoinNestedLoops
	// JoinMerge probes the right input's sorted run (the right child must
	// provide the equi-key order, e.g. via an IndexScan) with streaming
	// left rows. Emission order is identical to JoinHash by construction:
	// left-major in left-input order, matches in right-input order.
	JoinMerge
)

// Join combines two inputs on a condition.
type Join struct {
	Left, Right Node
	Kind        JoinKind
	Cond        Expr
	Method      JoinMethod
}

func (j *Join) Schema() *schema.Schema { return j.Left.Schema().Concat(j.Right.Schema()) }
func (j *Join) Children() []Node       { return []Node{j.Left, j.Right} }
func (j *Join) WithChildren(ch []Node) Node {
	return &Join{Left: ch[0], Right: ch[1], Kind: j.Kind, Cond: j.Cond, Method: j.Method}
}
func (j *Join) Describe() string {
	kind := "Join"
	if j.Kind == LeftOuterJoin {
		kind = "LeftOuterJoin"
	}
	cond := "true"
	if j.Cond != nil {
		cond = j.Cond.String()
	}
	d := kind + " on " + cond
	// Only the merge method is physically visible in the plan shape (it
	// requires an order-providing right child); hash/NL stay unlabeled so
	// their plan hashes are undisturbed.
	if j.Method == JoinMerge {
		d += " (merge)"
	}
	return d
}

// EquiPairs extracts the equality column pairs (left-side, right-side)
// from the join condition; non-equi conjuncts are skipped. Used by the
// hash join and the invariant-grouping / foreign-key analysis.
func (j *Join) EquiPairs() []EquiPair {
	var out []EquiPair
	ls, rs := j.Left.Schema(), j.Right.Schema()
	for _, c := range ConjunctsOf(j.Cond) {
		cmp, ok := c.(*Cmp)
		if !ok || cmp.Op != "=" {
			continue
		}
		l, lok := cmp.L.(*ColRef)
		r, rok := cmp.R.(*ColRef)
		if !lok || !rok {
			continue
		}
		switch {
		case ls.Has(l.Table, l.Name) && rs.Has(r.Table, r.Name):
			out = append(out, EquiPair{Left: l, Right: r})
		case ls.Has(r.Table, r.Name) && rs.Has(l.Table, l.Name):
			out = append(out, EquiPair{Left: r, Right: l})
		}
	}
	return out
}

// -------------------------------------------------------------- GroupBy

// AggSpec specifies one aggregate computation.
type AggSpec struct {
	Fn       string // count, sum, avg, min, max
	Arg      Expr   // nil for count(*)
	Star     bool
	Distinct bool
	As       string // output column name; derived from Fn when empty
}

// OutName returns the aggregate's result column name.
func (a AggSpec) OutName() string {
	if a.As != "" {
		return a.As
	}
	if a.Star {
		return a.Fn + "(*)"
	}
	if a.Arg != nil {
		return a.Fn + "(" + a.Arg.String() + ")"
	}
	return a.Fn
}

// OutType returns the aggregate's result kind given the input schema.
func (a AggSpec) OutType(in *schema.Schema) types.Kind {
	switch strings.ToLower(a.Fn) {
	case "count":
		return types.KindInt
	case "avg":
		return types.KindFloat
	case "sum", "min", "max":
		if a.Arg != nil {
			return InferType(a.Arg, in)
		}
		return types.KindFloat
	default:
		return types.KindNull
	}
}

func (a AggSpec) describe() string {
	arg := "*"
	if !a.Star && a.Arg != nil {
		arg = a.Arg.String()
	}
	d := ""
	if a.Distinct {
		d = "distinct "
	}
	s := a.Fn + "(" + d + arg + ")"
	if a.As != "" {
		s += " AS " + a.As
	}
	return s
}

// GroupBy groups on columns and computes aggregates per group. Output is
// the group columns followed by one column per aggregate.
type GroupBy struct {
	Input     Node
	GroupCols []*ColRef
	Aggs      []AggSpec
}

func (g *GroupBy) Schema() *schema.Schema {
	in := g.Input.Schema()
	cols := make([]schema.Column, 0, len(g.GroupCols)+len(g.Aggs))
	for _, c := range g.GroupCols {
		if ord, err := in.Resolve(c.Table, c.Name); err == nil {
			cols = append(cols, in.Cols[ord])
		} else {
			cols = append(cols, schema.Column{Table: c.Table, Name: c.Name})
		}
	}
	for _, a := range g.Aggs {
		cols = append(cols, schema.Column{Name: a.OutName(), Type: a.OutType(in)})
	}
	return &schema.Schema{Cols: cols}
}
func (g *GroupBy) Children() []Node { return []Node{g.Input} }
func (g *GroupBy) WithChildren(ch []Node) Node {
	return &GroupBy{Input: ch[0], GroupCols: g.GroupCols, Aggs: g.Aggs}
}
func (g *GroupBy) Describe() string {
	cols := make([]string, len(g.GroupCols))
	for i, c := range g.GroupCols {
		cols[i] = c.String()
	}
	aggs := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		aggs[i] = a.describe()
	}
	return "GroupBy [" + strings.Join(cols, ", ") + "] aggs [" + strings.Join(aggs, ", ") + "]"
}

// ---------------------------------------------------------------- AggOp

// AggOp is a scalar aggregate: no grouping, exactly one output row even
// on empty input (count(*) of the empty relation is 0 — the fact behind
// the paper's emptyOnEmpty analysis).
type AggOp struct {
	Input Node
	Aggs  []AggSpec
}

func (a *AggOp) Schema() *schema.Schema {
	in := a.Input.Schema()
	cols := make([]schema.Column, len(a.Aggs))
	for i, g := range a.Aggs {
		cols[i] = schema.Column{Name: g.OutName(), Type: g.OutType(in)}
	}
	return &schema.Schema{Cols: cols}
}
func (a *AggOp) Children() []Node { return []Node{a.Input} }
func (a *AggOp) WithChildren(ch []Node) Node {
	return &AggOp{Input: ch[0], Aggs: a.Aggs}
}
func (a *AggOp) Describe() string {
	aggs := make([]string, len(a.Aggs))
	for i, g := range a.Aggs {
		aggs[i] = g.describe()
	}
	return "Aggregate [" + strings.Join(aggs, ", ") + "]"
}

// -------------------------------------------------------------- OrderBy

// OrderKey is one sort key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// OrderBy sorts its input.
type OrderBy struct {
	Input Node
	Keys  []OrderKey
	// Elided marks a sort the optimizer proved redundant: the input
	// already provides exactly this ordering (same keys, same tie order),
	// so execution passes rows through. The node stays in the plan — it
	// keeps its EXPLAIN line, its profile identity and its spool keying —
	// only the sort work disappears.
	Elided bool
}

func (o *OrderBy) Schema() *schema.Schema { return o.Input.Schema() }
func (o *OrderBy) Children() []Node       { return []Node{o.Input} }
func (o *OrderBy) WithChildren(ch []Node) Node {
	return &OrderBy{Input: ch[0], Keys: o.Keys, Elided: o.Elided}
}
func (o *OrderBy) Describe() string {
	keys := make([]string, len(o.Keys))
	for i, k := range o.Keys {
		keys[i] = k.Expr.String()
		if k.Desc {
			keys[i] += " DESC"
		}
	}
	d := "OrderBy " + strings.Join(keys, ", ")
	if o.Elided {
		d += " [elided]"
	}
	return d
}

// ------------------------------------------------------------- UnionAll

// UnionAll concatenates inputs (multiset union). Distinct union is
// Distinct over UnionAll.
type UnionAll struct {
	Inputs []Node
}

func (u *UnionAll) Schema() *schema.Schema { return u.Inputs[0].Schema() }
func (u *UnionAll) Children() []Node       { return u.Inputs }
func (u *UnionAll) WithChildren(ch []Node) Node {
	return &UnionAll{Inputs: ch}
}
func (u *UnionAll) Describe() string { return fmt.Sprintf("UnionAll (%d inputs)", len(u.Inputs)) }

// ---------------------------------------------------------------- Apply

// ApplyKind selects apply semantics.
type ApplyKind int

const (
	// CrossApply is the paper's apply: R A E = ∪_{r∈R} ({r} × E(r)).
	CrossApply ApplyKind = iota
	// OuterApply pads a row of NULLs when E(r) is empty, preserving r —
	// the semantics scalar subqueries need outside aggregate inners.
	OuterApply
)

// Apply evaluates Inner once per Outer row, with the outer row visible to
// the inner tree through OuterRef expressions.
type Apply struct {
	Outer, Inner Node
	Kind         ApplyKind
}

func (a *Apply) Schema() *schema.Schema { return a.Outer.Schema().Concat(a.Inner.Schema()) }
func (a *Apply) Children() []Node       { return []Node{a.Outer, a.Inner} }
func (a *Apply) WithChildren(ch []Node) Node {
	return &Apply{Outer: ch[0], Inner: ch[1], Kind: a.Kind}
}
func (a *Apply) Describe() string {
	if a.Kind == OuterApply {
		return "OuterApply"
	}
	return "Apply"
}

// --------------------------------------------------------------- Exists

// Exists returns one tuple over the null schema if its input is nonempty,
// otherwise the empty relation (paper §4: S × {φ} = S and S × φ = φ, so
// Apply+Exists implements group/row selection). Negated inverts it.
type Exists struct {
	Input   Node
	Negated bool
}

func (e *Exists) Schema() *schema.Schema { return schema.New() }
func (e *Exists) Children() []Node       { return []Node{e.Input} }
func (e *Exists) WithChildren(ch []Node) Node {
	return &Exists{Input: ch[0], Negated: e.Negated}
}
func (e *Exists) Describe() string {
	if e.Negated {
		return "NotExists"
	}
	return "Exists"
}

// --------------------------------------------------------------- GApply

// PartitionHint selects the physical partitioning strategy for GApply.
type PartitionHint int

const (
	PartitionAuto PartitionHint = iota
	PartitionHash
	PartitionSort
)

func (p PartitionHint) String() string {
	switch p {
	case PartitionHash:
		return "hash"
	case PartitionSort:
		return "sort"
	default:
		return "auto"
	}
}

// GApply is the paper's operator: partition the outer input on GroupCols,
// bind each group to the relation-valued variable GroupVar, evaluate the
// per-group query Inner against it, and union the per-group results
// crossed with the grouping values:
//
//	RE1 GA_C RE2 = ∪_{c ∈ distinct(π_C(RE1))} ({c} × RE2(σ_{C=c} RE1))
type GApply struct {
	Outer     Node
	GroupCols []*ColRef
	GroupVar  string
	Inner     Node // per-group query; its leaves are GroupScan nodes
	Partition PartitionHint
}

// NewGApply builds a GApply whose inner GroupScans are (re)bound to the
// outer schema, which is what construction and every rule that changes
// the outer shape must do.
func NewGApply(outer Node, groupCols []*ColRef, groupVar string, inner Node) *GApply {
	inner = ReplaceGroupScans(inner, groupVar, outer.Schema())
	return &GApply{Outer: outer, GroupCols: groupCols, GroupVar: groupVar, Inner: inner}
}

func (g *GApply) Schema() *schema.Schema {
	out := g.Outer.Schema()
	cols := make([]schema.Column, 0, len(g.GroupCols)+g.Inner.Schema().Len())
	for _, c := range g.GroupCols {
		if ord, err := out.Resolve(c.Table, c.Name); err == nil {
			cols = append(cols, out.Cols[ord])
		} else {
			cols = append(cols, schema.Column{Table: c.Table, Name: c.Name})
		}
	}
	cols = append(cols, g.Inner.Schema().Cols...)
	return &schema.Schema{Cols: cols}
}
func (g *GApply) Children() []Node { return []Node{g.Outer, g.Inner} }
func (g *GApply) WithChildren(ch []Node) Node {
	return &GApply{Outer: ch[0], GroupCols: g.GroupCols, GroupVar: g.GroupVar, Inner: ch[1], Partition: g.Partition}
}
func (g *GApply) Describe() string {
	cols := make([]string, len(g.GroupCols))
	for i, c := range g.GroupCols {
		cols[i] = c.String()
	}
	return fmt.Sprintf("GApply [%s] $%s (partition=%s)", strings.Join(cols, ", "), g.GroupVar, g.Partition)
}
