package core

import (
	"testing"

	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

func partSchema() *schema.Schema {
	return schema.New(
		schema.Column{Table: "part", Name: "p_partkey", Type: types.KindInt},
		schema.Column{Table: "part", Name: "p_name", Type: types.KindString},
		schema.Column{Table: "part", Name: "p_retailprice", Type: types.KindFloat},
	)
}

func TestExprString(t *testing.T) {
	e := &And{Ops: []Expr{
		&Cmp{Op: ">=", L: Col("p_retailprice"), R: LitFloat(10)},
		&Not{Op: &Cmp{Op: "=", L: QCol("part", "p_name"), R: LitStr("bolt")}},
	}}
	want := "((p_retailprice >= 10) AND NOT (part.p_name = 'bolt'))"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	or := &Or{Ops: []Expr{LitInt(1), LitInt(2)}}
	if or.String() != "(1 OR 2)" {
		t.Errorf("Or.String = %q", or.String())
	}
	b := &BinOp{Op: "*", L: Col("x"), R: LitInt(3)}
	if b.String() != "(x * 3)" {
		t.Errorf("BinOp.String = %q", b.String())
	}
	f := &Func{Name: "coalesce", Args: []Expr{Col("a"), LitInt(0)}}
	if f.String() != "coalesce(a, 0)" {
		t.Errorf("Func.String = %q", f.String())
	}
	o := &OuterRef{Table: "t", Name: "c"}
	if o.String() != "outer.t.c" {
		t.Errorf("OuterRef.String = %q", o.String())
	}
}

func TestWalkVisitsAll(t *testing.T) {
	e := &Cmp{Op: "=", L: &BinOp{Op: "+", L: Col("a"), R: LitInt(1)}, R: Col("b")}
	var n int
	e.Walk(func(Expr) { n++ })
	if n != 5 {
		t.Errorf("visited %d nodes, want 5", n)
	}
}

func TestRewriteReplacesLeaves(t *testing.T) {
	e := &And{Ops: []Expr{
		&Cmp{Op: "=", L: Col("a"), R: LitInt(1)},
		&Or{Ops: []Expr{&Not{Op: &Cmp{Op: "<", L: Col("a"), R: Col("b")}}}},
	}}
	got := e.Rewrite(func(x Expr) Expr {
		if c, ok := x.(*ColRef); ok && c.Name == "a" {
			return Col("z")
		}
		return x
	})
	want := "((z = 1) OR (NOT (z < b)))"
	_ = want
	refs := ColRefsIn(got)
	for _, r := range refs {
		if r.Name == "a" {
			t.Error("rewrite left an 'a' reference behind")
		}
	}
	// Original must be untouched (Rewrite is persistent).
	if len(ColRefsIn(e)) != 3 || ColRefsIn(e)[0].Name != "a" {
		t.Error("rewrite mutated the original")
	}
}

func TestConjunctsAndAndAll(t *testing.T) {
	a := &Cmp{Op: "=", L: Col("x"), R: LitInt(1)}
	b := &Cmp{Op: "=", L: Col("y"), R: LitInt(2)}
	c := &Cmp{Op: "=", L: Col("z"), R: LitInt(3)}
	nested := &And{Ops: []Expr{a, &And{Ops: []Expr{b, c}}}}
	got := ConjunctsOf(nested)
	if len(got) != 3 {
		t.Fatalf("ConjunctsOf = %d conjuncts", len(got))
	}
	if ConjunctsOf(nil) != nil {
		t.Error("ConjunctsOf(nil)")
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil)")
	}
	if AndAll([]Expr{a}) != a {
		t.Error("AndAll singleton")
	}
	if _, ok := AndAll([]Expr{a, b}).(*And); !ok {
		t.Error("AndAll pair must be And")
	}
}

func TestColRefsInAndHasOuterRefs(t *testing.T) {
	e := &Cmp{Op: ">=", L: Col("p_retailprice"), R: &OuterRef{Name: "avgprice"}}
	refs := ColRefsIn(e)
	if len(refs) != 1 || refs[0].Name != "p_retailprice" {
		t.Errorf("ColRefsIn = %v", refs)
	}
	if !HasOuterRefs(e) {
		t.Error("HasOuterRefs must see the OuterRef")
	}
	if HasOuterRefs(Col("x")) {
		t.Error("plain ColRef has no outer refs")
	}
	if ColRefsIn(nil) != nil {
		t.Error("ColRefsIn(nil)")
	}
}

func TestInferType(t *testing.T) {
	in := partSchema()
	cases := []struct {
		e    Expr
		want types.Kind
	}{
		{Col("p_partkey"), types.KindInt},
		{Col("p_name"), types.KindString},
		{QCol("part", "p_retailprice"), types.KindFloat},
		{Col("nosuch"), types.KindNull},
		{LitStr("x"), types.KindString},
		{&BinOp{Op: "+", L: Col("p_partkey"), R: LitInt(1)}, types.KindInt},
		{&BinOp{Op: "+", L: Col("p_partkey"), R: LitFloat(1)}, types.KindFloat},
		{&BinOp{Op: "/", L: Col("p_partkey"), R: LitInt(2)}, types.KindFloat},
		{&Cmp{Op: "=", L: Col("p_partkey"), R: LitInt(1)}, types.KindBool},
		{&Not{Op: &Cmp{Op: "=", L: Col("p_partkey"), R: LitInt(1)}}, types.KindBool},
		{&Func{Name: "coalesce", Args: []Expr{Col("p_retailprice"), LitFloat(0)}}, types.KindFloat},
		{&Func{Name: "abs", Args: []Expr{Col("p_partkey")}}, types.KindInt},
		{&OuterRef{Name: "x"}, types.KindNull},
	}
	for _, c := range cases {
		if got := InferType(c.e, in); got != c.want {
			t.Errorf("InferType(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestExprName(t *testing.T) {
	if ExprName(QCol("t", "c"), 0) != "c" {
		t.Error("column keeps its name")
	}
	if ExprName(LitInt(1), 3) != "col3" {
		t.Error("computed column gets positional name")
	}
}
