package core

import (
	"strings"

	"gapplydb/internal/schema"
)

// Walk visits n and all descendants pre-order, including per-group query
// trees (GApply.Inner) and apply inners.
func Walk(n Node, f func(Node)) {
	if n == nil {
		return
	}
	f(n)
	for _, c := range n.Children() {
		Walk(c, f)
	}
}

// Transform rebuilds the tree bottom-up, replacing each node with the
// result of f. f receives nodes whose children have already been
// transformed.
func Transform(n Node, f func(Node) Node) Node {
	ch := n.Children()
	if len(ch) > 0 {
		newCh := make([]Node, len(ch))
		changed := false
		for i, c := range ch {
			newCh[i] = Transform(c, f)
			if newCh[i] != c {
				changed = true
			}
		}
		if changed {
			n = n.WithChildren(newCh)
		}
	}
	return f(n)
}

// ReplaceGroupScans rebinds every GroupScan for the named group variable
// in the tree to a new schema. Rules that change the shape of a GApply's
// outer input (projection pruning, pushing GApply below a join) call this
// to keep the per-group query's leaves consistent.
func ReplaceGroupScans(n Node, groupVar string, sch *schema.Schema) Node {
	return Transform(n, func(m Node) Node {
		if gs, ok := m.(*GroupScan); ok && strings.EqualFold(gs.Var, groupVar) {
			return &GroupScan{Var: gs.Var, Sch: sch}
		}
		return m
	})
}

// GroupScansIn returns all GroupScan nodes in the tree.
func GroupScansIn(n Node) []*GroupScan {
	var out []*GroupScan
	Walk(n, func(m Node) {
		if gs, ok := m.(*GroupScan); ok {
			out = append(out, gs)
		}
	})
	return out
}

// Format renders the plan tree for EXPLAIN output, one operator per line
// with two-space indentation per level.
func Format(n Node) string {
	var b strings.Builder
	format(n, 0, &b)
	return b.String()
}

func format(n Node, depth int, b *strings.Builder) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Describe())
	b.WriteByte('\n')
	for _, c := range n.Children() {
		format(c, depth+1, b)
	}
}

// ReferencedColumns collects every (qualified) column name referenced by
// expressions anywhere in the tree, including aggregate arguments, group
// columns and order keys, but excluding OuterRefs. The
// projection-before-GApply rule uses this over the per-group query to
// decide which outer columns PGQ actually needs.
func ReferencedColumns(n Node) []*ColRef {
	var out []*ColRef
	add := func(e Expr) {
		if e == nil {
			return
		}
		out = append(out, ColRefsIn(e)...)
	}
	Walk(n, func(m Node) {
		switch x := m.(type) {
		case *Select:
			add(x.Cond)
		case *Project:
			for _, e := range x.Exprs {
				add(e)
			}
		case *Join:
			add(x.Cond)
		case *GroupBy:
			for _, c := range x.GroupCols {
				out = append(out, c)
			}
			for _, a := range x.Aggs {
				add(a.Arg)
			}
		case *AggOp:
			for _, a := range x.Aggs {
				add(a.Arg)
			}
		case *OrderBy:
			for _, k := range x.Keys {
				add(k.Expr)
			}
		case *GApply:
			for _, c := range x.GroupCols {
				out = append(out, c)
			}
		}
	})
	return out
}

// OuterRefsIn collects every OuterRef used anywhere in the tree's
// expressions — the correlation footprint of a subquery plan.
func OuterRefsIn(n Node) []*OuterRef {
	var out []*OuterRef
	collect := func(e Expr) {
		if e == nil {
			return
		}
		e.Walk(func(x Expr) {
			if o, ok := x.(*OuterRef); ok {
				out = append(out, o)
			}
		})
	}
	Walk(n, func(m Node) {
		switch x := m.(type) {
		case *Select:
			collect(x.Cond)
		case *Project:
			for _, e := range x.Exprs {
				collect(e)
			}
		case *Join:
			collect(x.Cond)
		case *GroupBy:
			for _, a := range x.Aggs {
				collect(a.Arg)
			}
		case *AggOp:
			for _, a := range x.Aggs {
				collect(a.Arg)
			}
		case *OrderBy:
			for _, k := range x.Keys {
				collect(k.Expr)
			}
		}
	})
	return out
}

// GroupInvariant reports whether the subtree's result is independent of
// the enclosing group binding and of any outer row: it contains no
// GroupScan (of any variable — conservative, so a nested GApply's inner
// is never misclassified) and no OuterRef in any expression position.
// Such a subtree produces the same rows on every re-Open within one
// query, which is what licenses spooling it.
func GroupInvariant(n Node) bool {
	invariant := true
	Walk(n, func(m Node) {
		if _, ok := m.(*GroupScan); ok {
			invariant = false
		}
	})
	if !invariant {
		return false
	}
	return len(OuterRefsIn(n)) == 0
}

// InvariantRoots returns the maximal group-invariant subtrees of a
// per-group plan, top-down: once a subtree qualifies, its descendants
// are not reported separately. A nested GApply is treated as opaque on
// its inner side — only its Outer input is searched — because the
// nested operator spools its own inner independently.
func InvariantRoots(n Node) []Node {
	var out []Node
	var visit func(Node)
	visit = func(m Node) {
		if m == nil {
			return
		}
		if GroupInvariant(m) {
			out = append(out, m)
			return
		}
		if ga, ok := m.(*GApply); ok {
			visit(ga.Outer)
			return
		}
		for _, c := range m.Children() {
			visit(c)
		}
	}
	visit(n)
	return out
}

// DedupCols returns the column list with duplicates (same qualified name,
// case-insensitive) removed, preserving first-occurrence order.
func DedupCols(cols []*ColRef) []*ColRef {
	seen := make(map[string]bool, len(cols))
	var out []*ColRef
	for _, c := range cols {
		key := strings.ToLower(c.Table) + "." + strings.ToLower(c.Name)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	return out
}
