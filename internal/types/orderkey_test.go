package types

import (
	"bytes"
	"math"
	"testing"
)

// orderKeyCorpus is a hostile value set: every kind, NULL, exact and
// inexact int/float interleavings around 2^53 and 2^63, NaN and signed
// zeros, strings with embedded NULs and escape-adjacent bytes.
func orderKeyCorpus() []Value {
	vals := []Value{
		Null,
		NewBool(false), NewBool(true),
		NewDate(-400000), NewDate(0), NewDate(8035), NewDate(10591),
		NewString(""), NewString("a"), NewString("ab"), NewString("b"),
		NewString("a\x00"), NewString("a\x00b"), NewString("a\x01"),
		NewString("a\xff"), NewString("\x00"), NewString("\x00\x00"),
		NewString("Supplier#000000001"),
	}
	ints := []int64{
		math.MinInt64, math.MinInt64 + 1, math.MinInt64 + 511, math.MinInt64 + 512, math.MinInt64 + 513,
		-(1 << 62), -(1 << 53) - 1, -(1 << 53), -(1<<53 - 1),
		-4567, -1, 0, 1, 2, 4567,
		1<<53 - 1, 1 << 53, 1<<53 + 1, 1<<53 + 2, 1<<53 + 3,
		1 << 62, 1<<62 + 1,
		math.MaxInt64 - 1024, math.MaxInt64 - 513, math.MaxInt64 - 512, math.MaxInt64 - 511, math.MaxInt64,
	}
	for _, i := range ints {
		vals = append(vals, NewInt(i))
	}
	floats := []float64{
		math.Inf(-1), -math.MaxFloat64, -9.223372036854776e18, // -2^63
		-1e18, -4567.25, -1, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64,
		0.5, 1, 2, 4567.25,
		9007199254740991, 9007199254740992, 9007199254740994, // 2^53-1, 2^53, 2^53+2
		4.611686018427388e18, // 2^62
		9.223372036854776e18, // 2^63 (beyond every int64)
		1e19, math.MaxFloat64, math.Inf(1),
		math.NaN(), math.Float64frombits(0xFFF8000000000001), // NaN with a hostile payload
	}
	for _, f := range floats {
		vals = append(vals, NewFloat(f))
	}
	return vals
}

// TestOrderKeyMatchesSortCompare: byte order of encodings is exactly
// SortCompare order, over every pair of the corpus.
func TestOrderKeyMatchesSortCompare(t *testing.T) {
	vals := orderKeyCorpus()
	keys := make([][]byte, len(vals))
	for i, v := range vals {
		keys[i] = v.AppendOrderKey(nil)
	}
	for i, a := range vals {
		for j, b := range vals {
			want := SortCompare(a, b)
			got := bytes.Compare(keys[i], keys[j])
			if got != want {
				t.Errorf("order mismatch: SortCompare(%v, %v) = %d but keys compare %d\n a=%x\n b=%x",
					a, b, want, got, keys[i], keys[j])
			}
		}
	}
}

// TestOrderKeyCanonical: SortCompare-equal values must encode to
// identical bytes — the property that makes index order reproduce the
// executor's stable sorts (which never distinguish equal keys).
func TestOrderKeyCanonical(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(2), NewFloat(2)},
		{NewInt(0), NewFloat(math.Copysign(0, -1))},
		{NewFloat(0), NewFloat(math.Copysign(0, -1))},
		{NewInt(1 << 60), NewFloat(float64(int64(1) << 60))},
		{NewFloat(math.NaN()), NewFloat(math.Float64frombits(0xFFF8000000000001))},
	}
	for _, p := range pairs {
		a := p[0].AppendOrderKey(nil)
		b := p[1].AppendOrderKey(nil)
		if !bytes.Equal(a, b) {
			t.Errorf("equal values encode differently: %v → %x, %v → %x", p[0], a, p[1], b)
		}
	}
}

// TestOrderKeyRoundTrip: decoding yields a value Identical to the input
// (and bit-exact for non-numeric kinds), and consumes exactly the
// encoded bytes.
func TestOrderKeyRoundTrip(t *testing.T) {
	for _, v := range orderKeyCorpus() {
		enc := v.AppendOrderKey(nil)
		got, rest, err := DecodeOrderKey(enc)
		if err != nil {
			t.Fatalf("decode %v (%x): %v", v, enc, err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode %v left %d bytes", v, len(rest))
		}
		if SortCompare(got, v) != 0 {
			t.Errorf("round trip %v → %v (not Identical)", v, got)
		}
		switch v.K {
		case KindString, KindBool, KindDate, KindNull:
			if got != v {
				t.Errorf("round trip %v → %v (kind lost)", v, got)
			}
		case KindInt:
			// Outside the float64-exact grid the integer must survive
			// bit-exactly — no float64 can be Identical to it.
			if _, exact := exactFloatImage(v.I); !exact {
				if got.K != KindInt || got.I != v.I {
					t.Errorf("inexact int round trip %v → %v", v, got)
				}
			}
		}
	}
}

// TestOrderKeysMultiColumn: concatenated per-column keys compare exactly
// as CompareRows over those columns — including across a short string
// followed by other columns (the prefix-free property).
func TestOrderKeysMultiColumn(t *testing.T) {
	rows := []Row{
		{NewString("a"), NewInt(9)},
		{NewString("a"), NewInt(10)},
		{NewString("a\x00"), NewInt(1)},
		{NewString("ab"), NewInt(1)},
		{Null, NewInt(5)},
		{NewString("a"), Null},
		{NewInt(7), NewFloat(7.5)},
	}
	cols := []int{0, 1}
	keys := make([][]byte, len(rows))
	for i, r := range rows {
		keys[i] = r.AppendOrderKeys(nil, cols)
	}
	for i := range rows {
		for j := range rows {
			want := CompareRows(rows[i], rows[j], cols, nil)
			got := bytes.Compare(keys[i], keys[j])
			if got != want {
				t.Errorf("rows %v vs %v: CompareRows=%d keys=%d", rows[i], rows[j], want, got)
			}
		}
	}
}

// FuzzOrderKeyNumeric cross-checks the delicate numeric interleave: for
// arbitrary (int64, float64, int64) the three pairwise byte orders must
// match SortCompare, and all three values must round-trip.
func FuzzOrderKeyNumeric(f *testing.F) {
	f.Add(int64(0), 0.0, int64(1))
	f.Add(int64(1<<53+1), float64(1<<53), int64(math.MaxInt64))
	f.Add(int64(math.MinInt64), math.Inf(-1), int64(math.MinInt64+512))
	f.Add(int64(math.MaxInt64), 9.223372036854776e18, int64(math.MaxInt64-512))
	f.Add(int64(42), math.NaN(), int64(-42))
	f.Fuzz(func(t *testing.T, i int64, g float64, j int64) {
		vals := []Value{NewInt(i), NewFloat(g), NewInt(j), NewFloat(math.Float64frombits(uint64(i)))}
		keys := make([][]byte, len(vals))
		for k, v := range vals {
			keys[k] = v.AppendOrderKey(nil)
			got, rest, err := DecodeOrderKey(keys[k])
			if err != nil || len(rest) != 0 {
				t.Fatalf("round trip %v: err=%v rest=%d", v, err, len(rest))
			}
			if SortCompare(got, v) != 0 {
				t.Fatalf("round trip %v → %v", v, got)
			}
		}
		for a := range vals {
			for b := range vals {
				if got, want := bytes.Compare(keys[a], keys[b]), SortCompare(vals[a], vals[b]); got != want {
					t.Fatalf("SortCompare(%v, %v)=%d but keys compare %d", vals[a], vals[b], want, got)
				}
			}
		}
	})
}

// FuzzOrderKeyString: arbitrary byte strings (embedded NULs, 0xFF runs)
// must round-trip and order correctly against a second string.
func FuzzOrderKeyString(f *testing.F) {
	f.Add("", "a")
	f.Add("a\x00", "a")
	f.Add("a\x00\xff", "a\x00\x01")
	f.Add("\x00\x00\x00", "\x00")
	f.Fuzz(func(t *testing.T, a, b string) {
		va, vb := NewString(a), NewString(b)
		ka := va.AppendOrderKey(nil)
		kb := vb.AppendOrderKey(nil)
		if got, want := bytes.Compare(ka, kb), SortCompare(va, vb); got != want {
			t.Fatalf("SortCompare(%q, %q)=%d but keys compare %d", a, b, want, got)
		}
		got, rest, err := DecodeOrderKey(ka)
		if err != nil || len(rest) != 0 || got.S != a || got.K != KindString {
			t.Fatalf("round trip %q → %v (err=%v, rest=%d)", a, got, err, len(rest))
		}
	})
}
