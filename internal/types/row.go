package types

import (
	"encoding/binary"
	"math"
	"strings"
)

// Row is a tuple of values. Operators share backing arrays where safe;
// Clone when a row outlives its producer (e.g. materialized partitions).
type Row []Value

// Clone returns a copy of the row with fresh backing storage.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns the concatenation of r and s in a fresh row, the tuple
// shape produced by joins and by GApply's cross product of grouping
// values with per-group results.
func (r Row) Concat(s Row) Row {
	out := make(Row, 0, len(r)+len(s))
	out = append(out, r...)
	return append(out, s...)
}

// Project returns the row restricted to the given column ordinals.
func (r Row) Project(cols []int) Row {
	out := make(Row, len(cols))
	for i, c := range cols {
		out[i] = r[c]
	}
	return out
}

// Identical reports column-wise Identical equality (NULLs match NULLs),
// the equality used by DISTINCT and by grouping.
func (r Row) Identical(s Row) bool {
	if len(r) != len(s) {
		return false
	}
	for i := range r {
		if !Identical(r[i], s[i]) {
			return false
		}
	}
	return true
}

// Hash folds the listed columns into a hash value.
func (r Row) Hash(cols []int) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range cols {
		h = r[c].Hash(h)
	}
	return h
}

// Key renders the listed columns into a canonical string usable as a Go
// map key for grouping and duplicate elimination. Values that are
// Identical produce identical keys: numeric values whose float64 image
// is exact are canonicalized to that image (so INT 2 and FLOAT 2.0
// agree), while integers beyond the float64-exact range get an exact
// integer encoding — two distinct int64 grouping keys must never merge,
// however large (hash- and sort-based partitioning both rely on this).
func (r Row) Key(cols []int) string {
	return string(r.AppendKey(nil, cols))
}

// AppendKey appends the canonical key encoding of the listed columns
// (exactly Key's encoding) to dst and returns the extended slice. Hot
// paths that probe a map per row reuse one scratch buffer with
// AppendKey(buf[:0], cols) and look up with m[string(buf)] — a pattern
// the compiler turns into an allocation-free lookup.
func (r Row) AppendKey(dst []byte, cols []int) []byte {
	var buf [9]byte
	for _, c := range cols {
		v := r[c]
		switch v.K {
		case KindNull:
			dst = append(dst, 0)
		case KindInt:
			if f, ok := exactFloatImage(v.I); ok {
				buf[0] = 1
				binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(f))
			} else {
				buf[0] = 5
				binary.LittleEndian.PutUint64(buf[1:], uint64(v.I))
			}
			dst = append(dst, buf[:9]...)
		case KindFloat:
			buf[0] = 1
			binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(canonFloat(v.F)))
			dst = append(dst, buf[:9]...)
		case KindString:
			buf[0] = 2
			binary.LittleEndian.PutUint64(buf[1:], uint64(len(v.S)))
			dst = append(dst, buf[:9]...)
			dst = append(dst, v.S...)
		case KindBool:
			dst = append(dst, 3, byte(v.I))
		case KindDate:
			buf[0] = 4
			binary.LittleEndian.PutUint64(buf[1:], uint64(v.I))
			dst = append(dst, buf[:9]...)
		}
	}
	return dst
}

// Bytes estimates the in-memory footprint of the row: the value structs
// plus string payloads and the slice header. Resource budgets use it to
// meter materialized partitions; it is an estimate, not an accounting of
// the allocator's exact overhead.
func (r Row) Bytes() int {
	const valueSize = 40 // unsafe.Sizeof(Value{}): kind + int64 + float64 + string header
	n := 24 + len(r)*valueSize
	for _, v := range r {
		if v.K == KindString {
			n += len(v.S)
		}
	}
	return n
}

// KeyAll renders every column; used when whole rows must be deduplicated.
func (r Row) KeyAll() string {
	cols := make([]int, len(r))
	for i := range cols {
		cols[i] = i
	}
	return r.Key(cols)
}

// String renders the row for debugging and the result printer.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// CompareRows orders two rows by the listed columns with per-column
// direction (true = descending). Used by Sort and merge paths.
func CompareRows(a, b Row, cols []int, desc []bool) int {
	for i, c := range cols {
		cmp := SortCompare(a[c], b[c])
		if cmp == 0 {
			continue
		}
		if desc != nil && i < len(desc) && desc[i] {
			return -cmp
		}
		return cmp
	}
	return 0
}
