package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindString: "VARCHAR", KindBool: "BOOL", KindDate: "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.K != KindInt || v.Int() != 42 {
		t.Errorf("NewInt: %+v", v)
	}
	if v := NewFloat(2.5); v.K != KindFloat || v.Float() != 2.5 {
		t.Errorf("NewFloat: %+v", v)
	}
	if v := NewString("abc"); v.K != KindString || v.Str() != "abc" {
		t.Errorf("NewString: %+v", v)
	}
	if v := NewBool(true); !v.Bool() {
		t.Errorf("NewBool(true): %+v", v)
	}
	if v := NewBool(false); v.Bool() {
		t.Errorf("NewBool(false): %+v", v)
	}
	if v := NewDate(100); v.K != KindDate || v.Int() != 100 {
		t.Errorf("NewDate: %+v", v)
	}
	if !Null.IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull wrong")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value must be NULL")
	}
}

func TestFloatCoercion(t *testing.T) {
	if got := NewInt(3).Float(); got != 3 {
		t.Errorf("int→float = %v", got)
	}
	if got := NewBool(true).Float(); got != 1 {
		t.Errorf("bool→float = %v", got)
	}
	if got := Null.Float(); got != 0 {
		t.Errorf("null→float = %v", got)
	}
	if got := NewString("x").Float(); got != 0 {
		t.Errorf("string→float = %v", got)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewDate(12), "date(12)"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.v, got, c.want)
		}
	}
	if got := NewString("hi").SQLLiteral(); got != "'hi'" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := NewInt(4).SQLLiteral(); got != "4" {
		t.Errorf("SQLLiteral = %q", got)
	}
}

func TestTriLogic(t *testing.T) {
	// Kleene truth tables.
	and := [3][3]Tri{
		// False, True, Unknown (row = left operand)
		{False, False, False},
		{False, True, Unknown},
		{False, Unknown, Unknown},
	}
	or := [3][3]Tri{
		{False, True, Unknown},
		{True, True, True},
		{Unknown, True, Unknown},
	}
	vals := []Tri{False, True, Unknown}
	for i, a := range vals {
		for j, b := range vals {
			if got := a.And(b); got != and[i][j] {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, and[i][j])
			}
			if got := a.Or(b); got != or[i][j] {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, or[i][j])
			}
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("Not wrong")
	}
	if !Unknown.Value().IsNull() || !True.Value().Bool() || False.Value().Bool() {
		t.Error("Tri.Value wrong")
	}
	if TriOf(true) != True || TriOf(false) != False {
		t.Error("TriOf wrong")
	}
	if Unknown.String() != "unknown" {
		t.Error("Tri.String wrong")
	}
}

func TestCompare(t *testing.T) {
	type tc struct {
		a, b Value
		cmp  int
		ok   bool
	}
	cases := []tc{
		{NewInt(1), NewInt(2), -1, true},
		{NewInt(2), NewInt(2), 0, true},
		{NewInt(3), NewInt(2), 1, true},
		{NewInt(2), NewFloat(2.0), 0, true},
		{NewFloat(1.5), NewInt(2), -1, true},
		{NewString("a"), NewString("b"), -1, true},
		{NewString("b"), NewString("b"), 0, true},
		{NewBool(false), NewBool(true), -1, true},
		{NewDate(1), NewDate(5), -1, true},
		{Null, NewInt(1), 0, false},
		{NewInt(1), Null, 0, false},
		{NewInt(1), NewString("1"), 0, false},
		{NewBool(true), NewInt(1), 0, false},
	}
	for _, c := range cases {
		got, ok := Compare(c.a, c.b)
		if ok != c.ok || (ok && got != c.cmp) {
			t.Errorf("Compare(%v, %v) = %d,%v want %d,%v", c.a, c.b, got, ok, c.cmp, c.ok)
		}
	}
}

func TestSortCompareTotalOrder(t *testing.T) {
	if SortCompare(Null, NewInt(-1000)) != -1 {
		t.Error("NULL must sort first")
	}
	if SortCompare(NewInt(1), Null) != 1 {
		t.Error("NULL must sort first (reversed)")
	}
	if SortCompare(Null, Null) != 0 {
		t.Error("NULL == NULL in sort order")
	}
	// Incomparable kinds fall back to kind ordering, stably.
	a, b := NewInt(5), NewString("5")
	if SortCompare(a, b) >= 0 || SortCompare(b, a) <= 0 {
		t.Error("kind fallback must be antisymmetric")
	}
	if SortCompare(NewBool(true), NewBool(true)) != 0 {
		t.Error("equal bools")
	}
}

func TestIdentical(t *testing.T) {
	if !Identical(Null, Null) {
		t.Error("NULL is identical to NULL for grouping")
	}
	if Identical(Null, NewInt(0)) {
		t.Error("NULL != 0")
	}
	if !Identical(NewInt(2), NewFloat(2)) {
		t.Error("2 and 2.0 group together")
	}
	if Identical(NewInt(2), NewInt(3)) {
		t.Error("2 != 3")
	}
}

func TestHashConsistentWithIdentical(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(2), NewFloat(2)},
		{Null, Null},
		{NewString("xy"), NewString("xy")},
		{NewBool(true), NewBool(true)},
		{NewDate(9), NewDate(9)},
	}
	for _, p := range pairs {
		if p[0].Hash(17) != p[1].Hash(17) {
			t.Errorf("Identical values %v and %v hash differently", p[0], p[1])
		}
	}
	if NewString("a").Hash(17) == NewString("b").Hash(17) {
		t.Error("distinct strings should (overwhelmingly) hash differently")
	}
}

func TestArithmetic(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected err: %v", err)
		}
		return v
	}
	if got := mustV(Add(NewInt(2), NewInt(3))); got.Int() != 5 || got.K != KindInt {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustV(Sub(NewInt(2), NewInt(3))); got.Int() != -1 {
		t.Errorf("2-3 = %v", got)
	}
	if got := mustV(Mul(NewInt(2), NewFloat(1.5))); got.K != KindFloat || got.Float() != 3 {
		t.Errorf("2*1.5 = %v", got)
	}
	if got := mustV(Div(NewInt(7), NewInt(2))); got.Int() != 3 {
		t.Errorf("7/2 = %v (integer division truncates)", got)
	}
	if got := mustV(Div(NewFloat(7), NewInt(2))); got.Float() != 3.5 {
		t.Errorf("7.0/2 = %v", got)
	}
	if got := mustV(Add(Null, NewInt(1))); !got.IsNull() {
		t.Errorf("NULL+1 = %v, want NULL", got)
	}
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("integer division by zero must error")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero must error")
	}
	if _, err := Add(NewString("a"), NewInt(1)); err == nil {
		t.Error("string arithmetic must error")
	}
}

// Property: Compare is antisymmetric and consistent with SortCompare on
// comparable numeric values.
func TestQuickCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		c1, ok1 := Compare(x, y)
		c2, ok2 := Compare(y, x)
		if !ok1 || !ok2 {
			return false
		}
		return c1 == -c2 && SortCompare(x, y) == c1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: int→float hashing is consistent with equality across kinds.
func TestQuickHashCrossKind(t *testing.T) {
	f := func(a int32) bool {
		x, y := NewInt(int64(a)), NewFloat(float64(a))
		return x.Hash(7) == y.Hash(7) && Identical(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: arithmetic on floats matches Go semantics (away from zero div).
func TestQuickFloatArith(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		s, err := Add(NewFloat(a), NewFloat(b))
		if err != nil {
			return false
		}
		return s.Float() == a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
