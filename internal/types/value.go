// Package types defines the value model of the engine: SQL-style dynamically
// typed scalar values with NULL, three-valued logic for predicates, total
// ordering for sorting and hashing for partitioning.
//
// The representation is deliberately compact (one small struct, no pointers
// except for strings) because the GApply executor moves large numbers of
// values through partition tables.
package types

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the scalar types the engine supports. The paper's
// workload (TPC-H publishing) needs integers, decimals and strings; BOOL
// exists for predicate results and DATE is carried as an ordered integer
// (days since epoch) with its own render form.
type Kind uint8

const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOL"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Numeric reports whether values of this kind participate in arithmetic.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	K Kind
	I int64   // INT, BOOL (0/1), DATE (days)
	F float64 // FLOAT
	S string  // VARCHAR
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an INT value.
func NewInt(i int64) Value { return Value{K: KindInt, I: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{K: KindFloat, F: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{K: KindString, S: s} }

// NewBool returns a BOOL value.
func NewBool(b bool) Value {
	v := Value{K: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// NewDate returns a DATE value holding days since an arbitrary epoch.
func NewDate(days int64) Value { return Value{K: KindDate, I: days} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool returns the truth value of a BOOL; NULL and non-bool are false.
func (v Value) Bool() bool { return v.K == KindBool && v.I != 0 }

// Int returns the integer payload (valid for INT, BOOL, DATE).
func (v Value) Int() int64 { return v.I }

// Float returns the value coerced to float64. INT and DATE widen; other
// kinds return 0. Use Kind checks before calling when exactness matters.
func (v Value) Float() float64 {
	switch v.K {
	case KindFloat:
		return v.F
	case KindInt, KindBool, KindDate:
		return float64(v.I)
	default:
		return 0
	}
}

// Str returns the string payload.
func (v Value) Str() string { return v.S }

// String renders the value the way the result printer and tagger show it.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return fmt.Sprintf("date(%d)", v.I)
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.K))
	}
}

// SQLLiteral renders the value as a SQL literal (strings quoted).
func (v Value) SQLLiteral() string {
	if v.K == KindString {
		return "'" + v.S + "'"
	}
	return v.String()
}

// Tri is SQL three-valued logic.
type Tri uint8

const (
	False Tri = iota
	True
	Unknown
)

// String renders the truth value.
func (t Tri) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// TriOf lifts a Go bool into Tri.
func TriOf(b bool) Tri {
	if b {
		return True
	}
	return False
}

// And is three-valued conjunction.
func (t Tri) And(o Tri) Tri {
	if t == False || o == False {
		return False
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return True
}

// Or is three-valued disjunction.
func (t Tri) Or(o Tri) Tri {
	if t == True || o == True {
		return True
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return False
}

// Not is three-valued negation.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Value converts the truth value to a SQL value (Unknown ⇒ NULL).
func (t Tri) Value() Value {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	default:
		return Null
	}
}

// comparable pairs: numeric/numeric (with widening), string/string,
// bool/bool, date/date. Compare returns -1, 0, +1. If either side is NULL
// or the kinds are incomparable the second return is false; predicates
// must then evaluate to Unknown.
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	switch {
	case a.K.Numeric() && b.K.Numeric():
		if a.K == KindInt && b.K == KindInt {
			switch {
			case a.I < b.I:
				return -1, true
			case a.I > b.I:
				return 1, true
			}
			return 0, true
		}
		// Mixed INT/FLOAT compares exactly: converting the integer side
		// to float64 would collapse distinct values beyond 2^53 (e.g.
		// 2^53 and 2^53+1 share a float64 image), which would make
		// grouping equality intransitive and let hash partitioning merge
		// keys sort partitioning keeps apart.
		if a.K == KindInt {
			return compareIntFloat(a.I, b.F), true
		}
		if b.K == KindInt {
			return -compareIntFloat(b.I, a.F), true
		}
		af, bf := a.F, b.F
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		case af == bf:
			return 0, true
		}
		// At least one side is NaN. NaN orders after every non-NaN float
		// and equals itself — the same placement compareIntFloat gives it
		// — so grouping equality stays an equivalence relation instead of
		// NaN comparing "equal" to everything.
		switch {
		case math.IsNaN(af) && math.IsNaN(bf):
			return 0, true
		case math.IsNaN(af):
			return 1, true
		default:
			return -1, true
		}
	case a.K == KindString && b.K == KindString:
		switch {
		case a.S < b.S:
			return -1, true
		case a.S > b.S:
			return 1, true
		}
		return 0, true
	case a.K == KindBool && b.K == KindBool, a.K == KindDate && b.K == KindDate:
		switch {
		case a.I < b.I:
			return -1, true
		case a.I > b.I:
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// SortCompare is a total order used by ORDER BY and sort-based
// partitioning: NULL sorts first, then by kind for incomparable kinds,
// then by Compare.
func SortCompare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if c, ok := Compare(a, b); ok {
		return c
	}
	// Incomparable kinds: order by kind tag so sorting is still total.
	switch {
	case a.K < b.K:
		return -1
	case a.K > b.K:
		return 1
	}
	return 0
}

// compareIntFloat compares an int64 against a float64 exactly, without
// rounding the integer through a float64 image. Returns -1/0/+1 for
// i </==/> f; NaN orders after every integer.
func compareIntFloat(i int64, f float64) int {
	const maxInt64f = 9223372036854775808.0 // 2^63, exactly representable
	switch {
	case math.IsNaN(f):
		return -1
	case f >= maxInt64f:
		return -1
	case f < -maxInt64f:
		return 1
	}
	t := math.Trunc(f) // in [-2^63, 2^63): int64(t) is defined
	ti := int64(t)
	switch {
	case i < ti:
		return -1
	case i > ti:
		return 1
	case f > t: // equal integer parts; a positive fraction makes f larger
		return -1
	case f < t:
		return 1
	}
	return 0
}

// exactFloatImage returns the float64 with exactly the numeric value of
// i, when one exists (|i| ≤ 2^53 always qualifies; larger magnitudes
// only when they fall on the float64 grid).
func exactFloatImage(i int64) (float64, bool) {
	const maxInt64f = 9223372036854775808.0 // 2^63
	f := float64(i)
	if f >= -maxInt64f && f < maxInt64f && int64(f) == i {
		return f, true
	}
	return 0, false
}

// canonFloat canonicalizes a float64 for keying and hashing: -0.0 and
// +0.0 compare equal, so they must produce the same image — and so do
// all NaNs (Compare reports any two NaNs equal), so every NaN payload
// collapses to the canonical one.
func canonFloat(f float64) float64 {
	if f == 0 {
		return 0
	}
	if math.IsNaN(f) {
		return math.NaN()
	}
	return f
}

// Identical reports whether two values are the same for grouping and
// DISTINCT purposes (NULLs group together, unlike predicate equality).
func Identical(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Hash folds the value into an FNV-1a style hash, seeding with h. Values
// that are Identical hash identically: INT 2 and FLOAT 2.0 compare
// equal, so both hash through the float image; an integer beyond the
// float64-exact range (which no float64 can equal) hashes its exact
// bits; -0.0 hashes like +0.0. Distinct values may collide — the hash
// partitioner resolves buckets by comparing actual key values.
func (v Value) Hash(h uint64) uint64 {
	const prime = 1099511628211
	mix := func(h uint64, b byte) uint64 { return (h ^ uint64(b)) * prime }
	mix64 := func(h uint64, x uint64) uint64 {
		for i := 0; i < 8; i++ {
			h = mix(h, byte(x>>(8*i)))
		}
		return h
	}
	switch v.K {
	case KindNull:
		return mix(h, 1)
	case KindInt:
		if f, ok := exactFloatImage(v.I); ok {
			return mix64(mix(h, 2), math.Float64bits(f))
		}
		return mix64(mix(h, 6), uint64(v.I))
	case KindFloat:
		return mix64(mix(h, 2), math.Float64bits(canonFloat(v.F)))
	case KindString:
		h = mix(h, 3)
		for i := 0; i < len(v.S); i++ {
			h = mix(h, v.S[i])
		}
		return h
	case KindBool:
		return mix64(mix(h, 4), uint64(v.I))
	case KindDate:
		return mix64(mix(h, 5), uint64(v.I))
	default:
		return mix(h, 0xff)
	}
}

// Add returns a+b with SQL NULL propagation and numeric widening.
func Add(a, b Value) (Value, error) { return arith(a, b, '+') }

// Sub returns a-b.
func Sub(a, b Value) (Value, error) { return arith(a, b, '-') }

// Mul returns a*b.
func Mul(a, b Value) (Value, error) { return arith(a, b, '*') }

// Div returns a/b; integer division truncates, division by zero errors.
func Div(a, b Value) (Value, error) { return arith(a, b, '/') }

func arith(a, b Value, op byte) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.K.Numeric() || !b.K.Numeric() {
		return Null, fmt.Errorf("types: cannot apply %c to %s and %s", op, a.K, b.K)
	}
	if a.K == KindInt && b.K == KindInt {
		switch op {
		case '+':
			return NewInt(a.I + b.I), nil
		case '-':
			return NewInt(a.I - b.I), nil
		case '*':
			return NewInt(a.I * b.I), nil
		case '/':
			if b.I == 0 {
				return Null, fmt.Errorf("types: division by zero")
			}
			return NewInt(a.I / b.I), nil
		}
	}
	af, bf := a.Float(), b.Float()
	switch op {
	case '+':
		return NewFloat(af + bf), nil
	case '-':
		return NewFloat(af - bf), nil
	case '*':
		return NewFloat(af * bf), nil
	case '/':
		if bf == 0 {
			return Null, fmt.Errorf("types: division by zero")
		}
		return NewFloat(af / bf), nil
	}
	return Null, fmt.Errorf("types: unknown operator %c", op)
}
