package types

import (
	"math"
	"testing"
	"testing/quick"
)

// The float64-exact integer boundary: 2^53 is the largest power of two
// below which every int64 has a distinct float64 image. 2^53 and 2^53+1
// share the image 2^53.0, the collision behind the grouping bug the
// exact key encoding fixes.
const twoTo53 = int64(1) << 53

// TestCompareIntFloatExact pins the mixed INT/FLOAT comparison: it must
// be exact, never rounding the integer through a float64 image.
func TestCompareIntFloatExact(t *testing.T) {
	cmp := func(i int64, f float64) int {
		c, ok := Compare(NewInt(i), NewFloat(f))
		if !ok {
			t.Fatalf("Compare(%d, %g) not ok", i, f)
		}
		return c
	}
	cases := []struct {
		i    int64
		f    float64
		want int
	}{
		{2, 2.0, 0},
		{3, 3.5, -1},
		{4, 3.5, 1},
		{-4, -3.5, -1},
		{-3, -3.5, 1},
		// 2^53+1 rounds to 2^53.0 as a float; the comparison must still
		// see that the integer is strictly larger.
		{twoTo53, float64(twoTo53), 0},
		{twoTo53 + 1, float64(twoTo53), 1},
		{twoTo53 + 1, 9007199254740994.0, -1}, // next float on the grid
		{-(twoTo53 + 1), -float64(twoTo53), -1},
		// Floats beyond the int64 range order strictly outside it.
		{math.MaxInt64, 1e300, -1},
		{math.MinInt64, -1e300, 1},
		{math.MaxInt64, 9223372036854775808.0, -1}, // 2^63 itself
		{math.MinInt64, -9223372036854775808.0, 0}, // -2^63 is exact
		// NaN orders after every integer (SortCompare totality).
		{0, math.NaN(), -1},
		{math.MaxInt64, math.NaN(), -1},
	}
	for _, c := range cases {
		if got := cmp(c.i, c.f); got != c.want {
			t.Errorf("Compare(INT %d, FLOAT %g) = %d, want %d", c.i, c.f, got, c.want)
		}
		// Antisymmetry with the operands swapped.
		if rc, ok := Compare(NewFloat(c.f), NewInt(c.i)); !ok || rc != -c.want {
			t.Errorf("Compare(FLOAT %g, INT %d) = %d, want %d", c.f, c.i, rc, -c.want)
		}
	}
}

// TestBigIntKeysStayDistinct is the regression test for the partitioning
// collision: two int64 grouping keys sharing a float64 image must
// produce different canonical keys, or hash partitioning merges groups
// that sort partitioning keeps apart.
func TestBigIntKeysStayDistinct(t *testing.T) {
	a := Row{NewInt(twoTo53)}
	b := Row{NewInt(twoTo53 + 1)}
	if a.Key([]int{0}) == b.Key([]int{0}) {
		t.Errorf("Key(%d) == Key(%d): float64 image collision leaks into grouping keys", twoTo53, twoTo53+1)
	}
	if Identical(a[0], b[0]) {
		t.Errorf("Identical(%d, %d) = true", twoTo53, twoTo53+1)
	}
	// Conversely INT 2 and FLOAT 2.0 are Identical and must agree.
	i2, f2 := Row{NewInt(2)}, Row{NewFloat(2)}
	if i2.Key([]int{0}) != f2.Key([]int{0}) {
		t.Error("INT 2 and FLOAT 2.0 must share a canonical key")
	}
	if i2.Hash([]int{0}) != f2.Hash([]int{0}) {
		t.Error("INT 2 and FLOAT 2.0 must hash identically")
	}
	// ... including at the exactness boundary itself.
	ib, fb := Row{NewInt(twoTo53)}, Row{NewFloat(float64(twoTo53))}
	if ib.Key([]int{0}) != fb.Key([]int{0}) || ib.Hash([]int{0}) != fb.Hash([]int{0}) {
		t.Errorf("INT 2^53 and FLOAT 2^53 must share key and hash")
	}
}

// TestZeroAndNaNCanonical: values Compare reports equal must share key
// and hash — -0.0 vs +0.0, and any two NaN payloads.
func TestZeroAndNaNCanonical(t *testing.T) {
	negZero := math.Copysign(0, -1)
	z, nz := Row{NewFloat(0)}, Row{NewFloat(negZero)}
	if !Identical(z[0], nz[0]) {
		t.Fatal("Identical(0.0, -0.0) must be true")
	}
	if z.Key([]int{0}) != nz.Key([]int{0}) || z.Hash([]int{0}) != nz.Hash([]int{0}) {
		t.Error("-0.0 must share +0.0's canonical key and hash")
	}
	nan, negNaN := NewFloat(math.NaN()), NewFloat(-math.NaN())
	if !Identical(nan, negNaN) {
		t.Fatal("all NaNs compare equal, so Identical must hold")
	}
	if (Row{nan}).Key([]int{0}) != (Row{negNaN}).Key([]int{0}) {
		t.Error("NaN payloads must share a canonical key")
	}
	if (Row{nan}).Hash([]int{0}) != (Row{negNaN}).Hash([]int{0}) {
		t.Error("NaN payloads must hash identically")
	}
}

// TestQuickIdenticalImpliesSameKeyAndHash extends the existing
// hash-consistency property across the int/float boundary with large
// magnitudes, where the old float-image encoding broke it.
func TestQuickIdenticalImpliesSameKeyAndHash(t *testing.T) {
	f := func(i int64, bits uint64) bool {
		fv := math.Float64frombits(bits)
		a, b := NewInt(i), NewFloat(fv)
		if !Identical(a, b) {
			// Distinct values may collide in hash, but never in Key.
			return (Row{a}).Key([]int{0}) != (Row{b}).Key([]int{0})
		}
		return (Row{a}).Key([]int{0}) == (Row{b}).Key([]int{0}) &&
			(Row{a}).Hash([]int{0}) == (Row{b}).Hash([]int{0})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRowBytesEstimate(t *testing.T) {
	if (Row{}).Bytes() <= 0 {
		t.Error("empty row must still cost header bytes")
	}
	small := Row{NewInt(1), NewString("x")}
	big := Row{NewInt(1), NewString("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")}
	if big.Bytes() <= small.Bytes() {
		t.Errorf("Bytes must grow with string payload: %d vs %d", small.Bytes(), big.Bytes())
	}
	if d := big.Bytes() - small.Bytes(); d != 31 {
		t.Errorf("string payload delta = %d, want 31", d)
	}
}
