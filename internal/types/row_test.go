package types

import (
	"testing"
	"testing/quick"
)

func sampleRow() Row {
	return Row{NewInt(1), NewString("a"), NewFloat(2.5), Null}
}

func TestRowCloneIndependence(t *testing.T) {
	r := sampleRow()
	c := r.Clone()
	c[0] = NewInt(99)
	if r[0].Int() != 1 {
		t.Error("Clone must not alias the original")
	}
	if !r.Identical(sampleRow()) {
		t.Error("original mutated")
	}
}

func TestRowConcat(t *testing.T) {
	a := Row{NewInt(1)}
	b := Row{NewInt(2), NewInt(3)}
	got := a.Concat(b)
	want := Row{NewInt(1), NewInt(2), NewInt(3)}
	if !got.Identical(want) {
		t.Errorf("Concat = %v", got)
	}
	// Concat must not share the left row's array.
	got[0] = NewInt(42)
	if a[0].Int() != 1 {
		t.Error("Concat aliases left input")
	}
}

func TestRowProject(t *testing.T) {
	r := sampleRow()
	got := r.Project([]int{2, 0})
	if len(got) != 2 || got[0].Float() != 2.5 || got[1].Int() != 1 {
		t.Errorf("Project = %v", got)
	}
	if got := r.Project(nil); len(got) != 0 {
		t.Errorf("empty projection = %v", got)
	}
}

func TestRowIdentical(t *testing.T) {
	if !sampleRow().Identical(sampleRow()) {
		t.Error("identical rows")
	}
	if sampleRow().Identical(sampleRow()[:3]) {
		t.Error("length mismatch must be false")
	}
	other := sampleRow()
	other[1] = NewString("b")
	if sampleRow().Identical(other) {
		t.Error("differing rows")
	}
	// NULLs group together at the row level too.
	if !(Row{Null}).Identical(Row{Null}) {
		t.Error("NULL rows identical")
	}
}

func TestRowKeyDiscriminates(t *testing.T) {
	a := Row{NewString("ab"), NewString("c")}
	b := Row{NewString("a"), NewString("bc")}
	if a.Key([]int{0, 1}) == b.Key([]int{0, 1}) {
		t.Error("Key must be prefix-safe: (ab,c) vs (a,bc)")
	}
	// Identical values produce identical keys across kinds.
	x := Row{NewInt(2)}
	y := Row{NewFloat(2)}
	if x.Key([]int{0}) != y.Key([]int{0}) {
		t.Error("2 and 2.0 must key identically")
	}
	if (Row{Null}).Key([]int{0}) == (Row{NewInt(0)}).Key([]int{0}) {
		t.Error("NULL and 0 must key differently")
	}
	n := sampleRow()
	if n.KeyAll() != n.Key([]int{0, 1, 2, 3}) {
		t.Error("KeyAll must cover every column")
	}
	// Bool and date keys.
	if (Row{NewBool(true)}).KeyAll() == (Row{NewBool(false)}).KeyAll() {
		t.Error("bools key differently")
	}
	if (Row{NewDate(1)}).KeyAll() == (Row{NewDate(2)}).KeyAll() {
		t.Error("dates key differently")
	}
}

func TestRowHashMatchesKey(t *testing.T) {
	a := Row{NewInt(7), NewString("x")}
	b := Row{NewFloat(7), NewString("x")}
	cols := []int{0, 1}
	if a.Hash(cols) != b.Hash(cols) {
		t.Error("rows with identical keys must hash identically")
	}
}

func TestCompareRows(t *testing.T) {
	a := Row{NewInt(1), NewString("b")}
	b := Row{NewInt(1), NewString("a")}
	if CompareRows(a, b, []int{0}, nil) != 0 {
		t.Error("equal on col 0")
	}
	if CompareRows(a, b, []int{0, 1}, nil) != 1 {
		t.Error("a > b on (0,1)")
	}
	if CompareRows(a, b, []int{1}, []bool{true}) != -1 {
		t.Error("descending flips order")
	}
	c := Row{Null, NewString("z")}
	if CompareRows(c, a, []int{0}, nil) != -1 {
		t.Error("NULL-first ordering in rows")
	}
}

func TestRowString(t *testing.T) {
	got := (Row{NewInt(1), Null}).String()
	if got != "(1, NULL)" {
		t.Errorf("Row.String = %q", got)
	}
}

// Property: Key equality coincides with Identical for int/string rows.
func TestQuickKeyIdentical(t *testing.T) {
	f := func(a, b int64, s, u string) bool {
		x := Row{NewInt(a), NewString(s)}
		y := Row{NewInt(b), NewString(u)}
		return (x.KeyAll() == y.KeyAll()) == x.Identical(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: projection then key equals key of projected columns.
func TestQuickProjectKey(t *testing.T) {
	f := func(a, b, c int64) bool {
		r := Row{NewInt(a), NewInt(b), NewInt(c)}
		return r.Project([]int{2, 0}).KeyAll() == r.Key([]int{2, 0})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
