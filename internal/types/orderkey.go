package types

import (
	"fmt"
	"math"
)

// Order-preserving key encoding: AppendOrderKey(a) and AppendOrderKey(b)
// compare bytewise (bytes.Compare / memcmp) exactly as SortCompare(a, b)
// orders the values. This is the key format of the ordered secondary
// indexes — a sorted run of encoded keys can be range-searched with
// plain byte comparisons and scanned in SortCompare order.
//
// The encoding is canonical over SortCompare's equivalence classes, not
// over representations: values that SortCompare reports equal encode to
// identical bytes (INT 2 and FLOAT 2.0, -0.0 and +0.0, every NaN
// payload), which is what makes index order agree with the stable sorts
// the executor would otherwise run. The flip side is that kind
// information inside the numeric class is deliberately unrecoverable:
// DecodeOrderKey returns a value Identical to the input, not always one
// of the same Kind.
//
// Layout per value (concatenations of fixed-width or terminated fields
// stay prefix-free, so multi-column keys compare field-wise):
//
//	NULL    0x00
//	numeric 0x10 · approx[8] · residual[8]
//	string  0x20 · bytes with 0x00 → 0x00 0xFF · 0x00 0x01
//	bool    0x30 · 0x00/0x01
//	date    0x40 · uint64(days) ^ 2^63, big-endian
//
// The class tags follow SortCompare's cross-kind order (NULL first, then
// kind tags, with INT and FLOAT inter-comparable and therefore one
// class).
//
// The numeric field is the delicate one: it must interleave int64 and
// float64 exactly, including integers beyond 2^53 whose float64 image is
// rounded. approx is the sortable-bits transform of float64(v) (for an
// INT, its rounded image; for a FLOAT, the canonicalized value) and
// residual is the exact difference i − float64(i) an integer carries
// past its image (zero for floats and for exactly-representable ints).
// Correctness: float64(i) is the nearest float to i, so any float g with
// g ≠ float64(i) satisfies sign(g − float64(i)) = sign(g − i) — the
// approx bytes decide. When g = float64(i) exactly, the residual decides
// (it is sign(i − g)). Two integers sharing an image compare by their
// residuals, which carry their exact difference from it.
const (
	okTagNull    = 0x00
	okTagNumeric = 0x10
	okTagString  = 0x20
	okTagBool    = 0x30
	okTagDate    = 0x40
)

const maxInt64Float = 9223372036854775808.0 // 2^63, exactly representable

// sortableBits maps float64 bits to uint64s whose unsigned order is the
// IEEE total order with all negatives below all positives and the
// (canonical, positive) NaN above +Inf — SortCompare's float order.
func sortableBits(f float64) uint64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u
	}
	return u | 1<<63
}

func unsortableBits(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

func appendBE64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

func readBE64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// appendNumeric emits the 17-byte numeric field. residual is biased by
// 2^63 so its signed order is its unsigned byte order.
func appendNumeric(dst []byte, approx float64, residual int64) []byte {
	dst = append(dst, okTagNumeric)
	dst = appendBE64(dst, sortableBits(approx))
	return appendBE64(dst, uint64(residual)+1<<63)
}

// AppendOrderKey appends v's order-preserving encoding to dst and
// returns the extended slice.
func (v Value) AppendOrderKey(dst []byte) []byte {
	switch v.K {
	case KindNull:
		return append(dst, okTagNull)
	case KindInt:
		if f, ok := exactFloatImage(v.I); ok {
			return appendNumeric(dst, f, 0)
		}
		f := float64(v.I) // rounded image; |v.I| > 2^53 here, so f ≠ v.I
		if f == maxInt64Float {
			// v.I rounded up past int64 range: the residual is v.I − 2^63,
			// computed in two's complement (it is in [-1024, -1]).
			return appendNumeric(dst, f, int64(uint64(v.I)-1<<63))
		}
		return appendNumeric(dst, f, v.I-int64(f))
	case KindFloat:
		return appendNumeric(dst, canonFloat(v.F), 0)
	case KindString:
		dst = append(dst, okTagString)
		for i := 0; i < len(v.S); i++ {
			if v.S[i] == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, v.S[i])
			}
		}
		return append(dst, 0x00, 0x01)
	case KindBool:
		return append(dst, okTagBool, byte(v.I&1))
	case KindDate:
		dst = append(dst, okTagDate)
		return appendBE64(dst, uint64(v.I)+1<<63)
	default:
		// Unreachable for engine-produced values; keep the order total.
		return append(dst, 0xFF)
	}
}

// AppendOrderKeys appends the order-preserving encoding of the selected
// columns, in order. Byte order of the concatenation is exactly
// CompareRows order over cols (all ascending).
func (r Row) AppendOrderKeys(dst []byte, cols []int) []byte {
	for _, c := range cols {
		dst = r[c].AppendOrderKey(dst)
	}
	return dst
}

// DecodeOrderKey decodes one value from the front of b, returning it and
// the remaining bytes. The result is Identical to the encoded value
// (SortCompare 0); numeric kind (INT vs FLOAT) is only distinguishable
// for integers outside the float64-exact grid.
func DecodeOrderKey(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Null, nil, fmt.Errorf("types: empty order key")
	}
	switch tag := b[0]; tag {
	case okTagNull:
		return Null, b[1:], nil
	case okTagNumeric:
		if len(b) < 17 {
			return Null, nil, fmt.Errorf("types: truncated numeric order key")
		}
		f := unsortableBits(readBE64(b[1:9]))
		res := int64(readBE64(b[9:17]) - 1<<63)
		rest := b[17:]
		if res == 0 {
			return NewFloat(f), rest, nil
		}
		if f == maxInt64Float {
			return NewInt(int64(1<<63 + uint64(res))), rest, nil
		}
		return NewInt(int64(f) + res), rest, nil
	case okTagString:
		var s []byte
		i := 1
		for {
			if i >= len(b) {
				return Null, nil, fmt.Errorf("types: unterminated string order key")
			}
			c := b[i]
			if c != 0x00 {
				s = append(s, c)
				i++
				continue
			}
			if i+1 >= len(b) {
				return Null, nil, fmt.Errorf("types: truncated string order key escape")
			}
			switch b[i+1] {
			case 0x01:
				return NewString(string(s)), b[i+2:], nil
			case 0xFF:
				s = append(s, 0x00)
				i += 2
			default:
				return Null, nil, fmt.Errorf("types: bad string order key escape 0x%02x", b[i+1])
			}
		}
	case okTagBool:
		if len(b) < 2 {
			return Null, nil, fmt.Errorf("types: truncated bool order key")
		}
		return NewBool(b[1] != 0), b[2:], nil
	case okTagDate:
		if len(b) < 9 {
			return Null, nil, fmt.Errorf("types: truncated date order key")
		}
		return NewDate(int64(readBE64(b[1:9]) - 1<<63)), b[9:], nil
	default:
		return Null, nil, fmt.Errorf("types: unknown order key tag 0x%02x", tag)
	}
}
