package schema

import (
	"strings"
	"testing"

	"gapplydb/internal/types"
)

func partSchema() *Schema {
	return New(
		Column{"part", "p_partkey", types.KindInt},
		Column{"part", "p_name", types.KindString},
		Column{"part", "p_retailprice", types.KindFloat},
	)
}

func TestResolve(t *testing.T) {
	s := partSchema()
	if i, err := s.Resolve("part", "p_name"); err != nil || i != 1 {
		t.Errorf("Resolve(part.p_name) = %d, %v", i, err)
	}
	if i, err := s.Resolve("", "p_retailprice"); err != nil || i != 2 {
		t.Errorf("unqualified resolve = %d, %v", i, err)
	}
	if i, err := s.Resolve("PART", "P_NAME"); err != nil || i != 1 {
		t.Errorf("case-insensitive resolve = %d, %v", i, err)
	}
	if _, err := s.Resolve("", "nosuch"); err == nil {
		t.Error("unknown column must error")
	}
	if _, err := s.Resolve("supplier", "p_name"); err == nil {
		t.Error("wrong qualifier must error")
	}
}

func TestResolveAmbiguity(t *testing.T) {
	s := New(
		Column{"a", "key", types.KindInt},
		Column{"b", "key", types.KindInt},
	)
	if _, err := s.Resolve("", "key"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous unqualified ref: err = %v", err)
	}
	if i, err := s.Resolve("b", "key"); err != nil || i != 1 {
		t.Errorf("qualified ref disambiguates: %d, %v", i, err)
	}
	if s.Has("", "key") {
		t.Error("Has must be false for ambiguous refs")
	}
	if !s.Has("a", "key") {
		t.Error("Has must be true for qualified refs")
	}
}

func TestConcatProjectRename(t *testing.T) {
	s := partSchema()
	o := New(Column{"ps", "ps_suppkey", types.KindInt})
	cat := s.Concat(o)
	if cat.Len() != 4 || cat.Cols[3].Name != "ps_suppkey" {
		t.Errorf("Concat = %v", cat)
	}
	proj := cat.Project([]int{3, 0})
	if proj.Len() != 2 || proj.Cols[0].Name != "ps_suppkey" || proj.Cols[1].Name != "p_partkey" {
		t.Errorf("Project = %v", proj)
	}
	ren := s.Rename("t")
	for _, c := range ren.Cols {
		if c.Table != "t" {
			t.Errorf("Rename left qualifier %q", c.Table)
		}
	}
	// Rename must not mutate the source.
	if s.Cols[0].Table != "part" {
		t.Error("Rename mutated source schema")
	}
}

func TestQualifiedNameAndString(t *testing.T) {
	c := Column{"part", "p_name", types.KindString}
	if c.QualifiedName() != "part.p_name" {
		t.Errorf("QualifiedName = %q", c.QualifiedName())
	}
	c.Table = ""
	if c.QualifiedName() != "p_name" {
		t.Errorf("unqualified = %q", c.QualifiedName())
	}
	s := New(Column{"t", "a", types.KindInt})
	if got := s.String(); got != "[t.a INT]" {
		t.Errorf("String = %q", got)
	}
}

func TestIsKey(t *testing.T) {
	def := &TableDef{
		Name:       "partsupp",
		Schema:     New(Column{"partsupp", "ps_partkey", types.KindInt}, Column{"partsupp", "ps_suppkey", types.KindInt}),
		PrimaryKey: []string{"ps_partkey", "ps_suppkey"},
	}
	if !def.IsKey([]string{"ps_suppkey", "ps_partkey", "extra"}) {
		t.Error("superset of PK is a key")
	}
	if def.IsKey([]string{"ps_suppkey"}) {
		t.Error("subset of PK is not a key")
	}
	nokey := &TableDef{Name: "t", Schema: New()}
	if nokey.IsKey([]string{"x"}) {
		t.Error("table without PK has no keys")
	}
}
