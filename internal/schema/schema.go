// Package schema describes relation shapes: named, typed columns with
// optional table qualifiers, plus key and foreign-key metadata. Foreign
// keys matter to the optimizer: the invariant-grouping rule (paper §4.3,
// Definition 2) may push GApply below a join only when every join above
// the target node is a foreign-key join.
package schema

import (
	"fmt"
	"strings"

	"gapplydb/internal/types"
)

// Column is one attribute of a relation. Table may be empty for computed
// columns (aggregates, expressions) or columns of anonymous subqueries.
type Column struct {
	Table string
	Name  string
	Type  types.Kind
}

// QualifiedName renders table.name, or just name when unqualified.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// New builds a schema from columns.
func New(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// Concat returns the column-wise concatenation of two schemas (the join
// output shape).
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Cols)+len(o.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, o.Cols...)
	return &Schema{Cols: cols}
}

// Project returns the schema restricted to the given ordinals.
func (s *Schema) Project(ordinals []int) *Schema {
	cols := make([]Column, len(ordinals))
	for i, o := range ordinals {
		cols[i] = s.Cols[o]
	}
	return &Schema{Cols: cols}
}

// Rename returns a copy of the schema with every column re-qualified by
// the given table alias (the shape of `from t as alias`).
func (s *Schema) Rename(alias string) *Schema {
	cols := make([]Column, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = Column{Table: alias, Name: c.Name, Type: c.Type}
	}
	return &Schema{Cols: cols}
}

// Resolve finds the ordinal of table.name (table may be empty for an
// unqualified reference). An unqualified reference that matches more than
// one column is ambiguous and errors, matching SQL name resolution.
func (s *Schema) Resolve(table, name string) (int, error) {
	found := -1
	for i, c := range s.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("schema: ambiguous column reference %q", Column{Table: table, Name: name}.QualifiedName())
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("schema: unknown column %q", Column{Table: table, Name: name}.QualifiedName())
	}
	return found, nil
}

// Has reports whether table.name resolves unambiguously.
func (s *Schema) Has(table, name string) bool {
	_, err := s.Resolve(table, name)
	return err == nil
}

// String renders the schema for EXPLAIN output.
func (s *Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.QualifiedName() + " " + c.Type.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// ForeignKey declares that Cols in the owning table reference RefCols
// (a key) of RefTable.
type ForeignKey struct {
	Cols     []string
	RefTable string
	RefCols  []string
}

// TableDef is the catalog entry for a base table.
type TableDef struct {
	Name        string
	Schema      *Schema
	PrimaryKey  []string
	ForeignKeys []ForeignKey
}

// IsKey reports whether cols is a superset of the primary key, i.e.
// groups formed on cols have at most one row per base-table key.
func (d *TableDef) IsKey(cols []string) bool {
	if len(d.PrimaryKey) == 0 {
		return false
	}
	for _, k := range d.PrimaryKey {
		ok := false
		for _, c := range cols {
			if strings.EqualFold(c, k) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
