package sql

import (
	"strings"
	"testing"
)

// TestPositionRuneColumns: Position converts byte offsets to rune-based
// columns, so multi-byte UTF-8 earlier on a line does not skew the
// coordinates a shell uses to draw its caret.
func TestPositionRuneColumns(t *testing.T) {
	src := "αβγ δ\nx 語 y"
	cases := []struct {
		offset    int
		line, col int
	}{
		{0, 1, 1},
		{strings.Index(src, "δ"), 1, 5}, // byte offset 7, rune column 5
		{strings.Index(src, "x"), 2, 1},
		{strings.Index(src, "y"), 2, 5}, // after the 3-byte 語
		{len(src) + 99, 2, 5 + 1},       // clamped past the end
	}
	for _, c := range cases {
		line, col := Position(src, c.offset)
		if line != c.line || col != c.col {
			t.Errorf("Position(%d) = (%d, %d), want (%d, %d)", c.offset, line, col, c.line, c.col)
		}
	}
}

// TestParseErrorColCountsRunes: a lex error after a non-ASCII string
// literal reports its column in runes, not bytes.
func TestParseErrorColCountsRunes(t *testing.T) {
	input := "select '日本' !"
	_, err := Lex(input)
	var pe *ParseError
	if !errorsAs(err, &pe) {
		t.Fatalf("error %T is not a *ParseError: %v", err, err)
	}
	// "select " (7) + "'" (8) + 日本 (10) + "'" (11) + " " (12) → '!' at 13.
	if pe.Line != 1 || pe.Col != 13 {
		t.Errorf("position = line %d col %d, want line 1 col 13 (%v)", pe.Line, pe.Col, err)
	}
	if pe.Pos != strings.Index(input, "!") {
		t.Errorf("Pos = %d, want the byte offset %d", pe.Pos, strings.Index(input, "!"))
	}
}
