package sql

// The AST mirrors the grammar; the binder (internal/bind) lowers it to
// the logical algebra.

// SelectStmt is a (possibly unioned) select statement. A union chain is
// right-nested through SetOp; ORDER BY applies to the whole chain and is
// only populated on the head statement.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []ColName
	// GroupVar is the relation-valued variable after ':' in the paper's
	// extended GROUP BY clause; empty for a plain GROUP BY.
	GroupVar string
	Having   Expr
	OrderBy  []OrderItem
	SetOp    *SetOp
}

// SetOp chains a union (ALL or distinct) onto a select.
type SetOp struct {
	All   bool
	Right *SelectStmt
}

// SelectItem is one entry of the select list.
type SelectItem struct {
	Star bool
	// GApply holds the per-group query of a gapply(...) item; GApplyNames
	// holds the optional "as (c1, c2, …)" output column names.
	GApply      *SelectStmt
	GApplyNames []string
	Expr        Expr
	Alias       string
}

// TableRef is one entry of the FROM list: a base table (with optional
// alias) or a derived table with an alias and optional column names.
type TableRef struct {
	Table    string
	Alias    string
	Subquery *SelectStmt
	ColNames []string
}

// ColName is a possibly-qualified column name.
type ColName struct {
	Table string
	Name  string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is an AST expression.
type Expr interface{ exprNode() }

// Ident is a possibly-qualified column reference.
type Ident struct {
	Table string
	Name  string
}

// NumberLit is an integer or decimal literal.
type NumberLit struct {
	IsFloat bool
	I       int64
	F       float64
}

// StringLit is a quoted string literal.
type StringLit struct {
	S string
}

// NullLit is the NULL literal.
type NullLit struct{}

// BoolLit is TRUE or FALSE.
type BoolLit struct {
	B bool
}

// Binary is an arithmetic or comparison binary expression.
type Binary struct {
	Op   string
	L, R Expr
}

// Logical is AND/OR over two or more operands.
type Logical struct {
	Op  string // "and" | "or"
	Ops []Expr
}

// NotExpr negates a predicate.
type NotExpr struct {
	E Expr
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Sub     *SelectStmt
	Negated bool
}

// SubqueryExpr is a scalar subquery in an expression position.
type SubqueryExpr struct {
	Sub *SelectStmt
}

// AggCall is count/sum/avg/min/max, with optional DISTINCT and '*'.
type AggCall struct {
	Fn       string
	Star     bool
	Distinct bool
	Arg      Expr
}

// FuncCall is a scalar function call (coalesce, abs).
type FuncCall struct {
	Name string
	Args []Expr
}

func (*Ident) exprNode()        {}
func (*NumberLit) exprNode()    {}
func (*StringLit) exprNode()    {}
func (*NullLit) exprNode()      {}
func (*BoolLit) exprNode()      {}
func (*Binary) exprNode()       {}
func (*Logical) exprNode()      {}
func (*NotExpr) exprNode()      {}
func (*ExistsExpr) exprNode()   {}
func (*SubqueryExpr) exprNode() {}
func (*AggCall) exprNode()      {}
func (*FuncCall) exprNode()     {}

// HasGApply reports whether the select list contains a gapply item.
func (s *SelectStmt) HasGApply() bool {
	for _, it := range s.Items {
		if it.GApply != nil {
			return true
		}
	}
	return false
}
