package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) *SelectStmt {
	t.Helper()
	s, _, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return s
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("select p_name, 1.5 from part where p_brand = 'Brand#A' -- comment\n")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	if texts[0] != "select" || kinds[0] != TokKeyword {
		t.Errorf("first token = %v %q", kinds[0], texts[0])
	}
	if texts[3] != "1.5" || kinds[3] != TokNumber {
		t.Errorf("number token = %q", texts[3])
	}
	found := false
	for i, tx := range texts {
		if tx == "Brand#A" && kinds[i] == TokString {
			found = true
		}
	}
	if !found {
		t.Error("string literal not lexed")
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Error("missing EOF")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("select 'unterminated"); err == nil {
		t.Error("unterminated string must fail")
	}
	if _, err := Lex("select @x"); err == nil {
		t.Error("bad character must fail")
	}
	if _, err := Lex("a ! b"); err == nil {
		t.Error("lone ! must fail")
	}
	// != is accepted as <>.
	toks, err := Lex("a != b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Text != "<>" {
		t.Errorf("!= lexed as %q", toks[1].Text)
	}
	// Escaped quote inside string.
	toks, err = Lex("'it''s'")
	if err != nil || toks[0].Text != "it's" {
		t.Errorf("escaped quote: %v %v", toks, err)
	}
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustParse(t, "select p_name, p_retailprice from part where p_retailprice > 10 order by p_name desc")
	if len(s.Items) != 2 || s.Items[0].Expr.(*Ident).Name != "p_name" {
		t.Errorf("items = %+v", s.Items)
	}
	if len(s.From) != 1 || s.From[0].Table != "part" {
		t.Errorf("from = %+v", s.From)
	}
	b, ok := s.Where.(*Binary)
	if !ok || b.Op != ">" {
		t.Errorf("where = %+v", s.Where)
	}
	if len(s.OrderBy) != 1 || !s.OrderBy[0].Desc {
		t.Errorf("order by = %+v", s.OrderBy)
	}
}

func TestParseJoinViaCommaAndAliases(t *testing.T) {
	s := mustParse(t, "select * from partsupp ps, part as p where ps.ps_partkey = p.p_partkey")
	if !s.Items[0].Star {
		t.Error("star item")
	}
	if s.From[0].Alias != "ps" || s.From[1].Alias != "p" {
		t.Errorf("aliases = %+v", s.From)
	}
	w := s.Where.(*Binary)
	if w.L.(*Ident).Table != "ps" || w.R.(*Ident).Table != "p" {
		t.Errorf("where sides = %+v", w)
	}
}

func TestParseGroupByWithVariable(t *testing.T) {
	// The paper's extension (§3.1).
	s := mustParse(t, `
		select gapply(select p_name, p_retailprice, null from tmpSupp
		              union all
		              select null, null, avg(p_retailprice) from tmpSupp)
		from partsupp, part
		where ps_partkey = p_partkey
		group by ps_suppkey : tmpSupp`)
	if !s.HasGApply() {
		t.Fatal("gapply item not recognized")
	}
	if s.GroupVar != "tmpSupp" {
		t.Errorf("group var = %q", s.GroupVar)
	}
	if len(s.GroupBy) != 1 || s.GroupBy[0].Name != "ps_suppkey" {
		t.Errorf("group by = %+v", s.GroupBy)
	}
	pgq := s.Items[0].GApply
	if pgq.SetOp == nil || !pgq.SetOp.All {
		t.Error("PGQ union all chain missing")
	}
	if len(pgq.Items) != 3 {
		t.Errorf("PGQ items = %d", len(pgq.Items))
	}
}

func TestParseGApplyWithColumnNames(t *testing.T) {
	s := mustParse(t, `select gapply(select count(*) from g) as (n) from part group by p_brand : g`)
	if s.Items[0].GApplyNames[0] != "n" {
		t.Errorf("names = %v", s.Items[0].GApplyNames)
	}
	s = mustParse(t, `select gapply(select count(*), null from g) as (above, below) from part group by p_brand : g`)
	if len(s.Items[0].GApplyNames) != 2 {
		t.Errorf("names = %v", s.Items[0].GApplyNames)
	}
}

func TestParsePlainGroupByAndHaving(t *testing.T) {
	s := mustParse(t, "select ps_suppkey, avg(p_retailprice) a from partsupp group by ps_suppkey having count(*) > 2")
	if s.GroupVar != "" {
		t.Error("plain group by must have no group var")
	}
	if s.Items[1].Alias != "a" {
		t.Errorf("bare alias = %q", s.Items[1].Alias)
	}
	if s.Having == nil {
		t.Error("having missing")
	}
	agg := s.Items[1].Expr.(*AggCall)
	if agg.Fn != "avg" || agg.Star {
		t.Errorf("agg = %+v", agg)
	}
}

func TestParseSubqueries(t *testing.T) {
	s := mustParse(t, `select ps_suppkey from partsupp ps1, part
		where p_partkey = ps_partkey and p_retailprice >=
		  (select avg(p_retailprice) from partsupp, part
		   where p_partkey = ps_partkey and ps_suppkey = ps1.ps_suppkey)
		group by ps_suppkey`)
	conj := s.Where.(*Logical)
	if conj.Op != "and" || len(conj.Ops) != 2 {
		t.Fatalf("where = %+v", s.Where)
	}
	cmp := conj.Ops[1].(*Binary)
	if _, ok := cmp.R.(*SubqueryExpr); !ok {
		t.Errorf("scalar subquery not parsed: %+v", cmp.R)
	}
}

func TestParseExists(t *testing.T) {
	s := mustParse(t, `select s_name from supplier where exists
		(select p_partkey from partsupp where ps_suppkey = s_suppkey)`)
	e, ok := s.Where.(*ExistsExpr)
	if !ok || e.Negated {
		t.Fatalf("where = %+v", s.Where)
	}
	s = mustParse(t, `select s_name from supplier where not exists (select p_partkey from partsupp)`)
	e = s.Where.(*ExistsExpr)
	if !e.Negated {
		t.Error("not exists must set Negated")
	}
}

func TestParseDerivedTable(t *testing.T) {
	s := mustParse(t, `select tmp.k from
		(select ps_suppkey, avg(p_retailprice) from partsupp group by ps_suppkey) as tmp(k, avgprice)
		where tmp.avgprice > 100`)
	tr := s.From[0]
	if tr.Subquery == nil || tr.Alias != "tmp" {
		t.Fatalf("derived table = %+v", tr)
	}
	if len(tr.ColNames) != 2 || tr.ColNames[1] != "avgprice" {
		t.Errorf("colnames = %v", tr.ColNames)
	}
	// Derived table without alias is rejected.
	if _, _, err := Parse("select * from (select 1 from part)"); err == nil {
		t.Error("derived table without alias must fail")
	}
}

func TestParseUnionChainWithOrderBy(t *testing.T) {
	s := mustParse(t, `
		(select ps_suppkey, p_name, null from partsupp, part where ps_partkey = p_partkey
		 union all
		 select ps_suppkey, null, avg(p_retailprice) from partsupp, part where ps_partkey = p_partkey group by ps_suppkey)
		order by ps_suppkey`)
	if s.SetOp == nil || !s.SetOp.All {
		t.Fatal("union all missing")
	}
	if len(s.OrderBy) != 1 {
		t.Errorf("order by on chain head = %+v", s.OrderBy)
	}
	if s.SetOp.Right.GroupBy == nil {
		t.Error("right branch group by missing")
	}
	// Distinct union.
	s = mustParse(t, "select 1 from part union select 2 from part")
	if s.SetOp == nil || s.SetOp.All {
		t.Error("plain UNION must not be ALL")
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	s := mustParse(t, "select 1 + 2 * 3 from part")
	b := s.Items[0].Expr.(*Binary)
	if b.Op != "+" {
		t.Fatalf("top op = %q", b.Op)
	}
	if r := b.R.(*Binary); r.Op != "*" {
		t.Errorf("* must bind tighter: %+v", b)
	}
	// Unary minus.
	s = mustParse(t, "select -5 from part")
	neg := s.Items[0].Expr.(*Binary)
	if neg.Op != "-" || neg.L.(*NumberLit).I != 0 || neg.R.(*NumberLit).I != 5 {
		t.Errorf("unary minus = %+v", neg)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	s := mustParse(t, "select 1 from part where a = 1 or b = 2 and c = 3")
	or := s.Where.(*Logical)
	if or.Op != "or" || len(or.Ops) != 2 {
		t.Fatalf("top = %+v", s.Where)
	}
	and := or.Ops[1].(*Logical)
	if and.Op != "and" {
		t.Error("AND must bind tighter than OR")
	}
	s = mustParse(t, "select 1 from part where not a = 1 and b = 2")
	top := s.Where.(*Logical)
	if _, ok := top.Ops[0].(*NotExpr); !ok {
		t.Error("NOT binds tighter than AND")
	}
}

func TestParseAggDistinctAndFuncs(t *testing.T) {
	s := mustParse(t, "select count(distinct p_brand), coalesce(p_size, 0), abs(p_size) from part")
	agg := s.Items[0].Expr.(*AggCall)
	if !agg.Distinct || agg.Fn != "count" {
		t.Errorf("agg = %+v", agg)
	}
	fc := s.Items[1].Expr.(*FuncCall)
	if fc.Name != "coalesce" || len(fc.Args) != 2 {
		t.Errorf("func = %+v", fc)
	}
	if _, _, err := Parse("select nosuchfn(1) from part"); err == nil {
		t.Error("unknown function must fail")
	}
}

func TestParseExplainAndSemicolon(t *testing.T) {
	_, mode, err := Parse("explain select 1 from part;")
	if err != nil || mode != ExplainPlan {
		t.Errorf("explain mode = %v, err %v", mode, err)
	}
	_, mode, err = Parse("EXPLAIN ANALYZE select 1 from part;")
	if err != nil || mode != ExplainAnalyze {
		t.Errorf("explain analyze mode = %v, err %v", mode, err)
	}
	_, mode, _ = Parse("select 1 from part")
	if mode != ExplainNone {
		t.Error("no explain keyword")
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, _, err := Parse("select 1\nfrom part\nwhere +")
	var pe *ParseError
	if !errorsAs(err, &pe) {
		t.Fatalf("error %T is not a *ParseError: %v", err, err)
	}
	if pe.Line != 3 || pe.Col != 7 {
		t.Errorf("position = line %d col %d, want line 3 col 7 (%v)", pe.Line, pe.Col, err)
	}
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select 1 from",
		"select 1 from part where",
		"select 1 from part group by",
		"select 1 from part group by x :",
		"select gapply(select 1 from g from part",
		"select 1 from part trailing garbage (",
		"select 1 from part; select 2 from part",
		"select (select 1 from part from part",
	}
	for _, q := range bad {
		if _, _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) must fail", q)
		}
	}
}

func TestParsePaperQ2Verbatim(t *testing.T) {
	// The paper's §3.1 Q2 with the extended syntax, inlined.
	q := `
	select gapply(
		select count(*), null from tmpSupp
		where p_retailprice >= (select avg(p_retailprice) from tmpSupp)
		union all
		select null, count(*) from tmpSupp
		where p_retailprice < (select avg(p_retailprice) from tmpSupp)
	) as (count_above, count_below)
	from partsupp, part
	where ps_partkey = p_partkey
	group by ps_suppkey : tmpSupp`
	s := mustParse(t, q)
	pgq := s.Items[0].GApply
	if pgq == nil || pgq.SetOp == nil {
		t.Fatal("Q2 structure missing")
	}
	if s.Items[0].GApplyNames[1] != "count_below" {
		t.Errorf("names = %v", s.Items[0].GApplyNames)
	}
	if !strings.EqualFold(s.GroupVar, "tmpSupp") {
		t.Errorf("group var = %q", s.GroupVar)
	}
}
