package sql

import "fmt"

// ParseError is a lexing or parsing failure with the source coordinates
// of the offending token. Shells unwrap it (errors.As) to point at the
// exact line and column instead of echoing an opaque string.
type ParseError struct {
	Msg  string // what went wrong, without position decoration
	Pos  int    // byte offset into the statement
	Line int    // 1-based
	Col  int    // 1-based, in runes (not bytes), so carets align on UTF-8
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: %s (line %d, column %d)", e.Msg, e.Line, e.Col)
}

// newParseError builds a ParseError at the given offset of src.
func newParseError(src string, pos int, format string, args ...interface{}) *ParseError {
	line, col := Position(src, pos)
	return &ParseError{Msg: fmt.Sprintf(format, args...), Pos: pos, Line: line, Col: col}
}
