// Package sql is the SQL front end: a lexer, an AST, and a recursive-
// descent parser for the engine's SQL subset extended with the paper's
// groupwise-processing syntax (§3.1):
//
//	select gapply(<per-group query>) [as (<column list>)]
//	from <relations>
//	where <conditions>
//	group by <grouping columns> : <group variable>
package sql

import (
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp    // = <> < <= > >= + - * /
	TokPunct // ( ) , . : ;
)

// Token is one lexical token with its source offset for error messages.
type Token struct {
	Kind TokenKind
	Text string // keywords are lower-cased; identifiers keep their case
	Pos  int
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"order": true, "having": true, "as": true, "and": true, "or": true,
	"not": true, "exists": true, "union": true, "all": true,
	"distinct": true, "null": true, "asc": true, "desc": true,
	"gapply": true, "true": true, "false": true,
	"inner": true, "join": true, "on": true, "left": true, "outer": true,
	"explain": true, "analyze": true,
}

// Position converts a byte offset in a statement into 1-based line and
// column numbers, the coordinates parse errors report and shells use to
// point at the offending token. Columns count runes, not bytes, so a
// multi-byte UTF-8 literal earlier on the line does not shift the
// shell's caret off the offending token.
func Position(src string, offset int) (line, col int) {
	if offset > len(src) {
		offset = len(src)
	}
	line, col = 1, 1
	for _, r := range src[:offset] {
		if r == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// Lex tokenizes the input. It returns an error for unterminated strings
// and unexpected characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_' || c == '$':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_' || input[i] == '$' || input[i] == '#') {
				i++
			}
			word := input[start:i]
			lower := strings.ToLower(word)
			if keywords[lower] {
				toks = append(toks, Token{Kind: TokKeyword, Text: lower, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(input[i])) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					// "1.x" where x is not a digit is a qualified ref on a
					// number — not legal SQL here, but keep the dot out.
					if i+1 >= n || !unicode.IsDigit(rune(input[i+1])) {
						break
					}
					seenDot = true
				}
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, newParseError(input, start, "unterminated string literal")
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, Token{Kind: TokOp, Text: input[i : i+2], Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokOp, Text: "<", Pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokOp, Text: ">=", Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokOp, Text: ">", Pos: i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokOp, Text: "<>", Pos: i})
				i += 2
			} else {
				return nil, newParseError(input, i, "unexpected character %q", c)
			}
		case c == '=' || c == '+' || c == '-' || c == '*' || c == '/':
			toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: i})
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == ':' || c == ';':
			toks = append(toks, Token{Kind: TokPunct, Text: string(c), Pos: i})
			i++
		default:
			return nil, newParseError(input, i, "unexpected character %q", c)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}
