package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// ExplainMode reports which EXPLAIN prefix, if any, a statement carries.
type ExplainMode int

const (
	// ExplainNone: a plain statement, execute it.
	ExplainNone ExplainMode = iota
	// ExplainPlan: EXPLAIN — render the optimized plan, do not execute.
	ExplainPlan
	// ExplainAnalyze: EXPLAIN ANALYZE — execute with per-operator
	// instrumentation and render the plan with actual row counts and
	// timings.
	ExplainAnalyze
)

// Parse parses a single statement (optionally terminated by ';').
// An optional leading EXPLAIN [ANALYZE] is reported through the second
// result.
func Parse(input string) (*SelectStmt, ExplainMode, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, ExplainNone, err
	}
	p := &parser{toks: toks, src: input}
	mode := ExplainNone
	if p.atKeyword("explain") {
		p.next()
		mode = ExplainPlan
		if p.atKeyword("analyze") {
			p.next()
			mode = ExplainAnalyze
		}
	}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, ExplainNone, err
	}
	if p.atPunct(";") {
		p.next()
	}
	if p.peek().Kind != TokEOF {
		return nil, ExplainNone, p.errorf("unexpected input after statement: %q", p.peek().Text)
	}
	return stmt, mode, nil
}

type parser struct {
	toks []Token
	pos  int
	src  string
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atKeyword(k string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == k
}
func (p *parser) atPunct(s string) bool {
	t := p.peek()
	return t.Kind == TokPunct && t.Text == s
}
func (p *parser) atOp(s string) bool {
	t := p.peek()
	return t.Kind == TokOp && t.Text == s
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return newParseError(p.src, p.peek().Pos, format, args...)
}

func (p *parser) expectKeyword(k string) error {
	if !p.atKeyword(k) {
		return p.errorf("expected %s, got %q", strings.ToUpper(k), p.peek().Text)
	}
	p.next()
	return nil
}

func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return p.errorf("expected %q, got %q", s, p.peek().Text)
	}
	p.next()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errorf("expected identifier, got %q", t.Text)
	}
	p.next()
	return t.Text, nil
}

// parseSelect parses a select statement including a UNION [ALL] chain
// and a trailing ORDER BY that applies to the whole chain.
func (p *parser) parseSelect() (*SelectStmt, error) {
	head, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	cur := head
	for p.atKeyword("union") {
		p.next()
		all := false
		if p.atKeyword("all") {
			p.next()
			all = true
		}
		right, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		cur.SetOp = &SetOp{All: all, Right: right}
		cur = right
	}
	if p.atKeyword("order") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.atKeyword("desc") {
				p.next()
				item.Desc = true
			} else if p.atKeyword("asc") {
				p.next()
			}
			head.OrderBy = append(head.OrderBy, item)
			if !p.atPunct(",") {
				break
			}
			p.next()
		}
	}
	return head, nil
}

func (p *parser) parseSelectCore() (*SelectStmt, error) {
	// Allow a parenthesized select ("(select ...) union all ..." style).
	if p.atPunct("(") && p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Text == "select" {
		p.next()
		s, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return s, nil
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.atKeyword("distinct") {
		p.next()
		s.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.atPunct(",") {
			break
		}
		p.next()
	}
	if p.atKeyword("from") {
		p.next()
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, tr)
			if !p.atPunct(",") {
				break
			}
			p.next()
		}
	}
	if p.atKeyword("where") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.atKeyword("group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColName()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, c)
			if !p.atPunct(",") {
				break
			}
			p.next()
		}
		// The paper's extension: "group by <cols> : <group variable>".
		if p.atPunct(":") {
			p.next()
			v, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			s.GroupVar = v
		}
	}
	if p.atKeyword("having") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.atOp("*") {
		p.next()
		return SelectItem{Star: true}, nil
	}
	if p.atKeyword("gapply") {
		p.next()
		if err := p.expectPunct("("); err != nil {
			return SelectItem{}, err
		}
		pgq, err := p.parseSelect()
		if err != nil {
			return SelectItem{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{GApply: pgq}
		if p.atKeyword("as") {
			p.next()
			if err := p.expectPunct("("); err != nil {
				return SelectItem{}, err
			}
			for {
				name, err := p.expectIdent()
				if err != nil {
					return SelectItem{}, err
				}
				item.GApplyNames = append(item.GApplyNames, name)
				if !p.atPunct(",") {
					break
				}
				p.next()
			}
			if err := p.expectPunct(")"); err != nil {
				return SelectItem{}, err
			}
		}
		return item, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.atKeyword("as") {
		p.next()
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	if p.atPunct("(") {
		p.next()
		sub, err := p.parseSelect()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return TableRef{}, err
		}
		tr := TableRef{Subquery: sub}
		if p.atKeyword("as") {
			p.next()
		}
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, fmt.Errorf("sql: derived table requires an alias: %w", err)
		}
		tr.Alias = alias
		if p.atPunct("(") {
			p.next()
			for {
				name, err := p.expectIdent()
				if err != nil {
					return TableRef{}, err
				}
				tr.ColNames = append(tr.ColNames, name)
				if !p.atPunct(",") {
					break
				}
				p.next()
			}
			if err := p.expectPunct(")"); err != nil {
				return TableRef{}, err
			}
		}
		return tr, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name}
	if p.atKeyword("as") {
		p.next()
		a, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a
	} else if p.peek().Kind == TokIdent {
		tr.Alias = p.next().Text
	}
	return tr, nil
}

func (p *parser) parseColName() (ColName, error) {
	a, err := p.expectIdent()
	if err != nil {
		return ColName{}, err
	}
	if p.atPunct(".") {
		p.next()
		b, err := p.expectIdent()
		if err != nil {
			return ColName{}, err
		}
		return ColName{Table: a, Name: b}, nil
	}
	return ColName{Name: a}, nil
}

// ------------------------------------------------------------ expressions

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	ops := []Expr{left}
	for p.atKeyword("or") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		ops = append(ops, r)
	}
	if len(ops) == 1 {
		return left, nil
	}
	return &Logical{Op: "or", Ops: ops}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	ops := []Expr{left}
	for p.atKeyword("and") {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		ops = append(ops, r)
	}
	if len(ops) == 1 {
		return left, nil
	}
	return &Logical{Op: "and", Ops: ops}, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKeyword("not") {
		p.next()
		if p.atKeyword("exists") {
			return p.parseExists(true)
		}
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseExists(negated bool) (Expr, error) {
	if err := p.expectKeyword("exists"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	sub, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &ExistsExpr{Sub: sub, Negated: negated}, nil
}

func (p *parser) parseComparison() (Expr, error) {
	if p.atKeyword("exists") {
		return p.parseExists(false)
	}
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokOp {
		switch t.Text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: t.Text, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		op := p.next().Text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: r}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") {
		op := p.next().Text
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: r}
	}
	return left, nil
}

var aggFns = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}
var scalarFns = map[string]bool{"coalesce": true, "abs": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &NumberLit{IsFloat: true, F: f}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return &NumberLit{I: i}, nil

	case t.Kind == TokString:
		p.next()
		return &StringLit{S: t.Text}, nil

	case t.Kind == TokKeyword && t.Text == "null":
		p.next()
		return &NullLit{}, nil

	case t.Kind == TokKeyword && (t.Text == "true" || t.Text == "false"):
		p.next()
		return &BoolLit{B: t.Text == "true"}, nil

	case t.Kind == TokOp && t.Text == "-":
		p.next()
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: "-", L: &NumberLit{I: 0}, R: e}, nil

	case t.Kind == TokPunct && t.Text == "(":
		// Parenthesized scalar subquery or expression.
		if p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Text == "select" {
			p.next()
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Sub: sub}, nil
		}
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.Kind == TokIdent:
		name := p.next().Text
		lower := strings.ToLower(name)
		if p.atPunct("(") && aggFns[lower] {
			p.next()
			call := &AggCall{Fn: lower}
			if p.atKeyword("distinct") {
				p.next()
				call.Distinct = true
			}
			if p.atOp("*") {
				p.next()
				call.Star = true
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Arg = arg
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		if p.atPunct("(") && scalarFns[lower] {
			p.next()
			call := &FuncCall{Name: lower}
			if !p.atPunct(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.atPunct(",") {
						break
					}
					p.next()
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		if p.atPunct("(") {
			return nil, p.errorf("unknown function %q", name)
		}
		if p.atPunct(".") {
			p.next()
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &Ident{Table: name, Name: col}, nil
		}
		return &Ident{Name: name}, nil

	default:
		return nil, p.errorf("unexpected token %q", t.Text)
	}
}
