package sql

import "testing"

// FuzzParseQuery pins the parser's robustness contract: Parse never
// panics — malformed input is reported as an error, full stop. The seed
// corpus mixes the unit-test statements, the paper's evaluation queries
// (EXPERIMENTS.md / bench_test.go shapes), and inputs chosen to reach
// the lexer's and parser's edges (comments, escapes, deep nesting,
// every clause of the GApply extension).
//
// CI runs a short smoke (`go test -fuzz=FuzzParseQuery -fuzztime=20s`);
// run it longer locally when touching the lexer or parser.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		// Plain SQL covering every clause the subset supports.
		"select p_name, 1.5 from part where p_brand = 'Brand#A' -- comment\n",
		"select p_name, p_retailprice from part where p_retailprice > 10 order by p_name desc",
		"select * from partsupp ps, part as p where ps.ps_partkey = p.p_partkey",
		"select ps_suppkey, avg(p_retailprice) a from partsupp group by ps_suppkey having count(*) > 2",
		"select count(distinct p_brand), coalesce(p_size, 0), abs(p_size) from part",
		"select distinct p_brand from part order by p_brand",
		"select 1 + 2 * 3 from part",
		"select -5 from part",
		"select 1 from part where a = 1 or b = 2 and c = 3",
		"select 1 from part where not a = 1 and b = 2",
		"select 1 from part union select 2 from part",
		"explain select 1 from part;",
		"'it''s'",
		`select s_name from supplier where exists
			(select p_partkey from partsupp where ps_suppkey = s_suppkey)`,
		`select s_name from supplier where not exists (select p_partkey from partsupp)`,
		`select tmp.k from
			(select ps_suppkey, avg(p_retailprice) from partsupp group by ps_suppkey) as tmp(k, avgprice)
			where tmp.avgprice > 100`,
		`(select ps_suppkey, p_name, null from partsupp, part where ps_partkey = p_partkey
		  union all
		  select ps_suppkey, null, avg(p_retailprice) from partsupp, part where ps_partkey = p_partkey group by ps_suppkey)
		 order by ps_suppkey`,
		`select ps_suppkey from partsupp ps1, part
			where p_partkey = ps_partkey and p_retailprice >=
			  (select avg(p_retailprice) from partsupp, part
			   where p_partkey = ps_partkey and ps_suppkey = ps1.ps_suppkey)
			group by ps_suppkey`,
		// The paper's extended syntax (§3.1) and the evaluation queries.
		`select gapply(select count(*) from g) as (n) from part group by p_brand : g`,
		`select gapply(select p_name, p_retailprice, null from tmpSupp
		              union all
		              select null, null, avg(p_retailprice) from tmpSupp)
		 from partsupp, part
		 where ps_partkey = p_partkey
		 group by ps_suppkey : tmpSupp`,
		`select gapply(
			select count(*), null from tmpSupp
			where p_retailprice >= (select avg(p_retailprice) from tmpSupp)
			union all
			select null, count(*) from tmpSupp
			where p_retailprice < (select avg(p_retailprice) from tmpSupp)
		 ) as (count_above, count_below)
		 from partsupp, part
		 where ps_partkey = p_partkey
		 group by ps_suppkey : tmpSupp`,
		`select gapply(select p_name, p_retailprice from g
		              where p_retailprice > (select avg(p_retailprice) from g))
		 from partsupp, part
		 where ps_partkey = p_partkey
		 group by ps_suppkey, p_size : g`,
		`select tmp.k1, p_name, p_size, p_retailprice
		 from (select ps_suppkey, p_size, avg(p_retailprice)
		       from partsupp, part
		       where p_partkey = ps_partkey
		       group by ps_suppkey, p_size) as tmp(k1, k2, avgprice),
		      partsupp, part
		 where ps_partkey = p_partkey
		   and ps_suppkey = tmp.k1
		   and p_size = tmp.k2
		   and p_retailprice > tmp.avgprice
		 order by tmp.k1`,
		`select gapply(select s_name, p_name, p_retailprice from g
				where p_retailprice = (select min(p_retailprice) from g))
		 from partsupp, part, supplier
		 where ps_partkey = p_partkey and ps_suppkey = s_suppkey
		 group by s_suppkey : g`,
		`select gapply(select p_size, count(*), avg(p_retailprice) from g group by p_size)
		 from partsupp, part where ps_partkey = p_partkey
		 group by ps_suppkey : g`,
		`select gapply(select p_name from g order by p_retailprice desc)
		 from partsupp, part where ps_partkey = p_partkey
		 group by ps_suppkey : g`,
		// Known-bad shapes the parser must reject without panicking.
		"",
		"select",
		"select 1 from",
		"select 1 from part where",
		"select 1 from part group by",
		"select 1 from part group by x :",
		"select gapply(select 1 from g from part",
		"select 1 from part trailing garbage (",
		"select 1 from part; select 2 from part",
		"select (select 1 from part from part",
		"select 'unterminated",
		"select @x",
		"a ! b",
		"select ((((((((((1))))))))))",
		"select 1 from part where 9999999999999999999999999 = 1e999",
		"select \x00 from \xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		// Parse must return (stmt, explain, err) — never panic. The fuzz
		// engine turns any panic into a failure with the crashing input.
		_, _, _ = Parse(q)
	})
}
