package storage

import (
	"testing"

	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

func supplierDef() *schema.TableDef {
	return &schema.TableDef{
		Name: "supplier",
		Schema: schema.New(
			schema.Column{Name: "s_suppkey", Type: types.KindInt},
			schema.Column{Name: "s_name", Type: types.KindString},
		),
		PrimaryKey: []string{"s_suppkey"},
	}
}

func partsuppDef() *schema.TableDef {
	return &schema.TableDef{
		Name: "partsupp",
		Schema: schema.New(
			schema.Column{Name: "ps_suppkey", Type: types.KindInt},
			schema.Column{Name: "ps_partkey", Type: types.KindInt},
		),
		PrimaryKey: []string{"ps_suppkey", "ps_partkey"},
		ForeignKeys: []schema.ForeignKey{
			{Cols: []string{"ps_suppkey"}, RefTable: "supplier", RefCols: []string{"s_suppkey"}},
		},
	}
}

func TestCreateLookupDrop(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Create(supplierDef()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(supplierDef()); err == nil {
		t.Error("duplicate create must fail")
	}
	tab, err := c.Lookup("SUPPLIER")
	if err != nil {
		t.Fatalf("case-insensitive lookup: %v", err)
	}
	// Creation qualifies columns with the table name.
	if tab.Def.Schema.Cols[0].Table != "supplier" {
		t.Errorf("columns not qualified: %v", tab.Def.Schema)
	}
	if _, err := c.Lookup("nosuch"); err == nil {
		t.Error("unknown lookup must fail")
	}
	if err := c.Drop("supplier"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("supplier"); err == nil {
		t.Error("double drop must fail")
	}
}

func TestAppendValidation(t *testing.T) {
	c := NewCatalog()
	tab, _ := c.Create(supplierDef())
	if err := tab.Append(types.Row{types.NewInt(1), types.NewString("acme")}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Append(types.Row{types.NewInt(1)}); err == nil {
		t.Error("arity mismatch must fail")
	}
	if err := tab.Append(types.Row{types.NewString("x"), types.NewString("y")}); err == nil {
		t.Error("type mismatch must fail")
	}
	// NULL is allowed anywhere; numeric widening allowed.
	if err := tab.Append(types.Row{types.Null, types.Null}); err != nil {
		t.Errorf("NULLs rejected: %v", err)
	}
	if err := tab.Append(types.Row{types.NewFloat(2), types.NewString("b")}); err != nil {
		t.Errorf("numeric widening rejected: %v", err)
	}
	if tab.Cardinality() != 3 {
		t.Errorf("Cardinality = %d", tab.Cardinality())
	}
}

func TestNames(t *testing.T) {
	c := NewCatalog()
	c.Create(partsuppDef())
	c.Create(supplierDef())
	got := c.Names()
	if len(got) != 2 || got[0] != "partsupp" || got[1] != "supplier" {
		t.Errorf("Names = %v", got)
	}
}

func TestForeignKeys(t *testing.T) {
	c := NewCatalog()
	c.Create(supplierDef())
	c.Create(partsuppDef())
	if !c.HasForeignKey("partsupp", []string{"ps_suppkey"}, "supplier", []string{"s_suppkey"}) {
		t.Error("declared FK not found")
	}
	if !c.HasForeignKey("PARTSUPP", []string{"PS_SUPPKEY"}, "SUPPLIER", []string{"S_SUPPKEY"}) {
		t.Error("FK lookup must be case-insensitive")
	}
	if c.HasForeignKey("partsupp", []string{"ps_partkey"}, "supplier", []string{"s_suppkey"}) {
		t.Error("wrong column must not match")
	}
	if c.HasForeignKey("supplier", []string{"s_suppkey"}, "partsupp", []string{"ps_suppkey"}) {
		t.Error("FK direction matters")
	}
	if c.HasForeignKey("nosuch", []string{"a"}, "supplier", []string{"s_suppkey"}) {
		t.Error("unknown table has no FKs")
	}
	if c.HasForeignKey("partsupp", nil, "supplier", nil) {
		t.Error("empty column list is not an FK")
	}
}

func TestIsPrimaryKey(t *testing.T) {
	c := NewCatalog()
	c.Create(partsuppDef())
	if !c.IsPrimaryKey("partsupp", []string{"ps_partkey", "ps_suppkey"}) {
		t.Error("full PK")
	}
	if c.IsPrimaryKey("partsupp", []string{"ps_partkey"}) {
		t.Error("partial PK is not a key")
	}
	if c.IsPrimaryKey("nosuch", []string{"x"}) {
		t.Error("unknown table")
	}
}
