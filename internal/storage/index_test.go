package storage

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

func indexTestTable(t *testing.T) (*Catalog, *Table) {
	t.Helper()
	cat := NewCatalog()
	tbl, err := cat.Create(&schema.TableDef{
		Name: "obs",
		Schema: schema.New(
			schema.Column{Name: "k", Type: types.KindInt},
			schema.Column{Name: "v", Type: types.KindString},
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat, tbl
}

// TestIndexRunStableOrder: the run visits rows in key order with ties in
// heap order — exactly a stable sort of the heap.
func TestIndexRunStableOrder(t *testing.T) {
	cat, tbl := indexTestTable(t)
	keys := []int64{5, 1, 5, 3, 1, 5, 2}
	for i, k := range keys {
		if err := tbl.Append(types.Row{types.NewInt(k), types.NewString(string(rune('a' + i)))}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := cat.CreateIndex("obs_k", "obs", "k")
	if err != nil {
		t.Fatal(err)
	}
	run := ix.Run(tbl)
	if run.Len() != len(keys) {
		t.Fatalf("run has %d entries, want %d", run.Len(), len(keys))
	}
	// Expected: stable sort of positions by key.
	want := make([]int32, len(keys))
	for i := range want {
		want[i] = int32(i)
	}
	sort.SliceStable(want, func(a, b int) bool { return keys[want[a]] < keys[want[b]] })
	for i := range want {
		if run.Pos[i] != want[i] {
			t.Fatalf("run.Pos = %v, want %v", run.Pos, want)
		}
	}
	for i := 1; i < run.Len(); i++ {
		if bytes.Compare(run.Keys[i-1], run.Keys[i]) > 0 {
			t.Fatalf("run keys not sorted at %d", i)
		}
	}
}

// TestIndexRunRebuildOnGrowth: appending rows invalidates the run; the
// next Run rebuild covers them.
func TestIndexRunRebuildOnGrowth(t *testing.T) {
	cat, tbl := indexTestTable(t)
	for _, k := range []int64{2, 1} {
		if err := tbl.Append(types.Row{types.NewInt(k), types.NewString("x")}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := cat.CreateIndex("obs_k", "obs", "k")
	if err != nil {
		t.Fatal(err)
	}
	r1 := ix.Run(tbl)
	if r1.Len() != 2 {
		t.Fatalf("run len %d, want 2", r1.Len())
	}
	if again := ix.Run(tbl); again != r1 {
		t.Fatal("unchanged table must reuse the run snapshot")
	}
	if err := tbl.Append(types.Row{types.NewInt(0), types.NewString("y")}); err != nil {
		t.Fatal(err)
	}
	r2 := ix.Run(tbl)
	if r2.Len() != 3 || r2.Pos[0] != 2 {
		t.Fatalf("rebuilt run = %+v, want the new row (pos 2) first", r2.Pos)
	}
}

// TestIndexSeekRange: SeekGE/SeekGT bracket key ranges the way the
// executor's range scan uses them, NULLs (sorted first) excluded by an
// exclusive lower bound.
func TestIndexSeekRange(t *testing.T) {
	cat, tbl := indexTestTable(t)
	vals := []types.Value{
		types.Null, types.NewInt(1), types.NewInt(3), types.NewInt(3),
		types.NewFloat(3.5), types.NewInt(7),
	}
	for _, v := range vals {
		if err := tbl.Append(types.Row{v, types.NewString("x")}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := cat.CreateIndex("obs_k", "obs", "k")
	if err != nil {
		t.Fatal(err)
	}
	run := ix.Run(tbl)
	k3 := EncodeIndexKey(nil, types.NewInt(3))
	if lo, hi := run.SeekGE(k3), run.SeekGT(k3); lo != 2 || hi != 4 {
		t.Fatalf("Seek(3) = [%d, %d), want [2, 4)", lo, hi)
	}
	// k > NULL skips exactly the NULL entry.
	knull := EncodeIndexKey(nil, types.Null)
	if got := run.SeekGT(knull); got != 1 {
		t.Fatalf("SeekGT(NULL) = %d, want 1", got)
	}
	// Mixed-kind probes: 3.25 lands between the 3s and 3.5.
	kf := EncodeIndexKey(nil, types.NewFloat(3.25))
	if got := run.SeekGE(kf); got != 4 {
		t.Fatalf("SeekGE(3.25) = %d, want 4", got)
	}
	// Probes past every key land at Len.
	kinf := EncodeIndexKey(nil, types.NewFloat(math.Inf(1)))
	if got := run.SeekGT(kinf); got != run.Len() {
		t.Fatalf("SeekGT(+Inf) = %d, want %d", got, run.Len())
	}
}

// TestCatalogIndexAPI: create/lookup/drop round trip, version bumps,
// exact-match OrderedIndex semantics, and table drops cascading.
func TestCatalogIndexAPI(t *testing.T) {
	cat, _ := indexTestTable(t)
	v0 := cat.Version()
	if _, err := cat.CreateIndex("obs_k", "obs", "k"); err != nil {
		t.Fatal(err)
	}
	if cat.Version() == v0 {
		t.Fatal("CreateIndex must bump the catalog version")
	}
	if _, err := cat.CreateIndex("obs_k", "obs", "v"); err == nil {
		t.Fatal("duplicate index name must fail")
	}
	if _, err := cat.CreateIndex("bad", "obs", "nope"); err == nil {
		t.Fatal("unknown column must fail")
	}
	if _, err := cat.CreateIndex("bad2", "nope", "k"); err == nil {
		t.Fatal("unknown table must fail")
	}
	if ix := cat.OrderedIndex("obs", []string{"K"}); ix == nil || ix.Name != "obs_k" {
		t.Fatalf("OrderedIndex(obs, [K]) = %v, want obs_k (case-insensitive)", ix)
	}
	if ix := cat.OrderedIndex("obs", []string{"k", "v"}); ix != nil {
		t.Fatal("OrderedIndex must require an exact column-list match")
	}
	if ix := cat.OrderedIndex("obs", []string{"v"}); ix != nil {
		t.Fatal("OrderedIndex must not match a different column")
	}
	if got := cat.Indexes(); len(got) != 1 || got[0].Name != "obs_k" {
		t.Fatalf("Indexes() = %v", got)
	}
	if _, err := cat.LookupIndex("OBS_K"); err != nil {
		t.Fatal(err)
	}
	v1 := cat.Version()
	if err := cat.DropIndex("obs_k"); err != nil {
		t.Fatal(err)
	}
	if cat.Version() == v1 {
		t.Fatal("DropIndex must bump the catalog version")
	}
	if err := cat.DropIndex("obs_k"); err == nil {
		t.Fatal("double drop must fail")
	}
	// Dropping a table removes its indexes.
	if _, err := cat.CreateIndex("obs_k", "obs", "k"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Drop("obs"); err != nil {
		t.Fatal(err)
	}
	if got := cat.Indexes(); len(got) != 0 {
		t.Fatalf("table drop must cascade to its indexes, still have %v", got)
	}
}
